#include "fs/volume.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "fs/key_encoding.h"

namespace d2::fs {
namespace {

// Applies ops to a mirror of the store, checking basic sanity.
class StoreMirror {
 public:
  void apply(const std::vector<StoreOp>& ops) {
    for (const StoreOp& op : ops) {
      switch (op.kind) {
        case StoreOp::Kind::kPut:
          blocks_[op.key] = op.size;
          ++puts_;
          put_bytes_ += op.size;
          break;
        case StoreOp::Kind::kRemove:
          // Removal of an unknown key indicates a bookkeeping bug.
          ASSERT_TRUE(blocks_.count(op.key) > 0) << "remove of unknown key";
          blocks_.erase(op.key);
          ++removes_;
          break;
        case StoreOp::Kind::kGet:
          ++gets_;
          get_bytes_ += op.size;
          break;
      }
    }
  }

  std::map<Key, Bytes> blocks_;
  int puts_ = 0, removes_ = 0, gets_ = 0;
  Bytes put_bytes_ = 0, get_bytes_ = 0;
};

std::vector<StoreOp> gets_only(const std::vector<StoreOp>& ops) {
  std::vector<StoreOp> out;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kGet) out.push_back(op);
  }
  return out;
}

TEST(Volume, CreateAndFlushEmitsBlocks) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/b/file.txt", 0, kB(20), 0, ops);
  EXPECT_TRUE(v.exists("a/b/file.txt"));
  EXPECT_TRUE(v.is_directory("a/b"));
  EXPECT_EQ(v.file_size("a/b/file.txt"), kB(20));
  EXPECT_TRUE(ops.empty());  // everything buffered
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  // root + a + b dir blocks, inode, 3 data blocks (20KB = 2x8K + 4K).
  EXPECT_EQ(m.blocks_.size(), 7u);
}

TEST(Volume, SmallFileInlinesInInode) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("tiny.txt", 0, 1000, 0, ops);
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  // root + inode only: data is inline.
  EXPECT_EQ(m.blocks_.size(), 2u);
  // Reading it back touches no data blocks.
  ops.clear();
  v.read("tiny.txt", 0, 1000, hours(1), ops);
  for (const StoreOp& op : gets_only(ops)) {
    EXPECT_EQ(decode_block_key(op.key).type != BlockType::kData, true);
  }
}

TEST(Volume, SpillOutOfInodeWhenGrowing) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(2), 0, ops);
  v.write("f", kB(2), kB(30), 0, ops);  // now 32 KB: 4 data blocks
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  EXPECT_EQ(m.blocks_.size(), 6u);  // root + inode + 4 data
}

TEST(Volume, WritebackCoalescesRepeatedWrites) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  for (int i = 0; i < 10; ++i) {
    v.write("f", 0, kB(8), static_cast<SimTime>(i) * seconds(1), ops);
  }
  EXPECT_TRUE(ops.empty());
  v.flush(seconds(10), ops);
  StoreMirror m;
  m.apply(ops);
  // 10 writes to the same block produced exactly one version of it.
  EXPECT_EQ(m.puts_, 3);  // root + inode + 1 data block
  EXPECT_EQ(m.removes_, 0);
}

TEST(Volume, TemporaryFileNeverHitsStore) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("tmp/scratch", 0, kB(100), 0, ops);
  v.remove("tmp/scratch", seconds(5), ops);
  v.flush(seconds(6), ops);
  StoreMirror m;
  m.apply(ops);
  // Only the surviving metadata (root + tmp dir) was written; none of the
  // file's blocks ever left the write-back cache.
  for (const auto& [key, size] : m.blocks_) {
    EXPECT_NE(decode_block_key(key).type, BlockType::kData);
  }
  EXPECT_EQ(m.removes_, 0);
}

TEST(Volume, OverwriteEmitsNewVersionAndRemovesOld) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(8), 0, ops);
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  const auto before = m.blocks_;

  ops.clear();
  v.write("f", 0, kB(8), hours(1), ops);  // overwrite after commit
  v.flush(hours(1), ops);
  m.apply(ops);
  // Same count, but data key changed (new version), old removed.
  EXPECT_EQ(m.blocks_.size(), before.size());
  EXPECT_GT(m.removes_, 0);
  EXPECT_NE(m.blocks_, before);
}

TEST(Volume, ReadEmitsMetadataChainThenData) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/b/f", 0, kB(16), 0, ops);
  v.flush(0, ops);
  ops.clear();
  v.read("a/b/f", 0, kB(16), hours(1), ops);
  const auto gets = gets_only(ops);
  ASSERT_EQ(gets.size(), 6u);  // root, a, b, inode, 2 data
  EXPECT_EQ(decode_block_key(gets[0].key).type, BlockType::kDirectory);
  EXPECT_EQ(decode_block_key(gets[3].key).type, BlockType::kInode);
  EXPECT_EQ(decode_block_key(gets[4].key).type, BlockType::kData);
}

TEST(Volume, BufferCacheAbsorbsRereads) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(16), 0, ops);
  v.flush(0, ops);
  ops.clear();
  v.read("f", 0, kB(16), hours(1), ops);
  const auto first = gets_only(ops).size();
  ops.clear();
  v.read("f", 0, kB(16), hours(1) + seconds(10), ops);
  EXPECT_EQ(gets_only(ops).size(), 0u);  // within 30 s window
  ops.clear();
  v.read("f", 0, kB(16), hours(2), ops);
  EXPECT_EQ(gets_only(ops).size(), first);  // window expired
}

TEST(Volume, PartialReadTouchesOnlyCoveredBlocks) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(80), 0, ops);  // 10 data blocks
  v.flush(0, ops);
  ops.clear();
  v.read("f", kB(24), kB(8), hours(1), ops);
  int data_gets = 0;
  for (const StoreOp& op : gets_only(ops)) {
    if (decode_block_key(op.key).type == BlockType::kData) {
      ++data_gets;
      EXPECT_EQ(decode_block_key(op.key).block_number, 3u);
    }
  }
  EXPECT_EQ(data_gets, 1);
}

TEST(Volume, ReadPastEndTouchesNothing) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(8), 0, ops);
  v.flush(0, ops);
  ops.clear();
  v.read("f", kB(100), kB(8), hours(1), ops);
  int data_gets = 0;
  for (const StoreOp& op : gets_only(ops)) {
    if (decode_block_key(op.key).type == BlockType::kData) ++data_gets;
  }
  EXPECT_EQ(data_gets, 0);
}

TEST(Volume, RemoveCommittedFileEmitsRemoves) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("d/f", 0, kB(24), 0, ops);
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  ops.clear();
  v.remove("d/f", hours(1), ops);
  v.flush(hours(1), ops);
  m.apply(ops);
  EXPECT_FALSE(v.exists("d/f"));
  // Only root + dir d remain (new versions).
  for (const auto& [key, size] : m.blocks_) {
    EXPECT_EQ(decode_block_key(key).type, BlockType::kDirectory);
  }
}

TEST(Volume, RemoveDirectoryRecursive) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("d/a", 0, kB(8), 0, ops);
  v.write("d/e/b", 0, kB(8), 0, ops);
  v.flush(0, ops);
  ops.clear();
  v.remove("d", hours(1), ops);
  EXPECT_FALSE(v.exists("d"));
  EXPECT_FALSE(v.exists("d/e/b"));
  EXPECT_EQ(v.dir_count(), 1u);  // only the root
  EXPECT_EQ(v.file_count(), 0u);
}

TEST(Volume, RenameKeepsBlockKeys) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/f", 0, kB(16), 0, ops);
  v.flush(0, ops);
  ops.clear();
  v.read("a/f", 0, kB(16), hours(1), ops);
  std::vector<Key> keys_before;
  for (const StoreOp& op : gets_only(ops)) {
    if (decode_block_key(op.key).type == BlockType::kData) {
      keys_before.push_back(op.key);
    }
  }

  ops.clear();
  v.rename("a/f", "b/g", hours(2), ops);
  EXPECT_FALSE(v.exists("a/f"));
  EXPECT_TRUE(v.exists("b/g"));

  ops.clear();
  v.read("b/g", 0, kB(16), hours(3), ops);
  std::vector<Key> keys_after;
  for (const StoreOp& op : gets_only(ops)) {
    if (decode_block_key(op.key).type == BlockType::kData) {
      keys_after.push_back(op.key);
    }
  }
  EXPECT_EQ(keys_before, keys_after);  // §4.2: renames keep original keys
}

TEST(Volume, RootKeyConstantAcrossUpdates) {
  Volume v("vol");
  const Key root = v.root_key();
  std::vector<StoreOp> ops;
  v.write("f1", 0, kB(8), 0, ops);
  v.flush(0, ops);
  v.write("f2", 0, kB(8), hours(1), ops);
  v.flush(hours(1), ops);
  EXPECT_EQ(v.root_key(), root);
  // Every put of the root key targeted the same key (in-place update).
  int root_puts = 0;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kPut && op.key == root) ++root_puts;
  }
  EXPECT_EQ(root_puts, 2);
}

TEST(Volume, TraditionalFileSchemeOneObjectPerFile) {
  VolumeConfig config;
  config.scheme = KeyScheme::kTraditionalFile;
  Volume v("vol", config);
  std::vector<StoreOp> ops;
  v.write("d/f", 0, kB(100), 0, ops);
  v.flush(0, ops);
  StoreMirror m;
  m.apply(ops);
  // root + d + one file object.
  EXPECT_EQ(m.blocks_.size(), 3u);
  // Partial read fetches only the requested bytes from the one object.
  ops.clear();
  v.read("d/f", 0, kB(8), hours(1), ops);
  const auto gets = gets_only(ops);
  ASSERT_FALSE(gets.empty());
  EXPECT_EQ(gets.back().size, kB(8));
}

TEST(Volume, TraditionalBlockKeysNotClustered) {
  VolumeConfig config;
  config.scheme = KeyScheme::kTraditionalBlock;
  Volume v("vol", config);
  std::vector<StoreOp> ops;
  v.write("d/f", 0, kB(64), 0, ops);  // 8 data blocks
  v.flush(0, ops);
  // Hashed keys: the spread between min and max should span much of the
  // key space (random), unlike D2 keys.
  std::vector<Key> keys;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kPut) keys.push_back(op.key);
  }
  ASSERT_GT(keys.size(), 4u);
  std::sort(keys.begin(), keys.end());
  EXPECT_GT(keys.back().ring_position() - keys.front().ring_position(), 0.3);
}

TEST(Volume, D2KeysOfFileAreContiguousRange) {
  Volume v("vol");
  std::vector<StoreOp> a_ops, b_ops;
  v.write("d/a", 0, kB(64), 0, a_ops);
  v.write("d/b", 0, kB(64), 0, b_ops);
  v.flush(0, a_ops);  // flush order: both files' blocks land in a_ops
  std::vector<Key> a_keys, b_keys;
  for (const StoreOp& op : a_ops) {
    if (op.kind != StoreOp::Kind::kPut) continue;
    const DecodedKey d = decode_block_key(op.key);
    if (d.type != BlockType::kData) continue;
    // Distinguish by path slot depth-2 value: file a got slot 1, b slot 2.
    if (d.path.slots[1] == 1) a_keys.push_back(op.key);
    if (d.path.slots[1] == 2) b_keys.push_back(op.key);
  }
  ASSERT_EQ(a_keys.size(), 8u);
  ASSERT_EQ(b_keys.size(), 8u);
  EXPECT_LT(*std::max_element(a_keys.begin(), a_keys.end()),
            *std::min_element(b_keys.begin(), b_keys.end()));
}

TEST(Volume, ErrorsOnBadUsage) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("d/f", 0, kB(8), 0, ops);
  EXPECT_THROW(v.read("nope", 0, 8, 0, ops), PreconditionError);
  EXPECT_THROW(v.remove("nope", 0, ops), PreconditionError);
  EXPECT_THROW(v.write("d/f/sub", 0, 8, 0, ops), PreconditionError);  // file as dir
  EXPECT_THROW(v.file_size("d"), PreconditionError);
  EXPECT_THROW(v.rename("nope", "x", 0, ops), PreconditionError);
}

TEST(Volume, UncachedReadOpsListsEverything) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/f", 0, kB(24), 0, ops);
  v.flush(0, ops);
  const auto uncached = v.uncached_read_ops("a/f");
  // root, a, inode, 3 data blocks.
  EXPECT_EQ(uncached.size(), 6u);
}

TEST(VolumeIntegrity, DigestStableAcrossReads) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/f", 0, kB(24), 0, ops);
  v.flush(0, ops);
  const Sha1Digest d1 = v.integrity_digest();
  ops.clear();
  v.read("a/f", 0, kB(24), hours(1), ops);
  EXPECT_EQ(v.integrity_digest(), d1);  // reads don't change the chain
}

TEST(VolumeIntegrity, DigestChangesOnWrite) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/f", 0, kB(24), 0, ops);
  v.flush(0, ops);
  const Sha1Digest before = v.integrity_digest();
  v.write("a/f", 0, kB(8), hours(1), ops);
  v.flush(hours(1), ops);
  EXPECT_NE(v.integrity_digest(), before);
}

TEST(VolumeIntegrity, DigestChangesOnRenameAndRemove) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("a/f", 0, kB(8), 0, ops);
  v.write("a/g", 0, kB(8), 0, ops);
  v.flush(0, ops);
  const Sha1Digest before = v.integrity_digest();
  v.rename("a/f", "a/h", hours(1), ops);
  const Sha1Digest after_rename = v.integrity_digest();
  EXPECT_NE(after_rename, before);  // names are part of the signed tree
  v.remove("a/g", hours(2), ops);
  EXPECT_NE(v.integrity_digest(), after_rename);
}

TEST(VolumeIntegrity, IdenticalHistoriesIdenticalDigests) {
  auto build = [] {
    auto v = std::make_unique<Volume>("vol");
    std::vector<StoreOp> ops;
    v->write("a/f", 0, kB(24), 0, ops);
    v->write("b/g", 0, kB(4), seconds(1), ops);
    v->flush(minutes(1), ops);
    return v;
  };
  const auto v1 = build();
  const auto v2 = build();
  EXPECT_EQ(v1->integrity_digest(), v2->integrity_digest());
}

class VolumeSchemeSweep : public ::testing::TestWithParam<KeyScheme> {};

TEST_P(VolumeSchemeSweep, WriteReadRemoveLifecycle) {
  VolumeConfig config;
  config.scheme = GetParam();
  Volume v("vol", config);
  StoreMirror m;
  std::vector<StoreOp> ops;
  // Create 20 files across directories, read them, remove half.
  for (int i = 0; i < 20; ++i) {
    v.write("dir" + std::to_string(i % 4) + "/f" + std::to_string(i), 0,
            kB(4) * (1 + i % 5), static_cast<SimTime>(i) * seconds(1), ops);
  }
  v.flush(minutes(1), ops);
  m.apply(ops);
  ops.clear();
  for (int i = 0; i < 20; ++i) {
    v.read("dir" + std::to_string(i % 4) + "/f" + std::to_string(i), 0, kB(20),
           minutes(2) + static_cast<SimTime>(i) * seconds(1), ops);
  }
  m.apply(ops);
  EXPECT_GT(m.gets_, 0);
  ops.clear();
  for (int i = 0; i < 10; ++i) {
    v.remove("dir" + std::to_string(i % 4) + "/f" + std::to_string(i),
             hours(1) + static_cast<SimTime>(i) * seconds(1), ops);
  }
  v.flush(hours(2), ops);
  m.apply(ops);
  EXPECT_EQ(v.file_count(), 10u);
  EXPECT_GT(m.removes_, 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, VolumeSchemeSweep,
                         ::testing::Values(KeyScheme::kD2,
                                           KeyScheme::kTraditionalBlock,
                                           KeyScheme::kTraditionalFile),
                         [](const auto& info) {
                           return to_string(info.param) == "d2" ? "D2"
                                  : to_string(info.param) == "traditional"
                                      ? "TraditionalBlock"
                                      : "TraditionalFile";
                         });

}  // namespace
}  // namespace d2::fs
