#include "store/retrieval_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "common/rng.h"
#include "core/request_load.h"

namespace d2 {
namespace {

using store::RetrievalCache;

Key K(std::uint64_t v) { return Key::from_uint64(v); }

/// The node-based LRU the flat cache replaced, kept as an executable
/// spec: byte-capacity LRU with refresh-on-hit and refresh-on-reinsert.
class ReferenceLru {
 public:
  explicit ReferenceLru(Bytes capacity) : capacity_(capacity) {}

  bool lookup(const Key& k) {
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  void insert(const Key& k, Bytes size) {
    if (size > capacity_) return;
    auto it = map_.find(k);
    if (it != map_.end()) {
      used_ += size - it->second->second;
      it->second->second = size;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.emplace_front(k, size);
      map_.emplace(k, lru_.begin());
      used_ += size;
    }
    while (used_ > capacity_ && !lru_.empty()) {
      used_ -= lru_.back().second;
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  void erase(const Key& k) {
    auto it = map_.find(k);
    if (it == map_.end()) return;
    used_ -= it->second->second;
    lru_.erase(it->second);
    map_.erase(it);
  }

  Bytes used() const { return used_; }
  std::size_t entries() const { return map_.size(); }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::list<std::pair<Key, Bytes>> lru_;
  std::map<Key, std::list<std::pair<Key, Bytes>>::iterator> map_;
};

TEST(RetrievalCache, ChurnDifferentialAgainstReferenceLru) {
  // Randomized op mix over a key space ~4x the capacity: constant
  // evictions, slot recycling, table growth, and backward-shift deletes.
  // Every lookup outcome and the exact used/entries accounting must match
  // the node-based reference at every step.
  RetrievalCache cache(kB(8) * 64);
  ReferenceLru ref(kB(8) * 64);
  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const Key k = K(rng.next_below(256));
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 5) {
      EXPECT_EQ(cache.lookup(k), ref.lookup(k)) << "op " << op;
    } else if (kind < 9) {
      const Bytes size = kB(1) * static_cast<Bytes>(1 + rng.next_below(12));
      cache.insert(k, size);
      ref.insert(k, size);
    } else {
      cache.erase(k);
      ref.erase(k);
    }
    ASSERT_EQ(cache.used(), ref.used()) << "op " << op;
    ASSERT_EQ(cache.entries(), ref.entries()) << "op " << op;
  }
}

TEST(RetrievalCache, MissThenHit) {
  RetrievalCache c(kB(64));
  EXPECT_FALSE(c.lookup(K(1)));
  c.insert(K(1), kB(8));
  EXPECT_TRUE(c.lookup(K(1)));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.used(), kB(8));
}

TEST(RetrievalCache, EvictsLeastRecentlyUsed) {
  RetrievalCache c(kB(16));  // fits two 8 KB blocks
  c.insert(K(1), kB(8));
  c.insert(K(2), kB(8));
  EXPECT_TRUE(c.lookup(K(1)));   // 1 is now more recent than 2
  c.insert(K(3), kB(8));         // evicts 2
  EXPECT_TRUE(c.lookup(K(1)));
  EXPECT_FALSE(c.lookup(K(2)));
  EXPECT_TRUE(c.lookup(K(3)));
  EXPECT_EQ(c.used(), kB(16));
}

TEST(RetrievalCache, OversizedBlockNotCached) {
  RetrievalCache c(kB(8));
  c.insert(K(1), kB(64));
  EXPECT_FALSE(c.lookup(K(1)));
  EXPECT_EQ(c.used(), 0);
}

TEST(RetrievalCache, ReinsertUpdatesSize) {
  RetrievalCache c(kB(64));
  c.insert(K(1), kB(8));
  c.insert(K(1), kB(4));
  EXPECT_EQ(c.used(), kB(4));
  EXPECT_EQ(c.entries(), 1u);
}

TEST(RetrievalCache, EraseRemoves) {
  RetrievalCache c(kB(64));
  c.insert(K(1), kB(8));
  c.erase(K(1));
  EXPECT_FALSE(c.lookup(K(1)));
  EXPECT_EQ(c.used(), 0);
  c.erase(K(99));  // unknown: no-op
}

TEST(RetrievalCache, ZeroCapacityCachesNothing) {
  RetrievalCache c(0);
  c.insert(K(1), 1);
  EXPECT_FALSE(c.lookup(K(1)));
}

TEST(RequestLoadExperiment, CachingFlattensHotSpots) {
  core::RequestLoadParams base;
  base.system.node_count = 24;
  base.system.replicas = 3;
  base.system.scheme = fs::KeyScheme::kD2;
  base.system.seed = 5;
  base.total_files = 150;
  base.readers = 30;
  base.reads_per_reader = 60;

  core::RequestLoadParams uncached = base;
  uncached.retrieval_cache_capacity = 0;
  core::RequestLoadParams cached = base;
  cached.retrieval_cache_capacity = mB(8);

  const core::RequestLoadResult u = core::RequestLoadExperiment(uncached).run();
  const core::RequestLoadResult c = core::RequestLoadExperiment(cached).run();

  EXPECT_EQ(u.cache_hit_rate, 0.0);
  EXPECT_GT(c.cache_hit_rate, 0.3);
  EXPECT_LT(c.remote_serves, u.remote_serves);
  // Hot-spot request imbalance drops with caching.
  EXPECT_LT(c.max_over_mean_serves, u.max_over_mean_serves);
}

TEST(RequestLoadExperiment, D2HotterThanTraditionalWithoutCaches) {
  // Defragmentation concentrates a hot file on one replica group; the
  // traditional DHT scatters its blocks. This is the §4.3 trade-off that
  // retrieval caches compensate for.
  core::RequestLoadParams base;
  base.system.node_count = 24;
  base.system.replicas = 3;
  base.system.seed = 6;
  base.total_files = 150;
  base.readers = 30;
  base.reads_per_reader = 60;
  base.zipf_s = 1.3;  // very hot head

  base.system.scheme = fs::KeyScheme::kD2;
  const core::RequestLoadResult d2 = core::RequestLoadExperiment(base).run();
  base.system.scheme = fs::KeyScheme::kTraditionalBlock;
  base.system.active_load_balance = false;
  const core::RequestLoadResult trad = core::RequestLoadExperiment(base).run();

  EXPECT_GT(d2.max_over_mean_serves, trad.max_over_mean_serves * 0.9);
}

}  // namespace
}  // namespace d2
