// Unit-level tests of the performance experiment engine (§9): determinism,
// window selection, metric consistency, and option behaviour.
#include "core/performance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/assert.h"

namespace d2::core {
namespace {

PerformanceParams small_params(fs::KeyScheme scheme) {
  PerformanceParams p;
  p.system.node_count = 20;
  p.system.replicas = 3;
  p.system.scheme = scheme;
  p.system.active_load_balance = scheme == fs::KeyScheme::kD2;
  p.system.seed = 3;
  p.workload.users = 6;
  p.workload.days = 2;
  p.workload.target_active_bytes = mB(16);
  p.workload.accesses_per_user_day = 120;
  p.workload.seed = 17;
  p.warmup = hours(6);
  p.window_count = 3;
  return p;
}

TEST(PerformanceExperiment, DeterministicForSameParams) {
  const PerformanceResult a =
      PerformanceExperiment(small_params(fs::KeyScheme::kD2)).run();
  const PerformanceResult b =
      PerformanceExperiment(small_params(fs::KeyScheme::kD2)).run();
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].group_id, b.groups[i].group_id);
    EXPECT_EQ(a.groups[i].latency, b.groups[i].latency);
  }
  EXPECT_EQ(a.lookup_messages, b.lookup_messages);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
}

TEST(PerformanceExperiment, GroupIdsMatchAcrossSchemes) {
  const PerformanceResult d2r =
      PerformanceExperiment(small_params(fs::KeyScheme::kD2)).run();
  const PerformanceResult trad =
      PerformanceExperiment(small_params(fs::KeyScheme::kTraditionalBlock)).run();
  std::set<std::uint64_t> d2_ids, trad_ids;
  for (const auto& g : d2r.groups) d2_ids.insert(g.group_id);
  for (const auto& g : trad.groups) trad_ids.insert(g.group_id);
  // The same windows and workload: the vast majority of group ids match
  // (client-cache timing may shift one or two edge groups).
  std::size_t common = 0;
  for (const auto id : d2_ids) common += trad_ids.count(id);
  EXPECT_GT(common, d2_ids.size() * 8 / 10);
}

TEST(PerformanceExperiment, MetricsInternallyConsistent) {
  const PerformanceResult r =
      PerformanceExperiment(small_params(fs::KeyScheme::kD2)).run();
  EXPECT_EQ(r.cache_misses, r.lookups);  // every miss triggers one lookup
  EXPECT_GE(r.lookup_messages, r.lookups);  // each lookup >= 1 message
  EXPECT_NEAR(r.lookup_messages_per_node,
              static_cast<double>(r.lookup_messages) / 20, 1e-9);
  EXPECT_GE(r.mean_cache_miss_rate, 0.0);
  EXPECT_LE(r.mean_cache_miss_rate, 1.0);
  EXPECT_LE(r.tcp_cold_starts, r.tcp_transfers);
  for (const GroupResult& g : r.groups) {
    EXPECT_GT(g.latency, 0);
    EXPECT_GT(g.block_gets, 0);
  }
}

TEST(PerformanceExperiment, ParallelNotSlowerThanSequential) {
  PerformanceParams seq = small_params(fs::KeyScheme::kD2);
  PerformanceParams par = small_params(fs::KeyScheme::kD2);
  par.parallel = true;
  const PerformanceResult rs = PerformanceExperiment(seq).run();
  const PerformanceResult rp = PerformanceExperiment(par).run();
  // Per matched group, para <= seq (same work, more concurrency; the
  // network model has no congestion collapse at this scale).
  const SpeedupSummary s = compute_speedup(rs, rp);
  EXPECT_GE(s.overall, 1.0);
}

TEST(PerformanceExperiment, LowerBandwidthNeverFaster) {
  PerformanceParams fast = small_params(fs::KeyScheme::kD2);
  PerformanceParams slow = small_params(fs::KeyScheme::kD2);
  slow.node_bandwidth = kbps(384);
  const PerformanceResult rf = PerformanceExperiment(fast).run();
  const PerformanceResult rsl = PerformanceExperiment(slow).run();
  SimTime total_fast = 0, total_slow = 0;
  for (const auto& g : rf.groups) total_fast += g.latency;
  for (const auto& g : rsl.groups) total_slow += g.latency;
  EXPECT_GE(total_slow, total_fast);
}

TEST(PerformanceExperiment, ClosestReplicaNotSlowerThanRandom) {
  PerformanceParams random_sel = small_params(fs::KeyScheme::kD2);
  PerformanceParams closest = small_params(fs::KeyScheme::kD2);
  closest.closest_replica = true;
  const PerformanceResult rr = PerformanceExperiment(random_sel).run();
  const PerformanceResult rc = PerformanceExperiment(closest).run();
  const SpeedupSummary s = compute_speedup(rr, rc);
  EXPECT_GE(s.overall, 0.95);  // at worst a wash; normally a speedup
}

TEST(ComputeSpeedup, IgnoresUnmatchedGroups) {
  PerformanceResult a, b;
  a.groups.push_back(GroupResult{0, 1, seconds(2), 3});
  a.groups.push_back(GroupResult{0, 2, seconds(2), 3});
  b.groups.push_back(GroupResult{0, 1, seconds(1), 3});
  b.groups.push_back(GroupResult{0, 99, seconds(1), 3});  // no partner
  const SpeedupSummary s = compute_speedup(a, b);
  EXPECT_EQ(s.matched_groups, 1u);
  EXPECT_DOUBLE_EQ(s.overall, 2.0);
}

TEST(ComputeSpeedup, PerUserGeometricMean) {
  PerformanceResult a, b;
  // User 0: 4x and 1x speedups -> geo-mean 2x. User 1: 1x -> 1x.
  a.groups.push_back(GroupResult{0, 1, seconds(4), 1});
  a.groups.push_back(GroupResult{0, 2, seconds(1), 1});
  a.groups.push_back(GroupResult{1, 3, seconds(3), 1});
  b.groups.push_back(GroupResult{0, 1, seconds(1), 1});
  b.groups.push_back(GroupResult{0, 2, seconds(1), 1});
  b.groups.push_back(GroupResult{1, 3, seconds(3), 1});
  const SpeedupSummary s = compute_speedup(a, b);
  EXPECT_DOUBLE_EQ(s.per_user.at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.per_user.at(1), 1.0);
  // Overall = geo-mean of the per-user means = sqrt(2).
  EXPECT_NEAR(s.overall, std::sqrt(2.0), 1e-12);
}

TEST(PickPerformanceWindows, PlacesRequestedNonOverlappingWindows) {
  trace::HarvardParams wl;
  wl.days = 5;
  wl.seed = 9;
  const SimTime len = minutes(15);
  const std::vector<SimTime> starts = pick_performance_windows(wl, 8, len);
  ASSERT_EQ(starts.size(), 8u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    // Inside some day's 9:00-18:00 stretch.
    const SimTime in_day = starts[i] % days(1);
    EXPECT_GE(in_day, hours(9));
    EXPECT_LE(in_day + len, hours(18));
    if (i > 0) {
      EXPECT_GE(starts[i], starts[i - 1] + len);  // sorted, disjoint
    }
  }
}

TEST(PickPerformanceWindows, DeterministicInWorkloadSeed) {
  trace::HarvardParams wl;
  wl.days = 3;
  wl.seed = 21;
  const auto a = pick_performance_windows(wl, 4, minutes(15));
  EXPECT_EQ(a, pick_performance_windows(wl, 4, minutes(15)));
  wl.seed = 22;
  EXPECT_NE(a, pick_performance_windows(wl, 4, minutes(15)));
}

TEST(PickPerformanceWindows, RejectsWindowsLongerThanWorkday) {
  trace::HarvardParams wl;
  wl.days = 7;
  // A >9h window used to yield a negative placement span (silent garbage);
  // now it is a precondition failure.
  EXPECT_THROW(pick_performance_windows(wl, 1, hours(10)), PreconditionError);
  EXPECT_THROW(pick_performance_windows(wl, 1, 0), PreconditionError);
}

TEST(PickPerformanceWindows, RejectsInfeasibleRequestLoudly) {
  trace::HarvardParams wl;
  wl.days = 1;
  // 1 workday holds at most 9h of windows; asking for 10h worth must
  // throw instead of silently returning fewer windows.
  EXPECT_THROW(pick_performance_windows(wl, 40, minutes(15)),
               PreconditionError);
}

TEST(PickPerformanceWindows, FullPackingStillSucceeds) {
  trace::HarvardParams wl;
  wl.days = 1;
  wl.seed = 3;
  // Exactly at the feasibility bound: a single window filling the whole
  // workday. Rejection sampling must still land it.
  const auto starts = pick_performance_windows(wl, 1, hours(9));
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0] % days(1), hours(9));
}

TEST(MatchedLatencies, PairsInOrder) {
  PerformanceResult a, b;
  a.groups.push_back(GroupResult{0, 1, seconds(5), 1});
  b.groups.push_back(GroupResult{0, 1, seconds(2), 1});
  const auto pairs = matched_latencies(a, b);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, seconds(5));   // baseline
  EXPECT_EQ(pairs[0].second, seconds(2));  // treatment
}

}  // namespace
}  // namespace d2::core
