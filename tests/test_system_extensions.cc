// Tests for the System extensions beyond the core paper mechanisms:
// block TTL auto-removal with refresh (§3) and hybrid scatter replica
// placement (the §11 future-work design).
#include <gtest/gtest.h>

#include <set>

#include "core/system.h"
#include "sim/failure.h"

namespace d2::core {
namespace {

Key seq_key(std::uint64_t i) { return Key::from_uint64(1000 + i); }

SystemConfig ttl_config() {
  SystemConfig c;
  c.node_count = 12;
  c.replicas = 3;
  c.seed = 7;
  c.block_ttl = hours(1);
  return c;
}

TEST(BlockTtl, ExpiresUnrefreshedBlocks) {
  sim::Simulator sim;
  System sys(ttl_config(), sim);
  sys.put(seq_key(1), kB(8));
  sim.run_until(minutes(59));
  EXPECT_TRUE(sys.has(seq_key(1)));
  sim.run_until(minutes(61));
  EXPECT_FALSE(sys.has(seq_key(1)));
  EXPECT_EQ(sys.user_removed_bytes(), kB(8));
}

TEST(BlockTtl, RefreshExtendsLifetime) {
  sim::Simulator sim;
  System sys(ttl_config(), sim);
  sys.put(seq_key(1), kB(8));
  sim.run_until(minutes(50));
  sys.refresh(seq_key(1));
  sim.run_until(minutes(70));  // past the original deadline
  EXPECT_TRUE(sys.has(seq_key(1)));
  sim.run_until(minutes(50) + minutes(61));
  EXPECT_FALSE(sys.has(seq_key(1)));
}

TEST(BlockTtl, PutRefreshesImplicitly) {
  sim::Simulator sim;
  System sys(ttl_config(), sim);
  sys.put(seq_key(1), kB(8));
  sim.run_until(minutes(55));
  sys.put(seq_key(1), kB(8));  // overwrite refreshes
  sim.run_until(minutes(90));
  EXPECT_TRUE(sys.has(seq_key(1)));
}

TEST(BlockTtl, DisabledByDefault) {
  SystemConfig c = ttl_config();
  c.block_ttl = 0;
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  sim.run_until(days(30));
  EXPECT_TRUE(sys.has(seq_key(1)));
}

TEST(BlockTtl, ExplicitRemoveBeatsExpiry) {
  sim::Simulator sim;
  System sys(ttl_config(), sim);
  sys.put(seq_key(1), kB(8));
  sys.remove(seq_key(1));
  sim.run_until(hours(2));
  EXPECT_FALSE(sys.has(seq_key(1)));
  EXPECT_EQ(sys.user_removed_bytes(), kB(8));  // counted exactly once
}

SystemConfig hybrid_config(int scatter) {
  SystemConfig c;
  c.node_count = 32;
  c.replicas = 4;
  c.scatter_replicas = scatter;
  c.seed = 9;
  return c;
}

TEST(HybridPlacement, SetHasSuccessorsPlusScattered) {
  sim::Simulator sim;
  System sys(hybrid_config(1), sim);
  sys.put(seq_key(1), kB(8));
  const auto nodes = sys.replica_nodes(seq_key(1));
  ASSERT_EQ(nodes.size(), 4u);
  // First three are the successor chain.
  EXPECT_EQ(nodes[0], sys.owner_of(seq_key(1)));
  EXPECT_EQ(sys.ring().successor(nodes[0]), nodes[1]);
  EXPECT_EQ(sys.ring().successor(nodes[1]), nodes[2]);
  // The scattered member is somewhere else and distinct.
  std::set<int> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(HybridPlacement, ScatteredMemberSpreadsAcrossRing) {
  // Adjacent D2 keys share their successor chain but get different
  // scattered nodes — that is the parallel-bandwidth benefit.
  sim::Simulator sim;
  System sys(hybrid_config(1), sim);
  std::set<int> scattered;
  for (std::uint64_t i = 0; i < 40; ++i) {
    sys.put(seq_key(i), kB(8));
    const auto nodes = sys.replica_nodes(seq_key(i));
    scattered.insert(nodes.back());
  }
  // With 32 nodes and 40 keys, pure-successor placement would reuse ~4
  // nodes; hashed scatter positions hit many more.
  EXPECT_GT(scattered.size(), 10u);
}

TEST(HybridPlacement, AllDataPresent) {
  sim::Simulator sim;
  System sys(hybrid_config(2), sim);
  for (std::uint64_t i = 0; i < 50; ++i) sys.put(seq_key(i), kB(8));
  for (std::uint64_t i = 0; i < 50; ++i) {
    const store::BlockState* b = sys.block_map().find(seq_key(i));
    ASSERT_NE(b, nullptr);
    for (const store::Replica& r : b->replicas) EXPECT_TRUE(r.has_data);
    EXPECT_TRUE(sys.block_available(seq_key(i)));
  }
}

TEST(HybridPlacement, SurvivesWholeSuccessorGroupFailure) {
  // The scenario motivating the hybrid: a correlated failure takes down
  // the whole successor group, but the scattered replica still serves.
  SystemConfig c = hybrid_config(1);
  c.regen_delay = hours(10);  // no regeneration
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  const auto nodes = sys.replica_nodes(seq_key(1));
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    downs.push_back({nodes[i], minutes(10), hours(5)});
  }
  const auto trace =
      sim::FailureTrace::from_intervals(c.node_count, days(1), downs);
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(1));
  EXPECT_TRUE(sys.block_available(seq_key(1)));
  EXPECT_EQ(sys.serving_node(seq_key(1)), nodes.back());
}

TEST(HybridPlacement, LoadBalanceMoveUpdatesScatteredMembers) {
  // When a load-balancing move lands a node inside a scattered replica's
  // arc, the scatter member must be recomputed (via the scatter index).
  sim::Simulator sim;
  System sys(hybrid_config(1), sim);
  for (std::uint64_t i = 0; i < 500; ++i) sys.put(seq_key(i), kB(8));
  bool moved = false;
  for (int p = 0; p < 32 && !moved; ++p) moved = sys.probe_once(p);
  ASSERT_TRUE(moved);
  sim.run_until(days(2));
  // Every block's set must match the target under the new ring: in
  // particular, sizes stay r and all members hold data eventually.
  for (std::uint64_t i = 0; i < 500; ++i) {
    const store::BlockState* b = sys.block_map().find(seq_key(i));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->replicas.size(), 4u) << i;
    for (const store::Replica& r : b->replicas) {
      EXPECT_TRUE(r.has_data) << "block " << i << " node " << r.node;
    }
  }
}

TEST(HybridPlacement, RemoveCleansScatterIndex) {
  sim::Simulator sim;
  System sys(hybrid_config(1), sim);
  sys.put(seq_key(1), kB(8));
  sys.remove(seq_key(1));
  sim.run_until(minutes(1));
  EXPECT_FALSE(sys.has(seq_key(1)));
  // Reinserting works and lands on a fresh, consistent set.
  sys.put(seq_key(1), kB(8));
  EXPECT_EQ(sys.replica_nodes(seq_key(1)).size(), 4u);
}

class ScatterSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScatterSweep, ReplicaCountAlwaysR) {
  sim::Simulator sim;
  System sys(hybrid_config(GetParam()), sim);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Key k = Key::random(rng);
    sys.put(k, kB(8));
    EXPECT_EQ(sys.replica_nodes(k).size(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Scatter, ScatterSweep, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace d2::core
