#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/arena.h"
#include "common/assert.h"
#include "trace/harvard_gen.h"

namespace d2::trace {
namespace {

TEST(TraceIo, RoundTripsAllOps) {
  std::vector<TraceRecord> records = {
      {0, 1, TraceRecord::Op::kCreate, "home/u1/a", "", 0, 8192},
      {seconds(1), 1, TraceRecord::Op::kRead, "home/u1/a", "", 100, 200},
      {seconds(2), 2, TraceRecord::Op::kWrite, "home/u2/b", "", 0, 4096},
      {seconds(3), 1, TraceRecord::Op::kRename, "home/u1/a", "home/u1/c", 0, 0},
      {seconds(4), 1, TraceRecord::Op::kMkdir, "home/u1/d", "", 0, 0},
      {seconds(5), 1, TraceRecord::Op::kRemove, "home/u1/c", "", 0, 0},
  };
  std::ostringstream os;
  write_trace(os, records);
  std::istringstream is(os.str());
  common::Arena arena;
  const std::vector<TraceRecord> parsed = read_trace(is, arena);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].time, records[i].time) << i;
    EXPECT_EQ(parsed[i].user, records[i].user) << i;
    EXPECT_EQ(parsed[i].op, records[i].op) << i;
    EXPECT_EQ(parsed[i].path, records[i].path) << i;
    EXPECT_EQ(parsed[i].path2, records[i].path2) << i;
    EXPECT_EQ(parsed[i].offset, records[i].offset) << i;
    EXPECT_EQ(parsed[i].length, records[i].length) << i;
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "# d2-trace v1\n"
      "\n"
      "   # indented comment\n"
      "5 0 read a/b 0 100\n");
  common::Arena arena;
  const auto parsed = read_trace(is, arena);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].path, "a/b");
}

TEST(TraceIo, SortsByTime) {
  std::istringstream is(
      "10 0 read b 0 1\n"
      "5 0 read a 0 1\n");
  common::Arena arena;
  const auto parsed = read_trace(is, arena);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].path, "a");
  EXPECT_TRUE(is_sorted_by_time(parsed));
}

TEST(TraceIo, OptionalOffsetLength) {
  std::istringstream is("5 0 read a/b\n");
  common::Arena arena;
  const auto parsed = read_trace(is, arena);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].offset, 0);
  EXPECT_EQ(parsed[0].length, 0);
}

TEST(TraceIo, MalformedLineThrows) {
  common::Arena arena;
  std::istringstream bad1("what\n");
  EXPECT_THROW(read_trace(bad1, arena), PreconditionError);
  std::istringstream bad2("5 0 teleport a/b\n");
  EXPECT_THROW(read_trace(bad2, arena), PreconditionError);
  std::istringstream bad3("5 0 rename a/b\n");  // missing "-> target"
  EXPECT_THROW(read_trace(bad3, arena), PreconditionError);
  std::istringstream bad4("-5 0 read a 0 1\n");
  EXPECT_THROW(read_trace(bad4, arena), PreconditionError);
}

TEST(TraceIo, MissingFileThrows) {
  common::Arena arena;
  EXPECT_THROW(read_trace_file("/nonexistent/path/to/trace", arena),
               PreconditionError);
}

TEST(TraceIo, GeneratorRoundTrip) {
  HarvardParams p;
  p.users = 3;
  p.days = 1;
  p.target_active_bytes = mB(4);
  p.accesses_per_user_day = 50;
  HarvardGenerator gen(p);
  std::ostringstream os;
  write_trace(os, gen.records());
  std::istringstream is(os.str());
  common::Arena arena;
  const auto parsed = read_trace(is, arena);
  ASSERT_EQ(parsed.size(), gen.records().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].path, gen.records()[i].path);
    EXPECT_EQ(parsed[i].op, gen.records()[i].op);
  }
}

TEST(TraceIo, OpNamesRoundTrip) {
  for (const TraceRecord::Op op :
       {TraceRecord::Op::kRead, TraceRecord::Op::kWrite, TraceRecord::Op::kCreate,
        TraceRecord::Op::kRemove, TraceRecord::Op::kRename,
        TraceRecord::Op::kMkdir}) {
    EXPECT_EQ(parse_op(op_name(op)), op);
  }
  EXPECT_THROW(parse_op("bogus"), PreconditionError);
}

}  // namespace
}  // namespace d2::trace
