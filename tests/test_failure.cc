#include "sim/failure.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace d2::sim {
namespace {

FailureParams small_params() {
  FailureParams p;
  p.node_count = 50;
  p.duration = days(7);
  return p;
}

TEST(FailureTrace, AllUpHasNoTransitions) {
  FailureTrace t = FailureTrace::all_up(10, days(1));
  EXPECT_TRUE(t.transitions().empty());
  for (int n = 0; n < 10; ++n) {
    EXPECT_TRUE(t.is_up(n, 0));
    EXPECT_TRUE(t.is_up(n, hours(12)));
  }
}

TEST(FailureTrace, IsUpMatchesIntervals) {
  Rng rng(1);
  FailureTrace t = FailureTrace::generate(small_params(), rng);
  for (int n = 0; n < t.node_count(); ++n) {
    for (const auto& [start, end] : t.down_intervals(n)) {
      EXPECT_FALSE(t.is_up(n, start));
      EXPECT_FALSE(t.is_up(n, (start + end) / 2));
      if (end < t.duration()) EXPECT_TRUE(t.is_up(n, end));
      EXPECT_TRUE(t.is_up(n, start - 1));
    }
  }
}

TEST(FailureTrace, IntervalsSortedAndDisjoint) {
  Rng rng(2);
  FailureTrace t = FailureTrace::generate(small_params(), rng);
  for (int n = 0; n < t.node_count(); ++n) {
    const auto& iv = t.down_intervals(n);
    for (std::size_t i = 0; i + 1 < iv.size(); ++i) {
      EXPECT_LT(iv[i].second, iv[i + 1].first);
    }
    for (const auto& [start, end] : iv) {
      EXPECT_LT(start, end);
      EXPECT_LE(end, t.duration());
    }
  }
}

TEST(FailureTrace, TransitionsSortedAndPaired) {
  Rng rng(3);
  FailureTrace t = FailureTrace::generate(small_params(), rng);
  SimTime last = -1;
  for (const auto& tr : t.transitions()) {
    EXPECT_GE(tr.time, last);
    last = tr.time;
  }
  // Every down interval contributes a down transition.
  std::size_t downs = 0;
  for (const auto& tr : t.transitions()) {
    if (!tr.up) ++downs;
  }
  std::size_t expected = 0;
  for (int n = 0; n < t.node_count(); ++n) expected += t.down_intervals(n).size();
  EXPECT_EQ(downs, expected);
}

TEST(FailureTrace, NodesFailSometimes) {
  Rng rng(4);
  FailureTrace t = FailureTrace::generate(small_params(), rng);
  int nodes_with_failures = 0;
  for (int n = 0; n < t.node_count(); ++n) {
    if (!t.down_intervals(n).empty()) ++nodes_with_failures;
  }
  // With MTTF 120h over a week plus correlated events, most nodes see at
  // least one outage.
  EXPECT_GT(nodes_with_failures, t.node_count() / 3);
}

TEST(FailureTrace, CorrelatedEventsCreateSimultaneousOutages) {
  FailureParams p = small_params();
  p.mttf_hours = 1e9;  // disable independent failures
  p.correlated_events_per_day = 2.0;
  p.correlated_fraction = 0.5;
  Rng rng(5);
  FailureTrace t = FailureTrace::generate(p, rng);
  // Find a down transition and count other nodes down at the same time.
  int max_simultaneous = 0;
  for (const auto& tr : t.transitions()) {
    if (tr.up) continue;
    int down = 0;
    for (int n = 0; n < t.node_count(); ++n) {
      if (!t.is_up(n, tr.time)) ++down;
    }
    max_simultaneous = std::max(max_simultaneous, down);
  }
  EXPECT_GT(max_simultaneous, t.node_count() / 4);
}

TEST(FailureTrace, GroupFailureProbabilityCalibration) {
  // The §8.2 calibration: with the default parameters, the probability a
  // random 3-node replica group is ever fully down in the week is ~0.02.
  FailureParams p;  // paper-scale defaults (247 nodes)
  Rng rng(6);
  FailureTrace t = FailureTrace::generate(p, rng);
  Rng sample_rng(7);
  const double prob = t.group_failure_probability(3, 2000, sample_rng);
  EXPECT_GT(prob, 0.002);
  EXPECT_LT(prob, 0.1);
}

TEST(FailureTrace, FractionUpReasonable) {
  Rng rng(8);
  FailureTrace t = FailureTrace::generate(small_params(), rng);
  // On average most nodes are up (MTTF >> MTTR).
  double sum = 0;
  int samples = 0;
  for (SimTime ts = 0; ts < t.duration(); ts += hours(6)) {
    sum += t.fraction_up(ts);
    ++samples;
  }
  EXPECT_GT(sum / samples, 0.8);
}


TEST(FailureTraceIo, RoundTrips) {
  Rng rng(9);
  FailureParams p = small_params();
  const FailureTrace original = FailureTrace::generate(p, rng);
  std::ostringstream os;
  original.write(os);
  std::istringstream is(os.str());
  const FailureTrace parsed = FailureTrace::read(is);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.duration(), original.duration());
  for (int n = 0; n < original.node_count(); ++n) {
    const auto a = parsed.down_intervals(n);
    const auto b = original.down_intervals(n);
    ASSERT_EQ(a.size(), b.size()) << n;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << n;
  }
  EXPECT_EQ(parsed.transitions().size(), original.transitions().size());
}

TEST(FailureTraceIo, ReadRequiresHeader) {
  std::istringstream is("0 100 200\n");
  EXPECT_THROW(FailureTrace::read(is), PreconditionError);
}

TEST(FailureTraceIo, ReadHandCraftedTrace) {
  std::istringstream is(
      "# d2-failures v1 3 1000000\n"
      "0 100 200\n"
      "2 500 1000000\n");
  const FailureTrace t = FailureTrace::read(is);
  EXPECT_EQ(t.node_count(), 3);
  EXPECT_FALSE(t.is_up(0, 150));
  EXPECT_TRUE(t.is_up(0, 250));
  EXPECT_TRUE(t.is_up(1, 150));
  EXPECT_FALSE(t.is_up(2, 999999));
}

TEST(FailureTrace, NodesRecoverAtTraceEnd) {
  // Intervals clamped at the trace end still emit an up transition there,
  // so consumers see a well-defined all-up state afterwards.
  const auto t = FailureTrace::from_intervals(2, seconds(100),
                                              {{0, seconds(50), seconds(200)}});
  bool has_final_up = false;
  for (const auto& tr : t.transitions()) {
    if (tr.up && tr.time == seconds(100) && tr.node == 0) has_final_up = true;
  }
  EXPECT_TRUE(has_final_up);
}

TEST(FailureTrace, IntervalStartingAtOrPastTraceEndIsDropped) {
  // Regression: clamping an interval whose start lies at/past the trace
  // end used to produce an inverted [duration, duration) interval whose
  // transitions said the node went down at trace end and never came back.
  const auto t = FailureTrace::from_intervals(
      2, seconds(100),
      {{0, seconds(100), seconds(150)}, {1, seconds(250), seconds(300)}});
  EXPECT_TRUE(t.transitions().empty());
  EXPECT_TRUE(t.is_up(0, seconds(99)));
  EXPECT_TRUE(t.is_up(1, seconds(99)));
  for (int node = 0; node < 2; ++node) {
    for (const auto& [start, end] : t.down_intervals(node)) {
      EXPECT_LT(start, end);
    }
  }
}

TEST(FailureTraceIo, ReadRejectsDegenerateHeader) {
  std::istringstream zero_nodes("# d2-failures v1 0 1000\n");
  EXPECT_THROW(FailureTrace::read(zero_nodes), PreconditionError);
  std::istringstream negative_nodes("# d2-failures v1 -3 1000\n");
  EXPECT_THROW(FailureTrace::read(negative_nodes), PreconditionError);
  std::istringstream zero_duration("# d2-failures v1 4 0\n");
  EXPECT_THROW(FailureTrace::read(zero_duration), PreconditionError);
}

class FailureSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSeedSweep, GenerationInvariantsHold) {
  FailureParams p = small_params();
  Rng rng(GetParam());
  FailureTrace t = FailureTrace::generate(p, rng);
  EXPECT_EQ(t.node_count(), p.node_count);
  EXPECT_EQ(t.duration(), p.duration);
  for (int n = 0; n < t.node_count(); ++n) {
    for (const auto& [start, end] : t.down_intervals(n)) {
      EXPECT_GE(start, 0);
      EXPECT_LE(end, p.duration);
      EXPECT_LT(start, end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSeedSweep,
                         ::testing::Values(1, 2, 3, 10, 20, 30));

}  // namespace
}  // namespace d2::sim
