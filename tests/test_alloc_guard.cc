// Steady-state allocation guard for the hot paths.
//
// A global counting operator new/delete observes every heap allocation in
// the test binary. Each test warms a structure to its high-water mark,
// then asserts that the steady-state loop — the part that runs millions
// of times per experiment — performs ZERO heap allocations:
//
//   * sim::EventQueue push / cancel / pop (InlineFunction events in a
//     slot slab; no per-event nodes, no std::function boxes),
//   * store::LookupCache hit path (chunked sorted index, no tree nodes),
//   * store::RetrievalCache hit path and insert/evict churn at capacity
//     (slab + intrusive LRU + backward-shift open addressing).
//
// These guards are the teeth behind DESIGN.md §5c: a regression that
// reintroduces boxing (e.g., an std::function member, a node-based map)
// fails here deterministically rather than showing up as a vague
// benchmark slowdown.
//
// The counters are plain (non-atomic) because every d2_test binary is
// single-threaded; keep this test out of any sanitizer job that injects
// allocating instrumentation threads.
//
// Paranoid builds (-DD2_PARANOID=ON) run full-structure audits inside the
// very mutators measured here, and the audits allocate scratch (census
// vectors, heap copies) by design — so the zero-allocation assertions are
// skipped there. The guarantee is about release hot paths, which the
// default CI configuration still enforces.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/key.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "store/lookup_cache.h"
#include "store/retrieval_cache.h"

namespace {
std::size_t g_news = 0;
std::size_t g_deletes = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n);
}

void* operator new[](std::size_t n) { return operator new(n); }

void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}

void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

namespace d2 {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

/// Allocation counts observed across a scope.
struct AllocProbe {
  std::size_t news0 = g_news;
  std::size_t deletes0 = g_deletes;
  std::size_t news() const { return g_news - news0; }
  std::size_t deletes() const { return g_deletes - deletes0; }
};

TEST(AllocGuard, CountingOperatorsAreLive) {
  const AllocProbe probe;
  delete new int(7);
  EXPECT_GE(probe.news(), 1u);
  EXPECT_GE(probe.deletes(), 1u);
}

TEST(AllocGuard, EventQueuePushCancelPopIsAllocationFree) {
#ifdef D2_PARANOID
  GTEST_SKIP() << "paranoid audits allocate inside the measured hot path";
#endif
  sim::EventQueue q;
  long long sink = 0;
  // Warm to high-water: slot slab and heap vector reach steady capacity.
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(q.push(i, [&sink] { ++sink; }));
  }
  for (int i = 0; i < 256; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().fn();

  const AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    ids.clear();  // capacity retained
    for (int i = 0; i < 256; ++i) {
      const Key k = K(static_cast<std::uint64_t>(i));
      ids.push_back(q.push(round * 1000 + i, [&sink, k] {
        sink += static_cast<long long>(k.limb(0));
      }));
    }
    for (int i = 0; i < 256; i += 2) {
      q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!q.empty()) q.pop().fn();
  }
  EXPECT_EQ(probe.news(), 0u) << "EventQueue steady state allocated";
  EXPECT_EQ(probe.deletes(), 0u);
  EXPECT_GT(sink, 0);
}

TEST(AllocGuard, SimulatorScheduleDispatchIsAllocationFree) {
#ifdef D2_PARANOID
  GTEST_SKIP() << "paranoid audits allocate inside the measured hot path";
#endif
  sim::Simulator sim;
  long long fired = 0;
  // Self-rescheduling functor: the pattern used by System's periodic
  // maintenance events. One warm run_until sizes queue internals.
  struct Tick {
    sim::Simulator* sim;
    long long* fired;
    void operator()() const {
      ++*fired;
      if (*fired % 1000 != 0) sim->schedule_after(5, *this);
    }
  };
  sim.schedule_after(1, Tick{&sim, &fired});
  sim.run_until(10'000);

  const AllocProbe probe;
  sim.schedule_after(1, Tick{&sim, &fired});
  sim.run_until(20'000);
  EXPECT_EQ(probe.news(), 0u) << "Simulator dispatch steady state allocated";
  EXPECT_EQ(probe.deletes(), 0u);
  EXPECT_GE(fired, 2000);
}

TEST(AllocGuard, LookupCacheHitPathIsAllocationFree) {
  store::LookupCache cache(hours(100));  // no sweeps during the test
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.insert(1, static_cast<int>(i), K(i * 100), K(i * 100 + 99));
  }

  const AllocProbe probe;
  long long sum = 0;
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      const auto hit = cache.find(2, K(i * 100 + 50));
      ASSERT_TRUE(hit.has_value());
      sum += *hit;
    }
  }
  EXPECT_EQ(probe.news(), 0u) << "LookupCache hit path allocated";
  EXPECT_EQ(probe.deletes(), 0u);
  EXPECT_GT(sum, 0);
}

TEST(AllocGuard, RetrievalCacheHitAndChurnAreAllocationFree) {
#ifdef D2_PARANOID
  GTEST_SKIP() << "paranoid audits allocate inside the measured hot path";
#endif
  store::RetrievalCache cache(kB(8) * 128);
  // Warm past the high-water mark: fill to capacity, then enough extra
  // inserts that slab, free list, and table have seen peak occupancy.
  for (std::uint64_t i = 0; i < 512; ++i) cache.insert(K(i), kB(8));

  const AllocProbe probe;
  // Hit path.
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t i = 512 - 128; i < 512; ++i) {
      ASSERT_TRUE(cache.lookup(K(i)));
    }
  }
  // Insert/evict churn at capacity: every insert of a fresh key evicts
  // the LRU entry; slots recycle through the free list, and backward-
  // shift deletion keeps the table at live occupancy (no rehash).
  for (std::uint64_t i = 512; i < 4096; ++i) {
    cache.insert(K(i), kB(8));
    cache.erase(K(i - 64));
  }
  EXPECT_EQ(probe.news(), 0u) << "RetrievalCache steady state allocated";
  EXPECT_EQ(probe.deletes(), 0u);
}

}  // namespace
}  // namespace d2
