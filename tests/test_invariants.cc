// Corruption-injection tests for the check_invariants() validators.
//
// Each test uses a friend TestPeer to reach into a structure's private
// state, breaks exactly one invariant, and asserts that the structure's
// full audit throws InvariantError with a message naming that invariant.
// This proves the paranoid validators actually detect the corruption
// classes they document — a validator that never fires is worse than none,
// because it buys false confidence.
//
// Also covers the D2_REQUIRE precondition guards on public entry points
// (PreconditionError on bad inputs), the ParanoidGate pacing contract, and
// a clean-run smoke test of every audit on healthy structures.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/key.h"
#include "common/lane.h"
#include "common/units.h"
#include "core/config.h"
#include "core/system.h"
#include "dht/ring.h"
#include "sim/event_queue.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "store/block_index.h"
#include "store/block_map.h"
#include "store/lookup_cache.h"
#include "store/retrieval_cache.h"

namespace d2::sim {

struct EventQueueTestPeer {
  static std::vector<std::uint64_t>& meta(EventQueue& q) { return q.meta_; }
  static std::size_t& live(EventQueue& q) { return q.live_; }
  static constexpr std::uint64_t slot_mask() { return EventQueue::kSlotMask; }
  // Timing-wheel internals (TimingWheel befriends this peer too), for the
  // wheel corruption-injection tests.
  static std::vector<SimTime>& wheel_time(EventQueue& q) {
    return q.wheel_.time_;
  }
  static std::vector<std::uint32_t>& wheel_next(EventQueue& q) {
    return q.wheel_.next_;
  }
  static std::vector<std::uint32_t>& wheel_prev(EventQueue& q) {
    return q.wheel_.prev_;
  }
  static std::uint64_t& wheel_occupied(EventQueue& q, int level) {
    return q.wheel_.occupied_[static_cast<std::size_t>(level)];
  }
  static std::uint32_t& wheel_head(EventQueue& q) { return q.wheel_.head_; }
  static std::size_t& wheel_live(EventQueue& q) { return q.wheel_.live_; }
  static constexpr std::uint32_t wheel_nil() { return TimingWheel::kNil; }
};

}  // namespace d2::sim

namespace d2::store {

struct SortedKeyIndexTestPeer {
  template <class V>
  static void swap_first_two_keys(SortedKeyIndex<V>& idx) {
    auto& chunk = *idx.chunks_.front();
    std::swap(chunk.keys[0], chunk.keys[1]);
  }
  template <class V>
  static void corrupt_directory(SortedKeyIndex<V>& idx) {
    idx.last_.front() = Key::min();
  }
  template <class V>
  static void corrupt_size(SortedKeyIndex<V>& idx) {
    ++idx.size_;
  }
};

struct BlockMapTestPeer {
  static void drift_primary_count(BlockMap& m) {
    ++m.slices_.front().primary_count[0];
  }
  static void drift_physical_bytes(BlockMap& m) {
    ++m.slices_.front().physical_bytes[0];
  }
  /// Moves one block's state into a slice that does not own its key,
  /// breaking the slice-ownership bijection (accounting moves with it so
  /// only the bijection audit can catch the corruption).
  static void misfile_block(BlockMap& m, const Key& k) {
    const int owner = m.plan_.arc_of(k);
    const int wrong = (owner + 1) % m.plan_.arcs();
    auto& src = m.slices_[static_cast<std::size_t>(owner)];
    auto& dst = m.slices_[static_cast<std::size_t>(wrong)];
    BlockState* b = src.index.find(k);
    D2_REQUIRE(b != nullptr);
    BlockState moved = *b;
    const Bytes size = moved.size;
    const int primary = moved.replicas.front().node;
    src.index.erase(k);
    dst.index.insert(k, std::move(moved));
    src.total_bytes -= size;
    dst.total_bytes += size;
    src.primary_count[static_cast<std::size_t>(primary)] -= 1;
    dst.primary_count[static_cast<std::size_t>(primary)] += 1;
    src.primary_bytes[static_cast<std::size_t>(primary)] -= size;
    dst.primary_bytes[static_cast<std::size_t>(primary)] += size;
    const BlockState& placed = *dst.index.find(k);
    for (const Replica& r : placed.replicas) {
      if (!r.has_data) continue;
      src.physical_bytes[static_cast<std::size_t>(r.node)] -=
          placed.member_bytes;
      dst.physical_bytes[static_cast<std::size_t>(r.node)] +=
          placed.member_bytes;
    }
  }
};

struct LookupCacheTestPeer {
  static void invert_ranges(LookupCache& c) {
    c.entries_.for_each([](const Key& end, LookupCache::Entry& e) {
      (void)end;
      e.start = Key::max();
    });
  }
};

struct RetrievalCacheTestPeer {
  static void break_lru_ring(RetrievalCache& c) {
    // Point the tail marker somewhere that is not the end of the chain.
    c.lru_tail_ = c.lru_head_;
  }
  static void sever_lru_link(RetrievalCache& c) {
    c.slab_[c.slab_[c.lru_head_].next].prev = RetrievalCache::kNull;
  }
  static void drop_table_entry(RetrievalCache& c) {
    for (auto& slot : c.table_) {
      if (slot != RetrievalCache::kNull) {
        slot = RetrievalCache::kNull;
        return;
      }
    }
  }
};

}  // namespace d2::store

namespace d2::dht {

struct RingTestPeer {
  static void break_bijection(Ring& r) {
    r.ids_.begin()->second = Key::from_uint64(0xdeadbeef);
  }
};

}  // namespace d2::dht

namespace d2 {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

/// Runs `fn` and asserts it throws InvariantError whose message names the
/// violated invariant (contains `fragment`).
template <class Fn>
void ExpectInvariantNamed(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    ADD_FAILURE() << "no exception thrown (expected InvariantError naming \""
                  << fragment << "\")";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "InvariantError message\n  \"" << e.what()
        << "\"\ndoes not name \"" << fragment << "\"";
  } catch (const std::exception& e) {
    ADD_FAILURE() << "threw a different exception type: " << e.what();
  }
}

// ------------------------------------------------------------ clean runs --

TEST(Invariants, HealthyStructuresPassTheirAudits) {
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  for (int i = 0; i < 10; ++i) q.pop();
  EXPECT_NO_THROW(q.check_invariants());

  store::SortedKeyIndex<int> idx;
  for (std::uint64_t i = 0; i < 500; ++i) idx.insert(K(i * 7), int(i));
  for (std::uint64_t i = 0; i < 500; i += 2) idx.erase(K(i * 7));
  EXPECT_NO_THROW(idx.check_invariants());

  store::BlockMap map(8);
  for (std::uint64_t i = 0; i < 64; ++i) {
    map.insert(K(i), 1000,
               {int(i % 8), int((i + 1) % 8), int((i + 2) % 8)});
  }
  map.mark_missing(K(3), 4);
  EXPECT_NO_THROW(map.check_invariants());

  store::LookupCache cache(hours(1));
  cache.insert(0, 1, K(100), K(200));
  cache.insert(0, 2, K(200), K(300));
  EXPECT_NO_THROW(cache.check_invariants());

  store::RetrievalCache rc(kB(64));
  for (std::uint64_t i = 0; i < 32; ++i) rc.insert(K(i), kB(4));
  rc.lookup(K(30));
  rc.erase(K(31));
  EXPECT_NO_THROW(rc.check_invariants());

  dht::Ring ring;
  for (int i = 0; i < 16; ++i) {
    ring.add(i, K(std::uint64_t(i) * 1000 + 1));
  }
  ring.move(3, K(77777));
  EXPECT_NO_THROW(ring.check_invariants());
}

// ------------------------------------------------------------ event queue --

TEST(Invariants, EventQueueDetectsOrphanedSlot) {
  sim::EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  // Clear a live slot's mark without putting it on the free list: the slot
  // is now neither live nor free.
  sim::EventQueueTestPeer::meta(q)[0] = 0;
  ExpectInvariantNamed([&] { q.check_invariants(); }, "orphaned slot");
}

TEST(Invariants, EventQueueDetectsFreeListCycle) {
  sim::EventQueue q;
  const sim::EventId id = q.push(1, [] {});
  q.push(2, [] {});
  q.cancel(id);  // slot 0 joins the free list
  // Make the free list point back at its own head.
  auto& meta = sim::EventQueueTestPeer::meta(q);
  meta[0] = (meta[0] & ~sim::EventQueueTestPeer::slot_mask()) | 0;
  ExpectInvariantNamed([&] { q.check_invariants(); }, "free-list cycle");
}

TEST(Invariants, EventQueueDetectsLiveCountDrift) {
  sim::EventQueue q;
  q.push(1, [] {});
  ++sim::EventQueueTestPeer::live(q);
  ExpectInvariantNamed([&] { q.check_invariants(); },
                       "live-mark count disagrees with live_");
}

// --------------------------------------------------------------- mailbox --

TEST(Invariants, MailboxDetectsSendBelowTheDeliveryFloor) {
  // Watermark invariant (DESIGN.md §12): once a window opens, every
  // staged cross-arc send must target a time at or after its delivery
  // floor — a send into the past means a lane outran the sync horizon,
  // which would corrupt the deterministic (time, src, seq) release order.
  sim::Mailbox mbox;
  mbox.reset(2);
  mbox.set_floor(1000);
  mbox.post(0, 1000, 0, sim::EventFn([] {}));  // exactly at the floor: fine
  mbox.post(1, 2500, 1, sim::EventFn([] {}));
  EXPECT_NO_THROW(mbox.check_invariants());
  mbox.post(1, 999, 0, sim::EventFn([] {}));  // one tick below the floor
  ExpectInvariantNamed([&] { mbox.check_invariants(); },
                       "precedes the window delivery floor");
}

// ----------------------------------------------------------- timing wheel --
// Each test breaks one wheel invariant on a healthy wheel-backed queue
// (the default backend) and asserts the audit names it. Slot ids are the
// slab allocation order: a fresh queue hands out 0, 1, 2, ...

TEST(Invariants, WheelDetectsWrongBucketForSlotTime) {
  sim::EventQueue q;
  q.push(milliseconds(5), [] {});
  // Rewrite the resident slot's time: place() now maps it elsewhere, so
  // the bucket it physically sits in no longer matches its time.
  sim::EventQueueTestPeer::wheel_time(q)[0] = milliseconds(9);
  ExpectInvariantNamed([&] { q.check_invariants(); },
                       "wrong bucket for its time");
}

TEST(Invariants, WheelDetectsBrokenPrevLink) {
  sim::EventQueue q;
  q.push(7, [] {});  // slot 0
  q.push(7, [] {});  // slot 1: same bucket, linked after slot 0
  sim::EventQueueTestPeer::wheel_prev(q)[1] =
      sim::EventQueueTestPeer::wheel_nil();
  ExpectInvariantNamed([&] { q.check_invariants(); }, "prev link broken");
}

TEST(Invariants, WheelDetectsLinkOutOfRange) {
  sim::EventQueue q;
  q.push(7, [] {});
  q.push(7, [] {});
  // Point a next link past the slot arrays (but not at the kNil end
  // marker): the walk must bounds-check before following it.
  sim::EventQueueTestPeer::wheel_next(q)[0] = 1000000;
  ExpectInvariantNamed([&] { q.check_invariants(); }, "link out of range");
}

TEST(Invariants, WheelDetectsStaleOccupancyBit) {
  sim::EventQueue q;
  q.push(1, [] {});
  // Claim some empty far-level bucket is occupied.
  sim::EventQueueTestPeer::wheel_occupied(q, 5) |= std::uint64_t{1} << 33;
  ExpectInvariantNamed([&] { q.check_invariants(); },
                       "occupancy bit disagrees with bucket");
}

TEST(Invariants, WheelDetectsWrongHeadCache) {
  sim::EventQueue q;
  q.push(seconds(1), [] {});  // slot 0: the true minimum
  q.push(seconds(2), [] {});  // slot 1
  sim::EventQueueTestPeer::wheel_head(q) = 1;
  ExpectInvariantNamed([&] { q.check_invariants(); },
                       "head cache is not the (time, seq) minimum");
}

TEST(Invariants, WheelDetectsResidentCountDrift) {
  sim::EventQueue q;
  q.push(1, [] {});
  ++sim::EventQueueTestPeer::wheel_live(q);
  ExpectInvariantNamed([&] { q.check_invariants(); },
                       "resident count disagrees with owner");
}

// ----------------------------------------------------------- sorted index --

TEST(Invariants, SortedIndexDetectsUnsortedChunk) {
  store::SortedKeyIndex<int> idx;
  for (std::uint64_t i = 0; i < 8; ++i) idx.insert(K(i * 10), int(i));
  store::SortedKeyIndexTestPeer::swap_first_two_keys(idx);
  ExpectInvariantNamed([&] { idx.check_invariants(); },
                       "chunk not strictly sorted");
}

TEST(Invariants, SortedIndexDetectsStaleDirectory) {
  store::SortedKeyIndex<int> idx;
  for (std::uint64_t i = 1; i <= 8; ++i) idx.insert(K(i * 10), int(i));
  store::SortedKeyIndexTestPeer::corrupt_directory(idx);
  ExpectInvariantNamed([&] { idx.check_invariants(); },
                       "directory max out of date");
}

TEST(Invariants, SortedIndexDetectsSizeDrift) {
  store::SortedKeyIndex<int> idx;
  idx.insert(K(1), 1);
  store::SortedKeyIndexTestPeer::corrupt_size(idx);
  ExpectInvariantNamed([&] { idx.check_invariants(); },
                       "size counter disagrees with contents");
}

// -------------------------------------------------------------- block map --

TEST(Invariants, BlockMapDetectsPrimaryCountDrift) {
  store::BlockMap map(4);
  map.insert(K(1), 100, {0, 1, 2});
  store::BlockMapTestPeer::drift_primary_count(map);
  ExpectInvariantNamed([&] { map.check_invariants(); },
                       "primary count accounting out of sync");
}

TEST(Invariants, BlockMapDetectsPhysicalBytesDrift) {
  store::BlockMap map(4);
  map.insert(K(1), 100, {0, 1, 2});
  store::BlockMapTestPeer::drift_physical_bytes(map);
  ExpectInvariantNamed([&] { map.check_invariants(); },
                       "physical bytes accounting out of sync");
}

TEST(Invariants, BlockMapDetectsSliceOwnershipViolation) {
  // 4 slices split the top limb into quarters; keys built from the high
  // limb land in a chosen slice.
  store::BlockMap map(4, /*arcs=*/4);
  const Key k = Key::from_high64(std::uint64_t{1} << 62);  // slice 1
  map.insert(k, 100, {0, 1, 2});
  map.insert(Key::from_high64(std::uint64_t{3} << 62), 100, {1, 2, 3});
  EXPECT_NO_THROW(map.check_invariants());
  store::BlockMapTestPeer::misfile_block(map, k);
  ExpectInvariantNamed([&] { map.check_invariants(); },
                       "slice that does not own it");
}

TEST(Invariants, BlockMapDetectsDuplicateReplica) {
  store::BlockMap map(4);
  map.insert(K(1), 100, {0, 1, 2});
  store::BlockState* b = map.find_mutable(K(1));
  ASSERT_NE(b, nullptr);
  b->replicas.push_back(b->replicas.front());
  ExpectInvariantNamed([&] { map.check_invariants(); },
                       "duplicate node in replica set");
}

// ----------------------------------------------------------- lookup cache --

TEST(Invariants, LookupCacheDetectsInvertedRange) {
  store::LookupCache cache(hours(1));
  cache.insert(0, 1, K(100), K(200));
  store::LookupCacheTestPeer::invert_ranges(cache);
  ExpectInvariantNamed([&] { cache.check_invariants(); },
                       "range start past its end key");
}

// -------------------------------------------------------- retrieval cache --

TEST(Invariants, RetrievalCacheDetectsUnclosedLruRing) {
  store::RetrievalCache rc(kB(64));
  for (std::uint64_t i = 0; i < 4; ++i) rc.insert(K(i), kB(4));
  store::RetrievalCacheTestPeer::break_lru_ring(rc);
  ExpectInvariantNamed([&] { rc.check_invariants(); }, "LRU ring not closed");
}

TEST(Invariants, RetrievalCacheDetectsSeveredLruLink) {
  store::RetrievalCache rc(kB(64));
  for (std::uint64_t i = 0; i < 4; ++i) rc.insert(K(i), kB(4));
  store::RetrievalCacheTestPeer::sever_lru_link(rc);
  ExpectInvariantNamed([&] { rc.check_invariants(); },
                       "LRU prev/next links disagree");
}

TEST(Invariants, RetrievalCacheDetectsDroppedTableEntry) {
  store::RetrievalCache rc(kB(64));
  for (std::uint64_t i = 0; i < 4; ++i) rc.insert(K(i), kB(4));
  store::RetrievalCacheTestPeer::drop_table_entry(rc);
  ExpectInvariantNamed([&] { rc.check_invariants(); },
                       "table population disagrees with size_");
}

// ------------------------------------------------------------------- ring --

TEST(Invariants, RingDetectsBrokenBijection) {
  dht::Ring ring;
  for (int i = 0; i < 8; ++i) {
    ring.add(i, K(std::uint64_t(i) * 100 + 1));
  }
  dht::RingTestPeer::break_bijection(ring);
  ExpectInvariantNamed([&] { ring.check_invariants(); },
                       "id maps are not inverse bijections");
}

// ----------------------------------------------------------------- system --

TEST(Invariants, SystemAuditPassesOnHealthyRun) {
  core::SystemConfig config;
  config.node_count = 16;
  sim::Simulator sim;
  core::System system(config, sim);
  for (std::uint64_t i = 0; i < 200; ++i) system.put(K(i * 37), 4096);
  for (std::uint64_t i = 0; i < 200; i += 4) system.remove(K(i * 37));
  sim.run_until(minutes(5));
  EXPECT_NO_THROW(system.check_invariants());
}

TEST(Invariants, RuntimeParanoidFlagAuditsWithoutParanoidBuild) {
  // The `d2sim --paranoid` path: audits run because the config asks for
  // them, whether or not the build defines D2_PARANOID.
  core::SystemConfig config;
  config.node_count = 8;
  config.paranoid_audits = true;
  sim::Simulator sim;
  core::System system(config, sim);
  for (std::uint64_t i = 0; i < 100; ++i) system.put(K(i * 13), 1024);
  system.start_load_balancing();
  sim.run_until(hours(2));
  EXPECT_NO_THROW(system.check_invariants());
}

// ----------------------------------------------------------- lane binding --

// RAII around lane::bind so a failed assertion cannot leak a binding
// into later tests on the same thread.
struct ScopedLaneBinding {
  ScopedLaneBinding(const void* owner, int arc) { lane::bind(owner, arc); }
  ~ScopedLaneBinding() { lane::unbind(); }
};

TEST(LaneOwnership, UnboundThreadMutatesAnyShard) {
  // Coordinator semantics: with no lane binding, cross-arc mutation is
  // legal by design (readjustment, recovery sweeps, test setup).
  ASSERT_FALSE(lane::bound());
  store::BlockMap map(8, /*arcs=*/4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_NO_THROW(
        map.insert(Key::from_high64(i << 62), 100, {0, 1, 2}));
  }
}

TEST(LaneOwnership, BoundThreadMutatesItsOwnShard) {
  store::BlockMap map(8, /*arcs=*/4);
  const Key k = Key::from_high64(std::uint64_t{1} << 62);  // arc 1
  ASSERT_EQ(map.arc_of(k), 1);
  ScopedLaneBinding binding(&map, 1);
  EXPECT_NO_THROW(map.insert(k, 100, {0, 1, 2}));
  EXPECT_NO_THROW(map.mark_missing(k, 1));
}

TEST(LaneOwnership, WrongLaneMutationFiresOwnerLaneAssert) {
  if (!kParanoid) {
    GTEST_SKIP() << "D2_ASSERT_OWNER_LANE compiles out without D2_PARANOID";
  }
  store::BlockMap map(8, /*arcs=*/4);
  const Key k = Key::from_high64(std::uint64_t{3} << 62);  // arc 3
  ASSERT_EQ(map.arc_of(k), 3);
  ScopedLaneBinding binding(&map, 1);  // thread claims to be arc 1's lane
  ExpectInvariantNamed([&] { map.insert(k, 100, {0, 1, 2}); },
                       "touched arc 3's shard");
}

TEST(LaneOwnership, WrongLaneSystemWriteFiresOwnerLaneAssert) {
  if (!kParanoid) {
    GTEST_SKIP() << "D2_ASSERT_OWNER_LANE compiles out without D2_PARANOID";
  }
  // The stamped entry points in core::System (put_at et al.) consult the
  // same thread-local binding; with arcs=1 every key lives on arc 0, so
  // a thread bound to arc 1 must be rejected.
  core::SystemConfig config;
  config.node_count = 8;
  sim::Simulator sim;
  core::System system(config, sim);
  ScopedLaneBinding binding(&system, 1);
  ExpectInvariantNamed([&] { system.put(K(42), 1024); },
                       "touched arc 0's shard");
}

TEST(LaneOwnership, BindingClearsOnUnbind) {
  EXPECT_FALSE(lane::bound());
  EXPECT_EQ(lane::current_arc(), -1);
  {
    ScopedLaneBinding binding(this, 2);
    EXPECT_TRUE(lane::bound());
    EXPECT_EQ(lane::current_arc(), 2);
  }
  EXPECT_FALSE(lane::bound());
  EXPECT_EQ(lane::current_arc(), -1);
}

// ---------------------------------------------------------- preconditions --

TEST(Preconditions, BlockMapRejectsNegativeSize) {
  store::BlockMap map(4);
  EXPECT_THROW(map.insert(K(1), -1, {0, 1}), PreconditionError);
}

TEST(Preconditions, BlockMapRejectsMemberBytesExceedingSize) {
  store::BlockMap map(4);
  EXPECT_THROW(map.insert(K(1), 100, {0, 1}, 200), PreconditionError);
}

TEST(Preconditions, LookupCacheRejectsNegativeNode) {
  store::LookupCache cache(hours(1));
  EXPECT_THROW(cache.insert(0, -1, K(1), K(2)), PreconditionError);
}

TEST(Preconditions, ParanoidGatePacesAudits) {
  ParanoidGate gate;
  // Small structures audit on every mutation...
  EXPECT_TRUE(gate.due(10));
  // ...large ones roughly every size/16 mutations.
  int fired = 0;
  for (int i = 0; i < 1600; ++i) {
    if (gate.due(1600)) ++fired;
  }
  EXPECT_EQ(fired, 16);
}

}  // namespace
}  // namespace d2
