// Small-scale end-to-end tests of the three experiment engines. These are
// integration tests: they replay a miniature Harvard-like workload through
// the full stack (FS -> store -> ring -> load balancer -> failures) and
// check the headline *shapes* of the paper's results.
#include <gtest/gtest.h>

#include "core/availability.h"
#include "core/balance.h"
#include "core/performance.h"

namespace d2::core {
namespace {

trace::HarvardParams tiny_workload(std::uint64_t seed = 5) {
  trace::HarvardParams p;
  p.users = 8;
  p.days = 2;
  p.target_active_bytes = mB(24);
  p.accesses_per_user_day = 150;
  p.seed = seed;
  return p;
}

SystemConfig d2_config(int nodes = 24) {
  SystemConfig c;
  c.node_count = nodes;
  c.replicas = 3;
  c.scheme = fs::KeyScheme::kD2;
  c.active_load_balance = true;
  c.seed = 11;
  return c;
}

SystemConfig traditional_config(int nodes = 24) {
  SystemConfig c = d2_config(nodes);
  c.scheme = fs::KeyScheme::kTraditionalBlock;
  c.active_load_balance = false;
  return c;
}

AvailabilityParams availability_params(const SystemConfig& sys) {
  AvailabilityParams p;
  p.system = sys;
  p.workload = tiny_workload();
  p.failure.node_count = sys.node_count;
  p.failure.duration = days(3);
  p.failure.mttf_hours = 40;   // aggressive failures so the tiny run sees some
  p.failure.mttr_hours = 6;
  p.failure.correlated_events_per_day = 1.5;
  p.failure.correlated_fraction = 0.3;
  p.warmup = hours(12);
  return p;
}

TEST(AvailabilityExperiment, D2AccessesFewerNodesPerTask) {
  AvailabilityParams pd2 = availability_params(d2_config());
  pd2.enable_failures = false;
  AvailabilityParams ptrad = availability_params(traditional_config());
  ptrad.enable_failures = false;

  const AvailabilityResult d2 = AvailabilityExperiment(pd2).run();
  const AvailabilityResult trad = AvailabilityExperiment(ptrad).run();

  ASSERT_GT(d2.tasks, 50u);
  EXPECT_EQ(d2.tasks, trad.tasks);  // same workload segmentation
  // Table 2's shape: D2 touches several times fewer nodes per task.
  EXPECT_LT(d2.mean_nodes_per_task, trad.mean_nodes_per_task * 0.7);
  // Blocks/files per task are workload properties, so nearly identical.
  EXPECT_NEAR(d2.mean_blocks_per_task, trad.mean_blocks_per_task,
              0.25 * trad.mean_blocks_per_task);
  EXPECT_EQ(d2.unknown_key_gets, 0u);
  EXPECT_EQ(trad.unknown_key_gets, 0u);
}

TEST(AvailabilityExperiment, D2FailsFewerTasksUnderFailures) {
  const AvailabilityResult d2 =
      AvailabilityExperiment(availability_params(d2_config())).run();
  const AvailabilityResult trad =
      AvailabilityExperiment(availability_params(traditional_config())).run();
  // Fig 7's shape. With an aggressive failure model the traditional DHT
  // must lose tasks; D2 loses at most as many.
  EXPECT_LE(d2.task_unavailability(), trad.task_unavailability());
  EXPECT_EQ(d2.unknown_key_gets, 0u);
}

TEST(AvailabilityExperiment, PerUserStatsCoverUsers) {
  AvailabilityParams p = availability_params(d2_config());
  p.enable_failures = false;
  const AvailabilityResult r = AvailabilityExperiment(p).run();
  EXPECT_EQ(r.per_user_unavailability.size(), 8u);
  for (const auto& [user, unavail] : r.per_user_unavailability) {
    EXPECT_GE(unavail, 0.0);
    EXPECT_LE(unavail, 1.0);
  }
}

PerformanceParams perf_params(const SystemConfig& sys, bool parallel) {
  PerformanceParams p;
  p.system = sys;
  p.system.replicas = 3;
  p.workload = tiny_workload(9);
  p.warmup = hours(6);
  p.window_count = 5;
  p.parallel = parallel;
  return p;
}

TEST(PerformanceExperiment, D2NeedsFewerLookups) {
  const PerformanceResult d2 =
      PerformanceExperiment(perf_params(d2_config(), false)).run();
  const PerformanceResult trad =
      PerformanceExperiment(perf_params(traditional_config(), false)).run();
  ASSERT_FALSE(d2.groups.empty());
  ASSERT_FALSE(trad.groups.empty());
  // Fig 9/13's shape: far fewer lookups and a lower miss rate.
  EXPECT_LT(d2.lookup_messages, trad.lookup_messages);
  EXPECT_LT(d2.mean_cache_miss_rate, trad.mean_cache_miss_rate);
}

TEST(PerformanceExperiment, D2FasterSequentially) {
  const PerformanceResult d2 =
      PerformanceExperiment(perf_params(d2_config(), false)).run();
  const PerformanceResult trad =
      PerformanceExperiment(perf_params(traditional_config(), false)).run();
  const SpeedupSummary s = compute_speedup(trad, d2);
  ASSERT_GT(s.matched_groups, 8u);
  // Fig 10's shape: sequential speedup > 1.
  EXPECT_GT(s.overall, 1.0);
}

TEST(PerformanceExperiment, MatchedLatenciesAlign) {
  const PerformanceResult a =
      PerformanceExperiment(perf_params(d2_config(), false)).run();
  const PerformanceResult b =
      PerformanceExperiment(perf_params(traditional_config(), false)).run();
  const auto pairs = matched_latencies(b, a);
  EXPECT_FALSE(pairs.empty());
  for (const auto& [base, treat] : pairs) {
    EXPECT_GT(base, 0);
    EXPECT_GT(treat, 0);
  }
}

TEST(PerformanceExperiment, SpeedupOfSelfIsOne) {
  const PerformanceResult r =
      PerformanceExperiment(perf_params(d2_config(), false)).run();
  const SpeedupSummary s = compute_speedup(r, r);
  EXPECT_NEAR(s.overall, 1.0, 1e-9);
}

BalanceParams balance_params(const SystemConfig& sys) {
  BalanceParams p;
  p.system = sys;
  p.harvard = tiny_workload(13);
  p.warmup = hours(12);
  return p;
}

TEST(BalanceExperiment, D2KeepsImbalanceBounded) {
  const BalanceResult d2 = BalanceExperiment(balance_params(d2_config())).run();
  ASSERT_FALSE(d2.imbalance.empty());
  ASSERT_FALSE(d2.days.empty());
  // D2's balanced steady state: max load within a small factor of mean.
  EXPECT_LT(d2.mean_max_over_mean(), 5.0);
  EXPECT_GT(d2.lb_moves, 0);
}

TEST(BalanceExperiment, D2WithoutBalancingIsSkewed) {
  SystemConfig c = d2_config();
  c.active_load_balance = false;
  const BalanceResult no_lb = BalanceExperiment(balance_params(c)).run();
  const BalanceResult lb = BalanceExperiment(balance_params(d2_config())).run();
  // Locality-preserving keys without Mercury are badly imbalanced.
  EXPECT_GT(no_lb.mean_imbalance(), lb.mean_imbalance() * 1.5);
}

TEST(BalanceExperiment, DayAccountingConsistent) {
  const BalanceResult r = BalanceExperiment(balance_params(d2_config())).run();
  for (const DayStats& d : r.days) {
    EXPECT_GE(d.written, 0);
    EXPECT_GE(d.removed, 0);
    EXPECT_GE(d.migrated, 0);
    EXPECT_GT(d.total_at_start, 0);
  }
  // Table 3's shape: daily churn is a modest fraction of resident data.
  const DayStats& d1 = r.days[1];
  EXPECT_LT(static_cast<double>(d1.written) / d1.total_at_start, 1.0);
}

TEST(BalanceExperiment, WebcacheRunsFromEmpty) {
  BalanceParams p;
  p.system = d2_config(16);
  p.workload = BalanceWorkload::kWebcache;
  p.web.clients = 15;
  p.web.days = 2;
  p.web.sites = 60;
  p.web.requests_per_client_day = 120;
  const BalanceResult r = BalanceExperiment(p).run();
  ASSERT_GE(r.days.size(), 2u);
  EXPECT_EQ(r.days[0].total_at_start, 0);  // starts empty
  EXPECT_GT(r.days[0].written, 0);
  // Eviction removes data (Table 3's huge webcache churn).
  Bytes removed = 0;
  for (const DayStats& d : r.days) removed += d.removed;
  EXPECT_GT(removed, 0);
}

}  // namespace
}  // namespace d2::core
