// Differential property tests: the timing-wheel scheduler vs the
// reference binary heap (sim/event_queue.h, DESIGN.md §11).
//
// Every test drives two EventQueues — one per SchedulerKind — through an
// identical op schedule and asserts the *observable* state agrees after
// every single op: empty/pending, next_time, next_order, cancel results,
// and the exact (time, id) of every pop. Because slot allocation and seq
// assignment live in the shared slab (not the scheduler), the EventIds
// themselves must match too, which pins equal-time FIFO order down to the
// id. check_invariants() runs on both queues after every op, so any
// structural drift (wheel bucket membership, heap property, free list)
// surfaces at the op that caused it, not at the end.
//
// Coverage targets the wheel's hard cases: equal-time FIFO runs,
// cancel-at-top (head-cache refresh without advancing the clock),
// cascade boundaries (times straddling 64^k digit rollovers), overdue
// pushes (below the cursor after a pop), overflow times (above bit 47,
// including kSimTimeNever), seq-tag reuse under slot churn, and long
// randomized push/cancel/pop schedules over several time magnitudes.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace d2::sim {
namespace {

/// Drives a wheel-backed and a heap-backed queue in lockstep and checks
/// observable equivalence after every operation.
class QueuePair {
 public:
  QueuePair() : wheel_(SchedulerKind::kWheel), heap_(SchedulerKind::kHeap) {}

  EventId push(SimTime t) {
    const EventId a = wheel_.push(t, [] {});
    const EventId b = heap_.push(t, [] {});
    EXPECT_EQ(a, b) << "slot/seq allocation diverged at t=" << t;
    compare();
    return a;
  }

  EventId push_ordered(SimTime t, std::uint64_t order) {
    const EventId a = wheel_.push_ordered(t, order, [] {});
    const EventId b = heap_.push_ordered(t, order, [] {});
    EXPECT_EQ(a, b);
    compare();
    return a;
  }

  bool cancel(EventId id) {
    const bool a = wheel_.cancel(id);
    const bool b = heap_.cancel(id);
    EXPECT_EQ(a, b) << "cancel result diverged for id=" << id;
    compare();
    return a;
  }

  std::pair<SimTime, EventId> pop() {
    const EventQueue::Event a = wheel_.pop();
    const EventQueue::Event b = heap_.pop();
    EXPECT_EQ(a.time, b.time) << "pop time diverged";
    EXPECT_EQ(a.id, b.id) << "pop id diverged at t=" << a.time;
    compare();
    return {a.time, a.id};
  }

  bool empty() const { return wheel_.empty(); }
  std::size_t pending() const { return wheel_.pending(); }
  SimTime next_time() const { return wheel_.next_time(); }

  /// Drains both queues, asserting the merged stream is sorted by
  /// (time, id-order) — FIFO for equal times because ids carry seqs.
  std::vector<std::pair<SimTime, EventId>> drain() {
    std::vector<std::pair<SimTime, EventId>> out;
    SimTime prev_t = 0;
    bool first = true;
    while (!empty()) {
      const auto [t, id] = pop();
      if (!first) {
        EXPECT_LE(prev_t, t) << "pop stream went backwards";
      }
      first = false;
      prev_t = t;
      out.push_back({t, id});
    }
    return out;
  }

 private:
  void compare() {
    ASSERT_NO_THROW(wheel_.check_invariants());
    ASSERT_NO_THROW(heap_.check_invariants());
    ASSERT_EQ(wheel_.empty(), heap_.empty());
    ASSERT_EQ(wheel_.pending(), heap_.pending());
    if (!wheel_.empty()) {
      ASSERT_EQ(wheel_.next_time(), heap_.next_time());
      ASSERT_EQ(wheel_.next_order(), heap_.next_order());
    }
  }

  EventQueue wheel_;
  EventQueue heap_;
};

TEST(EventQueueDifferential, EqualTimeTiesPopInPushOrder) {
  QueuePair q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(q.push(seconds(5)));
  for (int i = 0; i < 200; ++i) {
    const auto [t, id] = q.pop();
    EXPECT_EQ(t, seconds(5));
    EXPECT_EQ(id, ids[static_cast<std::size_t>(i)])
        << "FIFO order broken at pop " << i;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, InterleavedTiesKeepPerTimeFifo) {
  // Two interleaved time values: ties within each must stay FIFO even
  // though pushes alternate.
  QueuePair q;
  for (int i = 0; i < 50; ++i) {
    q.push(milliseconds(1 + (i % 2)));
  }
  q.drain();
}

TEST(EventQueueDifferential, CancelAtTopRefreshesHead) {
  QueuePair q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(milliseconds(i)));
  }
  // Cancel the current minimum repeatedly; next_time must step forward
  // without the wheel advancing its clock (later overdue pushes stay
  // legal, checked by the randomized schedules).
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(q.next_time(), milliseconds(i));
    EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(q.next_time(), milliseconds(32));
  q.drain();
}

TEST(EventQueueDifferential, CancelUnknownAndStaleIdsAreNoOps) {
  QueuePair q;
  const EventId id = q.push(seconds(1));
  EXPECT_FALSE(q.cancel(id + (std::uint64_t{1} << 36)));  // unknown slot
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  const EventId reused = q.push(seconds(2));
  EXPECT_FALSE(q.cancel(id)) << "stale id cancelled the slot's new tenant";
  EXPECT_TRUE(q.cancel(reused));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, SeqTagReuseUnderSlotChurn) {
  // Hammer a small slot population so slots recycle constantly; stale
  // ids from earlier generations must never cancel the new occupant.
  QueuePair q;
  Rng rng(11);
  std::vector<EventId> stale;
  std::vector<EventId> live;
  for (int round = 0; round < 400; ++round) {
    const EventId id = q.push(static_cast<SimTime>(rng.next_below(1000)));
    live.push_back(id);
    if (live.size() > 4) {
      const std::size_t pick = rng.next_below(live.size());
      q.cancel(live[pick]);
      stale.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (!stale.empty() && round % 7 == 0) {
      EXPECT_FALSE(q.cancel(stale[rng.next_below(stale.size())]));
    }
  }
  q.drain();
}

TEST(EventQueueDifferential, CascadeBoundaries) {
  // Times straddling every 64^k digit rollover the wheel can represent:
  // popping the event just below a boundary forces the event just above
  // it to cascade down one or more levels.
  QueuePair q;
  std::vector<SimTime> times;
  for (int level = 1; level < 8; ++level) {
    const SimTime boundary = SimTime{1} << (6 * level);
    times.push_back(boundary - 1);
    times.push_back(boundary);
    times.push_back(boundary + 1);
    times.push_back(2 * boundary - 1);
    times.push_back(2 * boundary);
  }
  // Push in a fixed shuffled order (worst case for level locality).
  Rng rng(3);
  for (std::size_t i = times.size(); i > 1; --i) {
    std::swap(times[i - 1], times[rng.next_below(i)]);
  }
  for (const SimTime t : times) q.push(t);
  const auto popped = q.drain();
  std::sort(times.begin(), times.end());
  ASSERT_EQ(popped.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(popped[i].first, times[i]);
  }
}

TEST(EventQueueDifferential, CascadePreservesFifoWithinBoundaryTies) {
  // Several events at the *same* far-future time, pushed before a near
  // event; popping the near event cascades the tied group as a unit and
  // must keep its internal push order.
  QueuePair q;
  const SimTime far = (SimTime{1} << 24) + 17;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(q.push(far));
  q.push(seconds(1));
  const auto popped = q.drain();
  ASSERT_EQ(popped.size(), 21u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(popped[static_cast<std::size_t>(i + 1)].second,
              ids[static_cast<std::size_t>(i)])
        << "cascade reordered equal-time events";
  }
}

TEST(EventQueueDifferential, OverduePushesPopFirst) {
  QueuePair q;
  q.push(seconds(10));
  EXPECT_EQ(q.pop().first, seconds(10));  // wheel cursor is now at 10s
  q.push(seconds(20));
  q.push(seconds(3));  // below the cursor: overdue list
  q.push(seconds(4));
  EXPECT_EQ(q.next_time(), seconds(3));
  const auto popped = q.drain();
  ASSERT_EQ(popped.size(), 3u);
  EXPECT_EQ(popped[0].first, seconds(3));
  EXPECT_EQ(popped[1].first, seconds(4));
  EXPECT_EQ(popped[2].first, seconds(20));
}

TEST(EventQueueDifferential, OverflowTimesBeyondWheelHorizon) {
  // Times whose top 16 bits differ from the cursor live on the overflow
  // list until the clock gets close enough; kSimTimeNever (INT64_MAX)
  // must be representable and pop last.
  QueuePair q;
  const SimTime horizon = SimTime{1} << 48;
  q.push(kSimTimeNever);
  q.push(horizon + seconds(1));
  q.push(horizon);
  q.push(seconds(1));
  const auto popped = q.drain();
  ASSERT_EQ(popped.size(), 4u);
  EXPECT_EQ(popped[0].first, seconds(1));
  EXPECT_EQ(popped[1].first, horizon);
  EXPECT_EQ(popped[2].first, horizon + seconds(1));
  EXPECT_EQ(popped[3].first, kSimTimeNever);
}

TEST(EventQueueDifferential, ExplicitMergeOrdersAgree) {
  // push_ordered carries the simulator's cross-queue merge key; both
  // backends must surface the same next_order at every step.
  QueuePair q;
  std::uint64_t order = 100;
  Rng rng(17);
  for (int i = 0; i < 64; ++i) {
    q.push_ordered(static_cast<SimTime>(rng.next_below(50)), order++);
  }
  q.drain();
}

// Long randomized schedules over several time magnitudes. The magnitude
// sweep matters: small ranges stress level-0 ties and overdue pushes,
// large ranges stress multi-level cascades and the overflow list.
class EventQueueRandomized
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(EventQueueRandomized, SchedulesAgreeOpByOp) {
  const auto [seed, range] = GetParam();
  Rng rng(seed);
  QueuePair q;
  std::vector<EventId> live;
  SimTime clock = 0;
  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 55 || q.empty()) {
      // Push around the current clock; one in eight goes far out or to
      // kSimTimeNever to keep the overflow list busy.
      SimTime t = clock + static_cast<SimTime>(rng.next_below(range));
      if (roll % 8 == 0) {
        t = (rng.next_below(2) != 0) ? kSimTimeNever
                                     : t + (SimTime{1} << 49);
      }
      live.push_back(q.push(t));
    } else if (roll < 80 && !live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      q.cancel(live[pick]);  // may be stale (already popped): both agree
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // Overdue events (pushed below the clock) legitimately pop below
      // it, so the clock only ratchets forward.
      clock = std::max(clock, q.pop().first);
      // Occasionally push *behind* the new clock to exercise overdue.
      if (roll % 5 == 0 && clock > 0) {
        live.push_back(
            q.push(static_cast<SimTime>(rng.next_below(
                static_cast<std::uint64_t>(clock)))));
      }
    }
  }
  q.drain();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRanges, EventQueueRandomized,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1, 64},
                      std::pair<std::uint64_t, std::uint64_t>{2, 4096},
                      std::pair<std::uint64_t, std::uint64_t>{3, 1u << 20},
                      std::pair<std::uint64_t, std::uint64_t>{4,
                                                              1ull << 40}));

}  // namespace
}  // namespace d2::sim
