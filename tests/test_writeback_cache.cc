#include "fs/writeback_cache.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace d2::fs {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

TEST(WritebackCache, FlushesAfterTtl) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  std::vector<StoreOp> out;
  c.collect_expired(seconds(29), out);
  EXPECT_TRUE(out.empty());
  c.collect_expired(seconds(30), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, StoreOp::Kind::kPut);
  EXPECT_EQ(out[0].key, K(1));
  EXPECT_EQ(out[0].size, 100);
  EXPECT_EQ(c.pending_puts(), 0u);
}

TEST(WritebackCache, TouchDelaysFlush) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  c.touch_put(K(1), 150, seconds(20));
  std::vector<StoreOp> out;
  c.collect_expired(seconds(35), out);
  EXPECT_TRUE(out.empty());  // refreshed at t=20; flushes at t=50
  c.collect_expired(seconds(50), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size, 150);  // latest size wins
}

TEST(WritebackCache, FlushEmitsRemoveOfOldVersion) {
  WritebackCache c(seconds(30));
  c.stage_put(K(2), 100, 0, K(1));
  std::vector<StoreOp> out;
  c.collect_expired(seconds(30), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, StoreOp::Kind::kPut);
  EXPECT_EQ(out[0].key, K(2));
  EXPECT_EQ(out[1].kind, StoreOp::Kind::kRemove);
  EXPECT_EQ(out[1].key, K(1));
}

TEST(WritebackCache, CancelAbsorbsTemporaryFile) {
  // A file created and deleted within the window never touches the store.
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  const auto old = c.cancel_put(K(1));
  EXPECT_FALSE(old.has_value());
  std::vector<StoreOp> out;
  c.collect_expired(seconds(60), out);
  EXPECT_TRUE(out.empty());
}

TEST(WritebackCache, CancelReturnsCommittedPredecessor) {
  WritebackCache c(seconds(30));
  c.stage_put(K(2), 100, 0, K(1));
  const auto old = c.cancel_put(K(2));
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, K(1));
}

TEST(WritebackCache, FreshnessForDirtyAndClean) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  EXPECT_TRUE(c.is_fresh(K(1), seconds(5)));  // dirty data is in memory
  c.mark_clean(K(2), 0);
  EXPECT_TRUE(c.is_fresh(K(2), seconds(29)));
  EXPECT_FALSE(c.is_fresh(K(2), seconds(30)));
  EXPECT_FALSE(c.is_fresh(K(3), 0));
}

TEST(WritebackCache, FlushedBlockStaysReadable) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  std::vector<StoreOp> out;
  c.collect_expired(seconds(30), out);
  // Just-written data is still in the buffer cache.
  EXPECT_TRUE(c.is_fresh(K(1), seconds(31)));
}

TEST(WritebackCache, FlushAllIgnoresAge) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  c.stage_put(K(2), 200, seconds(1), K(9));
  std::vector<StoreOp> out;
  c.flush_all(seconds(2), out);
  EXPECT_EQ(out.size(), 3u);  // two puts + one remove
  EXPECT_EQ(c.pending_puts(), 0u);
}

TEST(WritebackCache, DoubleStageThrows) {
  WritebackCache c(seconds(30));
  c.stage_put(K(1), 100, 0, std::nullopt);
  EXPECT_THROW(c.stage_put(K(1), 100, 0, std::nullopt), PreconditionError);
}

TEST(WritebackCache, TouchWithoutStageThrows) {
  WritebackCache c(seconds(30));
  EXPECT_THROW(c.touch_put(K(1), 100, 0), PreconditionError);
  EXPECT_THROW(c.cancel_put(K(1)), PreconditionError);
}

TEST(WritebackCache, ManyBlocksFlushInExpiryOrder) {
  WritebackCache c(seconds(30));
  for (std::uint64_t i = 0; i < 10; ++i) {
    c.stage_put(K(i), 8, static_cast<SimTime>(i) * seconds(1), std::nullopt);
  }
  std::vector<StoreOp> out;
  c.collect_expired(seconds(34), out);  // entries staged at t=0..4 expire
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(c.pending_puts(), 5u);
}

TEST(WritebackCache, CleanEntriesExpireFromHeap) {
  WritebackCache c(seconds(30));
  c.mark_clean(K(1), 0);
  std::vector<StoreOp> out;
  c.collect_expired(seconds(31), out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(c.is_fresh(K(1), seconds(31)));
}

}  // namespace
}  // namespace d2::fs
