// Golden determinism guard for the hot-path data layout.
//
// Runs one small seeded availability trial and one performance trial and
// checksums every per-trial output that the paper's figures are computed
// from (task counts, per-user unavailability, group latencies, lookup and
// cache counters, lb_moves, migration bytes). The expected values below
// were recorded from the byte-wise Key / map-based BlockMap / hash-map
// EventQueue implementation; any hot-path rewrite (limb keys, slab event
// queue, contiguous block index, ...) must reproduce them bit-for-bit.
//
// If this test fails after an intentional *semantic* change (new physics,
// different replica policy), re-record the constants by running the test
// and copying the "actual" values from the failure message — but a pure
// data-layout or performance change must never need that.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/availability.h"
#include "core/performance.h"

namespace d2::core {
namespace {

/// FNV-1a over a string; the string is assembled from fixed-format fields
/// so the checksum is stable across platforms with IEEE-754 doubles.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void append_u64(std::string* s, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ";", v);
  s->append(buf);
}

void append_i64(std::string* s, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64 ";", v);
  s->append(buf);
}

void append_f(std::string* s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g;", v);
  s->append(buf);
}

trace::HarvardParams golden_workload() {
  trace::HarvardParams p;
  p.users = 6;
  p.days = 2;
  p.target_active_bytes = mB(16);
  p.accesses_per_user_day = 120;
  p.seed = 4242;
  return p;
}

SystemConfig golden_system(int nodes) {
  SystemConfig c;
  c.node_count = nodes;
  c.replicas = 3;
  c.scheme = fs::KeyScheme::kD2;
  c.active_load_balance = true;
  c.seed = 77;
  return c;
}

constexpr std::uint64_t kAvailabilityGolden = 5282780080455404772ull;
// Re-pinned after the TcpModel partial-final-window fix: slow start now
// grows cwnd only by the packets actually acknowledged in the last RTT of
// a transfer, which shifts every downstream latency figure.
constexpr std::uint64_t kPerformanceGolden = 18256943228967445713ull;

/// One seeded availability trial with the given partitioning, reduced to
/// a checksum over every figure-bearing output.
std::uint64_t availability_checksum(int arcs, int arc_workers) {
  AvailabilityParams p;
  p.system = golden_system(20);
  p.system.arcs = arcs;
  p.system.arc_workers = arc_workers;
  p.workload = golden_workload();
  p.failure.node_count = p.system.node_count;
  p.failure.duration = days(3);
  p.failure.mttf_hours = 40;
  p.failure.mttr_hours = 6;
  p.failure.correlated_events_per_day = 1.5;
  p.failure.correlated_fraction = 0.3;
  p.warmup = hours(12);

  const AvailabilityResult r = AvailabilityExperiment(p).run();

  std::string s;
  append_u64(&s, r.tasks);
  append_u64(&s, r.failed_tasks);
  append_f(&s, r.mean_blocks_per_task);
  append_f(&s, r.mean_files_per_task);
  append_f(&s, r.mean_nodes_per_task);
  append_i64(&s, r.migration_bytes);
  append_i64(&s, r.lb_moves);
  append_u64(&s, r.unknown_key_gets);
  for (const auto& [user, unavail] : r.per_user_unavailability) {
    append_i64(&s, user);
    append_f(&s, unavail);
  }
  return fnv1a(s);
}

/// One seeded performance trial, same idea.
std::uint64_t performance_checksum(int arcs, int arc_workers) {
  PerformanceParams p;
  p.system = golden_system(24);
  p.system.arcs = arcs;
  p.system.arc_workers = arc_workers;
  p.workload = golden_workload();
  p.warmup = hours(6);
  p.window_count = 8;

  const PerformanceResult r = PerformanceExperiment(p).run();

  std::string s;
  for (const GroupResult& g : r.groups) {
    append_i64(&s, g.user);
    append_u64(&s, g.group_id);
    append_i64(&s, g.latency);
    append_i64(&s, g.block_gets);
  }
  append_u64(&s, r.lookup_messages);
  append_u64(&s, r.lookups);
  append_u64(&s, r.cache_hits);
  append_u64(&s, r.cache_misses);
  append_f(&s, r.lookup_messages_per_node);
  append_f(&s, r.mean_cache_miss_rate);
  append_u64(&s, r.tcp_cold_starts);
  append_u64(&s, r.tcp_transfers);
  return fnv1a(s);
}

TEST(DeterminismGolden, AvailabilityTrialChecksum) {
  const std::uint64_t checksum = availability_checksum(1, 1);
  EXPECT_EQ(checksum, kAvailabilityGolden)
      << "availability outputs drifted; actual checksum=" << checksum;
}

TEST(DeterminismGolden, PerformanceTrialChecksum) {
  const std::uint64_t checksum = performance_checksum(1, 1);
  EXPECT_EQ(checksum, kPerformanceGolden)
      << "performance outputs drifted; actual checksum=" << checksum;
}

// Arc variants: partitioning the simulation core (DESIGN.md §9) is a
// pure execution-strategy change, so every (arcs, workers) combination
// must land on the same pinned constants as the single-queue engine —
// serial multi-arc first, then parallel lanes.
TEST(DeterminismGolden, AvailabilityChecksumInvariantUnderArcs) {
  EXPECT_EQ(availability_checksum(4, 1), kAvailabilityGolden);
  EXPECT_EQ(availability_checksum(13, 1), kAvailabilityGolden);
  EXPECT_EQ(availability_checksum(4, 4), kAvailabilityGolden);
  EXPECT_EQ(availability_checksum(13, 3), kAvailabilityGolden);
}

TEST(DeterminismGolden, PerformanceChecksumInvariantUnderArcs) {
  EXPECT_EQ(performance_checksum(4, 1), kPerformanceGolden);
  EXPECT_EQ(performance_checksum(13, 1), kPerformanceGolden);
  EXPECT_EQ(performance_checksum(4, 4), kPerformanceGolden);
  EXPECT_EQ(performance_checksum(13, 3), kPerformanceGolden);
}

}  // namespace
}  // namespace d2::core
