#include "core/webcache.h"

#include <gtest/gtest.h>

namespace d2::core {
namespace {

SystemConfig config() {
  SystemConfig c;
  c.node_count = 8;
  c.replicas = 2;
  c.seed = 3;
  return c;
}

WebCacheConfig static_objects() {
  WebCacheConfig c;
  c.dynamic_fraction = 0.0;
  return c;
}

WebCacheConfig all_dynamic(SimTime interval) {
  WebCacheConfig c;
  c.dynamic_fraction = 1.0;
  c.min_change_interval = interval;
  c.max_change_interval = interval;
  return c;
}

TEST(WebCache, MissInsertsThenHits) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  EXPECT_FALSE(cache.request("www.a.com/x.html", kB(10)));
  EXPECT_TRUE(cache.request("www.a.com/x.html", kB(10)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.resident_objects(), 1u);
}

TEST(WebCache, EvictsAfterOneDayIdle) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  cache.request("www.a.com/x.html", kB(10));
  sim.run_until(days(1) + hours(1));
  // Evicted: the next request misses again.
  EXPECT_FALSE(cache.request("www.a.com/x.html", kB(10)));
}

TEST(WebCache, RefreshPreventsEviction) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  cache.request("www.a.com/x.html", kB(10));
  sim.run_until(hours(20));
  EXPECT_TRUE(cache.request("www.a.com/x.html", kB(10)));  // refresh
  sim.run_until(hours(30));  // 10h after refresh: still resident
  EXPECT_TRUE(cache.request("www.a.com/x.html", kB(10)));
}

TEST(WebCache, DynamicObjectReplacedWithNewVersion) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, all_dynamic(hours(1)));
  EXPECT_FALSE(cache.request("www.a.com/news.html", kB(10)));  // cold miss
  sim.run_until(minutes(10));
  EXPECT_TRUE(cache.request("www.a.com/news.html", kB(10)));  // same epoch
  sim.run_until(hours(1) + minutes(1));
  // The origin's copy changed: a hit-with-stale-version re-writes.
  EXPECT_FALSE(cache.request("www.a.com/news.html", kB(10)));
  EXPECT_EQ(cache.version_replacements(), 1u);
  // Writes were counted for the replacement too.
  EXPECT_EQ(sys.user_write_bytes(), 2 * kB(10));
}

TEST(WebCache, StaticObjectNeverReplaced) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  cache.request("www.a.com/logo.gif", kB(10));
  for (int h = 1; h < 20; h += 3) {
    sim.run_until(hours(h));
    EXPECT_TRUE(cache.request("www.a.com/logo.gif", kB(10)));
  }
  EXPECT_EQ(cache.version_replacements(), 0u);
}

TEST(WebCache, ChangeIntervalDeterministicPerUrl) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCacheConfig cfg;
  cfg.dynamic_fraction = 0.5;
  WebCache cache(sys, fs::KeyScheme::kD2, cfg);
  const SimTime a = cache.change_interval("www.a.com/p.html");
  EXPECT_EQ(a, cache.change_interval("www.a.com/p.html"));
  // With fraction 0.5, some URLs are dynamic and some are static.
  int dynamic = 0;
  for (int i = 0; i < 100; ++i) {
    if (cache.change_interval("www.x.com/o" + std::to_string(i)) !=
        kSimTimeNever) {
      ++dynamic;
    }
  }
  EXPECT_GT(dynamic, 20);
  EXPECT_LT(dynamic, 80);
}

TEST(WebCache, D2KeysClusterBySite) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  const Key a1 = cache.key_for("www.alpha.com/p/1.html");
  const Key a2 = cache.key_for("www.alpha.com/p/2.html");
  const Key b = cache.key_for("www.beta.com/p/1.html");
  const Key lo = std::min(a1, a2);
  const Key hi = std::max(a1, a2);
  EXPECT_TRUE(b < lo || b > hi);
}

TEST(WebCache, TraditionalKeysUniform) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kTraditionalBlock, static_objects());
  double min_pos = 1.0, max_pos = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double pos =
        cache.key_for("www.alpha.com/p/" + std::to_string(i) + ".html")
            .ring_position();
    min_pos = std::min(min_pos, pos);
    max_pos = std::max(max_pos, pos);
  }
  EXPECT_GT(max_pos - min_pos, 0.5);
}

TEST(WebCache, ChurnRemovesBytesFromSystem) {
  sim::Simulator sim;
  System sys(config(), sim);
  WebCache cache(sys, fs::KeyScheme::kD2, static_objects());
  for (int i = 0; i < 20; ++i) {
    cache.request("www.a.com/obj" + std::to_string(i), kB(8));
  }
  EXPECT_EQ(sys.block_map().block_count(), 20u);
  sim.run_until(days(1) + hours(2));
  EXPECT_EQ(sys.block_map().block_count(), 0u);
  EXPECT_GT(sys.user_removed_bytes(), 0);
}

}  // namespace
}  // namespace d2::core
