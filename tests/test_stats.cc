#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace d2 {
namespace {

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.normalized_stddev(), 0.4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
  EXPECT_THROW(s.percentile(50), PreconditionError);
}

TEST(Stats, GeometricMean) {
  Stats s;
  s.add(1.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.geometric_mean(), 2.0);
}

TEST(GeometricMean, RequiresPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), PreconditionError);
  EXPECT_THROW(geometric_mean({}), PreconditionError);
}

TEST(GeometricMean, RatiosAverageCorrectly) {
  // gm(2, 0.5) == 1: a 2x speedup and a 2x slowdown cancel — the reason
  // the paper uses geometric means for speedups.
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 0.5}), 1.0);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(RankedDescending, Sorts) {
  auto v = ranked_descending({1.0, 3.0, 2.0});
  EXPECT_EQ(v, (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(Stats, NormalizedStddevZeroMeanThrows) {
  Stats s;
  s.add(1.0);
  s.add(-1.0);
  EXPECT_THROW(s.normalized_stddev(), PreconditionError);
}

}  // namespace
}  // namespace d2
