// Arc-partitioned simulation tests (DESIGN.md §9): the ArcPlan keyspace
// bijection, deterministic mailbox release order, merged multi-queue
// scheduling, and serial/parallel window equivalence — the properties
// the byte-identical `--arc-workers N` claim rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "common/arc_plan.h"
#include "common/key.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/system.h"
#include "sim/failure.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace d2 {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// ---------------------------------------------------------------------------
// ArcPlan: arc_of / lower_bound must be an exact bijection at every
// boundary, for arc counts with and without 2^64 divisibility.

TEST(ArcPlan, BoundariesRoundTripForManyArcCounts) {
  for (int arcs : {1, 2, 3, 4, 5, 7, 16, 33, 64, 255, 1024}) {
    const ArcPlan plan(arcs);
    EXPECT_EQ(plan.lower_bound(0), Key::min());
    EXPECT_EQ(plan.lower_bound(arcs), Key::max());
    for (int a = 0; a < arcs; ++a) {
      const Key lo = plan.lower_bound(a);
      EXPECT_EQ(plan.arc_of(lo), a) << "arcs=" << arcs << " a=" << a;
      // The key one limb step below the boundary belongs to the arc
      // before (arc_of only reads limb 0, so this is the true
      // predecessor boundary-wise).
      if (a > 0) {
        const Key below = Key::from_high64(lo.limb(0) - 1);
        EXPECT_EQ(plan.arc_of(below), a - 1) << "arcs=" << arcs << " a=" << a;
      }
    }
    EXPECT_EQ(plan.arc_of(Key::max()), arcs - 1);
  }
}

TEST(ArcPlan, RandomKeysLandInsideTheirArc) {
  Rng rng(991);
  for (int arcs : {2, 3, 13, 1024}) {
    const ArcPlan plan(arcs);
    for (int i = 0; i < 2000; ++i) {
      const Key k = Key::random(rng);
      const int a = plan.arc_of(k);
      ASSERT_GE(a, 0);
      ASSERT_LT(a, arcs);
      EXPECT_GE(k, plan.lower_bound(a));
      if (a + 1 < arcs) EXPECT_LT(k, plan.lower_bound(a + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Mailbox: deliver() must release staged messages in (time, src_arc,
// seq) order — a pure function of what each lane posted, independent of
// posting interleaving across lanes.

TEST(Mailbox, DeliversInTimeSrcSeqOrder) {
  constexpr int kArcs = 5;
  sim::Mailbox mbox;
  mbox.reset(kArcs);

  // Random traffic with many duplicate timestamps to exercise both
  // tie-break levels. Each message's payload is its posting identity.
  Rng rng(2024);
  struct Posted {
    SimTime time;
    int src;
    std::uint32_t seq;
  };
  std::vector<Posted> posted;
  std::vector<std::uint32_t> next_seq(kArcs, 0);
  for (int i = 0; i < 400; ++i) {
    const int src = static_cast<int>(rng.next_below(kArcs));
    const int dst = static_cast<int>(rng.next_below(kArcs));
    const SimTime t = static_cast<SimTime>(rng.next_below(20));  // dense ties
    posted.push_back(Posted{t, src, next_seq[static_cast<std::size_t>(src)]++});
    mbox.post(src, t, dst, sim::EventFn([] {}));
  }
  ASSERT_EQ(mbox.staged(), posted.size());

  std::vector<std::tuple<SimTime, int, std::uint32_t>> delivered;
  mbox.deliver([&](SimTime t, int src, std::uint32_t seq, int dst,
                   const sim::EventFn& fn) {
    (void)dst;
    (void)fn;
    delivered.emplace_back(t, src, seq);
  });
  ASSERT_EQ(delivered.size(), posted.size());
  EXPECT_TRUE(mbox.empty());

  // Total order: strictly increasing (time, src, seq).
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_LT(delivered[i - 1], delivered[i]) << "at " << i;
  }
  // Every posted (time, src, seq) identity is released exactly once.
  std::vector<std::tuple<SimTime, int, std::uint32_t>> expected;
  for (const Posted& p : posted) expected.emplace_back(p.time, p.src, p.seq);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(delivered, expected);
}

TEST(Mailbox, DeliverClearsAndIsReusable) {
  sim::Mailbox mbox;
  mbox.reset(2);
  int fired = 0;
  mbox.post(0, 5, 1, sim::EventFn([] {}));
  mbox.deliver([&](SimTime, int, std::uint32_t, int, const sim::EventFn&) {
    ++fired;
  });
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(mbox.empty());
  // Second round after drain: seq restarts from 0 per lane.
  mbox.post(1, 3, 0, sim::EventFn([] {}));
  mbox.post(1, 3, 0, sim::EventFn([] {}));
  std::vector<std::uint32_t> seqs;
  mbox.deliver([&](SimTime, int, std::uint32_t seq, int, const sim::EventFn&) {
    seqs.push_back(seq);
  });
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Simulator: the merged serial engine pops the minimum (time, order)
// across every queue, so which queue holds an event must not show in
// execution order.

TEST(PartitionedSimulator, MergedOrderIndependentOfQueuePlacement) {
  // Same (time, push-order) schedule, once all on one queue and once
  // striped across four arc queues; execution order must match.
  auto run_log = [](int arcs) {
    sim::Simulator sim(sim::ArcConfig{arcs, 1, 0});
    std::vector<int> log;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      const SimTime t = static_cast<SimTime>(rng.next_below(50));
      sim.schedule_arc_at(i % arcs, t, [&log, i] { log.push_back(i); });
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_log(1), run_log(4));
  EXPECT_EQ(run_log(1), run_log(13));
}

TEST(PartitionedSimulator, GlobalQueueInterleavesWithArcQueues) {
  sim::Simulator sim(sim::ArcConfig{3, 1, 0});
  std::vector<int> log;
  sim.schedule_arc_at(0, 10, [&] { log.push_back(0); });
  sim.schedule_at(10, [&] { log.push_back(100); });  // same time, pushed later
  sim.schedule_arc_at(2, 5, [&] { log.push_back(2); });
  sim.schedule_arc_at(1, 20, [&] { log.push_back(1); });
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{2, 0, 100, 1}));
}

// ---------------------------------------------------------------------------
// Parallel windows: with workers > 1, per-arc event chains (including
// in-window reschedules and past-window mailboxed pushes) plus global
// events reading every shard must produce the same state as workers=1.

struct ChainedRun {
  std::vector<std::uint64_t> acc;
  std::uint64_t global_acc;
  std::uint64_t checksum;  // order-insensitive digest of executed events
  std::uint64_t windows;
};

ChainedRun chained_run(int arcs, int workers, SimTime lookahead = 0) {
  sim::Simulator sim(sim::ArcConfig{arcs, workers, lookahead});
  std::vector<std::uint64_t> acc(static_cast<std::size_t>(arcs), 0);
  std::uint64_t global_acc = 0;
  constexpr SimTime kEnd = 5000;

  // Each arc runs a self-rescheduling chain with an arc-specific stride,
  // mixing (arc, now) into its own accumulator. Strides are co-prime-ish
  // so lanes desynchronize; reschedules land both inside and past
  // windows (global events below bound the windows).
  struct Chain {
    sim::Simulator* sim;
    std::vector<std::uint64_t>* acc;
    int arc;
    SimTime stride;
    void operator()() const {
      auto& a = (*acc)[static_cast<std::size_t>(arc)];
      a = mix(a, static_cast<std::uint64_t>(sim->now()) * 31 +
                     static_cast<std::uint64_t>(arc));
      if (sim->now() + stride < kEnd) {
        sim->schedule_arc_after(arc, stride, *this);
      }
    }
  };
  for (int a = 0; a < arcs; ++a) {
    sim.schedule_arc_at(
        a, 1 + a, Chain{&sim, &acc, a, static_cast<SimTime>(17 + 13 * a)});
  }

  // Periodic global events: order-sensitive fold over every shard — any
  // lane outrunning a barrier or a reordered chain step changes this.
  struct Global {
    sim::Simulator* sim;
    std::vector<std::uint64_t>* acc;
    std::uint64_t* global_acc;
    void operator()() const {
      for (std::uint64_t v : *acc) *global_acc = mix(*global_acc, v);
      if (sim->now() + 250 < kEnd) sim->schedule_after(250, *this);
    }
  };
  sim.schedule_at(100, Global{&sim, &acc, &global_acc});

  // run_until, not run(): only the bounded runner opens parallel windows,
  // and every event above lies strictly before kEnd.
  sim.run_until(kEnd);
  return {acc, global_acc, sim.event_time_checksum(), sim.windows_executed()};
}

TEST(PartitionedSimulator, ParallelWindowsMatchSerialExactly) {
  const auto serial = chained_run(/*arcs=*/6, /*workers=*/1);
  for (int workers : {2, 4}) {
    const auto parallel = chained_run(6, workers);
    EXPECT_EQ(parallel.acc, serial.acc) << workers;
    EXPECT_EQ(parallel.global_acc, serial.global_acc) << workers;
    EXPECT_EQ(parallel.checksum, serial.checksum) << workers;
  }
}

TEST(PartitionedSimulator, AdaptiveHorizonRunsTheSameEventsAsConservative) {
  // Window-trace differential (DESIGN.md §12): the adaptive horizon
  // (lookahead 0, windows extend to the next global event) and a
  // conservative cap chop the run into different windows, yet the
  // executed event multiset — and therefore the final state — must be
  // identical. The checksum is order-insensitive, so it is the digest of
  // *what ran*, not of how the run was windowed.
  const auto adaptive = chained_run(6, 4, 0);
  for (SimTime cap : {SimTime{50}, SimTime{250}, SimTime{1000}}) {
    const auto conservative = chained_run(6, 4, cap);
    EXPECT_EQ(conservative.acc, adaptive.acc) << "cap=" << cap;
    EXPECT_EQ(conservative.global_acc, adaptive.global_acc) << "cap=" << cap;
    EXPECT_EQ(conservative.checksum, adaptive.checksum) << "cap=" << cap;
    // Capping can only add barriers: adaptive windows are maximal.
    EXPECT_LE(adaptive.windows, conservative.windows) << "cap=" << cap;
  }
  // A cap short enough to split inter-global stretches must actually
  // produce more windows, or the differential is vacuous.
  EXPECT_GT(chained_run(6, 4, 50).windows, adaptive.windows);
}

TEST(PartitionedSimulator, ArcPhaseMailboxesLaneSchedulesDeterministically) {
  auto run = [](int workers) {
    sim::Simulator sim(sim::ArcConfig{4, workers, 0});
    std::vector<std::uint64_t> acc(4, 0);
    sim.run_until(10);
    sim.run_arc_phase([&](int arc) {
      EXPECT_TRUE(sim.in_lane());
      EXPECT_EQ(sim.lane_arc(), arc);
      acc[static_cast<std::size_t>(arc)] =
          mix(0, static_cast<std::uint64_t>(arc));
      // Future own-arc work from inside a phase lane goes through the
      // mailbox (phase windows are zero-length) and must still fire.
      sim.schedule_arc_after(arc, 5 + arc, [&acc, arc] {
        acc[static_cast<std::size_t>(arc)] =
            mix(acc[static_cast<std::size_t>(arc)], 77);
      });
    });
    sim.run();
    return acc;
  };
  const auto serial = run(1);
  for (std::uint64_t v : serial) EXPECT_NE(v, 0u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(3), serial);
}

TEST(PartitionedSimulator, LanesMayOnlyScheduleOntoTheirOwnArc) {
  sim::Simulator sim(sim::ArcConfig{2, 1, 0});
  bool threw = false;
  sim.run_arc_phase([&](int arc) {
    if (arc != 0) return;
    try {
      sim.schedule_arc_after(1, 10, [] {});  // cross-arc from lane 0
    } catch (const std::exception&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// System: the sharded store/TTL/accounting state must behave identically
// for any arc count, including TTL expiry and delayed removal (the two
// event kinds that run on arc lanes).

std::uint64_t system_run_digest(int arcs, int workers) {
  core::SystemConfig cfg;
  cfg.node_count = 12;
  cfg.replicas = 3;
  cfg.seed = 99;
  cfg.block_ttl = hours(2);
  cfg.arcs = arcs;
  cfg.arc_workers = workers;
  sim::Simulator sim(sim::ArcConfig{arcs, workers, 0});
  core::System system(cfg, sim);

  Rng rng(4321);
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(Key::random(rng));
  for (const Key& k : keys) system.put(k, kB(4));
  sim.run_until(hours(1));
  // Refresh one third, remove one third, let the rest expire.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 == 0) system.refresh(keys[i]);
    if (i % 3 == 1) system.remove(keys[i]);
  }
  sim.run_until(hours(5));
  system.check_invariants();

  std::uint64_t h = 0;
  h = mix(h, static_cast<std::uint64_t>(system.block_map().block_count()));
  h = mix(h, static_cast<std::uint64_t>(system.user_write_bytes()));
  h = mix(h, static_cast<std::uint64_t>(system.user_removed_bytes()));
  for (const Key& k : keys) h = mix(h, system.has(k) ? 1 : 0);
  return h;
}

TEST(PartitionedSystem, TtlAndRemovalIdenticalAcrossArcCounts) {
  const std::uint64_t base = system_run_digest(1, 1);
  EXPECT_EQ(system_run_digest(4, 1), base);
  EXPECT_EQ(system_run_digest(16, 1), base);
  EXPECT_EQ(system_run_digest(4, 2), base);
  EXPECT_EQ(system_run_digest(16, 4), base);
}

// ---------------------------------------------------------------------------
// Queue-placement properties (DESIGN.md §12): key-local timers must live
// on their owner arc's queue — every event on the global queue is a
// parallel-window barrier, so a misplaced timer silently serializes the
// run even though the output stays correct.

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

TEST(PartitionedSystem, FetchAndTtlTimersLandOnArcQueuesNotTheGlobalQueue) {
  core::SystemConfig cfg;
  cfg.node_count = 16;
  cfg.replicas = 3;
  cfg.seed = 7;
  cfg.block_ttl = hours(6);
  cfg.arcs = 8;
  sim::Simulator sim(sim::ArcConfig{cfg.arcs, 1, 0});
  core::System system(cfg, sim);

  Rng rng(11);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(Key::random(rng));
  for (const Key& k : keys) system.put(k, kB(4));

  // Every block now has a pending TTL expiry timer — and the global
  // queue must hold none of them.
  EXPECT_GT(sim.events_pending(), 0u);
  EXPECT_EQ(sim.next_global_event_time(), kNever);

  // A node outage triggers readjustment: the regen-delay event it leaves
  // behind is legitimately global (it readjusts a ring arc), but every
  // fetch timer and transfer completion it spawns must land on the owner
  // key's arc queue.
  const auto trace = sim::FailureTrace::from_intervals(
      cfg.node_count, days(1), {{0, minutes(10), hours(3)}});
  system.attach_failure_trace(&trace, 0);
  sim.run_until(minutes(11));  // past the down transition
  EXPECT_EQ(sim.next_global_event_time(), minutes(10) + cfg.regen_delay);

  // Step just past the readjustment: the fetch transfers it started are
  // still in flight, so their completion events are pending — and if they
  // sit on arc queues, the earliest pending event is strictly earlier
  // than the earliest global event (the recovery at hours(3)). A
  // misrouted completion makes the two coincide.
  sim.run_until(minutes(10) + cfg.regen_delay + milliseconds(1));
  ASSERT_GT(sim.events_pending(), 0u);
  EXPECT_LT(sim.next_event_time(), sim.next_global_event_time());
  EXPECT_EQ(sim.next_global_event_time(), hours(3));  // the recovery only
}

TEST(PartitionedSystem, ProbeWorkReachesGlobalQueueOnlyAsCommitTicks) {
  core::SystemConfig cfg;
  cfg.node_count = 16;
  cfg.replicas = 3;
  cfg.seed = 7;
  cfg.arcs = 8;
  ASSERT_GT(cfg.probe_commit_interval, 0);
  sim::Simulator sim(sim::ArcConfig{cfg.arcs, 1, 0});
  core::System system(cfg, sim);
  system.start_load_balancing();

  // Per-node probe due times are jittered (almost surely off any epoch
  // boundary), yet the only global events the probe machinery creates
  // are its epoch-aligned commit ticks.
  ASSERT_LT(sim.next_global_event_time(), kNever);
  for (int tick = 0; tick < 5; ++tick) {
    EXPECT_EQ(sim.next_global_event_time() % cfg.probe_commit_interval, 0)
        << "tick " << tick;
    sim.run_until(sim.next_global_event_time());
  }
}

}  // namespace
}  // namespace d2
