#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "trace/harvard_gen.h"
#include "trace/hp_gen.h"
#include "trace/web_gen.h"

namespace d2::trace {
namespace {

HarvardParams small_harvard() {
  HarvardParams p;
  p.users = 10;
  p.days = 3;
  p.target_active_bytes = mB(32);
  p.accesses_per_user_day = 200;
  p.seed = 5;
  return p;
}

TEST(HarvardGenerator, RecordsSortedByTime) {
  HarvardGenerator gen(small_harvard());
  EXPECT_TRUE(is_sorted_by_time(gen.records()));
  EXPECT_FALSE(gen.records().empty());
}

TEST(HarvardGenerator, InitialDataNearTarget) {
  HarvardGenerator gen(small_harvard());
  const WorkloadSummary s = gen.summary();
  EXPECT_GT(s.active_data, mB(24));
  EXPECT_LT(s.active_data, mB(64));
  EXPECT_GT(s.initial_files, 100u);
}

TEST(HarvardGenerator, AllUsersActive) {
  HarvardGenerator gen(small_harvard());
  std::set<int> users;
  for (const TraceRecord& r : gen.records()) users.insert(r.user);
  EXPECT_EQ(users.size(), 10u);
}

TEST(HarvardGenerator, DeterministicForSeed) {
  HarvardGenerator a(small_harvard());
  HarvardGenerator b(small_harvard());
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].time, b.records()[i].time);
    EXPECT_EQ(a.records()[i].path, b.records()[i].path);
  }
}

TEST(HarvardGenerator, UsersWriteOnlyTheirHomes) {
  HarvardGenerator gen(small_harvard());
  for (const TraceRecord& r : gen.records()) {
    if (r.op == TraceRecord::Op::kWrite || r.op == TraceRecord::Op::kCreate ||
        r.op == TraceRecord::Op::kRemove || r.op == TraceRecord::Op::kRename) {
      EXPECT_EQ(r.path.rfind(HarvardGenerator::user_home(r.user), 0), 0u)
          << r.path << " written by user " << r.user;
    }
  }
}

TEST(HarvardGenerator, ReadsDominril) {
  HarvardGenerator gen(small_harvard());
  std::uint64_t reads = 0, writes = 0;
  for (const TraceRecord& r : gen.records()) {
    if (r.op == TraceRecord::Op::kRead) ++reads;
    if (r.op == TraceRecord::Op::kWrite || r.op == TraceRecord::Op::kCreate) {
      ++writes;
    }
  }
  EXPECT_GT(reads, writes * 2);  // typical FS: read-dominated
}

TEST(HarvardGenerator, DailyChurnCalibration) {
  // Table 3 row 1: daily writes are ~10-20% of resident data.
  HarvardParams p = small_harvard();
  p.days = 3;
  HarvardGenerator gen(p);
  const WorkloadSummary s = gen.summary();
  const double daily_write_fraction =
      static_cast<double>(s.bytes_written) / p.days /
      static_cast<double>(s.active_data);
  EXPECT_GT(daily_write_fraction, 0.03);
  EXPECT_LT(daily_write_fraction, 0.5);
}

TEST(HarvardGenerator, SessionLocalityPresent) {
  // Consecutive reads by the same user should frequently target the same
  // directory (the working-set behaviour locality depends on).
  HarvardGenerator gen(small_harvard());
  std::unordered_map<int, std::string> last_dir;
  int same = 0, total = 0;
  for (const TraceRecord& r : gen.records()) {
    if (r.op != TraceRecord::Op::kRead) continue;
    const auto slash = r.path.find_last_of('/');
    const std::string dir(r.path.substr(0, slash));
    auto it = last_dir.find(r.user);
    if (it != last_dir.end()) {
      ++total;
      if (it->second == dir) ++same;
    }
    last_dir[r.user] = dir;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(same) / total, 0.4);
}

TEST(HarvardGenerator, RenamesAreRare) {
  HarvardGenerator gen(small_harvard());
  std::uint64_t renames = 0;
  for (const TraceRecord& r : gen.records()) {
    if (r.op == TraceRecord::Op::kRename) ++renames;
  }
  EXPECT_LT(static_cast<double>(renames),
            0.01 * static_cast<double>(gen.records().size()));
}

TEST(HpGenerator, BlockNamesSortNumerically) {
  EXPECT_LT(HpGenerator::block_name(99), HpGenerator::block_name(100));
  EXPECT_LT(HpGenerator::block_name(0), HpGenerator::block_name(1));
  EXPECT_LT(HpGenerator::block_name(999999), HpGenerator::block_name(1000000));
}

TEST(HpGenerator, ProducesSortedBlockReads) {
  HpParams p;
  p.apps = 5;
  p.days = 2;
  p.accesses_per_app_day = 300;
  HpGenerator gen(p);
  EXPECT_TRUE(is_sorted_by_time(gen.records()));
  for (const TraceRecord& r : gen.records()) {
    EXPECT_EQ(r.op, TraceRecord::Op::kRead);
    EXPECT_EQ(r.path[0], 'b');
  }
  EXPECT_GT(gen.records().size(), 1000u);
}

TEST(HpGenerator, SequentialRunsPresent) {
  HpParams p;
  p.apps = 3;
  p.days = 1;
  HpGenerator gen(p);
  // Many consecutive records should be numerically adjacent blocks.
  int adjacent = 0, total = 0;
  std::unordered_map<int, std::string> last;
  for (const TraceRecord& r : gen.records()) {
    auto it = last.find(r.user);
    if (it != last.end()) {
      ++total;
      if (r.path > it->second &&
          std::stoll(std::string(r.path.substr(1))) -
              std::stoll(it->second.substr(1)) ==
          1) {
        ++adjacent;
      }
    }
    last[r.user] = r.path;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(adjacent) / total, 0.3);
}

TEST(WebGenerator, RecordsSortedAndSized) {
  WebParams p;
  p.clients = 10;
  p.days = 2;
  p.sites = 50;
  p.requests_per_client_day = 100;
  WebGenerator gen(p);
  EXPECT_TRUE(is_sorted_by_time(gen.records()));
  for (const TraceRecord& r : gen.records()) {
    EXPECT_GT(r.length, 0);
    EXPECT_NE(r.path.find("www."), std::string::npos);
  }
}

TEST(WebGenerator, SitePopularityZipf) {
  WebParams p;
  p.clients = 20;
  p.days = 2;
  p.sites = 100;
  p.requests_per_client_day = 200;
  WebGenerator gen(p);
  std::unordered_map<std::string, int> site_counts;
  for (const TraceRecord& r : gen.records()) {
    site_counts[std::string(r.path.substr(0, r.path.find('/')))]++;
  }
  // The most popular site should dwarf the median site.
  int max_count = 0;
  for (const auto& [site, count] : site_counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count,
            static_cast<int>(gen.records().size()) / static_cast<int>(site_counts.size()) * 5);
}

TEST(WebGenerator, ObjectSizesStable) {
  WebParams p;
  p.clients = 5;
  p.days = 1;
  p.sites = 20;
  WebGenerator gen(p);
  std::unordered_map<std::string, Bytes> seen;
  for (const TraceRecord& r : gen.records()) {
    auto [it, inserted] = seen.emplace(r.path, r.length);
    if (!inserted) EXPECT_EQ(it->second, r.length) << r.path;
  }
}

TEST(WebGenerator, BrowsingLocalityPresent) {
  WebParams p;
  p.clients = 10;
  p.days = 1;
  p.sites = 100;
  WebGenerator gen(p);
  std::unordered_map<int, std::string> last_site;
  int same = 0, total = 0;
  for (const TraceRecord& r : gen.records()) {
    const std::string site(r.path.substr(0, r.path.find('/')));
    auto it = last_site.find(r.user);
    if (it != last_site.end()) {
      ++total;
      if (it->second == site) ++same;
    }
    last_site[r.user] = site;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(same) / total, 0.5);
}

TEST(WebGenerator, FlashCrowdDaySpikes) {
  WebParams p;
  p.clients = 15;
  p.days = 4;
  p.sites = 60;
  p.requests_per_client_day = 150;
  p.flash_crowd_day = 2;
  p.flash_multiplier = 4.0;
  WebGenerator gen(p);
  std::vector<int> per_day(4, 0);
  std::vector<int> news_per_day(4, 0);
  for (const TraceRecord& r : gen.records()) {
    const int day = static_cast<int>(r.time / days(1));
    if (day < 0 || day >= 4) continue;
    ++per_day[static_cast<std::size_t>(day)];
    if (r.path.rfind("www.newswire.com", 0) == 0) {
      ++news_per_day[static_cast<std::size_t>(day)];
    }
  }
  // The flash day carries several times the traffic, mostly fresh news.
  EXPECT_GT(per_day[2], per_day[1] * 2);
  EXPECT_GT(news_per_day[2], per_day[2] / 2);
  EXPECT_EQ(news_per_day[1], 0);  // no news before the event
  // Sessions started late on the flash day may spill a little into day 3.
  EXPECT_LT(news_per_day[3], per_day[3] / 5 + 1);
}

TEST(WebGenerator, FlashCrowdDisabled) {
  WebParams p;
  p.clients = 10;
  p.days = 4;
  p.sites = 60;
  p.flash_crowd_day = -1;
  WebGenerator gen(p);
  for (const TraceRecord& r : gen.records()) {
    EXPECT_EQ(r.path.rfind("www.newswire.com", 0), std::string::npos);
  }
}

TEST(WorkloadSummary, CountsAccessesAndBytes) {
  std::vector<TraceRecord> recs = {
      {seconds(1), 0, TraceRecord::Op::kRead, "a", "", 0, 100},
      {seconds(2), 1, TraceRecord::Op::kWrite, "b", "", 0, 50},
      {seconds(3), 0, TraceRecord::Op::kRemove, "a", "", 0, 0},
  };
  const WorkloadSummary s = summarize(recs, {{"x", 1000}});
  EXPECT_EQ(s.accesses, 2u);
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.bytes_read, 100);
  EXPECT_EQ(s.bytes_written, 50);
  EXPECT_EQ(s.active_data, 1000);
  EXPECT_EQ(s.users, 2);
  EXPECT_EQ(s.duration, seconds(3));
}

}  // namespace
}  // namespace d2::trace
