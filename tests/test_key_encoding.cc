#include "fs/key_encoding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace d2::fs {
namespace {

const VolumeId kVol = make_volume_id("test-volume");

EncodedPath path_of(std::initializer_list<std::uint16_t> slots) {
  EncodedPath p;
  for (std::uint16_t s : slots) p = extend_path(p, s, "x");
  return p;
}

TEST(KeyEncoding, VolumePrefixDominatesOrdering) {
  const VolumeId a = make_volume_id("aaa");
  const VolumeId b = make_volume_id("bbb");
  const Key ka = encode_block_key(a, path_of({1}), BlockType::kData, 0, 0);
  const Key kb = encode_block_key(b, path_of({1}), BlockType::kData, 0, 0);
  // All keys of one volume are contiguous: compare 20-byte prefixes.
  EXPECT_NE(ka.bytes()[0] == kb.bytes()[0] && ka.bytes()[1] == kb.bytes()[1] &&
                ka.bytes()[19] == kb.bytes()[19],
            true)
      << "different volumes should differ in their prefix";
}

TEST(KeyEncoding, FilesInSameDirectoryAreAdjacent) {
  // dir has slot path {3}; files get slots 1 and 2 within it.
  const Key f1 = encode_block_key(kVol, path_of({3, 1}), BlockType::kData, 0, 0);
  const Key f2 = encode_block_key(kVol, path_of({3, 2}), BlockType::kData, 0, 0);
  const Key other_dir =
      encode_block_key(kVol, path_of({4, 1}), BlockType::kData, 0, 0);
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, other_dir);
}

TEST(KeyEncoding, DirectoryBlockPrecedesItsChildren) {
  const Key dir = encode_block_key(kVol, path_of({3}), BlockType::kDirectory, 0, 1);
  const Key child = encode_block_key(kVol, path_of({3, 1}), BlockType::kInode, 0, 1);
  EXPECT_LT(dir, child);
}

TEST(KeyEncoding, InodePrecedesDataBlocks) {
  const EncodedPath p = path_of({3, 1});
  const Key inode = encode_block_key(kVol, p, BlockType::kInode, 0, 1);
  const Key data0 = encode_block_key(kVol, p, BlockType::kData, 0, 1);
  const Key data1 = encode_block_key(kVol, p, BlockType::kData, 1, 1);
  EXPECT_LT(inode, data0);
  EXPECT_LT(data0, data1);
}

TEST(KeyEncoding, DataBlocksOfAFileAreContiguous) {
  const EncodedPath p = path_of({3, 1});
  Key prev = encode_block_key(kVol, p, BlockType::kData, 0, 0);
  for (std::uint64_t i = 1; i < 100; ++i) {
    const Key cur = encode_block_key(kVol, p, BlockType::kData, i, 0);
    EXPECT_LT(prev, cur);
    prev = cur;
  }
  // And nothing from a sibling file interleaves.
  const Key sibling = encode_block_key(kVol, path_of({3, 2}), BlockType::kData, 0, 0);
  EXPECT_LT(prev, sibling);
}

TEST(KeyEncoding, VersionsOfABlockAreAdjacent) {
  const EncodedPath p = path_of({3, 1});
  const Key v1 = encode_block_key(kVol, p, BlockType::kData, 5, 1);
  const Key v2 = encode_block_key(kVol, p, BlockType::kData, 5, 2);
  const Key next_block = encode_block_key(kVol, p, BlockType::kData, 6, 0);
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, next_block);
}

TEST(KeyEncoding, DecodeRoundTrips) {
  const EncodedPath p = path_of({3, 1, 7});
  const Key k = encode_block_key(kVol, p, BlockType::kData, 42, 9);
  const DecodedKey d = decode_block_key(k);
  EXPECT_EQ(d.path.slots, p.slots);
  EXPECT_EQ(d.type, BlockType::kData);
  EXPECT_EQ(d.block_number, 42u);
  EXPECT_EQ(d.version, 9u);
  EXPECT_TRUE(std::equal(d.volume.begin(), d.volume.end(), kVol.begin()));
}

TEST(KeyEncoding, DeepPathsOverflowToRemainderHash) {
  EncodedPath p;
  for (int i = 0; i < EncodedPath::kMaxLevels; ++i) {
    p = extend_path(p, static_cast<std::uint16_t>(i + 1), "d");
  }
  EXPECT_EQ(p.remainder_hash, 0u);
  const EncodedPath deeper = extend_path(p, 1, "over");
  EXPECT_NE(deeper.remainder_hash, 0u);
  EXPECT_EQ(deeper.slots, p.slots);  // slots unchanged past level 12
  // Distinct deep components produce distinct hashes.
  const EncodedPath other = extend_path(p, 1, "other");
  EXPECT_NE(deeper.remainder_hash, other.remainder_hash);
  // Chained: the 14th level still differs.
  EXPECT_NE(extend_path(deeper, 1, "a").remainder_hash,
            extend_path(deeper, 1, "b").remainder_hash);
}

TEST(KeyEncoding, SlotZeroReservedThrows) {
  EncodedPath p;
  EXPECT_THROW(extend_path(p, 0, "x"), PreconditionError);
}

TEST(KeyEncoding, BlockNumberTooLargeThrows) {
  EXPECT_THROW(
      encode_block_key(kVol, path_of({1}), BlockType::kData, 1ull << 56, 0),
      PreconditionError);
}

TEST(KeyEncoding, SplitPathHandlesSlashes) {
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_path("").empty());
  EXPECT_TRUE(split_path("///").empty());
}

TEST(KeyEncoding, ReverseDomainUrl) {
  EXPECT_EQ(reverse_domain_url("www.yahoo.com/index.html"),
            "com.yahoo.www/index.html");
  EXPECT_EQ(reverse_domain_url("http://www.yahoo.com/a/b.html"),
            "com.yahoo.www/a/b.html");
  EXPECT_EQ(reverse_domain_url("example.org"), "org.example");
  EXPECT_EQ(reverse_domain_url("single/x"), "single/x");
}

TEST(KeyEncoding, UrlEncodingGroupsSites) {
  // Objects of the same site share their first slot; different sites
  // (almost surely) don't.
  const EncodedPath a1 = encode_url_path(reverse_domain_url("www.siteA.com/x.html"));
  const EncodedPath a2 = encode_url_path(reverse_domain_url("www.siteA.com/y.html"));
  const EncodedPath b = encode_url_path(reverse_domain_url("www.siteB.com/x.html"));
  // The reversed domain is one component: same site -> same first slot,
  // different sites -> different first slot.
  EXPECT_EQ(a1.slots[0], a2.slots[0]);
  EXPECT_NE(a1.slots[1], a2.slots[1]);  // x.html vs y.html
  EXPECT_NE(a1.slots[0], b.slots[0]);
  EXPECT_EQ(a1.slots[1], b.slots[1]);  // same object name hash
}

TEST(KeyEncoding, UrlKeysOfOneSiteContiguous) {
  const VolumeId web = make_volume_id("webcache");
  auto url_key = [&web](const std::string& url) {
    return encode_block_key(web, encode_url_path(reverse_domain_url(url)),
                            BlockType::kData, 0, 0);
  };
  const Key a1 = url_key("www.siteA.com/d/x.html");
  const Key a2 = url_key("www.siteA.com/d/y.html");
  const Key b = url_key("www.siteB.com/d/x.html");
  // a1 and a2 differ only in the last path slot; b differs at slot 0+1.
  const Key lo = std::min(a1, a2);
  const Key hi = std::max(a1, a2);
  EXPECT_TRUE(b < lo || b > hi);
}

// Property: the fundamental locality theorem of the encoding — for any
// directory, ALL keys beneath it form one contiguous key range (no foreign
// key interleaves).
class EncodingLocalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncodingLocalityProperty, SubtreeKeysContiguous) {
  Rng rng(GetParam());
  // Build random paths: some under prefix {5, 9}, some elsewhere.
  const EncodedPath subtree = path_of({5, 9});
  std::vector<Key> inside, outside;
  for (int i = 0; i < 200; ++i) {
    const bool in = rng.bernoulli(0.5);
    EncodedPath p = in ? subtree : path_of({static_cast<std::uint16_t>(
                                       rng.bernoulli(0.5) ? 4 : 6)});
    const int extra = static_cast<int>(rng.next_below(3));
    for (int e = 0; e < extra; ++e) {
      p = extend_path(p, static_cast<std::uint16_t>(1 + rng.next_below(100)), "c");
    }
    const Key k = encode_block_key(
        kVol, p, rng.bernoulli(0.5) ? BlockType::kData : BlockType::kInode,
        rng.next_below(1000), static_cast<std::uint32_t>(rng.next_below(10)));
    (in ? inside : outside).push_back(k);
  }
  if (inside.empty() || outside.empty()) return;
  const Key lo = *std::min_element(inside.begin(), inside.end());
  const Key hi = *std::max_element(inside.begin(), inside.end());
  for (const Key& k : outside) {
    EXPECT_TRUE(k < lo || k > hi) << "foreign key inside subtree range";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingLocalityProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace d2::fs
