#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.h"

namespace d2 {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMean) {
  Rng rng(9);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = 1.0, sigma = 0.5;
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(Rng, ParetoBounded) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, GeometricMean) {
  Rng rng(11);
  // E[geometric(p)] = (1-p)/p.
  const double p = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int count = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) count += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependent) {
  Rng a(13);
  Rng b = a.fork();
  // The fork and the parent should produce different streams.
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    if (a.next_u64() != b.next_u64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Zipf, RanksWithinBounds) {
  Rng rng(14);
  ZipfDistribution z(100, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(15);
  ZipfDistribution z(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  // Zipf(1.0): rank 0 frequency ~ 1/H(1000) ~ 13%.
  EXPECT_NEAR(counts[0] / 100000.0, 0.133, 0.02);
}

TEST(Zipf, SingleElement) {
  Rng rng(16);
  ZipfDistribution z(1, 1.0);
  EXPECT_EQ(z.sample(rng), 0u);
}

class RngRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeSweep, NextBelowUnbiasedAcrossModuli) {
  Rng rng(GetParam());
  // chi-square-lite: each bucket of next_below(10) within 3% of uniform.
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(counts[b] / static_cast<double>(n), 0.1, 0.01) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngRangeSweep, ::testing::Values(1, 7, 21, 88));

}  // namespace
}  // namespace d2
