#include "dht/ring.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/rng.h"
#include "dht/consistent_hash.h"

namespace d2::dht {
namespace {

Ring make_ring(std::initializer_list<std::pair<int, std::uint64_t>> nodes) {
  Ring r;
  for (const auto& [node, id] : nodes) r.add(node, Key::from_uint64(id));
  return r;
}

TEST(Ring, OwnerIsSuccessor) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  EXPECT_EQ(r.owner(Key::from_uint64(150)), 1);
  EXPECT_EQ(r.owner(Key::from_uint64(200)), 1);  // inclusive
  EXPECT_EQ(r.owner(Key::from_uint64(201)), 2);
  EXPECT_EQ(r.owner(Key::from_uint64(100)), 0);
}

TEST(Ring, OwnerWrapsAround) {
  Ring r = make_ring({{0, 100}, {1, 200}});
  // Keys beyond the largest ID wrap to the smallest.
  EXPECT_EQ(r.owner(Key::from_uint64(250)), 0);
  EXPECT_EQ(r.owner(Key::from_uint64(50)), 0);
}

TEST(Ring, SingleNodeOwnsEverything) {
  Ring r = make_ring({{7, 1000}});
  EXPECT_EQ(r.owner(Key::min()), 7);
  EXPECT_EQ(r.owner(Key::max()), 7);
  EXPECT_TRUE(r.owns(7, Key::from_uint64(123456)));
  EXPECT_EQ(r.successor(7), 7);
  EXPECT_EQ(r.predecessor(7), 7);
}

TEST(Ring, ReplicaSetFollowsSuccessors) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}, {3, 400}});
  EXPECT_EQ(r.replica_set(Key::from_uint64(150), 3), (std::vector<int>{1, 2, 3}));
  // Wraps.
  EXPECT_EQ(r.replica_set(Key::from_uint64(350), 3), (std::vector<int>{3, 0, 1}));
}

TEST(Ring, ReplicaSetCappedAtRingSize) {
  Ring r = make_ring({{0, 100}, {1, 200}});
  EXPECT_EQ(r.replica_set(Key::from_uint64(50), 5).size(), 2u);
}

TEST(Ring, SuccessorPredecessorInverse) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  for (int n : {0, 1, 2}) {
    EXPECT_EQ(r.predecessor(r.successor(n)), n);
    EXPECT_EQ(r.successor(r.predecessor(n)), n);
  }
}

TEST(Ring, OwnedArcCoversOwnKeys) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  auto [from, to] = r.owned_arc(1);
  EXPECT_EQ(from, Key::from_uint64(100));
  EXPECT_EQ(to, Key::from_uint64(200));
  EXPECT_TRUE(r.owns(1, Key::from_uint64(150)));
  EXPECT_FALSE(r.owns(1, Key::from_uint64(250)));
  // Node 0's arc wraps.
  EXPECT_TRUE(r.owns(0, Key::from_uint64(50)));
  EXPECT_TRUE(r.owns(0, Key::from_uint64(350)));
}

TEST(Ring, MoveRelocatesNode) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  r.move(0, Key::from_uint64(250));
  EXPECT_EQ(r.owner(Key::from_uint64(240)), 0);
  EXPECT_EQ(r.owner(Key::from_uint64(90)), 1);  // old arc fell to node 1
  EXPECT_EQ(r.id_of(0), Key::from_uint64(250));
}

TEST(Ring, AddDuplicateNodeThrows) {
  Ring r = make_ring({{0, 100}});
  EXPECT_THROW(r.add(0, Key::from_uint64(200)), PreconditionError);
}

TEST(Ring, AddDuplicateIdThrows) {
  Ring r = make_ring({{0, 100}});
  EXPECT_THROW(r.add(1, Key::from_uint64(100)), PreconditionError);
  EXPECT_TRUE(r.id_taken(Key::from_uint64(100)));
}

TEST(Ring, RemoveUnknownThrows) {
  Ring r = make_ring({{0, 100}});
  EXPECT_THROW(r.remove(5), PreconditionError);
}

TEST(Ring, NthClockwiseWraps) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  EXPECT_EQ(r.nth_clockwise(0, 0), 0);
  EXPECT_EQ(r.nth_clockwise(0, 1), 1);
  EXPECT_EQ(r.nth_clockwise(0, 3), 0);
  EXPECT_EQ(r.nth_clockwise(2, 2), 1);
}

TEST(Ring, RankDistance) {
  Ring r = make_ring({{0, 100}, {1, 200}, {2, 300}});
  EXPECT_EQ(r.rank_distance(0, 0), 0u);
  EXPECT_EQ(r.rank_distance(0, 2), 2u);
  EXPECT_EQ(r.rank_distance(2, 0), 1u);
}

TEST(Ring, NodesInOrderSortedById) {
  Ring r = make_ring({{5, 300}, {9, 100}, {2, 200}});
  EXPECT_EQ(r.nodes_in_order(), (std::vector<int>{9, 2, 5}));
}

// Property: for random rings, every key's owner's arc contains it, and
// replica sets are consecutive.
class RingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RingProperty, OwnershipConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Ring r;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    Key id = random_node_id(rng);
    while (r.id_taken(id)) id = random_node_id(rng);
    r.add(i, id);
  }
  for (int trial = 0; trial < 100; ++trial) {
    const Key k = Key::random(rng);
    const int owner = r.owner(k);
    EXPECT_TRUE(r.owns(owner, k));
    const auto set = r.replica_set(k, 3);
    EXPECT_EQ(set[0], owner);
    for (std::size_t i = 0; i + 1 < set.size(); ++i) {
      EXPECT_EQ(r.successor(set[i]), set[i + 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingProperty,
                         ::testing::Values(2, 3, 5, 16, 64, 257));

}  // namespace
}  // namespace d2::dht
