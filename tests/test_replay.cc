#include "core/replay.h"

#include <gtest/gtest.h>

#include "fs/key_encoding.h"

namespace d2::core {
namespace {

// Literal-backed views: callers pass string literals, so the records
// never dangle.
trace::TraceRecord rec(trace::TraceRecord::Op op, std::string_view path,
                       Bytes offset = 0, Bytes length = 0,
                       std::string_view path2 = "") {
  return trace::TraceRecord{0, 0, op, path, path2, offset, length};
}

TEST(VolumeSet, RoutesHomePathsToPerUserVolumes) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::string rel;
  fs::Volume& u3 = vs.volume_for("home/u3/docs/a.txt", &rel);
  EXPECT_EQ(u3.name(), "home/u3");
  EXPECT_EQ(rel, "docs/a.txt");
  fs::Volume& u4 = vs.volume_for("home/u4/docs/a.txt", &rel);
  EXPECT_NE(&u3, &u4);
  fs::Volume& u3_again = vs.volume_for("home/u3/other", &rel);
  EXPECT_EQ(&u3, &u3_again);
  EXPECT_EQ(vs.volume_count(), 2u);
}

TEST(VolumeSet, SharedVolumeIsOne) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::string rel;
  fs::Volume& a = vs.volume_for("shared/pkg0/lib.so", &rel);
  EXPECT_EQ(a.name(), "shared");
  EXPECT_EQ(rel, "pkg0/lib.so");
  fs::Volume& b = vs.volume_for("shared/pkg9/lib.so", &rel);
  EXPECT_EQ(&a, &b);
}

TEST(VolumeSet, DifferentVolumesDifferentKeyPrefixes) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kCreate, "home/u1/f", 0, kB(8)), 0, ops);
  vs.apply(rec(trace::TraceRecord::Op::kCreate, "home/u2/f", 0, kB(8)), 0, ops);
  vs.flush_all(0, ops);
  // Puts from different users must carry different 20-byte volume ids.
  std::array<std::uint8_t, 20> vol1{}, vol2{};
  bool got1 = false, got2 = false;
  std::string rel;
  const Key root1 = vs.volume_for("home/u1/f", &rel).root_key();
  const Key root2 = vs.volume_for("home/u2/f", &rel).root_key();
  const auto bytes1 = root1.bytes();
  const auto bytes2 = root2.bytes();
  std::copy(bytes1.begin(), bytes1.begin() + 20, vol1.begin());
  std::copy(bytes2.begin(), bytes2.begin() + 20, vol2.begin());
  got1 = got2 = true;
  EXPECT_TRUE(got1 && got2);
  EXPECT_NE(vol1, vol2);
}

TEST(VolumeSet, ApplyWriteCreatesFile) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kWrite, "home/u1/d/f", 0, kB(20)), 0, ops);
  std::string rel;
  fs::Volume& v = vs.volume_for("home/u1/d/f", &rel);
  EXPECT_TRUE(v.exists("d/f"));
  EXPECT_EQ(v.file_size("d/f"), kB(20));
}

TEST(VolumeSet, ReadOfMissingPathIsDropped) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kRead, "home/u1/nope", 0, kB(8)), 0, ops);
  EXPECT_TRUE(ops.empty());  // defensive ENOENT, no throw
}

TEST(VolumeSet, RemoveOfMissingPathIsDropped) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kRemove, "home/u1/nope"), 0, ops);
  EXPECT_TRUE(ops.empty());
}

TEST(VolumeSet, IncludeReadsFalseSkipsGets) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kWrite, "home/u1/f", 0, kB(64)), 0, ops);
  vs.flush_all(0, ops);
  ops.clear();
  vs.apply(rec(trace::TraceRecord::Op::kRead, "home/u1/f", 0, kB(64)), hours(1),
           ops, /*include_reads=*/false);
  EXPECT_TRUE(ops.empty());
}

TEST(VolumeSet, RenameWithinVolume) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kWrite, "home/u1/a/f", 0, kB(8)), 0, ops);
  vs.apply(rec(trace::TraceRecord::Op::kRename, "home/u1/a/f", 0, 0,
               "home/u1/b/g"),
           0, ops);
  std::string rel;
  fs::Volume& v = vs.volume_for("home/u1/x", &rel);
  EXPECT_FALSE(v.exists("a/f"));
  EXPECT_TRUE(v.exists("b/g"));
}

TEST(VolumeSet, CrossVolumeRenameIsDropped) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  vs.apply(rec(trace::TraceRecord::Op::kWrite, "home/u1/f", 0, kB(8)), 0, ops);
  vs.apply(rec(trace::TraceRecord::Op::kRename, "home/u1/f", 0, 0, "home/u2/f"),
           0, ops);
  std::string rel;
  EXPECT_TRUE(vs.volume_for("home/u1/f", &rel).exists("f"));
  EXPECT_FALSE(vs.volume_for("home/u2/f", &rel).exists("f"));
}

TEST(VolumeSet, InsertInitialPopulatesAndFlushes) {
  VolumeSet vs(fs::KeyScheme::kD2);
  std::vector<fs::StoreOp> ops;
  std::vector<trace::FileSpec> files = {
      {"home/u1/a", kB(8)}, {"home/u1/b", kB(16)}, {"shared/lib", kB(8)}};
  vs.insert_initial(files, 0, ops);
  int puts = 0;
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) ++puts;
  }
  EXPECT_GT(puts, 3);  // data + metadata blocks
  std::string rel;
  EXPECT_EQ(vs.volume_for("home/u1/a", &rel).file_size("a"), kB(8));
  EXPECT_EQ(vs.volume_for("shared/lib", &rel).file_size("lib"), kB(8));
}

class VolumeSetSchemeSweep : public ::testing::TestWithParam<fs::KeyScheme> {};

TEST_P(VolumeSetSchemeSweep, FullRecordMixReplaysCleanly) {
  VolumeSet vs(GetParam());
  std::vector<fs::StoreOp> ops;
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t += seconds(1);
    const int u = i % 3;
    const std::string f =
        "home/u" + std::to_string(u) + "/d" + std::to_string(i % 5) + "/f" +
        std::to_string(i % 7);
    vs.apply(rec(trace::TraceRecord::Op::kWrite, f, 0, kB(4) * (1 + i % 4)),
             t, ops);
    if (i % 5 == 0) {
      vs.apply(rec(trace::TraceRecord::Op::kRead, f, 0, kB(16)), t, ops);
    }
    if (i % 11 == 0) {
      vs.apply(rec(trace::TraceRecord::Op::kRemove, f), t, ops);
    }
  }
  vs.flush_all(t, ops);
  // No duplicate puts of the same key without an intervening remove.
  std::map<Key, int> put_counts;
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) ++put_counts[op.key];
  }
  // Mutable root blocks may repeat; immutable blocks must not.
  for (const auto& [key, count] : put_counts) {
    if (count > 1) {
      bool is_root = false;
      std::string rel;
      for (int u = 0; u < 3; ++u) {
        if (vs.volume_for("home/u" + std::to_string(u) + "/x", &rel)
                .root_key() == key) {
          is_root = true;
        }
      }
      EXPECT_TRUE(is_root) << "immutable block " << key.short_hex()
                           << " written " << count << " times";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, VolumeSetSchemeSweep,
                         ::testing::Values(fs::KeyScheme::kD2,
                                           fs::KeyScheme::kTraditionalBlock,
                                           fs::KeyScheme::kTraditionalFile));

}  // namespace
}  // namespace d2::core
