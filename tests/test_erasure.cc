// Erasure-coded redundancy (paper §3's alternative to whole-block
// replication): n fragments of size/k on the n successors, any k of which
// reconstruct the block.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "core/system.h"
#include "sim/failure.h"

namespace d2::core {
namespace {

Key seq_key(std::uint64_t i) { return Key::from_uint64(1000 + i); }

SystemConfig ec_config(int n, int k) {
  SystemConfig c;
  c.node_count = 24;
  c.redundancy = SystemConfig::Redundancy::kErasure;
  c.ec_total_fragments = n;
  c.ec_data_fragments = k;
  c.seed = 13;
  return c;
}

TEST(ErasureCoding, PlacesNFragmentsOnSuccessors) {
  sim::Simulator sim;
  System sys(ec_config(6, 3), sim);
  sys.put(seq_key(1), kB(24));
  const auto nodes = sys.replica_nodes(seq_key(1));
  ASSERT_EQ(nodes.size(), 6u);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    EXPECT_EQ(sys.ring().successor(nodes[i]), nodes[i + 1]);
  }
}

TEST(ErasureCoding, StorageCostIsNOverK) {
  sim::Simulator sim;
  System sys(ec_config(6, 3), sim);
  sys.put(seq_key(1), kB(24));
  // Fragments: 24 KB / 3 = 8 KB each, 6 of them = 48 KB total physical
  // (2x) instead of 72 KB under 3-way replication (3x).
  Bytes physical = 0;
  for (int n = 0; n < 24; ++n) physical += sys.block_map().physical_bytes(n);
  EXPECT_EQ(physical, kB(48));
  EXPECT_EQ(sys.block_map().find(seq_key(1))->member_bytes, kB(8));
  EXPECT_EQ(sys.block_map().total_bytes(), kB(24));  // logical
}

TEST(ErasureCoding, AvailableWithExactlyKFragments) {
  SystemConfig c = ec_config(6, 3);
  c.regen_delay = hours(20);  // disable regeneration for this test
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(24));
  const auto nodes = sys.replica_nodes(seq_key(1));
  // Fail n-k = 3 members: still available (exactly k = 3 fragments left).
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int i = 0; i < 3; ++i) downs.push_back({nodes[static_cast<std::size_t>(i)],
                                               minutes(5), hours(10)});
  const auto trace =
      sim::FailureTrace::from_intervals(c.node_count, days(1), downs);
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(1));
  EXPECT_TRUE(sys.block_available(seq_key(1)));
}

TEST(ErasureCoding, UnavailableBelowKFragments) {
  SystemConfig c = ec_config(6, 3);
  c.regen_delay = hours(20);
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(24));
  const auto nodes = sys.replica_nodes(seq_key(1));
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int i = 0; i < 4; ++i) downs.push_back({nodes[static_cast<std::size_t>(i)],
                                               minutes(5), hours(10)});
  const auto trace =
      sim::FailureTrace::from_intervals(c.node_count, days(1), downs);
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(1));
  EXPECT_FALSE(sys.block_available(seq_key(1)));  // only 2 of 3 needed up
  EXPECT_EQ(sys.serving_node(seq_key(1)), std::nullopt);
}

TEST(ErasureCoding, RepairCostsKFragmentsOfTraffic) {
  // Regenerating a lost fragment reads k fragments: repair traffic is
  // ~block size, not fragment size — the classic EC repair penalty.
  SystemConfig c = ec_config(6, 3);
  c.regen_delay = minutes(10);
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(24));
  const auto nodes = sys.replica_nodes(seq_key(1));
  const auto trace = sim::FailureTrace::from_intervals(
      c.node_count, days(1), {{nodes[0], minutes(5), hours(10)}});
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(2));
  // One replacement fragment regenerated: traffic = k * fragment = 24 KB.
  EXPECT_EQ(sys.migration_bytes(), kB(24));
}

TEST(ErasureCoding, RecoveryCatchupAlsoReconstructs) {
  SystemConfig c = ec_config(4, 2);
  c.regen_delay = hours(20);
  sim::Simulator sim;
  System sys(c, sim);
  const Key key = seq_key(1);
  const int owner = sys.owner_of(key);
  const auto trace = sim::FailureTrace::from_intervals(
      c.node_count, days(1), {{owner, minutes(1), hours(1)}});
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(minutes(5));
  sys.put(key, kB(16));  // written while a fragment holder is down
  sim.run_until(hours(3));
  const store::BlockState* b = sys.block_map().find(key);
  for (const store::Replica& r : b->replicas) EXPECT_TRUE(r.has_data);
}

TEST(ErasureCoding, InvalidParamsThrow) {
  sim::Simulator sim;
  SystemConfig c = ec_config(2, 3);  // n < k
  EXPECT_THROW(System(c, sim), d2::PreconditionError);
  SystemConfig c2 = ec_config(6, 3);
  c2.scatter_replicas = 1;  // unsupported combination
  EXPECT_THROW(System(c2, sim), d2::PreconditionError);
}

TEST(ErasureCoding, LoadBalancingStillWorks) {
  SystemConfig c = ec_config(4, 2);
  c.node_count = 32;
  c.use_pointers = false;
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 1000; ++i) sys.put(seq_key(i), kB(8));
  sys.start_load_balancing();
  sim.run_until(days(2));
  EXPECT_GT(sys.lb_moves(), 0);
  EXPECT_LT(sys.max_over_mean_load(), 6.0);
}

class EcParamSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EcParamSweep, FragmentArithmeticConsistent) {
  const auto [n, k] = GetParam();
  sim::Simulator sim;
  System sys(ec_config(n, k), sim);
  const Bytes size = kB(30);
  sys.put(seq_key(1), size);
  const store::BlockState* b = sys.block_map().find(seq_key(1));
  EXPECT_EQ(static_cast<int>(b->replicas.size()), n);
  EXPECT_EQ(b->member_bytes, (size + k - 1) / k);
}

INSTANTIATE_TEST_SUITE_P(Params, EcParamSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{6, 3},
                                           std::pair{9, 6}, std::pair{3, 3}));

}  // namespace
}  // namespace d2::core
