#include "trace/tasks.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace d2::trace {
namespace {

TraceRecord read_at(SimTime t, int user) {
  return TraceRecord{t, user, TraceRecord::Op::kRead, "f", "", 0, 8};
}

TEST(Tasks, SplitsOnInterArrivalGap) {
  std::vector<TraceRecord> recs = {
      read_at(seconds(0), 0), read_at(seconds(1), 0), read_at(seconds(2), 0),
      read_at(seconds(30), 0),  // gap > 5 s: new task
  };
  auto tasks = segment_tasks(recs, seconds(5));
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].record_indices.size(), 3u);
  EXPECT_EQ(tasks[1].record_indices.size(), 1u);
}

TEST(Tasks, PerUserStreamsIndependent) {
  std::vector<TraceRecord> recs = {
      read_at(seconds(0), 0), read_at(seconds(1), 1), read_at(seconds(2), 0),
      read_at(seconds(3), 1),
  };
  auto tasks = segment_tasks(recs, seconds(5));
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].user, 0);
  EXPECT_EQ(tasks[1].user, 1);
  EXPECT_EQ(tasks[0].record_indices, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(tasks[1].record_indices, (std::vector<std::size_t>{1, 3}));
}

TEST(Tasks, DurationCappedAtFiveMinutes) {
  std::vector<TraceRecord> recs;
  // One access every 4 s for 10 minutes: inter = 5 s would never split,
  // but the 5-minute cap must.
  for (int i = 0; i < 150; ++i) recs.push_back(read_at(seconds(4) * i, 0));
  auto tasks = segment_tasks(recs, seconds(5), minutes(5));
  EXPECT_GE(tasks.size(), 2u);
  for (const Task& t : tasks) {
    EXPECT_LE(t.end - t.start, minutes(5) + seconds(4));
  }
}

TEST(Tasks, NonAccessOpsIgnored) {
  std::vector<TraceRecord> recs = {
      read_at(seconds(0), 0),
      {seconds(1), 0, TraceRecord::Op::kRename, "a", "b", 0, 0},
      read_at(seconds(2), 0),
  };
  auto tasks = segment_tasks(recs, seconds(5));
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].record_indices, (std::vector<std::size_t>{0, 2}));
}

TEST(Tasks, WritesCountAsAccesses) {
  std::vector<TraceRecord> recs = {
      {seconds(0), 0, TraceRecord::Op::kWrite, "a", "", 0, 8},
      {seconds(1), 0, TraceRecord::Op::kCreate, "b", "", 0, 8},
  };
  auto tasks = segment_tasks(recs, seconds(5));
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].record_indices.size(), 2u);
}

TEST(Tasks, InterThresholdBoundary) {
  std::vector<TraceRecord> recs = {
      read_at(seconds(0), 0),
      read_at(seconds(5), 0),  // gap == inter: NOT < inter -> new task
  };
  auto tasks = segment_tasks(recs, seconds(5));
  EXPECT_EQ(tasks.size(), 2u);
}

TEST(AccessGroups, ThinkTimeSplits) {
  std::vector<TraceRecord> recs = {
      read_at(0, 0),
      read_at(milliseconds(500), 0),
      read_at(milliseconds(900), 0),
      read_at(seconds(3), 0),  // > 1 s think time
  };
  auto groups = segment_access_groups(recs);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].record_indices.size(), 3u);
  EXPECT_EQ(groups[1].record_indices.size(), 1u);
}

TEST(AccessGroups, ExactlyOneSecondStaysTogether) {
  std::vector<TraceRecord> recs = {
      read_at(0, 0),
      read_at(seconds(1), 0),  // <= think time: same group
  };
  auto groups = segment_access_groups(recs);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(AccessGroups, StartRecorded) {
  std::vector<TraceRecord> recs = {read_at(seconds(7), 3)};
  auto groups = segment_access_groups(recs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].start, seconds(7));
  EXPECT_EQ(groups[0].user, 3);
}

TEST(Tasks, EmptyInput) {
  EXPECT_TRUE(segment_tasks({}, seconds(5)).empty());
  EXPECT_TRUE(segment_access_groups({}).empty());
}

class InterSweep : public ::testing::TestWithParam<SimTime> {};

TEST_P(InterSweep, LargerInterMeansFewerTasks) {
  std::vector<TraceRecord> recs;
  Rng rng(42);
  SimTime t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<SimTime>(rng.exponential(3.0) * 1e6);
    recs.push_back(read_at(t, 0));
  }
  const auto small = segment_tasks(recs, GetParam()).size();
  const auto large = segment_tasks(recs, GetParam() * 4).size();
  EXPECT_LE(large, small);
  EXPECT_GE(small, 1u);
}

INSTANTIATE_TEST_SUITE_P(Inters, InterSweep,
                         ::testing::Values(seconds(1), seconds(5), seconds(15)));

}  // namespace
}  // namespace d2::trace
