#include "common/units.h"

#include <gtest/gtest.h>

namespace d2 {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_EQ(seconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1500), microseconds(1'500'000));
  EXPECT_EQ(minutes(2), seconds(120));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_EQ(days(1), hours(24));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(90)), 90.0);
  EXPECT_DOUBLE_EQ(to_hours(days(2)), 48.0);
}

TEST(Units, ByteConversions) {
  EXPECT_EQ(kB(1), 1024);
  EXPECT_EQ(mB(1), 1024 * 1024);
  EXPECT_EQ(gB(1), 1024LL * 1024 * 1024);
  EXPECT_EQ(kBlockSize, kB(8));
}

TEST(Units, TransmissionTime) {
  // 8 KB at 1500 kbps: 8192*8/1.5e6 s = 43.69 ms.
  const SimTime t = transmission_time(kB(8), kbps(1500));
  EXPECT_NEAR(static_cast<double>(t), 43690.0, 10.0);
  // Paper §8.1 write rate sanity: 1500 kbps moves 1500e3/8 B/s * 3600 =
  // 675e6 bytes per hour = 643.7 MiB/h.
  const Bytes per_hour = static_cast<Bytes>(
      static_cast<double>(hours(1)) /
      static_cast<double>(transmission_time(mB(1), kbps(1500))) * mB(1));
  EXPECT_NEAR(static_cast<double>(per_hour) / mB(1), 643.7, 5.0);
}

TEST(Units, TransmissionTimeMonotonic) {
  for (Bytes b = 0; b < kB(64); b += kB(8)) {
    EXPECT_LE(transmission_time(b, kbps(384)),
              transmission_time(b + kB(8), kbps(384)));
    EXPECT_GE(transmission_time(b, kbps(384)),
              transmission_time(b, kbps(1500)));
  }
}

TEST(Units, NeverIsHuge) {
  EXPECT_GT(kSimTimeNever, days(365 * 1000));
}

}  // namespace
}  // namespace d2
