#include "common/hash.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace d2 {
namespace {

// Known SHA-1 test vectors (FIPS 180-1 / RFC 3174).
TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(Sha1::hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(Sha1::hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, LongerVector) {
  EXPECT_EQ(to_hex(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.digest(), Sha1::hash("hello world"));
}

TEST(Sha1, BlockBoundaryLengths) {
  // Exercise padding around the 55/56/63/64-byte boundaries.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    std::string s(len, 'x');
    Sha1 a;
    a.update(s);
    Sha1 b;
    for (char c : s) b.update(&c, 1);
    EXPECT_EQ(a.digest(), b.digest()) << "len=" << len;
  }
}

TEST(Sha1, ReuseAfterDigestThrows) {
  Sha1 h;
  h.update("x");
  h.digest();
  EXPECT_THROW(h.update("y"), PreconditionError);
  EXPECT_THROW(h.digest(), PreconditionError);
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, DistinguishesNearbyStrings) {
  EXPECT_NE(fnv1a64("path/a"), fnv1a64("path/b"));
  EXPECT_NE(fnv1a64("x"), fnv1a64("x\0", 2));
}

TEST(Hash16, CoversRange) {
  // Over many inputs, hash16 should hit both low and high halves.
  bool low = false, high = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint16_t h = hash16("name" + std::to_string(i));
    if (h < 0x8000) low = true;
    if (h >= 0x8000) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Hash16, Deterministic) {
  EXPECT_EQ(hash16("www"), hash16("www"));
}

}  // namespace
}  // namespace d2
