#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/key.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace d2::sim {
namespace {

TEST(InlineFunction, WrapsCapturesUpToBudget) {
  int hits = 0;
  std::uint64_t payload[8] = {7, 0, 0, 0, 0, 0, 0, 35};  // Key-sized capture
  EventFn fn = [&hits, payload] { hits += static_cast<int>(payload[0] + payload[7]); };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 84);
}

TEST(InlineFunction, DefaultIsEmptyAndResetClears) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, CopiesAreIndependentInvocables) {
  int count = 0;
  EventFn a = [&count] { ++count; };
  EventFn b = a;  // trivially copyable: slab-style memcpy semantics
  a();
  b();
  EXPECT_EQ(count, 2);
  a.reset();
  b();  // resetting one copy must not disturb another
  EXPECT_EQ(count, 3);
}

TEST(InlineFunction, CapacityMatchesAuditedBudget) {
  // The budget is load-bearing: System::refresh captures
  // {this, Key, SimTime} = 80 bytes. If Key grows or the budget shrinks,
  // this fails before an opaque static_assert does.
  static_assert(EventFn::capacity() >= sizeof(void*) + sizeof(Key) +
                                           sizeof(SimTime));
  SUCCEED();
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.push(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
}

TEST(EventQueue, CancelMiddleEventOnly) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1, [&] { fired.push_back(1); });
  EventId mid = q.push(2, [&] { fired.push_back(2); });
  q.push(3, [&] { fired.push_back(3); });
  q.cancel(mid);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  SimTime seen = -1;
  sim.schedule_at(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{75}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(30, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), d2::PreconditionError);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), d2::PreconditionError);
}

// Recurring chains use a self-rescheduling functor (as the balance
// experiment's sampler does): a recursive std::function would both
// heap-allocate and fail EventFn's trivially-copyable capture gate.
struct Ticker {
  Simulator* sim;
  int* fires;
  void operator()() const {
    if (++*fires < 5) sim->schedule_after(10, *this);
  }
};

TEST(Simulator, RecurringEventChain) {
  Simulator sim;
  int fires = 0;
  sim.schedule_after(10, Ticker{&sim, &fires});
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(BandwidthLink, TransmissionTimeMatchesRate) {
  // 750 kbps, 750k bits = 93750 bytes in exactly 1 second.
  BandwidthLink link(kbps(750));
  const SimTime done = link.enqueue(0, 93750);
  EXPECT_EQ(done, seconds(1));
}

TEST(BandwidthLink, SerializesTransfers) {
  BandwidthLink link(kbps(800));  // 100 KB/s
  const SimTime first = link.enqueue(0, 100000);
  const SimTime second = link.enqueue(0, 100000);
  EXPECT_EQ(first, seconds(1));
  EXPECT_EQ(second, seconds(2));
  EXPECT_EQ(link.total_bytes(), 200000);
}

TEST(BandwidthLink, IdleGapNotCharged) {
  BandwidthLink link(kbps(800));
  link.enqueue(0, 100000);              // busy until 1s
  const SimTime done = link.enqueue(seconds(5), 100000);
  EXPECT_EQ(done, seconds(6));          // starts fresh at 5s
}

TEST(BandwidthLink, BacklogReflectsQueue) {
  BandwidthLink link(kbps(800));
  EXPECT_EQ(link.backlog(0), 0);
  link.enqueue(0, 100000);
  EXPECT_EQ(link.backlog(0), seconds(1));
  EXPECT_EQ(link.backlog(seconds(2)), 0);
}

TEST(BandwidthLink, PeekDoesNotMutate) {
  BandwidthLink link(kbps(800));
  const SimTime peeked = link.peek_completion(0, 100000);
  EXPECT_EQ(peeked, seconds(1));
  EXPECT_EQ(link.busy_until(), 0);
  EXPECT_EQ(link.total_bytes(), 0);
}

TEST(Units, TransmissionTimeBasics) {
  EXPECT_EQ(transmission_time(0, kbps(100)), 0);
  // 1500 bytes at 1500 kbps = 8 ms.
  EXPECT_EQ(transmission_time(1500, kbps(1500)), milliseconds(8));
}

}  // namespace
}  // namespace d2::sim
