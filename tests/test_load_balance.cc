#include "dht/load_balance.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace d2::dht {
namespace {

auto median_at(std::uint64_t v) {
  return [v](int) -> std::optional<Key> { return Key::from_uint64(v); };
}

TEST(LoadBalancer, NoActionWhenBalanced) {
  LoadBalancer lb;
  EXPECT_FALSE(lb.evaluate_probe(0, 100, 1, 100, median_at(5)).has_value());
  EXPECT_FALSE(lb.evaluate_probe(0, 100, 1, 30, median_at(5)).has_value());
  // Exactly at threshold: 4x is not > 4x.
  EXPECT_FALSE(lb.evaluate_probe(0, 400, 1, 100, median_at(5)).has_value());
}

TEST(LoadBalancer, ActsAboveThreshold) {
  LoadBalancer lb;
  auto d = lb.evaluate_probe(0, 401, 1, 100, median_at(5));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->heavy_node, 0);
  EXPECT_EQ(d->light_node, 1);
  EXPECT_EQ(d->new_id, Key::from_uint64(5));
}

TEST(LoadBalancer, SymmetricProbe) {
  // Either side of the probe may be the heavy one.
  LoadBalancer lb;
  auto d = lb.evaluate_probe(0, 100, 1, 401, median_at(5));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->heavy_node, 1);
  EXPECT_EQ(d->light_node, 0);
}

TEST(LoadBalancer, ZeroLightLoadAlwaysImbalanced) {
  LoadBalancer lb;
  auto d = lb.evaluate_probe(0, 10, 1, 0, median_at(5));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->light_node, 1);
}

TEST(LoadBalancer, SkipsTinyHeavyNode) {
  LoadBalancer lb(LoadBalanceConfig{4.0, 8});
  EXPECT_FALSE(lb.evaluate_probe(0, 7, 1, 0, median_at(5)).has_value());
  EXPECT_TRUE(lb.evaluate_probe(0, 8, 1, 0, median_at(5)).has_value());
}

TEST(LoadBalancer, SelfProbeIgnored) {
  LoadBalancer lb;
  EXPECT_FALSE(lb.evaluate_probe(3, 1000, 3, 0, median_at(5)).has_value());
}

TEST(LoadBalancer, NoMedianNoMove) {
  LoadBalancer lb;
  auto no_median = [](int) -> std::optional<Key> { return std::nullopt; };
  EXPECT_FALSE(lb.evaluate_probe(0, 1000, 1, 1, no_median).has_value());
}

TEST(LoadBalancer, MedianQueriedForHeavyNode) {
  LoadBalancer lb;
  int queried = -1;
  auto spy = [&queried](int heavy) -> std::optional<Key> {
    queried = heavy;
    return Key::from_uint64(9);
  };
  lb.evaluate_probe(7, 5, 2, 500, spy);
  EXPECT_EQ(queried, 2);
}

TEST(LoadBalancer, MovesTriggeredCountsAppliedMovesOnly) {
  obs::Registry reg;
  LoadBalancer lb;
  lb.bind_metrics(&reg);
  // Two positive decisions, but the caller only applies one of them.
  ASSERT_TRUE(lb.evaluate_probe(0, 500, 1, 100, median_at(5)).has_value());
  ASSERT_TRUE(lb.evaluate_probe(0, 500, 1, 100, median_at(5)).has_value());
  EXPECT_FALSE(lb.evaluate_probe(0, 100, 1, 100, median_at(5)).has_value());
  lb.count_applied_move();
  EXPECT_EQ(reg.counter("dht.load_balancer.probes").value(), 3);
  EXPECT_EQ(reg.counter("dht.load_balancer.decisions").value(), 2);
  EXPECT_EQ(reg.counter("dht.load_balancer.moves_triggered").value(), 1);
}

TEST(LoadBalancer, ThresholdBelowTwoThrows) {
  EXPECT_THROW(LoadBalancer(LoadBalanceConfig{1.5, 4}), PreconditionError);
}

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, TriggersExactlyAboveT) {
  const double t = GetParam();
  LoadBalancer lb(LoadBalanceConfig{t, 2});
  const std::int64_t light = 100;
  const auto heavy_at = static_cast<std::int64_t>(t * 100);
  EXPECT_FALSE(lb.evaluate_probe(0, heavy_at, 1, light, median_at(1)).has_value());
  EXPECT_TRUE(lb.evaluate_probe(0, heavy_at + 1, 1, light, median_at(1)).has_value());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 8.0));

}  // namespace
}  // namespace d2::dht
