#include "dht/router.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dht/consistent_hash.h"

namespace d2::dht {
namespace {

Ring random_ring(int n, Rng& rng) {
  Ring r;
  for (int i = 0; i < n; ++i) {
    Key id = random_node_id(rng);
    while (r.id_taken(id)) id = random_node_id(rng);
    r.add(i, id);
  }
  return r;
}

TEST(Router, LookupFindsOwner) {
  Rng rng(1);
  Ring ring = random_ring(64, rng);
  Router router(ring, rng);
  for (int i = 0; i < 200; ++i) {
    const Key k = Key::random(rng);
    const int src = static_cast<int>(rng.next_below(64));
    const auto res = router.lookup(src, k);
    EXPECT_EQ(res.owner, ring.owner(k));
  }
}

TEST(Router, LookupFromOwnerIsFree) {
  Rng rng(2);
  Ring ring = random_ring(32, rng);
  Router router(ring, rng);
  const Key k = Key::random(rng);
  const int owner = ring.owner(k);
  const auto res = router.lookup(owner, k);
  EXPECT_EQ(res.hops, 0);
  EXPECT_EQ(res.messages, 0);
  EXPECT_EQ(res.path, std::vector<int>{owner});
}

TEST(Router, MessagesAreHopsPlusReply) {
  Rng rng(3);
  Ring ring = random_ring(64, rng);
  Router router(ring, rng);
  for (int i = 0; i < 50; ++i) {
    const Key k = Key::random(rng);
    const auto res = router.lookup(0, k);
    if (res.hops > 0) {
      EXPECT_EQ(res.messages, res.hops + 1);
      EXPECT_EQ(res.path.size(), static_cast<std::size_t>(res.hops) + 1);
    }
  }
}

TEST(Router, PathStartsAtSourceEndsAtOwner) {
  Rng rng(4);
  Ring ring = random_ring(100, rng);
  Router router(ring, rng);
  const Key k = Key::random(rng);
  const auto res = router.lookup(5, k);
  EXPECT_EQ(res.path.front(), 5);
  EXPECT_EQ(res.path.back(), res.owner);
}

TEST(Router, SingleNodeRing) {
  Rng rng(5);
  Ring ring;
  ring.add(0, Key::from_uint64(42));
  Router router(ring, rng);
  const auto res = router.lookup(0, Key::random(rng));
  EXPECT_EQ(res.owner, 0);
  EXPECT_EQ(res.hops, 0);
}

TEST(Router, HopsLogarithmicInSize) {
  // Mercury/Symphony-style harmonic links give O(log^2 n / k) = O(log n)
  // expected hops with k = log n links. Check the average stays well below
  // linear and grows slowly.
  Rng rng(6);
  auto mean_hops = [&rng](int n) {
    Ring ring = random_ring(n, rng);
    Router router(ring, rng);
    double total = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
      const Key k = Key::random(rng);
      const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      total += router.lookup(src, k).hops;
    }
    return total / trials;
  };
  const double h200 = mean_hops(200);
  const double h1000 = mean_hops(1000);
  EXPECT_LT(h200, 20.0);
  EXPECT_LT(h1000, 30.0);
  EXPECT_LT(h1000, h200 * 3.0);  // far sublinear growth
}

TEST(Router, WorksOnSkewedIdDistribution) {
  // Node IDs clustered in a tiny fraction of the key space (what happens
  // after D2's load balancing on skewed keys): routing must still work
  // because links are sampled by rank, not key distance.
  Rng rng(7);
  Ring ring;
  for (int i = 0; i < 128; ++i) {
    ring.add(i, Key::from_uint64(1000 + static_cast<std::uint64_t>(i) * 10));
  }
  Router router(ring, rng);
  for (int i = 0; i < 100; ++i) {
    const Key k = Key::random(rng);
    const auto res = router.lookup(static_cast<int>(rng.next_below(128)), k);
    EXPECT_EQ(res.owner, ring.owner(k));
    EXPECT_LE(res.hops, 64);
  }
}

TEST(Router, RebuildAfterRingChange) {
  Rng rng(8);
  Ring ring = random_ring(32, rng);
  Router router(ring, rng);
  ring.move(3, Key::from_uint64(77));
  router.rebuild(rng);
  const Key k = Key::from_uint64(77);
  EXPECT_EQ(router.lookup(0, k).owner, ring.owner(k));
}

TEST(Router, LinksIncludeSuccessor) {
  Rng rng(9);
  Ring ring = random_ring(32, rng);
  Router router(ring, rng);
  for (int n = 0; n < 32; ++n) {
    const auto& links = router.links_of(n);
    EXPECT_EQ(links.front(), ring.successor(n));
    EXPECT_GE(links.size(), 2u);
  }
}

class RouterSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RouterSizeSweep, AllLookupsTerminateCorrectly) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  Ring ring = random_ring(n, rng);
  Router router(ring, rng);
  for (int i = 0; i < 100; ++i) {
    const Key k = Key::random(rng);
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto res = router.lookup(src, k);
    EXPECT_EQ(res.owner, ring.owner(k));
    EXPECT_LE(res.hops, 2 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouterSizeSweep,
                         ::testing::Values(2, 3, 8, 50, 200, 500));

}  // namespace
}  // namespace d2::dht
