// Property tests for the GF(2^8) Reed–Solomon codec (store/ec.h).

#include "store/ec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"

namespace d2::store {
namespace {

std::vector<std::uint8_t> random_block(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> block(size);
  for (std::uint8_t& b : block) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return block;
}

// --- GF(2^8) arithmetic ---

TEST(Gf256, TableMultiplyMatchesBitwiseReference) {
  // Differential check of the log/exp-table multiply against the naive
  // carry-less multiply + polynomial reduction, over the whole field.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                gf256::mul_ref(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, FieldAxioms) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(ua, gf256::inv(ua)), 1) << "a=" << a;
    EXPECT_EQ(gf256::mul(ua, 1), ua);
    EXPECT_EQ(gf256::mul(ua, 0), 0);
  }
  // Distributivity on a sample grid (XOR is field addition).
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf256::mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf256::mul(a, b) ^ gf256::mul(a, c));
  }
}

// --- codec round trips ---

TEST(ErasureCodec, SystematicEncodeKeepsDataVerbatim) {
  Rng rng(11);
  const ErasureCodec codec(6, 3);
  const std::vector<std::uint8_t> block = random_block(rng, 6 * 37);
  const auto frags = codec.encode(block);
  ASSERT_EQ(frags.size(), 9u);
  const Bytes frag_len = codec.fragment_bytes(static_cast<Bytes>(block.size()));
  EXPECT_EQ(frag_len, 37);
  for (int i = 0; i < 6; ++i) {
    for (Bytes b = 0; b < frag_len; ++b) {
      EXPECT_EQ(frags[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)],
                block[static_cast<std::size_t>(i * frag_len + b)]);
    }
  }
}

// Exhaustively drop every m-subset of fragments and decode from the rest.
void check_all_erasure_patterns(int k, int m, std::size_t block_size,
                                std::uint64_t seed) {
  Rng rng(seed);
  const ErasureCodec codec(k, m);
  const int n = k + m;
  const std::vector<std::uint8_t> block = random_block(rng, block_size);
  const auto frags = codec.encode(block);
  // Enumerate all k-subsets of [0, n) as survivor sets via bitmask.
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<int> present;
    std::vector<const std::uint8_t*> ptrs;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        present.push_back(i);
        ptrs.push_back(frags[static_cast<std::size_t>(i)].data());
      }
    }
    const std::vector<std::uint8_t> decoded =
        codec.decode(present, ptrs, static_cast<Bytes>(block.size()));
    ASSERT_EQ(decoded, block) << "k=" << k << " m=" << m << " mask=" << mask;
  }
}

TEST(ErasureCodec, DecodesFromAnyKFragments) {
  check_all_erasure_patterns(6, 3, 6 * 64, 1);     // the rs-6-3 default
  check_all_erasure_patterns(3, 2, 100, 2);        // unaligned block size
  check_all_erasure_patterns(1, 2, 33, 3);         // replication as RS(1, 2)
  check_all_erasure_patterns(4, 4, 4 * 16, 4);     // m == k
  check_all_erasure_patterns(5, 1, 5 * 8 + 3, 5);  // single parity
}

TEST(ErasureCodec, ReconstructRebuildsEveryFragmentFromAnySurvivors) {
  Rng rng(21);
  const ErasureCodec codec(4, 3);
  const std::vector<std::uint8_t> block = random_block(rng, 4 * 23 + 5);
  const auto frags = codec.encode(block);
  const Bytes frag_len = codec.fragment_bytes(static_cast<Bytes>(block.size()));
  // For 200 random (survivor set, target) pairs, rebuild the target
  // fragment from k survivors and compare byte-for-byte.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> order(7);
    for (int i = 0; i < 7; ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = 6; i > 0; --i) {
      const auto j = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(i + 1)));
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }
    std::vector<int> present(order.begin(), order.begin() + 4);
    std::sort(present.begin(), present.end());
    std::vector<const std::uint8_t*> ptrs;
    for (int idx : present) {
      ptrs.push_back(frags[static_cast<std::size_t>(idx)].data());
    }
    const int target = static_cast<int>(rng.next_below(7));
    const std::vector<std::uint8_t> rebuilt =
        codec.reconstruct(present, ptrs, frag_len, target);
    ASSERT_EQ(rebuilt, frags[static_cast<std::size_t>(target)])
        << "target=" << target;
  }
}

TEST(ErasureCodec, CorruptedFragmentChangesDecode) {
  // Sanity: the decode actually depends on every source byte (i.e. it is
  // not accounting theatre) — flipping one byte of one survivor corrupts
  // the output.
  Rng rng(31);
  const ErasureCodec codec(3, 2);
  const std::vector<std::uint8_t> block = random_block(rng, 90);
  auto frags = codec.encode(block);
  const std::vector<int> present = {1, 3, 4};
  frags[3][7] ^= 0x40;
  const std::vector<std::uint8_t> decoded = codec.decode(
      present,
      {frags[1].data(), frags[3].data(), frags[4].data()},
      static_cast<Bytes>(block.size()));
  EXPECT_NE(decoded, block);
}

TEST(ErasureCodec, TinyAndPaddedBlocks) {
  // Blocks smaller than k fragments (zero padding) round-trip too.
  Rng rng(41);
  const ErasureCodec codec(6, 3);
  for (const std::size_t size : {1u, 5u, 6u, 7u, 64u}) {
    const std::vector<std::uint8_t> block = random_block(rng, size);
    const auto frags = codec.encode(block);
    std::vector<int> present;
    std::vector<const std::uint8_t*> ptrs;
    for (int i = 3; i < 9; ++i) {  // drop all of 0, 1, 2: parity-heavy set
      present.push_back(i);
      ptrs.push_back(frags[static_cast<std::size_t>(i)].data());
    }
    EXPECT_EQ(codec.decode(present, ptrs, static_cast<Bytes>(size)), block)
        << "size=" << size;
  }
}

// --- SIMD kernel differentials (DESIGN.md §11) ---

TEST(Gf256, MulAccKernelsMatchScalarExhaustively) {
  // Every kernel runnable on this CPU vs the scalar reference: all 256
  // coefficients crossed with lengths around the 32-byte vector width
  // (tail handling) plus a long unaligned-ish run.
  const auto kernels = gf256::mul_acc_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front().name, "scalar");
  Rng rng(97);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{31},
                                std::size_t{32}, std::size_t{33},
                                std::size_t{64}, std::size_t{95},
                                std::size_t{1000}}) {
    const std::vector<std::uint8_t> src = random_block(rng, len);
    const std::vector<std::uint8_t> base = random_block(rng, len);
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<std::uint8_t>(c);
      std::vector<std::uint8_t> want = base;
      gf256::mul_acc_scalar(want.data(), src.data(), coeff,
                            static_cast<Bytes>(len));
      for (const auto& k : kernels) {
        std::vector<std::uint8_t> got = base;
        k.fn(got.data(), src.data(), coeff, static_cast<Bytes>(len));
        ASSERT_EQ(got, want) << "kernel=" << k.name << " coeff=" << c
                             << " len=" << len;
      }
    }
  }
}

TEST(Gf256, KernelPinningRoundTrips) {
  const char* initial = gf256::mul_acc_kernel();
  for (const auto& k : gf256::mul_acc_kernels()) {
    gf256::use_mul_acc_kernel(k.name);
    EXPECT_STREQ(gf256::mul_acc_kernel(), k.name);
  }
  gf256::use_mul_acc_kernel("auto");
  EXPECT_STREQ(gf256::mul_acc_kernel(), initial);
  EXPECT_THROW(gf256::use_mul_acc_kernel("no-such-kernel"),
               PreconditionError);
}

TEST(ErasureCodec, AllErasurePatternsIdenticalAcrossKernels) {
  // The satellite guarantee behind `--scheduler`-style gating for EC:
  // encode and every-k-subset decode are byte-identical no matter which
  // mul_acc kernel is live. k=4, m=3 keeps the subset count (35) small
  // enough to cross with every kernel pair.
  Rng rng(61);
  const int k = 4;
  const int m = 3;
  const int n = k + m;
  const ErasureCodec codec(k, m);
  const std::vector<std::uint8_t> block = random_block(rng, 4 * 33 + 2);

  std::vector<std::vector<std::vector<std::uint8_t>>> encodes;
  const auto kernels = gf256::mul_acc_kernels();
  for (const auto& kern : kernels) {
    gf256::use_mul_acc_kernel(kern.name);
    encodes.push_back(codec.encode(block));
  }
  for (std::size_t i = 1; i < encodes.size(); ++i) {
    ASSERT_EQ(encodes[i], encodes[0])
        << "encode differs: " << kernels[i].name << " vs scalar";
  }

  const auto& frags = encodes[0];
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<int> present;
    std::vector<const std::uint8_t*> ptrs;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        present.push_back(i);
        ptrs.push_back(frags[static_cast<std::size_t>(i)].data());
      }
    }
    for (const auto& kern : kernels) {
      gf256::use_mul_acc_kernel(kern.name);
      ASSERT_EQ(codec.decode(present, ptrs, static_cast<Bytes>(block.size())),
                block)
          << "kernel=" << kern.name << " mask=" << mask;
    }
  }
  gf256::use_mul_acc_kernel("auto");
}

TEST(ErasureCodec, RejectsBadGeometry) {
  EXPECT_THROW(ErasureCodec(0, 3), PreconditionError);
  EXPECT_THROW(ErasureCodec(200, 100), PreconditionError);
  const ErasureCodec codec(4, 2);
  const std::vector<std::uint8_t> frag(8, 0);
  EXPECT_THROW(
      codec.decode({0, 1, 2}, {frag.data(), frag.data(), frag.data()}, 32),
      PreconditionError);
}

}  // namespace
}  // namespace d2::store
