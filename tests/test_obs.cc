#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "obs/tracer.h"

namespace d2::obs {
namespace {

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry r;
  Counter& a = r.counter("store.lookup_cache.hits");
  Counter& b = r.counter("store.lookup_cache.hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5);
  EXPECT_EQ(r.instrument_count(), 1u);
}

TEST(Registry, CrossKindNameCollisionThrows) {
  Registry r;
  r.counter("dht.router.hops");
  EXPECT_THROW(r.gauge("dht.router.hops"), PreconditionError);
  EXPECT_THROW(r.histogram("dht.router.hops"), PreconditionError);
  r.histogram("sim.latency");
  EXPECT_THROW(r.counter("sim.latency"), PreconditionError);
}

TEST(Registry, NameValidation) {
  Registry r;
  EXPECT_THROW(r.counter(""), PreconditionError);
  EXPECT_THROW(r.counter("Bad.Name"), PreconditionError);
  EXPECT_THROW(r.counter("has space"), PreconditionError);
  EXPECT_NO_THROW(r.counter("layer.component_2.metric"));
}

TEST(Registry, FindDoesNotCreate) {
  Registry r;
  EXPECT_EQ(r.find_counter("a.b"), nullptr);
  EXPECT_EQ(r.find_gauge("a.b"), nullptr);
  EXPECT_EQ(r.find_histogram("a.b"), nullptr);
  EXPECT_EQ(r.instrument_count(), 0u);
  r.counter("a.b").add(7);
  ASSERT_NE(r.find_counter("a.b"), nullptr);
  EXPECT_EQ(r.find_counter("a.b")->value(), 7);
}

TEST(Registry, ResetZeroesButKeepsIdentity) {
  Registry r;
  Counter& c = r.counter("x.c");
  Gauge& g = r.gauge("x.g");
  Histogram& h = r.histogram("x.h");
  c.add(10);
  g.set(2.5);
  h.record(1);
  r.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Bound pointers stay valid and usable after reset.
  EXPECT_EQ(&c, &r.counter("x.c"));
  c.add(1);
  EXPECT_EQ(r.find_counter("x.c")->value(), 1);
  EXPECT_EQ(r.instrument_count(), 3u);
}

TEST(Registry, HistogramPercentileExport) {
  Registry r;
  Histogram& h = r.histogram("dht.router.hops");
  for (int v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"dht.router.hops\":{\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":50"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":90"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":99"), std::string::npos);
}

TEST(Registry, JsonShape) {
  Registry r;
  r.counter("b.count").add(2);
  r.counter("a.count").add(1);
  r.gauge("a.gauge").set(0.5);
  r.histogram("a.hist");  // empty: count only, no reductions
  const std::string json = r.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"a.gauge\":0.5},"
            "\"histograms\":{\"a.hist\":{\"count\":0}}}");
}

TEST(Registry, EmptyRegistryJson) {
  Registry r;
  EXPECT_EQ(r.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Tracer, RecordsInOrder) {
  Tracer t(8);
  t.record(10, EventType::kNodeDown, 3);
  t.record(20, EventType::kNodeUp, 3);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (Event{10, EventType::kNodeDown, 3, 0}));
  EXPECT_EQ(events[1], (Event{20, EventType::kNodeUp, 3, 0}));
  EXPECT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingBufferWraparoundKeepsNewest) {
  Tracer t(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    t.record(i, EventType::kCacheHit, i);
  }
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 6..9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time, static_cast<SimTime>(6 + i));
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(6 + i));
  }
}

TEST(Tracer, ClearResets) {
  Tracer t(2);
  t.record(1, EventType::kLbMove, 1, 2);
  t.record(2, EventType::kLbMove, 3, 4);
  t.record(3, EventType::kLbMove, 5, 6);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.record(4, EventType::kReplicaFetch, 7, 8);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Tracer, JsonLinesShape) {
  Tracer t(8);
  t.record(100, EventType::kLbMove, 4, 9);
  t.record(200, EventType::kBlockExpired, 4096);
  EXPECT_EQ(t.to_json_lines(),
            "{\"t\":100,\"type\":\"lb_move\",\"a\":4,\"b\":9}\n"
            "{\"t\":200,\"type\":\"block_expired\",\"a\":4096,\"b\":0}\n");
}

TEST(Tracer, EventTypeNamesAreStable) {
  EXPECT_STREQ(event_type_name(EventType::kLbMove), "lb_move");
  EXPECT_STREQ(event_type_name(EventType::kReplicaFetch), "replica_fetch");
  EXPECT_STREQ(event_type_name(EventType::kNodeDown), "node_down");
  EXPECT_STREQ(event_type_name(EventType::kNodeUp), "node_up");
  EXPECT_STREQ(event_type_name(EventType::kCacheHit), "cache_hit");
  EXPECT_STREQ(event_type_name(EventType::kCacheMiss), "cache_miss");
  EXPECT_STREQ(event_type_name(EventType::kBlockExpired), "block_expired");
}

TEST(Tracer, ZeroCapacityRejected) {
  EXPECT_THROW(Tracer(0), PreconditionError);
}

}  // namespace
}  // namespace d2::obs
