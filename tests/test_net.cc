#include <gtest/gtest.h>

#include "net/latency.h"
#include "net/tcp_model.h"

namespace d2::net {
namespace {

TEST(LatencyModel, SymmetricAndPositive) {
  Rng rng(1);
  LatencyModel m(50, rng);
  for (int a = 0; a < 50; ++a) {
    for (int b = 0; b < 50; ++b) {
      EXPECT_EQ(m.rtt(a, b), m.rtt(b, a));
      EXPECT_GT(m.rtt(a, b), 0);
    }
  }
}

TEST(LatencyModel, LoopbackIsSmall) {
  Rng rng(2);
  LatencyModel m(10, rng);
  EXPECT_EQ(m.rtt(3, 3), milliseconds(1));
}

TEST(LatencyModel, MeanNearTarget) {
  Rng rng(3);
  LatencyModel m(200, rng, 90.0);
  Rng sample(4);
  const double mean = m.measured_mean_rtt_ms(sample);
  EXPECT_GT(mean, 50.0);
  EXPECT_LT(mean, 160.0);
}

TEST(LatencyModel, HasHighLatencyTail) {
  // The paper notes inter-node latencies varying by several 100 ms.
  Rng rng(5);
  LatencyModel m(300, rng, 90.0);
  SimTime max_rtt = 0;
  SimTime min_rtt = kSimTimeNever;
  Rng sample(6);
  for (int i = 0; i < 5000; ++i) {
    const int a = static_cast<int>(sample.next_below(300));
    const int b = static_cast<int>(sample.next_below(300));
    if (a != b) {
      max_rtt = std::max(max_rtt, m.rtt(a, b));
      min_rtt = std::min(min_rtt, m.rtt(a, b));
    }
  }
  EXPECT_GT(max_rtt - min_rtt, milliseconds(200));
}

TEST(TcpModel, ColdWindowNeedsTwoRttsFor8KB) {
  // Paper footnote: with a 2-packet initial window, an 8 KB block takes at
  // least 2 RTTs.
  TcpModel tcp;
  EXPECT_EQ(tcp.transfer_rtts(0, 1, 0, kB(8)), 2);
}

TEST(TcpModel, WindowGrowsAcrossTransfers) {
  TcpModel tcp;
  const int first = tcp.transfer_rtts(0, 1, 0, kB(64));
  tcp.touch(0, 1, milliseconds(100));
  const int second = tcp.transfer_rtts(0, 1, milliseconds(200), kB(64));
  EXPECT_LT(second, first);
}

TEST(TcpModel, IdleResetsToSlowStart) {
  TcpModel tcp;  // rto = 1 s
  tcp.transfer_rtts(0, 1, 0, kB(64));
  tcp.touch(0, 1, milliseconds(100));
  EXPECT_GT(tcp.current_cwnd(0, 1, milliseconds(200)), tcp.config().initial_cwnd_pkts);
  // After > RTO idle, the window collapses.
  EXPECT_EQ(tcp.current_cwnd(0, 1, seconds(5)), tcp.config().initial_cwnd_pkts);
  EXPECT_EQ(tcp.transfer_rtts(0, 1, seconds(5), kB(8)), 2);
}

TEST(TcpModel, ConnectionsAreIndependent) {
  TcpModel tcp;
  tcp.transfer_rtts(0, 1, 0, kB(64));  // warm 0->1
  // 0->2 is still cold.
  EXPECT_EQ(tcp.transfer_rtts(0, 2, milliseconds(10), kB(8)), 2);
  // and direction matters: 1->0 is distinct from 0->1.
  EXPECT_EQ(tcp.current_cwnd(1, 0, milliseconds(10)),
            tcp.config().initial_cwnd_pkts);
}

TEST(TcpModel, ColdStartCounter) {
  TcpModel tcp;
  tcp.transfer_rtts(0, 1, 0, kB(8));                    // cold
  tcp.touch(0, 1, milliseconds(50));
  tcp.transfer_rtts(0, 1, milliseconds(100), kB(8));    // warm
  tcp.transfer_rtts(0, 1, seconds(10), kB(8));          // idle reset: cold
  EXPECT_EQ(tcp.transfers(), 3u);
  EXPECT_EQ(tcp.cold_starts(), 2u);
}

TEST(TcpModel, RttCountMatchesDoubling) {
  TcpModel tcp;
  // 2+4+8+16 = 30 packets in 4 RTTs; 30*1460 = 43800 bytes.
  EXPECT_EQ(tcp.transfer_rtts(0, 1, 0, 43800), 4);
  // One byte more needs a fifth RTT.
  TcpModel tcp2;
  EXPECT_EQ(tcp2.transfer_rtts(0, 1, 0, 43801), 5);
}

TEST(TcpModel, MaxWindowCapsGrowth) {
  TcpConfig cfg;
  cfg.max_cwnd_pkts = 4;
  TcpModel tcp(cfg);
  // 2+4+4+4 = 14 packets in 4 RTTs.
  EXPECT_EQ(tcp.transfer_rtts(0, 1, 0, 14 * 1460), 4);
}

TEST(TcpModel, SingleSmallPacketOneRtt) {
  TcpModel tcp;
  EXPECT_EQ(tcp.transfer_rtts(0, 1, 0, 100), 1);
}

TEST(TcpModel, PartialFinalWindowGrowsByAckedPacketsOnly) {
  // Regression: slow start grows the window one packet per ACK, so a
  // final RTT that clocks out a single packet must leave cwnd one larger
  // — not doubled as if a full window had been acknowledged.
  TcpModel tcp;
  // 3 packets: the first RTT sends 2 (cwnd -> 4), the second sends the
  // final 1 on a cwnd of 4. Afterwards cwnd must be 4 + 1 = 5, not 8.
  EXPECT_EQ(tcp.transfer_rtts(0, 1, 0, 3 * 1460), 2);
  EXPECT_EQ(tcp.current_cwnd(0, 1, milliseconds(10)), 5);
  // Follow-on transfer resumes from the corrected window: 5 + 10 + 1
  // packets in 3 RTTs, leaving cwnd 20 + 1 = 21.
  EXPECT_EQ(tcp.transfer_rtts(0, 1, milliseconds(10), 16 * 1460), 3);
  EXPECT_EQ(tcp.current_cwnd(0, 1, milliseconds(20)), 21);
}

class TcpSizeSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(TcpSizeSweep, RttsMonotonicInSize) {
  TcpModel a, b;
  const int r1 = a.transfer_rtts(0, 1, 0, GetParam());
  const int r2 = b.transfer_rtts(0, 1, 0, GetParam() * 2);
  EXPECT_GE(r2, r1);
  EXPECT_GE(r1, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSizeSweep,
                         ::testing::Values(512, kB(4), kB(8), kB(32), kB(128),
                                           mB(1)));

}  // namespace
}  // namespace d2::net
