#include "dht/consistent_hash.h"

#include <gtest/gtest.h>

#include <set>

namespace d2::dht {
namespace {

TEST(ConsistentHash, Deterministic) {
  EXPECT_EQ(hashed_key("a/b/c"), hashed_key("a/b/c"));
}

TEST(ConsistentHash, DistinctNamesDistinctKeys) {
  std::set<Key> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.insert(hashed_key("file" + std::to_string(i)));
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(ConsistentHash, KeysUniformOverRing) {
  // Bucket ring positions of hashed keys into deciles; each should hold
  // roughly 10%.
  std::vector<int> buckets(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double pos = hashed_key("path/to/file" + std::to_string(i) + "/blk")
                           .ring_position();
    ++buckets[std::min(9, static_cast<int>(pos * 10))];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b] / static_cast<double>(n), 0.1, 0.02) << "decile " << b;
  }
}

TEST(ConsistentHash, SimilarNamesUncorrelated) {
  // Adjacent block numbers of the same file must land far apart — that is
  // precisely the fragmentation D2 removes.
  const Key a = hashed_key("vol|/home/u1/f|b|0|1");
  const Key b = hashed_key("vol|/home/u1/f|b|1|1");
  const double gap = std::abs(a.ring_position() - b.ring_position());
  EXPECT_GT(std::min(gap, 1.0 - gap), 1e-4);
}

TEST(ConsistentHash, FullKeyWidthUsed) {
  // All 64 bytes should vary across names, not just the first 20.
  const Key a = hashed_key("x");
  const Key b = hashed_key("y");
  bool tail_differs = false;
  for (std::size_t i = 20; i < Key::kBytes; ++i) {
    if (a.byte(i) != b.byte(i)) tail_differs = true;
  }
  EXPECT_TRUE(tail_differs);
}

TEST(ConsistentHash, RandomNodeIdsDistinct) {
  Rng rng(9);
  std::set<Key> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(random_node_id(rng));
  EXPECT_EQ(ids.size(), 1000u);
}

}  // namespace
}  // namespace d2::dht
