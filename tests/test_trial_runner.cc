// Tests for the parallel trial runner: seed derivation, scheduling,
// error propagation, and the determinism guarantee (jobs=1 == jobs=N),
// including the thread-safety of the shared obs::Registry the trials
// report into.
#include "core/trial_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/availability.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace d2::core {
namespace {

TEST(DeriveTrialSeed, PureAndStable) {
  EXPECT_EQ(derive_trial_seed(1, 0), derive_trial_seed(1, 0));
  EXPECT_EQ(derive_trial_seed(42, 7), derive_trial_seed(42, 7));
}

TEST(DeriveTrialSeed, DistinctAcrossTrialsAndBases) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ull, 1ull, 2ull, 42ull}) {
    for (std::uint64_t trial = 0; trial < 64; ++trial) {
      seeds.insert(derive_trial_seed(base, trial));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);  // no collisions in a small grid
}

TEST(DeriveTrialSeed, WeakBasesAreScrambled) {
  // base 0 / trial 0 must not map to something structured like 0.
  EXPECT_NE(derive_trial_seed(0, 0), 0u);
  EXPECT_NE(derive_trial_seed(0, 1), 1u);
}

TEST(TrialRunner, JobsDefaultsToAtLeastOne) {
  EXPECT_GE(TrialRunner(0).jobs(), 1);
  EXPECT_GE(TrialRunner(-4).jobs(), 1);
  EXPECT_EQ(TrialRunner(5).jobs(), 5);
}

TEST(TrialRunner, RunsEveryTrialExactlyOnce) {
  const int count = 200;
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h = 0;
  TrialRunner(8).run(count, [&](int t) { hits[t].fetch_add(1); });
  for (int t = 0; t < count; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(TrialRunner, ZeroOrNegativeCountIsNoop) {
  int calls = 0;
  TrialRunner(4).run(0, [&](int) { ++calls; });
  TrialRunner(4).run(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TrialRunner, MapReturnsResultsInTrialOrder) {
  const std::vector<int> out =
      TrialRunner(8).map<int>(64, [](int t) { return t * t; });
  ASSERT_EQ(out.size(), 64u);
  for (int t = 0; t < 64; ++t) EXPECT_EQ(out[t], t * t);
}

TEST(TrialRunner, SerialAndParallelProduceIdenticalResults) {
  // Each trial runs a private deterministic computation from its derived
  // seed; the collected vectors must be bit-identical at any job count.
  const auto work = [](int t) {
    Rng rng(derive_trial_seed(99, static_cast<std::uint64_t>(t)));
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) acc ^= rng.next_u64() + i;
    return acc;
  };
  const auto serial = TrialRunner(1).map<std::uint64_t>(32, work);
  const auto parallel = TrialRunner(8).map<std::uint64_t>(32, work);
  EXPECT_EQ(serial, parallel);
}

TEST(TrialRunner, LowestFailingTrialPropagates) {
  try {
    TrialRunner(8).run(32, [](int t) {
      if (t >= 5) throw std::runtime_error("trial " + std::to_string(t));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 5");
  }
}

TEST(TrialRunner, SharedRegistryCountersSumExactly) {
  obs::Registry serial_reg, parallel_reg;
  const auto work = [](obs::Registry& reg) {
    return [&reg](int t) {
      obs::Counter& c = reg.counter("trials.work");
      obs::Histogram& h = reg.histogram("trials.sample");
      for (int i = 0; i < 500; ++i) {
        c.add(1);
        h.record(static_cast<double>(t * 500 + i));
      }
    };
  };
  TrialRunner(1).run(16, work(serial_reg));
  TrialRunner(8).run(16, work(parallel_reg));
  EXPECT_EQ(parallel_reg.counter("trials.work").value(), 16 * 500);
  EXPECT_EQ(parallel_reg.counter("trials.work").value(),
            serial_reg.counter("trials.work").value());
  // The histogram's merged reduction sorts samples, so every statistic is
  // identical no matter which thread recorded which sample.
  EXPECT_EQ(parallel_reg.histogram("trials.sample").count(),
            serial_reg.histogram("trials.sample").count());
  EXPECT_EQ(parallel_reg.histogram("trials.sample").percentile(50),
            serial_reg.histogram("trials.sample").percentile(50));
  EXPECT_EQ(parallel_reg.histogram("trials.sample").merged().mean(),
            serial_reg.histogram("trials.sample").merged().mean());
}

TEST(TrialRunner, PerTrialTracersMergeDeterministically) {
  const auto run_with_jobs = [](int jobs) {
    std::vector<obs::Tracer> tracers(8);
    TrialRunner(jobs).run(8, [&](int t) {
      for (int i = 0; i < 5; ++i) {
        tracers[static_cast<std::size_t>(t)].record(
            seconds(t * 10 + i), obs::EventType::kLbMove, t, i);
      }
    });
    obs::Tracer merged;
    for (const obs::Tracer& tr : tracers) merged.append(tr);
    return merged.events();
  };
  EXPECT_EQ(run_with_jobs(1), run_with_jobs(4));
}

TEST(TrialRunner, AvailabilityTrialsMatchSerialRun) {
  // End-to-end determinism: a miniature multi-seed availability sweep
  // sharing one registry must give identical per-trial results whether
  // the trials run inline or across threads.
  const auto sweep = [](int jobs, obs::Registry& reg) {
    return TrialRunner(jobs).map<AvailabilityResult>(3, [&reg](int t) {
      AvailabilityParams p;
      p.system.node_count = 16;
      p.system.replicas = 3;
      p.system.scheme = fs::KeyScheme::kD2;
      p.system.active_load_balance = true;
      p.system.seed = derive_trial_seed(7, static_cast<std::uint64_t>(t));
      p.workload.users = 4;
      p.workload.days = 1;
      p.workload.target_active_bytes = mB(8);
      p.workload.accesses_per_user_day = 80;
      p.workload.seed = 13;
      p.failure.node_count = p.system.node_count;
      p.failure.duration = days(2);
      p.failure.mttf_hours = 40;
      p.failure.mttr_hours = 6;
      p.warmup = hours(6);
      p.metrics = &reg;
      return AvailabilityExperiment(p).run();
    });
  };
  obs::Registry serial_reg, parallel_reg;
  const auto serial = sweep(1, serial_reg);
  const auto parallel = sweep(4, parallel_reg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tasks, parallel[i].tasks);
    EXPECT_EQ(serial[i].failed_tasks, parallel[i].failed_tasks);
    EXPECT_EQ(serial[i].mean_nodes_per_task, parallel[i].mean_nodes_per_task);
    EXPECT_EQ(serial[i].mean_blocks_per_task, parallel[i].mean_blocks_per_task);
  }
  // The shared counters are commutative sums, so they agree too.
  EXPECT_EQ(serial_reg.counter("sim.events_processed").value(),
            parallel_reg.counter("sim.events_processed").value());
}

}  // namespace
}  // namespace d2::core
