#include "common/key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "common/key_simd.h"
#include "common/rng.h"

namespace d2 {
namespace {

TEST(Key, DefaultIsZero) {
  Key k;
  EXPECT_EQ(k, Key::min());
  EXPECT_EQ(k.low64(), 0u);
}

TEST(Key, FromUint64RoundTrips) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{255}, std::uint64_t{65536}, UINT64_MAX}) {
    EXPECT_EQ(Key::from_uint64(v).low64(), v);
  }
}

TEST(Key, ComparisonMatchesInteger) {
  EXPECT_LT(Key::from_uint64(1), Key::from_uint64(2));
  EXPECT_LT(Key::from_uint64(255), Key::from_uint64(256));
  EXPECT_GT(Key::max(), Key::from_uint64(UINT64_MAX));
  EXPECT_EQ(Key::from_uint64(42), Key::from_uint64(42));
}

TEST(Key, AdditionSmallValues) {
  EXPECT_EQ(Key::from_uint64(3) + Key::from_uint64(4), Key::from_uint64(7));
}

TEST(Key, AdditionCarriesAcrossBytes) {
  EXPECT_EQ(Key::from_uint64(255) + Key::from_uint64(1), Key::from_uint64(256));
  // Carry across the 8-byte boundary of low64.
  Key sum = Key::from_uint64(UINT64_MAX) + Key::from_uint64(1);
  EXPECT_EQ(sum.low64(), 0u);
  EXPECT_EQ(sum.byte(Key::kBytes - 9), 1);
}

TEST(Key, SubtractionInverts) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Key a = Key::random(rng);
    Key b = Key::random(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(Key, SubtractionWrapsModulo) {
  // 0 - 1 == MAX.
  EXPECT_EQ(Key::min() - Key::from_uint64(1), Key::max());
}

TEST(Key, MaxPlusOneWrapsToZero) {
  EXPECT_EQ(Key::max() + Key::from_uint64(1), Key::min());
  EXPECT_EQ(Key::max().next(), Key::min());
}

TEST(Key, HalfShiftsRight) {
  EXPECT_EQ(Key::from_uint64(8).half(), Key::from_uint64(4));
  EXPECT_EQ(Key::from_uint64(9).half(), Key::from_uint64(4));
  // Shifting max gives 0x7f top byte.
  EXPECT_EQ(Key::max().half().byte(0), 0x7f);
}

TEST(Key, DistanceIsClockwise) {
  Key a = Key::from_uint64(10);
  Key b = Key::from_uint64(30);
  EXPECT_EQ(Key::distance(a, b), Key::from_uint64(20));
  // Wrapping distance: from 30 to 10 goes nearly all the way around.
  Key wrap = Key::distance(b, a);
  EXPECT_EQ(wrap + Key::from_uint64(20), Key::min());
}

TEST(Key, MidpointBetween) {
  Key mid = Key::midpoint(Key::from_uint64(10), Key::from_uint64(20));
  EXPECT_EQ(mid, Key::from_uint64(15));
}

TEST(Key, MidpointOfWrappingArc) {
  // Arc from MAX-9 to 10 has length 20, midpoint at (MAX-9)+10 = 0.
  Key from = Key::max() - Key::from_uint64(9);
  Key mid = Key::midpoint(from, Key::from_uint64(10));
  EXPECT_EQ(mid, Key::min());
}

TEST(Key, InArcBasic) {
  Key a = Key::from_uint64(10);
  Key b = Key::from_uint64(20);
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(10), a, b));  // exclusive start
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(11), a, b));
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(20), a, b));  // inclusive end
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(21), a, b));
}

TEST(Key, InArcWrapping) {
  Key a = Key::from_uint64(100);
  Key b = Key::from_uint64(5);
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(101), a, b));
  EXPECT_TRUE(Key::in_arc(Key::max(), a, b));
  EXPECT_TRUE(Key::in_arc(Key::min(), a, b));
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(5), a, b));
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(6), a, b));
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(100), a, b));
}

TEST(Key, InArcFullRing) {
  Key a = Key::from_uint64(10);
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(999), a, a));
  EXPECT_TRUE(Key::in_arc(Key::min(), a, a));
}

TEST(Key, RandomKeysDistinct) {
  Rng rng(1);
  Key a = Key::random(rng);
  Key b = Key::random(rng);
  EXPECT_NE(a, b);
}

TEST(Key, HexFormat) {
  EXPECT_EQ(Key::min().hex(), std::string(128, '0'));
  EXPECT_EQ(Key::max().short_hex(), "ffffffff");
  EXPECT_EQ(Key::from_uint64(0xab).hex().substr(126), "ab");
}

TEST(Key, RingPositionSpansUnitInterval) {
  EXPECT_DOUBLE_EQ(Key::min().ring_position(), 0.0);
  EXPECT_GT(Key::max().ring_position(), 0.9999);
  Rng rng(3);
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += Key::random(rng).ring_position();
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Key, HashDistinguishes) {
  KeyHash h;
  EXPECT_NE(h(Key::from_uint64(1)), h(Key::from_uint64(2)));
}

// Property sweep: midpoint lies inside the arc and splits it into halves
// whose sizes differ by at most one.
class KeyMidpointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyMidpointProperty, MidpointInsideArc) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Key a = Key::random(rng);
    Key b = Key::random(rng);
    if (a == b) continue;
    Key mid = Key::midpoint(a, b);
    EXPECT_TRUE(Key::in_arc(mid, a, b) || mid == a)
        << "a=" << a.hex() << " b=" << b.hex();
    // dist(a, mid) + dist(mid, b) == dist(a, b)
    Key d1 = Key::distance(a, mid);
    Key d2 = Key::distance(mid, b);
    EXPECT_EQ(d1 + d2, Key::distance(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyMidpointProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// Property sweep: in_arc is consistent with distance ordering.
class KeyArcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyArcProperty, InArcMatchesDistance) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Key from = Key::random(rng);
    Key to = Key::random(rng);
    Key k = Key::random(rng);
    if (from == to) continue;
    // k in (from, to] iff 0 < dist(from, k) <= dist(from, to).
    const bool expected = Key::distance(from, k) <= Key::distance(from, to) &&
                          !(k == from);
    EXPECT_EQ(Key::in_arc(k, from, to), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyArcProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- differential tests: limb arithmetic vs a byte-wise reference ---
//
// Key stores eight uint64 limbs; these checks pin its arithmetic to the
// straightforward big-endian byte-loop implementation it replaced.

using ByteArray = std::array<std::uint8_t, Key::kBytes>;

ByteArray ref_add(const ByteArray& a, const ByteArray& b) {
  ByteArray out{};
  int carry = 0;
  for (std::size_t i = Key::kBytes; i-- > 0;) {
    const int s = int{a[i]} + int{b[i]} + carry;
    out[i] = static_cast<std::uint8_t>(s & 0xff);
    carry = s >> 8;
  }
  return out;
}

ByteArray ref_sub(const ByteArray& a, const ByteArray& b) {
  ByteArray out{};
  int borrow = 0;
  for (std::size_t i = Key::kBytes; i-- > 0;) {
    int d = int{a[i]} - int{b[i]} - borrow;
    borrow = d < 0 ? 1 : 0;
    if (d < 0) d += 256;
    out[i] = static_cast<std::uint8_t>(d);
  }
  return out;
}

ByteArray ref_half(const ByteArray& a) {
  ByteArray out{};
  int carry = 0;
  for (std::size_t i = 0; i < Key::kBytes; ++i) {
    out[i] = static_cast<std::uint8_t>((a[i] >> 1) | (carry << 7));
    carry = a[i] & 1;
  }
  return out;
}

ByteArray ref_next(const ByteArray& a) {
  ByteArray out = a;
  for (std::size_t i = Key::kBytes; i-- > 0;) {
    if (++out[i] != 0) break;
  }
  return out;
}

int ref_compare(const ByteArray& a, const ByteArray& b) {
  for (std::size_t i = 0; i < Key::kBytes; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Interesting values around limb boundaries plus random keys.
std::vector<Key> differential_corpus(std::uint64_t seed) {
  std::vector<Key> keys = {Key::min(), Key::max(), Key::from_uint64(1),
                           Key::from_uint64(UINT64_MAX)};
  // All-ones / lone-one patterns at each of the eight limb boundaries.
  for (std::size_t limb = 0; limb < Key::kLimbs; ++limb) {
    ByteArray ones{}, lone{};
    for (std::size_t i = 0; i <= limb; ++i) {
      for (std::size_t b = 0; b < 8; ++b) {
        ones[(Key::kLimbs - 1 - i) * 8 + b] = 0xff;
      }
    }
    lone[limb * 8 + 7] = 1;  // lowest byte of limb `limb`
    keys.push_back(Key::from_bytes(ones));
    keys.push_back(Key::from_bytes(lone));
    keys.push_back(Key::from_bytes(ones).next());
  }
  Rng rng(seed);
  for (int i = 0; i < 64; ++i) keys.push_back(Key::random(rng));
  return keys;
}

class KeyDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyDifferential, ArithmeticMatchesByteReference) {
  const std::vector<Key> keys = differential_corpus(GetParam());
  for (const Key& a : keys) {
    const ByteArray ab = a.bytes();
    EXPECT_EQ(a.half().bytes(), ref_half(ab)) << a.hex();
    EXPECT_EQ(a.next().bytes(), ref_next(ab)) << a.hex();
    for (const Key& b : keys) {
      const ByteArray bb = b.bytes();
      EXPECT_EQ((a + b).bytes(), ref_add(ab, bb))
          << a.hex() << " + " << b.hex();
      EXPECT_EQ((a - b).bytes(), ref_sub(ab, bb))
          << a.hex() << " - " << b.hex();
      const int rc = ref_compare(ab, bb);
      EXPECT_EQ(a < b, rc < 0);
      EXPECT_EQ(a == b, rc == 0);
      EXPECT_EQ(a > b, rc > 0);
    }
  }
}

TEST_P(KeyDifferential, MidpointAndArcMatchByteReference) {
  const std::vector<Key> keys = differential_corpus(GetParam() + 1000);
  for (std::size_t i = 0; i + 2 < keys.size(); i += 3) {
    const Key& from = keys[i];
    const Key& to = keys[i + 1];
    const Key& k = keys[i + 2];
    // midpoint(a, b) == a + half(b - a), built from reference byte ops.
    const ByteArray expect_mid =
        ref_add(from.bytes(), ref_half(ref_sub(to.bytes(), from.bytes())));
    EXPECT_EQ(Key::midpoint(from, to).bytes(), expect_mid);
    // in_arc(k, from, to) == k != from && dist(from, k) <= dist(from, to),
    // with from == to meaning the whole ring.
    const ByteArray dk = ref_sub(k.bytes(), from.bytes());
    const ByteArray dt = ref_sub(to.bytes(), from.bytes());
    const bool expect_in =
        (from == to) || (!(k == from) && ref_compare(dk, dt) <= 0);
    EXPECT_EQ(Key::in_arc(k, from, to), expect_in)
        << k.hex() << " in (" << from.hex() << ", " << to.hex() << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyDifferential,
                         ::testing::Values(101, 202, 303));

TEST(Key, BytesRoundTripAtLimbBoundaries) {
  // Every per-byte pattern survives bytes() -> from_bytes() -> bytes().
  for (std::size_t pos = 0; pos < Key::kBytes; ++pos) {
    for (std::uint8_t v : {std::uint8_t{0x01}, std::uint8_t{0x80},
                           std::uint8_t{0xff}}) {
      ByteArray b{};
      b[pos] = v;
      const Key k = Key::from_bytes(b);
      EXPECT_EQ(k.bytes(), b);
      EXPECT_EQ(k.byte(pos), v);
      // The byte lands in the right limb at the right shift.
      EXPECT_EQ(k.limb(pos / 8),
                static_cast<std::uint64_t>(v) << (8 * (7 - (pos % 8))));
    }
  }
}

TEST(Key, Low64ReadsLastLimb) {
  ByteArray b{};
  for (std::size_t i = 0; i < 8; ++i) {
    b[Key::kBytes - 8 + i] = static_cast<std::uint8_t>(0x10 + i);
  }
  EXPECT_EQ(Key::from_bytes(b).low64(), 0x1011121314151617ull);
  EXPECT_EQ(Key::from_uint64(0xdeadbeefcafef00dull).low64(),
            0xdeadbeefcafef00dull);
  // from_uint64 touches only the low limb.
  EXPECT_EQ(Key::from_uint64(UINT64_MAX).limb(Key::kLimbs - 2), 0u);
}

// --- key_lower_bound / key_upper_bound (common/key_simd.h) ---
// Differential against std::lower_bound/std::upper_bound, and the
// dispatched (possibly SIMD) kernel against the always-scalar one. Keys
// are drawn to force long shared prefixes (the SIMD compare's hard case:
// equality resolved in the second 32-byte half or full equality).

TEST(KeySearch, BoundsMatchStdOnRandomRuns) {
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = rng.next_below(200);
    std::vector<Key> keys;
    for (std::size_t i = 0; i < n; ++i) keys.push_back(Key::random(rng));
    // Duplicates make lower/upper bounds differ.
    for (std::size_t i = 0; i + 1 < keys.size(); i += 3) {
      keys[i + 1] = keys[i];
    }
    std::sort(keys.begin(), keys.end());
    for (int probe = 0; probe < 40; ++probe) {
      // Half the probes are members (including the duplicated ones),
      // half are random misses.
      const Key needle = (probe % 2 == 0 && !keys.empty())
                             ? keys[rng.next_below(keys.size())]
                             : Key::random(rng);
      const auto want_lo = static_cast<std::size_t>(
          std::lower_bound(keys.begin(), keys.end(), needle) - keys.begin());
      const auto want_hi = static_cast<std::size_t>(
          std::upper_bound(keys.begin(), keys.end(), needle) - keys.begin());
      EXPECT_EQ(key_lower_bound(keys.data(), keys.size(), needle), want_lo);
      EXPECT_EQ(key_upper_bound(keys.data(), keys.size(), needle), want_hi);
      EXPECT_EQ(key_lower_bound_scalar(keys.data(), keys.size(), needle),
                want_lo);
      EXPECT_EQ(key_upper_bound_scalar(keys.data(), keys.size(), needle),
                want_hi);
    }
  }
}

TEST(KeySearch, BoundsResolveLateLimbDifferences) {
  // Keys identical through the first 7 limbs, differing only in the last
  // (and one pair fully equal): exercises the second vector probe and
  // the equal path of the SIMD compare.
  std::vector<Key> keys;
  for (std::uint64_t v : {5u, 5u, 9u, 12u, 700u}) {
    keys.push_back(Key::from_uint64(v));
  }
  for (std::uint64_t v = 0; v < 800; v += 7) {
    const Key needle = Key::from_uint64(v);
    const auto want_lo = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), needle) - keys.begin());
    const auto want_hi = static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), needle) - keys.begin());
    EXPECT_EQ(key_lower_bound(keys.data(), keys.size(), needle), want_lo);
    EXPECT_EQ(key_upper_bound(keys.data(), keys.size(), needle), want_hi);
  }
}

TEST(KeySearch, ReportsActiveKernel) {
  // Whichever kernel resolved, it must be one of the two known names,
  // and forcing scalar via the compile-time/env hook is covered by the
  // D2_FORCE_SCALAR CI job.
  const std::string name = key_search_kernel();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

}  // namespace
}  // namespace d2
