#include "common/key.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace d2 {
namespace {

TEST(Key, DefaultIsZero) {
  Key k;
  EXPECT_EQ(k, Key::min());
  EXPECT_EQ(k.low64(), 0u);
}

TEST(Key, FromUint64RoundTrips) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{255}, std::uint64_t{65536}, UINT64_MAX}) {
    EXPECT_EQ(Key::from_uint64(v).low64(), v);
  }
}

TEST(Key, ComparisonMatchesInteger) {
  EXPECT_LT(Key::from_uint64(1), Key::from_uint64(2));
  EXPECT_LT(Key::from_uint64(255), Key::from_uint64(256));
  EXPECT_GT(Key::max(), Key::from_uint64(UINT64_MAX));
  EXPECT_EQ(Key::from_uint64(42), Key::from_uint64(42));
}

TEST(Key, AdditionSmallValues) {
  EXPECT_EQ(Key::from_uint64(3) + Key::from_uint64(4), Key::from_uint64(7));
}

TEST(Key, AdditionCarriesAcrossBytes) {
  EXPECT_EQ(Key::from_uint64(255) + Key::from_uint64(1), Key::from_uint64(256));
  // Carry across the 8-byte boundary of low64.
  Key sum = Key::from_uint64(UINT64_MAX) + Key::from_uint64(1);
  EXPECT_EQ(sum.low64(), 0u);
  EXPECT_EQ(sum.byte(Key::kBytes - 9), 1);
}

TEST(Key, SubtractionInverts) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Key a = Key::random(rng);
    Key b = Key::random(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(Key, SubtractionWrapsModulo) {
  // 0 - 1 == MAX.
  EXPECT_EQ(Key::min() - Key::from_uint64(1), Key::max());
}

TEST(Key, MaxPlusOneWrapsToZero) {
  EXPECT_EQ(Key::max() + Key::from_uint64(1), Key::min());
  EXPECT_EQ(Key::max().next(), Key::min());
}

TEST(Key, HalfShiftsRight) {
  EXPECT_EQ(Key::from_uint64(8).half(), Key::from_uint64(4));
  EXPECT_EQ(Key::from_uint64(9).half(), Key::from_uint64(4));
  // Shifting max gives 0x7f top byte.
  EXPECT_EQ(Key::max().half().byte(0), 0x7f);
}

TEST(Key, DistanceIsClockwise) {
  Key a = Key::from_uint64(10);
  Key b = Key::from_uint64(30);
  EXPECT_EQ(Key::distance(a, b), Key::from_uint64(20));
  // Wrapping distance: from 30 to 10 goes nearly all the way around.
  Key wrap = Key::distance(b, a);
  EXPECT_EQ(wrap + Key::from_uint64(20), Key::min());
}

TEST(Key, MidpointBetween) {
  Key mid = Key::midpoint(Key::from_uint64(10), Key::from_uint64(20));
  EXPECT_EQ(mid, Key::from_uint64(15));
}

TEST(Key, MidpointOfWrappingArc) {
  // Arc from MAX-9 to 10 has length 20, midpoint at (MAX-9)+10 = 0.
  Key from = Key::max() - Key::from_uint64(9);
  Key mid = Key::midpoint(from, Key::from_uint64(10));
  EXPECT_EQ(mid, Key::min());
}

TEST(Key, InArcBasic) {
  Key a = Key::from_uint64(10);
  Key b = Key::from_uint64(20);
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(10), a, b));  // exclusive start
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(11), a, b));
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(20), a, b));  // inclusive end
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(21), a, b));
}

TEST(Key, InArcWrapping) {
  Key a = Key::from_uint64(100);
  Key b = Key::from_uint64(5);
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(101), a, b));
  EXPECT_TRUE(Key::in_arc(Key::max(), a, b));
  EXPECT_TRUE(Key::in_arc(Key::min(), a, b));
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(5), a, b));
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(6), a, b));
  EXPECT_FALSE(Key::in_arc(Key::from_uint64(100), a, b));
}

TEST(Key, InArcFullRing) {
  Key a = Key::from_uint64(10);
  EXPECT_TRUE(Key::in_arc(Key::from_uint64(999), a, a));
  EXPECT_TRUE(Key::in_arc(Key::min(), a, a));
}

TEST(Key, RandomKeysDistinct) {
  Rng rng(1);
  Key a = Key::random(rng);
  Key b = Key::random(rng);
  EXPECT_NE(a, b);
}

TEST(Key, HexFormat) {
  EXPECT_EQ(Key::min().hex(), std::string(128, '0'));
  EXPECT_EQ(Key::max().short_hex(), "ffffffff");
  EXPECT_EQ(Key::from_uint64(0xab).hex().substr(126), "ab");
}

TEST(Key, RingPositionSpansUnitInterval) {
  EXPECT_DOUBLE_EQ(Key::min().ring_position(), 0.0);
  EXPECT_GT(Key::max().ring_position(), 0.9999);
  Rng rng(3);
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += Key::random(rng).ring_position();
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Key, HashDistinguishes) {
  KeyHash h;
  EXPECT_NE(h(Key::from_uint64(1)), h(Key::from_uint64(2)));
}

// Property sweep: midpoint lies inside the arc and splits it into halves
// whose sizes differ by at most one.
class KeyMidpointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyMidpointProperty, MidpointInsideArc) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Key a = Key::random(rng);
    Key b = Key::random(rng);
    if (a == b) continue;
    Key mid = Key::midpoint(a, b);
    EXPECT_TRUE(Key::in_arc(mid, a, b) || mid == a)
        << "a=" << a.hex() << " b=" << b.hex();
    // dist(a, mid) + dist(mid, b) == dist(a, b)
    Key d1 = Key::distance(a, mid);
    Key d2 = Key::distance(mid, b);
    EXPECT_EQ(d1 + d2, Key::distance(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyMidpointProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// Property sweep: in_arc is consistent with distance ordering.
class KeyArcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyArcProperty, InArcMatchesDistance) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Key from = Key::random(rng);
    Key to = Key::random(rng);
    Key k = Key::random(rng);
    if (from == to) continue;
    // k in (from, to] iff 0 < dist(from, k) <= dist(from, to).
    const bool expected = Key::distance(from, k) <= Key::distance(from, to) &&
                          !(k == from);
    EXPECT_EQ(Key::in_arc(k, from, to), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyArcProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace d2
