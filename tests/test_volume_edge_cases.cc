// Edge-case and deep-structure tests for fs::Volume: paths beyond the
// 12-level slot budget, slot allocation behaviour, inline-threshold
// boundaries, and version-chain growth.
#include <gtest/gtest.h>

#include <set>

#include "common/assert.h"
#include "fs/key_encoding.h"
#include "fs/volume.h"

namespace d2::fs {
namespace {

std::string deep_path(int levels) {
  std::string p;
  for (int i = 0; i < levels; ++i) {
    if (!p.empty()) p.push_back('/');
    p += "d" + std::to_string(i);
  }
  return p + "/leaf.txt";
}

TEST(VolumeDeepPaths, BeyondTwelveLevelsStillWorks) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  const std::string path = deep_path(20);
  v.write(path, 0, kB(16), 0, ops);
  v.flush(0, ops);
  EXPECT_TRUE(v.exists(path));
  ops.clear();
  v.read(path, 0, kB(16), hours(1), ops);
  int data_gets = 0;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kGet &&
        decode_block_key(op.key).type == BlockType::kData) {
      ++data_gets;
    }
  }
  EXPECT_EQ(data_gets, 2);
}

TEST(VolumeDeepPaths, OverflowPathsGetDistinctKeys) {
  // Two deep files sharing the first 12 levels but diverging later must
  // not collide (remainder hash distinguishes them).
  Volume v("vol");
  std::vector<StoreOp> ops;
  std::string base;
  for (int i = 0; i < 14; ++i) base += "d" + std::to_string(i) + "/";
  v.write(base + "a/file", 0, kB(8), 0, ops);
  v.write(base + "b/file", 0, kB(8), 0, ops);
  v.flush(0, ops);
  std::set<Key> keys;
  int puts = 0;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kPut) {
      keys.insert(op.key);
      ++puts;
    }
  }
  EXPECT_EQ(static_cast<int>(keys.size()), puts) << "key collision";
  EXPECT_TRUE(v.exists(base + "a/file"));
  EXPECT_TRUE(v.exists(base + "b/file"));
}

TEST(VolumeDeepPaths, DeepSubtreeRemoval) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write(deep_path(16), 0, kB(8), 0, ops);
  v.flush(0, ops);
  v.remove("d0", hours(1), ops);
  EXPECT_FALSE(v.exists("d0"));
  EXPECT_EQ(v.file_count(), 0u);
  EXPECT_EQ(v.dir_count(), 1u);
}

TEST(VolumeSlots, SiblingsGetDistinctAdjacentKeys) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  // 100 siblings in one directory: their inode keys must be strictly
  // increasing in creation order (slot allocation is monotonic).
  std::vector<Key> inode_keys;
  for (int i = 0; i < 100; ++i) {
    v.write("dir/f" + std::to_string(i), 0, 100, 0, ops);
  }
  v.flush(0, ops);
  for (const StoreOp& op : ops) {
    if (op.kind != StoreOp::Kind::kPut) continue;
    const DecodedKey d = decode_block_key(op.key);
    if (d.type == BlockType::kInode) inode_keys.push_back(op.key);
  }
  ASSERT_EQ(inode_keys.size(), 100u);
  for (std::size_t i = 0; i + 1 < inode_keys.size(); ++i) {
    EXPECT_LT(inode_keys[i], inode_keys[i + 1]);
  }
}

TEST(VolumeInline, ThresholdBoundary) {
  VolumeConfig config;
  config.inline_threshold = kB(4);
  Volume v("vol", config);
  std::vector<StoreOp> ops;
  v.write("at", 0, kB(4), 0, ops);       // exactly at threshold: inline
  v.write("over", 0, kB(4) + 1, 0, ops);  // one byte over: spills
  v.flush(0, ops);
  int data_puts_at = 0, data_puts_over = 0;
  for (const StoreOp& op : ops) {
    if (op.kind != StoreOp::Kind::kPut) continue;
    const DecodedKey d = decode_block_key(op.key);
    if (d.type != BlockType::kData) continue;
    if (d.path.slots[0] == 1) ++data_puts_at;    // "at" created first
    if (d.path.slots[0] == 2) ++data_puts_over;
  }
  EXPECT_EQ(data_puts_at, 0);
  EXPECT_EQ(data_puts_over, 1);
}

TEST(VolumeInline, ZeroThresholdNeverInlines) {
  VolumeConfig config;
  config.inline_threshold = 0;
  Volume v("vol", config);
  std::vector<StoreOp> ops;
  v.write("f", 0, 100, 0, ops);
  v.flush(0, ops);
  bool has_data_block = false;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kPut &&
        decode_block_key(op.key).type == BlockType::kData) {
      has_data_block = true;
    }
  }
  EXPECT_TRUE(has_data_block);
}

TEST(VolumeVersions, RepeatedOverwritesChainVersions) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("f", 0, kB(8), 0, ops);
  v.flush(0, ops);
  std::set<std::uint32_t> seen_versions;
  for (int round = 1; round <= 5; ++round) {
    ops.clear();
    v.write("f", 0, kB(8), hours(round), ops);
    v.flush(hours(round), ops);
    for (const StoreOp& op : ops) {
      if (op.kind != StoreOp::Kind::kPut) continue;
      const DecodedKey d = decode_block_key(op.key);
      if (d.type == BlockType::kData) seen_versions.insert(d.version);
    }
  }
  // Five committed overwrites -> five distinct new data versions.
  EXPECT_EQ(seen_versions.size(), 5u);
}

TEST(VolumeVersions, SparseWriteCreatesHoleBlocks) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  // Write 8 KB at offset 80 KB into an empty file: blocks 0-9 materialize
  // (a real FS would keep holes; our model conservatively allocates the
  // tail range when the size jumps).
  v.write("f", kB(80), kB(8), 0, ops);
  v.flush(0, ops);
  EXPECT_EQ(v.file_size("f"), kB(88));
  ops.clear();
  v.read("f", 0, kB(88), hours(1), ops);
  int data_gets = 0;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kGet &&
        decode_block_key(op.key).type == BlockType::kData) {
      ++data_gets;
    }
  }
  EXPECT_GE(data_gets, 1);  // at least the written block is readable
}

TEST(VolumeRename, DirectoryRenameKeepsChildKeys) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  v.write("old/a", 0, kB(8), 0, ops);
  v.write("old/sub/b", 0, kB(8), 0, ops);
  v.flush(0, ops);
  const auto before_a = v.uncached_read_ops("old/a");
  const auto before_b = v.uncached_read_ops("old/sub/b");

  v.rename("old", "new", hours(1), ops);
  EXPECT_TRUE(v.exists("new/a"));
  EXPECT_TRUE(v.exists("new/sub/b"));

  const auto after_a = v.uncached_read_ops("new/a");
  const auto after_b = v.uncached_read_ops("new/sub/b");
  // Data block keys identical: nothing moves in the DHT (§4.2).
  auto data_keys = [](const std::vector<StoreOp>& ops_list) {
    std::vector<Key> keys;
    for (const StoreOp& op : ops_list) {
      if (decode_block_key(op.key).type == BlockType::kData) {
        keys.push_back(op.key);
      }
    }
    return keys;
  };
  EXPECT_EQ(data_keys(before_a), data_keys(after_a));
  EXPECT_EQ(data_keys(before_b), data_keys(after_b));
}

TEST(VolumeCounts, TrackFilesAndDirs) {
  Volume v("vol");
  std::vector<StoreOp> ops;
  EXPECT_EQ(v.dir_count(), 1u);  // root
  EXPECT_EQ(v.file_count(), 0u);
  v.write("a/b/f1", 0, 100, 0, ops);
  v.write("a/f2", 0, 100, 0, ops);
  EXPECT_EQ(v.dir_count(), 3u);  // root, a, a/b
  EXPECT_EQ(v.file_count(), 2u);
  v.remove("a/b", 0, ops);
  EXPECT_EQ(v.dir_count(), 2u);
  EXPECT_EQ(v.file_count(), 1u);
}

TEST(VolumeWriteback, MixedSchemesIndependentCaches) {
  // The same operations through two volumes of different schemes produce
  // the same op *count* structure (scheme only changes keys).
  VolumeConfig d2c, tc;
  d2c.scheme = KeyScheme::kD2;
  tc.scheme = KeyScheme::kTraditionalBlock;
  Volume vd("vol", d2c), vt("vol", tc);
  std::vector<StoreOp> ops_d, ops_t;
  for (int i = 0; i < 10; ++i) {
    vd.write("d/f" + std::to_string(i), 0, kB(12), 0, ops_d);
    vt.write("d/f" + std::to_string(i), 0, kB(12), 0, ops_t);
  }
  vd.flush(0, ops_d);
  vt.flush(0, ops_t);
  EXPECT_EQ(ops_d.size(), ops_t.size());
}

}  // namespace
}  // namespace d2::fs
