// Randomized stress tests of the System: arbitrary interleavings of puts,
// removes, load-balancing moves and failures, with global invariants
// verified at quiescence. These are the "failure injection" tests the
// deterministic unit tests can't cover.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/system.h"
#include "sim/failure.h"

namespace d2::core {
namespace {

/// Checks the §3 invariant at a quiescent, all-up moment: every block's
/// replica set is exactly the r successors of its key, every member holds
/// data, and no stale holders remain.
void expect_canonical_state(System& sys) {
  const int r = sys.config().redundancy == SystemConfig::Redundancy::kErasure
                    ? sys.config().ec_total_fragments
                    : sys.config().replicas;
  sys.block_map().for_each_block([&](const Key& key,
                                     const store::BlockState& block) {
    ASSERT_EQ(static_cast<int>(block.replicas.size()), r)
        << "block " << key.short_hex();
    if (sys.config().scatter_replicas == 0) {
      int node = sys.ring().owner(key);
      for (const store::Replica& rep : block.replicas) {
        EXPECT_EQ(rep.node, node) << "block " << key.short_hex();
        node = sys.ring().successor(node);
      }
    }
    for (const store::Replica& rep : block.replicas) {
      EXPECT_TRUE(rep.has_data) << "block " << key.short_hex();
    }
    EXPECT_TRUE(block.stale_holders.empty()) << "block " << key.short_hex();
    EXPECT_TRUE(sys.block_available(key));
  });
}

struct StressOptions {
  SystemConfig config;
  int steps = 600;
  bool with_failures = false;
  std::uint64_t seed = 1;
};

void run_stress(const StressOptions& opt) {
  sim::Simulator sim;
  System sys(opt.config, sim);
  Rng rng(opt.seed);

  sim::FailureTrace trace = sim::FailureTrace::all_up(opt.config.node_count,
                                                      days(30));
  if (opt.with_failures) {
    sim::FailureParams fp;
    fp.node_count = opt.config.node_count;
    fp.duration = days(10);
    fp.mttf_hours = 30;
    fp.mttr_hours = 3;
    fp.correlated_events_per_day = 1.0;
    fp.correlated_fraction = 0.25;
    Rng frng(opt.seed ^ 0xbeef);
    trace = sim::FailureTrace::generate(fp, frng);
  }
  sys.attach_failure_trace(&trace, 0);
  sys.start_load_balancing();

  std::vector<Key> live;
  std::uint64_t next_key = 0;
  for (int step = 0; step < opt.steps; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.55 || live.empty()) {
      // Mostly sequential keys (locality-preserving pattern), some random.
      Key k = rng.bernoulli(0.8)
                  ? Key::from_uint64(1'000'000 + 64 * next_key++)
                  : Key::random(rng);
      if (!sys.has(k)) {
        sys.put(k, 512 + static_cast<Bytes>(rng.next_below(kB(16))));
        live.push_back(k);
      }
    } else if (roll < 0.75) {
      const std::size_t i = rng.next_below(live.size());
      sys.remove(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
    } else {
      sys.probe_once(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(opt.config.node_count))));
    }
    sim.run_until(sim.now() + minutes(10));
  }

  // Quiesce: run far past the failure trace, every pointer stabilization
  // and every retry backoff.
  sim.run_until(days(20));
  sim.run_until(days(40));
  expect_canonical_state(sys);

  // Everything we didn't remove is still there; everything we removed is
  // gone.
  std::set<Key> live_set(live.begin(), live.end());
  EXPECT_EQ(sys.block_map().block_count(), live_set.size());
  for (const Key& k : live) EXPECT_TRUE(sys.has(k));
}

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, QuiescesToCanonicalState) {
  StressOptions opt;
  opt.config.node_count = 20;
  opt.config.replicas = 3;
  opt.config.seed = GetParam();
  opt.seed = GetParam();
  run_stress(opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep, ::testing::Values(1, 2, 3, 4));

class StressFailureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressFailureSweep, QuiescesDespiteFailures) {
  StressOptions opt;
  opt.config.node_count = 20;
  opt.config.replicas = 3;
  opt.config.regen_delay = minutes(20);
  opt.config.seed = GetParam();
  opt.seed = GetParam();
  opt.with_failures = true;
  opt.steps = 400;
  run_stress(opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressFailureSweep, ::testing::Values(5, 6, 7));

TEST(SystemStress, PointersQuiesceToo) {
  StressOptions opt;
  opt.config.node_count = 24;
  opt.config.replicas = 3;
  opt.config.use_pointers = true;
  opt.config.pointer_stabilization = hours(2);
  opt.seed = 11;
  run_stress(opt);
}

TEST(SystemStress, HybridPlacementQuiesces) {
  StressOptions opt;
  opt.config.node_count = 24;
  opt.config.replicas = 4;
  opt.config.scatter_replicas = 1;
  opt.seed = 12;
  opt.steps = 400;
  run_stress(opt);
}

TEST(SystemStress, ErasureQuiesces) {
  StressOptions opt;
  opt.config.node_count = 24;
  opt.config.redundancy = SystemConfig::Redundancy::kErasure;
  opt.config.ec_total_fragments = 5;
  opt.config.ec_data_fragments = 3;
  opt.seed = 13;
  opt.steps = 400;
  run_stress(opt);
}

}  // namespace
}  // namespace d2::core
