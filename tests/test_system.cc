#include "core/system.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "fs/key_encoding.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace d2::core {
namespace {

SystemConfig small_config() {
  SystemConfig c;
  c.node_count = 16;
  c.replicas = 3;
  c.seed = 7;
  return c;
}

// Sequential "D2-like" keys concentrated in a small region of the ring —
// the skew that consistent hashing cannot balance.
Key seq_key(std::uint64_t i) { return Key::from_uint64(1000 + i); }

TEST(System, PutPlacesOnReplicaSet) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  const Key key = seq_key(1);
  sys.put(key, 100);
  const auto nodes = sys.replica_nodes(key);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], sys.owner_of(key));
  EXPECT_TRUE(sys.block_available(key));
  EXPECT_EQ(sys.serving_node(key), nodes[0]);
  EXPECT_EQ(sys.user_write_bytes(), 100);
}

TEST(System, RemoveIsDelayed) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  sys.put(seq_key(1), 100);
  sys.remove(seq_key(1));
  EXPECT_TRUE(sys.has(seq_key(1)));  // §3: 30-second removal delay
  sim.run_until(seconds(29));
  EXPECT_TRUE(sys.has(seq_key(1)));
  sim.run_until(seconds(31));
  EXPECT_FALSE(sys.has(seq_key(1)));
  EXPECT_EQ(sys.user_removed_bytes(), 100);
}

TEST(System, PutExistingKeyIsUpdate) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  sys.put(seq_key(1), 100);
  sys.put(seq_key(1), 150);
  EXPECT_EQ(sys.block_map().find(seq_key(1))->size, 150);
  EXPECT_EQ(sys.block_map().block_count(), 1u);
  EXPECT_EQ(sys.user_write_bytes(), 250);
}

TEST(System, LoadBalancingFlattensSkewedKeys) {
  SystemConfig c = small_config();
  c.node_count = 32;
  c.use_pointers = false;  // eager, so physical bytes follow quickly
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 2000; ++i) sys.put(seq_key(i), kB(8));
  // All keys land on one node initially (they're numerically adjacent).
  EXPECT_GT(sys.max_over_mean_load(), 5.0);
  sys.start_load_balancing();
  sim.run_until(days(2));
  // Karger-Ruhl with t=4: loads within a constant factor of the mean.
  Stats s;
  for (int n = 0; n < c.node_count; ++n) {
    s.add(static_cast<double>(sys.block_map().primary_count(n)));
  }
  EXPECT_LT(s.max() / s.mean(), 6.0);
  EXPECT_GT(sys.lb_moves(), 5);
}

TEST(System, NoBalancingWithoutActivation) {
  SystemConfig c = small_config();
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 500; ++i) sys.put(seq_key(i), kB(8));
  sim.run_until(days(1));
  EXPECT_EQ(sys.lb_moves(), 0);
}

TEST(System, PointersDeferMigrationUntilStabilization) {
  SystemConfig c = small_config();
  c.use_pointers = true;
  c.pointer_stabilization = hours(1);
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 400; ++i) sys.put(seq_key(i), kB(8));
  // Force one balancing step manually.
  bool moved = false;
  for (int p = 0; p < c.node_count && !moved; ++p) moved = sys.probe_once(p);
  ASSERT_TRUE(moved);
  // Immediately after the move nothing migrated: the new owner holds
  // pointers.
  EXPECT_EQ(sys.migration_bytes(), 0);
  // All blocks are still available (data is where it was).
  for (std::uint64_t i = 0; i < 400; ++i) {
    EXPECT_TRUE(sys.block_available(seq_key(i)));
  }
  // After stabilization + transfer time, data has moved.
  sim.run_until(hours(12));
  EXPECT_GT(sys.migration_bytes(), 0);
  // And every replica of every block holds real data again.
  for (std::uint64_t i = 0; i < 400; ++i) {
    const store::BlockState* b = sys.block_map().find(seq_key(i));
    for (const store::Replica& r : b->replicas) {
      EXPECT_TRUE(r.has_data) << "block " << i;
    }
    EXPECT_TRUE(b->stale_holders.empty());
  }
}

TEST(System, EagerMigrationWithoutPointers) {
  SystemConfig c = small_config();
  c.use_pointers = false;
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 400; ++i) sys.put(seq_key(i), kB(8));
  bool moved = false;
  for (int p = 0; p < c.node_count && !moved; ++p) moved = sys.probe_once(p);
  ASSERT_TRUE(moved);
  sim.run_until(hours(1));  // well within pointer_stabilization
  EXPECT_GT(sys.migration_bytes(), 0);
}

TEST(System, PointerHandoffAvoidsDoubleMove) {
  // Split the same hot range twice within the stabilization window: the
  // blocks that were handed off to the second splitter must be fetched
  // only once (from the original holder), not moved twice.
  SystemConfig base = small_config();
  base.node_count = 32;

  auto run = [&](bool pointers) {
    SystemConfig c = base;
    c.use_pointers = pointers;
    sim::Simulator sim;
    System sys(c, sim);
    for (std::uint64_t i = 0; i < 1000; ++i) sys.put(seq_key(i), kB(8));
    sys.start_load_balancing();
    sim.run_until(days(3));
    return sys.migration_bytes();
  };
  const Bytes with_pointers = run(true);
  const Bytes without_pointers = run(false);
  EXPECT_LT(with_pointers, without_pointers);
}

TEST(System, AvailabilitySurvivesMinorityReplicaFailure) {
  SystemConfig c = small_config();
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  const auto nodes = sys.replica_nodes(seq_key(1));

  // Primary down for an hour: the block stays available via replicas.
  const auto trace = sim::FailureTrace::from_intervals(
      c.node_count, days(1), {{nodes[0], minutes(10), minutes(70)}});
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(minutes(20));
  EXPECT_FALSE(sys.node_up(nodes[0]));
  EXPECT_TRUE(sys.block_available(seq_key(1)));
  EXPECT_EQ(sys.serving_node(seq_key(1)), nodes[1]);
  sim.run_until(minutes(80));
  EXPECT_TRUE(sys.node_up(nodes[0]));
  EXPECT_EQ(sys.serving_node(seq_key(1)), nodes[0]);
}

TEST(System, WholeGroupDownMakesBlockUnavailable) {
  SystemConfig c = small_config();
  c.regen_delay = hours(10);  // effectively no regeneration
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  const auto nodes = sys.replica_nodes(seq_key(1));
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int n : nodes) downs.push_back({n, minutes(10), hours(2)});
  const auto trace = sim::FailureTrace::from_intervals(c.node_count, days(1), downs);
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(minutes(30));
  EXPECT_FALSE(sys.block_available(seq_key(1)));
  EXPECT_EQ(sys.serving_node(seq_key(1)), std::nullopt);
  sim.run_until(hours(3));
  EXPECT_TRUE(sys.block_available(seq_key(1)));
}

TEST(System, RegenerationRestoresAvailability) {
  // The first two replicas fail; regeneration must copy the block onto an
  // extra successor (bandwidth-limited), so that when the third replica
  // later also fails, the block is still reachable.
  SystemConfig c = small_config();
  c.regen_delay = minutes(30);
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  const auto nodes = sys.replica_nodes(seq_key(1));
  std::vector<sim::FailureTrace::DownInterval> downs = {
      {nodes[0], minutes(10), hours(8)},
      {nodes[1], minutes(10), hours(8)},
      {nodes[2], hours(3), hours(8)},  // fails after regeneration completed
  };
  const auto trace = sim::FailureTrace::from_intervals(c.node_count, days(1), downs);
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(4));
  // All three original replicas are down, but the regenerated copy serves.
  EXPECT_FALSE(sys.node_up(nodes[0]));
  EXPECT_FALSE(sys.node_up(nodes[1]));
  EXPECT_FALSE(sys.node_up(nodes[2]));
  EXPECT_TRUE(sys.block_available(seq_key(1)));
}

TEST(System, RecoveryShrinksReplicaSetToCanonical) {
  SystemConfig c = small_config();
  c.regen_delay = minutes(5);
  sim::Simulator sim;
  System sys(c, sim);
  sys.put(seq_key(1), kB(8));
  const auto before = sys.replica_nodes(seq_key(1));
  const auto trace = sim::FailureTrace::from_intervals(
      c.node_count, days(1), {{before[0], minutes(10), hours(2)}});
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(hours(1));
  EXPECT_GT(sys.replica_nodes(seq_key(1)).size(), 3u);  // extended
  sim.run_until(hours(6));
  const auto after = sys.replica_nodes(seq_key(1));
  EXPECT_EQ(after, before);  // canonical set restored on recovery
}

TEST(System, WriteDuringReplicaDowntimeCatchesUpOnRecovery) {
  SystemConfig c = small_config();
  c.regen_delay = hours(10);  // no regeneration in this window
  sim::Simulator sim;
  System sys(c, sim);
  // Find the replica set of the key before inserting it.
  const Key key = seq_key(1);
  const auto nodes = sys.replica_nodes(key);  // empty (not inserted)
  EXPECT_TRUE(nodes.empty());
  const int owner = sys.owner_of(key);
  const auto trace = sim::FailureTrace::from_intervals(
      c.node_count, days(1), {{owner, minutes(1), hours(1)}});
  sys.attach_failure_trace(&trace, 0);
  sim.run_until(minutes(5));
  sys.put(key, kB(8));  // written while the primary is down
  const store::BlockState* b = sys.block_map().find(key);
  bool owner_has_data = true;
  for (const store::Replica& r : b->replicas) {
    if (r.node == owner) owner_has_data = r.has_data;
  }
  EXPECT_FALSE(owner_has_data);
  EXPECT_TRUE(sys.block_available(key));  // other replicas hold it
  // After recovery the owner fetches the missed write.
  sim.run_until(hours(3));
  b = sys.block_map().find(key);
  for (const store::Replica& r : b->replicas) {
    EXPECT_TRUE(r.has_data);
  }
  EXPECT_GT(sys.migration_bytes(), 0);
}

TEST(System, ImbalanceMetricsComputed) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  for (std::uint64_t i = 0; i < 100; ++i) sys.put(seq_key(i), kB(8));
  EXPECT_GT(sys.load_imbalance(), 0.0);
  EXPECT_GE(sys.max_over_mean_load(), 1.0);
}

TEST(System, ResetTrafficCounters) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  sys.put(seq_key(1), 100);
  sys.reset_traffic_counters();
  EXPECT_EQ(sys.user_write_bytes(), 0);
  EXPECT_EQ(sys.migration_bytes(), 0);
}

TEST(System, ReplicaSetsConsecutiveOnRing) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Key k = Key::random(rng);
    sys.put(k, kB(8));
    const auto nodes = sys.replica_nodes(k);
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0], sys.ring().owner(k));
    EXPECT_EQ(sys.ring().successor(nodes[0]), nodes[1]);
    EXPECT_EQ(sys.ring().successor(nodes[1]), nodes[2]);
  }
}

TEST(System, RegistryCountersMatchLegacyAccessors) {
  // Replay a skewed write/remove stream through a balanced system with an
  // injected registry: every legacy accessor must agree exactly with its
  // registry counterpart (the accessors are shims over the same counters).
  SystemConfig c = small_config();
  c.node_count = 32;
  obs::Registry metrics;
  obs::Tracer tracer;
  sim::Simulator sim;
  sim.bind_metrics(&metrics);
  System sys(c, sim, &metrics);
  sys.set_tracer(&tracer);
  for (std::uint64_t i = 0; i < 1000; ++i) sys.put(seq_key(i), kB(8));
  for (std::uint64_t i = 0; i < 100; ++i) sys.remove(seq_key(i));
  sys.start_load_balancing();
  sim.run_until(days(2));

  ASSERT_NE(metrics.find_counter("system.user_write_bytes"), nullptr);
  EXPECT_EQ(metrics.find_counter("system.user_write_bytes")->value(),
            sys.user_write_bytes());
  EXPECT_EQ(metrics.find_counter("system.user_removed_bytes")->value(),
            sys.user_removed_bytes());
  EXPECT_EQ(metrics.find_counter("system.migration_bytes")->value(),
            sys.migration_bytes());
  EXPECT_EQ(metrics.find_counter("system.lb_moves")->value(), sys.lb_moves());

  // The replay actually exercised the counters.
  EXPECT_EQ(sys.user_write_bytes(), static_cast<Bytes>(1000 * kB(8)));
  EXPECT_EQ(sys.user_removed_bytes(), static_cast<Bytes>(100 * kB(8)));
  EXPECT_GT(sys.migration_bytes(), 0);
  EXPECT_GT(sys.lb_moves(), 0);
  EXPECT_EQ(metrics.find_counter("sim.events_processed")->value(),
            static_cast<std::int64_t>(sim.events_processed()));

  // The tracer saw the balancing moves the counter reports.
  std::int64_t traced_moves = 0;
  for (const obs::Event& e : tracer.events()) {
    if (e.type == obs::EventType::kLbMove) ++traced_moves;
  }
  EXPECT_EQ(traced_moves, sys.lb_moves());

  // Legacy reset keeps the shims and registry in lockstep.
  sys.reset_traffic_counters();
  EXPECT_EQ(metrics.find_counter("system.user_write_bytes")->value(), 0);
  EXPECT_EQ(sys.user_write_bytes(), 0);
}

TEST(System, OwnedRegistryWhenNoneInjected) {
  sim::Simulator sim;
  System sys(small_config(), sim);
  sys.put(seq_key(1), 100);
  // The fallback registry backs the accessors identically.
  EXPECT_EQ(sys.metrics().find_counter("system.user_write_bytes")->value(),
            sys.user_write_bytes());
  EXPECT_EQ(sys.user_write_bytes(), 100);
}

class LbThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(LbThresholdSweep, SteadyStateRespectsThreshold) {
  SystemConfig c = small_config();
  c.node_count = 24;
  c.lb_threshold = GetParam();
  c.use_pointers = false;
  sim::Simulator sim;
  System sys(c, sim);
  for (std::uint64_t i = 0; i < 1500; ++i) sys.put(seq_key(i), kB(8));
  sys.start_load_balancing();
  sim.run_until(days(2));
  // Steady state: no pair of nodes should differ by much more than t
  // (allow slack for the minimum-split floor and probe randomness).
  Stats s;
  for (int n = 0; n < c.node_count; ++n) {
    s.add(static_cast<double>(sys.block_map().primary_count(n)) + 1.0);
  }
  EXPECT_LT(s.max() / s.mean(), GetParam() * 2.5);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, LbThresholdSweep,
                         ::testing::Values(2.0, 4.0, 8.0));

}  // namespace
}  // namespace d2::core
