// Cross-component DHT integration properties: ring + router + load
// balancer working together the way the D2 system drives them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dht/consistent_hash.h"
#include "dht/load_balance.h"
#include "dht/ring.h"
#include "dht/router.h"

namespace d2::dht {
namespace {

TEST(DhtIntegration, RouterTracksLoadBalanceMoves) {
  // Simulate a sequence of Karger-Ruhl-style moves and verify the router,
  // after rebuild, still resolves every key to the true owner.
  Rng rng(3);
  Ring ring;
  for (int i = 0; i < 64; ++i) {
    Key id = random_node_id(rng);
    while (ring.id_taken(id)) id = random_node_id(rng);
    ring.add(i, id);
  }
  Router router(ring, rng);
  for (int round = 0; round < 20; ++round) {
    // Move a random node to a random fresh position (a leave + rejoin).
    const int node = static_cast<int>(rng.next_below(64));
    Key id = random_node_id(rng);
    while (ring.id_taken(id)) id = random_node_id(rng);
    ring.move(node, id);
    router.rebuild(rng);
    for (int q = 0; q < 20; ++q) {
      const Key k = Key::random(rng);
      EXPECT_EQ(router.lookup(static_cast<int>(rng.next_below(64)), k).owner,
                ring.owner(k));
    }
  }
}

TEST(DhtIntegration, SplitTransfersOwnership) {
  // The core LB step: light node becomes the heavy node's predecessor at
  // the median key; keys at or below the median change owner, keys above
  // stay.
  Ring ring;
  ring.add(0, Key::from_uint64(1000));   // heavy: owns (100, 1000]
  ring.add(1, Key::from_uint64(100));
  const Key median = Key::from_uint64(500);
  ring.move(1, median);  // 1 rejoins as 0's predecessor
  EXPECT_EQ(ring.owner(Key::from_uint64(300)), 1);
  EXPECT_EQ(ring.owner(Key::from_uint64(500)), 1);
  EXPECT_EQ(ring.owner(Key::from_uint64(501)), 0);
  EXPECT_EQ(ring.owner(Key::from_uint64(1000)), 0);
}

TEST(DhtIntegration, RepeatedSplitsConvergeLoad) {
  // Pure policy-level convergence: blocks at sequential keys, nodes split
  // ranges via the LoadBalancer decision function until no probe fires.
  Rng rng(5);
  Ring ring;
  const int n = 16;
  // All nodes start bunched at the top of the key space; blocks live in
  // [0, 64000).
  for (int i = 0; i < n; ++i) {
    ring.add(i, Key::max() - Key::from_uint64(static_cast<std::uint64_t>(i)));
  }
  const int blocks = 64000 / 64;
  auto load_of = [&ring](int node) {
    std::int64_t count = 0;
    for (int b = 0; b < 1000; ++b) {
      if (ring.owner(Key::from_uint64(static_cast<std::uint64_t>(b) * 64)) ==
          node) {
        ++count;
      }
    }
    return count;
  };
  (void)blocks;
  LoadBalancer lb;
  auto median_of = [&](int heavy) -> std::optional<Key> {
    // Median of the heavy node's keys: scan its owned blocks.
    std::vector<Key> keys;
    for (int b = 0; b < 1000; ++b) {
      const Key k = Key::from_uint64(static_cast<std::uint64_t>(b) * 64);
      if (ring.owner(k) == heavy) keys.push_back(k);
    }
    if (keys.size() < 2) return std::nullopt;
    const Key m = keys[keys.size() / 2 - 1];
    if (ring.id_taken(m)) return std::nullopt;
    return m;
  };

  int moves = 0;
  for (int round = 0; round < 4000; ++round) {
    const int a = static_cast<int>(rng.next_below(n));
    const int b = static_cast<int>(rng.next_below(n));
    const auto decision =
        lb.evaluate_probe(a, load_of(a), b, load_of(b), median_of);
    if (decision) {
      ring.move(decision->light_node, decision->new_id);
      ++moves;
    }
  }
  EXPECT_GT(moves, 5);
  // Steady state: max load within ~t of the mean.
  std::int64_t max_load = 0;
  for (int i = 0; i < n; ++i) max_load = std::max(max_load, load_of(i));
  EXPECT_LT(max_load, 1000 / n * 6);
}

TEST(DhtIntegration, HashedKeysBalanceWithoutMercury) {
  // Control: uniformly hashed keys on random node IDs are already
  // reasonably balanced — the reason traditional DHTs don't need active
  // balancing (§1).
  Rng rng(8);
  Ring ring;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    Key id = random_node_id(rng);
    while (ring.id_taken(id)) id = random_node_id(rng);
    ring.add(i, id);
  }
  std::vector<int> counts(n, 0);
  const int blocks = 20000;
  for (int b = 0; b < blocks; ++b) {
    ++counts[static_cast<std::size_t>(
        ring.owner(hashed_key("blk" + std::to_string(b))))];
  }
  int nonzero = 0;
  for (int c : counts) nonzero += c > 0 ? 1 : 0;
  EXPECT_GT(nonzero, n * 9 / 10);
  // With one random ID per node, the largest arc is ~ln(n)/n of the ring
  // (max/mean ~ ln n, with a heavy tail) — loose O(log n) bound.
  const double mean = static_cast<double>(blocks) / n;
  EXPECT_LT(*std::max_element(counts.begin(), counts.end()), mean * 12);
}

}  // namespace
}  // namespace d2::dht
