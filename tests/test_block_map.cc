#include "store/block_map.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace d2::store {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

TEST(BlockMap, InsertAccounting) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  EXPECT_TRUE(m.contains(K(10)));
  EXPECT_EQ(m.block_count(), 1u);
  EXPECT_EQ(m.total_bytes(), 100);
  EXPECT_EQ(m.primary_count(0), 1);
  EXPECT_EQ(m.primary_bytes(0), 100);
  EXPECT_EQ(m.primary_count(1), 0);
  for (int n : {0, 1, 2}) EXPECT_EQ(m.physical_bytes(n), 100);
  EXPECT_EQ(m.physical_bytes(3), 0);
}

TEST(BlockMap, EraseRestoresAccounting) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  m.erase(K(10));
  EXPECT_FALSE(m.contains(K(10)));
  EXPECT_EQ(m.total_bytes(), 0);
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(m.physical_bytes(n), 0);
    EXPECT_EQ(m.primary_count(n), 0);
  }
}

TEST(BlockMap, DuplicateInsertThrows) {
  BlockMap m(3);
  m.insert(K(1), 10, {0});
  EXPECT_THROW(m.insert(K(1), 10, {1}), PreconditionError);
}

TEST(BlockMap, ReassignNewMembersJoinAsPointers) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  m.reassign_replicas(K(10), {0, 1, 3}, 50);
  const BlockState* b = m.find(K(10));
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->replicas.size(), 3u);
  EXPECT_TRUE(b->replicas[0].has_data);
  EXPECT_TRUE(b->replicas[1].has_data);
  EXPECT_FALSE(b->replicas[2].has_data);  // node 3 joined as pointer
  EXPECT_EQ(b->replicas[2].pointer_since, 50);
  // Node 2 left but is kept as a stale holder because node 3 lacks data.
  EXPECT_EQ(b->stale_holders, (std::vector<int>{2}));
  EXPECT_EQ(m.physical_bytes(2), 100);
  EXPECT_EQ(m.physical_bytes(3), 0);
}

TEST(BlockMap, ReassignDropsUnneededDepartingCopy) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  // All new members already have data -> departing copy deleted.
  m.reassign_replicas(K(10), {0, 1}, 50);
  const BlockState* b = m.find(K(10));
  EXPECT_TRUE(b->stale_holders.empty());
  EXPECT_EQ(m.physical_bytes(2), 0);
}

TEST(BlockMap, MarkDataResolvesPointerAndPrunesStale) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  m.reassign_replicas(K(10), {0, 1, 3}, 50);
  m.mark_data(K(10), 3);
  const BlockState* b = m.find(K(10));
  EXPECT_TRUE(b->replicas[2].has_data);
  EXPECT_TRUE(b->stale_holders.empty());      // stale copy at 2 pruned
  EXPECT_EQ(m.physical_bytes(3), 100);
  EXPECT_EQ(m.physical_bytes(2), 0);
}

TEST(BlockMap, PrimaryChangeUpdatesCounts) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  m.reassign_replicas(K(10), {4, 0, 1}, 50);
  EXPECT_EQ(m.primary_count(0), 0);
  EXPECT_EQ(m.primary_count(4), 1);
  EXPECT_EQ(m.primary_bytes(4), 100);
}

TEST(BlockMap, RejoiningStaleHolderKeepsData) {
  BlockMap m(5);
  m.insert(K(10), 100, {0, 1, 2});
  m.reassign_replicas(K(10), {0, 1, 3}, 50);  // 2 -> stale holder
  m.reassign_replicas(K(10), {0, 1, 2}, 60);  // 2 rejoins
  const BlockState* b = m.find(K(10));
  EXPECT_TRUE(b->replicas[2].has_data);  // didn't lose its bytes
  EXPECT_EQ(m.physical_bytes(2), 100);
  EXPECT_TRUE(b->stale_holders.empty());
}

TEST(BlockMap, MarkMissingDowngrades) {
  BlockMap m(3);
  m.insert(K(5), 64, {0, 1});
  m.mark_missing(K(5), 1);
  const BlockState* b = m.find(K(5));
  EXPECT_FALSE(b->replicas[1].has_data);
  EXPECT_EQ(m.physical_bytes(1), 0);
  EXPECT_TRUE(b->any_data());
  m.mark_data(K(5), 1);
  EXPECT_EQ(m.physical_bytes(1), 64);
}

TEST(BlockMap, MedianPrimaryKeySplitsInHalf) {
  BlockMap m(3);
  for (std::uint64_t i = 1; i <= 10; ++i) m.insert(K(i * 10), 8, {0});
  // Arc covering all 10 blocks: median = 5th block's key.
  auto median = m.median_primary_key(K(0), K(200));
  ASSERT_TRUE(median.has_value());
  EXPECT_EQ(*median, K(50));
}

TEST(BlockMap, MedianNeedsTwoBlocks) {
  BlockMap m(3);
  m.insert(K(10), 8, {0});
  EXPECT_FALSE(m.median_primary_key(K(0), K(100)).has_value());
}

TEST(BlockMap, MedianAvoidsCollidingWithArcEnd) {
  BlockMap m(3);
  m.insert(K(10), 8, {0});
  m.insert(K(20), 8, {0});
  // Only two blocks; median would be K(10) != arc end: fine.
  EXPECT_EQ(m.median_primary_key(K(0), K(20)), K(10));
  // If the median equals the arc end it must be rejected.
  BlockMap m2(3);
  m2.insert(K(5), 8, {0});
  m2.insert(K(5).next(), 8, {0});
  // keys {5, 6}; median = keys[0] = 5; arc end 5 -> reject.
  EXPECT_FALSE(m2.median_primary_key(K(4), K(5)).has_value());
}

TEST(BlockMap, ArcIterationNonWrapping) {
  BlockMap m(2);
  for (std::uint64_t i = 1; i <= 5; ++i) m.insert(K(i * 10), 8, {0});
  EXPECT_EQ(m.keys_in_arc(K(10), K(30)), (std::vector<Key>{K(20), K(30)}));
  EXPECT_TRUE(m.keys_in_arc(K(50), K(50)).size() == 5);  // whole ring
}

TEST(BlockMap, ArcIterationWrapping) {
  BlockMap m(2);
  for (std::uint64_t i = 1; i <= 5; ++i) m.insert(K(i * 10), 8, {0});
  auto keys = m.keys_in_arc(K(35), K(15));
  EXPECT_EQ(keys, (std::vector<Key>{K(40), K(50), K(10)}));
}

TEST(BlockMap, NodeHasDataQueries) {
  BlockMap m(4);
  m.insert(K(1), 8, {0, 1});
  const BlockState* b = m.find(K(1));
  EXPECT_TRUE(b->node_has_data(0));
  EXPECT_TRUE(b->is_replica(1));
  EXPECT_FALSE(b->is_replica(2));
  EXPECT_FALSE(b->node_has_data(3));
}

// Accounting invariant sweep: after an arbitrary series of operations, the
// per-node physical byte totals equal what a full recount gives.
class BlockMapInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockMapInvariantSweep, AccountingMatchesRecount) {
  Rng rng(GetParam());
  const int nodes = 8;
  BlockMap m(nodes);
  std::vector<Key> live;
  for (int step = 0; step < 500; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.4 || live.empty()) {
      Key k = Key::random(rng);
      if (m.contains(k)) continue;
      std::vector<int> set;
      const int r = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < r; ++i) {
        int n = static_cast<int>(rng.next_below(nodes));
        if (std::find(set.begin(), set.end(), n) == set.end()) set.push_back(n);
      }
      m.insert(k, 8 + static_cast<Bytes>(rng.next_below(100)), set);
      live.push_back(k);
    } else if (roll < 0.6) {
      const std::size_t i = rng.next_below(live.size());
      m.erase(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
    } else {
      const std::size_t i = rng.next_below(live.size());
      std::vector<int> set;
      const int r = 1 + static_cast<int>(rng.next_below(3));
      for (int j = 0; j < r; ++j) {
        int n = static_cast<int>(rng.next_below(nodes));
        if (std::find(set.begin(), set.end(), n) == set.end()) set.push_back(n);
      }
      m.reassign_replicas(live[i], set, step);
      // Resolve some pointers.
      const BlockState* b = m.find(live[i]);
      for (const Replica& rep : b->replicas) {
        if (!rep.has_data && rng.bernoulli(0.5)) {
          m.mark_data(live[i], rep.node);
          break;
        }
      }
    }
  }
  // Recount.
  std::vector<Bytes> phys(nodes, 0), prim_bytes(nodes, 0);
  std::vector<std::int64_t> prim_count(nodes, 0);
  Bytes total = 0;
  m.for_each_block([&](const Key&, const BlockState& b) {
    total += b.size;
    prim_count[static_cast<std::size_t>(b.replicas.front().node)] += 1;
    prim_bytes[static_cast<std::size_t>(b.replicas.front().node)] += b.size;
    for (const Replica& r : b.replicas) {
      if (r.has_data) phys[static_cast<std::size_t>(r.node)] += b.size;
    }
    for (int n : b.stale_holders) phys[static_cast<std::size_t>(n)] += b.size;
  });
  EXPECT_EQ(m.total_bytes(), total);
  for (int n = 0; n < nodes; ++n) {
    EXPECT_EQ(m.physical_bytes(n), phys[static_cast<std::size_t>(n)]) << n;
    EXPECT_EQ(m.primary_bytes(n), prim_bytes[static_cast<std::size_t>(n)]) << n;
    EXPECT_EQ(m.primary_count(n), prim_count[static_cast<std::size_t>(n)]) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockMapInvariantSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace d2::store
