#include "store/lookup_cache.h"

#include <gtest/gtest.h>

namespace d2::store {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

TEST(LookupCache, FindsKeysInCachedArc) {
  LookupCache c;
  c.insert(0, /*node=*/7, K(100), K(200));
  EXPECT_EQ(c.find(1, K(150)), 7);
  EXPECT_EQ(c.find(1, K(200)), 7);   // inclusive end
  EXPECT_EQ(c.find(1, K(100)), std::nullopt);  // exclusive start
  EXPECT_EQ(c.find(1, K(250)), std::nullopt);
}

TEST(LookupCache, EntriesExpireAfterTtl) {
  LookupCache c(seconds(10));
  c.insert(0, 7, K(100), K(200));
  EXPECT_TRUE(c.find(seconds(9), K(150)).has_value());
  EXPECT_FALSE(c.find(seconds(10), K(150)).has_value());
  EXPECT_EQ(c.size(), 0u);  // expired entry evicted on access
}

TEST(LookupCache, NewerEntryEvictsOverlap) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  // A node moved; the range got split.
  c.insert(1, 9, K(100), K(150));
  EXPECT_EQ(c.find(2, K(120)), 9);
  // The old overlapping entry was evicted wholesale.
  EXPECT_EQ(c.find(2, K(180)), std::nullopt);
}

TEST(LookupCache, DisjointEntriesCoexist) {
  LookupCache c;
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  c.insert(0, 3, K(300), K(400));
  EXPECT_EQ(c.find(1, K(150)), 1);
  EXPECT_EQ(c.find(1, K(250)), 2);
  EXPECT_EQ(c.find(1, K(350)), 3);
  EXPECT_EQ(c.size(), 3u);
}

TEST(LookupCache, WrappingArcSplitsAtTop) {
  LookupCache c;
  // Node owns (MAX-100, 50] — wraps through zero.
  c.insert(0, 4, Key::max() - K(100), K(50));
  EXPECT_EQ(c.find(1, Key::max()), 4);
  EXPECT_EQ(c.find(1, Key::max() - K(50)), 4);
  EXPECT_EQ(c.find(1, K(0)), 4);
  EXPECT_EQ(c.find(1, K(50)), 4);
  EXPECT_EQ(c.find(1, K(51)), std::nullopt);
}

TEST(LookupCache, WholeRingArc) {
  LookupCache c;
  c.insert(0, 5, K(42), K(42));  // single-node ring
  EXPECT_EQ(c.find(1, K(0)), 5);
  EXPECT_EQ(c.find(1, Key::max()), 5);
  EXPECT_EQ(c.find(1, K(42)), 5);
}

TEST(LookupCache, InvalidateRemovesCoveringEntry) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  c.invalidate(1, K(150));
  EXPECT_EQ(c.find(1, K(150)), std::nullopt);
}

TEST(LookupCache, InvalidateMissIsNoop) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  c.invalidate(1, K(300));
  EXPECT_EQ(c.find(1, K(150)), 7);
}

TEST(LookupCache, InvalidateDropsExpiredNeighbors) {
  LookupCache c(seconds(10));
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  c.insert(seconds(9), 3, K(300), K(400));  // still fresh at t=12s
  // Invalidating the fresh entry also sweeps the two expired neighbors.
  c.invalidate(seconds(12), K(350));
  EXPECT_EQ(c.size(), 0u);
}

TEST(LookupCache, ExpireEntriesDropsOnlyElapsed) {
  LookupCache c(seconds(10));
  c.insert(0, 1, K(100), K(200));
  c.insert(seconds(5), 2, K(300), K(400));
  EXPECT_EQ(c.expire_entries(seconds(12)), 1u);  // first expired at 10s
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(seconds(12), K(350)), 2);
}

TEST(LookupCache, LazySweepBoundsStaleEntries) {
  // A client that keeps inserting fresh disjoint ranges but only ever
  // queries the newest one must not accrete the old ones forever.
  LookupCache c(seconds(10));
  for (std::uint64_t i = 0; i < 100; ++i) {
    const SimTime now = seconds(i);
    c.insert(now, static_cast<int>(i), K(1000 * i), K(1000 * i + 500));
    EXPECT_EQ(c.find(now, K(1000 * i + 100)), static_cast<int>(i));
  }
  // TTL is 10 s and one lazy sweep runs per TTL interval, so at most
  // ~2 TTLs' worth of insertions can be resident at any point.
  EXPECT_LE(c.size(), 21u);
}

TEST(LookupCache, ExpirationMetricsCount) {
  obs::Registry r;
  LookupCache c(seconds(10));
  c.bind_metrics(&r);
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(300), K(400));
  EXPECT_EQ(c.expire_entries(seconds(30)), 2u);
  ASSERT_NE(r.find_counter("store.lookup_cache.expirations"), nullptr);
  EXPECT_EQ(r.find_counter("store.lookup_cache.expirations")->value(), 2);
}

TEST(LookupCache, StatsTrackHitsAndMisses) {
  LookupCache c;
  c.record_hit();
  c.record_hit();
  c.record_miss();
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_NEAR(c.miss_rate(), 1.0 / 3.0, 1e-12);
  c.reset_stats();
  EXPECT_EQ(c.miss_rate(), 0.0);
}

TEST(LookupCache, RefreshedEntryGetsNewTtl) {
  LookupCache c(seconds(10));
  c.insert(0, 7, K(100), K(200));
  c.insert(seconds(8), 7, K(100), K(200));  // re-learned
  EXPECT_TRUE(c.find(seconds(15), K(150)).has_value());
}

// --- Edge cases pinned before the flat (chunked-index) rewrite: the
// rewrite must preserve each of these behaviours exactly, because cache
// hit/miss sequences feed the seeded experiment outputs. ---

TEST(LookupCache, WrapFromMaxKeyInsertsOnlyLowPiece) {
  LookupCache c;
  // arc_from == MAX: the wrapping arc (MAX, 50] is just [MIN, 50] — there
  // is no (MAX, MAX] piece to insert.
  c.insert(0, 4, Key::max(), K(50));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(1, K(0)), 4);
  EXPECT_EQ(c.find(1, K(50)), 4);
  EXPECT_EQ(c.find(1, K(51)), std::nullopt);
  EXPECT_EQ(c.find(1, Key::max()), std::nullopt);  // exclusive start
}

TEST(LookupCache, WrappingArcEvictsOverlapInBothPieces) {
  LookupCache c;
  c.insert(0, 1, Key::max() - K(200), Key::max() - K(100));  // high piece
  c.insert(0, 2, K(10), K(20));                              // low piece
  c.insert(0, 3, K(500), K(600));                            // untouched
  // (MAX-150, 15] wraps: evicts the high entry (overlap near MAX) and the
  // low entry (overlap at [MIN, 15]) but not the disjoint middle one.
  c.insert(1, 9, Key::max() - K(150), K(15));
  EXPECT_EQ(c.find(2, Key::max() - K(120)), 9);
  EXPECT_EQ(c.find(2, K(12)), 9);
  EXPECT_EQ(c.find(2, K(18)), std::nullopt);  // old low entry evicted
  EXPECT_EQ(c.find(2, K(550)), 3);
  EXPECT_EQ(c.size(), 3u);  // two wrap pieces + the middle entry
}

TEST(LookupCache, WholeRingEntryEvictsEverything) {
  LookupCache c;
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(300), K(400));
  c.insert(1, 5, K(42), K(42));  // whole ring: overlaps every entry
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(2, K(150)), 5);
  EXPECT_EQ(c.find(2, K(350)), 5);
  EXPECT_EQ(c.find(2, Key::min()), 5);
  EXPECT_EQ(c.find(2, Key::max()), 5);
}

TEST(LookupCache, WholeRingEntryIsEvictedByAnyInsert) {
  LookupCache c;
  c.insert(0, 5, K(42), K(42));  // whole ring
  c.insert(1, 7, K(100), K(200));
  EXPECT_EQ(c.size(), 1u);       // whole-ring entry overlapped -> evicted
  EXPECT_EQ(c.find(2, K(150)), 7);
  EXPECT_EQ(c.find(2, K(300)), std::nullopt);
}

TEST(LookupCache, AdjacentArcsDoNotEvictEachOther) {
  LookupCache c;
  // (100, 200] then (200, 300]: they share only the boundary point 200,
  // which belongs to the first arc, so both survive.
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.find(1, K(200)), 1);
  EXPECT_EQ(c.find(1, K(201)), 2);
}

TEST(LookupCache, OneKeyOverlapAtLowBoundaryEvicts) {
  LookupCache c;
  c.insert(0, 1, K(100), K(200));
  // (199, 300] covers key 200 = the existing entry's inclusive end.
  c.insert(1, 2, K(199), K(300));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(2, K(150)), std::nullopt);
  EXPECT_EQ(c.find(2, K(200)), 2);
}

TEST(LookupCache, OneKeyOverlapAtHighBoundaryEvicts) {
  LookupCache c;
  c.insert(0, 1, K(200), K(300));
  // (100, 201] covers key 201 = the existing entry's first key.
  c.insert(1, 2, K(100), K(201));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(2, K(250)), std::nullopt);
  EXPECT_EQ(c.find(2, K(201)), 2);
}

TEST(LookupCache, InsertCoveringSeveralEntriesEvictsAll) {
  LookupCache c;
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  c.insert(0, 3, K(300), K(400));
  c.insert(0, 4, K(500), K(600));
  c.insert(1, 9, K(150), K(450));  // spans entries 1-3 (partially or fully)
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.find(2, K(250)), 9);
  EXPECT_EQ(c.find(2, K(550)), 4);
}

TEST(LookupCache, ManyArcsRingOrder) {
  // Simulate caching a full ring of 100 node arcs and querying each.
  LookupCache c;
  for (std::uint64_t i = 0; i < 100; ++i) {
    c.insert(0, static_cast<int>(i), K(i * 10), K((i + 1) * 10));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c.find(1, K(i * 10 + 5)), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace d2::store
