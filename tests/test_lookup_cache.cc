#include "store/lookup_cache.h"

#include <gtest/gtest.h>

namespace d2::store {
namespace {

Key K(std::uint64_t v) { return Key::from_uint64(v); }

TEST(LookupCache, FindsKeysInCachedArc) {
  LookupCache c;
  c.insert(0, /*node=*/7, K(100), K(200));
  EXPECT_EQ(c.find(1, K(150)), 7);
  EXPECT_EQ(c.find(1, K(200)), 7);   // inclusive end
  EXPECT_EQ(c.find(1, K(100)), std::nullopt);  // exclusive start
  EXPECT_EQ(c.find(1, K(250)), std::nullopt);
}

TEST(LookupCache, EntriesExpireAfterTtl) {
  LookupCache c(seconds(10));
  c.insert(0, 7, K(100), K(200));
  EXPECT_TRUE(c.find(seconds(9), K(150)).has_value());
  EXPECT_FALSE(c.find(seconds(10), K(150)).has_value());
  EXPECT_EQ(c.size(), 0u);  // expired entry evicted on access
}

TEST(LookupCache, NewerEntryEvictsOverlap) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  // A node moved; the range got split.
  c.insert(1, 9, K(100), K(150));
  EXPECT_EQ(c.find(2, K(120)), 9);
  // The old overlapping entry was evicted wholesale.
  EXPECT_EQ(c.find(2, K(180)), std::nullopt);
}

TEST(LookupCache, DisjointEntriesCoexist) {
  LookupCache c;
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  c.insert(0, 3, K(300), K(400));
  EXPECT_EQ(c.find(1, K(150)), 1);
  EXPECT_EQ(c.find(1, K(250)), 2);
  EXPECT_EQ(c.find(1, K(350)), 3);
  EXPECT_EQ(c.size(), 3u);
}

TEST(LookupCache, WrappingArcSplitsAtTop) {
  LookupCache c;
  // Node owns (MAX-100, 50] — wraps through zero.
  c.insert(0, 4, Key::max() - K(100), K(50));
  EXPECT_EQ(c.find(1, Key::max()), 4);
  EXPECT_EQ(c.find(1, Key::max() - K(50)), 4);
  EXPECT_EQ(c.find(1, K(0)), 4);
  EXPECT_EQ(c.find(1, K(50)), 4);
  EXPECT_EQ(c.find(1, K(51)), std::nullopt);
}

TEST(LookupCache, WholeRingArc) {
  LookupCache c;
  c.insert(0, 5, K(42), K(42));  // single-node ring
  EXPECT_EQ(c.find(1, K(0)), 5);
  EXPECT_EQ(c.find(1, Key::max()), 5);
  EXPECT_EQ(c.find(1, K(42)), 5);
}

TEST(LookupCache, InvalidateRemovesCoveringEntry) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  c.invalidate(1, K(150));
  EXPECT_EQ(c.find(1, K(150)), std::nullopt);
}

TEST(LookupCache, InvalidateMissIsNoop) {
  LookupCache c;
  c.insert(0, 7, K(100), K(200));
  c.invalidate(1, K(300));
  EXPECT_EQ(c.find(1, K(150)), 7);
}

TEST(LookupCache, InvalidateDropsExpiredNeighbors) {
  LookupCache c(seconds(10));
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(200), K(300));
  c.insert(seconds(9), 3, K(300), K(400));  // still fresh at t=12s
  // Invalidating the fresh entry also sweeps the two expired neighbors.
  c.invalidate(seconds(12), K(350));
  EXPECT_EQ(c.size(), 0u);
}

TEST(LookupCache, ExpireEntriesDropsOnlyElapsed) {
  LookupCache c(seconds(10));
  c.insert(0, 1, K(100), K(200));
  c.insert(seconds(5), 2, K(300), K(400));
  EXPECT_EQ(c.expire_entries(seconds(12)), 1u);  // first expired at 10s
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(seconds(12), K(350)), 2);
}

TEST(LookupCache, LazySweepBoundsStaleEntries) {
  // A client that keeps inserting fresh disjoint ranges but only ever
  // queries the newest one must not accrete the old ones forever.
  LookupCache c(seconds(10));
  for (std::uint64_t i = 0; i < 100; ++i) {
    const SimTime now = seconds(i);
    c.insert(now, static_cast<int>(i), K(1000 * i), K(1000 * i + 500));
    EXPECT_EQ(c.find(now, K(1000 * i + 100)), static_cast<int>(i));
  }
  // TTL is 10 s and one lazy sweep runs per TTL interval, so at most
  // ~2 TTLs' worth of insertions can be resident at any point.
  EXPECT_LE(c.size(), 21u);
}

TEST(LookupCache, ExpirationMetricsCount) {
  obs::Registry r;
  LookupCache c(seconds(10));
  c.bind_metrics(&r);
  c.insert(0, 1, K(100), K(200));
  c.insert(0, 2, K(300), K(400));
  EXPECT_EQ(c.expire_entries(seconds(30)), 2u);
  ASSERT_NE(r.find_counter("store.lookup_cache.expirations"), nullptr);
  EXPECT_EQ(r.find_counter("store.lookup_cache.expirations")->value(), 2);
}

TEST(LookupCache, StatsTrackHitsAndMisses) {
  LookupCache c;
  c.record_hit();
  c.record_hit();
  c.record_miss();
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_NEAR(c.miss_rate(), 1.0 / 3.0, 1e-12);
  c.reset_stats();
  EXPECT_EQ(c.miss_rate(), 0.0);
}

TEST(LookupCache, RefreshedEntryGetsNewTtl) {
  LookupCache c(seconds(10));
  c.insert(0, 7, K(100), K(200));
  c.insert(seconds(8), 7, K(100), K(200));  // re-learned
  EXPECT_TRUE(c.find(seconds(15), K(150)).has_value());
}

TEST(LookupCache, ManyArcsRingOrder) {
  // Simulate caching a full ring of 100 node arcs and querying each.
  LookupCache c;
  for (std::uint64_t i = 0; i < 100; ++i) {
    c.insert(0, static_cast<int>(i), K(i * 10), K((i + 1) * 10));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(c.find(1, K(i * 10 + 5)), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace d2::store
