// RepairEngine: self-heal behaviour, determinism across arc settings,
// and corruption-injection audits (core/repair.h).

#include "core/repair.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/assert.h"

namespace d2::core {

/// Corruption-injection hooks (mirrors BlockMapTestPeer / RingTestPeer).
struct RepairEngineTestPeer {
  static store::BlockMap& map(RepairEngine& e) { return e.map_; }
  static std::vector<std::unordered_map<Key, RepairEngine::FragSet, KeyHash>>&
  frag_shards(RepairEngine& e) {  // d2-lint: allow(unordered-container)
    return e.frag_shards_;
  }
  static std::set<std::pair<Key, int>>& inflight(RepairEngine& e) {
    return e.inflight_;
  }
  static std::map<Key, SimTime>& degraded_since(RepairEngine& e) {
    return e.degraded_since_;
  }
  static std::set<Key>& dead(RepairEngine& e) { return e.dead_; }
  static Bytes& repair_bytes(RepairEngine& e) { return e.repair_bytes_; }
  static std::vector<Key> keys(RepairEngine& e) {
    std::vector<Key> out;
    e.map_.for_each_block(
        [&](const Key& k, const store::BlockState&) { out.push_back(k); });
    return out;
  }
  static bool write(RepairEngine& e, const Key& k, SimTime now) {
    return e.write_block(k, now, /*in_lane=*/false);
  }
  static void node_down(RepairEngine& e, int node, bool lose_data) {
    e.on_node_down(node, lose_data);
  }
  static int member_count(RepairEngine& e, const Key& k) {
    const store::BlockState* b = e.map_.find_mutable(k);
    return b == nullptr ? 0 : static_cast<int>(b->replicas.size());
  }
};

namespace {

RepairConfig small_config(bool erasure) {
  RepairConfig cfg;
  cfg.node_count = 24;
  cfg.erasure = erasure;
  cfg.replicas = 3;
  cfg.ec_data_fragments = 4;
  cfg.ec_parity_fragments = 2;
  cfg.payload_bytes = 64;
  cfg.detect_delay = minutes(2);
  cfg.retry_delay = minutes(1);
  cfg.seed = 9;
  return cfg;
}

DurabilityParams small_scenario(bool erasure, int arcs, int workers) {
  DurabilityParams p;
  p.repair = small_config(erasure);
  p.repair.arcs = arcs;
  p.arc_workers = workers;
  p.blocks_per_node = 8;
  p.writes_per_node_per_day = 12.0;
  p.failure.duration = days(1);
  p.failure.mttf_hours = 18.0;
  p.failure.mttr_hours = 2.0;
  p.failure.correlated_events_per_day = 1.0;
  p.failure.correlated_fraction = 0.2;
  p.drain = hours(6);
  p.failure_seed = 77;
  return p;
}

std::string fingerprint(const DurabilityResult& r) {
  std::ostringstream os;
  os << r.stats.blocks << '|' << r.stats.blocks_lost << '|'
     << r.stats.repair_bytes << '|' << r.stats.user_write_bytes << '|'
     << r.stats.repairs_started << '|' << r.stats.repairs_completed << '|'
     << r.stats.repair_retries << '|' << r.stats.verified_reconstructions
     << '|' << r.stats.writes_failed << '|' << r.stats.mttr_episodes << '|'
     << r.stats.mttr_mean_s << '|' << r.stats.mttr_p99_s << '|'
     << r.stats.open_episodes << '|' << r.events;
  return os.str();
}

TEST(RepairEngine, SelfHealsThroughAFailureWeek) {
  const DurabilityResult rep = run_durability(small_scenario(false, 1, 1));
  EXPECT_GT(rep.stats.blocks, 150u);
  EXPECT_GT(rep.stats.repairs_completed, 0u);
  // Every completed reconstruction was decode-verified against a fresh
  // encode of the block's true payload.
  EXPECT_EQ(rep.stats.verified_reconstructions, rep.stats.repairs_completed);
  EXPECT_GT(rep.stats.mttr_episodes, 0u);
  EXPECT_GT(rep.stats.repair_bytes, 0);
  // With a post-trace drain every surviving block must converge back to
  // full protection — a lingering episode means a repair chain leaked.
  EXPECT_EQ(rep.stats.open_episodes, 0u);
  // Individual failures with working repair should not lose data at this
  // small scale / short horizon.
  EXPECT_LT(rep.unrecoverable_fraction, 0.05);

  const DurabilityResult ec = run_durability(small_scenario(true, 1, 1));
  EXPECT_GT(ec.stats.repairs_completed, 0u);
  EXPECT_EQ(ec.stats.verified_reconstructions, ec.stats.repairs_completed);
  EXPECT_EQ(ec.stats.open_episodes, 0u);
  // rs-4-2 spreads each block over 6 holders vs rep3's 3, so the same
  // trace degrades more blocks — the classic wide-stripe repair cost.
  EXPECT_GT(ec.stats.repairs_completed, rep.stats.repairs_completed);
}

TEST(RepairEngine, ByteIdenticalAcrossArcsAndWorkers) {
  const std::string base = fingerprint(run_durability(small_scenario(true, 1, 1)));
  EXPECT_EQ(base, fingerprint(run_durability(small_scenario(true, 8, 1))));
  EXPECT_EQ(base, fingerprint(run_durability(small_scenario(true, 8, 4))));
  const std::string rep = fingerprint(run_durability(small_scenario(false, 1, 1)));
  EXPECT_EQ(rep, fingerprint(run_durability(small_scenario(false, 4, 2))));
}

TEST(RepairEngine, TotalPermanentLossKillsEveryBlock) {
  RepairConfig cfg = small_config(true);
  cfg.data_loss_fraction = 1.0;
  sim::Simulator sim;
  RepairEngine engine(cfg, sim);
  engine.populate(100);
  // Every node dies (with disk loss) at t = 1h and never recovers within
  // the trace: all fragments are destroyed, so every block is dead.
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int node = 0; node < cfg.node_count; ++node) {
    downs.push_back({node, hours(1), days(1)});
  }
  const sim::FailureTrace trace =
      sim::FailureTrace::from_intervals(cfg.node_count, days(1), downs);
  engine.attach_failure_trace(trace);
  sim.run_until(hours(12));
  engine.check_invariants();
  const RepairStats s = engine.snapshot();
  EXPECT_EQ(s.blocks, 100u);
  EXPECT_EQ(s.blocks_lost, 100u);
}

TEST(RepairEngine, TransientOutageLosesNothingAndCloses) {
  RepairConfig cfg = small_config(true);
  cfg.data_loss_fraction = 0.0;  // reboots only, disks survive
  sim::Simulator sim;
  RepairEngine engine(cfg, sim);
  engine.populate(200);
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int node = 0; node < cfg.node_count; node += 2) {
    downs.push_back({node, hours(2), hours(5)});
  }
  const sim::FailureTrace trace =
      sim::FailureTrace::from_intervals(cfg.node_count, days(1), downs);
  engine.attach_failure_trace(trace);
  sim.run_until(days(1));
  engine.check_invariants();
  const RepairStats s = engine.snapshot();
  EXPECT_EQ(s.blocks_lost, 0u);
  EXPECT_EQ(s.open_episodes, 0u);  // everything re-protected by trace end
  EXPECT_GT(s.mttr_episodes, 0u);
}

TEST(RepairEngine, WriteIntoExtendedSetIsBornProtected) {
  // The target set extends past down nodes until n up members, so a
  // write can carry a down, data-less member yet place all n fragments
  // on up nodes. Such a block is fully protected at birth and must not
  // open a (spurious) MTTR episode.
  sim::Simulator sim;
  RepairEngine engine(small_config(false), sim);
  RepairEngineTestPeer::node_down(engine, 5, /*lose_data=*/false);
  Rng kr(123);
  bool saw_extended = false;
  for (int i = 0; i < 64; ++i) {
    const Key key = Key::random(kr);
    ASSERT_TRUE(RepairEngineTestPeer::write(engine, key, sim.now()));
    if (RepairEngineTestPeer::member_count(engine, key) > 3) {
      saw_extended = true;
    }
  }
  ASSERT_TRUE(saw_extended);  // at least one set routed around node 5
  EXPECT_TRUE(RepairEngineTestPeer::degraded_since(engine).empty());
  EXPECT_EQ(engine.snapshot().mttr_episodes, 0u);
  engine.check_invariants();
}

// --- corruption injection: every queue/sidecar invariant must trip ---

class RepairAuditTest : public ::testing::Test {
 protected:
  RepairAuditTest() : engine_(small_config(true), sim_) {
    engine_.populate(40);
    engine_.check_invariants();  // clean baseline
    keys_ = RepairEngineTestPeer::keys(engine_);
  }

  sim::Simulator sim_;
  RepairEngine engine_;
  std::vector<Key> keys_;
};

TEST_F(RepairAuditTest, DetectsVanishedFragment) {
  auto& shards = RepairEngineTestPeer::frag_shards(engine_);
  const Key& k = keys_.front();
  auto& fs = shards[static_cast<std::size_t>(
      RepairEngineTestPeer::map(engine_).arc_of(k))][k];
  fs.frags.pop_back();  // a member still claims has_data for it
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

TEST_F(RepairAuditTest, DetectsUntrackedInflightMember) {
  store::BlockState* b =
      RepairEngineTestPeer::map(engine_).find_mutable(keys_.front());
  ASSERT_NE(b, nullptr);
  b->replicas.front().fetch_in_flight = true;  // not in the repair queue
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

TEST_F(RepairAuditTest, DetectsGhostQueueEntry) {
  RepairEngineTestPeer::inflight(engine_).insert({Key::from_uint64(1), 0});
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

TEST_F(RepairAuditTest, DetectsBogusEpisode) {
  // A fully protected block must not carry an open degradation episode.
  RepairEngineTestPeer::degraded_since(engine_).emplace(keys_.front(), 0);
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

TEST_F(RepairAuditTest, DetectsFalseDeath) {
  RepairEngineTestPeer::dead(engine_).insert(keys_.front());
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

TEST_F(RepairAuditTest, DetectsByteAccountingDrift) {
  RepairEngineTestPeer::repair_bytes(engine_) += 1;
  EXPECT_THROW(engine_.check_invariants(), InvariantError);
}

}  // namespace
}  // namespace d2::core
