#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace d2::common {
namespace {

TEST(Arena, AllocReturnsAlignedDistinctBlocks) {
  Arena a;
  char* p1 = a.alloc(10);
  char* p2 = a.alloc(10);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % alignof(std::max_align_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % alignof(std::max_align_t),
            0u);
  char* p8 = a.alloc(3, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  // Writes to one block must not clobber another.
  std::memset(p1, 0xaa, 10);
  std::memset(p2, 0xbb, 10);
  EXPECT_EQ(static_cast<unsigned char>(p1[9]), 0xaa);
  EXPECT_EQ(static_cast<unsigned char>(p2[0]), 0xbb);
}

TEST(Arena, InternCopiesAndOutlivesTheSource) {
  Arena a;
  std::string_view v;
  {
    std::string s = "hello, arena interning";
    v = a.intern(s);
    s.assign(s.size(), 'x');  // clobber the source
  }
  EXPECT_EQ(v, "hello, arena interning");
  // Each intern is a fresh copy (no dedup): same content, new storage.
  const std::string_view w = a.intern(v);
  EXPECT_EQ(w, v);
  EXPECT_NE(w.data(), v.data());
  EXPECT_EQ(a.intern("").size(), 0u);
}

TEST(Arena, PointersSurviveChunkGrowthAndMove) {
  Arena a(/*chunk_bytes=*/256);
  std::vector<std::string_view> views;
  for (int i = 0; i < 200; ++i) {
    views.push_back(a.intern("path/to/file" + std::to_string(i)));
  }
  // Growth allocated many chunks; earlier views must still be intact.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)],
              "path/to/file" + std::to_string(i));
  }
  // Moving the arena moves chunk ownership, not chunk storage.
  Arena b = std::move(a);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(views[static_cast<std::size_t>(i)],
              "path/to/file" + std::to_string(i));
  }
  EXPECT_GT(b.bytes_used(), 0u);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena a(/*chunk_bytes=*/64);
  char* small1 = a.alloc(8);
  char* big = a.alloc(1000);  // larger than a whole chunk
  char* small2 = a.alloc(8);
  std::memset(big, 0x5a, 1000);
  EXPECT_EQ(static_cast<unsigned char>(big[999]), 0x5a);
  // The oversized allocation must not reset the current bump chunk:
  // small allocations before and after stay densely packed.
  EXPECT_EQ(small2, small1 + 16);  // 8 rounded up to max_align
  EXPECT_GE(a.bytes_reserved(), a.bytes_used());
  EXPECT_GE(a.bytes_used(), 1016u);
}

TEST(Arena, AllocArrayValueInitializes) {
  Arena a;
  const std::size_t n = 37;
  int* xs = a.alloc_array<int>(n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xs[i], 0);
  xs[0] = 1;
  xs[n - 1] = 2;
  // A second array does not overlap the first.
  int* ys = a.alloc_array<int>(n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ys[i], 0);
  EXPECT_EQ(xs[0], 1);
  EXPECT_EQ(xs[n - 1], 2);
}

}  // namespace
}  // namespace d2::common
