#include "core/locality_analysis.h"

#include <gtest/gtest.h>

namespace d2::core {
namespace {

// Small workloads so the analysis runs in milliseconds.
trace::HarvardParams harvard_params() {
  trace::HarvardParams p;
  p.users = 8;
  p.days = 2;
  p.target_active_bytes = mB(48);
  p.accesses_per_user_day = 300;
  p.seed = 21;
  return p;
}

LocalityParams small_nodes() {
  LocalityParams p;
  p.node_capacity = mB(2);  // scaled-down 250MB so we get many nodes
  return p;
}

TEST(LocalityAnalysis, HarvardOrderedBeatsTraditional) {
  trace::HarvardGenerator gen(harvard_params());
  const auto accesses = LocalityAnalysis::from_harvard(gen);
  ASSERT_FALSE(accesses.empty());
  const LocalityResult r = LocalityAnalysis::analyze(accesses, small_nodes());
  // Fig 3's shape: ordered well below traditional; lower bound below both.
  EXPECT_LT(r.ordered_nodes_per_user_hour, r.traditional_nodes_per_user_hour * 0.5);
  EXPECT_LE(r.lower_bound_nodes_per_user_hour, r.ordered_nodes_per_user_hour + 1e-9);
  EXPECT_GE(r.lower_bound_nodes_per_user_hour, 1.0);
}

TEST(LocalityAnalysis, HpOrderedBeatsTraditional) {
  trace::HpParams p;
  p.apps = 10;
  p.days = 2;
  p.accesses_per_app_day = 1500;
  trace::HpGenerator gen(p);
  const auto accesses = LocalityAnalysis::from_hp(gen);
  const LocalityResult r = LocalityAnalysis::analyze(accesses, small_nodes());
  EXPECT_LT(r.ordered_nodes_per_user_hour, r.traditional_nodes_per_user_hour);
}

TEST(LocalityAnalysis, WebOrderedBeatsTraditional) {
  trace::WebParams p;
  p.clients = 15;
  p.days = 2;
  p.sites = 80;
  p.requests_per_client_day = 250;
  trace::WebGenerator gen(p);
  const auto accesses = LocalityAnalysis::from_web(gen);
  const LocalityResult r = LocalityAnalysis::analyze(accesses, small_nodes());
  EXPECT_LT(r.ordered_nodes_per_user_hour, r.traditional_nodes_per_user_hour);
}

TEST(LocalityAnalysis, NormalizationConsistent) {
  trace::HarvardGenerator gen(harvard_params());
  const auto accesses = LocalityAnalysis::from_harvard(gen);
  const LocalityResult r = LocalityAnalysis::analyze(accesses, small_nodes());
  EXPECT_NEAR(r.ordered_normalized(),
              r.ordered_nodes_per_user_hour / r.traditional_nodes_per_user_hour,
              1e-12);
  EXPECT_LE(r.lower_bound_normalized(), r.ordered_normalized() + 1e-12);
}

TEST(LocalityAnalysis, LowerBoundIsFloorOfBlockCount) {
  // Two users, few blocks, tiny nodes: hand-checkable.
  std::vector<BlockAccess> accesses;
  for (int b = 0; b < 10; ++b) {
    accesses.push_back({seconds(b), 0, "u0/file" + std::to_string(b)});
  }
  LocalityParams p;
  p.block_size = kB(8);
  p.node_capacity = kB(8) * 4;  // 4 blocks per node
  const LocalityResult r = LocalityAnalysis::analyze(accesses, p);
  // 10 blocks, 4 per node -> lower bound ceil(10/4) = 3 nodes.
  EXPECT_DOUBLE_EQ(r.lower_bound_nodes_per_user_hour, 3.0);
  EXPECT_EQ(r.distinct_blocks, 10u);
  EXPECT_EQ(r.nodes, 3);
}

TEST(LocalityAnalysis, OrderedPerfectForSortedAccess) {
  // A user touching an alphabetical run of blocks gets the lower bound
  // under the ordered placement.
  std::vector<BlockAccess> accesses;
  for (int b = 0; b < 8; ++b) {
    accesses.push_back(
        {seconds(b), 0, "dir/f" + std::to_string(b)});  // f0..f7 sorted
  }
  LocalityParams p;
  p.block_size = kB(8);
  p.node_capacity = kB(8) * 4;
  const LocalityResult r = LocalityAnalysis::analyze(accesses, p);
  EXPECT_DOUBLE_EQ(r.ordered_nodes_per_user_hour, 2.0);
  EXPECT_DOUBLE_EQ(r.lower_bound_nodes_per_user_hour, 2.0);
}

TEST(LocalityAnalysis, FromHarvardExpandsBlocks) {
  trace::HarvardGenerator gen(harvard_params());
  const auto accesses = LocalityAnalysis::from_harvard(gen);
  // More block accesses than records (multi-block reads expand).
  EXPECT_GT(accesses.size(), gen.records().size());
}

}  // namespace
}  // namespace d2::core
