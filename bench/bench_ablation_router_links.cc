// Ablation: routing-table size (k long links per node).
//
// Mercury keeps k = O(log n) harmonic links; this sweep measures lookup
// hop counts against k on uniform and on heavily skewed (post-balancing)
// node ID distributions, confirming routing stays logarithmic in both.
#include <cmath>

#include "bench_common.h"
#include "dht/consistent_hash.h"
#include "dht/router.h"

using namespace d2;

namespace {

double mean_hops(dht::Router& router, Rng& rng, int n) {
  double total = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const Key k = Key::random(rng);
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    total += router.lookup(src, k).hops;
  }
  return total / trials;
}

}  // namespace

int main() {
  bench::print_header("Ablation: router long links per node",
                      "design choice from Section 6 (Mercury routing)");

  const int n = 512;
  std::printf("%-6s %18s %18s\n", "k", "uniform IDs", "skewed IDs");
  for (const int k : {1, 2, 4, 9, 18, 36}) {
    Rng rng(7);
    // Uniform ring.
    dht::Ring uniform;
    for (int i = 0; i < n; ++i) {
      Key id = dht::random_node_id(rng);
      while (uniform.id_taken(id)) id = dht::random_node_id(rng);
      uniform.add(i, id);
    }
    dht::Router r1(uniform, rng, k);
    const double h1 = mean_hops(r1, rng, n);

    // Skewed ring: all IDs inside a 2^-40 fraction of the key space, as
    // after load balancing a single hot volume.
    dht::Ring skewed;
    for (int i = 0; i < n; ++i) {
      skewed.add(i, Key::from_uint64(1'000'000 + static_cast<std::uint64_t>(i) *
                                                     997));
    }
    dht::Router r2(skewed, rng, k);
    const double h2 = mean_hops(r2, rng, n);

    std::printf("%-6d %18.1f %18.1f\n", k, h1, h2);
  }
  std::printf(
      "\nexpected: hops ~ O(log^2 n / k); k = ceil(log2 n) = %d gives\n"
      "near-minimal hops, and skewed ID distributions route just as well\n"
      "because links are sampled by ring rank, not key distance.\n",
      static_cast<int>(std::ceil(std::log2(n))));
  return 0;
}
