// Micro-benchmarks (google-benchmark) for the hot primitives: key
// arithmetic, Fig-4 encoding, SHA-1, ring/router operations, lookup-cache
// probes, block-map range scans and the event queue.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/key.h"
#include "common/rng.h"
#include "dht/consistent_hash.h"
#include "dht/ring.h"
#include "dht/router.h"
#include "fs/key_encoding.h"
#include "sim/event_queue.h"
#include "store/block_map.h"
#include "store/lookup_cache.h"

namespace d2 {
namespace {

void BM_KeyCompare(benchmark::State& state) {
  Rng rng(1);
  const Key a = Key::random(rng);
  const Key b = Key::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_KeyCompare);

void BM_KeyAdd(benchmark::State& state) {
  Rng rng(2);
  const Key a = Key::random(rng);
  const Key b = Key::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_KeyAdd);

void BM_KeyInArc(benchmark::State& state) {
  Rng rng(3);
  const Key a = Key::random(rng);
  const Key b = Key::random(rng);
  const Key k = Key::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Key::in_arc(k, a, b));
  }
}
BENCHMARK(BM_KeyInArc);

void BM_EncodeBlockKey(benchmark::State& state) {
  const fs::VolumeId vol = fs::make_volume_id("vol");
  fs::EncodedPath p;
  for (int i = 1; i <= 6; ++i) {
    p = fs::extend_path(p, static_cast<std::uint16_t>(i), "dir");
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fs::encode_block_key(vol, p, fs::BlockType::kData, n++ & 0xffff, 3));
  }
}
BENCHMARK(BM_EncodeBlockKey);

void BM_HashedKey(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht::hashed_key("vol|/home/u1/project/file" + std::to_string(n++)));
  }
}
BENCHMARK(BM_HashedKey);

void BM_Sha1_8KB(benchmark::State& state) {
  const std::string data(8192, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_Sha1_8KB);

void BM_RingOwner(benchmark::State& state) {
  Rng rng(4);
  dht::Ring ring;
  for (int i = 0; i < state.range(0); ++i) {
    Key id = dht::random_node_id(rng);
    while (ring.id_taken(id)) id = dht::random_node_id(rng);
    ring.add(i, id);
  }
  Key k = Key::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(k));
    k = k + Key::from_uint64(0x123456789);
  }
}
BENCHMARK(BM_RingOwner)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RouterLookup(benchmark::State& state) {
  Rng rng(5);
  dht::Ring ring;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    Key id = dht::random_node_id(rng);
    while (ring.id_taken(id)) id = dht::random_node_id(rng);
    ring.add(i, id);
  }
  dht::Router router(ring, rng);
  Key k = Key::random(rng);
  std::int64_t hops = 0;
  for (auto _ : state) {
    const auto res = router.lookup(0, k);
    hops += res.hops;
    benchmark::DoNotOptimize(res.owner);
    k = k + Key::from_uint64(0x9876543210);
  }
  state.counters["hops"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RouterLookup)->Arg(200)->Arg(1000);

void BM_LookupCacheFind(benchmark::State& state) {
  store::LookupCache cache(hours(100));
  Rng rng(6);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.insert(0, static_cast<int>(i), Key::from_uint64(i * 1000),
                 Key::from_uint64((i + 1) * 1000));
  }
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(1, Key::from_uint64(q % 1000000)));
    q += 777;
  }
}
BENCHMARK(BM_LookupCacheFind);

void BM_BlockMapArcScan(benchmark::State& state) {
  store::BlockMap map(16);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    map.insert(Key::random(rng), kBlockSize, {i % 16});
  }
  for (auto _ : state) {
    const Key from = Key::random(rng);
    const Key to = from + Key::from_uint64(1) + Key::random(rng).half().half();
    int count = 0;
    const_cast<store::BlockMap&>(map).for_each_in_arc(
        from, to, [&count](const Key&, store::BlockState&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BlockMapArcScan);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.push((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueue);

}  // namespace
}  // namespace d2

BENCHMARK_MAIN();
