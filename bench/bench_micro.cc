// Micro-benchmarks (google-benchmark) for the hot primitives: key
// arithmetic, Fig-4 encoding, SHA-1, ring/router operations, lookup-cache
// probes, block-map range scans, the event queue, and a mini end-to-end
// System write/read trial.
//
// tools/bench_to_json.py wraps this binary and emits BENCH_micro.json;
// the committed baseline/after snapshots track the perf trajectory of the
// hot-path data layout (see DESIGN.md, "Hot-path data layout").
//
// The key benchmarks rotate through a pre-generated array of random keys
// so the measured operation cannot be hoisted out of the loop as a
// loop-invariant computation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/key.h"
#include "common/key_simd.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/system.h"
#include "dht/consistent_hash.h"
#include "dht/ring.h"
#include "dht/router.h"
#include "fs/key_encoding.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/timing_wheel.h"
#include "store/block_map.h"
#include "store/ec.h"
#include "store/lookup_cache.h"
#include "store/retrieval_cache.h"

namespace d2 {
namespace {

constexpr std::size_t kKeyPoolSize = 1024;  // power of two (mask indexing)

std::vector<Key> key_pool(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(kKeyPoolSize);
  for (std::size_t i = 0; i < kKeyPoolSize; ++i) keys.push_back(Key::random(rng));
  return keys;
}

void BM_KeyCompare(benchmark::State& state) {
  const std::vector<Key> keys = key_pool(1);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool lt = keys[i & (kKeyPoolSize - 1)] < keys[(i + 1) & (kKeyPoolSize - 1)];
    benchmark::DoNotOptimize(lt);
    ++i;
  }
}
BENCHMARK(BM_KeyCompare);

// Chunk-directory search as SortedKeyIndex does it: binary search over a
// 128-key sorted run (store::kMaxChunk). _Scalar pins the plain limb-wise
// compare; the unsuffixed variant uses the dispatched (AVX2 where
// available) kernel from common/key_simd.h.
void key_compare_batch_body(benchmark::State& state,
                            std::size_t (*bound)(const Key*, std::size_t,
                                                 const Key&)) {
  std::vector<Key> keys = key_pool(20);
  keys.resize(128);
  std::sort(keys.begin(), keys.end());
  const std::vector<Key> probes = key_pool(21);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bound(keys.data(), keys.size(), probes[i & (kKeyPoolSize - 1)]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_KeyCompareBatch(benchmark::State& state) {
  key_compare_batch_body(state, key_lower_bound);
}
BENCHMARK(BM_KeyCompareBatch);

void BM_KeyCompareBatch_Scalar(benchmark::State& state) {
  key_compare_batch_body(state, key_lower_bound_scalar);
}
BENCHMARK(BM_KeyCompareBatch_Scalar);

void BM_KeyAdd(benchmark::State& state) {
  const std::vector<Key> keys = key_pool(2);
  Key acc;
  std::size_t i = 0;
  for (auto _ : state) {
    acc = acc + keys[i & (kKeyPoolSize - 1)];
    benchmark::DoNotOptimize(acc);
    ++i;
  }
}
BENCHMARK(BM_KeyAdd);

void BM_KeySub(benchmark::State& state) {
  const std::vector<Key> keys = key_pool(12);
  Key acc = Key::max();
  std::size_t i = 0;
  for (auto _ : state) {
    acc = acc - keys[i & (kKeyPoolSize - 1)];
    benchmark::DoNotOptimize(acc);
    ++i;
  }
}
BENCHMARK(BM_KeySub);

void BM_KeyMidpoint(benchmark::State& state) {
  const std::vector<Key> keys = key_pool(13);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Key::midpoint(keys[i & (kKeyPoolSize - 1)],
                                           keys[(i + 1) & (kKeyPoolSize - 1)]));
    ++i;
  }
}
BENCHMARK(BM_KeyMidpoint);

void BM_KeyInArc(benchmark::State& state) {
  const std::vector<Key> keys = key_pool(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Key::in_arc(keys[i & (kKeyPoolSize - 1)],
                                         keys[(i + 1) & (kKeyPoolSize - 1)],
                                         keys[(i + 2) & (kKeyPoolSize - 1)]));
    ++i;
  }
}
BENCHMARK(BM_KeyInArc);

void BM_EncodeBlockKey(benchmark::State& state) {
  const fs::VolumeId vol = fs::make_volume_id("vol");
  fs::EncodedPath p;
  for (int i = 1; i <= 6; ++i) {
    p = fs::extend_path(p, static_cast<std::uint16_t>(i), "dir");
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fs::encode_block_key(vol, p, fs::BlockType::kData, n++ & 0xffff, 3));
  }
}
BENCHMARK(BM_EncodeBlockKey);

void BM_HashedKey(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht::hashed_key("vol|/home/u1/project/file" + std::to_string(n++)));
  }
}
BENCHMARK(BM_HashedKey);

// (6,3) Reed–Solomon encode of an 8 KB block: 3 parity fragments of
// 1366 bytes each. The _Scalar variants pin the plain table-multiply
// kernel; the unsuffixed ones use the dispatched (GFNI/AVX2 where
// available) mul_acc, so the pair quantifies the SIMD win on the same
// machine.
void ec_encode_body(benchmark::State& state) {
  const store::ErasureCodec codec(6, 3);
  Rng rng(17);
  std::vector<std::uint8_t> block(8192);
  for (std::uint8_t& b : block) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}

void BM_EcEncode_8KB(benchmark::State& state) { ec_encode_body(state); }
BENCHMARK(BM_EcEncode_8KB);

void BM_EcEncode_8KB_Scalar(benchmark::State& state) {
  store::gf256::use_mul_acc_kernel("scalar");
  ec_encode_body(state);
  store::gf256::use_mul_acc_kernel("auto");
}
BENCHMARK(BM_EcEncode_8KB_Scalar);

// Worst-case decode: all three data-fragment erasures, so every output
// byte goes through the inverted-submatrix multiply.
void ec_decode_body(benchmark::State& state) {
  const store::ErasureCodec codec(6, 3);
  Rng rng(18);
  std::vector<std::uint8_t> block(8192);
  for (std::uint8_t& b : block) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  const std::vector<std::vector<std::uint8_t>> frags = codec.encode(block);
  const std::vector<int> present = {3, 4, 5, 6, 7, 8};
  std::vector<const std::uint8_t*> ptrs;
  for (int idx : present) {
    ptrs.push_back(frags[static_cast<std::size_t>(idx)].data());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.decode(present, ptrs, static_cast<Bytes>(block.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}

void BM_EcDecode_8KB(benchmark::State& state) { ec_decode_body(state); }
BENCHMARK(BM_EcDecode_8KB);

void BM_EcDecode_8KB_Scalar(benchmark::State& state) {
  store::gf256::use_mul_acc_kernel("scalar");
  ec_decode_body(state);
  store::gf256::use_mul_acc_kernel("auto");
}
BENCHMARK(BM_EcDecode_8KB_Scalar);

void BM_Sha1_8KB(benchmark::State& state) {
  const std::string data(8192, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8192);
}
BENCHMARK(BM_Sha1_8KB);

void BM_RingOwner(benchmark::State& state) {
  Rng rng(4);
  dht::Ring ring;
  for (int i = 0; i < state.range(0); ++i) {
    Key id = dht::random_node_id(rng);
    while (ring.id_taken(id)) id = dht::random_node_id(rng);
    ring.add(i, id);
  }
  Key k = Key::random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(k));
    k = k + Key::from_uint64(0x123456789);
  }
}
BENCHMARK(BM_RingOwner)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RingReplicaSet(benchmark::State& state) {
  // The per-block-op hot loop of System::put / reassign_block: resolve the
  // r successors of a key.
  Rng rng(14);
  dht::Ring ring;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    Key id = dht::random_node_id(rng);
    while (ring.id_taken(id)) id = dht::random_node_id(rng);
    ring.add(i, id);
  }
  const std::vector<Key> keys = key_pool(15);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::vector<int> set = ring.replica_set(keys[i & (kKeyPoolSize - 1)], 4);
    benchmark::DoNotOptimize(set.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingReplicaSet)->Arg(100)->Arg(1000);

void BM_RouterLookup(benchmark::State& state) {
  Rng rng(5);
  dht::Ring ring;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    Key id = dht::random_node_id(rng);
    while (ring.id_taken(id)) id = dht::random_node_id(rng);
    ring.add(i, id);
  }
  dht::Router router(ring, rng);
  Key k = Key::random(rng);
  std::int64_t hops = 0;
  for (auto _ : state) {
    const auto res = router.lookup(0, k);
    hops += res.hops;
    benchmark::DoNotOptimize(res.owner);
    k = k + Key::from_uint64(0x9876543210);
  }
  state.counters["hops"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RouterLookup)->Arg(200)->Arg(1000);

void BM_LookupCacheFind(benchmark::State& state) {
  store::LookupCache cache(hours(100));
  Rng rng(6);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.insert(0, static_cast<int>(i), Key::from_uint64(i * 1000),
                 Key::from_uint64((i + 1) * 1000));
  }
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(1, Key::from_uint64(q % 1000000)));
    q += 777;
  }
}
BENCHMARK(BM_LookupCacheFind);

void BM_BlockMapArcScan(benchmark::State& state) {
  store::BlockMap map(16);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    map.insert(Key::random(rng), kBlockSize, {i % 16});
  }
  for (auto _ : state) {
    const Key from = Key::random(rng);
    const Key to = from + Key::from_uint64(1) + Key::random(rng).half().half();
    int count = 0;
    const_cast<store::BlockMap&>(map).for_each_in_arc(
        from, to, [&count](const Key&, store::BlockState&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BlockMapArcScan);

void BM_BlockMapRangeScan(benchmark::State& state) {
  // The load balancer's owned-arc walk: narrow arcs (~1/64 of the ring,
  // one node's share), visiting every block key in range. This is the
  // per-probe cost of median_primary_key / readjust_arc.
  store::BlockMap map(64);
  Rng rng(16);
  const int blocks = static_cast<int>(state.range(0));
  for (int i = 0; i < blocks; ++i) {
    map.insert(Key::random(rng), kBlockSize, {i % 64});
  }
  // Arc width ~= 2^512 / 64: walk from a random key for that span.
  Key span = Key::max();
  for (int i = 0; i < 6; ++i) span = span.half();
  Bytes touched = 0;
  for (auto _ : state) {
    const Key from = Key::random(rng);
    const Key to = from + span;
    const_cast<store::BlockMap&>(map).for_each_in_arc(
        from, to,
        [&touched](const Key&, store::BlockState& b) { touched += b.size; });
    benchmark::DoNotOptimize(touched);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (blocks / 64));
}
BENCHMARK(BM_BlockMapRangeScan)->Arg(20000)->Arg(100000);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.push((i * 7919) % 1000, [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EventQueuePushPop(benchmark::State& state) {
  // Steady-state simulator loop with cancellations: a warm queue where
  // each iteration pushes a batch, cancels a third of it (timer churn:
  // fetch retries, TTL refreshes), and pops a batch. The queue never
  // drains, so slot recycling (not first-touch growth) is measured.
  sim::EventQueue q;
  sim::EventId ids[256];
  std::uint64_t t = 0;
  for (int i = 0; i < 4096; ++i) q.push(t + (i * 7919) % 4096, [] {});
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      ids[i] = q.push(t + 1 + (i * 127) % 1024, [] {});
    }
    for (int i = 0; i < 256; i += 3) q.cancel(ids[i]);
    for (int i = 0; i < 170; ++i) {
      sim::EventQueue::Event ev = q.pop();
      t = ev.time;
      benchmark::DoNotOptimize(ev.id);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueuePushPopClosure(benchmark::State& state) {
  // The same steady-state churn loop as BM_EventQueuePushPop, but with
  // capture-heavy closures shaped like the real schedule sites: System's
  // TTL-refresh timer captures {this, Key, deadline} = 80 bytes. A
  // type-erased std::function heap-allocates such a capture on every
  // push; the event queue is only truly allocation-free if the callback
  // storage is inline.
  sim::EventQueue q;
  sim::EventId ids[256];
  const std::vector<Key> keys = key_pool(19);
  std::uint64_t sink = 0;
  std::uint64_t t = 0;
  for (int i = 0; i < 4096; ++i) {
    q.push(t + (i * 7919) % 4096,
           [p = &sink, k = keys[static_cast<std::size_t>(i) & (kKeyPoolSize - 1)],
            d = t] { *p += k.low64() + static_cast<std::uint64_t>(d); });
  }
  std::size_t n = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      ids[i] = q.push(
          t + 1 + (i * 127) % 1024,
          [p = &sink, k = keys[n++ & (kKeyPoolSize - 1)],
           d = t] { *p += k.low64() + static_cast<std::uint64_t>(d); });
    }
    for (int i = 0; i < 256; i += 3) q.cancel(ids[i]);
    for (int i = 0; i < 170; ++i) {
      sim::EventQueue::Event ev = q.pop();
      t = ev.time;
      ev.fn();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_EventQueuePushPopClosure);

void BM_EventQueuePushPop_Heap(benchmark::State& state) {
  // The BM_EventQueuePushPop churn loop on the reference heap backend
  // (`--scheduler heap`): the wheel-vs-heap delta on identical work.
  sim::EventQueue q(sim::SchedulerKind::kHeap);
  sim::EventId ids[256];
  std::uint64_t t = 0;
  for (int i = 0; i < 4096; ++i) q.push(t + (i * 7919) % 4096, [] {});
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      ids[i] = q.push(t + 1 + (i * 127) % 1024, [] {});
    }
    for (int i = 0; i < 256; i += 3) q.cancel(ids[i]);
    for (int i = 0; i < 170; ++i) {
      sim::EventQueue::Event ev = q.pop();
      t = ev.time;
      benchmark::DoNotOptimize(ev.id);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_EventQueuePushPop_Heap);

void BM_TimingWheelPushPop(benchmark::State& state) {
  // The raw wheel without the EventQueue slab around it: steady-state
  // insert/cancel/pop churn on a warm resident population, measuring
  // pure scheduler cost (bucket placement, intrusive unlink, head
  // refresh) with caller-managed slot recycling.
  sim::TimingWheel w;
  constexpr std::uint32_t kSlots = 8192;
  w.ensure_capacity(kSlots);
  std::vector<std::uint32_t> free_slots;
  for (std::uint32_t s = kSlots; s-- > 0;) free_slots.push_back(s);
  SimTime t = 0;
  for (int i = 0; i < 4096; ++i) {
    const std::uint32_t s = free_slots.back();
    free_slots.pop_back();
    w.insert(s, (i * 7919) % 4096);
  }
  std::uint32_t batch[256];
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      batch[i] = free_slots.back();
      free_slots.pop_back();
      w.insert(batch[i], t + 1 + (i * 127) % 1024);
    }
    for (int i = 0; i < 256; i += 3) {
      w.remove(batch[i]);
      free_slots.push_back(batch[i]);
    }
    for (int i = 0; i < 170; ++i) {
      const std::uint32_t s = w.pop_min();
      t = w.slot_time(s);
      free_slots.push_back(s);
      benchmark::DoNotOptimize(s);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TimingWheelPushPop);

void BM_TimingWheelCascade(benchmark::State& state) {
  // Worst-case cascading: each round scatters events across every wheel
  // level (offsets span ~2^42 µs) relative to the advancing cursor, then
  // drains, so pops repeatedly tear multi-level buckets down to level 0.
  sim::TimingWheel w;
  constexpr std::uint32_t kEvents = 4096;
  w.ensure_capacity(kEvents);
  std::vector<SimTime> offsets;
  offsets.reserve(kEvents);
  for (std::uint32_t i = 0; i < kEvents; ++i) {
    offsets.push_back(static_cast<SimTime>(
        (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull) &
        ((std::uint64_t{1} << 42) - 1)));
  }
  for (auto _ : state) {
    const SimTime base = w.cursor();
    for (std::uint32_t s = 0; s < kEvents; ++s) {
      w.insert(s, base + offsets[s]);
    }
    while (!w.empty()) benchmark::DoNotOptimize(w.pop_min());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kEvents);
}
BENCHMARK(BM_TimingWheelCascade);

void BM_RetrievalCacheLookupInsert(benchmark::State& state) {
  // Steady-state PAST-style read cache at capacity: a hot working set
  // that mostly hits (LRU splice) interleaved with a cold cycling scan
  // that misses, inserts, and evicts. Exercises the lookup, insert and
  // eviction paths in the mix a Zipf-ish read workload produces.
  store::RetrievalCache cache(512 * kBlockSize);
  const std::vector<Key> keys = key_pool(18);
  for (std::size_t i = 0; i < 512; ++i) cache.insert(keys[i], kBlockSize);
  std::size_t i = 0;
  for (auto _ : state) {
    const Key& k = (i & 3) != 0 ? keys[i & 255] : keys[i & (kKeyPoolSize - 1)];
    if (!cache.lookup(k)) cache.insert(k, kBlockSize);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["hit_rate"] = benchmark::Counter(
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses()));
}
BENCHMARK(BM_RetrievalCacheLookupInsert);

void BM_SystemWriteRead(benchmark::State& state) {
  // Mini end-to-end trial: one System per iteration, a burst of block
  // writes (ring replica resolution + block-map insert), availability
  // checks for every block, and a few load-balance probes (owned-arc
  // median scans + readjustment). This is the put/get/probe hot path every
  // experiment drives millions of times.
  const int blocks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    core::SystemConfig cfg;
    cfg.node_count = 32;
    cfg.replicas = 3;
    cfg.seed = 1234;
    core::System sys(cfg, sim);
    Rng rng(17);
    std::vector<Key> keys;
    keys.reserve(static_cast<std::size_t>(blocks));
    for (int i = 0; i < blocks; ++i) keys.push_back(Key::random(rng));
    for (const Key& k : keys) sys.put(k, kBlockSize);
    int available = 0;
    for (const Key& k : keys) {
      if (sys.block_available(k)) ++available;
    }
    for (int p = 0; p < 32; ++p) sys.probe_once(p % 32);
    sim.run();
    benchmark::DoNotOptimize(available);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          blocks);
}
BENCHMARK(BM_SystemWriteRead)->Arg(2000);

}  // namespace
}  // namespace d2

BENCHMARK_MAIN();
