// Table 4: mean per-node write traffic W_i vs load-balancing (migration)
// traffic L_i on each day, for Harvard and Webcache — plus the ablation
// the paper motivates in Section 6: the same runs with block pointers
// disabled, showing the duplicate-move traffic pointers avoid.
#include "bench_common.h"

using namespace d2;

namespace {

core::BalanceResult run(core::BalanceWorkload workload, bool pointers) {
  core::BalanceParams p;
  p.system = bench::system_config(fs::KeyScheme::kD2, bench::availability_nodes());
  p.system.use_pointers = pointers;
  p.workload = workload;
  p.harvard = bench::harvard_workload();
  p.web = bench::web_workload();
  p.warmup = days(1);
  return core::BalanceExperiment(p).run();
}

void print_rows(const char* name, const core::BalanceResult& r, int nodes) {
  Bytes total_w = 0, total_l = 0;
  std::printf("%-18s", (std::string(name) + " W_i").c_str());
  for (std::size_t i = 1; i < r.days.size() && i <= 6; ++i) {
    std::printf(" %7.1f", static_cast<double>(r.days[i].written) / mB(1) / nodes);
    total_w += r.days[i].written;
  }
  std::printf(" | %7.1f\n", static_cast<double>(total_w) / mB(1) / nodes);
  std::printf("%-18s", (std::string(name) + " L_i").c_str());
  for (std::size_t i = 1; i < r.days.size() && i <= 6; ++i) {
    std::printf(" %7.1f", static_cast<double>(r.days[i].migrated) / mB(1) / nodes);
    total_l += r.days[i].migrated;
  }
  std::printf(" | %7.1f   (L/W = %.2f)\n",
              static_cast<double>(total_l) / mB(1) / nodes,
              total_w > 0 ? static_cast<double>(total_l) / total_w : 0.0);
}

}  // namespace

int main() {
  bench::print_header("Table 4: write vs load-balancing traffic (MB/node)",
                      "Table 4, Section 10");
  const int nodes = bench::availability_nodes();
  std::printf("%-18s %7s %7s %7s %7s %7s %7s | %7s\n", "day", "1", "2", "3",
              "4", "5", "6", "total");
  print_rows("Harvard", run(core::BalanceWorkload::kHarvard, true), nodes);
  print_rows("Webcache", run(core::BalanceWorkload::kWebcache, true), nodes);
  std::printf("\n--- ablation: block pointers disabled (eager migration) ---\n");
  print_rows("Harvard", run(core::BalanceWorkload::kHarvard, false), nodes);
  print_rows("Webcache", run(core::BalanceWorkload::kWebcache, false), nodes);
  std::printf(
      "\npaper: Harvard L/W ~0.5 (1 byte migrated per 2 written); Webcache\n"
      "L/W ~1.16. Without pointers, blocks can move multiple times during\n"
      "rebalancing, inflating L.\n");
  return 0;
}
