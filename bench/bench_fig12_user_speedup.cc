// Figure 12: mean speedup over the traditional DHT for each user in the
// largest-system, 1500 kbps scenario (seq and para), ranked by speedup.
#include <algorithm>

#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header(
      "Figure 12: per-user speedup over traditional (largest size, 1500kbps)",
      "Fig 12, Section 9.3");

  const int n = bench::performance_sizes().back();
  const std::vector<core::PerformanceResult> results = bench::perf_runs(
      {{fs::KeyScheme::kTraditionalBlock, n, kbps(1500), false},
       {fs::KeyScheme::kD2, n, kbps(1500), false},
       {fs::KeyScheme::kTraditionalBlock, n, kbps(1500), true},
       {fs::KeyScheme::kD2, n, kbps(1500), true}});
  for (const bool para : {false, true}) {
    const auto& trad = results[para ? 2 : 0];
    const auto& d2r = results[para ? 3 : 1];
    const core::SpeedupSummary s = core::compute_speedup(trad, d2r);

    std::vector<double> speedups;
    for (const auto& [user, v] : s.per_user) speedups.push_back(v);
    std::sort(speedups.begin(), speedups.end(), std::greater<>());

    std::printf("\n--- %s (overall geo-mean %.2f, %llu matched groups) ---\n",
                para ? "para" : "seq", s.overall,
                static_cast<unsigned long long>(s.matched_groups));
    std::printf("%-6s %10s\n", "rank", "speedup");
    int above_mean = 0, below_one = 0;
    for (std::size_t i = 0; i < speedups.size(); ++i) {
      std::printf("%-6zu %10.2f\n", i + 1, speedups[i]);
      if (speedups[i] > s.overall) ++above_mean;
      if (speedups[i] < 1.0) ++below_one;
    }
    std::printf("users above the mean: %d; users seeing a slowdown: %d\n",
                above_mean, below_one);
  }
  std::printf(
      "\npaper's shape: nearly half the users above the mean; a handful of\n"
      "users (whose replicas are all network-distant) below 1.0.\n");
  return 0;
}
