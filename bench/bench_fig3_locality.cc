// Figure 3: mean nodes accessed per user each hour, normalized against
// the traditional (consistent hashing) placement, for the traditional /
// ordered / lower-bound scenarios on all three workloads.
#include "core/locality_analysis.h"

#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 3: nodes accessed per user-hour (normalized)",
                      "Fig 3, Section 4.1");

  core::LocalityParams lp;
  // The paper assigns 250 MB per node; our workloads are scaled down, so
  // scale node capacity likewise to keep a comparable node count.
  lp.node_capacity = static_cast<Bytes>(mB(4) * bench::scale_factor());

  std::printf("%-10s %8s | %12s %10s %12s | %12s %12s\n", "workload", "nodes",
              "traditional", "ordered", "lower-bound", "ordered/trad",
              "lower/trad");

  auto report = [&lp](const char* name,
                      const std::vector<core::BlockAccess>& accesses) {
    const core::LocalityResult r = core::LocalityAnalysis::analyze(accesses, lp);
    std::printf("%-10s %8d | %12.2f %10.2f %12.2f | %12.3f %12.3f\n", name,
                r.nodes, r.traditional_nodes_per_user_hour,
                r.ordered_nodes_per_user_hour, r.lower_bound_nodes_per_user_hour,
                r.ordered_normalized(), r.lower_bound_normalized());
  };

  {
    trace::HpGenerator gen(bench::hp_workload());
    report("HP", core::LocalityAnalysis::from_hp(gen));
  }
  {
    trace::HarvardGenerator gen(bench::harvard_workload());
    report("Harvard", core::LocalityAnalysis::from_harvard(gen));
  }
  {
    trace::WebGenerator gen(bench::web_workload());
    report("Web", core::LocalityAnalysis::from_web(gen));
  }

  std::printf(
      "\npaper's shape: ordered ~10x below traditional; lower bound another\n"
      "<10x below ordered (largest residual gap on Web).\n");
  return 0;
}
