// Table 1: workloads analyzed — duration, accesses, active data.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Table 1: workload summaries", "Table 1");
  std::printf("%-10s %10s %12s %12s %14s %8s\n", "workload", "days",
              "records", "accesses", "active data", "users");

  {
    trace::HarvardGenerator gen(bench::harvard_workload());
    const trace::WorkloadSummary s = gen.summary();
    std::printf("%-10s %10.1f %12llu %12llu %11lld MB %8d\n", "Harvard",
                to_hours(s.duration) / 24.0,
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.accesses),
                static_cast<long long>(s.active_data / mB(1)), s.users);
  }
  {
    trace::HpGenerator gen(bench::hp_workload());
    const trace::WorkloadSummary s = gen.summary();
    std::printf("%-10s %10.1f %12llu %12llu %11lld MB %8d\n", "HP",
                to_hours(s.duration) / 24.0,
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.accesses),
                static_cast<long long>(s.bytes_read / mB(1)), s.users);
  }
  {
    trace::WebGenerator gen(bench::web_workload());
    const trace::WorkloadSummary s = gen.summary();
    std::printf("%-10s %10.1f %12llu %12llu %11lld MB %8d\n", "Web",
                to_hours(s.duration) / 24.0,
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.accesses),
                static_cast<long long>(s.bytes_read / mB(1)), s.users);
  }
  std::printf(
      "\npaper: HP 1 week/238M accesses/40GB; Harvard 1 week/60M/83GB; Web\n"
      "1 week/47M/93GB. These are scaled-down synthetic equivalents; raise\n"
      "D2_BENCH_SCALE to grow them.\n");
  return 0;
}
