// Ablation: the load-balance trigger threshold t (paper §6 uses t = 4).
//
// Lower t keeps loads tighter but triggers more moves (more migration
// traffic); higher t tolerates more imbalance. This sweep shows the
// trade-off on the Harvard workload and why t = 4 is a sweet spot.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Ablation: load-balance threshold t",
                      "design choice from Section 6 (t = 4)");

  std::printf("%-6s %12s %12s %10s %16s %14s\n", "t", "imbalance", "max/mean",
              "moves", "migrated (MB)", "L/W ratio");
  for (const double t : {2.0, 3.0, 4.0, 8.0, 16.0}) {
    core::BalanceParams p;
    p.system = bench::system_config(fs::KeyScheme::kD2,
                                    bench::availability_nodes());
    p.system.lb_threshold = t;
    p.harvard = bench::harvard_workload();
    p.warmup = days(1);
    const core::BalanceResult r = core::BalanceExperiment(p).run();
    Bytes written = 0, migrated = 0;
    for (const core::DayStats& d : r.days) {
      written += d.written;
      migrated += d.migrated;
    }
    std::printf("%-6.0f %12.3f %12.2f %10lld %16.1f %14.2f\n", t,
                r.mean_imbalance(), r.mean_max_over_mean(),
                static_cast<long long>(r.lb_moves),
                static_cast<double>(migrated) / mB(1),
                written > 0 ? static_cast<double>(migrated) / written : 0.0);
  }
  std::printf(
      "\nexpected: imbalance and max/mean grow with t; moves and migration\n"
      "traffic shrink. t=4 bounds steady-state load at ~4x mean while\n"
      "keeping migration around half the write volume.\n");
  return 0;
}
