// Figure 9: average number of lookup messages sent per node during the
// replayed windows, vs system size, for seq and para, in the traditional,
// traditional-file, and D2 systems.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 9: DHT lookup messages per node vs system size",
                      "Fig 9, Section 9.2");

  const fs::KeyScheme schemes[] = {fs::KeyScheme::kTraditionalBlock,
                                   fs::KeyScheme::kTraditionalFile,
                                   fs::KeyScheme::kD2};
  for (const bool para : {false, true}) {
    std::printf("\n--- %s ---\n", para ? "para" : "seq");
    std::printf("%-8s %16s %18s %12s\n", "nodes", "traditional",
                "traditional-file", "d2");
    for (const int n : bench::performance_sizes()) {
      double vals[3];
      int i = 0;
      for (const fs::KeyScheme scheme : schemes) {
        vals[i++] = bench::perf_run(scheme, n, kbps(1500), para)
                        .lookup_messages_per_node;
      }
      std::printf("%-8d %16.1f %18.1f %12.1f\n", n, vals[0], vals[1], vals[2]);
    }
  }
  std::printf(
      "\npaper's shape: traditional grows with system size; traditional-file\n"
      "and D2 shrink, with D2 at <1/20 of traditional by 1000 nodes.\n");
  return 0;
}
