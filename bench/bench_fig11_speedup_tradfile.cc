// Figure 11: geometric-mean speedup of D2 over the traditional-file DHT.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 11: speedup of D2 over the traditional-file DHT",
                      "Fig 11, Section 9.3");

  std::vector<bench::PerfSpec> specs;
  for (const int n : bench::performance_sizes()) {
    for (const BitRate bw : {kbps(1500), kbps(384)}) {
      for (const bool para : {false, true}) {
        specs.push_back({fs::KeyScheme::kTraditionalFile, n, bw, para});
        specs.push_back({fs::KeyScheme::kD2, n, bw, para});
      }
    }
  }
  const std::vector<core::PerformanceResult> results = bench::perf_runs(specs);

  std::printf("%-8s %10s | %12s %12s\n", "nodes", "bandwidth", "seq", "para");
  std::size_t idx = 0;
  for (const int n : bench::performance_sizes()) {
    for (const BitRate bw : {kbps(1500), kbps(384)}) {
      double speedups[2];
      for (int i = 0; i < 2; ++i) {
        const auto& base = results[idx++];
        const auto& d2r = results[idx++];
        speedups[i] = core::compute_speedup(base, d2r).overall;
      }
      std::printf("%-8d %7lld kbps | %12.2f %12.2f\n", n,
                  static_cast<long long>(bw / 1000), speedups[0], speedups[1]);
    }
  }
  std::printf(
      "\npaper's shape: positive speedups that grow less with system size\n"
      "than against the traditional DHT (the traditional-file cache miss\n"
      "rate is also size-stable).\n");
  return 0;
}
