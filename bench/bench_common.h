// Shared configuration for the per-figure/table benchmark harnesses.
//
// Every bench binary reproduces one table or figure from the paper. The
// default parameters are laptop-scale (each binary finishes in seconds to
// a couple of minutes); set D2_BENCH_SCALE=<factor> to multiply workload
// size and node counts towards paper scale (factor ~4-8 approaches the
// original 247-1000 node setups).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/availability.h"
#include "core/balance.h"
#include "core/config.h"
#include "core/performance.h"
#include "core/trial_runner.h"
#include "obs/metrics.h"
#include "trace/harvard_gen.h"
#include "trace/hp_gen.h"
#include "trace/web_gen.h"

namespace d2::bench {

/// Process-wide metrics registry shared by every bench harness. Successive
/// experiment runs in one binary accumulate into the same instruments, so
/// the exit-time dump summarises the whole binary.
inline obs::Registry& metrics() {
  static obs::Registry registry;
  return registry;
}

namespace detail {
inline void dump_metrics() {
  if (const char* out = std::getenv("D2_BENCH_METRICS")) {
    if (std::string(out) != "-") {
      metrics().write_json_file(out);
      std::fprintf(stderr, "wrote %zu metrics to %s\n",
                   metrics().instrument_count(), out);
      return;
    }
  }
  std::printf("\n-- metrics --\n%s\n", metrics().to_json().c_str());
}
}  // namespace detail

/// Process-wide trial runner shared by every bench harness. Independent
/// experiment runs (grid cells, repeated seeds) fan out across
/// D2_BENCH_JOBS worker threads (default: hardware concurrency;
/// D2_BENCH_JOBS=1 forces the serial path). Results are always collected
/// and printed in submission order, so output is identical at any job
/// count.
inline const core::TrialRunner& runner() {
  static const core::TrialRunner r = [] {
    int jobs = 0;
    if (const char* s = std::getenv("D2_BENCH_JOBS")) jobs = std::atoi(s);
    return core::TrialRunner(jobs);
  }();
  return r;
}

inline double scale_factor() {
  if (const char* s = std::getenv("D2_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline int scaled(int base) {
  return static_cast<int>(static_cast<double>(base) * scale_factor());
}

/// The standard Harvard-like workload used across benches (Table 1 row 2
/// substitute), scaled.
inline trace::HarvardParams harvard_workload(std::uint64_t seed = 42) {
  trace::HarvardParams p;
  p.users = scaled(20);
  p.days = 7;
  p.target_active_bytes = static_cast<Bytes>(mB(96) * scale_factor());
  p.accesses_per_user_day = 300;
  p.seed = seed;
  return p;
}

inline trace::HpParams hp_workload(std::uint64_t seed = 7) {
  trace::HpParams p;
  p.apps = scaled(20);
  p.days = 7;
  p.accesses_per_app_day = 1200;
  p.seed = seed;
  return p;
}

inline trace::WebParams web_workload(std::uint64_t seed = 11) {
  trace::WebParams p;
  p.clients = scaled(40);
  p.days = 7;
  p.sites = scaled(200);
  p.requests_per_client_day = 250;
  p.seed = seed;
  return p;
}

inline core::SystemConfig system_config(fs::KeyScheme scheme, int nodes,
                                        std::uint64_t seed = 1) {
  core::SystemConfig c;
  c.node_count = nodes;
  c.scheme = scheme;
  // Active balancing is D2's companion; the traditional baselines rely on
  // consistent hashing alone (Traditional+Merc turns it back on).
  c.active_load_balance = scheme == fs::KeyScheme::kD2;
  c.seed = seed;
  // Arc-partitioned core (DESIGN.md §9): identical output for any
  // setting, so benches accept the knobs via env for A/B timing runs.
  if (const char* s = std::getenv("D2_ARCS")) c.arcs = std::atoi(s);
  if (const char* s = std::getenv("D2_ARC_WORKERS")) {
    c.arc_workers = std::atoi(s);
  }
  return c;
}

/// §8.1 availability testbed node count, scaled from the paper's 247.
inline int availability_nodes() { return scaled(64); }

/// §9 performance system sizes, scaled stand-ins for {200, 500, 1000}.
inline std::vector<int> performance_sizes() {
  return {scaled(64), scaled(128), scaled(256)};
}

inline sim::FailureParams failure_params(int nodes) {
  sim::FailureParams f;
  f.node_count = nodes;
  f.duration = days(8);
  // Compressed PlanetLab-like week: enough failure mass that a scaled-down
  // run still observes task failures.
  f.mttf_hours = 60;
  f.mttr_hours = 5;
  f.correlated_events_per_day = 0.8;
  f.correlated_fraction = 0.2;
  f.correlated_outage_hours = 2.0;
  return f;
}

/// One §9 performance run. Workload data scales with system size (the
/// paper replicates the file system as nodes grow).
inline core::PerformanceResult perf_run(fs::KeyScheme scheme, int nodes,
                                        BitRate bandwidth, bool parallel,
                                        std::uint64_t seed = 1) {
  core::PerformanceParams p;
  p.system = system_config(scheme, nodes, seed);
  p.system.replicas = 4;  // §9.1: 4 replicas per object
  p.workload = harvard_workload();
  p.workload.days = 3;  // windows sample the first days; keeps runs fast
  p.workload.target_active_bytes =
      static_cast<Bytes>(mB(1) * nodes * scale_factor());
  p.warmup = hours(18);
  p.window_count = 4;
  p.node_bandwidth = bandwidth;
  p.parallel = parallel;
  p.metrics = &metrics();
  return core::PerformanceExperiment(p).run();
}

/// One cell of a §9 performance grid; see perf_runs().
struct PerfSpec {
  fs::KeyScheme scheme;
  int nodes;
  BitRate bandwidth;
  bool parallel;
  std::uint64_t seed = 1;
};

/// Runs one perf_run() per spec across the shared runner()'s threads and
/// returns the results in spec order. Each run owns its Simulator/System;
/// they only share the (thread-safe) bench metrics registry.
inline std::vector<core::PerformanceResult> perf_runs(
    const std::vector<PerfSpec>& specs) {
  return runner().map<core::PerformanceResult>(
      static_cast<int>(specs.size()), [&](int i) {
        const PerfSpec& s = specs[static_cast<std::size_t>(i)];
        return perf_run(s.scheme, s.nodes, s.bandwidth, s.parallel, s.seed);
      });
}

/// Runs one BalanceExperiment per parameter set in parallel; results come
/// back in input order.
inline std::vector<core::BalanceResult> balance_runs(
    const std::vector<core::BalanceParams>& params) {
  return runner().map<core::BalanceResult>(
      static_cast<int>(params.size()), [&](int i) {
        return core::BalanceExperiment(params[static_cast<std::size_t>(i)])
            .run();
      });
}

/// Runs one AvailabilityExperiment per parameter set in parallel; results
/// come back in input order.
inline std::vector<core::AvailabilityResult> availability_runs(
    const std::vector<core::AvailabilityParams>& params) {
  return runner().map<core::AvailabilityResult>(
      static_cast<int>(params.size()), [&](int i) {
        return core::AvailabilityExperiment(params[static_cast<std::size_t>(i)])
            .run();
      });
}

inline const char* scheme_name(fs::KeyScheme s) {
  switch (s) {
    case fs::KeyScheme::kD2:
      return "d2";
    case fs::KeyScheme::kTraditionalBlock:
      return "traditional";
    case fs::KeyScheme::kTraditionalFile:
      return "traditional-file";
  }
  return "?";
}

/// Prints the standard bench banner and arranges for the shared metrics
/// block to be emitted when the binary exits (a JSON file when
/// D2_BENCH_METRICS names one, stdout otherwise). Every bench binary calls
/// this, so they all produce the same metrics block.
inline void print_header(const char* title, const char* paper_ref) {
  static const bool metrics_registered = [] {
    metrics();  // construct the registry first so it outlives the dump
    std::atexit(detail::dump_metrics);
    return true;
  }();
  (void)metrics_registered;
  std::printf("==============================================================\n");
  std::printf("%s\n  (reproduces %s; D2_BENCH_SCALE=%.1f)\n", title, paper_ref,
              scale_factor());
  std::printf("==============================================================\n");
}

}  // namespace d2::bench
