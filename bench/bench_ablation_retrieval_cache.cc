// Ablation: retrieval caches for request-load balance (paper §6).
//
// Zipf-hot reads concentrate serve traffic on a few replica groups; this
// sweep shows per-node request imbalance collapsing as the per-node
// retrieval cache grows, for D2 and (as a control) the traditional DHT —
// caching is orthogonal to defragmentation, which is exactly the paper's
// point.
#include "bench_common.h"
#include "core/request_load.h"

using namespace d2;

int main() {
  bench::print_header("Ablation: retrieval caches vs request hot spots",
                      "design discussion in Section 6");

  std::printf("%-14s | %12s %12s %10s | %12s %12s %10s\n", "cache/node",
              "d2 imbal", "d2 max/mean", "d2 hit%", "trad imbal",
              "trad max/mean", "trad hit%");
  for (const Bytes capacity : {Bytes{0}, mB(1), mB(4), mB(16)}) {
    double imbal[2], mom[2], hit[2];
    int i = 0;
    for (const fs::KeyScheme scheme :
         {fs::KeyScheme::kD2, fs::KeyScheme::kTraditionalBlock}) {
      core::RequestLoadParams p;
      p.system = bench::system_config(scheme, 48);
      p.retrieval_cache_capacity = capacity;
      const core::RequestLoadResult r = core::RequestLoadExperiment(p).run();
      imbal[i] = r.serve_imbalance;
      mom[i] = r.max_over_mean_serves;
      hit[i] = r.cache_hit_rate;
      ++i;
    }
    std::printf("%11lld KB | %12.2f %12.1f %9.0f%% | %12.2f %12.1f %9.0f%%\n",
                static_cast<long long>(capacity / 1024), imbal[0], mom[0],
                100 * hit[0], imbal[1], mom[1], 100 * hit[1]);
  }
  std::printf(
      "\nexpected: without caches D2's hot files hammer their replica groups\n"
      "(higher max/mean than traditional, which scatters blocks); with\n"
      "modest caches the hot traffic is absorbed and both systems flatten.\n");
  return 0;
}
