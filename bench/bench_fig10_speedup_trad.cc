// Figure 10: geometric-mean speedup of D2 over the traditional DHT, vs
// system size, for node access bandwidths of 1500 and 384 kbps, seq and
// para.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 10: speedup of D2 over the traditional DHT",
                      "Fig 10, Section 9.3");

  // Every grid cell is an independent run; fan the whole grid across the
  // shared trial runner and read the results back in submission order.
  std::vector<bench::PerfSpec> specs;
  for (const int n : bench::performance_sizes()) {
    for (const BitRate bw : {kbps(1500), kbps(384)}) {
      for (const bool para : {false, true}) {
        specs.push_back({fs::KeyScheme::kTraditionalBlock, n, bw, para});
        specs.push_back({fs::KeyScheme::kD2, n, bw, para});
      }
    }
  }
  const std::vector<core::PerformanceResult> results = bench::perf_runs(specs);

  std::printf("%-8s %10s | %12s %12s\n", "nodes", "bandwidth", "seq", "para");
  std::size_t idx = 0;
  for (const int n : bench::performance_sizes()) {
    for (const BitRate bw : {kbps(1500), kbps(384)}) {
      double speedups[2];
      for (int i = 0; i < 2; ++i) {
        const auto& trad = results[idx++];
        const auto& d2r = results[idx++];
        speedups[i] = core::compute_speedup(trad, d2r).overall;
      }
      std::printf("%-8d %7lld kbps | %12.2f %12.2f\n", n,
                  static_cast<long long>(bw / 1000), speedups[0], speedups[1]);
    }
  }
  std::printf(
      "\npaper's shape: seq speedup grows with size (>=1.9x at 1000 nodes);\n"
      "para speedup > 1 at 1500 kbps, dips below 1 at 384 kbps for small\n"
      "systems, and recovers above 1 at the largest size.\n");
  return 0;
}
