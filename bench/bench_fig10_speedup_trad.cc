// Figure 10: geometric-mean speedup of D2 over the traditional DHT, vs
// system size, for node access bandwidths of 1500 and 384 kbps, seq and
// para.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 10: speedup of D2 over the traditional DHT",
                      "Fig 10, Section 9.3");

  std::printf("%-8s %10s | %12s %12s\n", "nodes", "bandwidth", "seq", "para");
  for (const int n : bench::performance_sizes()) {
    for (const BitRate bw : {kbps(1500), kbps(384)}) {
      double speedups[2];
      int i = 0;
      for (const bool para : {false, true}) {
        const auto trad =
            bench::perf_run(fs::KeyScheme::kTraditionalBlock, n, bw, para);
        const auto d2r = bench::perf_run(fs::KeyScheme::kD2, n, bw, para);
        speedups[i++] = core::compute_speedup(trad, d2r).overall;
      }
      std::printf("%-8d %7lld kbps | %12.2f %12.2f\n", n,
                  static_cast<long long>(bw / 1000), speedups[0], speedups[1]);
    }
  }
  std::printf(
      "\npaper's shape: seq speedup grows with size (>=1.9x at 1000 nodes);\n"
      "para speedup > 1 at 1500 kbps, dips below 1 at 384 kbps for small\n"
      "systems, and recovers above 1 at the largest size.\n");
  return 0;
}
