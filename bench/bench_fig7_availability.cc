// Figure 7: task unavailability under each system while varying the task
// inter-arrival threshold, across 5 trials with different node IDs.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 7: task unavailability vs inter",
                      "Fig 7, Section 8.2");

  const int nodes = bench::availability_nodes();
  const SimTime inters[] = {seconds(1), seconds(5), seconds(15), minutes(1)};
  const char* inter_names[] = {"1sec", "5sec", "15sec", "1min"};
  const fs::KeyScheme schemes[] = {fs::KeyScheme::kTraditionalBlock,
                                   fs::KeyScheme::kTraditionalFile,
                                   fs::KeyScheme::kD2};
  const int trials = 5;

  std::vector<core::AvailabilityParams> grid;
  for (int i = 0; i < 4; ++i) {
    for (const fs::KeyScheme scheme : schemes) {
      for (int trial = 0; trial < trials; ++trial) {
        core::AvailabilityParams p;
        p.system = bench::system_config(scheme, nodes,
                                        /*seed=*/100 + static_cast<std::uint64_t>(trial));
        p.system.replicas = 3;
        p.workload = bench::harvard_workload();
        p.failure = bench::failure_params(nodes);
        p.failure_seed = 900;  // same failure trace across trials (paper)
        p.warmup = days(1);
        p.inter = inters[i];
        grid.push_back(p);
      }
    }
  }
  const std::vector<core::AvailabilityResult> results =
      bench::availability_runs(grid);

  std::printf("%-8s %-18s %12s %12s %12s\n", "inter", "system", "mean",
              "min", "max");
  std::size_t idx = 0;
  for (int i = 0; i < 4; ++i) {
    for (const fs::KeyScheme scheme : schemes) {
      double sum = 0, mn = 1, mx = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const double u = results[idx++].task_unavailability();
        sum += u;
        mn = std::min(mn, u);
        mx = std::max(mx, u);
      }
      std::printf("%-8s %-18s %12.2e %12.2e %12.2e\n", inter_names[i],
                  bench::scheme_name(scheme), sum / trials, mn, mx);
    }
  }
  std::printf(
      "\npaper's shape: D2 about an order of magnitude below traditional at\n"
      "every inter; traditional-file in between.\n");
  return 0;
}
