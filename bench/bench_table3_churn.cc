// Table 3: per-day data churn — the ratio of bytes written (W_i) and
// removed (R_i) to the bytes resident at the start of the day (T_i), for
// the Harvard and Webcache workloads.
#include "bench_common.h"

using namespace d2;

namespace {

core::BalanceParams params(core::BalanceWorkload workload) {
  core::BalanceParams p;
  p.system = bench::system_config(fs::KeyScheme::kD2, bench::availability_nodes());
  p.workload = workload;
  p.harvard = bench::harvard_workload();
  p.web = bench::web_workload();
  p.warmup = days(1);
  return p;
}

void print_rows(const char* name, const core::BalanceResult& r) {
  std::printf("%-16s", (std::string(name) + " W/T").c_str());
  for (std::size_t i = 1; i < r.days.size() && i <= 6; ++i) {
    const double t = static_cast<double>(std::max<Bytes>(1, r.days[i].total_at_start));
    std::printf(" %7.2f", static_cast<double>(r.days[i].written) / t);
  }
  std::printf("\n%-16s", (std::string(name) + " R/T").c_str());
  for (std::size_t i = 1; i < r.days.size() && i <= 6; ++i) {
    const double t = static_cast<double>(std::max<Bytes>(1, r.days[i].total_at_start));
    std::printf(" %7.2f", static_cast<double>(r.days[i].removed) / t);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Table 3: daily write and remove ratios",
                      "Table 3, Section 10");
  std::printf("%-16s %7s %7s %7s %7s %7s %7s\n", "day", "1", "2", "3", "4",
              "5", "6");
  const std::vector<core::BalanceResult> results =
      bench::balance_runs({params(core::BalanceWorkload::kHarvard),
                           params(core::BalanceWorkload::kWebcache)});
  print_rows("Harvard", results[0]);
  print_rows("Webcache", results[1]);
  std::printf(
      "\npaper: Harvard W/T and R/T 0.10-0.22 per day; Webcache W/T up to\n"
      "13.3 (writes exceed resident data) and R/T ~1 (everything resident\n"
      "at day start is gone by day end).\n");
  return 0;
}
