// Ablation: random vs closest-replica download selection (paper §9.3).
//
// Fig 12's handful of slowed-down users are those whose replica groups
// happen to sit far away in the network; the paper notes the fix is to
// "always download blocks from the closest replica, since there is
// usually at least one that is not distant". This bench quantifies it.
#include <algorithm>

#include "bench_common.h"

using namespace d2;

namespace {

core::PerformanceResult run(bool closest) {
  core::PerformanceParams p;
  p.system = bench::system_config(fs::KeyScheme::kD2,
                                  bench::performance_sizes().back());
  p.system.replicas = 4;
  p.workload = bench::harvard_workload();
  p.workload.days = 3;
  p.workload.target_active_bytes =
      static_cast<Bytes>(mB(1) * p.system.node_count * bench::scale_factor());
  p.warmup = hours(18);
  p.window_count = 4;
  p.closest_replica = closest;
  return core::PerformanceExperiment(p).run();
}

}  // namespace

int main() {
  bench::print_header("Ablation: random vs closest-replica downloads",
                      "mitigation proposed in Section 9.3");

  const core::PerformanceResult random_sel = run(false);
  const core::PerformanceResult closest_sel = run(true);
  const core::SpeedupSummary s = core::compute_speedup(random_sel, closest_sel);

  SimTime total_random = 0, total_closest = 0;
  for (const auto& g : random_sel.groups) total_random += g.latency;
  for (const auto& g : closest_sel.groups) total_closest += g.latency;

  std::printf("mean group latency: random=%.2fs closest=%.2fs\n",
              to_seconds(total_random) /
                  std::max<std::size_t>(1, random_sel.groups.size()),
              to_seconds(total_closest) /
                  std::max<std::size_t>(1, closest_sel.groups.size()));
  std::printf("geo-mean speedup of closest over random: %.2f "
              "(%llu matched groups)\n",
              s.overall, static_cast<unsigned long long>(s.matched_groups));
  int helped = 0, hurt = 0;
  for (const auto& [user, v] : s.per_user) {
    if (v > 1.02) ++helped;
    if (v < 0.98) ++hurt;
  }
  std::printf("users sped up: %d; slowed: %d (of %zu)\n", helped, hurt,
              s.per_user.size());
  std::printf(
      "\nexpected: a consistent speedup, largest for the users Fig 12 shows\n"
      "below 1.0 under random selection.\n");
  return 0;
}
