// Table 2: mean blocks and files accessed per task, and mean nodes
// accessed per task in the traditional (block), traditional-file, and D2
// systems, for inter in {1s, 5s, 15s, 1min}.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Table 2: per-task object and node counts",
                      "Table 2, Section 8.2");

  const int nodes = bench::availability_nodes();
  const SimTime inters[] = {seconds(1), seconds(5), seconds(15), minutes(1)};
  const char* inter_names[] = {"1sec", "5sec", "15sec", "1min"};

  struct SchemeRow {
    fs::KeyScheme scheme;
    double nodes_per_task[4];
    double blocks[4];
    double files[4];
  };
  SchemeRow rows[] = {
      {fs::KeyScheme::kTraditionalBlock, {}, {}, {}},
      {fs::KeyScheme::kTraditionalFile, {}, {}, {}},
      {fs::KeyScheme::kD2, {}, {}, {}},
  };

  for (SchemeRow& row : rows) {
    for (int i = 0; i < 4; ++i) {
      core::AvailabilityParams p;
      p.system = bench::system_config(row.scheme, nodes);
      p.system.replicas = 3;
      p.workload = bench::harvard_workload();
      p.failure = bench::failure_params(nodes);
      p.enable_failures = false;  // placement statistics only
      p.warmup = days(1);
      p.inter = inters[i];
      const core::AvailabilityResult r = core::AvailabilityExperiment(p).run();
      row.nodes_per_task[i] = r.mean_nodes_per_task;
      row.blocks[i] = r.mean_blocks_per_task;
      row.files[i] = r.mean_files_per_task;
    }
  }

  std::printf("%-8s | %8s %8s | %8s %8s %8s\n", "inter", "blocks", "files",
              "block", "file", "D2");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-8s | %8.1f %8.1f | %8.1f %8.1f %8.1f\n", inter_names[i],
                rows[0].blocks[i], rows[0].files[i], rows[0].nodes_per_task[i],
                rows[1].nodes_per_task[i], rows[2].nodes_per_task[i]);
  }
  std::printf(
      "\npaper (247 nodes): blocks 63-237, files 10-38; nodes: block 10-23,\n"
      "file 6-16, D2 2-4. Shape to check: D2 several-fold below both\n"
      "baselines, and counts grow with inter.\n");
  return 0;
}
