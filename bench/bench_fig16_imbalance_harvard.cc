// Figure 16: storage load imbalance (normalized stddev of node load) over
// time under the Harvard workload, for the traditional-file DHT, the
// traditional DHT, D2, and Traditional+Mercury.
#include "bench_common.h"

using namespace d2;

namespace {

core::BalanceParams params(fs::KeyScheme scheme, bool active_lb) {
  core::BalanceParams p;
  p.system = bench::system_config(scheme, bench::availability_nodes());
  p.system.active_load_balance = active_lb;
  p.workload = core::BalanceWorkload::kHarvard;
  p.harvard = bench::harvard_workload();
  p.warmup = days(1);
  p.sample_interval = hours(4);
  return p;
}

}  // namespace

int main() {
  bench::print_header("Figure 16: load imbalance over time (Harvard)",
                      "Fig 16, Section 10");

  const std::vector<core::BalanceResult> results =
      bench::balance_runs({params(fs::KeyScheme::kTraditionalFile, false),
                           params(fs::KeyScheme::kTraditionalBlock, false),
                           params(fs::KeyScheme::kTraditionalBlock, true),
                           params(fs::KeyScheme::kD2, true)});
  const core::BalanceResult& trad_file = results[0];
  const core::BalanceResult& trad = results[1];
  const core::BalanceResult& trad_merc = results[2];
  const core::BalanceResult& d2r = results[3];

  std::printf("%-8s %12s %12s %12s %12s\n", "hours", "trad-file",
              "traditional", "trad+merc", "d2");
  const std::size_t n = std::min(
      {trad_file.imbalance.size(), trad.imbalance.size(),
       trad_merc.imbalance.size(), d2r.imbalance.size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-8.0f %12.3f %12.3f %12.3f %12.3f\n",
                to_hours(d2r.imbalance[i].first), trad_file.imbalance[i].second,
                trad.imbalance[i].second, trad_merc.imbalance[i].second,
                d2r.imbalance[i].second);
  }
  std::printf("\nmean max/mean load: trad-file=%.2f traditional=%.2f "
              "trad+merc=%.2f d2=%.2f\n",
              trad_file.mean_max_over_mean(), trad.mean_max_over_mean(),
              trad_merc.mean_max_over_mean(), d2r.mean_max_over_mean());
  std::printf(
      "\npaper's shape: trad-file worst (whole files on single nodes); D2 at\n"
      "or below the traditional DHT and close to Traditional+Mercury; D2's\n"
      "max load ~1.6x mean vs traditional's ~2.4x.\n");
  return 0;
}
