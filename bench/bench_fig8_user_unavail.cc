// Figure 8: unavailability experienced by individual users, ranked by
// decreasing unavailability, for inter = 5s. Users not shown (rank beyond
// the listed ones) experienced no unavailability.
#include <algorithm>
#include <map>

#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 8: per-user unavailability, ranked (inter=5s)",
                      "Fig 8, Section 8.2");

  const int nodes = bench::availability_nodes();
  const fs::KeyScheme schemes[] = {fs::KeyScheme::kTraditionalBlock,
                                   fs::KeyScheme::kTraditionalFile,
                                   fs::KeyScheme::kD2};

  // Aggregate over 5 trials (as in Fig 7) so the ranking is not dominated
  // by one lucky/unlucky ID assignment.
  const int trials = 5;
  std::vector<std::vector<double>> ranked(3);
  std::vector<std::size_t> affected(3);
  int si = 0;
  for (const fs::KeyScheme scheme : schemes) {
    std::map<int, double> per_user;  // mean unavailability across trials
    for (int trial = 0; trial < trials; ++trial) {
      core::AvailabilityParams p;
      p.system = bench::system_config(
          scheme, nodes, 100 + static_cast<std::uint64_t>(trial));
      p.system.replicas = 3;
      p.workload = bench::harvard_workload();
      p.failure = bench::failure_params(nodes);
      p.failure_seed = 900;
      p.warmup = days(1);
      p.inter = seconds(5);
      const core::AvailabilityResult r = core::AvailabilityExperiment(p).run();
      for (const auto& [user, u] : r.per_user_unavailability) {
        per_user[user] += u / trials;
      }
    }
    std::vector<double> vals;
    for (const auto& [user, u] : per_user) vals.push_back(u);
    std::sort(vals.begin(), vals.end(), std::greater<>());
    affected[static_cast<std::size_t>(si)] =
        static_cast<std::size_t>(std::count_if(
            vals.begin(), vals.end(), [](double v) { return v > 0; }));
    ranked[static_cast<std::size_t>(si)] = std::move(vals);
    ++si;
  }

  std::printf("%-6s %14s %18s %14s\n", "rank", "traditional",
              "traditional-file", "d2");
  const std::size_t max_rank =
      std::max({ranked[0].size(), ranked[1].size(), ranked[2].size()});
  for (std::size_t rank = 0; rank < max_rank; ++rank) {
    auto cell = [&](int s) {
      return rank < ranked[static_cast<std::size_t>(s)].size()
                 ? ranked[static_cast<std::size_t>(s)][rank]
                 : 0.0;
    };
    if (cell(0) == 0 && cell(1) == 0 && cell(2) == 0) break;
    std::printf("%-6zu %14.2e %18.2e %14.2e\n", rank + 1, cell(0), cell(1),
                cell(2));
  }
  std::printf("\nusers with any failed task: traditional=%zu, "
              "traditional-file=%zu, d2=%zu (of %d users)\n",
              affected[0], affected[1], affected[2],
              bench::harvard_workload().users);
  std::printf("paper's shape: D2 failures hit fewer users.\n");
  return 0;
}
