// Figure 13: mean per-user lookup-cache miss rate for every Figure 10
// scenario (system size x bandwidth x seq/para x scheme).
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Figure 13: mean lookup cache miss rate",
                      "Fig 13, Section 9.3");

  const fs::KeyScheme schemes[] = {fs::KeyScheme::kTraditionalBlock,
                                   fs::KeyScheme::kTraditionalFile,
                                   fs::KeyScheme::kD2};
  std::vector<bench::PerfSpec> specs;
  for (const bool para : {false, true}) {
    for (const int n : bench::performance_sizes()) {
      for (const fs::KeyScheme scheme : schemes) {
        specs.push_back({scheme, n, kbps(1500), para});
      }
    }
  }
  const std::vector<core::PerformanceResult> results = bench::perf_runs(specs);

  std::size_t idx = 0;
  for (const bool para : {false, true}) {
    std::printf("\n--- %s ---\n", para ? "para" : "seq");
    std::printf("%-8s %16s %18s %12s\n", "nodes", "traditional",
                "traditional-file", "d2");
    for (const int n : bench::performance_sizes()) {
      double vals[3];
      for (int i = 0; i < 3; ++i) {
        vals[i] = results[idx++].mean_cache_miss_rate;
      }
      std::printf("%-8d %15.1f%% %17.1f%% %11.1f%%\n", n, 100 * vals[0],
                  100 * vals[1], 100 * vals[2]);
    }
  }
  std::printf(
      "\npaper's shape: D2 ~13%% and flat in system size; traditional >47%%\n"
      "and growing with size; traditional-file in between but size-stable.\n");
  return 0;
}
