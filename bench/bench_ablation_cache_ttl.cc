// Ablation: the lookup-cache TTL (paper §5 uses 1.25 h, derived from the
// PlanetLab join/leave rate).
//
// Shorter TTLs discard still-valid range entries between a user's
// sessions (more lookups); very long TTLs risk staleness under churn —
// here the ring is stable inside the measurement windows, so this sweep
// isolates the expiry cost.
#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header("Ablation: lookup-cache TTL", "design choice from Section 5");

  const int nodes = bench::performance_sizes()[1];
  struct TtlRow {
    const char* name;
    SimTime ttl;
  };
  const TtlRow ttls[] = {
      {"5min", minutes(5)},
      {"30min", minutes(30)},
      {"1.25h", hours(1) + minutes(15)},
      {"6h", hours(6)},
      {"24h", hours(24)},
  };
  std::printf("%-8s | %14s %18s | %14s %18s\n", "ttl", "d2 miss rate",
              "d2 lookups/node", "trad miss rate", "trad lookups/node");
  for (const TtlRow& row : ttls) {
    double miss[2], msgs[2];
    int i = 0;
    for (const fs::KeyScheme scheme :
         {fs::KeyScheme::kD2, fs::KeyScheme::kTraditionalBlock}) {
      core::PerformanceParams p;
      p.system = bench::system_config(scheme, nodes);
      p.system.replicas = 4;
      p.workload = bench::harvard_workload();
      p.workload.days = 3;
      p.workload.target_active_bytes =
          static_cast<Bytes>(mB(1) * nodes * bench::scale_factor());
      p.warmup = hours(18);
      p.window_count = 4;
      p.lookup_cache_ttl = row.ttl;
      const core::PerformanceResult r = core::PerformanceExperiment(p).run();
      miss[i] = r.mean_cache_miss_rate;
      msgs[i] = r.lookup_messages_per_node;
      ++i;
    }
    std::printf("%-8s | %13.1f%% %18.1f | %13.1f%% %18.1f\n", row.name,
                100 * miss[0], msgs[0], 100 * miss[1], msgs[1]);
  }
  std::printf(
      "\nexpected: D2's miss rate is far less TTL-sensitive than the\n"
      "traditional DHT's (few ranges cover a user's whole working set, and\n"
      "they are re-learned with one lookup each).\n");
  return 0;
}
