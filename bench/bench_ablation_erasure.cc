// Ablation: whole-block replication vs erasure coding (paper §3).
//
// The paper chooses replication "for simplicity" and argues the
// D2-vs-traditional comparison holds under either scheme. Part 1 runs the
// availability experiment for both redundancy schemes under both key
// schemes. Part 2 runs the real repair engine (core/repair.h, fragments
// produced by the store/ec.h Reed–Solomon codec) through a correlated
// mass-failure week and reports durability, repair traffic (L/W), and
// MTTR — the storage overheads are derived from the codec geometry, not
// hardcoded.
#include "bench_common.h"
#include "core/repair.h"
#include "store/ec.h"

using namespace d2;

namespace {

struct Row {
  const char* name;
  double unavailability;
  double storage_x;  // physical bytes / logical bytes, from the codec
  Bytes migration;
};

Row run(const char* name, fs::KeyScheme scheme,
        core::SystemConfig::Redundancy redundancy) {
  const int nodes = bench::availability_nodes();
  core::AvailabilityParams p;
  p.system = bench::system_config(scheme, nodes, 104);
  p.system.replicas = 3;
  p.system.redundancy = redundancy;
  p.system.ec_total_fragments = 6;
  p.system.ec_data_fragments = 3;
  p.workload = bench::harvard_workload();
  p.failure = bench::failure_params(nodes);
  p.failure_seed = 900;
  p.warmup = days(1);
  p.inter = seconds(5);
  const core::AvailabilityResult r = core::AvailabilityExperiment(p).run();

  // Storage overhead n/k from the codec geometry: replication r is the
  // (1, r-1) code, (6,3) erasure stores 6 fragments per 3 data units.
  const store::ErasureCodec codec(
      redundancy == core::SystemConfig::Redundancy::kErasure ? 3 : 1,
      redundancy == core::SystemConfig::Redundancy::kErasure ? 3 : 2);
  const double storage =
      static_cast<double>(codec.n()) / static_cast<double>(codec.k());
  return Row{name, r.task_unavailability(), storage, r.migration_bytes};
}

struct RepairRow {
  const char* name;
  core::DurabilityResult result;
  double storage_x;
};

RepairRow run_repair(const char* name, bool erasure) {
  core::DurabilityParams p;
  p.repair.node_count = bench::availability_nodes();
  p.repair.erasure = erasure;
  p.repair.replicas = 3;
  p.repair.ec_data_fragments = 6;
  p.repair.ec_parity_fragments = 3;
  p.repair.seed = 901;
  p.blocks_per_node = 30;
  p.failure = bench::failure_params(p.repair.node_count);
  p.failure_seed = 902;
  const core::DurabilityResult r = core::run_durability(p);
  const double storage = erasure ? 9.0 / 6.0 : 3.0;
  return RepairRow{name, r, storage};
}

}  // namespace

int main() {
  bench::print_header("Ablation: replication vs erasure coding",
                      "redundancy discussion in Section 3");

  std::printf("%-28s %16s %10s %16s\n", "system", "unavailability",
              "storage x", "repair (MB)");
  const Row rows[] = {
      run("d2 + replication(3)", fs::KeyScheme::kD2,
          core::SystemConfig::Redundancy::kReplication),
      run("d2 + erasure(6,3)", fs::KeyScheme::kD2,
          core::SystemConfig::Redundancy::kErasure),
      run("traditional + replication(3)", fs::KeyScheme::kTraditionalBlock,
          core::SystemConfig::Redundancy::kReplication),
      run("traditional + erasure(6,3)", fs::KeyScheme::kTraditionalBlock,
          core::SystemConfig::Redundancy::kErasure),
  };
  for (const Row& r : rows) {
    std::printf("%-28s %16.2e %10.1f %16.1f\n", r.name, r.unavailability,
                r.storage_x, static_cast<double>(r.migration) / mB(1));
  }

  std::printf(
      "\nself-heal engine under a correlated-failure week (real RS codec,\n"
      "every reconstruction decode-verified):\n");
  std::printf("%-12s %10s %12s %8s %12s %12s\n", "scheme", "storage x",
              "lost/blocks", "L/W", "mttr (s)", "repairs");
  const RepairRow repair_rows[] = {
      run_repair("rep3", false),
      run_repair("rs-6-3", true),
  };
  for (const RepairRow& r : repair_rows) {
    std::printf("%-12s %10.2f %7llu/%-5zu %8.3f %12.1f %12llu\n", r.name,
                r.storage_x,
                static_cast<unsigned long long>(r.result.stats.blocks_lost),
                r.result.stats.blocks, r.result.l_over_w,
                r.result.stats.mttr_mean_s,
                static_cast<unsigned long long>(
                    r.result.stats.repairs_completed));
  }
  std::printf(
      "\nexpected (the paper's §3 argument): D2 beats traditional under\n"
      "either redundancy scheme; erasure coding cuts storage but pays\n"
      "~k x repair traffic per lost fragment and widens the failure\n"
      "surface under correlated outages.\n");
  return 0;
}
