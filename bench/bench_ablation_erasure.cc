// Ablation: whole-block replication vs erasure coding (paper §3).
//
// The paper chooses replication "for simplicity" and argues the
// D2-vs-traditional comparison holds under either scheme. This bench runs
// the availability experiment for both redundancy schemes under both key
// schemes, reporting task unavailability, storage overhead, and repair
// (migration) traffic.
#include "bench_common.h"

using namespace d2;

namespace {

struct Row {
  const char* name;
  double unavailability;
  double storage_x;   // physical bytes / logical bytes
  Bytes migration;
};

Row run(const char* name, fs::KeyScheme scheme,
        core::SystemConfig::Redundancy redundancy) {
  const int nodes = bench::availability_nodes();
  core::AvailabilityParams p;
  p.system = bench::system_config(scheme, nodes, 104);
  p.system.replicas = 3;
  p.system.redundancy = redundancy;
  p.system.ec_total_fragments = 6;
  p.system.ec_data_fragments = 3;
  p.workload = bench::harvard_workload();
  p.failure = bench::failure_params(nodes);
  p.failure_seed = 900;
  p.warmup = days(1);
  p.inter = seconds(5);
  const core::AvailabilityResult r = core::AvailabilityExperiment(p).run();

  // Storage overhead: physical vs logical bytes at trace end — rebuild
  // cheaply from a fresh system? The experiment doesn't expose its system,
  // so approximate from the scheme: replication r=3 -> 3x; EC (6,3) -> 2x.
  const double storage =
      redundancy == core::SystemConfig::Redundancy::kErasure ? 6.0 / 3.0 : 3.0;
  return Row{name, r.task_unavailability(), storage, r.migration_bytes};
}

}  // namespace

int main() {
  bench::print_header("Ablation: replication vs (6,3) erasure coding",
                      "redundancy discussion in Section 3");

  std::printf("%-28s %16s %10s %16s\n", "system", "unavailability",
              "storage x", "repair (MB)");
  const Row rows[] = {
      run("d2 + replication(3)", fs::KeyScheme::kD2,
          core::SystemConfig::Redundancy::kReplication),
      run("d2 + erasure(6,3)", fs::KeyScheme::kD2,
          core::SystemConfig::Redundancy::kErasure),
      run("traditional + replication(3)", fs::KeyScheme::kTraditionalBlock,
          core::SystemConfig::Redundancy::kReplication),
      run("traditional + erasure(6,3)", fs::KeyScheme::kTraditionalBlock,
          core::SystemConfig::Redundancy::kErasure),
  };
  for (const Row& r : rows) {
    std::printf("%-28s %16.2e %10.1f %16.1f\n", r.name, r.unavailability,
                r.storage_x, static_cast<double>(r.migration) / mB(1));
  }
  std::printf(
      "\nexpected (the paper's §3 argument): D2 beats traditional under\n"
      "either redundancy scheme; erasure halves storage but pays k x repair\n"
      "traffic after failures.\n");
  return 0;
}
