// Figure 15: comparison of access-group latencies under D2 and the
// traditional-file DHT (largest size, 1500 kbps), seq and para — the
// Figure 14 analysis against the other baseline.
#include <algorithm>

#include "bench_common.h"

using namespace d2;

int main() {
  bench::print_header(
      "Figure 15: access-group latencies, D2 vs traditional-file DHT",
      "Fig 15, Section 9.3");
  const int n = bench::performance_sizes().back();
  const std::vector<core::PerformanceResult> results = bench::perf_runs(
      {{fs::KeyScheme::kTraditionalFile, n, kbps(1500), false},
       {fs::KeyScheme::kD2, n, kbps(1500), false},
       {fs::KeyScheme::kTraditionalFile, n, kbps(1500), true},
       {fs::KeyScheme::kD2, n, kbps(1500), true}});
  for (const bool para : {false, true}) {
    const auto& base = results[para ? 2 : 0];
    const auto& d2r = results[para ? 3 : 1];
    const auto pairs = core::matched_latencies(base, d2r);

    int faster = 0, slower = 0;
    int slow_faster = 0, slow_slower = 0;  // groups > 5 s in the baseline
    for (const auto& [b, t] : pairs) {
      if (t <= b) {
        ++faster;
      } else {
        ++slower;
      }
      if (to_seconds(b) > 5) {
        if (t <= b) {
          ++slow_faster;
        } else {
          ++slow_slower;
        }
      }
    }
    std::printf("\n--- %s ---\n", para ? "para" : "seq");
    std::printf("matched groups: %zu; d2 faster: %d; d2 slower: %d\n",
                pairs.size(), faster, slower);
    std::printf("groups >5s in baseline: %d faster in d2, %d slower\n",
                slow_faster, slow_slower);
  }
  std::printf("\npaper's shape: similar to Fig 14 — the distribution's weight\n"
              "is above the diagonal.\n");
  return 0;
}
