// Figure 17: storage load imbalance over time under the Webcache
// workload (DHT starts empty; extreme churn).
#include "bench_common.h"

using namespace d2;

namespace {

core::BalanceResult run(fs::KeyScheme scheme, bool active_lb) {
  core::BalanceParams p;
  p.system = bench::system_config(scheme, bench::availability_nodes());
  p.system.replicas = 2;
  p.system.active_load_balance = active_lb;
  p.workload = core::BalanceWorkload::kWebcache;
  p.web = bench::web_workload();
  p.sample_interval = hours(4);
  return core::BalanceExperiment(p).run();
}

}  // namespace

int main() {
  bench::print_header("Figure 17: load imbalance over time (Webcache)",
                      "Fig 17, Section 10");

  const core::BalanceResult trad = run(fs::KeyScheme::kTraditionalBlock, false);
  const core::BalanceResult trad_merc = run(fs::KeyScheme::kTraditionalBlock, true);
  const core::BalanceResult d2r = run(fs::KeyScheme::kD2, true);

  std::printf("%-8s %12s %12s %12s\n", "hours", "traditional", "trad+merc",
              "d2");
  const std::size_t n = std::min(
      {trad.imbalance.size(), trad_merc.imbalance.size(), d2r.imbalance.size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-8.0f %12.3f %12.3f %12.3f\n",
                to_hours(d2r.imbalance[i].first), trad.imbalance[i].second,
                trad_merc.imbalance[i].second, d2r.imbalance[i].second);
  }
  std::printf("\nmean max/mean load: traditional=%.2f trad+merc=%.2f d2=%.2f\n",
              trad.mean_max_over_mean(), trad_merc.mean_max_over_mean(),
              d2r.mean_max_over_mean());
  std::printf(
      "\npaper's shape: volatile (high churn, warm-up spikes while the cache\n"
      "fills from empty), but after warm-up D2 stays below the traditional\n"
      "DHT in both stddev and max load.\n");
  return 0;
}
