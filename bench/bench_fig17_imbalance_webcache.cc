// Figure 17: storage load imbalance over time under the Webcache
// workload (DHT starts empty; extreme churn).
#include "bench_common.h"

using namespace d2;

namespace {

core::BalanceParams params(fs::KeyScheme scheme, bool active_lb) {
  core::BalanceParams p;
  p.system = bench::system_config(scheme, bench::availability_nodes());
  p.system.replicas = 2;
  p.system.active_load_balance = active_lb;
  p.workload = core::BalanceWorkload::kWebcache;
  p.web = bench::web_workload();
  p.sample_interval = hours(4);
  return p;
}

}  // namespace

int main() {
  bench::print_header("Figure 17: load imbalance over time (Webcache)",
                      "Fig 17, Section 10");

  const std::vector<core::BalanceResult> results =
      bench::balance_runs({params(fs::KeyScheme::kTraditionalBlock, false),
                           params(fs::KeyScheme::kTraditionalBlock, true),
                           params(fs::KeyScheme::kD2, true)});
  const core::BalanceResult& trad = results[0];
  const core::BalanceResult& trad_merc = results[1];
  const core::BalanceResult& d2r = results[2];

  std::printf("%-8s %12s %12s %12s\n", "hours", "traditional", "trad+merc",
              "d2");
  const std::size_t n = std::min(
      {trad.imbalance.size(), trad_merc.imbalance.size(), d2r.imbalance.size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-8.0f %12.3f %12.3f %12.3f\n",
                to_hours(d2r.imbalance[i].first), trad.imbalance[i].second,
                trad_merc.imbalance[i].second, d2r.imbalance[i].second);
  }
  std::printf("\nmean max/mean load: traditional=%.2f trad+merc=%.2f d2=%.2f\n",
              trad.mean_max_over_mean(), trad_merc.mean_max_over_mean(),
              d2r.mean_max_over_mean());
  std::printf(
      "\npaper's shape: volatile (high churn, warm-up spikes while the cache\n"
      "fills from empty), but after warm-up D2 stays below the traditional\n"
      "DHT in both stddev and max load.\n");
  return 0;
}
