// Figure 14: comparison of access-group latencies under D2 and the
// traditional DHT (largest size, 1500 kbps), seq and para. The paper
// plots a log-log scatter; a terminal can't, so we print the quantity the
// scatter conveys: how many groups fall above/below the diagonal, broken
// down by latency decade, plus representative pairs.
#include <algorithm>
#include <cmath>

#include "bench_common.h"

using namespace d2;

namespace {

void scatter_summary(const std::vector<std::pair<SimTime, SimTime>>& pairs) {
  // Decade buckets by baseline latency.
  struct Bucket {
    int faster = 0;  // above the diagonal: completes faster in D2
    int slower = 0;
  };
  Bucket buckets[6];  // <0.1s, <1s, <5s, <30s, <120s, rest
  auto bucket_of = [](SimTime t) {
    const double s = to_seconds(t);
    if (s < 0.1) return 0;
    if (s < 1) return 1;
    if (s < 5) return 2;
    if (s < 30) return 3;
    if (s < 120) return 4;
    return 5;
  };
  const char* names[] = {"<0.1s", "0.1-1s", "1-5s", "5-30s", "30-120s", ">120s"};
  for (const auto& [base, treat] : pairs) {
    Bucket& b = buckets[bucket_of(base)];
    if (treat <= base) {
      ++b.faster;
    } else {
      ++b.slower;
    }
  }
  std::printf("%-10s %12s %12s\n", "baseline", "d2 faster", "d2 slower");
  for (int i = 0; i < 6; ++i) {
    if (buckets[i].faster + buckets[i].slower == 0) continue;
    std::printf("%-10s %12d %12d\n", names[i], buckets[i].faster,
                buckets[i].slower);
  }
  // Slowest groups: the paper highlights that groups >5s complete faster
  // in D2, sometimes by almost an order of magnitude.
  auto sorted = pairs;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("slowest 5 groups (baseline_s -> d2_s):");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    std::printf("  %.1f->%.1f", to_seconds(sorted[i].first),
                to_seconds(sorted[i].second));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 14: access-group latencies, D2 vs traditional DHT",
      "Fig 14, Section 9.3");
  const int n = bench::performance_sizes().back();
  const std::vector<core::PerformanceResult> results = bench::perf_runs(
      {{fs::KeyScheme::kTraditionalBlock, n, kbps(1500), false},
       {fs::KeyScheme::kD2, n, kbps(1500), false},
       {fs::KeyScheme::kTraditionalBlock, n, kbps(1500), true},
       {fs::KeyScheme::kD2, n, kbps(1500), true}});
  for (const bool para : {false, true}) {
    const auto& trad = results[para ? 2 : 0];
    const auto& d2r = results[para ? 3 : 1];
    const auto pairs = core::matched_latencies(trad, d2r);
    std::printf("\n--- %s (%zu matched groups) ---\n", para ? "para" : "seq",
                pairs.size());
    scatter_summary(pairs);
  }
  std::printf(
      "\npaper's shape: the weight of the distribution is above the diagonal\n"
      "(faster in D2); in para mode some small groups are slower, but the\n"
      "long-running groups still favour D2.\n");
  return 0;
}
