// Custom-trace example: feed your own workload through the D2 stack.
//
// Writes a small trace in the d2-trace v1 text format, reads it back, and
// replays it against a D2 system — counting the store operations it
// produces and the nodes it touches. Swap the generated file for a
// converted real trace (e.g. an NFS dump) to evaluate D2 on your own
// workload.
#include <cstdio>
#include <set>
#include <sstream>

#include "common/arena.h"
#include "core/replay.h"
#include "core/system.h"
#include "trace/trace_io.h"

using namespace d2;

int main() {
  // A hand-written mini-workload: user 7 edits a project, user 8 reads
  // shared libraries.
  const char* text = R"(# d2-trace v1
0         7 create home/u7/proj/main.cc 0 24576
500000    7 create home/u7/proj/util.cc 0 8192
2000000   8 create shared/libc/libm.so 0 65536
120000000 7 read   home/u7/proj/main.cc 0 24576
121000000 7 read   home/u7/proj/util.cc 0 8192
125000000 8 read   shared/libc/libm.so 0 65536
180000000 7 write  home/u7/proj/main.cc 8192 4096
241000000 7 rename home/u7/proj/util.cc -> home/u7/proj/helpers.cc
300000000 7 read   home/u7/proj/helpers.cc 0 8192
360000000 7 remove home/u7/proj/main.cc
)";

  std::istringstream is(text);
  common::Arena arena;  // owns the parsed paths; outlives `records`
  const std::vector<trace::TraceRecord> records = trace::read_trace(is, arena);
  std::printf("parsed %zu records\n", records.size());

  sim::Simulator sim;
  core::SystemConfig config;
  config.node_count = 32;
  config.replicas = 3;
  config.scheme = fs::KeyScheme::kD2;
  core::System system(config, sim);
  core::VolumeSet volumes(config.scheme);

  std::set<int> nodes_touched;
  int puts = 0, gets = 0, removes = 0;
  std::vector<fs::StoreOp> ops;
  for (const trace::TraceRecord& r : records) {
    sim.run_until(r.time);
    ops.clear();
    volumes.apply(r, r.time, ops);
    for (const fs::StoreOp& op : ops) {
      switch (op.kind) {
        case fs::StoreOp::Kind::kPut:
          system.put(op.key, op.size);
          ++puts;
          break;
        case fs::StoreOp::Kind::kGet:
          if (auto n = system.serving_node(op.key)) nodes_touched.insert(*n);
          ++gets;
          break;
        case fs::StoreOp::Kind::kRemove:
          system.remove(op.key);
          ++removes;
          break;
      }
    }
  }
  // Flush the 30 s write-back tails.
  ops.clear();
  volumes.flush_all(records.back().time + minutes(1), ops);
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) {
      system.put(op.key, op.size);
      ++puts;
    } else if (op.kind == fs::StoreOp::Kind::kRemove) {
      system.remove(op.key);
      ++removes;
    }
  }
  sim.run_until(sim.now() + minutes(1));

  std::printf("store ops: %d puts, %d gets, %d removes\n", puts, gets, removes);
  std::printf("blocks resident: %zu (%lld KB)\n",
              system.block_map().block_count(),
              static_cast<long long>(system.block_map().total_bytes() / 1024));
  std::printf("distinct nodes serving this workload's reads: %zu of %d\n",
              nodes_touched.size(), config.node_count);
  std::printf(
      "\nthe same file (helpers.cc, ex-util.cc) kept its keys across the\n"
      "rename, and the temporary main.cc removal cleaned up its blocks.\n");
  return 0;
}
