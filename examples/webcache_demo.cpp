// Webcache demo: the DHT as a Squirrel-style cooperative web cache
// (paper §10), exercising the URL key encoding and the extreme-churn
// path of the load balancer.
#include <cstdio>
#include <set>

#include "core/webcache.h"
#include "trace/web_gen.h"

using namespace d2;

int main() {
  trace::WebParams wp;
  wp.clients = 24;
  wp.days = 2;
  wp.sites = 120;
  wp.requests_per_client_day = 200;
  wp.seed = 3;
  trace::WebGenerator gen(wp);

  sim::Simulator sim;
  core::SystemConfig config;
  config.node_count = 32;
  config.replicas = 2;
  config.scheme = fs::KeyScheme::kD2;
  core::System system(config, sim);
  system.start_load_balancing();
  core::WebCache cache(system, fs::KeyScheme::kD2);

  std::printf("=== DHT web cache (D2 URL keys), %zu requests over %d days ===\n",
              gen.records().size(), wp.days);

  std::uint64_t last_report_misses = 0, last_report_total = 0;
  SimTime next_report = hours(12);
  for (const trace::TraceRecord& r : gen.records()) {
    sim.run_until(r.time);
    cache.request(r.path, r.length);
    if (r.time >= next_report) {
      const std::uint64_t total = cache.hits() + cache.misses();
      const double window_miss_rate =
          static_cast<double>(cache.misses() - last_report_misses) /
          static_cast<double>(total - last_report_total);
      std::printf(
          "t=%5.1fh  resident=%6zu objects  window miss rate=%4.1f%%  "
          "imbalance=%.2f  migrated=%lld MB\n",
          to_hours(r.time), cache.resident_objects(), 100.0 * window_miss_rate,
          system.load_imbalance(),
          static_cast<long long>(system.migration_bytes() / mB(1)));
      last_report_misses = cache.misses();
      last_report_total = total;
      next_report += hours(12);
    }
  }

  // Where does one site's content live?
  std::set<int> site_nodes;
  for (int i = 0; i < 40; ++i) {
    const Key k = cache.key_for("www.site0.com/d0/obj" + std::to_string(i) +
                                (i % 5 == 0 ? ".html" : ".gif"));
    if (system.has(k)) site_nodes.insert(system.owner_of(k));
  }
  std::printf(
      "\ncached objects of the most popular site sit on %zu node(s) — one\n"
      "contiguous key range, despite all the insert/evict churn.\n",
      site_nodes.size());
  std::printf("total: %llu hits, %llu misses, %lld MB written, %lld MB migrated\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()),
              static_cast<long long>(system.user_write_bytes() / mB(1)),
              static_cast<long long>(system.migration_bytes() / mB(1)));
  return 0;
}
