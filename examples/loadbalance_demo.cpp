// Load-balancing demo: watch Mercury-style active balancing absorb a
// massively skewed insertion (paper §6 & §10).
//
// A large volume is inserted into a contiguous key range — under
// consistent hashing this never happens, but it is exactly what D2's
// locality-preserving keys produce. Every block initially lands on one
// replica group; the probe/split protocol then spreads primaries across
// the ring, with block pointers deferring the actual byte movement.
#include <cstdio>

#include "core/system.h"
#include "fs/volume.h"

using namespace d2;

int main() {
  sim::Simulator sim;
  core::SystemConfig config;
  config.node_count = 40;
  config.replicas = 3;
  config.scheme = fs::KeyScheme::kD2;
  config.probe_interval = minutes(10);
  config.pointer_stabilization = hours(1);
  core::System system(config, sim);

  // One user's 80 MB home volume: ~10k 8KB blocks in one key range.
  fs::Volume volume("bob-home");
  std::vector<fs::StoreOp> ops;
  for (int d = 0; d < 20; ++d) {
    for (int f = 0; f < 25; ++f) {
      volume.write("d" + std::to_string(d) + "/f" + std::to_string(f), 0,
                   kB(160), 0, ops);
    }
  }
  volume.flush(0, ops);
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) system.put(op.key, op.size);
  }

  std::printf("inserted %zu blocks (%lld MB) into one key range\n",
              system.block_map().block_count(),
              static_cast<long long>(system.block_map().total_bytes() / mB(1)));
  std::printf("%8s %12s %12s %10s %14s\n", "hours", "imbalance", "max/mean",
              "moves", "migrated (MB)");

  system.start_load_balancing();
  for (int h = 0; h <= 48; h += 4) {
    sim.run_until(hours(h));
    std::printf("%8d %12.3f %12.2f %10lld %14lld\n", h, system.load_imbalance(),
                system.max_over_mean_load(),
                static_cast<long long>(system.lb_moves()),
                static_cast<long long>(system.migration_bytes() / mB(1)));
  }

  std::printf(
      "\nimbalance = stddev/mean of per-node stored bytes. Note how moves\n"
      "happen early but bytes migrate later (pointer stabilization = 1 h),\n"
      "and the steady state keeps max/mean within the t=4 threshold.\n");
  return 0;
}
