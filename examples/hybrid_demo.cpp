// Hybrid replica placement demo (paper §11 future work).
//
// Pure D2 placement puts all r replicas on consecutive ring nodes: great
// for locality, but a correlated failure of that one neighbourhood takes
// a user's data with it, and large parallel reads are capped by the
// replica group's combined uplink. The hybrid mode keeps the successor
// chain for locality but scatters some replicas at consistent-hash
// positions — "a combination of locality preserving and consistent
// hashing replica placement" (§11).
#include <cstdio>
#include <set>

#include "core/system.h"
#include "sim/failure.h"

using namespace d2;

namespace {

struct Outcome {
  std::size_t nodes_used = 0;      // distinct nodes holding the volume
  int survived = 0;                // blocks readable during the outage
  int total = 0;
};

Outcome run(int scatter) {
  sim::Simulator sim;
  core::SystemConfig config;
  config.node_count = 40;
  config.replicas = 4;
  config.scatter_replicas = scatter;
  config.regen_delay = hours(12);  // regeneration too slow to help here
  config.seed = 21;
  core::System system(config, sim);

  // One user's project: 200 blocks in one contiguous key range.
  std::vector<Key> keys;
  for (std::uint64_t i = 0; i < 200; ++i) {
    keys.push_back(Key::from_uint64(50'000 + i * 64));
    system.put(keys.back(), kB(8));
  }

  Outcome out;
  std::set<int> nodes;
  for (const Key& k : keys) {
    for (int n : system.replica_nodes(k)) nodes.insert(n);
  }
  out.nodes_used = nodes.size();

  // Correlated outage: the whole successor neighbourhood of the volume
  // goes down (e.g., one rack / one AS).
  const auto base = system.replica_nodes(keys.front());
  std::set<int> neighbourhood(base.begin(), base.end());
  int cursor = base.front();
  for (int i = 0; i < 6; ++i) {
    neighbourhood.insert(cursor);
    cursor = system.ring().successor(cursor);
  }
  std::vector<sim::FailureTrace::DownInterval> downs;
  for (int n : neighbourhood) downs.push_back({n, minutes(10), hours(6)});
  const auto trace =
      sim::FailureTrace::from_intervals(config.node_count, days(1), downs);
  system.attach_failure_trace(&trace, 0);
  sim.run_until(hours(1));

  for (const Key& k : keys) {
    ++out.total;
    if (system.block_available(k)) ++out.survived;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Hybrid scatter placement vs a correlated outage ===\n\n");
  std::printf("%-22s %14s %22s\n", "placement", "nodes used",
              "blocks surviving outage");
  for (const int scatter : {0, 1, 2}) {
    const Outcome o = run(scatter);
    std::printf("%d scattered of 4      %14zu %15d / %d\n", scatter,
                o.nodes_used, o.survived, o.total);
  }
  std::printf(
      "\nWith pure successor placement the outage of one ring neighbourhood\n"
      "erases every replica of the volume; each scattered replica is an\n"
      "independent off-neighbourhood copy that keeps the data readable (at\n"
      "a small cost in nodes-used, i.e. lookup-cache entries).\n");
  return 0;
}
