// Quickstart: a 64-node D2 DHT hosting a small file-system volume.
//
// Shows the public API end to end:
//   1. build a System (ring + store + load balancer) inside a Simulator,
//   2. write files through a fs::Volume (locality-preserving keys),
//   3. flush the write-back cache and apply the store ops,
//   4. observe that a whole directory of files lives on just a few nodes,
//      while the same files under consistent hashing scatter everywhere.
#include <iostream>
#include <set>

#include "core/system.h"
#include "fs/key_encoding.h"
#include "fs/volume.h"

using namespace d2;

namespace {

// Writes the same little project tree into a volume and returns the set of
// DHT nodes that a reader of the whole src/ directory would contact.
std::set<int> nodes_for_project(core::System& system, fs::KeyScheme scheme) {
  fs::VolumeConfig config;
  config.scheme = scheme;
  fs::Volume volume("alice-home", config);

  std::vector<fs::StoreOp> ops;
  for (int i = 0; i < 12; ++i) {
    volume.write("project/src/module" + std::to_string(i) + ".cc", 0, kB(24),
                 seconds(i), ops);
    volume.write("project/src/module" + std::to_string(i) + ".h", 0, kB(2),
                 seconds(i), ops);
  }
  volume.write("project/Makefile", 0, kB(1), seconds(20), ops);
  volume.write("papers/draft.tex", 0, kB(120), seconds(30), ops);
  volume.flush(minutes(1), ops);

  // Store every block in the DHT.
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) system.put(op.key, op.size);
  }

  // Which nodes would a "compile the project" task touch?
  std::set<int> nodes;
  for (int i = 0; i < 12; ++i) {
    for (const fs::StoreOp& op : volume.uncached_read_ops(
             "project/src/module" + std::to_string(i) + ".cc")) {
      nodes.insert(system.owner_of(op.key));
    }
  }
  return nodes;
}

}  // namespace

int main() {
  std::cout << "=== D2 quickstart: defragmented vs traditional placement ===\n\n";

  for (const fs::KeyScheme scheme :
       {fs::KeyScheme::kD2, fs::KeyScheme::kTraditionalBlock}) {
    sim::Simulator sim;
    core::SystemConfig config;
    config.node_count = 64;
    config.replicas = 3;
    config.scheme = scheme;
    config.active_load_balance = scheme == fs::KeyScheme::kD2;
    core::System system(config, sim);

    const std::set<int> nodes = nodes_for_project(system, scheme);
    std::cout << fs::to_string(scheme) << " keys: reading the 12-file src/ "
              << "directory contacts " << nodes.size() << " of "
              << config.node_count << " nodes\n";
  }

  std::cout << "\nWith locality-preserving keys the whole task is served by a\n"
               "couple of replica groups; with hashed keys nearly every file\n"
               "lands somewhere else (more lookups, more failure exposure).\n\n";

  // Peek at the keys themselves: D2 keys of one directory are contiguous.
  fs::Volume v("alice-home");
  std::vector<fs::StoreOp> ops;
  v.write("project/src/a.cc", 0, kB(16), 0, ops);
  v.write("project/src/b.cc", 0, kB(16), 0, ops);
  v.write("papers/notes.txt", 0, kB(16), 0, ops);
  v.flush(0, ops);
  std::cout << "sample D2 keys (first 8 hex digits; note the shared prefix "
               "within src/):\n";
  for (const fs::StoreOp& op : ops) {
    if (op.kind != fs::StoreOp::Kind::kPut) continue;
    const fs::DecodedKey d = fs::decode_block_key(op.key);
    if (d.type != fs::BlockType::kData) continue;
    std::cout << "  " << op.key.short_hex() << "...  (" << op.size
              << " bytes)\n";
  }
  std::cout << "\nDone.\n";
  return 0;
}
