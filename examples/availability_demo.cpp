// Availability demo: why defragmentation survives failures (paper §8).
//
// Runs a small Harvard-like workload against the same failure trace under
// D2, a traditional (per-block consistent hashing) DHT, and a
// traditional-file DHT, and reports the fraction of user tasks that fail.
#include <cstdio>

#include "core/availability.h"

using namespace d2;

int main() {
  trace::HarvardParams workload;
  workload.users = 16;
  workload.days = 2;
  workload.target_active_bytes = mB(64);
  workload.accesses_per_user_day = 250;
  workload.seed = 42;

  core::AvailabilityParams base;
  base.workload = workload;
  base.system.node_count = 48;
  base.system.replicas = 3;
  base.failure.node_count = 48;
  base.failure.duration = days(3);
  base.failure.mttf_hours = 48;  // a rough week on PlanetLab, compressed
  base.failure.mttr_hours = 6;
  base.failure.correlated_events_per_day = 1.0;
  base.failure.correlated_fraction = 0.25;
  base.warmup = hours(12);
  base.inter = seconds(5);

  std::printf("=== Task availability under correlated failures (inter=5s) ===\n");
  std::printf("%-18s %10s %10s %14s %12s\n", "system", "tasks", "failed",
              "unavailability", "nodes/task");

  struct Row {
    const char* name;
    fs::KeyScheme scheme;
    bool lb;
  };
  const Row rows[] = {
      {"traditional", fs::KeyScheme::kTraditionalBlock, false},
      {"traditional-file", fs::KeyScheme::kTraditionalFile, false},
      {"d2", fs::KeyScheme::kD2, true},
  };
  for (const Row& row : rows) {
    core::AvailabilityParams p = base;
    p.system.scheme = row.scheme;
    p.system.active_load_balance = row.lb;
    const core::AvailabilityResult r = core::AvailabilityExperiment(p).run();
    std::printf("%-18s %10llu %10llu %14.2e %12.1f\n", row.name,
                static_cast<unsigned long long>(r.tasks),
                static_cast<unsigned long long>(r.failed_tasks),
                r.task_unavailability(), r.mean_nodes_per_task);
  }

  std::printf(
      "\nA task fails when ANY block it touches is unavailable; because D2\n"
      "tasks live on ~1-3 replica groups instead of 10+, far fewer tasks\n"
      "observe a failure.\n");
  return 0;
}
