// Per-node retrieval (read) cache.
//
// D2 balances *storage* load with Mercury; *request* load — some files
// being read far more than others — is handled the way traditional DHTs
// do it (paper §6, citing PAST): nodes keep an LRU cache of recently
// retrieved blocks, so repeated reads of a hot block are absorbed near
// the readers instead of hammering the block's replica group.
//
// This is a byte-capacity LRU keyed by block key. Entries are copies of
// immutable blocks, so invalidation is only needed for removal (version
// keys change on every write).
//
// Layout: entries live in a contiguous slab, linked into an intrusive
// LRU list by 32-bit slot indices, and found through an open-addressed
// (linear probing, backward-shift deletion) table of slot indices. A hit
// is one probe run over a contiguous index array plus four index writes
// to splice the LRU — no list-node churn, and in steady state (slab at
// its high-water mark, table sized for it) lookup/insert/evict touch the
// heap zero times (tests/test_alloc_guard.cc enforces this).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/key.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace d2::store {

struct RetrievalCacheTestPeer;

class RetrievalCache {
 public:
  explicit RetrievalCache(Bytes capacity);

  /// True (and refreshes LRU position) if `k` is cached.
  bool lookup(const Key& k);

  /// Inserts a block copy, evicting LRU entries to fit. Blocks larger
  /// than the capacity are not cached.
  void insert(const Key& k, Bytes size);

  /// Drops a block (e.g., it was removed from the system).
  void erase(const Key& k);

  Bytes used() const { return used_; }
  Bytes capacity() const { return capacity_; }
  std::size_t entries() const { return size_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Aggregates activity into shared registry counters
  /// `store.retrieval_cache.{hits,misses,evictions}` (per-node caches
  /// bound to one registry sum together). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Walks the LRU list (closed chain head<->tail, prev/next
  /// mirror each other, exactly size_ nodes), the free list (disjoint
  /// from the LRU, covers the rest of the slab), the open-addressed
  /// table (every live slot reachable by probing its key, exactly once)
  /// and the byte accounting. O(n); wired into lookup/insert/erase in
  /// paranoid builds and callable from tests in any build.
  void check_invariants() const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct RetrievalCacheTestPeer;
  static constexpr std::uint32_t kNull = 0xffffffffu;

  /// Slab entry: block metadata plus intrusive LRU links. Free slots are
  /// chained through `next`.
  struct Node {
    Key key;
    Bytes size = 0;
    std::uint32_t prev = kNull;  // toward MRU
    std::uint32_t next = kNull;  // toward LRU / next free slot
  };

  /// Table position of `k`'s slot, or the position it would occupy
  /// (table_[pos] == kNull) if absent.
  std::size_t probe(const Key& k) const;
  /// Clears table position `pos`, backward-shifting the rest of the
  /// probe run so lookups never need tombstones.
  void table_remove(std::size_t pos);
  /// Grows/initializes the table to hold `need` entries under the max
  /// load factor and reindexes every live slab slot.
  void rehash(std::size_t need);

  void lru_unlink(std::uint32_t s);
  void lru_push_front(std::uint32_t s);
  void evict_lru();
  std::uint32_t alloc_slot();

  Bytes capacity_;
  Bytes used_ = 0;
  std::size_t size_ = 0;             // live entries
  std::vector<Node> slab_;           // grows to high-water, then stable
  std::uint32_t free_head_ = kNull;  // free-slot chain through Node::next
  std::uint32_t lru_head_ = kNull;   // most recently used
  std::uint32_t lru_tail_ = kNull;   // least recently used
  std::vector<std::uint32_t> table_;  // open-addressed: slab slot or kNull
  std::size_t mask_ = 0;              // table_.size() - 1 (power of two)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  ParanoidGate audit_gate_;  // paces paranoid-build audits
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace d2::store
