// Per-node retrieval (read) cache.
//
// D2 balances *storage* load with Mercury; *request* load — some files
// being read far more than others — is handled the way traditional DHTs
// do it (paper §6, citing PAST): nodes keep an LRU cache of recently
// retrieved blocks, so repeated reads of a hot block are absorbed near
// the readers instead of hammering the block's replica group.
//
// This is a byte-capacity LRU keyed by block key. Entries are copies of
// immutable blocks, so invalidation is only needed for removal (version
// keys change on every write).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/key.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace d2::store {

class RetrievalCache {
 public:
  explicit RetrievalCache(Bytes capacity);

  /// True (and refreshes LRU position) if `k` is cached.
  bool lookup(const Key& k);

  /// Inserts a block copy, evicting LRU entries to fit. Blocks larger
  /// than the capacity are not cached.
  void insert(const Key& k, Bytes size);

  /// Drops a block (e.g., it was removed from the system).
  void erase(const Key& k);

  Bytes used() const { return used_; }
  Bytes capacity() const { return capacity_; }
  std::size_t entries() const { return map_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Aggregates activity into shared registry counters
  /// `store.retrieval_cache.{hits,misses,evictions}` (per-node caches
  /// bound to one registry sum together). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

 private:
  struct Entry {
    Key key;
    Bytes size;
  };

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace d2::store
