// Client-side DHT lookup cache (paper §5).
//
// Every lookup result carries the responsible node's key range; the cache
// stores (key range -> node, expiry) entries so future requests for keys
// in a cached range skip the DHT lookup entirely. Because D2's keys are
// locality-preserving, a user's next key usually falls in a range they
// already cached, which is where the up-to-95% lookup-traffic reduction
// comes from. Entries expire after a TTL (1.25 h in the paper, from the
// PlanetLab join/leave rate); stale entries are not a correctness problem
// because the store falls back to a normal lookup when the cached node no
// longer owns the key.
#pragma once

#include <cstdint>
#include <optional>

#include "common/key.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "store/block_index.h"

namespace d2::store {

struct LookupCacheTestPeer;

class LookupCache {
 public:
  explicit LookupCache(SimTime ttl = hours(1) + minutes(15));

  /// Caches "node owns the ring arc (arc_from, arc_to]" (the owned_arc of
  /// the node in the lookup result; arc_from == arc_to means the whole
  /// ring). Overlapping older entries are evicted — ranges change as
  /// nodes move and the newest observation wins.
  void insert(SimTime now, int node, const Key& arc_from, const Key& arc_to);

  /// Node cached for key `k`, if a live entry covers it. Also runs the
  /// lazy expiry sweep (below) when one is due.
  std::optional<int> find(SimTime now, const Key& k);

  /// Removes the entry covering `k` (after a failed hit on a stale
  /// entry), expired or not, and runs the lazy expiry sweep — a stale hit
  /// is evidence the cache's picture of the ring has aged, so expired
  /// neighbors are dropped too instead of lingering.
  void invalidate(SimTime now, const Key& k);

  /// Drops every entry whose TTL elapsed at or before `now`; returns how
  /// many were dropped. find()/insert()/invalidate() call this lazily (at
  /// most once per TTL interval), bounding a long-running client's cache
  /// at roughly one TTL's worth of insertions instead of growing without
  /// bound on ranges that are never hit again.
  std::size_t expire_entries(SimTime now);

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

  /// Aggregates this cache's activity into shared registry counters
  /// `store.lookup_cache.{hits,misses,insertions,evictions,expirations}`;
  /// the many
  /// per-user caches of an experiment all bind the same registry and sum
  /// into one system-wide figure. Per-instance hits()/misses() keep
  /// working (per-user miss rates). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Hit/miss accounting is driven by the caller, which knows whether a
  /// cached node actually served the request (a stale hit is a miss).
  void record_hit() {
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->add(1);
  }
  void record_miss() {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
  }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const;
  void reset_stats();

  SimTime ttl() const { return ttl_; }

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Audits the underlying sorted index plus the range
  /// entries themselves (start <= end, nothing scheduled to never
  /// expire). Wired into insert/invalidate/expire in paranoid builds and
  /// callable from tests in any build.
  void check_invariants() const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct LookupCacheTestPeer;
  // Entries are closed intervals [start, end] on key order (never
  // wrapping; a wrapping ring arc is split into two entries), keyed by
  // `end` in a chunked sorted index (the same SortedKeyIndex machinery as
  // the block map), so a find is one directory probe plus an in-chunk
  // binary search over contiguous keys — no tree-node pointer chasing —
  // and coverage is two comparisons. Iteration order matches the std::map
  // this replaced, so hit/miss sequences (and therefore seeded experiment
  // outputs) are unchanged.
  struct Entry {
    int node;
    Key start;  // inclusive; the index key is the inclusive end
    SimTime expires;
  };

  void insert_piece(SimTime now, int node, const Key& start, const Key& end);
  /// Runs expire_entries when the periodic sweep is due.
  void maybe_sweep(SimTime now);

  SortedKeyIndex<Entry> entries_;
  SimTime ttl_;
  SimTime next_sweep_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* insertions_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* expirations_counter_ = nullptr;
};

}  // namespace d2::store
