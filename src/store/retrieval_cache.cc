#include "store/retrieval_cache.h"

#include "common/assert.h"

namespace d2::store {

RetrievalCache::RetrievalCache(Bytes capacity) : capacity_(capacity) {
  D2_REQUIRE(capacity >= 0);
}

void RetrievalCache::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    evictions_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("store.retrieval_cache.hits");
  misses_counter_ = &registry->counter("store.retrieval_cache.misses");
  evictions_counter_ = &registry->counter("store.retrieval_cache.evictions");
}

bool RetrievalCache::lookup(const Key& k) {
  auto it = map_.find(k);
  if (it == map_.end()) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  ++hits_;
  if (hits_counter_ != nullptr) hits_counter_->add(1);
  return true;
}

void RetrievalCache::insert(const Key& k, Bytes size) {
  D2_REQUIRE(size >= 0);
  if (size > capacity_) return;
  auto it = map_.find(k);
  if (it != map_.end()) {
    used_ += size - it->second->size;
    it->second->size = size;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{k, size});
    map_.emplace(k, lru_.begin());
    used_ += size;
  }
  while (used_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.key);
    lru_.pop_back();
    if (evictions_counter_ != nullptr) evictions_counter_->add(1);
  }
}

void RetrievalCache::erase(const Key& k) {
  auto it = map_.find(k);
  if (it == map_.end()) return;
  used_ -= it->second->size;
  lru_.erase(it->second);
  map_.erase(it);
}

}  // namespace d2::store
