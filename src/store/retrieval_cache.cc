#include "store/retrieval_cache.h"

#include "common/assert.h"
#include "common/hash.h"

namespace d2::store {

namespace {
constexpr std::size_t kMinTable = 16;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = kMinTable;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

RetrievalCache::RetrievalCache(Bytes capacity) : capacity_(capacity) {
  D2_REQUIRE(capacity >= 0);
}

void RetrievalCache::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    evictions_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("store.retrieval_cache.hits");
  misses_counter_ = &registry->counter("store.retrieval_cache.misses");
  evictions_counter_ = &registry->counter("store.retrieval_cache.evictions");
}

std::size_t RetrievalCache::probe(const Key& k) const {
  std::size_t pos = KeyHash{}(k) & mask_;
  while (table_[pos] != kNull && !(slab_[table_[pos]].key == k)) {
    pos = (pos + 1) & mask_;
  }
  return pos;
}

void RetrievalCache::table_remove(std::size_t pos) {
  // Backward-shift deletion (Knuth 6.4 R): pull every displaced entry in
  // the probe run back over the hole instead of leaving a tombstone, so
  // table occupancy equals the live count and steady-state churn never
  // degrades probe runs or forces a cleanup rehash.
  std::size_t hole = pos;
  std::size_t j = pos;
  while (true) {
    table_[hole] = kNull;
    while (true) {
      j = (j + 1) & mask_;
      if (table_[j] == kNull) return;
      const std::size_t home = KeyHash{}(slab_[table_[j]].key) & mask_;
      // Entry at j can fill the hole unless its home lies cyclically in
      // (hole, j] — moving it would put it before its probe start.
      const bool skip = hole <= j ? (hole < home && home <= j)
                                  : (hole < home || home <= j);
      if (!skip) break;
    }
    table_[hole] = table_[j];
    hole = j;
  }
}

void RetrievalCache::rehash(std::size_t need) {
  // Max load factor 1/2: probe runs stay short even for adversarial key
  // clusters, and the 4-byte-per-bucket table is cheap to overprovision.
  const std::size_t buckets = next_pow2(need * 2);
  table_.assign(buckets, kNull);
  mask_ = buckets - 1;
  for (std::uint32_t s = lru_head_; s != kNull; s = slab_[s].next) {
    std::size_t pos = KeyHash{}(slab_[s].key) & mask_;
    while (table_[pos] != kNull) pos = (pos + 1) & mask_;
    table_[pos] = s;
  }
}

void RetrievalCache::lru_unlink(std::uint32_t s) {
  Node& n = slab_[s];
  if (n.prev != kNull) {
    slab_[n.prev].next = n.next;
  } else {
    lru_head_ = n.next;
  }
  if (n.next != kNull) {
    slab_[n.next].prev = n.prev;
  } else {
    lru_tail_ = n.prev;
  }
}

void RetrievalCache::lru_push_front(std::uint32_t s) {
  Node& n = slab_[s];
  n.prev = kNull;
  n.next = lru_head_;
  if (lru_head_ != kNull) slab_[lru_head_].prev = s;
  lru_head_ = s;
  if (lru_tail_ == kNull) lru_tail_ = s;
}

std::uint32_t RetrievalCache::alloc_slot() {
  if (free_head_ != kNull) {
    const std::uint32_t s = free_head_;
    free_head_ = slab_[s].next;
    return s;
  }
  const std::uint32_t s = static_cast<std::uint32_t>(slab_.size());
  D2_REQUIRE_MSG(s < kNull, "retrieval cache slab exhausted");
  slab_.emplace_back();
  return s;
}

void RetrievalCache::evict_lru() {
  const std::uint32_t victim = lru_tail_;
  D2_ASSERT(victim != kNull);
  used_ -= slab_[victim].size;
  table_remove(probe(slab_[victim].key));
  lru_unlink(victim);
  slab_[victim].next = free_head_;
  free_head_ = victim;
  --size_;
  if (evictions_counter_ != nullptr) evictions_counter_->add(1);
}

bool RetrievalCache::lookup(const Key& k) {
  if (table_.empty()) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    return false;
  }
  const std::size_t pos = probe(k);
  if (table_[pos] == kNull) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->add(1);
    return false;
  }
  const std::uint32_t s = table_[pos];
  if (s != lru_head_) {  // move to front
    lru_unlink(s);
    lru_push_front(s);
  }
  ++hits_;
  if (hits_counter_ != nullptr) hits_counter_->add(1);
  D2_PARANOID_AUDIT(if (audit_gate_.due(slab_.size())) check_invariants());
  return true;
}

void RetrievalCache::insert(const Key& k, Bytes size) {
  D2_REQUIRE(size >= 0);
  if (size > capacity_) return;
  if (table_.empty()) rehash(kMinTable / 2);
  std::size_t pos = probe(k);
  if (table_[pos] != kNull) {
    // Refresh in place (a re-retrieved block, possibly a new size).
    const std::uint32_t s = table_[pos];
    used_ += size - slab_[s].size;
    slab_[s].size = size;
    if (s != lru_head_) {
      lru_unlink(s);
      lru_push_front(s);
    }
  } else {
    // Grow before inserting so the table never exceeds half full. In
    // steady state (slab at high-water) this never triggers: evictions
    // backward-shift their table run, so occupancy tracks live entries.
    if ((size_ + 1) * 2 > table_.size()) {
      rehash(size_ + 1);
      pos = probe(k);
    }
    const std::uint32_t s = alloc_slot();
    slab_[s].key = k;
    slab_[s].size = size;
    table_[pos] = s;
    lru_push_front(s);
    ++size_;
    used_ += size;
  }
  while (used_ > capacity_ && size_ > 0) evict_lru();
  D2_PARANOID_AUDIT(if (audit_gate_.due(slab_.size())) check_invariants());
}

void RetrievalCache::erase(const Key& k) {
  if (table_.empty()) return;
  const std::size_t pos = probe(k);
  if (table_[pos] == kNull) return;
  const std::uint32_t s = table_[pos];
  used_ -= slab_[s].size;
  table_remove(pos);
  lru_unlink(s);
  slab_[s].next = free_head_;
  free_head_ = s;
  --size_;
  D2_PARANOID_AUDIT(if (audit_gate_.due(slab_.size())) check_invariants());
}

void RetrievalCache::check_invariants() const {
  const std::size_t slots = slab_.size();

  // LRU list: a closed chain from head to tail whose prev/next links
  // mirror each other and which visits exactly size_ slots.
  std::vector<char> live(slots, 0);
  std::size_t lru_count = 0;
  Bytes used = 0;
  std::uint32_t prev = kNull;
  for (std::uint32_t s = lru_head_; s != kNull; s = slab_[s].next) {
    D2_ASSERT_MSG(s < slots, "retrieval cache: LRU link out of range");
    D2_ASSERT_MSG(live[s] == 0, "retrieval cache: LRU list cycle");
    D2_ASSERT_MSG(slab_[s].prev == prev,
                  "retrieval cache: LRU prev/next links disagree");
    live[s] = 1;
    ++lru_count;
    used += slab_[s].size;
    prev = s;
  }
  D2_ASSERT_MSG(prev == lru_tail_, "retrieval cache: LRU ring not closed");
  D2_ASSERT_MSG(lru_count == size_,
                "retrieval cache: LRU length disagrees with size_");
  D2_ASSERT_MSG(used == used_,
                "retrieval cache: byte accounting out of sync");
  D2_ASSERT_MSG(used_ <= capacity_, "retrieval cache: over capacity");

  // Free list: covers every slot the LRU does not.
  std::size_t free_count = 0;
  for (std::uint32_t s = free_head_; s != kNull; s = slab_[s].next) {
    D2_ASSERT_MSG(s < slots, "retrieval cache: free-list link out of range");
    D2_ASSERT_MSG(live[s] == 0,
                  "retrieval cache: slot both cached and free (or free-list "
                  "cycle)");
    live[s] = 2;
    ++free_count;
  }
  D2_ASSERT_MSG(lru_count + free_count == slots,
                "retrieval cache: orphaned slab slot");

  // Table: exactly the live slots appear, each reachable by probing its
  // own key (no break in its probe run).
  if (table_.empty()) {
    D2_ASSERT_MSG(size_ == 0, "retrieval cache: entries but no table");
    return;
  }
  D2_ASSERT_MSG(mask_ == table_.size() - 1 &&
                    (table_.size() & mask_) == 0,
                "retrieval cache: table size not a power of two");
  std::size_t table_count = 0;
  for (std::size_t pos = 0; pos < table_.size(); ++pos) {
    const std::uint32_t s = table_[pos];
    if (s == kNull) continue;
    ++table_count;
    D2_ASSERT_MSG(s < slots, "retrieval cache: table slot out of range");
    D2_ASSERT_MSG(live[s] == 1,
                  "retrieval cache: table references a non-cached slot");
  }
  D2_ASSERT_MSG(table_count == size_,
                "retrieval cache: table population disagrees with size_");
  for (std::uint32_t s = lru_head_; s != kNull; s = slab_[s].next) {
    const std::size_t pos = probe(slab_[s].key);
    D2_ASSERT_MSG(table_[pos] == s,
                  "retrieval cache: entry unreachable from its probe chain");
  }
}

}  // namespace d2::store
