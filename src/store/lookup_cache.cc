#include "store/lookup_cache.h"

#include "common/assert.h"

namespace d2::store {

LookupCache::LookupCache(SimTime ttl) : ttl_(ttl) { D2_REQUIRE(ttl > 0); }

void LookupCache::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    insertions_counter_ = nullptr;
    evictions_counter_ = nullptr;
    expirations_counter_ = nullptr;
    return;
  }
  hits_counter_ = &registry->counter("store.lookup_cache.hits");
  misses_counter_ = &registry->counter("store.lookup_cache.misses");
  insertions_counter_ = &registry->counter("store.lookup_cache.insertions");
  evictions_counter_ = &registry->counter("store.lookup_cache.evictions");
  expirations_counter_ = &registry->counter("store.lookup_cache.expirations");
}

std::size_t LookupCache::expire_entries(SimTime now) {
  const std::size_t dropped = entries_.erase_if(
      [now](const Key&, const Entry& e) { return e.expires <= now; });
  if (dropped > 0 && expirations_counter_ != nullptr) {
    expirations_counter_->add(static_cast<std::int64_t>(dropped));
  }
  next_sweep_ = now + ttl_;
  return dropped;
}

void LookupCache::maybe_sweep(SimTime now) {
  // A full sweep per TTL interval: anything inserted before the previous
  // sweep has expired by the next one, so the map never holds more than
  // ~one TTL's worth of live insertions plus one interval of stale ones.
  if (now >= next_sweep_) expire_entries(now);
}

void LookupCache::insert(SimTime now, int node, const Key& arc_from,
                         const Key& arc_to) {
  D2_REQUIRE_MSG(node >= 0, "caching a negative node index");
  maybe_sweep(now);
  if (arc_from == arc_to) {
    // Whole ring (single-node DHT).
    insert_piece(now, node, Key::min(), Key::max());
    return;
  }
  if (arc_from < arc_to) {
    insert_piece(now, node, arc_from.next(), arc_to);
    return;
  }
  // Wrapping arc (arc_from, MAX] + [MIN, arc_to].
  if (!(arc_from == Key::max())) {
    insert_piece(now, node, arc_from.next(), Key::max());
  }
  insert_piece(now, node, Key::min(), arc_to);
}

void LookupCache::insert_piece(SimTime now, int node, const Key& start,
                               const Key& end) {
  D2_ASSERT(start <= end);
  // Evict everything overlapping [start, end]: entries with end >= start
  // and start <= end. Each erase invalidates index pointers, so re-probe;
  // overlaps per insert are few (ranges partition the ring).
  while (true) {
    const auto e = entries_.first_ge(start);  // first entry-end >= start
    if (e.key == nullptr || !(e.value->start <= end)) break;
    const Key victim = *e.key;  // *e.key lives in the index being mutated
    entries_.erase(victim);
    if (evictions_counter_ != nullptr) evictions_counter_->add(1);
  }
  entries_.insert(end, Entry{node, start, now + ttl_});
  if (insertions_counter_ != nullptr) insertions_counter_->add(1);
  D2_PARANOID_AUDIT(check_invariants());
}

std::optional<int> LookupCache::find(SimTime now, const Key& k) {
  maybe_sweep(now);
  const auto e = entries_.first_ge(k);  // first entry-end >= k
  if (e.key == nullptr) return std::nullopt;
  if (!(e.value->start <= k)) return std::nullopt;
  if (e.value->expires <= now) {
    const Key victim = *e.key;
    entries_.erase(victim);
    if (expirations_counter_ != nullptr) expirations_counter_->add(1);
    return std::nullopt;
  }
  return e.value->node;
}

void LookupCache::invalidate(SimTime now, const Key& k) {
  const auto e = entries_.first_ge(k);
  if (e.key != nullptr && e.value->start <= k) {
    const Key victim = *e.key;
    entries_.erase(victim);
  }
  maybe_sweep(now);
  D2_PARANOID_AUDIT(check_invariants());
}

double LookupCache::miss_rate() const {
  const std::uint64_t total = hits_ + misses_;
  if (total == 0) return 0.0;
  return static_cast<double>(misses_) / static_cast<double>(total);
}

void LookupCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

void LookupCache::check_invariants() const {
  entries_.check_invariants();
  const_cast<SortedKeyIndex<Entry>&>(entries_).for_each(
      [](const Key& end, Entry& e) {
        D2_ASSERT_MSG(e.start <= end,
                      "lookup cache: range start past its end key");
      });
}

}  // namespace d2::store
