// Authoritative map of every block in the DHT and where its replicas live.
//
// D2-Store keeps each block on the r immediate successors of its key (§3).
// BlockMap tracks, per block, the current responsible replica set and
// which members physically hold the data versus a *block pointer* (§6):
// after a load-balancing ID change the new owner initially holds only a
// pointer and fetches the bytes later (pointer stabilization), which is
// how D2 avoids moving the same block repeatedly during rebalancing.
//
// The map also maintains the per-node accounting the experiments need:
// primary replica count (the load-balancing metric), primary bytes, and
// physical bytes (for the §10 imbalance figures), all updated
// incrementally.
//
// Blocks live in a SortedKeyIndex (chunked sorted arrays) rather than a
// std::map, so the load balancer's owned-arc range scans walk contiguous
// cache lines instead of tree nodes; iteration order (key order) and thus
// every seeded experiment output is unchanged.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/key.h"
#include "common/units.h"
#include "store/block_index.h"

namespace d2::store {

struct BlockMapTestPeer;

/// One member of a block's responsible replica set.
struct Replica {
  int node = -1;
  bool has_data = false;       // physical copy present (false => pointer)
  SimTime pointer_since = 0;   // when this member became responsible
  bool fetch_in_flight = false;
};

struct BlockState {
  Bytes size = 0;
  /// Bytes each member physically stores: == size under whole-block
  /// replication, == ceil(size / k) under (n, k) erasure coding.
  Bytes member_bytes = 0;
  /// Responsible replica set, in successor order (first = primary).
  std::vector<Replica> replicas;
  /// Nodes that still hold a stale physical copy (sheds pending pointer
  /// resolution elsewhere). Not responsible for the block.
  std::vector<int> stale_holders;

  bool any_data() const;
  bool node_has_data(int node) const;
  bool is_replica(int node) const;
};

class BlockMap {
 public:
  explicit BlockMap(int node_count);

  int node_count() const { return node_count_; }

  /// Inserts a block whose replica set is `nodes` (all holding data
  /// immediately — a fresh write pushes bytes to all replicas).
  /// `member_bytes` is what each member stores (defaults to `size`, i.e.
  /// whole-block replication; erasure coding passes the fragment size).
  void insert(const Key& k, Bytes size, const std::vector<int>& nodes,
              Bytes member_bytes = -1);

  /// Removes a block entirely.
  void erase(const Key& k);

  bool contains(const Key& k) const { return blocks_.contains(k); }
  const BlockState* find(const Key& k) const { return blocks_.find(k); }
  BlockState* find_mutable(const Key& k) { return blocks_.find(k); }

  std::size_t block_count() const { return blocks_.size(); }
  Bytes total_bytes() const { return total_bytes_; }

  /// Per-node accounting.
  std::int64_t primary_count(int node) const;
  Bytes primary_bytes(int node) const;
  Bytes physical_bytes(int node) const;

  /// Key that splits `node`'s primary arc (from, to] into halves by block
  /// count: the median block's key. nullopt if the node owns < 2 blocks.
  std::optional<Key> median_primary_key(const Key& from, const Key& to) const;

  /// Visits blocks with keys in the clockwise arc (from, to]; handles wrap.
  /// `fn(const Key&, BlockState&)` must not insert or erase blocks. A
  /// template (not std::function) so the per-block call is direct — these
  /// walks are the load balancer's inner loop.
  template <class Fn>
  void for_each_in_arc(const Key& from, const Key& to, Fn&& fn) {
    blocks_.for_each_in_arc(from, to, std::forward<Fn>(fn));
  }

  /// Keys in the arc (from, to].
  std::vector<Key> keys_in_arc(const Key& from, const Key& to) const;

  /// --- replica-state mutators (keep the accounting consistent) ---

  /// Replaces the responsible set of block `k` with `nodes`. Members kept
  /// from the old set keep their data/pointer state; new members join as
  /// pointers (pointer_since = now). Members removed drop out: their data
  /// copy is deleted unless it is still needed as a fetch source (some
  /// remaining replica lacks data), in which case it becomes a stale
  /// holder. `primary_changed` reports old/new primary for accounting.
  void reassign_replicas(const Key& k, const std::vector<int>& nodes,
                         SimTime now);

  /// Marks the replica at `node` as holding data (pointer resolved after a
  /// fetch). Drops stale holders that are no longer needed.
  void mark_data(const Key& k, int node);

  /// Downgrades the replica at `node` to a pointer (the write could not
  /// reach it — e.g. the node is down). Inverse of mark_data.
  void mark_missing(const Key& k, int node);

  /// Visits all blocks in key order (for iteration by experiments).
  /// `fn(const Key&, const BlockState&)` must not insert or erase blocks.
  template <class Fn>
  void for_each_block(Fn&& fn) const {
    const_cast<SortedKeyIndex<BlockState>&>(blocks_).for_each(
        [&fn](const Key& k, BlockState& b) {
          fn(k, static_cast<const BlockState&>(b));
        });
  }

  /// Mutable variant for callers that adjust per-replica state in bulk
  /// (e.g. failure injection flipping has_data). `fn(const Key&,
  /// BlockState&)` must not insert or erase blocks, and must keep the
  /// per-node accounting consistent via mark_data/mark_missing rather
  /// than flipping Replica fields directly.
  template <class Fn>
  void for_each_block_mut(Fn&& fn) {
    blocks_.for_each(std::forward<Fn>(fn));
  }

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Audits the underlying sorted index, every block's replica
  /// set (non-empty, in-range, duplicate-free, stale holders disjoint and
  /// only present while a replica lacks data) and recomputes the per-node
  /// primary/physical accounting from scratch against the incremental
  /// counters. O(blocks x replicas); wired into the mutators in paranoid
  /// builds and callable from tests in any build.
  void check_invariants() const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct BlockMapTestPeer;
  void account_add_data(int node, Bytes size);
  void account_remove_data(int node, Bytes size);
  void account_add_primary(int node, Bytes size);
  void account_remove_primary(int node, Bytes size);
  void prune_stale(const Key& k, BlockState& b);

  int node_count_;
  SortedKeyIndex<BlockState> blocks_;
  Bytes total_bytes_ = 0;
  std::vector<std::int64_t> primary_count_;
  std::vector<Bytes> primary_bytes_;
  std::vector<Bytes> physical_bytes_;
  ParanoidGate audit_gate_;  // paces paranoid-build audits
};

}  // namespace d2::store
