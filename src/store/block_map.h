// Authoritative map of every block in the DHT and where its replicas live.
//
// D2-Store keeps each block on the r immediate successors of its key (§3).
// BlockMap tracks, per block, the current responsible replica set and
// which members physically hold the data versus a *block pointer* (§6):
// after a load-balancing ID change the new owner initially holds only a
// pointer and fetches the bytes later (pointer stabilization), which is
// how D2 avoids moving the same block repeatedly during rebalancing.
//
// The map also maintains the per-node accounting the experiments need:
// primary replica count (the load-balancing metric), primary bytes, and
// physical bytes (for the §10 imbalance figures), all updated
// incrementally.
//
// ## Arc slices (DESIGN.md §9)
//
// The map is sharded into `arcs` contiguous keyspace slices routed by
// ArcPlan — the same partition the arc-partitioned Simulator uses — so
// a simulation lane that owns arc `a` may mutate blocks of arc `a`
// without synchronisation: every mutator touches only the owning
// slice's index, accounting vectors, and audit gate. Key order is
// preserved globally because slice order == key order (arcs are
// contiguous and ascending), so iteration, range walks, and therefore
// every seeded experiment output are unchanged for any arc count.
// check_invariants() additionally audits the ownership bijection: a key
// stored in slice `a` satisfies plan.arc_of(key) == a.
//
// Blocks live in a SortedKeyIndex (chunked sorted arrays) per slice
// rather than a std::map, so the load balancer's owned-arc range scans
// walk contiguous cache lines instead of tree nodes.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/arc_plan.h"
#include "common/key.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "store/block_index.h"

namespace d2::store {

struct BlockMapTestPeer;

/// One member of a block's responsible replica set.
struct Replica {
  int node = -1;
  bool has_data = false;       // physical copy present (false => pointer)
  SimTime pointer_since = 0;   // when this member became responsible
  bool fetch_in_flight = false;
};

struct BlockState {
  Bytes size = 0;
  /// Bytes each member physically stores: == size under whole-block
  /// replication, == ceil(size / k) under (n, k) erasure coding.
  Bytes member_bytes = 0;
  /// Responsible replica set, in successor order (first = primary).
  std::vector<Replica> replicas;
  /// Nodes that still hold a stale physical copy (sheds pending pointer
  /// resolution elsewhere). Not responsible for the block.
  std::vector<int> stale_holders;

  bool any_data() const;
  bool node_has_data(int node) const;
  bool is_replica(int node) const;
};

class BlockMap {
 public:
  explicit BlockMap(int node_count, int arcs = 1);

  int node_count() const { return node_count_; }
  int arcs() const { return plan_.arcs(); }
  /// Which slice (and simulation arc) owns key `k`.
  int arc_of(const Key& k) const { return plan_.arc_of(k); }

  /// Inserts a block whose replica set is `nodes` (all holding data
  /// immediately — a fresh write pushes bytes to all replicas).
  /// `member_bytes` is what each member stores (defaults to `size`, i.e.
  /// whole-block replication; erasure coding passes the fragment size).
  void insert(const Key& k, Bytes size, const std::vector<int>& nodes,
              Bytes member_bytes = -1);

  /// Removes a block entirely.
  void erase(const Key& k);

  bool contains(const Key& k) const { return slice_of(k).index.contains(k); }
  const BlockState* find(const Key& k) const { return slice_of(k).index.find(k); }
  BlockState* find_mutable(const Key& k) { return slice_of(k).index.find(k); }

  std::size_t block_count() const;
  Bytes total_bytes() const;

  /// Blocks stored in one slice. Unlike block_count() this reads a single
  /// slice, so the owning arc's lane may call it while other slices are
  /// being mutated.
  std::size_t slice_block_count(int arc) const {
    return slices_[static_cast<std::size_t>(arc)].index.size();
  }

  /// Per-node accounting (summed across slices).
  std::int64_t primary_count(int node) const;
  Bytes primary_bytes(int node) const;
  Bytes physical_bytes(int node) const;

  /// Key that splits `node`'s primary arc (from, to] into halves by block
  /// count: the median block's key. nullopt if the node owns < 2 blocks.
  std::optional<Key> median_primary_key(const Key& from, const Key& to) const;

  /// Visits blocks with keys in the clockwise arc (from, to]; handles
  /// wrap and slice boundaries. `fn(const Key&, BlockState&)` must not
  /// insert or erase blocks. A template (not std::function) so the
  /// per-block call is direct — these walks are the load balancer's
  /// inner loop. from == to visits the whole ring.
  template <class Fn>
  void for_each_in_arc(const Key& from, const Key& to, Fn&& fn) {
    walk_in_arc(from, to, [&fn](const Key& k, BlockState& b) {
      fn(k, b);
      return true;
    });
  }

  /// Keys in the arc (from, to].
  std::vector<Key> keys_in_arc(const Key& from, const Key& to) const;

  /// --- replica-state mutators (keep the accounting consistent) ---

  /// Replaces the responsible set of block `k` with `nodes`. Members kept
  /// from the old set keep their data/pointer state; new members join as
  /// pointers (pointer_since = now). Members removed drop out: their data
  /// copy is deleted unless it is still needed as a fetch source (some
  /// remaining replica lacks data), in which case it becomes a stale
  /// holder. `primary_changed` reports old/new primary for accounting.
  void reassign_replicas(const Key& k, const std::vector<int>& nodes,
                         SimTime now);

  /// Marks the replica at `node` as holding data (pointer resolved after a
  /// fetch). Drops stale holders that are no longer needed.
  void mark_data(const Key& k, int node);

  /// Downgrades the replica at `node` to a pointer (the write could not
  /// reach it — e.g. the node is down). Inverse of mark_data.
  void mark_missing(const Key& k, int node);

  /// Removes `node` from the block's stale holders (its physical copy was
  /// destroyed, e.g. disk loss). No-op if `node` is not a stale holder.
  void drop_stale(const Key& k, int node);

  /// Visits all blocks in key order (for iteration by experiments).
  /// `fn(const Key&, const BlockState&)` must not insert or erase blocks.
  template <class Fn>
  void for_each_block(Fn&& fn) const {
    for (const Slice& s : slices_) {
      const_cast<SortedKeyIndex<BlockState>&>(s.index).for_each(
          [&fn](const Key& k, BlockState& b) {
            fn(k, static_cast<const BlockState&>(b));
          });
    }
  }

  /// Mutable variant for callers that adjust per-replica state in bulk
  /// (e.g. failure injection flipping has_data). `fn(const Key&,
  /// BlockState&)` must not insert or erase blocks, and must keep the
  /// per-node accounting consistent via mark_data/mark_missing rather
  /// than flipping Replica fields directly.
  template <class Fn>
  void for_each_block_mut(Fn&& fn) {
    for (Slice& s : slices_) s.index.for_each(fn);
  }

  /// Early-exit range walk over (from, to]: `fn(const Key&, BlockState&)`
  /// returns false to stop. from == to visits the whole ring.
  template <class Fn>
  void walk_in_arc(const Key& from, const Key& to, Fn&& fn) {
    if (from == to) {
      // Whole ring: every slice, in key (== slice) order.
      for (Slice& s : slices_) {
        bool more = true;
        s.index.walk_in_arc(from, to, [&](const Key& k, BlockState& b) {
          more = fn(k, b);
          return more;
        });
        if (!more) return;
      }
      return;
    }
    if (from < to) {
      walk_slices(plan_.arc_of(from), plan_.arc_of(to), from, to,
                  std::forward<Fn>(fn));
      return;
    }
    // Wrapped arc: clockwise (from, max] then (min-1, to] == [min, to].
    // Each leg is non-wrapping within its slices; skip a leg that is
    // empty by construction (from == max has nothing after it).
    bool more = true;
    if (!(from == Key::max())) {
      walk_slices(plan_.arc_of(from), plan_.arcs() - 1, from, Key::max(),
                  [&](const Key& k, BlockState& b) {
                    more = fn(k, b);
                    return more;
                  });
    }
    if (more) {
      // (max, to] under the slice walker's wrap rules == keys <= to.
      walk_slices(0, plan_.arc_of(to), Key::max(), to, std::forward<Fn>(fn));
    }
  }

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Audits every slice's sorted index, the slice-ownership
  /// bijection (each stored key maps back to its slice under ArcPlan),
  /// every block's replica set (non-empty, in-range, duplicate-free,
  /// stale holders disjoint and only present while a replica lacks data)
  /// and recomputes the per-node primary/physical accounting from
  /// scratch against the incremental per-slice counters. O(blocks x
  /// replicas); the mutators run slice-local audits in paranoid builds
  /// and this full audit is callable from tests in any build.
  void check_invariants() const;

  /// Slice-local audit (the slice's index, blocks and accounting plus
  /// its ownership bijection); safe to run from the arc's own lane.
  void check_slice_invariants(int arc) const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct BlockMapTestPeer;

  /// Arc-confined shard: a lane owning arc `a` may touch only slice `a`.
  struct Slice {
    SortedKeyIndex<BlockState> index;
    Bytes total_bytes = 0;
    std::vector<std::int64_t> primary_count;
    std::vector<Bytes> primary_bytes;
    std::vector<Bytes> physical_bytes;
    ParanoidGate audit_gate;  // paces paranoid-build audits
  };

  Slice& slice_of(const Key& k) {
    return slices_[static_cast<std::size_t>(plan_.arc_of(k))];
  }
  const Slice& slice_of(const Key& k) const {
    return slices_[static_cast<std::size_t>(plan_.arc_of(k))];
  }

  /// Runs `fn` over slices [first_arc, last_arc] with the slice-level
  /// walk bounds (from, to]; fn returns false to stop.
  template <class Fn>
  void walk_slices(int first_arc, int last_arc, const Key& from, const Key& to,
                   Fn&& fn) {
    for (int arc = first_arc; arc <= last_arc; ++arc) {
      bool more = true;
      slices_[static_cast<std::size_t>(arc)].index.walk_in_arc(
          from, to, [&](const Key& k, BlockState& b) {
            more = fn(k, b);
            return more;
          });
      if (!more) return;
    }
  }

  static void account_add_data(Slice& s, int node, Bytes size);
  static void account_remove_data(Slice& s, int node, Bytes size);
  static void account_add_primary(Slice& s, int node, Bytes size);
  static void account_remove_primary(Slice& s, int node, Bytes size);
  void prune_stale(Slice& s, BlockState& b);

  int node_count_;
  ArcPlan plan_;
  std::vector<Slice> slices_ D2_SHARDED_BY_ARC(arc);
};

}  // namespace d2::store
