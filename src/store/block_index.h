// Sorted contiguous index of Key -> Value (block states, cache entries).
//
// The load balancer's probe/readjust cycle is dominated by ordered range
// scans over block keys (owned-arc walks, median splits), and the client
// lookup cache's range probe is an ordered lower_bound per find. A
// red-black tree walks one heap node per step — a cache miss each. This
// index keeps keys in sorted chunks of contiguous memory (a two-level
// B+-tree: a flat directory of per-chunk max keys over leaf chunks of up
// to kMaxChunk entries), so point lookups are two binary searches over
// contiguous arrays and range scans stream cache lines.
//
// Iteration order is exactly key order — identical to the std::map this
// replaced — so every seeded experiment output is unchanged.
//
// Mutation during iteration is not allowed (callers snapshot keys first,
// as System::readjust_arc does). Pointers returned by find() are
// invalidated by insert/erase, like any vector-backed container.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/key.h"
#include "common/key_simd.h"

namespace d2::store {

struct SortedKeyIndexTestPeer;

template <class Value>
class SortedKeyIndex {
 public:
  /// Split threshold: chunks hold at most this many entries. 128 keys =
  /// two 4 KB pages of contiguous key data per chunk.
  static constexpr std::size_t kMaxChunk = 128;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    chunks_.clear();
    last_.clear();
    size_ = 0;
    hint_ = 0;
  }

  bool contains(const Key& k) const { return find(k) != nullptr; }

  /// The entry with the smallest key >= k (lower_bound), or {nullptr,
  /// nullptr} when every stored key is < k. One binary search over the
  /// chunk directory plus one in-chunk binary search; no allocation.
  /// Pointers are invalidated by insert/erase like find()'s.
  struct Entry {
    const Key* key;
    Value* value;
  };
  Entry first_ge(const Key& k) {
    const std::size_t ci = chunk_for(k);
    if (ci == chunks_.size()) return {nullptr, nullptr};
    Chunk& c = *chunks_[ci];
    const std::size_t pos = lower_bound_in(c, k);
    // chunk_for guarantees this chunk's max key is >= k.
    D2_ASSERT(pos < c.keys.size());
    return {&c.keys[pos], &c.vals[pos]};
  }

  const Value* find(const Key& k) const {
    return const_cast<SortedKeyIndex*>(this)->find(k);
  }

  Value* find(const Key& k) {
    const std::size_t ci = chunk_for(k);
    if (ci == chunks_.size()) return nullptr;
    Chunk& c = *chunks_[ci];
    const std::size_t pos = lower_bound_in(c, k);
    if (pos == c.keys.size() || !(c.keys[pos] == k)) return nullptr;
    return &c.vals[pos];
  }

  /// Inserts a new key (REQUIREs it is absent) and returns its value slot.
  Value& insert(const Key& k, Value&& v) {
    if (chunks_.empty()) {
      chunks_.push_back(std::make_unique<Chunk>());
      last_.push_back(k);
      Chunk& c = *chunks_.back();
      c.keys.push_back(k);
      c.vals.push_back(std::move(v));
      ++size_;
      return c.vals.back();
    }
    std::size_t ci = chunk_for(k);
    if (ci == chunks_.size()) ci = chunks_.size() - 1;  // append past max
    Chunk& c = *chunks_[ci];
    const std::size_t pos = lower_bound_in(c, k);
    D2_REQUIRE_MSG(pos == c.keys.size() || !(c.keys[pos] == k),
                   "duplicate block key");
    c.keys.insert(c.keys.begin() + static_cast<std::ptrdiff_t>(pos), k);
    c.vals.insert(c.vals.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(v));
    if (pos == c.keys.size() - 1) last_[ci] = k;  // new chunk maximum
    ++size_;
    if (c.keys.size() > kMaxChunk) {
      split(ci);
      if (!(k <= last_[ci])) ++ci;  // value landed in the upper half
      Chunk& after = *chunks_[ci];
      D2_PARANOID_AUDIT(if (audit_gate_.due(size_)) check_invariants());
      return after.vals[lower_bound_in(after, k)];
    }
    D2_PARANOID_AUDIT(if (audit_gate_.due(size_)) check_invariants());
    return c.vals[pos];
  }

  /// Removes a key (REQUIREs it is present).
  void erase(const Key& k) {
    const std::size_t ci = chunk_for(k);
    D2_REQUIRE_MSG(ci != chunks_.size(), "erasing unknown block");
    Chunk& c = *chunks_[ci];
    const std::size_t pos = lower_bound_in(c, k);
    D2_REQUIRE_MSG(pos != c.keys.size() && c.keys[pos] == k,
                   "erasing unknown block");
    c.keys.erase(c.keys.begin() + static_cast<std::ptrdiff_t>(pos));
    c.vals.erase(c.vals.begin() + static_cast<std::ptrdiff_t>(pos));
    --size_;
    if (c.keys.empty()) {
      chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(ci));
      last_.erase(last_.begin() + static_cast<std::ptrdiff_t>(ci));
      if (hint_ > last_.size()) hint_ = 0;  // memo past the shrunk directory
    } else if (pos == c.keys.size()) {
      last_[ci] = c.keys.back();
    }
    D2_PARANOID_AUDIT(if (audit_gate_.due(size_)) check_invariants());
  }

  /// Removes every entry for which `pred(const Key&, Value&)` is true;
  /// returns how many were removed. One in-place compaction pass per
  /// chunk (no per-entry binary searches, no allocation), so bulk drops —
  /// the lookup cache's TTL sweep — are O(n) regardless of how many
  /// entries go.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t dropped = 0;
    std::size_t ci = 0;
    while (ci < chunks_.size()) {
      Chunk& c = *chunks_[ci];
      std::size_t kept = 0;
      for (std::size_t i = 0; i < c.keys.size(); ++i) {
        if (pred(c.keys[i], c.vals[i])) {
          ++dropped;
          continue;
        }
        if (kept != i) {
          c.keys[kept] = c.keys[i];
          c.vals[kept] = std::move(c.vals[i]);
        }
        ++kept;
      }
      if (kept == 0) {
        chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(ci));
        last_.erase(last_.begin() + static_cast<std::ptrdiff_t>(ci));
        continue;  // the next chunk slid into position ci
      }
      c.keys.resize(kept);
      c.vals.resize(kept);
      last_[ci] = c.keys.back();
      ++ci;
    }
    size_ -= dropped;
    if (hint_ > last_.size()) hint_ = 0;  // memo past the shrunk directory
    D2_PARANOID_AUDIT(check_invariants());
    return dropped;
  }

  /// Visits every entry in key order. `fn(const Key&, Value&)`.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (const auto& c : chunks_) {
      for (std::size_t i = 0; i < c->keys.size(); ++i) fn(c->keys[i], c->vals[i]);
    }
  }

  /// Early-exit walk over the clockwise arc (from, to] (whole index when
  /// from == to, wrapping when from > to). `fn(const Key&, Value&)` returns
  /// false to stop; walk_in_arc returns false iff it was stopped.
  template <class Fn>
  bool walk_in_arc(const Key& from, const Key& to, Fn&& fn) {
    if (empty()) return true;
    if (from == to) return walk_all(fn);  // whole ring
    if (from < to) return walk_range(from, to, fn);
    // Wrapped arc: (from, MAX] then [MIN, to].
    if (!walk_range(from, Key::max(), fn)) return false;
    return walk_from_start(to, fn);
  }

  /// Visits every entry in the arc (no early exit).
  template <class Fn>
  void for_each_in_arc(const Key& from, const Key& to, Fn&& fn) {
    walk_in_arc(from, to, [&fn](const Key& k, Value& v) {
      fn(k, v);
      return true;
    });
  }

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Checks per-chunk strict sortedness, chunk occupancy
  /// bounds, directory consistency (last_[i] == chunks_[i]->keys.back(),
  /// strictly increasing across chunks), parallel-array sync, the size
  /// counter and the locality memo's range. O(n); wired into
  /// insert/erase/erase_if in paranoid builds and callable from tests in
  /// any build.
  void check_invariants() const {
    D2_ASSERT_MSG(last_.size() == chunks_.size(),
                  "sorted index: directory size disagrees with chunk count");
    D2_ASSERT_MSG(hint_ <= last_.size(),
                  "sorted index: locality memo hint out of range");
    std::size_t total = 0;
    for (std::size_t ci = 0; ci < chunks_.size(); ++ci) {
      const Chunk& c = *chunks_[ci];
      D2_ASSERT_MSG(!c.keys.empty(), "sorted index: empty chunk");
      D2_ASSERT_MSG(c.keys.size() <= kMaxChunk, "sorted index: oversize chunk");
      D2_ASSERT_MSG(c.keys.size() == c.vals.size(),
                    "sorted index: keys/vals arrays out of sync");
      for (std::size_t i = 1; i < c.keys.size(); ++i) {
        D2_ASSERT_MSG(c.keys[i - 1] < c.keys[i],
                      "sorted index: chunk not strictly sorted");
      }
      D2_ASSERT_MSG(last_[ci] == c.keys.back(),
                    "sorted index: directory max out of date");
      if (ci > 0) {
        D2_ASSERT_MSG(last_[ci - 1] < c.keys.front(),
                      "sorted index: chunk bounds not monotone");
      }
      total += c.keys.size();
    }
    D2_ASSERT_MSG(total == size_,
                  "sorted index: size counter disagrees with contents");
  }

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct SortedKeyIndexTestPeer;
  struct Chunk {
    std::vector<Key> keys;  // sorted
    std::vector<Value> vals;  // parallel to keys
  };

  /// Index of the first chunk whose max key is >= k (chunks_.size() when
  /// k is greater than every stored key). Binary search over the
  /// contiguous per-chunk maxima, short-circuited by a locality memo:
  /// consecutive operations usually target the same chunk (D2 keys are
  /// locality-preserving, so a client's next key tends to land beside
  /// the last one), and verifying the memoized chunk still covers `k`
  /// costs two key compares against the live directory — always correct,
  /// even right after an insert/erase reshaped the chunks.
  std::size_t chunk_for(const Key& k) const {
    if (hint_ < last_.size() && !(last_[hint_] < k) &&
        (hint_ == 0 || last_[hint_ - 1] < k)) {
      return hint_;
    }
    // Batched (SIMD-dispatched) search over the contiguous directory.
    hint_ = key_lower_bound(last_.data(), last_.size(), k);
    return hint_;
  }

  static std::size_t lower_bound_in(const Chunk& c, const Key& k) {
    return key_lower_bound(c.keys.data(), c.keys.size(), k);
  }

  /// Splits chunk `ci` in half; the lower half stays in place.
  void split(std::size_t ci) {
    Chunk& c = *chunks_[ci];
    const std::size_t half = c.keys.size() / 2;
    auto upper = std::make_unique<Chunk>();
    upper->keys.assign(c.keys.begin() + static_cast<std::ptrdiff_t>(half),
                       c.keys.end());
    upper->vals.reserve(c.vals.size() - half);
    for (std::size_t i = half; i < c.vals.size(); ++i) {
      upper->vals.push_back(std::move(c.vals[i]));
    }
    c.keys.resize(half);
    c.vals.resize(half);
    last_.insert(last_.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                 upper->keys.back());
    last_[ci] = c.keys.back();
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                   std::move(upper));
  }

  template <class Fn>
  bool walk_all(Fn&& fn) {
    for (std::size_t ci = 0; ci < chunks_.size(); ++ci) {
      Chunk& c = *chunks_[ci];
      if (ci + 1 < chunks_.size()) D2_PREFETCH(chunks_[ci + 1]->keys.data());
      for (std::size_t i = 0; i < c.keys.size(); ++i) {
        if (!fn(c.keys[i], c.vals[i])) return false;
      }
    }
    return true;
  }

  /// Walks keys in (from, to], from < to.
  template <class Fn>
  bool walk_range(const Key& from, const Key& to, Fn&& fn) {
    for (std::size_t ci = chunk_for(from); ci < chunks_.size(); ++ci) {
      Chunk& c = *chunks_[ci];
      // Pull the next chunk's key array while this one streams.
      if (ci + 1 < chunks_.size()) D2_PREFETCH(chunks_[ci + 1]->keys.data());
      // First key strictly greater than `from` (only relevant in the
      // first candidate chunk; later chunks start past it).
      std::size_t i = upper_bound_in(c, from);
      for (; i < c.keys.size(); ++i) {
        if (to < c.keys[i]) return true;
        if (!fn(c.keys[i], c.vals[i])) return false;
      }
    }
    return true;
  }

  /// Walks keys in [MIN, to].
  template <class Fn>
  bool walk_from_start(const Key& to, Fn&& fn) {
    for (const auto& cp : chunks_) {
      Chunk& c = *cp;
      for (std::size_t i = 0; i < c.keys.size(); ++i) {
        if (to < c.keys[i]) return true;
        if (!fn(c.keys[i], c.vals[i])) return false;
      }
    }
    return true;
  }

  static std::size_t upper_bound_in(const Chunk& c, const Key& k) {
    return key_upper_bound(c.keys.data(), c.keys.size(), k);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;  // ordered by key range
  std::vector<Key> last_;  // last_[i] == chunks_[i]->keys.back()
  std::size_t size_ = 0;
  /// chunk_for's locality memo — a guess, revalidated on every use, so
  /// it never needs invalidating beyond clamping when the directory
  /// shrinks. Mutable: updating it from const point lookups is what makes
  /// read-heavy scans benefit. (Instances are not shared across threads;
  /// each trial owns its maps.)
  mutable std::size_t hint_ = 0;
  ParanoidGate audit_gate_;  // paces paranoid-build audits
};

}  // namespace d2::store
