// Real (k, m) Reed–Solomon erasure codec over GF(2^8).
//
// Replaces the accounting-level erasure fake (a storage-ratio constant)
// with an actual codec: a block is split into k data fragments, m parity
// fragments are computed from a systematic Cauchy encode matrix, and the
// block is recoverable from *any* k of the k+m fragments by inverting the
// k×k submatrix of the rows that survived (DESIGN.md §10).
//
// GF(2^8) arithmetic uses the conventional log/exp tables over the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d, the polynomial
// used by every production RS codec this models — gluster ec, isa-l,
// jerasure). Multiplication is two table loads and one add mod 255.
//
// The encode matrix is [ I_k ; C ] with C an m×k Cauchy matrix
// C[i][j] = 1 / (x_i + y_j), x_i = k + i, y_j = j. Every square
// submatrix of a Cauchy matrix is nonsingular, which makes every k-row
// subset of [ I ; C ] invertible — the any-k-of-n property — without the
// fixups a naive Vandermonde systematic construction needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace d2::store {

/// GF(2^8) primitives, exposed for tests (differential check against a
/// bitwise reference multiply) and for the micro-benches.
namespace gf256 {

/// a * b in GF(2^8). Table-driven: exp[log a + log b].
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be nonzero.
std::uint8_t inv(std::uint8_t a);

/// Bitwise carry-less multiply + polynomial reduction — the slow
/// reference implementation the table codec is differentially tested
/// against. Not used on any hot path.
std::uint8_t mul_ref(std::uint8_t a, std::uint8_t b);

/// out ^= coeff * src over `len` bytes — the codec's hot kernel.
/// Runtime-dispatched (DESIGN.md §11) to GFNI affine / AVX2 PSHUFB
/// split-table / scalar; all kernels compute the same field arithmetic,
/// so results are bit-identical. `D2_FORCE_SCALAR` (compile definition
/// or environment variable) pins the scalar path.
void mul_acc(std::uint8_t* out, const std::uint8_t* src, std::uint8_t coeff,
             Bytes len);

/// Always-built scalar reference (differential tests, forced fallback).
void mul_acc_scalar(std::uint8_t* out, const std::uint8_t* src,
                    std::uint8_t coeff, Bytes len);

using MulAccFn = void (*)(std::uint8_t*, const std::uint8_t*, std::uint8_t,
                          Bytes);
struct MulAccKernel {
  const char* name;
  MulAccFn fn;
};
/// Every mul_acc kernel compiled in *and* runnable on this CPU, scalar
/// first — for differential tests and SIMD-vs-scalar benches.
std::vector<MulAccKernel> mul_acc_kernels();

/// Name of the kernel mul_acc currently dispatches to
/// ("gfni" | "avx2" | "scalar").
const char* mul_acc_kernel();

/// Pins mul_acc to a named kernel ("auto" restores dispatch); REQUIREs
/// the kernel is available. Bench/test hook — process-global, not for
/// concurrent use.
void use_mul_acc_kernel(const char* name);

}  // namespace gf256

class ErasureCodec {
 public:
  /// (k data, m parity) fragments; requires k >= 1, m >= 0, k + m <= 255.
  ErasureCodec(int data_fragments, int parity_fragments);

  int k() const { return k_; }
  int m() const { return m_; }
  int n() const { return k_ + m_; }

  /// Bytes per fragment for a block of `size` bytes: ceil(size / k).
  /// The last data fragment is zero-padded to this length.
  Bytes fragment_bytes(Bytes size) const {
    return (size + k_ - 1) / k_;
  }

  /// Splits `block` into k zero-padded data fragments and computes the m
  /// parity fragments: returns n = k + m fragments of equal length,
  /// fragment i holding encode-matrix row i. Systematic: fragments
  /// [0, k) are the data itself.
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::uint8_t>& block) const;

  /// Reconstructs the original block (of length `block_size`) from any k
  /// fragments. `present[i]` is the fragment index (in [0, n)) of
  /// `fragments[i]`; indices must be distinct and exactly k of them.
  /// All fragments must share the length fragment_bytes(block_size).
  std::vector<std::uint8_t> decode(
      const std::vector<int>& present,
      const std::vector<const std::uint8_t*>& fragments,
      Bytes block_size) const;

  /// Rebuilds the single fragment `target` (in [0, n)) from any k
  /// surviving fragments — the self-heal primitive: decode the data
  /// solve, then re-apply row `target`. Fragment length is `frag_len`.
  std::vector<std::uint8_t> reconstruct(
      const std::vector<int>& present,
      const std::vector<const std::uint8_t*>& fragments, Bytes frag_len,
      int target) const;

  /// Row `r` of the n×k encode matrix (row-major view, for tests).
  const std::uint8_t* row(int r) const {
    return matrix_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(k_);
  }

 private:
  /// Recovers the k data fragments (each frag_len bytes) from the k
  /// present fragments by inverting the corresponding row submatrix.
  std::vector<std::vector<std::uint8_t>> solve_data(
      const std::vector<int>& present,
      const std::vector<const std::uint8_t*>& fragments, Bytes frag_len) const;

  int k_;
  int m_;
  std::vector<std::uint8_t> matrix_;  // n x k, row-major; top k rows = I
};

}  // namespace d2::store
