#include "store/ec.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"

#if defined(__x86_64__) || defined(_M_X64)
#define D2_EC_SIMD_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <immintrin.h>
#endif
#endif

namespace d2::store {

namespace gf256 {
namespace {

constexpr int kPoly = 0x11d;  // x^8 + x^4 + x^3 + x^2 + 1

struct Tables {
  // exp_ doubled so mul can index log[a] + log[b] (< 510) without a mod.
  std::uint8_t exp_[510];
  std::uint8_t log_[256];

  Tables() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      exp_[i + 255] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    log_[0] = 0;  // never read: mul/inv special-case zero
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

std::uint8_t inv(std::uint8_t a) {
  D2_REQUIRE_MSG(a != 0, "gf256: zero has no inverse");
  const Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t mul_ref(std::uint8_t a, std::uint8_t b) {
  int acc = 0;
  int aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1 << bit)) acc ^= aa << bit;
  }
  // Reduce the 15-bit product modulo the field polynomial.
  for (int bit = 14; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= kPoly << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

void mul_acc_scalar(std::uint8_t* out, const std::uint8_t* src,
                    std::uint8_t coeff, Bytes len) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (Bytes b = 0; b < len; ++b) out[b] ^= src[b];
    return;
  }
  const Tables& t = tables();
  const std::uint8_t lc = t.log_[coeff];
  for (Bytes b = 0; b < len; ++b) {
    const std::uint8_t s = src[b];
    if (s != 0) out[b] ^= t.exp_[lc + t.log_[s]];
  }
}

namespace {

#if defined(D2_EC_SIMD_X86) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(D2_FORCE_SCALAR)
#define D2_EC_SIMD 1

/// AVX2 PSHUFB split-table kernel: two 16-entry nibble product tables
/// per coefficient, one shuffle per nibble, 32 bytes per step.
__attribute__((target("avx2"))) void mul_acc_avx2(std::uint8_t* out,
                                                  const std::uint8_t* src,
                                                  std::uint8_t coeff,
                                                  Bytes len) {
  if (coeff == 0) return;
  Bytes b = 0;
  if (coeff == 1) {
    for (; b + 32 <= len; b += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + b));
      const __m256i o =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + b));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b),
                          _mm256_xor_si256(o, s));
    }
    for (; b < len; ++b) out[b] ^= src[b];
    return;
  }
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
  for (int i = 0; i < 16; ++i) {
    lo[i] = mul(coeff, static_cast<std::uint8_t>(i));
    hi[i] = mul(coeff, static_cast<std::uint8_t>(i << 4));
  }
  const __m256i vlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo)));
  const __m256i vhi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  for (; b + 32 <= len; b += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + b));
    const __m256i pl = _mm256_shuffle_epi8(vlo, _mm256_and_si256(s, nib));
    const __m256i ph = _mm256_shuffle_epi8(
        vhi, _mm256_and_si256(_mm256_srli_epi16(s, 4), nib));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + b));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + b),
        _mm256_xor_si256(o, _mm256_xor_si256(pl, ph)));
  }
  mul_acc_scalar(out + b, src + b, coeff, len - b);
}

/// GFNI kernel. GF2P8MULB is hardwired to polynomial 0x11B — not this
/// codec's 0x11d — but multiplication by a fixed constant is GF(2)-linear
/// in the operand bits, so GF2P8AFFINEQB with the 8×8 bit matrix of
/// "multiply by coeff mod 0x11d" computes our product exactly. Matrix
/// packing (verified against mul()): qword byte (7 - i) holds row i,
/// whose bit j is bit i of coeff * x^j.
__attribute__((target("gfni,avx2"))) void mul_acc_gfni(std::uint8_t* out,
                                                       const std::uint8_t* src,
                                                       std::uint8_t coeff,
                                                       Bytes len) {
  if (coeff == 0) return;
  std::uint64_t matrix = 0;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t row = 0;
    for (int j = 0; j < 8; ++j) {
      const std::uint8_t col = mul(coeff, static_cast<std::uint8_t>(1 << j));
      if ((col >> i) & 1) row |= static_cast<std::uint8_t>(1 << j);
    }
    matrix |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
  }
  const __m256i a = _mm256_set1_epi64x(static_cast<long long>(matrix));
  Bytes b = 0;
  for (; b + 32 <= len; b += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + b));
    const __m256i p = _mm256_gf2p8affine_epi64_epi8(s, a, 0);
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b),
                        _mm256_xor_si256(o, p));
  }
  mul_acc_scalar(out + b, src + b, coeff, len - b);
}
#endif  // D2_EC_SIMD

/// True when SIMD kernels must not be selected (compile definition or
/// environment variable) — a fixed per-process input, like the CPU
/// feature set, so dispatch stays deterministic.
[[maybe_unused]] bool ec_force_scalar() {
#if defined(D2_FORCE_SCALAR)
  return true;
#else
  // getenv is only racy against setenv, which this process never
  // calls. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("D2_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
#endif
}

MulAccKernel resolve_mul_acc() {
#if defined(D2_EC_SIMD)
  if (!ec_force_scalar()) {
    if (__builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2")) {
      return MulAccKernel{"gfni", mul_acc_gfni};
    }
    if (__builtin_cpu_supports("avx2")) {
      return MulAccKernel{"avx2", mul_acc_avx2};
    }
  }
#endif
  return MulAccKernel{"scalar", mul_acc_scalar};
}

MulAccKernel& active_mul_acc() {
  static MulAccKernel k = resolve_mul_acc();
  return k;
}

}  // namespace

void mul_acc(std::uint8_t* out, const std::uint8_t* src, std::uint8_t coeff,
             Bytes len) {
  active_mul_acc().fn(out, src, coeff, len);
}

const char* mul_acc_kernel() { return active_mul_acc().name; }

std::vector<MulAccKernel> mul_acc_kernels() {
  std::vector<MulAccKernel> kernels;
  kernels.push_back(MulAccKernel{"scalar", mul_acc_scalar});
#if defined(D2_EC_SIMD)
  if (__builtin_cpu_supports("avx2")) {
    kernels.push_back(MulAccKernel{"avx2", mul_acc_avx2});
  }
  if (__builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2")) {
    kernels.push_back(MulAccKernel{"gfni", mul_acc_gfni});
  }
#endif
  return kernels;
}

void use_mul_acc_kernel(const char* name) {
  if (std::strcmp(name, "auto") == 0) {
    active_mul_acc() = resolve_mul_acc();
    return;
  }
  for (const MulAccKernel& k : mul_acc_kernels()) {
    if (std::strcmp(k.name, name) == 0) {
      active_mul_acc() = k;
      return;
    }
  }
  D2_REQUIRE_MSG(false, "gf256: unknown or unavailable mul_acc kernel");
}

}  // namespace gf256

namespace {

/// In-place Gauss–Jordan inversion of a k×k GF(2^8) matrix (row-major).
/// Every k-row submatrix of [I; Cauchy] is nonsingular, so a zero pivot
/// here means the caller passed duplicate fragment indices — assert.
std::vector<std::uint8_t> invert_matrix(std::vector<std::uint8_t> a, int k) {
  std::vector<std::uint8_t> inv(static_cast<std::size_t>(k) * k, 0);
  for (int i = 0; i < k; ++i) inv[static_cast<std::size_t>(i) * k + i] = 1;
  auto row = [k](std::vector<std::uint8_t>& m, int r) {
    return m.data() + static_cast<std::size_t>(r) * k;
  };
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (row(a, r)[col] != 0) {
        pivot = r;
        break;
      }
    }
    D2_ASSERT_MSG(pivot >= 0, "ec: singular decode matrix");
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(row(a, pivot)[c], row(a, col)[c]);
        std::swap(row(inv, pivot)[c], row(inv, col)[c]);
      }
    }
    const std::uint8_t scale = gf256::inv(row(a, col)[col]);
    for (int c = 0; c < k; ++c) {
      row(a, col)[c] = gf256::mul(row(a, col)[c], scale);
      row(inv, col)[c] = gf256::mul(row(inv, col)[c], scale);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = row(a, r)[col];
      if (f == 0) continue;
      for (int c = 0; c < k; ++c) {
        row(a, r)[c] ^= gf256::mul(f, row(a, col)[c]);
        row(inv, r)[c] ^= gf256::mul(f, row(inv, col)[c]);
      }
    }
  }
  return inv;
}

/// out ^= coeff * src over `len` bytes (dispatched kernel).
void mul_acc(std::uint8_t* out, const std::uint8_t* src, std::uint8_t coeff,
             Bytes len) {
  gf256::mul_acc(out, src, coeff, len);
}

}  // namespace

ErasureCodec::ErasureCodec(int data_fragments, int parity_fragments)
    : k_(data_fragments), m_(parity_fragments) {
  D2_REQUIRE_MSG(k_ >= 1, "ec: need at least one data fragment");
  D2_REQUIRE_MSG(m_ >= 0, "ec: negative parity count");
  D2_REQUIRE_MSG(k_ + m_ <= 255, "ec: k + m must fit GF(2^8) minus zero");
  matrix_.assign(static_cast<std::size_t>(n()) * k_, 0);
  for (int i = 0; i < k_; ++i) {
    matrix_[static_cast<std::size_t>(i) * k_ + i] = 1;
  }
  // Cauchy rows: C[i][j] = 1 / (x_i ^ y_j), x_i = k + i, y_j = j. The
  // x and y sets are disjoint field elements, so every entry is defined
  // and every square submatrix is nonsingular.
  for (int i = 0; i < m_; ++i) {
    for (int j = 0; j < k_; ++j) {
      matrix_[static_cast<std::size_t>(k_ + i) * k_ + j] =
          gf256::inv(static_cast<std::uint8_t>((k_ + i) ^ j));
    }
  }
}

std::vector<std::vector<std::uint8_t>> ErasureCodec::encode(
    const std::vector<std::uint8_t>& block) const {
  const Bytes frag_len = fragment_bytes(static_cast<Bytes>(block.size()));
  std::vector<std::vector<std::uint8_t>> frags(
      static_cast<std::size_t>(n()),
      std::vector<std::uint8_t>(static_cast<std::size_t>(frag_len), 0));
  for (int i = 0; i < k_; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * frag_len;
    if (off >= block.size()) continue;
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(frag_len),
                              block.size() - off);
    std::memcpy(frags[static_cast<std::size_t>(i)].data(), block.data() + off,
                take);
  }
  for (int p = 0; p < m_; ++p) {
    std::uint8_t* out = frags[static_cast<std::size_t>(k_ + p)].data();
    const std::uint8_t* coeffs = row(k_ + p);
    for (int j = 0; j < k_; ++j) {
      mul_acc(out, frags[static_cast<std::size_t>(j)].data(), coeffs[j],
              frag_len);
    }
  }
  return frags;
}

std::vector<std::vector<std::uint8_t>> ErasureCodec::solve_data(
    const std::vector<int>& present,
    const std::vector<const std::uint8_t*>& fragments, Bytes frag_len) const {
  D2_REQUIRE_MSG(static_cast<int>(present.size()) == k_,
                 "ec: decode needs exactly k fragments");
  D2_REQUIRE(present.size() == fragments.size());
  std::vector<std::uint8_t> sub(static_cast<std::size_t>(k_) * k_);
  for (int i = 0; i < k_; ++i) {
    const int idx = present[static_cast<std::size_t>(i)];
    D2_REQUIRE_MSG(idx >= 0 && idx < n(), "ec: fragment index out of range");
    std::memcpy(sub.data() + static_cast<std::size_t>(i) * k_, row(idx),
                static_cast<std::size_t>(k_));
  }
  const std::vector<std::uint8_t> inv = invert_matrix(std::move(sub), k_);
  std::vector<std::vector<std::uint8_t>> data(
      static_cast<std::size_t>(k_),
      std::vector<std::uint8_t>(static_cast<std::size_t>(frag_len), 0));
  for (int i = 0; i < k_; ++i) {
    std::uint8_t* out = data[static_cast<std::size_t>(i)].data();
    const std::uint8_t* coeffs = inv.data() + static_cast<std::size_t>(i) * k_;
    for (int j = 0; j < k_; ++j) {
      mul_acc(out, fragments[static_cast<std::size_t>(j)], coeffs[j], frag_len);
    }
  }
  return data;
}

std::vector<std::uint8_t> ErasureCodec::decode(
    const std::vector<int>& present,
    const std::vector<const std::uint8_t*>& fragments, Bytes block_size) const {
  const Bytes frag_len = fragment_bytes(block_size);
  const std::vector<std::vector<std::uint8_t>> data =
      solve_data(present, fragments, frag_len);
  std::vector<std::uint8_t> block(static_cast<std::size_t>(block_size));
  for (int i = 0; i < k_; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * frag_len;
    if (off >= block.size()) break;
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(frag_len),
                              block.size() - off);
    std::memcpy(block.data() + off, data[static_cast<std::size_t>(i)].data(),
                take);
  }
  return block;
}

std::vector<std::uint8_t> ErasureCodec::reconstruct(
    const std::vector<int>& present,
    const std::vector<const std::uint8_t*>& fragments, Bytes frag_len,
    int target) const {
  D2_REQUIRE_MSG(target >= 0 && target < n(), "ec: target index out of range");
  // Fast path: the target is present verbatim among the sources.
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (present[i] == target) {
      return std::vector<std::uint8_t>(
          fragments[i], fragments[i] + static_cast<std::size_t>(frag_len));
    }
  }
  const std::vector<std::vector<std::uint8_t>> data =
      solve_data(present, fragments, frag_len);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(frag_len), 0);
  const std::uint8_t* coeffs = row(target);
  for (int j = 0; j < k_; ++j) {
    mul_acc(out.data(), data[static_cast<std::size_t>(j)].data(), coeffs[j],
            frag_len);
  }
  return out;
}

}  // namespace d2::store
