#include "store/block_map.h"

#include <algorithm>

#include "common/assert.h"
#include "common/lane.h"

namespace d2::store {

bool BlockState::any_data() const {
  for (const Replica& r : replicas) {
    if (r.has_data) return true;
  }
  return !stale_holders.empty();
}

bool BlockState::node_has_data(int node) const {
  for (const Replica& r : replicas) {
    if (r.node == node) return r.has_data;
  }
  return std::find(stale_holders.begin(), stale_holders.end(), node) !=
         stale_holders.end();
}

bool BlockState::is_replica(int node) const {
  for (const Replica& r : replicas) {
    if (r.node == node) return true;
  }
  return false;
}

BlockMap::BlockMap(int node_count, int arcs)
    : node_count_(node_count), plan_(arcs) {
  D2_REQUIRE(node_count > 0);
  slices_.resize(static_cast<std::size_t>(arcs));
  for (Slice& s : slices_) {
    s.primary_count.assign(static_cast<std::size_t>(node_count), 0);
    s.primary_bytes.assign(static_cast<std::size_t>(node_count), 0);
    s.physical_bytes.assign(static_cast<std::size_t>(node_count), 0);
  }
}

void BlockMap::account_add_data(Slice& s, int node, Bytes size) {
  s.physical_bytes[static_cast<std::size_t>(node)] += size;
}

void BlockMap::account_remove_data(Slice& s, int node, Bytes size) {
  s.physical_bytes[static_cast<std::size_t>(node)] -= size;
  D2_ASSERT(s.physical_bytes[static_cast<std::size_t>(node)] >= 0);
}

void BlockMap::account_add_primary(Slice& s, int node, Bytes size) {
  s.primary_count[static_cast<std::size_t>(node)] += 1;
  s.primary_bytes[static_cast<std::size_t>(node)] += size;
}

void BlockMap::account_remove_primary(Slice& s, int node, Bytes size) {
  s.primary_count[static_cast<std::size_t>(node)] -= 1;
  s.primary_bytes[static_cast<std::size_t>(node)] -= size;
  D2_ASSERT(s.primary_count[static_cast<std::size_t>(node)] >= 0);
}

void BlockMap::insert(const Key& k, Bytes size, const std::vector<int>& nodes,
                      Bytes member_bytes) {
  D2_REQUIRE(!nodes.empty());
  D2_REQUIRE_MSG(size >= 0, "negative block size");
  D2_REQUIRE_MSG(member_bytes <= size, "member bytes exceed block size");
  for (int n : nodes) D2_REQUIRE(n >= 0 && n < node_count_);
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState b;
  b.size = size;
  b.member_bytes = member_bytes < 0 ? size : member_bytes;
  b.replicas.reserve(nodes.size());
  for (int n : nodes) b.replicas.push_back(Replica{n, true, 0, false});
  // Insert first: it REQUIREs the key is new, and the accounting below
  // must not run for a rejected duplicate.
  const BlockState& stored = s.index.insert(k, std::move(b));
  for (const Replica& r : stored.replicas) {
    account_add_data(s, r.node, stored.member_bytes);
  }
  account_add_primary(s, nodes.front(), size);
  s.total_bytes += size;
  D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                        check_slice_invariants(plan_.arc_of(k)));
}

void BlockMap::erase(const Key& k) {
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState* bp = s.index.find(k);
  D2_REQUIRE_MSG(bp != nullptr, "erasing unknown block");
  BlockState& b = *bp;
  for (const Replica& r : b.replicas) {
    if (r.has_data) account_remove_data(s, r.node, b.member_bytes);
  }
  for (int n : b.stale_holders) account_remove_data(s, n, b.member_bytes);
  account_remove_primary(s, b.replicas.front().node, b.size);
  s.total_bytes -= b.size;
  s.index.erase(k);
  D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                        check_slice_invariants(plan_.arc_of(k)));
}

std::size_t BlockMap::block_count() const {
  std::size_t n = 0;
  for (const Slice& s : slices_) n += s.index.size();
  return n;
}

Bytes BlockMap::total_bytes() const {
  Bytes n = 0;
  for (const Slice& s : slices_) n += s.total_bytes;
  return n;
}

std::int64_t BlockMap::primary_count(int node) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  std::int64_t n = 0;
  for (const Slice& s : slices_) {
    n += s.primary_count[static_cast<std::size_t>(node)];
  }
  return n;
}

Bytes BlockMap::primary_bytes(int node) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  Bytes n = 0;
  for (const Slice& s : slices_) {
    n += s.primary_bytes[static_cast<std::size_t>(node)];
  }
  return n;
}

Bytes BlockMap::physical_bytes(int node) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  Bytes n = 0;
  for (const Slice& s : slices_) {
    n += s.physical_bytes[static_cast<std::size_t>(node)];
  }
  return n;
}

std::optional<Key> BlockMap::median_primary_key(const Key& from,
                                                const Key& to) const {
  // Two allocation-free walks: count, then select the median element.
  auto& self = const_cast<BlockMap&>(*this);
  std::size_t n = 0;
  self.walk_in_arc(from, to, [&n](const Key&, BlockState&) {
    ++n;
    return true;
  });
  if (n < 2) return std::nullopt;
  // The light node's new ID is the key of the last block in the first
  // half, so it takes ceil(half) blocks: keys (from, new_id].
  const std::size_t target = n / 2 - 1;
  std::size_t i = 0;
  Key mid;
  self.walk_in_arc(from, to, [&](const Key& k, BlockState&) {
    if (i == target) {
      mid = k;
      return false;
    }
    ++i;
    return true;
  });
  if (mid == to) return std::nullopt;  // would collide with the heavy node
  return mid;
}

std::vector<Key> BlockMap::keys_in_arc(const Key& from, const Key& to) const {
  std::vector<Key> out;
  const_cast<BlockMap&>(*this).walk_in_arc(
      from, to, [&out](const Key& k, BlockState&) {
        out.push_back(k);
        return true;
      });
  return out;
}

void BlockMap::reassign_replicas(const Key& k, const std::vector<int>& nodes,
                                 SimTime now) {
  D2_REQUIRE(!nodes.empty());
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState* bp = s.index.find(k);
  D2_REQUIRE_MSG(bp != nullptr, "reassigning unknown block");
  BlockState& b = *bp;

  const int old_primary = b.replicas.front().node;
  const int new_primary = nodes.front();

  // Does any *new* member lack data? Old data copies may then be needed
  // as fetch sources.
  auto old_state = [&b](int node) -> const Replica* {
    for (const Replica& r : b.replicas) {
      if (r.node == node) return &r;
    }
    return nullptr;
  };
  bool new_set_missing_data = false;
  for (int n : nodes) {
    const Replica* r = old_state(n);
    if (r == nullptr || !r->has_data) {
      new_set_missing_data = true;
      break;
    }
  }

  std::vector<Replica> new_replicas;
  new_replicas.reserve(nodes.size());
  for (int n : nodes) {
    if (const Replica* r = old_state(n)) {
      new_replicas.push_back(*r);
    } else if (std::find(b.stale_holders.begin(), b.stale_holders.end(), n) !=
               b.stale_holders.end()) {
      // Rejoining node already physically holds the block.
      b.stale_holders.erase(
          std::find(b.stale_holders.begin(), b.stale_holders.end(), n));
      new_replicas.push_back(Replica{n, true, now, false});
    } else {
      new_replicas.push_back(Replica{n, false, now, false});
    }
  }

  // Departing members: keep data as stale holder only while needed.
  for (const Replica& r : b.replicas) {
    if (std::find(nodes.begin(), nodes.end(), r.node) != nodes.end()) continue;
    if (!r.has_data) continue;
    if (new_set_missing_data) {
      b.stale_holders.push_back(r.node);  // physical bytes stay accounted
    } else {
      account_remove_data(s, r.node, b.member_bytes);
    }
  }

  b.replicas = std::move(new_replicas);

  if (old_primary != new_primary) {
    account_remove_primary(s, old_primary, b.size);
    account_add_primary(s, new_primary, b.size);
  }
  prune_stale(s, b);
  D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                        check_slice_invariants(plan_.arc_of(k)));
}

void BlockMap::mark_data(const Key& k, int node) {
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState* bp = s.index.find(k);
  D2_REQUIRE_MSG(bp != nullptr, "mark_data on unknown block");
  BlockState& b = *bp;
  for (Replica& r : b.replicas) {
    if (r.node == node) {
      D2_REQUIRE_MSG(!r.has_data, "replica already has data");
      r.has_data = true;
      r.fetch_in_flight = false;
      account_add_data(s, node, b.member_bytes);
      prune_stale(s, b);
      D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                            check_slice_invariants(plan_.arc_of(k)));
      return;
    }
  }
  D2_REQUIRE_MSG(false, "mark_data on non-replica node");
}

void BlockMap::mark_missing(const Key& k, int node) {
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState* bp = s.index.find(k);
  D2_REQUIRE_MSG(bp != nullptr, "mark_missing on unknown block");
  BlockState& b = *bp;
  for (Replica& r : b.replicas) {
    if (r.node == node) {
      D2_REQUIRE_MSG(r.has_data, "replica already missing data");
      r.has_data = false;
      r.fetch_in_flight = false;
      account_remove_data(s, node, b.member_bytes);
      D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                            check_slice_invariants(plan_.arc_of(k)));
      return;
    }
  }
  D2_REQUIRE_MSG(false, "mark_missing on non-replica node");
}

void BlockMap::drop_stale(const Key& k, int node) {
  D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
  Slice& s = slice_of(k);
  BlockState* bp = s.index.find(k);
  D2_REQUIRE_MSG(bp != nullptr, "drop_stale on unknown block");
  BlockState& b = *bp;
  const auto it =
      std::find(b.stale_holders.begin(), b.stale_holders.end(), node);
  if (it == b.stale_holders.end()) return;
  b.stale_holders.erase(it);
  account_remove_data(s, node, b.member_bytes);
  D2_PARANOID_AUDIT(if (s.audit_gate.due(s.index.size()))
                        check_slice_invariants(plan_.arc_of(k)));
}

void BlockMap::prune_stale(Slice& s, BlockState& b) {
  if (b.stale_holders.empty()) return;
  for (const Replica& r : b.replicas) {
    if (!r.has_data) return;  // still needed as fetch sources
  }
  for (int n : b.stale_holders) account_remove_data(s, n, b.member_bytes);
  b.stale_holders.clear();
}

void BlockMap::check_slice_invariants(int arc) const {
  D2_REQUIRE(arc >= 0 && arc < plan_.arcs());
  const Slice& s = slices_[static_cast<std::size_t>(arc)];
  s.index.check_invariants();

  const auto n = static_cast<std::size_t>(node_count_);
  std::vector<std::int64_t> primary_count(n, 0);
  std::vector<Bytes> primary_bytes(n, 0);
  std::vector<Bytes> physical_bytes(n, 0);
  Bytes total = 0;

  const_cast<SortedKeyIndex<BlockState>&>(s.index).for_each([&](const Key& k,
                                                                BlockState& b) {
    D2_ASSERT_MSG(plan_.arc_of(k) == arc,
                  "block map: key stored in a slice that does not own it");
    D2_ASSERT_MSG(b.size >= 0 && b.member_bytes >= 0,
                  "block map: negative block size");
    D2_ASSERT_MSG(!b.replicas.empty(), "block map: block with no replicas");
    bool all_have_data = true;
    for (std::size_t i = 0; i < b.replicas.size(); ++i) {
      const Replica& r = b.replicas[i];
      D2_ASSERT_MSG(r.node >= 0 && r.node < node_count_,
                    "block map: replica node out of range");
      for (std::size_t j = 0; j < i; ++j) {
        D2_ASSERT_MSG(b.replicas[j].node != r.node,
                      "block map: duplicate node in replica set");
      }
      if (r.has_data) {
        physical_bytes[static_cast<std::size_t>(r.node)] += b.member_bytes;
      } else {
        all_have_data = false;
      }
    }
    for (std::size_t i = 0; i < b.stale_holders.size(); ++i) {
      const int sh = b.stale_holders[i];
      D2_ASSERT_MSG(sh >= 0 && sh < node_count_,
                    "block map: stale holder out of range");
      D2_ASSERT_MSG(!b.is_replica(sh),
                    "block map: stale holder also in replica set");
      for (std::size_t j = 0; j < i; ++j) {
        D2_ASSERT_MSG(b.stale_holders[j] != sh,
                      "block map: duplicate stale holder");
      }
      physical_bytes[static_cast<std::size_t>(sh)] += b.member_bytes;
    }
    D2_ASSERT_MSG(b.stale_holders.empty() || !all_have_data,
                  "block map: stale holders outlived their fetch sources");
    const auto primary = static_cast<std::size_t>(b.replicas.front().node);
    primary_count[primary] += 1;
    primary_bytes[primary] += b.size;
    total += b.size;
  });

  D2_ASSERT_MSG(total == s.total_bytes,
                "block map: slice total bytes counter out of sync");
  for (std::size_t i = 0; i < n; ++i) {
    D2_ASSERT_MSG(primary_count[i] == s.primary_count[i],
                  "block map: primary count accounting out of sync");
    D2_ASSERT_MSG(primary_bytes[i] == s.primary_bytes[i],
                  "block map: primary bytes accounting out of sync");
    D2_ASSERT_MSG(physical_bytes[i] == s.physical_bytes[i],
                  "block map: physical bytes accounting out of sync");
  }
}

void BlockMap::check_invariants() const {
  for (int a = 0; a < plan_.arcs(); ++a) check_slice_invariants(a);
}

}  // namespace d2::store
