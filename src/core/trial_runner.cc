#include "core/trial_runner.h"

#include <atomic>
#include <exception>
#include <thread>

#include "common/assert.h"
#include "common/mutex.h"

namespace d2::core {

std::uint64_t derive_trial_seed(std::uint64_t base, std::uint64_t trial) {
  // Two SplitMix64 steps over base ^ golden-ratio-scrambled trial index.
  // One step already decorrelates adjacent indices; the second guards
  // against weak `base` values (0, small integers) that a single step
  // would leave structured.
  std::uint64_t x = base + 0x9E3779B97F4A7C15ull * (trial + 1);
  for (int i = 0; i < 2; ++i) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    x = z ^ (z >> 31);
  }
  return x;
}

TrialRunner::TrialRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (jobs_ < 1) jobs_ = 1;
}

void TrialRunner::run(int count,
                      const std::function<void(int trial)>& fn) const {
  D2_REQUIRE_MSG(fn != nullptr, "trial function must be callable");
  if (count <= 0) return;

  const int workers = jobs_ < count ? jobs_ : count;
  if (workers == 1) {
    for (int trial = 0; trial < count; ++trial) fn(trial);
    return;
  }

  std::atomic<int> next{0};
  // Locals, so no D2_GUARDED_BY (the analysis only tracks members); the
  // d2::Mutex still participates in lock/unlock balance checking.
  Mutex error_mu;
  int first_error_trial = -1;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const int trial = next.fetch_add(1, std::memory_order_relaxed);
      if (trial >= count) return;
      try {
        fn(trial);
      } catch (...) {
        MutexLock lock(error_mu);
        if (first_error_trial < 0 || trial < first_error_trial) {
          first_error_trial = trial;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace d2::core
