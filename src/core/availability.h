// Task availability experiment (paper §8, Figures 7-8, Table 2).
//
// Replays the Harvard-like workload against a System subjected to a
// (PlanetLab-like) failure trace. A *task* is a maximal same-user access
// sequence with inter-arrival gaps below `inter` and duration <= 5 min
// (§8.1); it fails if any block it reads is unavailable at access time.
// The same replay yields Table 2's per-task means: blocks, files, and
// distinct nodes contacted.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/config.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/failure.h"
#include "trace/harvard_gen.h"
#include "trace/tasks.h"

namespace d2::core {

struct AvailabilityParams {
  SystemConfig system;
  trace::HarvardParams workload;
  sim::FailureParams failure;
  std::uint64_t failure_seed = 99;
  /// Load-balance warm-up before the failure trace and workload start
  /// (§8.1: 3 days so node positions stabilize).
  SimTime warmup = days(3);
  /// Task inter-arrival threshold.
  SimTime inter = seconds(5);
  SimTime task_cap = minutes(5);
  /// Disable the failure process (Table 2 placement statistics only).
  bool enable_failures = true;
  /// Observability sinks (not owned; may be null).
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct AvailabilityResult {
  std::uint64_t tasks = 0;
  std::uint64_t failed_tasks = 0;
  double task_unavailability() const {
    return tasks == 0 ? 0.0
                      : static_cast<double>(failed_tasks) /
                            static_cast<double>(tasks);
  }

  /// Per-user unavailability (Fig 8), keyed by user id.
  std::map<int, double> per_user_unavailability;

  /// Table 2 columns (means over tasks with at least one access).
  double mean_blocks_per_task = 0;
  double mean_files_per_task = 0;
  double mean_nodes_per_task = 0;

  Bytes migration_bytes = 0;
  std::int64_t lb_moves = 0;
  std::uint64_t unknown_key_gets = 0;  // diagnostics; should stay 0
};

class AvailabilityExperiment {
 public:
  explicit AvailabilityExperiment(const AvailabilityParams& params);

  AvailabilityResult run();

 private:
  AvailabilityParams params_;
};

}  // namespace d2::core
