#include "core/locality_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>

#include "common/assert.h"
#include "common/hash.h"
#include "fs/key_encoding.h"

namespace d2::core {

namespace {

std::string padded_index(std::uint64_t idx) {
  std::string digits = std::to_string(idx);
  std::string out;
  for (std::size_t i = digits.size(); i < 10; ++i) out.push_back('0');
  out += digits;
  return out;
}

void expand_range(std::vector<BlockAccess>& out, SimTime time, int user,
                  std::string_view name, Bytes offset, Bytes length,
                  Bytes block_size) {
  if (length <= 0) return;
  const auto first = static_cast<std::uint64_t>(offset / block_size);
  const auto last = static_cast<std::uint64_t>((offset + length - 1) / block_size);
  for (std::uint64_t i = first; i <= last; ++i) {
    out.push_back(
        BlockAccess{time, user, std::string(name) + "\x01" + padded_index(i)});
  }
}

}  // namespace

std::vector<BlockAccess> LocalityAnalysis::from_harvard(
    const trace::HarvardGenerator& gen) {
  std::vector<BlockAccess> out;
  // Mirror of file sizes so reads can be clamped to what exists. Keyed
  // find/insert/erase only; never iterated.
  // Arena-backed views from the generator: stable for its lifetime.
  std::unordered_map<std::string_view, Bytes> sizes;  // d2-lint: allow(unordered-container)
  for (const trace::FileSpec& f : gen.initial_files()) sizes[f.path] = f.size;

  for (const trace::TraceRecord& r : gen.records()) {
    switch (r.op) {
      case trace::TraceRecord::Op::kCreate:
      case trace::TraceRecord::Op::kWrite: {
        Bytes& size = sizes[r.path];
        size = std::max(size, r.offset + r.length);
        expand_range(out, r.time, r.user, r.path, r.offset, r.length, kBlockSize);
        break;
      }
      case trace::TraceRecord::Op::kRead: {
        auto it = sizes.find(r.path);
        if (it == sizes.end() || it->second == 0) break;
        const Bytes len = std::min(r.length, it->second - std::min(r.offset, it->second));
        expand_range(out, r.time, r.user, r.path, r.offset, len, kBlockSize);
        break;
      }
      case trace::TraceRecord::Op::kRemove:
        sizes.erase(r.path);
        break;
      case trace::TraceRecord::Op::kRename: {
        auto it = sizes.find(r.path);
        if (it != sizes.end()) {
          // The paper keeps original keys across renames; for this
          // analysis we do the same by keeping the original name.
          sizes.emplace(r.path2, it->second);
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<BlockAccess> LocalityAnalysis::from_hp(const trace::HpGenerator& gen) {
  std::vector<BlockAccess> out;
  out.reserve(gen.records().size());
  for (const trace::TraceRecord& r : gen.records()) {
    out.push_back(BlockAccess{r.time, r.user, std::string(r.path)});
  }
  return out;
}

std::vector<BlockAccess> LocalityAnalysis::from_web(const trace::WebGenerator& gen) {
  std::vector<BlockAccess> out;
  for (const trace::TraceRecord& r : gen.records()) {
    const std::string name = fs::reverse_domain_url(r.path);
    expand_range(out, r.time, r.user, name, 0, std::max<Bytes>(r.length, 1),
                 kBlockSize);
  }
  return out;
}

LocalityResult LocalityAnalysis::analyze(const std::vector<BlockAccess>& accesses,
                                         const LocalityParams& params) {
  D2_REQUIRE(!accesses.empty());
  D2_REQUIRE(params.block_size > 0 && params.node_capacity >= params.block_size);
  const auto blocks_per_node =
      static_cast<std::uint64_t>(params.node_capacity / params.block_size);

  // Intern block names. Keyed emplace only; enumeration goes through
  // `names`, which is in first-appearance order.
  std::unordered_map<std::string, std::uint32_t> ids;  // d2-lint: allow(unordered-container)
  std::vector<const std::string*> names;
  std::vector<std::uint32_t> access_block(accesses.size());
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    auto [it, inserted] =
        ids.emplace(accesses[i].block_name, static_cast<std::uint32_t>(ids.size()));
    if (inserted) names.push_back(&it->first);
    access_block[i] = it->second;
  }
  const std::uint64_t distinct = ids.size();
  const int node_count = static_cast<int>((distinct + blocks_per_node - 1) /
                                          std::max<std::uint64_t>(1, blocks_per_node));

  // ordered: rank of each block in alphabetical name order -> node index.
  std::vector<std::uint32_t> order(distinct);
  for (std::uint32_t i = 0; i < distinct; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&names](std::uint32_t a, std::uint32_t b) { return *names[a] < *names[b]; });
  std::vector<std::uint32_t> ordered_node(distinct);
  for (std::uint64_t rank = 0; rank < distinct; ++rank) {
    ordered_node[order[rank]] = static_cast<std::uint32_t>(rank / blocks_per_node);
  }
  // traditional: uniform hash of the name.
  std::vector<std::uint32_t> traditional_node(distinct);
  for (std::uint32_t b = 0; b < distinct; ++b) {
    traditional_node[b] =
        static_cast<std::uint32_t>(fnv1a64(*names[b]) % static_cast<std::uint64_t>(node_count));
  }

  // Per (user, hour): distinct nodes under each scenario.
  struct HourAgg {
    std::set<std::uint32_t> trad_nodes;
    std::set<std::uint32_t> ordered_nodes;
    std::set<std::uint32_t> blocks;
  };
  std::map<std::pair<int, std::int64_t>, HourAgg> by_hour;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const auto hour = static_cast<std::int64_t>(accesses[i].time / hours(1));
    HourAgg& agg = by_hour[{accesses[i].user, hour}];
    const std::uint32_t b = access_block[i];
    agg.trad_nodes.insert(traditional_node[b]);
    agg.ordered_nodes.insert(ordered_node[b]);
    agg.blocks.insert(b);
  }

  LocalityResult res;
  res.distinct_blocks = distinct;
  res.nodes = node_count;
  res.user_hours = by_hour.size();
  double trad = 0, ord = 0, lower = 0;
  for (const auto& [key, agg] : by_hour) {
    trad += static_cast<double>(agg.trad_nodes.size());
    ord += static_cast<double>(agg.ordered_nodes.size());
    lower += static_cast<double>(
        (agg.blocks.size() + blocks_per_node - 1) / blocks_per_node);
  }
  const auto n = static_cast<double>(by_hour.size());
  res.traditional_nodes_per_user_hour = trad / n;
  res.ordered_nodes_per_user_hour = ord / n;
  res.lower_bound_nodes_per_user_hour = lower / n;
  return res;
}

}  // namespace d2::core
