// End-to-end performance experiment (paper §9, Figures 9-15).
//
// Reproduces the Emulab methodology in simulation: the system is warmed
// (placement + load balance + each user's lookup-cache content) by
// replaying the workload from the beginning, then selected 15-minute
// windows are replayed in detail with the full network model:
//   - DHT lookups route through dht::Router (per-hop latency, message
//     counts) unless the user's range-based lookup cache covers the key;
//   - block downloads come from a random replica over a per-node shared
//     uplink (1500 or 384 kbps) with the net::TcpModel slow-start
//     behaviour (idle > RTO => cold window, >= 2 RTTs for an 8 KB block);
//   - clients issue at most 15 concurrent transfers (§9.1).
// Access groups (gaps > 1 s are think time) are the latency unit; `seq`
// chains a group's requests, `para` issues them all concurrently.
//
// Running the same workload under two schemes and matching access groups
// by id yields the paper's speedup metric (geometric mean per user, then
// across users).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/harvard_gen.h"

namespace d2::core {

struct PerformanceParams {
  SystemConfig system;
  trace::HarvardParams workload;
  SimTime warmup = days(1);
  int window_count = 4;
  SimTime window_length = minutes(15);
  /// Per-node access-link capacity (paper: 1500 or 384 kbps).
  BitRate node_bandwidth = kbps(1500);
  int max_concurrent_transfers = 15;
  /// false = seq (fully dependent), true = para (fully parallel).
  bool parallel = false;
  /// Replica selection: the paper's D2 picks a random replica; §9.3 notes
  /// that the per-user slowdowns of Fig 12 could be mitigated "by always
  /// downloading blocks from the closest replica". true enables that.
  bool closest_replica = false;
  double mean_rtt_ms = 90.0;
  SimTime lookup_cache_ttl = hours(1) + minutes(15);
  /// Observability sinks (not owned; may be null). With `metrics` set,
  /// the whole stack reports into it: sim.*, system.*, dht.router.*,
  /// store.lookup_cache.*, fs.writeback_cache.*, net.uplink.*.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct GroupResult {
  int user = 0;
  std::uint64_t group_id = 0;  // stable across schemes (same workload)
  SimTime latency = 0;
  int block_gets = 0;
};

struct PerformanceResult {
  std::vector<GroupResult> groups;
  std::uint64_t lookup_messages = 0;
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double lookup_messages_per_node = 0;
  /// Mean of per-user lookup-cache miss rates inside the windows.
  double mean_cache_miss_rate = 0;
  std::uint64_t tcp_cold_starts = 0;
  std::uint64_t tcp_transfers = 0;
};

/// The §9 replay windows: `count` non-overlapping stretches of `length`
/// inside random workdays' 9:00-18:00, deterministic in `wl.seed` so
/// every scheme replays the same windows. Requires 0 < length <= 9h and
/// throws PreconditionError when `count` windows cannot be placed (the
/// request exceeds the trace's workday time, or the overlap
/// rejection-sampling budget runs out on a pathologically tight packing)
/// — never silently returns fewer windows than asked.
std::vector<SimTime> pick_performance_windows(const trace::HarvardParams& wl,
                                              int count, SimTime length);

class PerformanceExperiment {
 public:
  explicit PerformanceExperiment(const PerformanceParams& params);
  PerformanceResult run();

 private:
  PerformanceParams params_;
};

struct SpeedupSummary {
  /// Geometric mean across users of each user's geometric-mean speedup.
  double overall = 1.0;
  std::map<int, double> per_user;
  std::uint64_t matched_groups = 0;
};

/// Speedup of `treatment` over `baseline` (ratio baseline/treatment per
/// access group, matched by group id).
SpeedupSummary compute_speedup(const PerformanceResult& baseline,
                               const PerformanceResult& treatment);

/// Matched (baseline, treatment) latency pairs for the Fig 14/15 scatter.
std::vector<std::pair<SimTime, SimTime>> matched_latencies(
    const PerformanceResult& baseline, const PerformanceResult& treatment);

}  // namespace d2::core
