#include "core/request_load.h"

#include <vector>

#include "common/assert.h"
#include "common/stats.h"
#include "fs/volume.h"
#include "sim/simulator.h"
#include "store/retrieval_cache.h"

namespace d2::core {

RequestLoadExperiment::RequestLoadExperiment(const RequestLoadParams& params)
    : params_(params) {
  D2_REQUIRE(params.total_files > 0);
  D2_REQUIRE(params.readers > 0);
}

RequestLoadResult RequestLoadExperiment::run() {
  sim::Simulator sim(
      sim::ArcConfig{params_.system.arcs, params_.system.arc_workers, 0,
                     params_.system.scheduler});
  sim.bind_metrics(params_.metrics);
  System system(params_.system, sim, params_.metrics);
  Rng rng(params_.seed);

  // Publish the content volume.
  fs::VolumeConfig vconfig;
  vconfig.scheme = params_.system.scheme;
  fs::Volume volume("content", vconfig);
  std::vector<fs::StoreOp> ops;
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(params_.total_files));
  for (int f = 0; f < params_.total_files; ++f) {
    std::string path =
        "lib/d" + std::to_string(f % 20) + "/f" + std::to_string(f);
    volume.write(path, 0, params_.file_size, 0, ops);
    paths.push_back(std::move(path));
  }
  volume.flush(0, ops);
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) system.put(op.key, op.size);
  }
  if (params_.system.active_load_balance) {
    system.start_load_balancing();
    sim.run_until(days(1));
  }

  // Per-node retrieval caches (shared by co-located readers).
  std::vector<store::RetrievalCache> caches;
  caches.reserve(static_cast<std::size_t>(params_.system.node_count));
  for (int i = 0; i < params_.system.node_count; ++i) {
    caches.emplace_back(params_.retrieval_cache_capacity);
    caches.back().bind_metrics(params_.metrics);
  }
  std::vector<std::int64_t> serves(
      static_cast<std::size_t>(params_.system.node_count), 0);

  // Readers.
  ZipfDistribution popularity(paths.size(), params_.zipf_s);
  RequestLoadResult result;
  for (int reader = 0; reader < params_.readers; ++reader) {
    const int home = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(params_.system.node_count)));
    for (int i = 0; i < params_.reads_per_reader; ++i) {
      const std::string& path = paths[popularity.sample(rng)];
      for (const fs::StoreOp& get : volume.uncached_read_ops(path)) {
        ++result.block_requests;
        const bool cache_enabled = params_.retrieval_cache_capacity > 0;
        if (cache_enabled && caches[static_cast<std::size_t>(home)].lookup(get.key)) {
          continue;  // absorbed locally
        }
        const std::vector<int> replicas = system.replica_nodes(get.key);
        if (replicas.empty()) continue;
        const int server = replicas[rng.next_below(replicas.size())];
        ++serves[static_cast<std::size_t>(server)];
        ++result.remote_serves;
        if (cache_enabled) {
          caches[static_cast<std::size_t>(home)].insert(get.key, get.size);
        }
      }
    }
  }

  Stats s;
  for (std::int64_t v : serves) s.add(static_cast<double>(v));
  if (s.mean() > 0) {
    result.serve_imbalance = s.normalized_stddev();
    result.max_over_mean_serves = s.max() / s.mean();
  }
  if (result.block_requests > 0) {
    result.cache_hit_rate =
        1.0 - static_cast<double>(result.remote_serves) /
                  static_cast<double>(result.block_requests);
  }
  return result;
}

}  // namespace d2::core
