// Self-heal repair engine: redundancy maintenance over the failure model.
//
// ROADMAP item 2 / DESIGN.md §10. The availability experiments treat
// redundancy as accounting; this engine runs the real thing, modeled on
// gluster's AFR self-heal daemon: it subscribes to FailureTrace
// transitions, scans the BlockMap for under-replicated / under-coded
// blocks when a node goes down (after a transient-failure damping delay)
// or rejoins, and schedules fragment reconstruction as simulator events
// whose transfer cost combines net::TcpModel slow-start latency,
// net::LatencyModel RTTs, and a per-node repair-bandwidth budget
// (sim::BandwidthLink) so repair competes with — rather than preempts —
// foreground traffic.
//
// Redundancy is uniformly (k, m) Reed–Solomon over the real codec in
// store/ec.h: r-way replication is the k = 1, m = r - 1 special case
// (every "fragment" is a copy-sized unit and any one recovers the
// block), so replication and erasure coding share one repair path and
// both push real bytes through the codec. Every block carries a small
// deterministic payload derived from its key; every reconstruction
// decodes k surviving fragments and is verified against a re-encode of
// the original payload — the codec is load-bearing, not decorative.
//
// Block lifecycle: fully-protected (all n = k + m fragments on up
// members) → degraded (a member lost its fragment, or holds one on a
// down node) → repairing (reconstruction events in flight, gated by the
// per-node budget) → fully-protected again, or *dead* when fewer than k
// intact fragments exist anywhere (down-but-intact fragments count —
// only actual data loss kills a block). Durability is the fraction of
// blocks that ever die; MTTR is measured per degradation episode.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arc_plan.h"
#include "common/assert.h"
#include "common/key.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "dht/ring.h"
#include "net/latency.h"
#include "net/tcp_model.h"
#include "sim/bandwidth.h"
#include "sim/failure.h"
#include "sim/simulator.h"
#include "store/block_map.h"
#include "store/ec.h"

namespace d2::core {

struct RepairEngineTestPeer;

struct RepairConfig {
  int node_count = 64;
  /// rep-r (replicas copies) or rs-k-m (ec_* fragments).
  bool erasure = false;
  int replicas = 3;
  int ec_data_fragments = 6;
  int ec_parity_fragments = 3;

  /// Logical block size — drives all traffic and storage accounting.
  Bytes block_size = 8 * 1024;
  /// Real payload bytes carried per block through the codec (kept small
  /// so large runs fit in memory; accounting uses block_size).
  Bytes payload_bytes = 128;

  /// Per-node bandwidth budget reserved for repair traffic; repairs
  /// into a node serialize through it (§8.1 uses the same 750 kbps cap
  /// for migration).
  BitRate repair_bandwidth = kbps(750);
  /// How long a node must stay down before its blocks are re-protected
  /// elsewhere (gluster's transient-failure damping; avoids repairing
  /// through every reboot).
  SimTime detect_delay = minutes(10);
  /// Backoff before retrying a repair that found < k reachable fragments.
  SimTime retry_delay = minutes(5);
  /// Probability that a node-down event destroys the node's stored
  /// fragments (disk loss) rather than just making them unreachable.
  double data_loss_fraction = 0.5;

  double mean_rtt_ms = 90.0;
  int arcs = 1;
  /// Event-queue backend (wheel default; heap = differential reference).
  sim::SchedulerKind scheduler = sim::SchedulerKind::kWheel;
  std::uint64_t seed = 1;
};

/// Aggregated engine state for reporting (all deterministic integers /
/// exact sums, so formatted output is byte-stable across arc workers).
struct RepairStats {
  std::size_t blocks = 0;
  std::uint64_t blocks_lost = 0;  // ever unrecoverable
  Bytes repair_bytes = 0;         // the paper's L
  Bytes user_write_bytes = 0;     // the paper's W (populate + foreground)
  std::uint64_t repairs_started = 0;
  std::uint64_t repairs_completed = 0;
  std::uint64_t repair_retries = 0;
  std::uint64_t verified_reconstructions = 0;
  std::uint64_t writes_failed = 0;
  std::size_t mttr_episodes = 0;
  double mttr_mean_s = 0.0;
  double mttr_p99_s = 0.0;
  std::size_t open_episodes = 0;  // still degraded at snapshot time
};

class RepairEngine {
 public:
  RepairEngine(const RepairConfig& config, sim::Simulator& sim);

  int k() const { return codec_.k(); }
  int n() const { return codec_.n(); }
  const RepairConfig& config() const { return cfg_; }

  /// Creates `count` blocks with random keys, fully protected on their
  /// successor sets. Requires every node up (call at t = 0, before the
  /// failure trace starts). Runs as one arc phase, so population
  /// parallelizes across --arc-workers with byte-identical results.
  void populate(std::int64_t count);

  /// Schedules every up/down transition of `trace` as a global simulator
  /// event. Each down event independently destroys the node's fragments
  /// with probability data_loss_fraction (drawn here, so the outcome is
  /// independent of event execution interleaving).
  void attach_failure_trace(const sim::FailureTrace& trace);

  /// Starts a foreground write process: each node writes a fresh block
  /// at exponential intervals averaging `writes_per_node_per_day`, while
  /// up, until simulated time `until`. Supplies the W in L/W and keeps
  /// creating blocks born degraded during outages.
  void start_foreground_writes(double writes_per_node_per_day, SimTime until);

  RepairStats snapshot() const;

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Audits the ring and BlockMap, the fragment sidecar
  /// against replica membership (member has_data ⟺ it holds a fragment;
  /// stale holders keep theirs; every fragment belongs to a member or
  /// stale holder and has the right length), the dead-set (< k intact
  /// fragments iff dead), the repair queue (every in-flight member is
  /// tracked, tracked entries reference live blocks), episode records
  /// (degraded blocks only), and byte accounting (repair bytes == the
  /// sum over per-node budget links).
  void check_invariants() const;

 private:
  friend struct RepairEngineTestPeer;

  /// One stored fragment: encode-matrix row `index` living on `node`.
  struct Frag {
    int index;
    int node;
    std::vector<std::uint8_t> bytes;
  };
  struct FragSet {
    /// Sorted by (index, node); unique per (index, node).
    std::vector<Frag> frags;
  };

  bool node_up(int node) const {
    return up_[static_cast<std::size_t>(node)] != 0;
  }
  std::vector<std::uint8_t> payload_of(const Key& key) const;
  FragSet& frag_set(const Key& key);
  const FragSet* find_frag_set(const Key& key) const;

  /// Successor-order replica set under the current up/down state:
  /// canonical successors extended past down nodes until n up members
  /// (mirrors System::target_replica_set, bounded by n + 6).
  void target_replica_set(const Key& key, std::vector<int>& out) const;

  /// Inserts one block at the current time: BlockMap entry, encoded
  /// fragments on the up members. Returns false (a failed write) when
  /// fewer than k members are reachable. Safe in an arc lane only when
  /// `in_lane` (no global scheduling; caller guarantees all-up).
  bool write_block(const Key& key, SimTime now, bool in_lane);

  void schedule_next_write(int node);
  void do_foreground_write(int node);

  void on_node_down(int node, bool lose_data);
  void on_node_up(int node);
  /// Detect-delay callback: re-protect the (still-down) node's blocks.
  void repair_scan(int node);

  /// Re-derives one block's membership from the ring + up/down state,
  /// syncs the fragment sidecar, schedules reconstruction for up members
  /// lacking data, and updates its degradation episode.
  void reconcile(const Key& key);
  void start_repair(const Key& key, int node);
  void finish_repair(const Key& key, int node);
  void retry_repair(const Key& key, int node);

  /// Distinct fragment indices intact anywhere (down-but-intact counts).
  int intact_indices(const Key& key) const;
  /// Distinct fragment indices held by up members with data.
  int live_indices(const store::BlockState& b, const FragSet& fs) const;
  /// Picks k reachable fragments (distinct indices, up holders,
  /// excluding `exclude_node`) in (index, node) order. Returns false if
  /// fewer than k are reachable.
  bool pick_sources(const Key& key, int exclude_node,
                    std::vector<const Frag*>& out) const;
  void mark_dead(const Key& key);
  void update_episode(const Key& key, const store::BlockState& b);
  /// Drops sidecar fragments on nodes that are neither members nor stale
  /// holders of the block (after reassign/mark_data pruning).
  void sync_frags(const Key& key, const store::BlockState& b);
  void maybe_audit();

  RepairConfig cfg_;
  sim::Simulator& sim_;
  Rng rng_;
  dht::Ring ring_;
  net::LatencyModel latency_;
  net::TcpModel tcp_;
  store::BlockMap map_;
  store::ErasureCodec codec_;
  Bytes frag_traffic_bytes_;  // per-fragment accounting size
  Bytes frag_payload_len_;    // per-fragment real payload length

  std::vector<char> up_;
  std::vector<sim::BandwidthLink> links_;  // per-node repair budget

  /// Fragment sidecar, sharded by arc so populate lanes stay confined.
  /// Keyed find/emplace/erase only; iterated solely by check_invariants.
  // d2-lint: allow(unordered-container) -- keyed access only; audits count
  std::vector<std::unordered_map<Key, FragSet, KeyHash>> frag_shards_ D2_SHARDED_BY_ARC(arc);

  /// Blocks that became unrecoverable (ever); never leaves the set.
  std::set<Key> dead_;
  /// Open degradation episodes: key -> time protection first dropped.
  std::map<Key, SimTime> degraded_since_;
  /// Reconstructions in flight, (key, target node); authoritative for
  /// the fetch_in_flight flags in the BlockMap.
  std::set<std::pair<Key, int>> inflight_;
  /// node -> keys with a detached ("orphan") fragment on that node: a
  /// sole surviving copy of its index whose holder left the replica set.
  /// Indexed so a lossy node-down can destroy these too.
  std::map<int, std::set<Key>> orphans_;

  Stats mttr_s_;
  Bytes repair_bytes_ = 0;
  Bytes user_write_bytes_ = 0;
  std::uint64_t repairs_started_ = 0;
  std::uint64_t repairs_completed_ = 0;
  std::uint64_t repair_retries_ = 0;
  std::uint64_t verified_ = 0;
  std::uint64_t writes_failed_ = 0;
  SimTime writes_until_ = 0;
  double write_mean_us_ = 0.0;

  ParanoidGate audit_gate_;
  std::vector<int> scratch_set_;
  std::vector<Key> scratch_keys_;
};

/// PlanetLab-style durability scenario (ROADMAP item 2): a correlated
/// mass-failure week over a populated system, measuring durability,
/// repair traffic (L/W), and MTTR for a redundancy scheme.
struct DurabilityParams {
  RepairConfig repair;
  sim::FailureParams failure;  // node_count is overridden from `repair`
  int blocks_per_node = 50;
  double writes_per_node_per_day = 24.0;
  /// Post-trace drain: every node is back up at trace end; this much
  /// extra simulated time lets queued repairs finish.
  SimTime drain = hours(12);
  int arc_workers = 1;
  std::uint64_t failure_seed = 42;
};

struct DurabilityResult {
  RepairStats stats;
  std::uint64_t events = 0;
  double unrecoverable_fraction = 0.0;  // blocks_lost / blocks
  double l_over_w = 0.0;
};

DurabilityResult run_durability(const DurabilityParams& params);

}  // namespace d2::core
