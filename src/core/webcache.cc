#include "core/webcache.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "common/hash.h"
#include "dht/consistent_hash.h"
#include "fs/key_encoding.h"

namespace d2::core {

namespace {
constexpr SimTime kSweepInterval = minutes(30);

// FNV avalanches poorly in the high bits for short, similar strings;
// finalize with a murmur3-style mixer before deriving probabilities.
std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}
}  // namespace

WebCache::WebCache(System& system, fs::KeyScheme scheme, WebCacheConfig config)
    : system_(system),
      scheme_(scheme),
      config_(config),
      web_volume_id_(fs::make_volume_id("webcache")) {
  D2_REQUIRE(config_.eviction_ttl > 0);
  D2_REQUIRE(config_.dynamic_fraction >= 0 && config_.dynamic_fraction <= 1);
  D2_REQUIRE(config_.min_change_interval > 0);
  D2_REQUIRE(config_.max_change_interval >= config_.min_change_interval);
  schedule_sweep();
}

Key WebCache::key_for(std::string_view url) const {
  if (scheme_ == fs::KeyScheme::kD2) {
    const std::string reversed = fs::reverse_domain_url(url);
    const fs::EncodedPath path = fs::encode_url_path(reversed);
    return fs::encode_block_key(web_volume_id_, path, fs::BlockType::kData, 0, 0);
  }
  return dht::hashed_key(url);
}

SimTime WebCache::change_interval(std::string_view url) const {
  if (config_.dynamic_fraction <= 0) return kSimTimeNever;
  // Deterministic per-URL classification and interval.
  const std::uint64_t h = mix64(fnv1a64(url));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config_.dynamic_fraction) return kSimTimeNever;
  const std::uint64_t h2 = mix64(fnv1a64(std::string(url) + "#interval"));
  const auto span = static_cast<std::uint64_t>(config_.max_change_interval -
                                               config_.min_change_interval + 1);
  return config_.min_change_interval + static_cast<SimTime>(h2 % span);
}

bool WebCache::request(std::string_view url, Bytes size) {
  const Key k = key_for(url);
  const SimTime now = system_.simulator().now();
  const SimTime interval = change_interval(url);
  const std::int64_t epoch =
      interval == kSimTimeNever ? 0 : static_cast<std::int64_t>(now / interval);

  auto it = entries_.find(k);
  if (it != entries_.end() && system_.has(k)) {
    it->second.last_access = now;
    if (it->second.version_epoch == epoch) {
      ++hits_;
      return true;
    }
    // The origin has a newer version: re-fetch and replace in the DHT.
    ++version_replacements_;
    it->second.version_epoch = epoch;
    system_.put(k, size);
    return false;
  }
  // Miss: the client fetches from the origin and inserts the object.
  system_.put(k, size);
  entries_[k] = Entry{now, epoch};
  ++misses_;
  return false;
}

void WebCache::schedule_sweep() {
  // d2-sched: global — the TTL sweep walks entries across every arc
  system_.simulator().schedule_after(kSweepInterval, [this] {
    sweep();
    schedule_sweep();
  });
}

void WebCache::sweep() {
  const SimTime now = system_.simulator().now();
  std::vector<Key> expired;
  // d2-lint: allow(unordered-iter) — hash-order walk is collected into
  // `expired` and sorted below before any side effect, so removal (and
  // therefore event) order is key order, not hash order.
  for (const auto& [key, entry] : entries_) {
    if (now - entry.last_access >= config_.eviction_ttl) expired.push_back(key);
  }
  // remove() schedules simulator events; sort so their order (and every
  // downstream event sequence number) is independent of hash layout.
  std::sort(expired.begin(), expired.end());
  for (const Key& k : expired) {
    if (system_.has(k)) system_.remove(k);
    entries_.erase(k);
  }
}

}  // namespace d2::core
