#include "core/performance.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/assert.h"
#include "common/stats.h"
#include "core/replay.h"
#include "core/system.h"
#include "dht/router.h"
#include "net/latency.h"
#include "net/tcp_model.h"
#include "sim/bandwidth.h"
#include "sim/simulator.h"
#include "store/lookup_cache.h"
#include "trace/tasks.h"

namespace d2::core {

PerformanceExperiment::PerformanceExperiment(const PerformanceParams& params)
    : params_(params) {
  D2_REQUIRE(params.window_count > 0);
  D2_REQUIRE_MSG(params.window_length > 0 && params.window_length <= hours(9),
                 "window_length must lie in (0, 9h]");
  D2_REQUIRE(params.max_concurrent_transfers > 0);
}

namespace {

/// A block get inside a window, ready for network simulation.
struct PendingGet {
  Key key;
  Bytes size;
};

}  // namespace

std::vector<SimTime> pick_performance_windows(const trace::HarvardParams& wl,
                                              int count, SimTime length) {
  D2_REQUIRE(count > 0);
  D2_REQUIRE(wl.days > 0);
  D2_REQUIRE_MSG(length > 0 && length <= hours(9),
                 "window length must lie in (0, 9h] — windows are placed "
                 "inside the 9:00-18:00 workday");
  // Necessary (not sufficient) feasibility bound: the windows must fit in
  // the trace's total workday time. Rejecting here gives a clear message
  // for the hopeless cases instead of a budget-exhaustion error below.
  D2_REQUIRE_MSG(static_cast<std::int64_t>(count) * length <=
                     static_cast<std::int64_t>(wl.days) * hours(9),
                 "requested windows exceed the trace's total workday time: " +
                     std::to_string(count) + " x " +
                     std::to_string(to_seconds(length)) + "s over " +
                     std::to_string(wl.days) + " day(s)");
  Rng rng(wl.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<SimTime> starts;
  // Rejection sampling with a generous budget; tight packings (many or
  // long windows over few days) need more attempts than the common case.
  const int max_attempts = count * 500;
  int attempts = 0;
  while (static_cast<int>(starts.size()) < count && attempts < max_attempts) {
    ++attempts;
    const auto day = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(wl.days)));
    const SimTime span = hours(9) - length;  // inside 9:00-18:00
    const SimTime start =
        days(day) + hours(9) +
        static_cast<SimTime>(rng.next_double() * static_cast<double>(span));
    bool overlaps = false;
    for (SimTime s : starts) {
      if (start < s + length && s < start + length) overlaps = true;
    }
    if (!overlaps) starts.push_back(start);
  }
  // A silent shortfall would under-provision every downstream statistic
  // (fewer access groups than the experiment was asked for), so fail
  // loudly instead.
  D2_REQUIRE_MSG(static_cast<int>(starts.size()) == count,
                 "window rejection-sampling budget exhausted: placed " +
                     std::to_string(starts.size()) + " of " +
                     std::to_string(count) + " windows after " +
                     std::to_string(attempts) +
                     " attempts; use fewer/shorter windows or more days");
  std::sort(starts.begin(), starts.end());
  return starts;
}

PerformanceResult PerformanceExperiment::run() {
  // Lookahead 0 = adaptive sync horizon (DESIGN.md §12): windows extend
  // to the next global event, capped by the mailbox watermark only when
  // a committed cross-arc send is outstanding. The old conservative
  // min_one_way_bound() horizon survives as the ArcConfig::lookahead
  // test knob.
  sim::Simulator sim(
      sim::ArcConfig{params_.system.arcs, params_.system.arc_workers, 0,
                     params_.system.scheduler});
  sim.bind_metrics(params_.metrics);
  System system(params_.system, sim, params_.metrics);
  system.set_tracer(params_.tracer);
  VolumeSet volumes(params_.system.scheme);
  volumes.bind_metrics(params_.metrics);
  trace::HarvardGenerator gen(params_.workload);
  Rng rng(params_.system.seed ^ 0x1234567);

  // ---- placement warm-up ----
  std::vector<fs::StoreOp> ops;
  volumes.insert_initial(gen.initial_files(), 0, ops);
  for (const fs::StoreOp& op : ops) {
    if (op.kind == fs::StoreOp::Kind::kPut) system.put(op.key, op.size);
  }
  system.start_load_balancing();
  sim.run_until(params_.warmup);

  // ---- network models ----
  const int n = params_.system.node_count;
  net::LatencyModel latency(n, rng, params_.mean_rtt_ms);
  net::TcpModel tcp;
  std::vector<sim::BandwidthLink> uplinks;
  uplinks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    uplinks.emplace_back(params_.node_bandwidth);
    uplinks.back().bind_metrics(params_.metrics, "net.uplink");
  }
  dht::Router router(system.ring(), rng);
  router.bind_metrics(params_.metrics);

  // Users sit on random nodes (§9.1). Both maps are keyed lookups; the one
  // iteration (the miss-rate fold below) is order-insensitive up to FP
  // rounding and pinned by the determinism goldens.
  std::unordered_map<int, int> user_node;  // d2-lint: allow(unordered-container)
  std::unordered_map<int, store::LookupCache> caches;  // d2-lint: allow(unordered-container) -- keyed lookup; the fold is order-insensitive
  auto cache_of = [&](int user) -> store::LookupCache& {
    auto it = caches.find(user);
    if (it == caches.end()) {
      it = caches.emplace(user, store::LookupCache(params_.lookup_cache_ttl))
               .first;
      it->second.bind_metrics(params_.metrics);
    }
    return it->second;
  };
  auto node_of = [&](int user) -> int {
    auto it = user_node.find(user);
    if (it == user_node.end()) {
      it = user_node
               .emplace(user, static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(n))))
               .first;
    }
    return it->second;
  };

  // ---- access groups and windows ----
  const std::vector<trace::TraceRecord>& records = gen.records();
  const std::vector<trace::AccessGroup> groups =
      trace::segment_access_groups(records);
  std::vector<std::int32_t> record_group(records.size(), -1);
  std::vector<std::size_t> group_last_record(groups.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i : groups[g].record_indices) {
      record_group[i] = static_cast<std::int32_t>(g);
      group_last_record[g] = std::max(group_last_record[g], i);
    }
  }
  const std::vector<SimTime> windows =
      pick_performance_windows(params_.workload, params_.window_count,
                               params_.window_length);
  if (params_.metrics != nullptr) {
    params_.metrics->gauge("core.performance.windows_picked")
        .set(static_cast<double>(windows.size()));
  }
  auto in_window = [&](SimTime t) {
    for (SimTime w : windows) {
      if (t >= w && t < w + params_.window_length) return true;
    }
    return false;
  };

  PerformanceResult result;

  // One get's network simulation. Returns its finish time.
  auto simulate_get = [&](int user, const PendingGet& get,
                          SimTime start) -> SimTime {
    store::LookupCache& cache = cache_of(user);
    const int client = node_of(user);
    SimTime t = start;
    // Lookup (or cache hit).
    const int owner = system.owner_of(get.key);
    std::optional<int> cached = cache.find(t, get.key);
    if (cached && *cached == owner) {
      cache.record_hit();
      ++result.cache_hits;
      if (params_.tracer != nullptr) {
        params_.tracer->record(t, obs::EventType::kCacheHit, user);
      }
    } else {
      if (cached) cache.invalidate(t, get.key);  // stale range
      cache.record_miss();
      ++result.cache_misses;
      if (params_.tracer != nullptr) {
        params_.tracer->record(t, obs::EventType::kCacheMiss, user);
      }
      const dht::Router::LookupResult lr = router.lookup(client, get.key);
      ++result.lookups;
      result.lookup_messages += static_cast<std::uint64_t>(lr.messages);
      SimTime lookup_lat = 0;
      for (std::size_t h = 0; h + 1 < lr.path.size(); ++h) {
        lookup_lat += latency.one_way(lr.path[h], lr.path[h + 1]);
      }
      lookup_lat += latency.one_way(lr.owner, client);  // result returns
      t += lookup_lat;
      const auto [arc_from, arc_to] = system.ring().owned_arc(lr.owner);
      cache.insert(t, lr.owner, arc_from, arc_to);
    }
    // Download from a replica: random by default (§9.3: "D2 currently
    // selects replicas randomly"), or the RTT-closest when enabled.
    const std::vector<int> replicas = system.replica_nodes(get.key);
    int server = owner;
    if (!replicas.empty()) {
      if (params_.closest_replica) {
        server = replicas.front();
        for (const int candidate : replicas) {
          if (latency.rtt(client, candidate) < latency.rtt(client, server)) {
            server = candidate;
          }
        }
      } else {
        server = replicas[rng.next_below(replicas.size())];
      }
    }
    const int rtts = tcp.transfer_rtts(client, server, t, get.size);
    const SimTime bw_done = uplinks[static_cast<std::size_t>(server)].enqueue(
        t, get.size);
    const SimTime finish = std::max(
        t + static_cast<SimTime>(rtts) * latency.rtt(client, server), bw_done);
    tcp.touch(client, server, finish);
    return finish;
  };

  // Simulates one whole access group; returns its completion latency.
  auto simulate_group = [&](int user, const std::vector<PendingGet>& gets,
                            SimTime group_start) -> SimTime {
    if (gets.empty()) return 0;
    if (!params_.parallel) {
      SimTime t = group_start;
      for (const PendingGet& g : gets) t = simulate_get(user, g, t);
      return t - group_start;
    }
    // para: everything issues at group start, capped at 15 in flight.
    std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>> active;
    std::size_t next = 0;
    SimTime last_finish = group_start;
    while (next < gets.size() &&
           static_cast<int>(active.size()) < params_.max_concurrent_transfers) {
      active.push(simulate_get(user, gets[next++], group_start));
    }
    while (!active.empty()) {
      const SimTime f = active.top();
      active.pop();
      last_finish = std::max(last_finish, f);
      if (next < gets.size()) {
        active.push(simulate_get(user, gets[next++], f));
      }
    }
    return last_finish - group_start;
  };

  // ---- replay ----
  std::vector<std::vector<PendingGet>> group_gets(groups.size());
  std::vector<fs::StoreOp> rec_ops;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::TraceRecord& r = records[i];
    const SimTime abs_t = params_.warmup + r.time;
    sim.run_until(abs_t);
    rec_ops.clear();
    volumes.apply(r, abs_t, rec_ops);
    const bool windowed = in_window(r.time);
    for (const fs::StoreOp& op : rec_ops) {
      switch (op.kind) {
        case fs::StoreOp::Kind::kPut:
          system.put(op.key, op.size);
          break;
        case fs::StoreOp::Kind::kRemove:
          system.remove(op.key);
          break;
        case fs::StoreOp::Kind::kGet:
          if (windowed && record_group[i] >= 0) {
            group_gets[static_cast<std::size_t>(record_group[i])].push_back(
                PendingGet{op.key, op.size});
          } else {
            // Outside windows: warm the user's lookup cache only (this is
            // the paper's "simulate cache content from the beginning").
            const int owner = system.owner_of(op.key);
            const auto [arc_from, arc_to] = system.ring().owned_arc(owner);
            cache_of(r.user).insert(abs_t, owner, arc_from, arc_to);
          }
          break;
      }
    }
    // When a windowed group's last record has been replayed, simulate it.
    const std::int32_t g = record_group[i];
    if (g >= 0 && group_last_record[static_cast<std::size_t>(g)] == i &&
        windowed && !group_gets[static_cast<std::size_t>(g)].empty()) {
      const SimTime lat = simulate_group(
          groups[static_cast<std::size_t>(g)].user,
          group_gets[static_cast<std::size_t>(g)],
          params_.warmup + groups[static_cast<std::size_t>(g)].start);
      result.groups.push_back(GroupResult{
          groups[static_cast<std::size_t>(g)].user,
          static_cast<std::uint64_t>(g), lat,
          static_cast<int>(group_gets[static_cast<std::size_t>(g)].size())});
      group_gets[static_cast<std::size_t>(g)].clear();
      group_gets[static_cast<std::size_t>(g)].shrink_to_fit();
    }
  }

  // ---- stats ----
  result.lookup_messages_per_node =
      static_cast<double>(result.lookup_messages) / n;
  Stats miss_rates;
  // The mean over users is independent of visit order except for FP
  // summation rounding; with libstdc++ and this seeded insertion sequence
  // the order is stable, and the exact bits are pinned by
  // tests/test_determinism_golden.cc. Sorting here would change the pinned
  // checksum for zero behavioral gain.
  // d2-lint: allow(unordered-iter)
  for (const auto& [user, cache] : caches) {
    if (cache.hits() + cache.misses() > 0) miss_rates.add(cache.miss_rate());
  }
  if (!miss_rates.empty()) result.mean_cache_miss_rate = miss_rates.mean();
  result.tcp_cold_starts = tcp.cold_starts();
  result.tcp_transfers = tcp.transfers();
  if (params_.metrics != nullptr) {
    sim.export_metrics();
    params_.metrics->gauge("net.tcp.cold_start_rate")
        .set(result.tcp_transfers == 0
                 ? 0.0
                 : static_cast<double>(result.tcp_cold_starts) /
                       static_cast<double>(result.tcp_transfers));
    params_.metrics->gauge("store.lookup_cache.mean_user_miss_rate")
        .set(result.mean_cache_miss_rate);
  }
  return result;
}

SpeedupSummary compute_speedup(const PerformanceResult& baseline,
                               const PerformanceResult& treatment) {
  // Keyed join table; iteration happens over the ordered inputs instead.
  std::unordered_map<std::uint64_t, const GroupResult*> base_by_id;  // d2-lint: allow(unordered-container)
  for (const GroupResult& g : baseline.groups) base_by_id.emplace(g.group_id, &g);

  std::map<int, std::vector<double>> per_user_ratios;
  std::uint64_t matched = 0;
  for (const GroupResult& g : treatment.groups) {
    auto it = base_by_id.find(g.group_id);
    if (it == base_by_id.end()) continue;
    if (g.latency <= 0 || it->second->latency <= 0) continue;
    per_user_ratios[g.user].push_back(static_cast<double>(it->second->latency) /
                                      static_cast<double>(g.latency));
    ++matched;
  }
  SpeedupSummary s;
  s.matched_groups = matched;
  std::vector<double> user_means;
  for (const auto& [user, ratios] : per_user_ratios) {
    const double m = geometric_mean(ratios);
    s.per_user[user] = m;
    user_means.push_back(m);
  }
  if (!user_means.empty()) s.overall = geometric_mean(user_means);
  return s;
}

std::vector<std::pair<SimTime, SimTime>> matched_latencies(
    const PerformanceResult& baseline, const PerformanceResult& treatment) {
  // Keyed join table; iteration happens over the ordered inputs instead.
  std::unordered_map<std::uint64_t, SimTime> base_by_id;  // d2-lint: allow(unordered-container)
  for (const GroupResult& g : baseline.groups) {
    base_by_id.emplace(g.group_id, g.latency);
  }
  std::vector<std::pair<SimTime, SimTime>> out;
  for (const GroupResult& g : treatment.groups) {
    auto it = base_by_id.find(g.group_id);
    if (it != base_by_id.end() && g.latency > 0 && it->second > 0) {
      out.emplace_back(it->second, g.latency);
    }
  }
  return out;
}

}  // namespace d2::core
