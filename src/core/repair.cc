#include "core/repair.h"

#include <algorithm>
#include <array>
#include <bitset>

#include "common/assert.h"
#include "common/lane.h"

namespace d2::core {

namespace {

bool stale_contains(const store::BlockState& b, int node) {
  return std::find(b.stale_holders.begin(), b.stale_holders.end(), node) !=
         b.stale_holders.end();
}

store::Replica* find_member(store::BlockState& b, int node) {
  for (store::Replica& r : b.replicas) {
    if (r.node == node) return &r;
  }
  return nullptr;
}

}  // namespace

RepairEngine::RepairEngine(const RepairConfig& config, sim::Simulator& sim)
    : cfg_(config),
      sim_(sim),
      rng_(config.seed),
      latency_(config.node_count, rng_, config.mean_rtt_ms),
      tcp_(),
      map_(config.node_count, config.arcs),
      codec_(config.erasure ? config.ec_data_fragments : 1,
             config.erasure ? config.ec_parity_fragments
                            : config.replicas - 1),
      frag_shards_(static_cast<std::size_t>(config.arcs)) {
  D2_REQUIRE_MSG(cfg_.node_count >= n(),
                 "repair: need at least k + m nodes to place a block");
  D2_REQUIRE(cfg_.block_size > 0);
  D2_REQUIRE(cfg_.payload_bytes > 0);
  D2_REQUIRE(cfg_.repair_bandwidth > 0);
  D2_REQUIRE(cfg_.data_loss_fraction >= 0.0 && cfg_.data_loss_fraction <= 1.0);
  frag_traffic_bytes_ = (cfg_.block_size + k() - 1) / k();
  frag_payload_len_ = codec_.fragment_bytes(cfg_.payload_bytes);
  for (int node = 0; node < cfg_.node_count; ++node) {
    Key id = Key::random(rng_);
    while (ring_.id_taken(id)) id = Key::random(rng_);
    ring_.add(node, id);
  }
  up_.assign(static_cast<std::size_t>(cfg_.node_count), 1);
  links_.assign(static_cast<std::size_t>(cfg_.node_count),
                sim::BandwidthLink(cfg_.repair_bandwidth));
}

std::vector<std::uint8_t> RepairEngine::payload_of(const Key& key) const {
  // Pure function of (key, seed): the original block contents can always
  // be re-derived, which is what lets every reconstruction be verified
  // against a fresh encode of the true payload.
  Rng pr(key.limb(0) ^ (key.limb(7) * 0x9e3779b97f4a7c15ull) ^ cfg_.seed);
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(cfg_.payload_bytes));
  std::size_t i = 0;
  while (i < payload.size()) {
    std::uint64_t w = pr.next_u64();
    for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
      payload[i] = static_cast<std::uint8_t>(w >> (8 * b));
    }
  }
  return payload;
}

RepairEngine::FragSet& RepairEngine::frag_set(const Key& key) {
  D2_ASSERT_OWNER_LANE(map_.arc_of(key));
  return frag_shards_[static_cast<std::size_t>(map_.arc_of(key))][key];
}

const RepairEngine::FragSet* RepairEngine::find_frag_set(const Key& key) const {
  const auto& shard = frag_shards_[static_cast<std::size_t>(map_.arc_of(key))];
  const auto it = shard.find(key);
  return it == shard.end() ? nullptr : &it->second;
}

void RepairEngine::target_replica_set(const Key& key,
                                      std::vector<int>& out) const {
  // Successor-order set extended past down nodes until n up members,
  // mirroring System::target_replica_set (without scatter placement).
  const int r = n();
  out.clear();
  const int cap = std::min<int>(static_cast<int>(ring_.size()), r + 6);
  int node = ring_.owner(key);
  int up_count = 0;
  for (int i = 0; i < cap; ++i) {
    out.push_back(node);
    if (node_up(node)) ++up_count;
    if (up_count >= r && static_cast<int>(out.size()) >= r) break;
    node = ring_.successor(node);
  }
}

bool RepairEngine::write_block(const Key& key, SimTime now, bool in_lane) {
  std::vector<int> set;
  target_replica_set(key, set);
  int up_members = 0;
  for (int node : set) {
    if (node_up(node)) ++up_members;
  }
  if (up_members < k()) {
    // Not enough reachable members to protect the data at all: the write
    // fails rather than creating a block that is unrecoverable at birth.
    D2_ASSERT_MSG(!in_lane, "populate requires every node up");
    ++writes_failed_;
    return false;
  }
  map_.insert(key, cfg_.block_size, set, frag_traffic_bytes_);
  std::vector<std::vector<std::uint8_t>> encoded =
      codec_.encode(payload_of(key));
  FragSet& fs = frag_set(key);
  int next_index = 0;
  for (int node : set) {
    if (node_up(node) && next_index < n()) {
      fs.frags.push_back(
          Frag{next_index, node, std::move(encoded[
              static_cast<std::size_t>(next_index)])});
      ++next_index;
    } else {
      map_.mark_missing(key, node);
    }
  }
  if (!in_lane) {
    user_write_bytes_ += cfg_.block_size;
    // Degraded at birth only if fewer than n fragments could be placed:
    // the target set extends past down nodes, so a write can carry a
    // down, data-less member and still be fully protected by n up ones.
    if (next_index < n()) {
      degraded_since_.emplace(key, now);
      // The members lacking data are down (no transition will fire for
      // them); give the block its own detect-delay re-protection pass.
      // d2-sched: global — RepairEngine runs an unpartitioned serial sim
      sim_.schedule_after(cfg_.detect_delay, [this, key] {
        if (dead_.count(key) == 0) {
          reconcile(key);
          maybe_audit();
        }
      });
    }
    maybe_audit();
  }
  return true;
}

void RepairEngine::populate(std::int64_t count) {
  D2_REQUIRE(count >= 0);
  for (int node = 0; node < cfg_.node_count; ++node) {
    D2_REQUIRE_MSG(node_up(node), "populate requires every node up");
  }
  std::vector<Key> planned;
  planned.reserve(static_cast<std::size_t>(count));
  std::set<Key> used;
  for (std::int64_t i = 0; i < count; ++i) {
    Key key = Key::random(rng_);
    while (map_.contains(key) || !used.insert(key).second) {
      key = Key::random(rng_);
    }
    planned.push_back(key);
  }
  // Each lane inserts the keys its arc owns, in generation order: the
  // resulting state is identical for any arc/worker setting, and the
  // encode work parallelizes across workers.
  const SimTime now = sim_.now();
  sim_.run_arc_phase([this, &planned, now](int arc) {
    for (const Key& key : planned) {
      if (map_.arc_of(key) == arc) write_block(key, now, /*in_lane=*/true);
    }
  });
  user_write_bytes_ += count * cfg_.block_size;
  maybe_audit();
}

void RepairEngine::attach_failure_trace(const sim::FailureTrace& trace) {
  D2_REQUIRE_MSG(trace.node_count() == cfg_.node_count,
                 "failure trace node count mismatch");
  for (const sim::FailureTrace::Transition& tr : trace.transitions()) {
    const int node = tr.node;
    if (tr.up) {
      // d2-sched: global — up/down transitions mutate cross-node state
      sim_.schedule_at(tr.time, [this, node] { on_node_up(node); });
    } else {
      // Drawn here, not at event time, so the loss outcome depends only
      // on the trace — never on event interleaving.
      const bool lose = rng_.bernoulli(cfg_.data_loss_fraction);
      // d2-sched: global — up/down transitions mutate cross-node state
      sim_.schedule_at(tr.time, [this, node, lose] {
        on_node_down(node, lose);
      });
    }
  }
}

void RepairEngine::start_foreground_writes(double writes_per_node_per_day,
                                           SimTime until) {
  D2_REQUIRE(writes_per_node_per_day > 0);
  writes_until_ = until;
  write_mean_us_ = 24.0 * 3600e6 / writes_per_node_per_day;
  for (int node = 0; node < cfg_.node_count; ++node) {
    schedule_next_write(node);
  }
}

void RepairEngine::schedule_next_write(int node) {
  const SimTime next =
      sim_.now() + static_cast<SimTime>(rng_.exponential(write_mean_us_));
  if (next > writes_until_) return;
  // d2-sched: global — RepairEngine runs an unpartitioned serial sim
  sim_.schedule_at(next, [this, node] { do_foreground_write(node); });
}

void RepairEngine::do_foreground_write(int node) {
  if (node_up(node)) {
    Key key = Key::random(rng_);
    while (map_.contains(key)) key = Key::random(rng_);
    write_block(key, sim_.now(), /*in_lane=*/false);
  }
  schedule_next_write(node);
}

int RepairEngine::intact_indices(const Key& key) const {
  const FragSet* fs = find_frag_set(key);
  if (fs == nullptr) return 0;
  std::bitset<256> seen;
  for (const Frag& f : fs->frags) seen.set(static_cast<std::size_t>(f.index));
  return static_cast<int>(seen.count());
}

int RepairEngine::live_indices(const store::BlockState& b,
                               const FragSet& fs) const {
  // Only fragments on up *members* count as protection; copies on stale
  // or detached holders are recovery sources, not redundancy (a member
  // holding a fragment always has has_data by the sidecar invariant).
  std::bitset<256> seen;
  for (const Frag& f : fs.frags) {
    if (node_up(f.node) && b.is_replica(f.node)) {
      seen.set(static_cast<std::size_t>(f.index));
    }
  }
  return static_cast<int>(seen.count());
}

bool RepairEngine::pick_sources(const Key& key, int exclude_node,
                                std::vector<const Frag*>& out) const {
  out.clear();
  const FragSet* fs = find_frag_set(key);
  if (fs == nullptr) return false;
  int last_index = -1;
  for (const Frag& f : fs->frags) {  // sorted by (index, node)
    if (f.index == last_index) continue;
    if (f.node == exclude_node || !node_up(f.node)) continue;
    out.push_back(&f);
    last_index = f.index;
    if (static_cast<int>(out.size()) == k()) return true;
  }
  return false;
}

void RepairEngine::mark_dead(const Key& key) {
  D2_DCHECK_MSG(intact_indices(key) < k(),
                "mark_dead on a block with >= k intact fragments");
  if (!dead_.insert(key).second) return;
  // A dead block's degradation episode never closes; it is excluded from
  // MTTR and counted by durability instead.
  degraded_since_.erase(key);
}

void RepairEngine::update_episode(const Key& key,
                                  const store::BlockState& b) {
  const FragSet* fs = find_frag_set(key);
  const int live = fs == nullptr ? 0 : live_indices(b, *fs);
  const auto it = degraded_since_.find(key);
  if (live >= n()) {
    if (it != degraded_since_.end()) {
      mttr_s_.add(to_seconds(sim_.now() - it->second));
      degraded_since_.erase(it);
    }
    return;
  }
  if (it == degraded_since_.end() && dead_.count(key) == 0) {
    degraded_since_.emplace(key, sim_.now());
  }
}

void RepairEngine::sync_frags(const Key& key, const store::BlockState& b) {
  FragSet& fs = frag_set(key);
  std::array<int, 256> copies{};
  for (const Frag& f : fs.frags) ++copies[static_cast<std::size_t>(f.index)];
  const int live = live_indices(b, fs);
  std::vector<Frag> kept;
  kept.reserve(fs.frags.size());
  for (Frag& f : fs.frags) {
    const bool attached = b.is_replica(f.node) || stale_contains(b, f.node);
    if (attached) {
      kept.push_back(std::move(f));
      continue;
    }
    // Detached holder (its node was dropped from the set). Keep the
    // fragment only while it is the sole copy of its index and the block
    // is not fully protected — dropping a sole copy could push the block
    // below k recoverable fragments.
    const bool sole = copies[static_cast<std::size_t>(f.index)] == 1;
    if (sole && live < n()) {
      kept.push_back(std::move(f));
      continue;
    }
    const auto oit = orphans_.find(f.node);
    if (oit != orphans_.end()) oit->second.erase(key);
  }
  fs.frags = std::move(kept);
  for (const Frag& f : fs.frags) {
    const bool attached = b.is_replica(f.node) || stale_contains(b, f.node);
    if (attached) {
      const auto oit = orphans_.find(f.node);
      if (oit != orphans_.end()) oit->second.erase(key);
    } else {
      orphans_[f.node].insert(key);
    }
  }
}

void RepairEngine::on_node_down(int node, bool lose_data) {
  up_[static_cast<std::size_t>(node)] = 0;
  scratch_keys_.clear();
  map_.for_each_block([&](const Key& key, const store::BlockState& b) {
    if (b.is_replica(node) || stale_contains(b, node)) {
      scratch_keys_.push_back(key);
    }
  });
  if (lose_data) {
    // Disk loss: every fragment stored on the node is gone, including
    // detached (orphan) copies kept alive only for recoverability.
    const auto oit = orphans_.find(node);
    if (oit != orphans_.end()) {
      for (const Key& key : oit->second) scratch_keys_.push_back(key);
      oit->second.clear();
    }
  }
  for (const Key& key : scratch_keys_) {
    store::BlockState* b = map_.find_mutable(key);
    if (b == nullptr) continue;
    if (lose_data) {
      FragSet& fs = frag_set(key);
      const auto split = std::remove_if(
          fs.frags.begin(), fs.frags.end(),
          [node](const Frag& f) { return f.node == node; });
      fs.frags.erase(split, fs.frags.end());
      if (b->is_replica(node)) {
        if (b->node_has_data(node)) map_.mark_missing(key, node);
      } else {
        // Stale or detached holder: its physical copy is gone too.
        map_.drop_stale(key, node);
      }
      if (dead_.count(key) == 0 && intact_indices(key) < k()) mark_dead(key);
    }
    if (dead_.count(key) == 0) update_episode(key, *b);
  }
  // d2-sched: global — RepairEngine runs an unpartitioned serial sim
  sim_.schedule_after(cfg_.detect_delay, [this, node] {
    if (!node_up(node)) repair_scan(node);
  });
  maybe_audit();
}

void RepairEngine::repair_scan(int node) {
  scratch_keys_.clear();
  map_.for_each_block([&](const Key& key, const store::BlockState& b) {
    if (b.is_replica(node)) scratch_keys_.push_back(key);
  });
  const std::vector<Key> keys = scratch_keys_;
  for (const Key& key : keys) {
    if (dead_.count(key) == 0) reconcile(key);
  }
  maybe_audit();
}

void RepairEngine::on_node_up(int node) {
  up_[static_cast<std::size_t>(node)] = 1;
  scratch_keys_.clear();
  map_.for_each_block([&](const Key& key, const store::BlockState& b) {
    if (b.is_replica(node) || stale_contains(b, node)) {
      scratch_keys_.push_back(key);
    }
  });
  const std::vector<Key> keys = scratch_keys_;
  for (const Key& key : keys) {
    if (dead_.count(key) == 0) reconcile(key);
  }
  maybe_audit();
}

void RepairEngine::reconcile(const Key& key) {
  store::BlockState* b = map_.find_mutable(key);
  if (b == nullptr || dead_.count(key) != 0) return;
  target_replica_set(key, scratch_set_);
  map_.reassign_replicas(key, scratch_set_, sim_.now());
  // A member rejoining without the stale-holder fast path may still
  // physically hold its old fragment (kept as a detached sole copy):
  // reattach it rather than scheduling a redundant reconstruction.
  {
    const FragSet& fs = frag_set(key);
    for (const store::Replica& r : b->replicas) {
      if (r.has_data) continue;
      for (const Frag& f : fs.frags) {
        if (f.node == r.node) {
          map_.mark_data(key, r.node);
          break;
        }
      }
    }
  }
  sync_frags(key, *b);
  for (store::Replica& r : b->replicas) {
    if (node_up(r.node) && !r.has_data && !r.fetch_in_flight &&
        inflight_.count({key, r.node}) == 0) {
      start_repair(key, r.node);
    }
  }
  // A rebuilt fragment can duplicate an index whose original holder later
  // rejoined the set: every member then holds data, yet some index is
  // live only on a detached holder (or nowhere up) and the per-member
  // loop above has nothing to repair. Re-target the duplicate holders so
  // the member set converges to n distinct indices.
  if (live_indices(*b, frag_set(key)) < n()) {
    std::bitset<256> seen;
    std::vector<int> dup_nodes;
    for (const Frag& f : frag_set(key).frags) {
      if (!node_up(f.node) || !b->is_replica(f.node) ||
          !b->node_has_data(f.node)) {
        continue;
      }
      if (seen.test(static_cast<std::size_t>(f.index))) {
        dup_nodes.push_back(f.node);
      } else {
        seen.set(static_cast<std::size_t>(f.index));
      }
    }
    for (int node : dup_nodes) {
      if (inflight_.count({key, node}) != 0) continue;
      map_.mark_missing(key, node);
      FragSet& fs = frag_set(key);
      for (auto it = fs.frags.begin(); it != fs.frags.end(); ++it) {
        if (it->node == node) {
          fs.frags.erase(it);
          break;
        }
      }
      start_repair(key, node);
    }
  }
  update_episode(key, *b);
  // No audit here: reconcile runs inside the on_node_up / repair_scan
  // batch loops, where episode bookkeeping for not-yet-visited keys
  // legitimately lags the up_ flip — callers audit once the batch is
  // consistent again.
}

void RepairEngine::start_repair(const Key& key, int node) {
  store::BlockState* b = map_.find_mutable(key);
  D2_ASSERT(b != nullptr);
  store::Replica* r = find_member(*b, node);
  D2_ASSERT(r != nullptr);
  std::vector<const Frag*> sources;
  if (!pick_sources(key, node, sources)) {
    if (intact_indices(key) >= k()) {
      // Recoverable, but some needed fragment sits on a down node: back
      // off and retry once its holder may have returned.
      ++repair_retries_;
      // d2-sched: global — RepairEngine runs an unpartitioned serial sim
      sim_.schedule_after(cfg_.retry_delay, [this, key, node] {
        retry_repair(key, node);
      });
    }
    return;
  }
  // Cost model: the destination pulls k fragments in parallel — latency
  // is the slowest source's TCP slow-start RTTs, and the bytes serialize
  // through the destination's repair-bandwidth budget.
  const SimTime now = sim_.now();
  SimTime lat = 0;
  for (const Frag* f : sources) {
    const int rtts = tcp_.transfer_rtts(f->node, node, now,
                                        frag_traffic_bytes_);
    lat = std::max(lat, rtts * latency_.rtt(f->node, node));
  }
  const Bytes total = static_cast<Bytes>(k()) * frag_traffic_bytes_;
  const SimTime link_done =
      links_[static_cast<std::size_t>(node)].enqueue(now, total);
  const SimTime finish = std::max(now + lat, link_done);
  for (const Frag* f : sources) tcp_.touch(f->node, node, finish);
  r->fetch_in_flight = true;
  inflight_.insert({key, node});
  repair_bytes_ += total;
  ++repairs_started_;
  // d2-sched: global — RepairEngine runs an unpartitioned serial sim
  sim_.schedule_at(finish, [this, key, node] { finish_repair(key, node); });
}

void RepairEngine::retry_repair(const Key& key, int node) {
  store::BlockState* b = map_.find_mutable(key);
  if (b == nullptr || dead_.count(key) != 0) return;
  store::Replica* r = find_member(*b, node);
  if (r == nullptr || !node_up(node) || r->has_data || r->fetch_in_flight ||
      inflight_.count({key, node}) != 0) {
    return;
  }
  start_repair(key, node);
}

void RepairEngine::finish_repair(const Key& key, int node) {
  inflight_.erase({key, node});
  store::BlockState* b = map_.find_mutable(key);
  if (b == nullptr) return;
  store::Replica* r = find_member(*b, node);
  if (r != nullptr) r->fetch_in_flight = false;
  if (dead_.count(key) != 0) return;
  if (r == nullptr || !node_up(node) || r->has_data) {
    // Membership moved on or the target died mid-transfer; the next
    // down-scan or reconcile of this block reissues what is still needed.
    return;
  }
  std::vector<const Frag*> sources;
  if (!pick_sources(key, node, sources)) {
    if (intact_indices(key) >= k()) {
      ++repair_retries_;
      // d2-sched: global — RepairEngine runs an unpartitioned serial sim
      sim_.schedule_after(cfg_.retry_delay, [this, key, node] {
        retry_repair(key, node);
      });
    }
    return;
  }
  // Rebuild the lowest fragment index not held by an up member (a copy
  // on a stale holder is only a source — it does not protect the block).
  const FragSet& fs = frag_set(key);
  std::bitset<256> live_idx;
  for (const Frag& f : fs.frags) {
    if (node_up(f.node) && b->is_replica(f.node)) {
      live_idx.set(static_cast<std::size_t>(f.index));
    }
  }
  int target = -1;
  for (int i = 0; i < n(); ++i) {
    if (!live_idx.test(static_cast<std::size_t>(i))) {
      target = i;
      break;
    }
  }
  if (target < 0) {
    // Every fragment already lives on an up member: nothing to rebuild.
    update_episode(key, *b);
    return;
  }
  std::vector<int> indices;
  std::vector<const std::uint8_t*> bytes;
  indices.reserve(sources.size());
  bytes.reserve(sources.size());
  for (const Frag* f : sources) {
    indices.push_back(f->index);
    bytes.push_back(f->bytes.data());
  }
  std::vector<std::uint8_t> rebuilt =
      codec_.reconstruct(indices, bytes, frag_payload_len_, target);
  // End-to-end codec check on every repair: reconstruction from whatever
  // k fragments survived must equal a fresh encode of the true payload.
  const std::vector<std::vector<std::uint8_t>> expected =
      codec_.encode(payload_of(key));
  D2_ASSERT_MSG(rebuilt == expected[static_cast<std::size_t>(target)],
                "repair: reconstructed fragment mismatches original encoding");
  ++verified_;
  FragSet& mut_fs = frag_set(key);
  Frag nf{target, node, std::move(rebuilt)};
  const auto pos = std::upper_bound(
      mut_fs.frags.begin(), mut_fs.frags.end(), nf,
      [](const Frag& a, const Frag& f) {
        return a.index != f.index ? a.index < f.index : a.node < f.node;
      });
  mut_fs.frags.insert(pos, std::move(nf));
  map_.mark_data(key, node);  // may prune stale holders
  sync_frags(key, *b);
  ++repairs_completed_;
  update_episode(key, *b);
  maybe_audit();
}

RepairStats RepairEngine::snapshot() const {
  RepairStats s;
  s.blocks = map_.block_count();
  s.blocks_lost = dead_.size();
  s.repair_bytes = repair_bytes_;
  s.user_write_bytes = user_write_bytes_;
  s.repairs_started = repairs_started_;
  s.repairs_completed = repairs_completed_;
  s.repair_retries = repair_retries_;
  s.verified_reconstructions = verified_;
  s.writes_failed = writes_failed_;
  s.mttr_episodes = mttr_s_.count();
  s.mttr_mean_s = mttr_s_.empty() ? 0.0 : mttr_s_.mean();
  s.mttr_p99_s = mttr_s_.empty() ? 0.0 : mttr_s_.percentile(99.0);
  s.open_episodes = degraded_since_.size();
  return s;
}

void RepairEngine::maybe_audit() {
  if (!kParanoid) return;
  if (audit_gate_.due(map_.block_count())) check_invariants();
}

void RepairEngine::check_invariants() const {
  ring_.check_invariants();
  map_.check_invariants();
  Bytes link_bytes = 0;
  for (const sim::BandwidthLink& l : links_) link_bytes += l.total_bytes();
  D2_ASSERT_MSG(link_bytes == repair_bytes_,
                "repair: budget-link bytes diverge from repair accounting");
  std::size_t inflight_flags = 0;
  std::size_t frag_blocks = 0;
  map_.for_each_block([&](const Key& key, const store::BlockState& b) {
    const FragSet* fs = find_frag_set(key);
    D2_ASSERT_MSG(fs != nullptr, "repair: block missing its fragment set");
    ++frag_blocks;
    const bool dead = dead_.count(key) != 0;
    std::bitset<256> indices;
    std::array<int, 256> copies{};
    int last_index = -1;
    int last_node = -1;
    std::vector<char> holder(static_cast<std::size_t>(cfg_.node_count), 0);
    for (const Frag& f : fs->frags) {
      D2_ASSERT_MSG(f.index >= 0 && f.index < n(),
                    "repair: fragment index out of range");
      D2_ASSERT_MSG(f.node >= 0 && f.node < cfg_.node_count,
                    "repair: fragment node out of range");
      D2_ASSERT_MSG(
          f.bytes.size() == static_cast<std::size_t>(frag_payload_len_),
          "repair: fragment has wrong payload length");
      D2_ASSERT_MSG(f.index > last_index ||
                        (f.index == last_index && f.node > last_node),
                    "repair: fragment set out of (index, node) order");
      last_index = f.index;
      last_node = f.node;
      indices.set(static_cast<std::size_t>(f.index));
      ++copies[static_cast<std::size_t>(f.index)];
      D2_ASSERT_MSG(holder[static_cast<std::size_t>(f.node)] == 0,
                    "repair: node holds two fragments of one block");
      holder[static_cast<std::size_t>(f.node)] = 1;
    }
    for (const store::Replica& r : b.replicas) {
      D2_ASSERT_MSG(r.has_data ==
                        (holder[static_cast<std::size_t>(r.node)] != 0),
                    "repair: member data flag diverges from fragment set");
      if (r.fetch_in_flight) {
        ++inflight_flags;
        D2_ASSERT_MSG(inflight_.count({key, r.node}) != 0,
                      "repair: in-flight member not tracked in repair queue");
      }
    }
    const int live = live_indices(b, *fs);
    for (const Frag& f : fs->frags) {
      const bool attached = b.is_replica(f.node) || stale_contains(b, f.node);
      if (!attached) {
        D2_ASSERT_MSG(copies[static_cast<std::size_t>(f.index)] == 1,
                      "repair: detached fragment duplicates a held index");
        D2_ASSERT_MSG(live < n(),
                      "repair: fully protected block keeps detached fragment");
        const auto oit = orphans_.find(f.node);
        D2_ASSERT_MSG(oit != orphans_.end() && oit->second.count(key) != 0,
                      "repair: detached fragment missing from orphan index");
      }
    }
    const int intact = static_cast<int>(indices.count());
    if (dead) {
      D2_ASSERT_MSG(intact < k(), "repair: dead block is recoverable");
    } else {
      D2_ASSERT_MSG(intact >= k(), "repair: live block below k fragments");
    }
    const auto eit = degraded_since_.find(key);
    if (eit != degraded_since_.end()) {
      D2_ASSERT_MSG(!dead, "repair: dead block has an open episode");
      D2_ASSERT_MSG(live < n(),
                    "repair: fully protected block has an open episode");
    } else if (!dead) {
      D2_ASSERT_MSG(live >= n(),
                    "repair: degraded block has no open episode");
    }
  });
  std::size_t sidecar_blocks = 0;
  for (const auto& shard : frag_shards_) {
    sidecar_blocks += shard.size();
  }
  D2_ASSERT_MSG(sidecar_blocks == frag_blocks,
                "repair: fragment sidecar holds unknown blocks");
  for (const auto& [key, node] : inflight_) {
    D2_ASSERT_MSG(map_.contains(key),
                  "repair: queue entry references unknown block");
    D2_ASSERT_MSG(node >= 0 && node < cfg_.node_count,
                  "repair: queue entry node out of range");
  }
  D2_ASSERT_MSG(inflight_flags <= inflight_.size(),
                "repair: more in-flight flags than queue entries");
  for (const auto& [node, keys] : orphans_) {
    for (const Key& key : keys) {
      const FragSet* fs = find_frag_set(key);
      bool found = false;
      if (fs != nullptr) {
        for (const Frag& f : fs->frags) found |= f.node == node;
      }
      D2_ASSERT_MSG(found, "repair: orphan index entry without a fragment");
    }
  }
  for (const auto& [key, since] : degraded_since_) {
    D2_ASSERT_MSG(map_.contains(key),
                  "repair: episode references unknown block");
    D2_ASSERT_MSG(since <= sim_.now(), "repair: episode starts in the future");
  }
}

DurabilityResult run_durability(const DurabilityParams& params) {
  sim::ArcConfig ac;
  ac.arcs = params.repair.arcs;
  ac.workers = params.arc_workers;
  ac.lookahead = 0;
  ac.scheduler = params.repair.scheduler;
  sim::Simulator sim(ac);
  RepairEngine engine(params.repair, sim);
  engine.populate(static_cast<std::int64_t>(params.blocks_per_node) *
                  params.repair.node_count);
  sim::FailureParams fp = params.failure;
  fp.node_count = params.repair.node_count;
  Rng trace_rng(params.failure_seed);
  const sim::FailureTrace trace = sim::FailureTrace::generate(fp, trace_rng);
  engine.attach_failure_trace(trace);
  if (params.writes_per_node_per_day > 0) {
    engine.start_foreground_writes(params.writes_per_node_per_day,
                                   fp.duration);
  }
  sim.run_until(fp.duration + params.drain);
  engine.check_invariants();
  DurabilityResult result;
  result.stats = engine.snapshot();
  result.events = sim.events_processed();
  result.unrecoverable_fraction =
      result.stats.blocks == 0
          ? 0.0
          : static_cast<double>(result.stats.blocks_lost) /
                static_cast<double>(result.stats.blocks);
  result.l_over_w =
      result.stats.user_write_bytes == 0
          ? 0.0
          : static_cast<double>(result.stats.repair_bytes) /
                static_cast<double>(result.stats.user_write_bytes);
  return result;
}

}  // namespace d2::core
