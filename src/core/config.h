// System-level configuration shared by all experiments.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "fs/volume.h"
#include "sim/timing_wheel.h"

namespace d2::core {

struct SystemConfig {
  int node_count = 200;

  /// Replicas per block (r). The paper uses 3 in the availability study
  /// and 4 in the performance study.
  int replicas = 3;

  /// Redundancy scheme (§3): whole-block replication (the paper's choice,
  /// "for simplicity") or (n, k) erasure coding — n fragments of size/k on
  /// the n successors, any k of which reconstruct the block. Erasure
  /// saves storage (n/k x instead of r x) at the cost of read fan-out and
  /// k x repair traffic.
  enum class Redundancy { kReplication, kErasure };
  Redundancy redundancy = Redundancy::kReplication;
  /// Erasure parameters: n total fragments (placed like replicas), k data
  /// fragments needed to read/reconstruct. Used when redundancy==kErasure;
  /// `replicas` is ignored in that mode.
  int ec_total_fragments = 6;
  int ec_data_fragments = 3;

  /// Hybrid placement (the paper's §11 future work): this many of the r
  /// replicas are placed at consistent-hash positions of the key instead
  /// of on the successor chain. Scattered replicas restore parallel
  /// download bandwidth for large files and resist targeted ID-space
  /// attacks, at the cost of extra lookup state. 0 = pure D2 placement.
  int scatter_replicas = 0;

  /// Key scheme of the system under test (D2 or a baseline).
  fs::KeyScheme scheme = fs::KeyScheme::kD2;

  /// Mercury-style active load balancing (on for D2 and for the
  /// "Traditional+Merc" comparison system of §10).
  bool active_load_balance = true;

  /// Use block pointers to defer migration (§6). Off = eager transfer on
  /// every ID change (the ablation in Table 4).
  bool use_pointers = true;

  /// Load-balancing probe interval (§8.1: 10 minutes).
  SimTime probe_interval = minutes(10);

  /// Probe commit quantum (DESIGN.md §12). Each node keeps its own
  /// jittered probe cadence, but evaluations are committed in epochs: one
  /// global "tick" event per quantum processes every probe that came due
  /// during it, in (due time, node) order, against system state at the
  /// tick. This removes the per-probe global events that serialized the
  /// parallel window at scale (node_count / probe_interval global events
  /// per second) while keeping output byte-identical across
  /// --arcs/--arc-workers. 0 restores the legacy one-global-event-per-
  /// probe scheduling (bit-identical to pre-PR-9 engines). When enabled
  /// it must be <= probe_interval / 2 so a committed probe's next due
  /// time always lands in a later epoch.
  SimTime probe_commit_interval = seconds(10);

  /// Pointer stabilization time (§8.1: 1 hour).
  SimTime pointer_stabilization = hours(1);

  /// Block removal delay (§3: 30 seconds, matching view staleness).
  SimTime remove_delay = seconds(30);

  /// Blocks are also removed automatically after this TTL unless
  /// refreshed (§3: removal can fail when nodes are partitioned, so
  /// blocks expire unless their publisher refreshes them). 0 disables
  /// expiry (the default for experiments, which model explicit removal).
  SimTime block_ttl = 0;

  /// Per-node bandwidth cap on migration traffic (§8.1: 750 kbps).
  BitRate migration_bandwidth = kbps(750);

  /// Load-balance trigger threshold t (§6: 4).
  double lb_threshold = 4.0;

  /// How long a node must stay down before its blocks regenerate onto the
  /// next successor.
  SimTime regen_delay = minutes(30);

  /// Keyspace arcs the simulation state is partitioned into (DESIGN.md
  /// §9). Every arc owns a contiguous keyspace slice with its own event
  /// queue and block-map slice; 1 = the classic monolithic layout.
  /// Scatter placement (scatter_replicas > 0) couples arbitrary keys and
  /// is only supported with a single arc.
  int arcs = 1;

  /// Worker threads draining arc lanes in parallel windows. 1 = serial
  /// (byte-identical to the pre-partitioned engine for any `arcs`);
  /// N > 1 executes arc-local events and batched ops concurrently with
  /// the same deterministic output.
  int arc_workers = 1;

  /// Event-queue backend (DESIGN.md §11): the hierarchical timing wheel,
  /// or the binary heap retained as the differential reference. Seeded
  /// outputs are byte-identical either way (`--scheduler heap|wheel`).
  sim::SchedulerKind scheduler = sim::SchedulerKind::kWheel;

  /// Run full-structure invariant audits (ring + block map cross-checks)
  /// after topology changes and sampled mutations, in any build. Paranoid
  /// builds (-DD2_PARANOID=ON) audit unconditionally; this flag lets
  /// `d2sim --paranoid` opt a release binary in at runtime.
  bool paranoid_audits = false;

  std::uint64_t seed = 1;
};

}  // namespace d2::core
