#include "core/balance.h"

#include "common/assert.h"
#include "core/replay.h"
#include "core/system.h"
#include "core/webcache.h"
#include "sim/simulator.h"

namespace d2::core {

double BalanceResult::mean_imbalance() const {
  if (imbalance.empty()) return 0;
  double sum = 0;
  for (const auto& [t, v] : imbalance) sum += v;
  return sum / static_cast<double>(imbalance.size());
}

double BalanceResult::mean_max_over_mean() const {
  if (max_over_mean.empty()) return 0;
  double sum = 0;
  for (double v : max_over_mean) sum += v;
  return sum / static_cast<double>(max_over_mean.size());
}

BalanceExperiment::BalanceExperiment(const BalanceParams& params)
    : params_(params) {}

namespace {
/// Self-rescheduling imbalance sampler. A plain functor (five words of
/// pointers/times) rather than a recursive std::function closure: it
/// fits the event queue's inline capture budget, so the periodic sample
/// chain schedules without heap allocation.
struct ImbalanceSampler {
  sim::Simulator* sim;
  System* system;
  BalanceResult* result;
  SimTime workload_start;
  SimTime interval;

  void operator()() const {
    result->imbalance.emplace_back(sim->now() - workload_start,
                                   system->load_imbalance());
    result->max_over_mean.push_back(system->max_over_mean_load());
    // d2-sched: global — imbalance sample aggregates load across every arc
    sim->schedule_after(interval, *this);
  }
};
}  // namespace

BalanceResult BalanceExperiment::run() {
  sim::Simulator sim(
      sim::ArcConfig{params_.system.arcs, params_.system.arc_workers, 0,
                     params_.system.scheduler});
  sim.bind_metrics(params_.metrics);
  System system(params_.system, sim, params_.metrics);
  system.set_tracer(params_.tracer);
  BalanceResult result;

  const bool harvard = params_.workload == BalanceWorkload::kHarvard;
  const SimTime workload_start = harvard ? params_.warmup : 0;
  const int trace_days =
      harvard ? params_.harvard.days : params_.web.days;

  // Imbalance sampling, relative to workload start.
  const ImbalanceSampler sample{&sim, &system, &result, workload_start,
                                params_.sample_interval};

  // Day accounting: snapshot counters at each day boundary.
  std::vector<Bytes> w_marks, r_marks, l_marks, totals;
  auto day_mark = [&] {
    w_marks.push_back(system.user_write_bytes());
    r_marks.push_back(system.user_removed_bytes());
    l_marks.push_back(system.migration_bytes());
    totals.push_back(system.block_map().total_bytes());
  };

  if (harvard) {
    VolumeSet volumes(params_.system.scheme);
    trace::HarvardGenerator gen(params_.harvard);
    std::vector<fs::StoreOp> ops;
    volumes.insert_initial(gen.initial_files(), 0, ops);
    for (const fs::StoreOp& op : ops) {
      if (op.kind == fs::StoreOp::Kind::kPut) system.put(op.key, op.size);
    }
    system.start_load_balancing();
    sim.run_until(params_.warmup);
    // d2-sched: global — kicks off the whole-system imbalance sampler
    sim.schedule_after(0, sample);

    int next_day = 0;
    std::vector<fs::StoreOp> rec_ops;
    for (const trace::TraceRecord& r : gen.records()) {
      const SimTime abs_t = workload_start + r.time;
      while (next_day <= trace_days && r.time >= days(next_day)) {
        sim.run_until(workload_start + days(next_day));
        day_mark();
        ++next_day;
      }
      sim.run_until(abs_t);
      rec_ops.clear();
      volumes.apply(r, abs_t, rec_ops, /*include_reads=*/false);
      for (const fs::StoreOp& op : rec_ops) {
        if (op.kind == fs::StoreOp::Kind::kPut) {
          system.put(op.key, op.size);
        } else if (op.kind == fs::StoreOp::Kind::kRemove) {
          system.remove(op.key);
        }
      }
    }
    while (next_day <= trace_days) {
      sim.run_until(workload_start + days(next_day));
      day_mark();
      ++next_day;
    }
  } else {
    // Webcache: the DHT starts empty; every record is a client request.
    WebCache cache(system, params_.system.scheme);
    trace::WebGenerator gen(params_.web);
    system.start_load_balancing();
    // d2-sched: global — kicks off the whole-system imbalance sampler
    sim.schedule_after(0, sample);

    int next_day = 0;
    for (const trace::TraceRecord& r : gen.records()) {
      while (next_day <= trace_days && r.time >= days(next_day)) {
        sim.run_until(days(next_day));
        day_mark();
        ++next_day;
      }
      sim.run_until(r.time);
      cache.request(r.path, std::max<Bytes>(r.length, 1));
    }
    while (next_day <= trace_days) {
      sim.run_until(days(next_day));
      day_mark();
      ++next_day;
    }
  }

  // Turn cumulative marks into per-day rows. marks[0] is the workload
  // start (day 0 boundary); day i spans marks[i] .. marks[i+1].
  for (std::size_t i = 0; i + 1 < w_marks.size(); ++i) {
    DayStats d;
    d.written = w_marks[i + 1] - w_marks[i];
    d.removed = r_marks[i + 1] - r_marks[i];
    d.migrated = l_marks[i + 1] - l_marks[i];
    d.total_at_start = totals[i];
    result.days.push_back(d);
  }
  result.lb_moves = system.lb_moves();
  if (params_.metrics != nullptr) {
    sim.export_metrics();
    params_.metrics->gauge("core.balance.load_imbalance")
        .set(system.load_imbalance());
    params_.metrics->gauge("core.balance.max_over_mean_load")
        .set(system.max_over_mean_load());
  }
  return result;
}

}  // namespace d2::core
