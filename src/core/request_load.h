// Request-load experiment (paper §6).
//
// Storage balance says nothing about *request* balance: a few hot files
// can concentrate read traffic on their replica groups regardless of how
// well bytes are spread. The paper's answer is the traditional one —
// retrieval caches at the reading nodes (as in PAST) absorb hot-spot
// traffic, "thereby balancing both storage and request load". This
// experiment replays a Zipf-skewed read workload against a D2 system and
// measures how per-node serve counts spread out as the per-node retrieval
// cache grows.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/system.h"

namespace d2::core {

struct RequestLoadParams {
  SystemConfig system;
  /// Content: `total_files` files of `file_size` bytes in one volume.
  int total_files = 400;
  Bytes file_size = kB(64);
  /// Readers sit on random nodes; each issues `reads_per_reader` whole-file
  /// reads with Zipf(zipf_s) file popularity.
  int readers = 50;
  int reads_per_reader = 200;
  double zipf_s = 1.1;
  /// Per-node retrieval cache capacity (0 disables caching).
  Bytes retrieval_cache_capacity = 0;
  std::uint64_t seed = 3;
  /// Observability sink (not owned; may be null).
  obs::Registry* metrics = nullptr;
};

struct RequestLoadResult {
  /// Normalized stddev of per-node remote-serve counts (request load).
  double serve_imbalance = 0;
  double max_over_mean_serves = 0;
  /// Fraction of block requests absorbed by retrieval caches.
  double cache_hit_rate = 0;
  std::uint64_t block_requests = 0;
  std::uint64_t remote_serves = 0;
};

class RequestLoadExperiment {
 public:
  explicit RequestLoadExperiment(const RequestLoadParams& params);
  RequestLoadResult run();

 private:
  RequestLoadParams params_;
};

}  // namespace d2::core
