#include "core/replay.h"

#include "common/assert.h"
#include "fs/key_encoding.h"

namespace d2::core {

VolumeSet::VolumeSet(fs::KeyScheme scheme, SimTime writeback_ttl)
    : scheme_(scheme), writeback_ttl_(writeback_ttl) {}

fs::Volume& VolumeSet::volume_for(std::string_view path,
                                  std::string* relative) {
  // "home/uN/rest" -> volume "home/uN"; "shared/rest" -> volume "shared";
  // anything else -> volume = first component.
  std::vector<std::string> parts = fs::split_path(path);
  D2_REQUIRE_MSG(!parts.empty(), "empty path");
  std::string vol_name;
  std::size_t skip;
  if (parts[0] == "home" && parts.size() >= 2) {
    vol_name = parts[0] + "/" + parts[1];
    skip = 2;
  } else {
    vol_name = parts[0];
    skip = 1;
  }
  std::string rel;
  for (std::size_t i = skip; i < parts.size(); ++i) {
    if (!rel.empty()) rel.push_back('/');
    rel += parts[i];
  }
  *relative = rel;
  auto it = volumes_.find(vol_name);
  if (it == volumes_.end()) {
    fs::VolumeConfig config;
    config.scheme = scheme_;
    config.writeback_ttl = writeback_ttl_;
    it = volumes_
             .emplace(vol_name,
                      std::make_unique<fs::Volume>(vol_name, config))
             .first;
    it->second->bind_metrics(metrics_);
  }
  return *it->second;
}

void VolumeSet::bind_metrics(obs::Registry* registry) {
  metrics_ = registry;
  for (auto& [name, vol] : volumes_) vol->bind_metrics(registry);
}

void VolumeSet::apply(const trace::TraceRecord& r, SimTime now,
                      std::vector<fs::StoreOp>& out, bool include_reads) {
  std::string rel;
  switch (r.op) {
    case trace::TraceRecord::Op::kRead: {
      fs::Volume& v = volume_for(r.path, &rel);
      if (!include_reads) return;
      if (!v.exists(rel) || v.is_directory(rel)) return;
      v.read(rel, r.offset, r.length, now, out);
      return;
    }
    case trace::TraceRecord::Op::kWrite:
    case trace::TraceRecord::Op::kCreate: {
      fs::Volume& v = volume_for(r.path, &rel);
      if (v.is_directory(rel)) return;
      v.write(rel, r.offset, r.length, now, out);
      return;
    }
    case trace::TraceRecord::Op::kRemove: {
      fs::Volume& v = volume_for(r.path, &rel);
      if (!v.exists(rel)) return;
      v.remove(rel, now, out);
      return;
    }
    case trace::TraceRecord::Op::kRename: {
      fs::Volume& v = volume_for(r.path, &rel);
      std::string rel_to;
      fs::Volume& v_to = volume_for(r.path2, &rel_to);
      // Cross-volume renames degenerate to keeping the file where it is
      // (single-writer volumes cannot adopt another volume's blocks).
      if (&v != &v_to) return;
      if (!v.exists(rel) || v.exists(rel_to)) return;
      v.rename(rel, rel_to, now, out);
      return;
    }
    case trace::TraceRecord::Op::kMkdir: {
      fs::Volume& v = volume_for(r.path, &rel);
      if (rel.empty() || v.exists(rel)) return;
      v.mkdir(rel, now, out);
      return;
    }
  }
}

void VolumeSet::insert_initial(const std::vector<trace::FileSpec>& files,
                               SimTime now, std::vector<fs::StoreOp>& out) {
  std::string rel;
  for (const trace::FileSpec& f : files) {
    D2_REQUIRE_MSG(f.size >= 0, "initial file with negative size");
    fs::Volume& v = volume_for(f.path, &rel);
    v.write(rel, 0, f.size, now, out);
  }
  flush_all(now, out);
}

void VolumeSet::flush_all(SimTime now, std::vector<fs::StoreOp>& out) {
  for (auto& [name, vol] : volumes_) vol->flush(now, out);
}

}  // namespace d2::core
