// Squirrel-style cooperative web cache over the DHT (paper §10).
//
// Clients request URLs; a miss fetches from the origin and inserts the
// object into the DHT so the next client hits. With a traditional DHT the
// object key is a hash of the URL; with D2 it is the URL encoded with the
// Fig 4 scheme after reversing the domain tuples, so objects of one site
// occupy a contiguous key range.
//
// Churn comes from two sources, as in the paper's §10 footnote: content
// not refreshed within the eviction TTL (one day) is removed, and cached
// content "replaced with a newer version fetched by a client" is
// re-written — dynamic pages change every few minutes to hours, so hits
// on them still produce DHT writes. Together these make daily writes
// rival or exceed the resident data (Table 3 row 2) and stress the load
// balancer (Fig 17).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/key.h"
#include "core/system.h"
#include "fs/volume.h"

namespace d2::core {

struct WebCacheConfig {
  /// Cached content idle longer than this is evicted (paper: one day).
  SimTime eviction_ttl = days(1);
  /// Fraction of objects that are dynamic (periodically replaced with a
  /// newer version). Deterministic per URL. 0 disables replacement.
  double dynamic_fraction = 0.25;
  /// Dynamic objects change with intervals in [min, max] (per-URL,
  /// deterministic).
  SimTime min_change_interval = minutes(15);
  SimTime max_change_interval = hours(4);
};

class WebCache {
 public:
  WebCache(System& system, fs::KeyScheme scheme, WebCacheConfig config = {});

  /// Processes a client request for `url` at the current simulated time.
  /// Returns true on a *fresh* cache hit; a miss — or a hit on a stale
  /// version of a dynamic object — (re)inserts the object.
  bool request(std::string_view url, Bytes size);

  /// Key under which `url` is cached (scheme-dependent).
  Key key_for(std::string_view url) const;

  /// Change interval for `url` (kSimTimeNever for static objects).
  SimTime change_interval(std::string_view url) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t version_replacements() const { return version_replacements_; }
  std::size_t resident_objects() const { return entries_.size(); }

 private:
  struct Entry {
    SimTime last_access;
    std::int64_t version_epoch;
  };

  void schedule_sweep();
  void sweep();

  System& system_;
  fs::KeyScheme scheme_;
  WebCacheConfig config_;
  fs::VolumeId web_volume_id_;
  /// Keyed lookups on the request path; the only iteration (sweep) sorts
  /// its victims before acting, so hash order never reaches the simulator.
  std::unordered_map<Key, Entry, KeyHash> entries_;  // d2-lint: allow(unordered-container)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t version_replacements_ = 0;
};

}  // namespace d2::core
