// The D2 system simulator: a DHT of N nodes with replicated block
// storage, Mercury-style active load balancing with block pointers, and
// (optionally) a node-failure process with bandwidth-limited replica
// regeneration.
//
// This is the paper's §8.1 "detailed event-driven simulator": it captures
// every facet of D2 except DHT routing (which the performance experiments
// layer on separately via dht::Router), models the 750 kbps per-node cap
// on migration traffic, and maintains the invariant that each block is
// stored on the r successors of its key — re-established after every
// load-balancing ID change via replica adjustment, with new members
// holding block pointers until the pointer stabilization time elapses.
//
// The same class simulates the traditional baselines: consistent hashing
// is just "locality-free keys" (provided by the fs layer) plus load
// balancing disabled.
//
// ## Arc sharding (DESIGN.md §9)
//
// With config.arcs > 1 every piece of keyed state — the block map, TTL
// deadlines, extended-set membership — is sharded by the key's arc, and
// the key-local events (TTL expiry, delayed remove, fetch timers) are
// scheduled onto the key's arc queue. An arc lane (parallel window or
// batched op phase) may therefore run put/remove/refresh/get/try_fetch
// for its own keys touching only its shard. Cross-cutting state stays
// coordinator-only, reached from lanes through two deterministic relays
// (DESIGN.md §12's event-class taxonomy):
//   - migration links: a fetch admitted by a lane stages a bandwidth
//     reservation; the simulator's commit hook resolves all staged
//     reservations in (time, arc, seq) order on the coordinator, so the
//     shared FIFO links see one canonical enqueue order in every
//     arcs/workers configuration;
//   - probes: per-node jittered due times live in a coordinator-side
//     commit calendar; one global tick per probe_commit_interval
//     evaluates every probe due in the last epoch in (due, node) order
//     against live state (probes read ring/rng/primary counts, so they
//     are genuinely global — the tick just batches them).
// Failure transitions remain individually global: they mutate node
// up/down state every arc reads.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/key.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "core/config.h"
#include "dht/load_balance.h"
#include "dht/ring.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/bandwidth.h"
#include "sim/failure.h"
#include "sim/simulator.h"
#include "store/block_map.h"

namespace d2::core {

class System {
 public:
  /// When `metrics` is null the system owns a private obs::Registry; in
  /// either case all traffic accounting lives in registry instruments
  /// (`system.*`, `dht.load_balancer.*`, `sim.migration_link.*`) and the
  /// legacy accessors below are shims over them.
  System(const SystemConfig& config, sim::Simulator& sim,
         obs::Registry* metrics = nullptr);

  /// Unregisters the commit hook (the system registers itself as the
  /// simulator's single commit-hook client for fetch reservations).
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const SystemConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }
  const dht::Ring& ring() const { return ring_; }
  store::BlockMap& block_map() { return map_; }
  const store::BlockMap& block_map() const { return map_; }

  // ----- store interface (driven by fs::StoreOps) -----

  /// Writes a block at the current simulated time. If the key exists this
  /// is an in-place update (the mutable root block); otherwise the block
  /// is placed on the r successors of its key. Down members receive their
  /// copy later (recovery fetch).
  void put(const Key& k, Bytes size) { put_at(k, size, sim_.now()); }

  /// Schedules removal after the configured delay (§3). Unknown keys are
  /// ignored (the block may have been removed already).
  void remove(const Key& k) { remove_at(k, sim_.now()); }

  /// Extends a block's TTL (no-op when block_ttl is 0 or the key is
  /// unknown). put() refreshes implicitly.
  void refresh(const Key& k) { refresh_at(k, sim_.now()); }

  /// Explicit-time variants, for batched op application (core/op_batch.h):
  /// a lane applying a backlog of replay ops passes each op's record time
  /// `t` (>= now) so TTL deadlines and removal delays are anchored exactly
  /// where the serial, one-run_until-per-op engine would put them.
  void put_at(const Key& k, Bytes size, SimTime t);
  void remove_at(const Key& k, SimTime t);
  void refresh_at(const Key& k, SimTime t);

  bool has(const Key& k) const { return map_.contains(k); }

  /// True iff the block can be served right now: some responsible replica
  /// is up with data, or a responsible node is up and can redirect to an
  /// up holder (block pointer indirection).
  bool block_available(const Key& k) const;

  /// The node that would serve a get for `k` right now (first up replica
  /// holding data), or nullopt if unavailable/unknown.
  std::optional<int> serving_node(const Key& k) const;

  /// Current responsible replica nodes (successor order).
  std::vector<int> replica_nodes(const Key& k) const;

  int owner_of(const Key& k) const { return ring_.owner(k); }

  // ----- load balancing -----

  /// Starts the per-node periodic probe process (call once, before
  /// running the simulator).
  void start_load_balancing();

  /// Runs one probe by `prober` against a random other node immediately.
  /// Returns true if it triggered a move. Exposed for tests.
  bool probe_once(int prober);

  // ----- failures -----

  /// Attaches a failure trace whose t=0 maps to simulated time `offset`.
  /// Schedules all up/down transitions. Call before running.
  void attach_failure_trace(const sim::FailureTrace* trace, SimTime offset);

  bool node_up(int node) const;

  // ----- metrics -----

  /// The registry this system reports into (its own unless one was
  /// injected).
  obs::Registry& metrics() { return *metrics_; }
  const obs::Registry& metrics() const { return *metrics_; }

  /// Attaches an event tracer (lb_move, replica_fetch, node_down/up,
  /// block_expired). Pass nullptr to detach. Tracing records from TTL
  /// events, which arc lanes execute, so it requires a serial simulator.
  void set_tracer(obs::Tracer* tracer) {
    D2_REQUIRE_MSG(tracer == nullptr || sim_.workers() == 1,
                   "event tracing requires arc_workers == 1");
    tracer_ = tracer;
  }

  // Legacy accessors — per-instance totals. The registry carries the same
  // quantities under `system.*`, but a registry shared across trials
  // aggregates every bound System; these members answer "what did *this*
  // system do", which is what per-trial experiment results need to stay
  // identical between serial and parallel runs.
  Bytes user_write_bytes() const { return sum_shards(user_write_bytes_sh_); }
  Bytes user_removed_bytes() const {
    return sum_shards(user_removed_bytes_sh_);
  }
  Bytes migration_bytes() const { return sum_shards(migration_bytes_sh_); }
  std::int64_t lb_moves() const { return lb_moves_; }
  void reset_traffic_counters();

  /// Normalized standard deviation of per-node physical storage (§10's
  /// imbalance metric), and max/mean load.
  double load_imbalance() const;
  double max_over_mean_load() const;

  /// Full cross-layer audit; throws InvariantError naming the violated
  /// invariant. Audits the ring and block map individually, then the
  /// system-level invariant tying them together: the ring holds exactly
  /// node_count members and every block's primary is the ring owner of
  /// its key (§3's successor placement, re-established by readjustment
  /// after every ID change). With arcs > 1 it also audits the partition
  /// bijection: every TTL deadline and extended-set entry is filed under
  /// the arc shard that owns its key (the block map audits the same for
  /// block storage). Wired into execute_move / on_node_down /
  /// on_node_up and sampled put/remove paths when built with D2_PARANOID
  /// or running with config.paranoid_audits; callable from tests always.
  void check_invariants() const;

 private:
  struct NodeState {
    sim::BandwidthLink migration_link;
    bool up = true;
    explicit NodeState(BitRate rate) : migration_link(rate) {}
  };

  int effective_replicas() const;
  bool erasure() const;
  /// Up nodes currently holding a data copy/fragment of `b`.
  int up_data_holders(const store::BlockState& b) const;
  /// Fills `out` (cleared first) with the successor-order replica set for
  /// `k`. Out-param so hot callers can reuse a scratch buffer.
  void target_replica_set(const Key& k, std::vector<int>& out) const;
  /// Ring position of the i-th scattered replica of key `k`.
  static Key scatter_position(const Key& k, int i);
  void register_scatter(const Key& k);
  void forget_scatter(const Key& k);
  void schedule_probe(int node);
  /// Files node's next probe, due jitter past `from`, in the commit
  /// calendar (probe_commit_interval > 0 paths).
  void schedule_probe_due(int node, SimTime from);
  /// Schedules the global tick for the first non-empty calendar epoch.
  void schedule_probe_tick();
  /// Processes every probe due in `epoch`, in (due, node) order, then
  /// chains the next tick.
  void probe_commit_tick(std::int64_t epoch);
  std::int64_t probe_epoch(SimTime due) const {
    return (due + config_.probe_commit_interval - 1) /
           config_.probe_commit_interval;
  }
  void execute_move(const dht::MoveDecision& decision);
  /// Recomputes replica sets for all blocks in the cover arc around
  /// `around_node` (its (r+2) predecessors through itself) and schedules
  /// fetches for members lacking data. `fetch_delay` applies to newly
  /// created pointer members.
  void readjust_arc(int around_node, SimTime fetch_delay);
  void reassign_block(const Key& k, SimTime fetch_delay);
  void note_set_shape(const Key& k, std::size_t set_size);
  void schedule_fetch(const Key& k, int node, SimTime delay);
  void try_fetch(const Key& k, int node);
  /// Resolves every staged bandwidth reservation in (time, arc, seq)
  /// order: enqueue on the node's migration link, then schedule the
  /// fetch-completion event on the key's arc. Runs at the simulator's
  /// commit points (coordinator only) — see the class comment.
  void resolve_fetch_reservations();
  /// Fetch-completion arc event: promotes the member to a data holder if
  /// the fetch is still wanted.
  void finish_fetch(const Key& k, int node);
  void on_node_down(int node);
  void on_node_up(int node);
  std::optional<int> fetch_source(const store::BlockState& b) const;

  /// Runs check_invariants() when auditing is on (D2_PARANOID build or
  /// config.paranoid_audits). Topology changes audit unconditionally;
  /// `sampled` callers (put/remove — far more frequent) are paced by
  /// audit_gate_ to keep the amortized cost linear. From an arc lane the
  /// global audit would race with the other lanes, so only the lane's own
  /// block-map slice is audited (paced by a per-arc gate).
  void maybe_audit(bool sampled);

  /// Shard slot for lane-striped scratch and totals: the lane's own arc
  /// inside an arc lane, the extra coordinator slot (index arcs) outside.
  std::size_t shard_slot() const {
    return sim_.in_lane() ? static_cast<std::size_t>(sim_.lane_arc())
                          : static_cast<std::size_t>(config_.arcs);
  }
  // Reference into expiry_, whose declaration documents why hash order
  // cannot leak. d2-lint: allow(unordered-container)
  std::unordered_map<Key, SimTime, KeyHash>& expiry_shard(const Key& k) {
    return expiry_[static_cast<std::size_t>(map_.arc_of(k))];
  }
  std::set<Key>& extended_shard(const Key& k) {
    return extended_[static_cast<std::size_t>(map_.arc_of(k))];
  }
  static Bytes sum_shards(const std::vector<Bytes>& shards) {
    Bytes total = 0;
    for (Bytes b : shards) total += b;
    return total;
  }

  // Per-instance accounting plus the shared-registry mirror. The shards
  // are lane-disjoint plain integers; the registry counters are atomic.
  void add_user_write_bytes(Bytes n) {
    user_write_bytes_sh_[shard_slot()] += n;
    user_write_bytes_c_->add(n);
  }
  void add_user_removed_bytes(Bytes n) {
    user_removed_bytes_sh_[shard_slot()] += n;
    user_removed_bytes_c_->add(n);
  }

  SystemConfig config_;
  sim::Simulator& sim_;
  std::unique_ptr<obs::Registry> owned_metrics_;  // set iff none injected
  obs::Registry* metrics_;
  obs::Tracer* tracer_ = nullptr;
  Rng rng_;
  dht::Ring ring_;
  store::BlockMap map_;
  /// Block TTL deadlines, one shard per arc (the owning lane's private
  /// state). Keyed lookup/erase only outside audits, so the hash order
  /// cannot leak into event order.
  std::vector<std::unordered_map<Key, SimTime, KeyHash>> expiry_ D2_SHARDED_BY_ARC(arc);  // d2-lint: allow(unordered-container)
  /// scatter position -> block key, for hybrid placement readjustment.
  /// Couples arbitrary keys, hence scatter requires config.arcs == 1.
  std::multimap<Key, Key> scatter_index_;
  /// Blocks whose replica set is currently extended past the canonical
  /// size (members down / regeneration), one shard per arc. Shards
  /// concatenated in arc order enumerate keys ascending, exactly like
  /// the single pre-sharding set. Re-canonicalized on recoveries,
  /// regardless of how far load balancing has shifted ring ranks.
  std::vector<std::set<Key>> extended_ D2_SHARDED_BY_ARC(arc);
  dht::LoadBalancer balancer_;
  std::vector<NodeState> nodes_;
  /// Scratch for target_replica_set results on the put/reassign hot path
  /// (avoids a heap allocation per block write / replica adjustment).
  /// One buffer per shard slot so concurrent lanes don't share it.
  mutable std::vector<std::vector<int>> replica_set_scratch_ D2_SHARDED_BY_ARC(slot);
  ParanoidGate audit_gate_;  // paces sampled full audits
  // Pace per-slice lane audits.
  std::vector<ParanoidGate> lane_audit_gates_ D2_SHARDED_BY_ARC(arc);
  const sim::FailureTrace* failure_trace_ = nullptr;

  // Per-instance traffic totals (the accessors above), lane-sharded like
  // the scratch (slot arcs = coordinator) ...
  std::vector<Bytes> user_write_bytes_sh_ D2_SHARDED_BY_ARC(slot);
  std::vector<Bytes> user_removed_bytes_sh_ D2_SHARDED_BY_ARC(slot);
  std::vector<Bytes> migration_bytes_sh_ D2_SHARDED_BY_ARC(slot);
  std::int64_t lb_moves_ = 0;

  /// A fetch admitted inside an arc lane cannot touch its node's shared
  /// FIFO migration link directly, so it stages a reservation in its
  /// arc's slot (single-writer; the coordinator slot covers serial
  /// execution too — staging is keyed by the *key's* arc in both modes so
  /// (t, arc, seq) is mode-independent). resolve_fetch_reservations()
  /// drains them at commit points.
  struct FetchReservation {
    SimTime t;  // lane event time of the admitting try_fetch
    Key k;
    int node;
    Bytes bytes;
  };
  std::vector<std::vector<FetchReservation>> fetch_reservations_ D2_SHARDED_BY_ARC(arc);
  struct FetchRef {
    SimTime t;
    int arc;
    std::uint32_t seq;
  };
  std::vector<FetchRef> fetch_refs_;  // scratch, reused across commits

  /// Probe commit calendar: epoch -> (due, node) for every probe due in
  /// ((epoch-1)*Q, epoch*Q]. Ordered map so the tick chain always hops
  /// to the first non-empty epoch deterministically.
  std::map<std::int64_t, std::vector<std::pair<SimTime, int>>> probe_buckets_;
  // ... and the registry instruments that mirror them system-wide.
  // Stable instrument addresses, bound once in the constructor.
  obs::Counter* user_write_bytes_c_;
  obs::Counter* user_removed_bytes_c_;
  obs::Counter* migration_bytes_c_;
  obs::Counter* lb_moves_c_;
  obs::Counter* replica_fetches_c_;
  obs::Counter* pointer_promotions_c_;
};

}  // namespace d2::core
