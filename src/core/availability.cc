#include "core/availability.h"

#include <set>

#include "common/assert.h"
#include "core/replay.h"
#include "sim/simulator.h"

namespace d2::core {

AvailabilityExperiment::AvailabilityExperiment(const AvailabilityParams& params)
    : params_(params) {
  D2_REQUIRE(params.failure.node_count >= params.system.node_count);
}

AvailabilityResult AvailabilityExperiment::run() {
  sim::Simulator sim;
  sim.bind_metrics(params_.metrics);
  System system(params_.system, sim, params_.metrics);
  system.set_tracer(params_.tracer);
  VolumeSet volumes(params_.system.scheme);
  volumes.bind_metrics(params_.metrics);
  trace::HarvardGenerator gen(params_.workload);

  auto apply_ops = [&system](const std::vector<fs::StoreOp>& ops) {
    for (const fs::StoreOp& op : ops) {
      switch (op.kind) {
        case fs::StoreOp::Kind::kPut:
          system.put(op.key, op.size);
          break;
        case fs::StoreOp::Kind::kRemove:
          system.remove(op.key);
          break;
        case fs::StoreOp::Kind::kGet:
          break;  // initialization reads nothing
      }
    }
  };

  // Initial population + load-balance warm-up (§8.1).
  std::vector<fs::StoreOp> ops;
  volumes.insert_initial(gen.initial_files(), 0, ops);
  apply_ops(ops);
  system.start_load_balancing();
  sim.run_until(params_.warmup);

  // Failure process starts with the workload.
  sim::FailureTrace failure_trace = sim::FailureTrace::all_up(
      params_.failure.node_count, params_.failure.duration);
  if (params_.enable_failures) {
    Rng frng(params_.failure_seed);
    failure_trace = sim::FailureTrace::generate(params_.failure, frng);
  }
  system.attach_failure_trace(&failure_trace, params_.warmup);

  // Task segmentation and record -> task mapping.
  const std::vector<trace::TraceRecord>& records = gen.records();
  std::vector<trace::Task> tasks =
      trace::segment_tasks(records, params_.inter, params_.task_cap);
  std::vector<std::int32_t> record_task(records.size(), -1);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t i : tasks[t].record_indices) {
      record_task[i] = static_cast<std::int32_t>(t);
    }
  }

  struct TaskAgg {
    bool failed = false;
    std::uint64_t blocks = 0;
    std::set<std::string> files;
    std::set<int> nodes;
  };
  std::vector<TaskAgg> agg(tasks.size());

  AvailabilityResult result;

  // Replay.
  std::vector<fs::StoreOp> rec_ops;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::TraceRecord& r = records[i];
    const SimTime abs_t = params_.warmup + r.time;
    sim.run_until(abs_t);
    rec_ops.clear();
    volumes.apply(r, abs_t, rec_ops);
    const std::int32_t ti = record_task[i];
    for (const fs::StoreOp& op : rec_ops) {
      switch (op.kind) {
        case fs::StoreOp::Kind::kPut:
          system.put(op.key, op.size);
          break;
        case fs::StoreOp::Kind::kRemove:
          system.remove(op.key);
          break;
        case fs::StoreOp::Kind::kGet: {
          if (ti < 0) break;
          TaskAgg& a = agg[static_cast<std::size_t>(ti)];
          ++a.blocks;
          if (!system.has(op.key)) {
            ++result.unknown_key_gets;
            break;
          }
          if (!system.block_available(op.key)) {
            a.failed = true;
          } else if (auto node = system.serving_node(op.key)) {
            a.nodes.insert(*node);
          }
          break;
        }
      }
    }
    if (ti >= 0) agg[static_cast<std::size_t>(ti)].files.insert(r.path);
  }

  // Aggregate.
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> per_user;  // total, failed
  double blocks_sum = 0, files_sum = 0, nodes_sum = 0;
  std::uint64_t counted = 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const TaskAgg& a = agg[t];
    ++result.tasks;
    auto& [total, failed] = per_user[tasks[t].user];
    ++total;
    if (a.failed) {
      ++result.failed_tasks;
      ++failed;
    }
    if (a.blocks > 0) {
      ++counted;
      blocks_sum += static_cast<double>(a.blocks);
      files_sum += static_cast<double>(a.files.size());
      nodes_sum += static_cast<double>(a.nodes.size());
    }
  }
  if (counted > 0) {
    result.mean_blocks_per_task = blocks_sum / static_cast<double>(counted);
    result.mean_files_per_task = files_sum / static_cast<double>(counted);
    result.mean_nodes_per_task = nodes_sum / static_cast<double>(counted);
  }
  for (const auto& [user, counts] : per_user) {
    result.per_user_unavailability[user] =
        counts.first == 0 ? 0.0
                          : static_cast<double>(counts.second) /
                                static_cast<double>(counts.first);
  }
  result.migration_bytes = system.migration_bytes();
  result.lb_moves = system.lb_moves();
  if (params_.metrics != nullptr) {
    sim.export_metrics();
    params_.metrics->gauge("core.availability.task_unavailability")
        .set(result.task_unavailability());
  }
  return result;
}

}  // namespace d2::core
