#include "core/availability.h"

#include <set>
#include <string_view>

#include "common/assert.h"
#include "core/op_batch.h"
#include "core/replay.h"
#include "sim/simulator.h"

namespace d2::core {

AvailabilityExperiment::AvailabilityExperiment(const AvailabilityParams& params)
    : params_(params) {
  D2_REQUIRE(params.failure.node_count >= params.system.node_count);
}

AvailabilityResult AvailabilityExperiment::run() {
  sim::Simulator sim(
      sim::ArcConfig{params_.system.arcs, params_.system.arc_workers, 0,
                     params_.system.scheduler});
  sim.bind_metrics(params_.metrics);
  System system(params_.system, sim, params_.metrics);
  system.set_tracer(params_.tracer);
  VolumeSet volumes(params_.system.scheme);
  volumes.bind_metrics(params_.metrics);
  trace::HarvardGenerator gen(params_.workload);
  OpBatchRunner batch(system, sim);

  // Initial population + load-balance warm-up (§8.1). The initial puts
  // are independent key-local writes at t=0 — one batched arc phase.
  std::vector<fs::StoreOp> ops;
  volumes.insert_initial(gen.initial_files(), 0, ops);
  for (const fs::StoreOp& op : ops) batch.add(op, 0);
  batch.flush();
  system.start_load_balancing();
  sim.run_until(params_.warmup);

  // Failure process starts with the workload.
  sim::FailureTrace failure_trace = sim::FailureTrace::all_up(
      params_.failure.node_count, params_.failure.duration);
  if (params_.enable_failures) {
    Rng frng(params_.failure_seed);
    failure_trace = sim::FailureTrace::generate(params_.failure, frng);
  }
  system.attach_failure_trace(&failure_trace, params_.warmup);

  // Task segmentation and record -> task mapping.
  const std::vector<trace::TraceRecord>& records = gen.records();
  std::vector<trace::Task> tasks =
      trace::segment_tasks(records, params_.inter, params_.task_cap);
  std::vector<std::int32_t> record_task(records.size(), -1);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t i : tasks[t].record_indices) {
      record_task[i] = static_cast<std::int32_t>(t);
    }
  }

  struct TaskAgg {
    bool failed = false;
    std::uint64_t blocks = 0;
    // Views into the generator's arena (gen outlives the aggregation).
    std::set<std::string_view> files;
    std::set<int> nodes;
  };
  std::vector<TaskAgg> agg(tasks.size());

  AvailabilityResult result;

  // Replay, batched (core/op_batch.h): records stage their ops until a
  // *global* event fence forces a drain, then one op window applies the
  // backlog in-lane with each lane interleaving its arc's timer events
  // by time (lane_advance). Get outcomes fold into the same task
  // aggregates the serial per-record loop produced (the aggregation is
  // order-insensitive across arcs).
  auto drain = [&] {
    batch.flush();
    for (const OpBatchRunner::GetOutcome& g : batch.outcomes()) {
      TaskAgg& a = agg[static_cast<std::size_t>(g.tag)];
      ++a.blocks;
      if (!g.known) {
        ++result.unknown_key_gets;
        continue;
      }
      if (!g.available) {
        a.failed = true;
      } else if (g.serving >= 0) {
        a.nodes.insert(g.serving);
      }
    }
  };
  std::vector<fs::StoreOp> rec_ops;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::TraceRecord& r = records[i];
    const SimTime abs_t = params_.warmup + r.time;
    if (batch.should_flush_before(abs_t)) drain();
    // Only with an empty backlog may the coordinator advance the clock:
    // a staged batch means no global event is due through abs_t (that is
    // the fence), and its arc events merge into the op window instead.
    if (batch.empty() && sim.next_event_time() <= abs_t) sim.run_until(abs_t);
    rec_ops.clear();
    volumes.apply(r, abs_t, rec_ops);
    const std::int32_t ti = record_task[i];
    for (const fs::StoreOp& op : rec_ops) batch.add(op, abs_t, ti);
    if (ti >= 0) agg[static_cast<std::size_t>(ti)].files.insert(r.path);
  }
  drain();
  // Catch up timer events through the last record, as the per-record
  // serial loop did (lanes leave events past their final op pending).
  if (!records.empty()) sim.run_until(params_.warmup + records.back().time);

  // Aggregate.
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> per_user;  // total, failed
  double blocks_sum = 0, files_sum = 0, nodes_sum = 0;
  std::uint64_t counted = 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const TaskAgg& a = agg[t];
    ++result.tasks;
    auto& [total, failed] = per_user[tasks[t].user];
    ++total;
    if (a.failed) {
      ++result.failed_tasks;
      ++failed;
    }
    if (a.blocks > 0) {
      ++counted;
      blocks_sum += static_cast<double>(a.blocks);
      files_sum += static_cast<double>(a.files.size());
      nodes_sum += static_cast<double>(a.nodes.size());
    }
  }
  if (counted > 0) {
    result.mean_blocks_per_task = blocks_sum / static_cast<double>(counted);
    result.mean_files_per_task = files_sum / static_cast<double>(counted);
    result.mean_nodes_per_task = nodes_sum / static_cast<double>(counted);
  }
  for (const auto& [user, counts] : per_user) {
    result.per_user_unavailability[user] =
        counts.first == 0 ? 0.0
                          : static_cast<double>(counts.second) /
                                static_cast<double>(counts.first);
  }
  result.migration_bytes = system.migration_bytes();
  result.lb_moves = system.lb_moves();
  if (params_.metrics != nullptr) {
    sim.export_metrics();
    params_.metrics->gauge("core.availability.task_unavailability")
        .set(result.task_unavailability());
  }
  return result;
}

}  // namespace d2::core
