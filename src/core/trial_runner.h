// Parallel experiment engine: fans independent trials across a thread
// pool with a determinism guarantee.
//
// The paper's evaluation replays many independent trials — multi-seed
// availability/churn sweeps (Fig 7-8, Table 3), per-scheme performance
// comparisons (Fig 10-15), per-scheme balance runs (Fig 16-17). Each
// trial is a self-contained discrete-event simulation (its own Simulator,
// System, workload generator), so trials parallelize perfectly; only the
// shared obs::Registry they report into needs to be thread-safe (it is —
// see obs/metrics.h).
//
// Determinism guarantee: a trial's behaviour depends only on its index
// (its parameters and seed are derived from the index before it runs, and
// it shares no mutable state with other trials), and results land in a
// vector slot owned by that index. `jobs=1` and `jobs=N` therefore
// produce identical per-trial results, and callers that print or merge
// aggregates in trial order get byte-identical output. Shared-registry
// counters and histogram reductions are also order-independent; only
// gauges (last-set-wins) may differ under concurrency.
//
// Per-trial seeds come from derive_trial_seed(base, trial), a SplitMix64
// mix of the experiment's base seed with the trial index — avoiding the
// correlated streams that `base + trial` would feed adjacent xoshiro
// states (see DESIGN.md, "Parallel trial runner").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace d2::core {

/// Statistically independent seed for trial `trial` of an experiment
/// seeded with `base`. Pure function: the same (base, trial) always maps
/// to the same seed, on every thread count.
std::uint64_t derive_trial_seed(std::uint64_t base, std::uint64_t trial);

class TrialRunner {
 public:
  /// `jobs` <= 0 selects the hardware concurrency (at least 1).
  explicit TrialRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Runs fn(trial) for every trial in [0, count), at most jobs() at a
  /// time, and blocks until all complete. With jobs() == 1 the trials run
  /// inline on the calling thread. If any fn throws, the exception from
  /// the lowest-indexed failing trial is rethrown after every started
  /// trial has finished.
  void run(int count, const std::function<void(int trial)>& fn) const;

  /// Typed fan-out: returns {fn(0), fn(1), ..., fn(count-1)} in trial
  /// order regardless of completion order. R must be default- and
  /// move-constructible.
  template <typename R>
  std::vector<R> map(int count, const std::function<R(int trial)>& fn) const {
    std::vector<R> out(static_cast<std::size_t>(count < 0 ? 0 : count));
    run(count, [&](int trial) {
      out[static_cast<std::size_t>(trial)] = fn(trial);
    });
    return out;
  }

 private:
  int jobs_;
};

}  // namespace d2::core
