// Batched workload-op application over the arc-partitioned System.
//
// The serial replay loop alternates run_until(record_time) with put/
// remove/get calls — one synchronization point per record. With the
// system sharded into arcs (DESIGN.md §9) the ops themselves are
// key-local, so a backlog of them can be applied as one op *window*
// (sim::Simulator::run_op_window): every op is routed to the arc owning
// its key and executed in-lane, in arrival order, using the
// explicit-time entry points (put_at et al.) so TTL deadlines and
// removal delays are anchored exactly where the one-run_until-per-op
// engine would put them.
//
// Arc-local timer events (TTL expiry, delayed removes, fetch timers) do
// NOT fence a batch: each lane interleaves its own pending events with
// its ops by time via lane_advance(op.t) — an event due at or before an
// op runs first, exactly the serial run_until-then-apply order. Events
// an op schedules inside the window (a remove's +30s timer, say) land
// on the lane's own queue and are picked up by a later advance the same
// way. Only two things force a drain, checked by should_flush_before(t):
//   1. global-event fence — a pending *global* event (failure
//      transition, probe commit tick, regeneration check) at or before
//      t mutates cross-arc state every lane reads, so the backlog must
//      drain (flush, then run_until(t)) first;
//   2. batch-size cap — a deterministic op-count bound so staging
//      memory stays flat on million-user replays.
// Ops for different keys in the same batch are state-disjoint unless
// they share an arc, and same-arc ops apply in arrival order — so the
// interleaving the serial loop would have produced is preserved
// wherever it is observable.
//
// Gets are evaluated in-lane at their position in arrival order; their
// outcomes are recorded into slots and consumed by the caller after
// flush() (aggregation over outcomes is order-insensitive, so per-arc
// evaluation order does not show in results).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.h"
#include "common/thread_annotations.h"
#include "core/system.h"
#include "fs/writeback_cache.h"
#include "sim/simulator.h"

namespace d2::core {

class OpBatchRunner {
 public:
  /// Result of one staged get, tagged with the caller's `tag` (e.g. the
  /// task index a record belongs to).
  struct GetOutcome {
    std::int32_t tag = -1;
    bool known = false;      // system.has(key)
    bool available = false;  // system.block_available(key)
    int serving = -1;        // serving node, -1 = none
  };

  OpBatchRunner(System& system, sim::Simulator& sim)
      : system_(system),
        sim_(sim),
        per_arc_(static_cast<std::size_t>(system.config().arcs)) {}

  bool empty() const { return items_.empty(); }

  /// True when staging an op at time `t` requires draining the backlog
  /// first (see the flush rules in the file comment).
  bool should_flush_before(SimTime t) const {
    if (items_.empty()) return false;
    if (sim_.next_global_event_time() <= t) return true;
    return items_.size() >= kMaxBatchOps;
  }

  /// Stages one op at absolute time `t` (>= every earlier staged time).
  /// Gets with a negative tag are untracked reads and are dropped, like
  /// the serial loop drops them.
  void add(const fs::StoreOp& op, SimTime t, std::int32_t tag = -1) {
    if (op.kind == fs::StoreOp::Kind::kGet && tag < 0) return;
    D2_REQUIRE_MSG(items_.empty() || t >= last_time_,
                   "batched ops must be staged in time order");
    last_time_ = t;
    std::size_t slot = 0;
    if (op.kind == fs::StoreOp::Kind::kGet) slot = get_count_++;
    const int arc = system_.block_map().arc_of(op.key);
    per_arc_[static_cast<std::size_t>(arc)].push_back(items_.size());
    items_.push_back(Item{op.key, op.size, t, tag, slot, op.kind});
  }

  /// Applies the backlog as one op window and clears it. Get outcomes
  /// (in staging order) are in outcomes() until the next flush.
  void flush() {
    outcomes_.clear();
    if (items_.empty()) return;
    outcomes_.resize(get_count_);
    // The window reaches to the next global event (the fence guarantees
    // it lies past every staged op); with no global pending the window
    // just needs to clear the last op.
    SimTime window_end = sim_.next_global_event_time();
    if (window_end == std::numeric_limits<SimTime>::max()) {
      window_end = last_time_ + 1;
    }
    sim_.run_op_window(window_end, [this](int arc) {
      for (std::size_t idx : per_arc_[static_cast<std::size_t>(arc)]) {
        const Item& it = items_[idx];
        // Run this arc's timer events due up to the op, then the op —
        // the serial run_until-then-apply order, lane-locally.
        sim_.lane_advance(it.t);
        apply(it);
      }
    });
    for (std::vector<std::size_t>& lane : per_arc_) lane.clear();
    items_.clear();
    get_count_ = 0;
  }

  const std::vector<GetOutcome>& outcomes() const { return outcomes_; }

 private:
  /// Deterministic staging bound: ~a few MB of Items at the million-user
  /// scale, far wider than the global-event fence ever allows in
  /// failure-bearing runs.
  static constexpr std::size_t kMaxBatchOps = 1 << 16;

  struct Item {
    Key key;
    Bytes size = 0;
    SimTime t = 0;
    std::int32_t tag = -1;
    std::size_t slot = 0;  // outcome index (gets only)
    fs::StoreOp::Kind kind = fs::StoreOp::Kind::kPut;
  };

  void apply(const Item& it) {
    switch (it.kind) {
      case fs::StoreOp::Kind::kPut:
        system_.put_at(it.key, it.size, it.t);
        return;
      case fs::StoreOp::Kind::kRemove:
        system_.remove_at(it.key, it.t);
        return;
      case fs::StoreOp::Kind::kGet: {
        GetOutcome& o = outcomes_[it.slot];
        o.tag = it.tag;
        o.known = system_.has(it.key);
        if (o.known) {
          o.available = system_.block_available(it.key);
          if (o.available) {
            if (auto node = system_.serving_node(it.key)) o.serving = *node;
          }
        }
        return;
      }
    }
  }

  System& system_;
  sim::Simulator& sim_;
  SimTime last_time_ = 0;
  std::size_t get_count_ = 0;
  std::vector<Item> items_;  // staging order
  // Item indices per arc.
  std::vector<std::vector<std::size_t>> per_arc_ D2_SHARDED_BY_ARC(arc);
  std::vector<GetOutcome> outcomes_;
};

}  // namespace d2::core
