// Batched workload-op application over the arc-partitioned System.
//
// The serial replay loop alternates run_until(record_time) with put/
// remove/get calls — one synchronization point per record. With the
// system sharded into arcs (DESIGN.md §9) the ops themselves are
// key-local, so a backlog of them can be applied as one run_arc_phase:
// every op is routed to the arc owning its key and executed *in-lane*,
// in arrival order, using the explicit-time entry points (put_at et al.)
// so TTL deadlines and removal delays are anchored exactly where the
// one-run_until-per-op engine would put them.
//
// Equivalence with the serial loop rests on two flush rules the caller
// checks via should_flush_before(t) before staging an op at time t:
//   1. event fence — if any pending simulator event fires at or before
//      t, it would have run before the op in the serial schedule, so the
//      backlog must drain (flush, then run_until(t)) first;
//   2. span cap — a staged op's own side effects land no earlier than
//      min(remove_delay, block_ttl) after it, so a batch never spans
//      further than that: everything an op schedules stays strictly
//      after every op in its batch, exactly as in the serial schedule.
// Ops for different keys in the same batch are state-disjoint unless
// they share an arc, and same-arc ops apply in arrival order — so the
// interleaving the serial loop would have produced is preserved
// wherever it is observable.
//
// Gets are evaluated in-lane at their position in arrival order; their
// outcomes are recorded into slots and consumed by the caller after
// flush() (aggregation over outcomes is order-insensitive, so per-arc
// evaluation order does not show in results).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "core/system.h"
#include "fs/writeback_cache.h"
#include "sim/simulator.h"

namespace d2::core {

class OpBatchRunner {
 public:
  /// Result of one staged get, tagged with the caller's `tag` (e.g. the
  /// task index a record belongs to).
  struct GetOutcome {
    std::int32_t tag = -1;
    bool known = false;      // system.has(key)
    bool available = false;  // system.block_available(key)
    int serving = -1;        // serving node, -1 = none
  };

  OpBatchRunner(System& system, sim::Simulator& sim)
      : system_(system),
        sim_(sim),
        per_arc_(static_cast<std::size_t>(system.config().arcs)) {
    span_cap_ = system.config().remove_delay;
    if (system.config().block_ttl > 0 &&
        system.config().block_ttl < span_cap_) {
      span_cap_ = system.config().block_ttl;
    }
  }

  bool empty() const { return items_.empty(); }

  /// True when staging an op at time `t` requires draining the backlog
  /// first (see the flush rules in the file comment).
  bool should_flush_before(SimTime t) const {
    if (items_.empty()) return false;
    if (sim_.next_event_time() <= t) return true;
    return span_cap_ > 0 && t - first_time_ >= span_cap_;
  }

  /// Stages one op at absolute time `t` (>= every earlier staged time).
  /// Gets with a negative tag are untracked reads and are dropped, like
  /// the serial loop drops them.
  void add(const fs::StoreOp& op, SimTime t, std::int32_t tag = -1) {
    if (op.kind == fs::StoreOp::Kind::kGet && tag < 0) return;
    if (items_.empty()) first_time_ = t;
    D2_REQUIRE_MSG(t >= first_time_, "batched ops must be staged in time order");
    std::size_t slot = 0;
    if (op.kind == fs::StoreOp::Kind::kGet) slot = get_count_++;
    const int arc = system_.block_map().arc_of(op.key);
    per_arc_[static_cast<std::size_t>(arc)].push_back(items_.size());
    items_.push_back(Item{op.key, op.size, t, tag, slot, op.kind});
  }

  /// Applies the backlog as one arc phase and clears it. Get outcomes
  /// (in staging order) are in outcomes() until the next flush.
  void flush() {
    outcomes_.clear();
    if (items_.empty()) return;
    outcomes_.resize(get_count_);
    sim_.run_arc_phase([this](int arc) {
      for (std::size_t idx : per_arc_[static_cast<std::size_t>(arc)]) {
        apply(items_[idx]);
      }
    });
    for (std::vector<std::size_t>& lane : per_arc_) lane.clear();
    items_.clear();
    get_count_ = 0;
  }

  const std::vector<GetOutcome>& outcomes() const { return outcomes_; }

 private:
  struct Item {
    Key key;
    Bytes size = 0;
    SimTime t = 0;
    std::int32_t tag = -1;
    std::size_t slot = 0;  // outcome index (gets only)
    fs::StoreOp::Kind kind = fs::StoreOp::Kind::kPut;
  };

  void apply(const Item& it) {
    switch (it.kind) {
      case fs::StoreOp::Kind::kPut:
        system_.put_at(it.key, it.size, it.t);
        return;
      case fs::StoreOp::Kind::kRemove:
        system_.remove_at(it.key, it.t);
        return;
      case fs::StoreOp::Kind::kGet: {
        GetOutcome& o = outcomes_[it.slot];
        o.tag = it.tag;
        o.known = system_.has(it.key);
        if (o.known) {
          o.available = system_.block_available(it.key);
          if (o.available) {
            if (auto node = system_.serving_node(it.key)) o.serving = *node;
          }
        }
        return;
      }
    }
  }

  System& system_;
  sim::Simulator& sim_;
  SimTime span_cap_ = 0;
  SimTime first_time_ = 0;
  std::size_t get_count_ = 0;
  std::vector<Item> items_;                      // staging order
  std::vector<std::vector<std::size_t>> per_arc_;  // item indices per arc
  std::vector<GetOutcome> outcomes_;
};

}  // namespace d2::core
