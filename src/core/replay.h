// Trace replay plumbing: routes trace records into per-user volumes.
//
// Following the paper's usage assumptions (§3), each user's home subtree
// is its own single-writer volume ("home/uN"), and there is one shared
// read-mostly volume ("shared"). A volume's embedded 30-second write-back
// / buffer cache therefore acts as that user's client cache. (The shared
// volume's buffer cache is shared between readers — a small optimistic
// artifact affecting ~5% of reads; see DESIGN.md.)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fs/volume.h"
#include "obs/metrics.h"
#include "trace/workload.h"

namespace d2::core {

class VolumeSet {
 public:
  explicit VolumeSet(fs::KeyScheme scheme,
                     SimTime writeback_ttl = seconds(30));

  /// Applies one trace record; store operations are appended to `out`.
  /// Reads can be skipped entirely (they never change store contents) by
  /// passing include_reads = false — the balance experiments do this.
  /// Records referencing paths that no longer exist are dropped (the
  /// defensive behaviour of a real client hitting ENOENT).
  void apply(const trace::TraceRecord& r, SimTime now,
             std::vector<fs::StoreOp>& out, bool include_reads = true);

  /// Creates the pre-trace file population and flushes it.
  void insert_initial(const std::vector<trace::FileSpec>& files, SimTime now,
                      std::vector<fs::StoreOp>& out);

  /// Flushes every volume's write-back cache.
  void flush_all(SimTime now, std::vector<fs::StoreOp>& out);

  /// Volume (and in-volume relative path) responsible for `path`.
  fs::Volume& volume_for(std::string_view path, std::string* relative);

  std::size_t volume_count() const { return volumes_.size(); }

  /// Binds every volume's write-back cache (existing and future) to
  /// `registry`. Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

 private:
  fs::KeyScheme scheme_;
  SimTime writeback_ttl_;
  obs::Registry* metrics_ = nullptr;
  std::map<std::string, std::unique_ptr<fs::Volume>> volumes_;
};

}  // namespace d2::core
