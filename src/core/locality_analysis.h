// The §4.1 data-locality analysis behind Figure 3.
//
// For each workload it computes the mean number of nodes each user needs
// to contact per hour under three placement scenarios, with 250 MB of data
// assigned per node:
//   traditional — every block gets a uniformly random key;
//   ordered     — keys follow the alphabetical order of block names (full
//                 path + block number for Harvard, disk block number for
//                 HP, reversed-domain URL for Web);
//   lower-bound — ceil(blocks the user touched / blocks per node): the
//                 information-theoretic floor, not necessarily achievable.
//
// Like the paper's analysis, this assumes each node stores exactly the
// same number of blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "trace/harvard_gen.h"
#include "trace/hp_gen.h"
#include "trace/web_gen.h"

namespace d2::core {

/// One block-level access: who touched which named block when.
struct BlockAccess {
  SimTime time;
  int user;
  std::string block_name;
};

struct LocalityParams {
  Bytes node_capacity = mB(250);
  Bytes block_size = kBlockSize;
};

struct LocalityResult {
  double traditional_nodes_per_user_hour = 0;
  double ordered_nodes_per_user_hour = 0;
  double lower_bound_nodes_per_user_hour = 0;
  std::uint64_t distinct_blocks = 0;
  std::uint64_t user_hours = 0;
  int nodes = 0;

  double ordered_normalized() const {
    return ordered_nodes_per_user_hour / traditional_nodes_per_user_hour;
  }
  double lower_bound_normalized() const {
    return lower_bound_nodes_per_user_hour / traditional_nodes_per_user_hour;
  }
};

class LocalityAnalysis {
 public:
  /// Expands the Harvard trace into per-8KB-block accesses named by full
  /// path + zero-padded block number (alphabetical order == namespace
  /// preorder within a directory).
  static std::vector<BlockAccess> from_harvard(
      const trace::HarvardGenerator& gen);

  /// HP accesses are already block-level; names are zero-padded disk
  /// block numbers.
  static std::vector<BlockAccess> from_hp(const trace::HpGenerator& gen);

  /// Web accesses become one block per 8KB of the object, named by the
  /// reversed-domain URL + block number.
  static std::vector<BlockAccess> from_web(const trace::WebGenerator& gen);

  static LocalityResult analyze(const std::vector<BlockAccess>& accesses,
                                const LocalityParams& params = {});
};

}  // namespace d2::core
