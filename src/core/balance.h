// Load balance & overhead experiment (paper §10, Figures 16-17, Tables
// 3-4).
//
// Long simulation of the write/remove stream (reads don't move data) with
// the full load-balancing machinery. Tracks the imbalance time series
// (normalized stddev of per-node physical storage), the max/mean load, and
// per-day byte accounting: user writes W_i, removals R_i, migration L_i,
// resident total T_i.
#pragma once

#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/harvard_gen.h"
#include "trace/web_gen.h"

namespace d2::core {

enum class BalanceWorkload { kHarvard, kWebcache };

struct BalanceParams {
  SystemConfig system;
  BalanceWorkload workload = BalanceWorkload::kHarvard;
  trace::HarvardParams harvard;
  trace::WebParams web;
  /// Load-balance warm-up after initial insertion (Harvard only; the
  /// Webcache starts from an empty DHT, as in the paper).
  SimTime warmup = days(3);
  SimTime sample_interval = hours(1);
  /// Observability sinks (not owned; may be null).
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct DayStats {
  Bytes written = 0;        // W_i
  Bytes removed = 0;        // R_i
  Bytes migrated = 0;       // L_i
  Bytes total_at_start = 0; // T_i
};

struct BalanceResult {
  /// (time since workload start, normalized stddev of node storage).
  std::vector<std::pair<SimTime, double>> imbalance;
  /// Max-over-mean load at each sample (paper: D2 averages ~1.6, the
  /// traditional DHT ~2.4).
  std::vector<double> max_over_mean;
  std::vector<DayStats> days;
  std::int64_t lb_moves = 0;

  double mean_imbalance() const;
  double mean_max_over_mean() const;
};

class BalanceExperiment {
 public:
  explicit BalanceExperiment(const BalanceParams& params);
  BalanceResult run();

 private:
  BalanceParams params_;
};

}  // namespace d2::core
