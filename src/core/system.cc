#include "core/system.h"

#include <algorithm>

#include "common/assert.h"
#include "common/lane.h"
#include "common/stats.h"
#include "dht/consistent_hash.h"

namespace d2::core {

namespace {
/// How far past the owner the replica scan may extend while skipping down
/// nodes, and therefore how many predecessors a readjustment arc covers.
int scan_cap(int replicas) { return replicas + 6; }
constexpr SimTime kFetchRetryDelay = minutes(10);
}  // namespace

int System::effective_replicas() const {
  return config_.redundancy == SystemConfig::Redundancy::kErasure
             ? config_.ec_total_fragments
             : config_.replicas;
}

bool System::erasure() const {
  return config_.redundancy == SystemConfig::Redundancy::kErasure;
}

System::System(const SystemConfig& config, sim::Simulator& sim,
               obs::Registry* metrics)
    : config_(config),
      sim_(sim),
      owned_metrics_(metrics == nullptr ? std::make_unique<obs::Registry>()
                                        : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      rng_(config.seed),
      map_(config.node_count, config.arcs),
      expiry_(static_cast<std::size_t>(config.arcs)),
      extended_(static_cast<std::size_t>(config.arcs)),
      balancer_(dht::LoadBalanceConfig{config.lb_threshold, 4}),
      replica_set_scratch_(static_cast<std::size_t>(config.arcs) + 1),
      lane_audit_gates_(static_cast<std::size_t>(config.arcs)),
      user_write_bytes_sh_(static_cast<std::size_t>(config.arcs) + 1, 0),
      user_removed_bytes_sh_(static_cast<std::size_t>(config.arcs) + 1, 0),
      migration_bytes_sh_(static_cast<std::size_t>(config.arcs) + 1, 0),
      fetch_reservations_(static_cast<std::size_t>(config.arcs)) {
  D2_REQUIRE(config.node_count > 0);
  D2_REQUIRE(config.replicas > 0);
  D2_REQUIRE_MSG(config.arcs >= 1, "system needs at least one arc");
  D2_REQUIRE_MSG(config.arcs == sim.arcs(),
                 "system arc count must match the simulator's");
  D2_REQUIRE_MSG(config.arcs == 1 || config.scatter_replicas == 0,
                 "hybrid placement couples arbitrary keys across the ring "
                 "and requires a single arc");
  if (config.redundancy == SystemConfig::Redundancy::kErasure) {
    D2_REQUIRE(config.ec_data_fragments > 0);
    D2_REQUIRE(config.ec_total_fragments >= config.ec_data_fragments);
    D2_REQUIRE_MSG(config.scatter_replicas == 0,
                   "hybrid placement + erasure coding not supported together");
  }
  user_write_bytes_c_ = &metrics_->counter("system.user_write_bytes");
  user_removed_bytes_c_ = &metrics_->counter("system.user_removed_bytes");
  migration_bytes_c_ = &metrics_->counter("system.migration_bytes");
  lb_moves_c_ = &metrics_->counter("system.lb_moves");
  replica_fetches_c_ = &metrics_->counter("system.replica_fetches");
  pointer_promotions_c_ = &metrics_->counter("system.pointer_promotions");
  balancer_.bind_metrics(metrics_);
  nodes_.reserve(static_cast<std::size_t>(config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    nodes_.emplace_back(config.migration_bandwidth);
    nodes_.back().migration_link.bind_metrics(metrics_, "sim.migration_link");
    Key id = dht::random_node_id(rng_);
    while (ring_.id_taken(id)) id = dht::random_node_id(rng_);
    ring_.add(i, id);
  }
  // Fetch reservations staged by arc lanes resolve at the simulator's
  // mode-independent commit points (see resolve_fetch_reservations).
  sim_.set_commit_hook([this] { resolve_fetch_reservations(); });
}

System::~System() { sim_.set_commit_hook({}); }

bool System::node_up(int node) const {
  D2_REQUIRE(node >= 0 && node < config_.node_count);
  return nodes_[static_cast<std::size_t>(node)].up;
}

// ------------------------------------------------------------ replicas --

Key System::scatter_position(const Key& k, int i) {
  return dht::hashed_key(k.hex() + "#scatter" + std::to_string(i));
}

void System::target_replica_set(const Key& k, std::vector<int>& out) const {
  // Successor-order replica set for `k` under the current up/down state:
  // the canonical successors, extended past down nodes until enough up
  // members are included (bounded by scan_cap). With hybrid placement,
  // the tail of the set lives at consistent-hash positions instead.
  const int scatter =
      erasure() ? 0 : std::min(config_.scatter_replicas, config_.replicas - 1);
  const int r = effective_replicas() - scatter;
  out.clear();
  const int cap = std::min<int>(static_cast<int>(ring_.size()), scan_cap(r));
  int node = ring_.owner(k);
  int up_count = 0;
  for (int i = 0; i < cap; ++i) {
    out.push_back(node);
    if (node_up(node)) ++up_count;
    if (up_count >= r && static_cast<int>(out.size()) >= r) break;
    node = ring_.successor(node);
  }
  // Scattered members: first non-duplicate node at each hashed position,
  // plus the next up one if it is down (mirroring the successor logic).
  for (int s = 0; s < scatter; ++s) {
    int candidate = ring_.owner(scatter_position(k, s));
    int steps = 0;
    bool added_up = false;
    while (steps < scan_cap(1) + static_cast<int>(out.size())) {
      const bool duplicate =
          std::find(out.begin(), out.end(), candidate) != out.end();
      if (!duplicate) {
        out.push_back(candidate);
        if (node_up(candidate)) {
          added_up = true;
        }
      }
      if (added_up) break;
      candidate = ring_.successor(candidate);
      ++steps;
      if (static_cast<std::size_t>(out.size()) >= ring_.size()) break;
    }
  }
}

void System::register_scatter(const Key& k) {
  const int scatter = std::min(config_.scatter_replicas, config_.replicas - 1);
  for (int s = 0; s < scatter; ++s) {
    scatter_index_.emplace(scatter_position(k, s), k);
  }
}

void System::forget_scatter(const Key& k) {
  const int scatter = std::min(config_.scatter_replicas, config_.replicas - 1);
  for (int s = 0; s < scatter; ++s) {
    const Key pos = scatter_position(k, s);
    auto [lo, hi] = scatter_index_.equal_range(pos);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == k) {
        scatter_index_.erase(it);
        break;
      }
    }
  }
}

std::vector<int> System::replica_nodes(const Key& k) const {
  const store::BlockState* b = map_.find(k);
  if (b == nullptr) return {};
  std::vector<int> out;
  out.reserve(b->replicas.size());
  for (const store::Replica& r : b->replicas) out.push_back(r.node);
  return out;
}

std::optional<int> System::fetch_source(const store::BlockState& b) const {
  for (const store::Replica& r : b.replicas) {
    if (r.has_data && node_up(r.node)) return r.node;
  }
  for (int n : b.stale_holders) {
    if (node_up(n)) return n;
  }
  return std::nullopt;
}

int System::up_data_holders(const store::BlockState& b) const {
  int count = 0;
  for (const store::Replica& r : b.replicas) {
    if (r.has_data && node_up(r.node)) ++count;
  }
  for (int n : b.stale_holders) {
    if (node_up(n)) ++count;
  }
  return count;
}

bool System::block_available(const Key& k) const {
  const store::BlockState* b = map_.find(k);
  if (b == nullptr) return false;
  if (erasure()) {
    // (n, k) coding: readable iff >= k fragments sit on up nodes (stale
    // holders still carry their fragment).
    return up_data_holders(*b) >= config_.ec_data_fragments;
  }
  bool responsible_up = false;
  for (const store::Replica& r : b->replicas) {
    if (!node_up(r.node)) continue;
    if (r.has_data) return true;
    responsible_up = true;
  }
  if (!responsible_up) return false;
  // A responsible (pointer-holding) node is up; it can redirect to any up
  // holder of the bytes.
  for (int n : b->stale_holders) {
    if (node_up(n)) return true;
  }
  return false;
}

std::optional<int> System::serving_node(const Key& k) const {
  const store::BlockState* b = map_.find(k);
  if (b == nullptr) return std::nullopt;
  if (erasure()) {
    // A read fans out to k fragment holders; report the primary-most one.
    if (up_data_holders(*b) < config_.ec_data_fragments) return std::nullopt;
  }
  for (const store::Replica& r : b->replicas) {
    if (r.has_data && node_up(r.node)) return r.node;
  }
  bool responsible_up = false;
  for (const store::Replica& r : b->replicas) {
    if (node_up(r.node)) responsible_up = true;
  }
  if (responsible_up) {
    for (int n : b->stale_holders) {
      if (node_up(n)) return n;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- puts --

void System::put_at(const Key& k, Bytes size, SimTime t) {
  D2_REQUIRE(size >= 0);
  D2_REQUIRE_MSG(t >= sim_.now(), "op time must not precede the clock");
  D2_ASSERT_OWNER_LANE(map_.arc_of(k));
  add_user_write_bytes(size);
  bool fresh_key = true;
  if (const store::BlockState* existing = map_.find(k)) {
    // In-place update (the mutable root block, or a webcache version
    // replacement): the previous version's bytes are discarded.
    add_user_removed_bytes(existing->size);
    fresh_key = false;  // scatter-index entries stay valid
    if (existing->size != size) {
      map_.erase(k);
    } else {
      refresh_at(k, t);
      return;
    }
  }
  std::vector<int>& set = replica_set_scratch_[shard_slot()];
  target_replica_set(k, set);
  const Bytes member_bytes =
      erasure() ? (size + config_.ec_data_fragments - 1) / config_.ec_data_fragments
                : size;
  map_.insert(k, size, set, member_bytes);
  note_set_shape(k, set.size());
  // A write cannot land on a down member; it catches up on recovery.
  for (int n : set) {
    if (!node_up(n)) map_.mark_missing(k, n);
  }
  if (fresh_key && config_.scatter_replicas > 0) register_scatter(k);
  refresh_at(k, t);
  maybe_audit(/*sampled=*/true);
}

void System::remove_at(const Key& k, SimTime t) {
  D2_REQUIRE_MSG(t >= sim_.now(), "op time must not precede the clock");
  // Key-local event: runs on the arc that owns `k`, touching only that
  // arc's shards.
  // d2-sched: arc-local — delayed remove touches only k's shard
  sim_.schedule_arc_at(map_.arc_of(k), t + config_.remove_delay, [this, k] {
    D2_ASSERT_OWNER_LANE(map_.arc_of(k));
    if (const store::BlockState* b = map_.find(k)) {
      add_user_removed_bytes(b->size);
      map_.erase(k);
      expiry_shard(k).erase(k);
      extended_shard(k).erase(k);
      if (config_.scatter_replicas > 0) forget_scatter(k);
      maybe_audit(/*sampled=*/true);
    }
  });
}

void System::refresh_at(const Key& k, SimTime t) {
  if (config_.block_ttl <= 0) return;
  if (!map_.contains(k)) return;
  D2_ASSERT_OWNER_LANE(map_.arc_of(k));
  const SimTime deadline = t + config_.block_ttl;
  expiry_shard(k)[k] = deadline;
  // Deadline-check pattern (arc events are not cancellable): a later
  // refresh bumps the shard entry and this event becomes a no-op.
  // d2-sched: arc-local — TTL expiry touches only k's shard
  sim_.schedule_arc_at(map_.arc_of(k), deadline, [this, k, deadline] {
    D2_ASSERT_OWNER_LANE(map_.arc_of(k));
    auto& shard = expiry_shard(k);
    auto it = shard.find(k);
    if (it == shard.end() || it->second != deadline) return;  // refreshed
    if (const store::BlockState* b = map_.find(k)) {
      add_user_removed_bytes(b->size);
      if (tracer_ != nullptr) {
        tracer_->record(sim_.now(), obs::EventType::kBlockExpired, b->size);
      }
      map_.erase(k);
      extended_shard(k).erase(k);
      if (config_.scatter_replicas > 0) forget_scatter(k);
    }
    shard.erase(it);
  });
}

// -------------------------------------------------------------- fetches --

void System::schedule_fetch(const Key& k, int node, SimTime delay) {
  // Arc-local by construction: the timer fires on the key's shard (block
  // lookup + replica flags); the only shared state it would touch — the
  // node's migration link — is reached through the reservation relay.
  // Callable from the coordinator (readjustment) or from the key's own
  // lane (retry path).
  // d2-sched: arc-local — fetch timer for k runs on k's arc
  sim_.schedule_arc_after(map_.arc_of(k), delay,
                          [this, k, node] { try_fetch(k, node); });
}

void System::try_fetch(const Key& k, int node) {
  D2_ASSERT_OWNER_LANE(map_.arc_of(k));
  store::BlockState* b = map_.find_mutable(k);
  if (b == nullptr) return;  // removed meanwhile
  store::Replica* member = nullptr;
  for (store::Replica& r : b->replicas) {
    if (r.node == node) {
      member = &r;
      break;
    }
  }
  if (member == nullptr) return;  // responsibility handed off (pointer win)
  if (member->has_data || member->fetch_in_flight) return;
  if (!node_up(node)) return;  // recovery readjustment will reschedule
  Bytes transfer_bytes;
  if (erasure()) {
    // Regenerating one fragment requires reading k others (the classic
    // erasure-coding repair penalty, §3's "cost of ... complexity").
    if (up_data_holders(*b) < config_.ec_data_fragments) {
      schedule_fetch(k, node, kFetchRetryDelay);  // not reconstructible yet
      return;
    }
    transfer_bytes = b->member_bytes * config_.ec_data_fragments;
  } else {
    if (!fetch_source(*b).has_value()) {
      schedule_fetch(k, node, kFetchRetryDelay);  // no up source; retry
      return;
    }
    transfer_bytes = b->size;
  }
  member->fetch_in_flight = true;
  migration_bytes_sh_[shard_slot()] += transfer_bytes;
  migration_bytes_c_->add(transfer_bytes);
  replica_fetches_c_->add(1);
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventType::kReplicaFetch, node,
                    transfer_bytes);
  }
  // The migration link is shared FIFO state (any key whose replica lands
  // on `node` queues here), so a lane must not enqueue directly: stage a
  // reservation under the *key's* arc — the same slot in serial and
  // parallel execution — and let the commit hook resolve it in the
  // canonical (t, arc, seq) order.
  fetch_reservations_[static_cast<std::size_t>(map_.arc_of(k))].push_back(
      FetchReservation{sim_.now(), k, node, transfer_bytes});
}

void System::resolve_fetch_reservations() {
  fetch_refs_.clear();
  for (int arc = 0; arc < config_.arcs; ++arc) {
    const auto& staged = fetch_reservations_[static_cast<std::size_t>(arc)];
    for (std::uint32_t seq = 0; seq < staged.size(); ++seq) {
      fetch_refs_.push_back(FetchRef{staged[seq].t, arc, seq});
    }
  }
  if (fetch_refs_.empty()) return;
  // (t, arc, seq) is a total order and identical across arcs/workers
  // settings: per-arc event order is mode-independent, so each arc's
  // staging sequence is too. Commit points only ever see reservations
  // from the windows since the previous commit, whose times all follow
  // the previous batch's — batch-local sorting therefore yields the same
  // per-link enqueue sequence as one global sort.
  std::sort(fetch_refs_.begin(), fetch_refs_.end(),
            [](const FetchRef& a, const FetchRef& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.arc != b.arc) return a.arc < b.arc;
              return a.seq < b.seq;
            });
  for (const FetchRef& ref : fetch_refs_) {
    const FetchReservation& r =
        fetch_reservations_[static_cast<std::size_t>(ref.arc)][ref.seq];
    const SimTime done = nodes_[static_cast<std::size_t>(r.node)]
                             .migration_link.enqueue(r.t, r.bytes);
    // The link may have been idle, finishing the transfer before the
    // coordinator clock; completions still must not run in the past.
    const SimTime at = std::max(done, sim_.now());
    // d2-sched: arc-local — completion touches only k's shard
    sim_.schedule_arc_at(map_.arc_of(r.k), at,
                         [this, k = r.k, node = r.node] { finish_fetch(k, node); });
  }
  for (auto& staged : fetch_reservations_) staged.clear();
}

void System::finish_fetch(const Key& k, int node) {
  store::BlockState* blk = map_.find_mutable(k);
  if (blk == nullptr) return;
  for (store::Replica& r : blk->replicas) {
    if (r.node == node) {
      if (!r.has_data && r.fetch_in_flight) {
        map_.mark_data(k, node);
        // The member held (at most) a pointer until now; the fetch
        // completing promotes it to a full data holder.
        pointer_promotions_c_->add(1);
      }
      return;
    }
  }
}

// --------------------------------------------------------- readjustment --

void System::note_set_shape(const Key& k, std::size_t set_size) {
  D2_ASSERT_OWNER_LANE(map_.arc_of(k));
  if (static_cast<int>(set_size) != effective_replicas()) {
    extended_shard(k).insert(k);
  } else {
    extended_shard(k).erase(k);
  }
}

void System::reassign_block(const Key& k, SimTime fetch_delay) {
  std::vector<int>& set = replica_set_scratch_[shard_slot()];
  target_replica_set(k, set);
  note_set_shape(k, set.size());
  map_.reassign_replicas(k, set, sim_.now());
  const store::BlockState* b = map_.find(k);
  D2_ASSERT(b != nullptr);
  for (const store::Replica& r : b->replicas) {
    if (!r.has_data && !r.fetch_in_flight) {
      schedule_fetch(k, r.node, node_up(r.node) ? fetch_delay : 0);
    }
  }
}

void System::readjust_arc(int around_node, SimTime fetch_delay) {
  if (map_.block_count() == 0) return;
  // Cover every key whose replica scan can reach `around_node`.
  int pred = around_node;
  const int steps = std::min<int>(static_cast<int>(ring_.size()) - 1,
                                  scan_cap(effective_replicas()));
  for (int i = 0; i < steps; ++i) pred = ring_.predecessor(pred);
  const Key from = ring_.id_of(pred);
  const Key to = ring_.id_of(around_node);
  for (const Key& k : map_.keys_in_arc(from, to)) {
    reassign_block(k, fetch_delay);
  }
  if (!scatter_index_.empty()) {
    // Blocks with a scattered replica anchored in this arc are affected
    // too (hybrid placement).
    std::vector<Key> affected;
    auto collect = [this, &affected](const Key& lo_excl, const Key& hi_incl) {
      for (auto it = scatter_index_.upper_bound(lo_excl);
           it != scatter_index_.end() && it->first <= hi_incl; ++it) {
        affected.push_back(it->second);
      }
    };
    if (from == to) {
      for (const auto& [pos, key] : scatter_index_) affected.push_back(key);
    } else if (from < to) {
      collect(from, to);
    } else {
      collect(from, Key::max());
      for (auto it = scatter_index_.begin();
           it != scatter_index_.end() && it->first <= to; ++it) {
        affected.push_back(it->second);
      }
    }
    for (const Key& k : affected) {
      if (map_.contains(k)) reassign_block(k, fetch_delay);
    }
  }
}

// ------------------------------------------------------- load balancing --

void System::schedule_probe(int node) {
  if (config_.probe_commit_interval > 0) {
    schedule_probe_due(node, sim_.now());
    return;
  }
  // Legacy path: one global event per probe. Jittered interval so probes
  // don't synchronize.
  const auto jitter = static_cast<SimTime>(
      static_cast<double>(config_.probe_interval) * (0.5 + rng_.next_double()));
  // d2-sched: global — probes read ring/rng/primary counts across arcs
  sim_.schedule_after(jitter, [this, node] {
    if (node_up(node)) probe_once(node);
    schedule_probe(node);
  });
}

void System::schedule_probe_due(int node, SimTime from) {
  // Same jittered cadence as the legacy path — and, crucially, the same
  // rng draw position: the jitter is drawn right after the node's probe
  // evaluation, so the serial probe-rng stream is reproduced draw for
  // draw by the tick's (due, node) processing order.
  const auto jitter = static_cast<SimTime>(
      static_cast<double>(config_.probe_interval) * (0.5 + rng_.next_double()));
  const SimTime due = from + jitter;
  probe_buckets_[probe_epoch(due)].emplace_back(due, node);
}

void System::schedule_probe_tick() {
  D2_ASSERT(!probe_buckets_.empty());
  const std::int64_t epoch = probe_buckets_.begin()->first;
  // d2-sched: global — the commit tick batches cross-arc probe work
  sim_.schedule_at(epoch * config_.probe_commit_interval,
                   [this, epoch] { probe_commit_tick(epoch); });
}

void System::probe_commit_tick(std::int64_t epoch) {
  auto it = probe_buckets_.find(epoch);
  D2_ASSERT_MSG(it != probe_buckets_.end(),
                "probe tick fired for an empty calendar epoch");
  std::vector<std::pair<SimTime, int>> due = std::move(it->second);
  probe_buckets_.erase(it);
  // (due, node) order: node breaks the (measure-zero) due-time ties so
  // the batch order is deterministic. Each probe sees system state live
  // at the tick — that is the probe-commit semantics (config.h) — but
  // draws from rng_ in exactly the per-probe order the legacy path used.
  std::sort(due.begin(), due.end());
  for (const auto& [t, node] : due) {
    if (node_up(node)) probe_once(node);
    schedule_probe_due(node, t);
  }
  schedule_probe_tick();
}

void System::start_load_balancing() {
  if (!config_.active_load_balance) return;
  if (config_.probe_commit_interval > 0) {
    D2_REQUIRE_MSG(
        2 * config_.probe_commit_interval <= config_.probe_interval,
        "probe_commit_interval must be <= probe_interval / 2 (a committed "
        "probe's next due time, at least half an interval out, must land "
        "in a later epoch than its tick); set it to 0 for the legacy "
        "per-probe scheduling");
  }
  for (int i = 0; i < config_.node_count; ++i) schedule_probe(i);
  if (config_.probe_commit_interval > 0 && !probe_buckets_.empty()) {
    schedule_probe_tick();
  }
}

bool System::probe_once(int prober) {
  if (ring_.size() < 2) return false;
  int other = prober;
  while (other == prober) {
    other = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(config_.node_count)));
  }
  if (!node_up(other)) return false;

  auto median_of = [this](int heavy) -> std::optional<Key> {
    const auto [from, to] = ring_.owned_arc(heavy);
    std::optional<Key> median = map_.median_primary_key(from, to);
    if (median && ring_.id_taken(*median)) return std::nullopt;
    return median;
  };
  std::optional<dht::MoveDecision> decision = balancer_.evaluate_probe(
      prober, map_.primary_count(prober), other, map_.primary_count(other),
      median_of);
  if (!decision) return false;
  if (!node_up(decision->light_node)) return false;
  execute_move(*decision);
  return true;
}

void System::execute_move(const dht::MoveDecision& decision) {
  ++lb_moves_;
  lb_moves_c_->add(1);
  balancer_.count_applied_move();
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventType::kLbMove, decision.light_node,
                    decision.heavy_node);
  }
  const int light = decision.light_node;
  const int old_successor = ring_.successor(light);
  ring_.move(light, decision.new_id);
  const SimTime fetch_delay =
      config_.use_pointers ? config_.pointer_stabilization : 0;
  // Keys around the light node's old position (its range fell to the old
  // successor) and around its new position (it took half of the heavy
  // node's range).
  readjust_arc(old_successor, fetch_delay);
  readjust_arc(light, fetch_delay);
  maybe_audit(/*sampled=*/false);
}

// -------------------------------------------------------------- failures --

void System::attach_failure_trace(const sim::FailureTrace* trace,
                                  SimTime offset) {
  D2_REQUIRE(trace != nullptr);
  D2_REQUIRE(trace->node_count() >= config_.node_count);
  failure_trace_ = trace;
  for (const sim::FailureTrace::Transition& t : trace->transitions()) {
    if (t.node >= config_.node_count) continue;
    const SimTime when = offset + t.time;
    if (when < sim_.now()) continue;
    if (t.up) {
      // d2-sched: global — up/down transitions mutate state every arc reads
      sim_.schedule_at(when, [this, node = t.node] { on_node_up(node); });
    } else {
      // d2-sched: global — up/down transitions mutate state every arc reads
      sim_.schedule_at(when, [this, node = t.node] { on_node_down(node); });
    }
  }
}

void System::on_node_down(int node) {
  nodes_[static_cast<std::size_t>(node)].up = false;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventType::kNodeDown, node);
  }
  // Regenerate this node's blocks elsewhere only if it stays down past the
  // grace period (avoids churning on reboots).
  // d2-sched: global — regeneration readjusts a ring arc (cross-arc keys)
  sim_.schedule_after(config_.regen_delay, [this, node] {
    if (!nodes_[static_cast<std::size_t>(node)].up) {
      readjust_arc(node, 0);
      maybe_audit(/*sampled=*/false);
    }
  });
  maybe_audit(/*sampled=*/false);
}

void System::on_node_up(int node) {
  nodes_[static_cast<std::size_t>(node)].up = true;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventType::kNodeUp, node);
  }
  // Shrink extended replica sets back to canonical and let this node catch
  // up on writes it missed.
  readjust_arc(node, 0);
  // Blocks that were extended while members were down may sit arbitrarily
  // far from this node's current ring position (load balancing moves ranks
  // around); re-canonicalize them all — the set is small. Shards visited
  // in arc order enumerate keys ascending, the pre-sharding order.
  std::vector<Key> extended;
  for (const std::set<Key>& shard : extended_) {
    extended.insert(extended.end(), shard.begin(), shard.end());
  }
  for (const Key& k : extended) {
    if (map_.contains(k)) {
      reassign_block(k, 0);
    } else {
      extended_shard(k).erase(k);
    }
  }
  maybe_audit(/*sampled=*/false);
}

// -------------------------------------------------------------- metrics --

void System::reset_traffic_counters() {
  std::fill(user_write_bytes_sh_.begin(), user_write_bytes_sh_.end(), 0);
  std::fill(user_removed_bytes_sh_.begin(), user_removed_bytes_sh_.end(), 0);
  std::fill(migration_bytes_sh_.begin(), migration_bytes_sh_.end(), 0);
  lb_moves_ = 0;
  user_write_bytes_c_->reset();
  user_removed_bytes_c_->reset();
  migration_bytes_c_->reset();
  lb_moves_c_->reset();
  replica_fetches_c_->reset();
  pointer_promotions_c_->reset();
}

double System::load_imbalance() const {
  Stats s;
  for (int i = 0; i < config_.node_count; ++i) {
    s.add(static_cast<double>(map_.physical_bytes(i)));
  }
  if (s.mean() == 0) return 0.0;
  return s.normalized_stddev();
}

double System::max_over_mean_load() const {
  Stats s;
  for (int i = 0; i < config_.node_count; ++i) {
    s.add(static_cast<double>(map_.physical_bytes(i)));
  }
  if (s.mean() == 0) return 0.0;
  return s.max() / s.mean();
}

// ------------------------------------------------------------- auditing --

void System::check_invariants() const {
  ring_.check_invariants();
  map_.check_invariants();
  D2_ASSERT_MSG(ring_.size() == static_cast<std::size_t>(config_.node_count),
                "system: ring membership disagrees with node count");
  map_.for_each_block([this](const Key& k, const store::BlockState& b) {
    // §3 placement: the primary is always the ring owner of the key.
    // Readjustment restores this synchronously after every ID change,
    // so it holds whenever control returns to the event loop.
    D2_ASSERT_MSG(!b.replicas.empty() &&
                      b.replicas.front().node == ring_.owner(k),
                  "system: block primary is not the ring owner of its key");
  });
  // Partition-local bookkeeping must be filed under the owning arc —
  // the bijection the lane-confinement rules rest on (DESIGN.md §9).
  for (int a = 0; a < config_.arcs; ++a) {
    const auto arc_i = static_cast<std::size_t>(a);
    for (const Key& k : extended_[arc_i]) {
      D2_ASSERT_MSG(map_.contains(k),
                    "system: extended-set entry for a removed block");
      D2_ASSERT_MSG(map_.arc_of(k) == a,
                    "system: extended-set entry filed in a shard that does "
                    "not own its key");
    }
    for (const auto& [k, deadline] : expiry_[arc_i]) {
      D2_ASSERT_MSG(map_.arc_of(k) == a,
                    "system: TTL entry filed in a shard that does not own "
                    "its key");
      D2_ASSERT_MSG(deadline > 0, "system: TTL entry with no deadline");
    }
  }
}

void System::maybe_audit(bool sampled) {
  if (!kParanoid && !config_.paranoid_audits) return;
  if (sim_.in_lane()) {
    // Lane context: the ring and the other arcs' slices belong to other
    // threads; audit only this lane's slice, paced by its own gate.
    const int arc = sim_.lane_arc();
    if (sampled &&
        !lane_audit_gates_[static_cast<std::size_t>(arc)].due(
            map_.slice_block_count(arc))) {
      return;
    }
    map_.check_slice_invariants(arc);
    return;
  }
  if (sampled && !audit_gate_.due(map_.block_count())) return;
  check_invariants();
}

}  // namespace d2::core
