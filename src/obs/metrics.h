// Unified observability layer: a registry of named metric instruments.
//
// Every d2 layer (sim, net, dht, store, fs, core) reports cross-cutting
// quantities — lookup traffic, cache hit rates, migration bytes, per-node
// load — through one obs::Registry instead of private ad-hoc counters.
// Instruments are created on first use and named by the convention
// `layer.component.metric` (e.g. `store.lookup_cache.hits`,
// `dht.router.hops`); repeated lookups of the same name return the same
// instrument, so independent instances (per-user caches, per-node links)
// naturally aggregate into one system-wide figure.
//
// Three instrument kinds, matching what the paper's evaluation reports:
//   Counter   — monotonically increasing int64 (bytes moved, cache hits);
//   Gauge     — last-set double (clock, queue depth, utilization);
//   Histogram — distribution built on d2::Stats (hop counts, latencies),
//               exported as count/mean/min/max and p50/p90/p99.
//
// Registry::to_json() serializes everything as one deterministic JSON
// object (instruments sorted by name) for `d2sim --metrics-out=FILE` and
// the bench harness metrics block.
//
// Instrument references returned by counter()/gauge()/histogram() are
// stable for the registry's lifetime (node-based storage), so hot paths
// bind once and increment through a pointer.
//
// Thread safety: one Registry may be shared by the parallel trials of a
// core::TrialRunner. Counter and Gauge are lock-free atomics, Histogram
// shards its samples across per-mutex buckets (reductions merge and sort
// the shards, so exported values are independent of which thread recorded
// which sample), and instrument creation/lookup is serialized by a
// registry mutex. Counter totals and Histogram reductions are therefore
// identical whether trials run serially or concurrently; a Gauge is
// last-set-wins, so concurrent setters race benignly (one trial's value
// survives).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace d2::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Snapshot-style assignment, for instruments mirrored from a source
  /// counter at export time (e.g. sim.events_processed when a Simulator
  /// is bound after it already ran). Avoid on shared registries — it
  /// clobbers other writers' adds.
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

class Histogram {
 public:
  void record(double v);
  std::size_t count() const;
  /// All samples merged across shards and sorted ascending — reductions
  /// over the result are deterministic regardless of recording thread.
  Stats merged() const;
  double percentile(double p) const { return merged().percentile(p); }
  void reset();

 private:
  // Sharded so concurrent recorders (parallel trials) rarely contend on
  // the same mutex. Power of two for cheap thread-id hashing.
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable Mutex mu;
    Stats stats D2_GUARDED_BY(mu);
  };
  Shard& shard_for_this_thread();

  Shard shards_[kShards];
};

/// Named instrument store, safe for concurrent use (see file comment);
/// typically one Registry per experiment run or per parallel sweep.
class Registry {
 public:
  /// Returns the instrument named `name`, creating it on first use.
  /// `name` must be non-empty, use only [a-z0-9_.] (the
  /// `layer.component.metric` convention), and not already name an
  /// instrument of a different kind — a cross-kind collision throws
  /// PreconditionError.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lookup without creation (nullptr when absent) — for tests and
  /// report code that must not materialize instruments.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t instrument_count() const;

  /// Zeroes every instrument (names and identities survive, so bound
  /// pointers stay valid). Counterpart of the legacy per-class
  /// reset_*_counters() helpers.
  void reset();

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,
  /// "p99":..}}}. Deterministic (sorted by name); empty histograms emit
  /// count 0 and omit the reductions.
  std::string to_json() const;

  /// Writes to_json() (plus a trailing newline) to `path`; throws
  /// PreconditionError when the file cannot be opened.
  void write_json_file(const std::string& path) const;

 private:
  void check_name(const std::string& name, const char* kind) const
      D2_REQUIRES(mu_);

  // Guards the instrument maps (creation, lookup, iteration). Instrument
  // *values* have their own synchronization, so bound pointers are used
  // without this lock.
  mutable Mutex mu_;
  // std::map gives stable element addresses and sorted JSON output.
  std::map<std::string, Counter> counters_ D2_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ D2_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ D2_GUARDED_BY(mu_);
};

}  // namespace d2::obs
