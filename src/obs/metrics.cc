#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "common/assert.h"

namespace d2::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}

/// Shortest round-trippable representation; always a valid JSON number.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %g may produce "inf"/"nan" which are not JSON; instruments never
  // should (Stats rejects empty reductions), but guard anyway.
  for (const char* p = buf; *p; ++p) {
    if ((*p >= 'a' && *p <= 'z' && *p != 'e') || *p == 'I' || *p == 'N') {
      out += "null";
      return;
    }
  }
  out += buf;
}

void append_key(std::string& out, const std::string& name) {
  out += '"';
  out += name;  // names are [a-z0-9_.], never need escaping
  out += "\":";
}

}  // namespace

Histogram::Shard& Histogram::shard_for_this_thread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h & (kShards - 1)];
}

void Histogram::record(double v) {
  Shard& s = shard_for_this_thread();
  MutexLock lock(s.mu);
  s.stats.add(v);
}

std::size_t Histogram::count() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    n += s.stats.count();
  }
  return n;
}

Stats Histogram::merged() const {
  std::vector<double> all;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    const std::vector<double>& v = s.stats.samples();
    all.insert(all.end(), v.begin(), v.end());
  }
  // Sorting makes every reduction (including the floating-point sums
  // behind mean/stddev) independent of shard assignment and thread
  // interleaving.
  std::sort(all.begin(), all.end());
  Stats out;
  for (double v : all) out.add(v);
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    s.stats = Stats{};
  }
}

void Registry::check_name(const std::string& name, const char* kind) const {
  D2_REQUIRE_MSG(!name.empty(), "instrument name must be non-empty");
  for (char c : name) {
    D2_REQUIRE_MSG(valid_name_char(c),
                   "instrument name must match [a-z0-9_.]: " + name);
  }
  const bool is_counter = counters_.count(name) > 0;
  const bool is_gauge = gauges_.count(name) > 0;
  const bool is_histogram = histograms_.count(name) > 0;
  const std::string k = kind;
  D2_REQUIRE_MSG((!is_counter || k == "counter") &&
                     (!is_gauge || k == "gauge") &&
                     (!is_histogram || k == "histogram"),
                 "instrument '" + name + "' already registered as another kind");
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mu_);
  check_name(name, "counter");
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  check_name(name, "gauge");
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  check_name(name, "histogram");
  return histograms_[name];
}

const Counter* Registry::find_counter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::size_t Registry::instrument_count() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string Registry::to_json() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    out += std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    append_double(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    const Stats s = h.merged();
    out += "{\"count\":" + std::to_string(s.count());
    if (s.count() > 0) {
      out += ",\"mean\":";
      append_double(out, s.mean());
      out += ",\"min\":";
      append_double(out, s.min());
      out += ",\"max\":";
      append_double(out, s.max());
      out += ",\"p50\":";
      append_double(out, s.percentile(50));
      out += ",\"p90\":";
      append_double(out, s.percentile(90));
      out += ",\"p99\":";
      append_double(out, s.percentile(99));
    }
    out += '}';
  }
  out += "}}";
  return out;
}

void Registry::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  D2_REQUIRE_MSG(f.good(), "cannot open metrics output file: " + path);
  f << to_json() << '\n';
}

}  // namespace d2::obs
