// Structured simulation event tracing (the second half of the obs layer).
//
// Where metrics.h aggregates, the Tracer records *individual* typed
// events with their simulated timestamps — the load-balancing move that
// caused a migration burst, the node_down that preceded an availability
// dip — into a bounded ring buffer. When the buffer is full the oldest
// events are overwritten (the tail of a long run is usually what
// matters; `dropped()` says how much history was lost).
//
// Events carry two free-form int64 operands whose meaning depends on the
// type (documented next to each enumerator). Export is JSON lines, one
// event per line, ready for jq / pandas.
//
// Thread safety: the ring is guarded by a mutex, so one Tracer may be
// shared by the parallel trials of a core::TrialRunner. Events from
// concurrent trials interleave in arrival order (wall-clock, not
// simulated-time, order across trials); give each trial its own Tracer
// and merge afterwards when a reproducible event order matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace d2::obs {

enum class EventType : std::uint8_t {
  kLbMove,        // a = light node (moved), b = heavy node (split)
  kReplicaFetch,  // a = fetching node, b = bytes transferred
  kNodeDown,      // a = node
  kNodeUp,        // a = node
  kCacheHit,      // a = user/home id (cache-dependent), b unused
  kCacheMiss,     // a = user/home id (cache-dependent), b unused
  kBlockExpired,  // a = bytes reclaimed (TTL expiry), b unused
};

/// Stable wire name of a type ("lb_move", "node_down", ...).
const char* event_type_name(EventType t);

struct Event {
  SimTime time = 0;
  EventType type = EventType::kLbMove;
  std::int64_t a = 0;
  std::int64_t b = 0;

  bool operator==(const Event&) const = default;
};

class Tracer {
 public:
  /// `capacity` > 0: maximum events retained (oldest overwritten first).
  explicit Tracer(std::size_t capacity = 1 << 16);

  void record(SimTime time, EventType type, std::int64_t a = 0,
              std::int64_t b = 0);

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Total events ever recorded.
  std::uint64_t recorded() const;
  /// Events overwritten by ring wraparound.
  std::uint64_t dropped() const;

  /// Appends every retained event of `other` (oldest first) as if
  /// record()ed here — the deterministic merge step for per-trial tracers
  /// collected in trial order.
  void append(const Tracer& other);

  /// Retained events, oldest first.
  std::vector<Event> events() const;

  void clear();

  /// One JSON object per line:
  /// {"t":123,"type":"lb_move","a":4,"b":9}
  std::string to_json_lines() const;

  /// Writes to_json_lines() to `path`; throws PreconditionError when the
  /// file cannot be opened.
  void write_json_lines_file(const std::string& path) const;

 private:
  void record_locked(const Event& e) D2_REQUIRES(mu_);
  std::vector<Event> events_locked() const D2_REQUIRES(mu_);

  mutable Mutex mu_;
  const std::size_t capacity_;
  // Grows to capacity_, then circular; next_ is the overwrite position
  // once full.
  std::vector<Event> ring_ D2_GUARDED_BY(mu_);
  std::size_t next_ D2_GUARDED_BY(mu_) = 0;
  std::uint64_t recorded_ D2_GUARDED_BY(mu_) = 0;
};

}  // namespace d2::obs
