#include "obs/tracer.h"

#include <fstream>

#include "common/assert.h"

namespace d2::obs {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kLbMove:
      return "lb_move";
    case EventType::kReplicaFetch:
      return "replica_fetch";
    case EventType::kNodeDown:
      return "node_down";
    case EventType::kNodeUp:
      return "node_up";
    case EventType::kCacheHit:
      return "cache_hit";
    case EventType::kCacheMiss:
      return "cache_miss";
    case EventType::kBlockExpired:
      return "block_expired";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  D2_REQUIRE(capacity > 0);
  ring_.reserve(capacity);
}

void Tracer::record_locked(const Event& e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % capacity_;
}

void Tracer::record(SimTime time, EventType type, std::int64_t a,
                    std::int64_t b) {
  MutexLock lock(mu_);
  record_locked(Event{time, type, a, b});
}

std::size_t Tracer::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::uint64_t Tracer::recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<Event> Tracer::events_locked() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Once wrapped, `next_` points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> Tracer::events() const {
  MutexLock lock(mu_);
  return events_locked();
}

void Tracer::append(const Tracer& other) {
  D2_REQUIRE_MSG(&other != this, "cannot append a tracer to itself");
  const std::vector<Event> incoming = other.events();
  MutexLock lock(mu_);
  for (const Event& e : incoming) record_locked(e);
}

void Tracer::clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string Tracer::to_json_lines() const {
  std::vector<Event> snapshot;
  {
    MutexLock lock(mu_);
    snapshot = events_locked();
  }
  std::string out;
  for (const Event& e : snapshot) {
    out += "{\"t\":" + std::to_string(e.time);
    out += ",\"type\":\"";
    out += event_type_name(e.type);
    out += "\",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += "}\n";
  }
  return out;
}

void Tracer::write_json_lines_file(const std::string& path) const {
  std::ofstream f(path);
  D2_REQUIRE_MSG(f.good(), "cannot open trace output file: " + path);
  f << to_json_lines();
}

}  // namespace d2::obs
