// Arc-partitioned simulation machinery: the deterministic cross-arc
// mailbox and the worker pool that executes per-arc lanes.
//
// The partitioned Simulator (sim/simulator.h) owns one EventQueue per
// arc plus a global queue and merges them serially by a (time, order)
// key. When it opens a parallel window or an arc phase, each arc's
// events/ops run on a lane confined to that arc's state. A lane may push
// onto its own queue directly, but anything else it schedules — events
// past the window, cross-arc traffic — is staged here as a timestamped
// message and released only at the next barrier, in the deterministic
// total order (time, src_arc, seq): seq is the per-source posting index,
// so the release order is a pure function of what each lane did, never
// of thread interleaving. DESIGN.md §9 derives why this reproduces the
// serial schedule bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/event_queue.h"

namespace d2::sim {

/// Partitioning knobs for the Simulator (mirrored from SystemConfig by
/// the experiment drivers).
struct ArcConfig {
  int arcs = 1;     // keyspace partitions (P)
  int workers = 1;  // lanes executed concurrently; 1 = fully serial
  /// Conservative sync-horizon cap, kept as an explicit fallback / test
  /// knob: when > 0, parallel windows never span more than this much
  /// simulated time past their first event. The default 0 engages the
  /// adaptive horizon (DESIGN.md §12): windows extend all the way to the
  /// next global event, further capped by the mailbox watermark only when
  /// a committed cross-arc send is outstanding at window open — which the
  /// barrier discipline (every barrier fully drains the mailbox) makes
  /// impossible today, so 0 is both the fastest and an always-correct
  /// setting. Output is byte-identical for any value (window-trace
  /// differential tests in tests/test_partition.cc).
  SimTime lookahead = 0;
  /// Scheduler backend for every queue: the timing wheel, or the binary
  /// heap kept as the differential reference (`--scheduler heap`). Pop
  /// order is identical either way.
  SchedulerKind scheduler = SchedulerKind::kWheel;
};

/// Deterministic cross-arc message buffer. post() is called by lanes
/// (each lane writes only its own staging vector — single-writer, no
/// locks); deliver() is called by the coordinator at a barrier and
/// drains everything in (time, src_arc, seq) order.
class Mailbox {
 public:
  /// watermark() when nothing is staged.
  static constexpr SimTime kNoWatermark = std::numeric_limits<SimTime>::max();

  void reset(int arcs) {
    lanes_.assign(static_cast<std::size_t>(arcs), {});
    floor_ = 0;
  }

  /// Stages `fn` for arc `dst_arc` at simulated time `time`. Only the
  /// lane running arc `src_arc` may pass that src (single-writer rule).
  void post(int src_arc, SimTime time, int dst_arc, const EventFn& fn) {
    auto& lane = lanes_[static_cast<std::size_t>(src_arc)];
    lane.push_back(Msg{time, dst_arc, fn});
  }

  bool empty() const {
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  std::size_t staged() const {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.size();
    return n;
  }

  /// The earliest committed-but-undelivered cross-arc send across all
  /// source lanes, or kNoWatermark when nothing is staged. This is the
  /// adaptive sync horizon's per-window bound (DESIGN.md §12): a window
  /// may extend to the next global event unless a committed send would
  /// land inside it first. Coordinator-only (lanes may be appending).
  SimTime watermark() const {
    SimTime wm = kNoWatermark;
    for (const auto& lane : lanes_) {
      for (const Msg& m : lane) wm = std::min(wm, m.time);
    }
    return wm;
  }

  /// Sets the delivery floor: the start of the window whose lanes are
  /// about to post. Every message staged from now on must target a time
  /// at or after it — a send into the past would mean a lane outran the
  /// horizon, the exact corruption the watermark invariant guards.
  void set_floor(SimTime floor) { floor_ = floor; }
  SimTime floor() const { return floor_; }

  /// Audits the watermark invariant: no staged message precedes the
  /// delivery floor. Throws InvariantError naming the violation.
  /// Coordinator-only, like watermark().
  void check_invariants() const {
    for (const auto& lane : lanes_) {
      for (const Msg& m : lane) {
        D2_ASSERT_MSG(m.time >= floor_,
                      "mailbox: staged cross-arc send precedes the window "
                      "delivery floor");
      }
    }
  }

  /// Drains every staged message into `sink(time, src_arc, seq, dst_arc,
  /// fn)` in (time, src_arc, seq) order, where seq is the message's
  /// posting index within its source lane. Coordinator-only.
  template <class Sink>
  void deliver(Sink&& sink) {
    refs_.clear();
    for (std::uint32_t src_arc = 0; src_arc < lanes_.size(); ++src_arc) {
      const auto& lane = lanes_[src_arc];
      for (std::uint32_t seq = 0; seq < lane.size(); ++seq) {
        refs_.push_back(Ref{lane[seq].time, src_arc, seq});
      }
    }
    std::sort(refs_.begin(), refs_.end(), [](const Ref& a, const Ref& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.src_arc != b.src_arc) return a.src_arc < b.src_arc;
      return a.seq < b.seq;
    });
    for (const Ref& r : refs_) {
      const Msg& m = lanes_[r.src_arc][r.seq];
      sink(m.time, static_cast<int>(r.src_arc), r.seq, m.dst_arc, m.fn);
    }
    for (auto& lane : lanes_) lane.clear();
  }

 private:
  struct Msg {
    SimTime time;
    int dst_arc;
    EventFn fn;  // trivially copyable; stored by value
  };
  struct Ref {
    SimTime time;
    std::uint32_t src_arc;
    std::uint32_t seq;
  };
  // Not mutex-guarded: each source lane writes only its own staging
  // vector (single-writer rule) and the coordinator drains between
  // windows — the arc checker, not a capability, owns this invariant.
  std::vector<std::vector<Msg>> lanes_ D2_SHARDED_BY_ARC(arc);  // index = source arc
  std::vector<Ref> refs_;  // scratch, reused across barriers
  SimTime floor_ = 0;      // delivery floor (watermark invariant)
};

/// Fixed pool of threads that executes fn(arc) for every arc of a phase
/// or window. With workers == 1 no threads exist and everything runs
/// inline on the caller — the exact same code path the parallel build
/// takes, minus the handoff — which is what makes `--arc-workers 1`
/// trivially identical to the pre-partition engine. The calling thread
/// always participates as one of the workers. Exceptions thrown by
/// lanes (e.g. InvariantError from a paranoid audit) are captured and
/// the first one rethrown on the caller after the barrier.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return workers_; }

  /// Runs fn(arc) for arc in [0, arcs), distributing arcs over the
  /// workers; returns once every arc finished. fn must confine itself to
  /// arc-owned state (see the lane rules in sim/simulator.h).
  // d2-lint: allow(std-function) — one call per barrier, not per event
  void run_arcs(int arcs, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  /// Claims and runs arcs until none remain. Entered and left holding
  /// mu_; the lock is dropped around each fn() call.
  // d2-lint: allow(std-function) — one call per barrier, not per event
  void work(const std::function<void(int)>& fn) D2_REQUIRES(mu_);

  const int workers_;
  std::vector<std::thread> threads_;  // workers_ - 1 of them

  Mutex mu_;
  CondVar start_cv_;
  CondVar done_cv_;
  // d2-lint: allow(std-function) — handoff pointer, never invoked per event
  const std::function<void(int)>* job_ D2_GUARDED_BY(mu_) = nullptr;  // null = idle
  std::uint64_t generation_ D2_GUARDED_BY(mu_) = 0;  // bumped per run_arcs call
  int arcs_total_ D2_GUARDED_BY(mu_) = 0;
  int next_arc_ D2_GUARDED_BY(mu_) = 0;   // next unclaimed arc
  int done_arcs_ D2_GUARDED_BY(mu_) = 0;  // completed lanes this generation
  std::exception_ptr first_error_ D2_GUARDED_BY(mu_);
  bool shutdown_ D2_GUARDED_BY(mu_) = false;
};

}  // namespace d2::sim
