#include "sim/failure.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.h"

namespace d2::sim {

namespace {
SimTime hours_to_sim(double h) {
  return static_cast<SimTime>(h * 3600.0 * 1e6);
}

// Merge overlapping [start, end) intervals in place.
void merge_intervals(std::vector<std::pair<SimTime, SimTime>>& iv) {
  if (iv.empty()) return;
  std::sort(iv.begin(), iv.end());
  std::vector<std::pair<SimTime, SimTime>> out;
  out.push_back(iv[0]);
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv[i].second);
    } else {
      out.push_back(iv[i]);
    }
  }
  iv = std::move(out);
}
}  // namespace

FailureTrace FailureTrace::generate(const FailureParams& params, Rng& rng) {
  D2_REQUIRE(params.node_count > 0);
  D2_REQUIRE(params.duration > 0);
  FailureTrace trace;
  trace.node_count_ = params.node_count;
  trace.duration_ = params.duration;
  trace.down_.resize(static_cast<std::size_t>(params.node_count));

  // Independent per-node exponential up/down alternation.
  for (int n = 0; n < params.node_count; ++n) {
    SimTime t = 0;
    // Random phase: start somewhere inside an up period.
    t += static_cast<SimTime>(rng.exponential(params.mttf_hours) * 3600e6 *
                              rng.next_double());
    while (t < params.duration) {
      const SimTime up = hours_to_sim(rng.exponential(params.mttf_hours));
      t += up;
      if (t >= params.duration) break;
      const SimTime down = hours_to_sim(rng.exponential(params.mttr_hours));
      trace.down_[static_cast<std::size_t>(n)].emplace_back(
          t, std::min(t + down, params.duration));
      t += down;
    }
  }

  // Correlated mass-failure events (Poisson arrivals).
  const double events_per_us = params.correlated_events_per_day / (24.0 * 3600e6);
  if (events_per_us > 0) {
    SimTime t = static_cast<SimTime>(rng.exponential(1.0 / events_per_us));
    while (t < params.duration) {
      const SimTime outage =
          hours_to_sim(rng.exponential(params.correlated_outage_hours));
      for (int n = 0; n < params.node_count; ++n) {
        if (rng.bernoulli(params.correlated_fraction)) {
          trace.down_[static_cast<std::size_t>(n)].emplace_back(
              t, std::min(t + outage, params.duration));
        }
      }
      t += static_cast<SimTime>(rng.exponential(1.0 / events_per_us));
    }
  }

  trace.finalize();
  return trace;
}

FailureTrace FailureTrace::all_up(int node_count, SimTime duration) {
  D2_REQUIRE(node_count > 0);
  FailureTrace trace;
  trace.node_count_ = node_count;
  trace.duration_ = duration;
  trace.down_.resize(static_cast<std::size_t>(node_count));
  return trace;
}

FailureTrace FailureTrace::from_intervals(
    int node_count, SimTime duration, const std::vector<DownInterval>& downs) {
  FailureTrace trace = all_up(node_count, duration);
  for (const DownInterval& d : downs) {
    D2_REQUIRE(d.node >= 0 && d.node < node_count);
    D2_REQUIRE(d.start < d.end);
    // Clamp to the trace window. An interval starting at/after `duration`
    // lies entirely outside the trace: skip it rather than emplacing an
    // inverted [start, min(end, duration)) pair, which would corrupt
    // merge_intervals ordering, the is_up binary search and finalize().
    if (d.start >= duration) continue;
    trace.down_[static_cast<std::size_t>(d.node)].emplace_back(
        d.start, std::min(d.end, duration));
  }
  trace.finalize();
  return trace;
}

FailureTrace FailureTrace::read(std::istream& is) {
  std::string line;
  int node_count = 0;
  SimTime duration = 0;
  bool have_header = false;
  std::vector<DownInterval> downs;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      std::istringstream hs(line.substr(first + 1));
      std::string tag, version;
      if (hs >> tag >> version >> node_count >> duration &&
          tag == "d2-failures") {
        have_header = true;
      }
      continue;
    }
    std::istringstream ls(line);
    DownInterval d{};
    D2_REQUIRE_MSG(static_cast<bool>(ls >> d.node >> d.start >> d.end),
                   "malformed failure line " + std::to_string(line_no));
    downs.push_back(d);
  }
  D2_REQUIRE_MSG(have_header, "missing '# d2-failures v1 <nodes> <duration>'");
  D2_REQUIRE_MSG(node_count > 0, "failure trace header: node_count must be > 0");
  D2_REQUIRE_MSG(duration > 0, "failure trace header: duration must be > 0");
  return from_intervals(node_count, duration, downs);
}

void FailureTrace::write(std::ostream& os) const {
  os << "# d2-failures v1 " << node_count_ << ' ' << duration_ << '\n';
  for (int n = 0; n < node_count_; ++n) {
    for (const auto& [start, end] : down_[static_cast<std::size_t>(n)]) {
      os << n << ' ' << start << ' ' << end << '\n';
    }
  }
}

void FailureTrace::finalize() {
  transitions_.clear();
  for (int n = 0; n < node_count_; ++n) {
    auto& iv = down_[static_cast<std::size_t>(n)];
    merge_intervals(iv);
    for (const auto& [start, end] : iv) {
      transitions_.push_back(Transition{start, n, false});
      // Nodes still down when the trace ends come back at the boundary,
      // so consumers see a well-defined all-up state after the trace.
      transitions_.push_back(Transition{std::min(end, duration_), n, true});
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
}

bool FailureTrace::is_up(int node, SimTime t) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  const auto& iv = down_[static_cast<std::size_t>(node)];
  // First interval with start > t; the preceding one may cover t.
  auto it = std::upper_bound(
      iv.begin(), iv.end(), t,
      [](SimTime v, const std::pair<SimTime, SimTime>& p) { return v < p.first; });
  if (it == iv.begin()) return true;
  --it;
  return t >= it->second;
}

const std::vector<std::pair<SimTime, SimTime>>& FailureTrace::down_intervals(
    int node) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  return down_[static_cast<std::size_t>(node)];
}

double FailureTrace::fraction_up(SimTime t) const {
  int up = 0;
  for (int n = 0; n < node_count_; ++n) {
    if (is_up(n, t)) ++up;
  }
  return static_cast<double>(up) / static_cast<double>(node_count_);
}

double FailureTrace::group_failure_probability(int group_size, int samples,
                                               Rng& rng) const {
  D2_REQUIRE(group_size > 0 && group_size <= node_count_);
  D2_REQUIRE(samples > 0);
  int failures = 0;
  for (int s = 0; s < samples; ++s) {
    // Sample group_size distinct nodes.
    std::vector<int> group;
    while (static_cast<int>(group.size()) < group_size) {
      int n = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(node_count_)));
      if (std::find(group.begin(), group.end(), n) == group.end()) {
        group.push_back(n);
      }
    }
    // The group is "ever all down" iff at the start of some member's down
    // interval, all other members are also down.
    bool all_down_ever = false;
    for (int member : group) {
      for (const auto& [start, end] : down_intervals(member)) {
        (void)end;
        bool all_down = true;
        for (int other : group) {
          if (other == member) continue;
          if (is_up(other, start)) {
            all_down = false;
            break;
          }
        }
        if (all_down) {
          all_down_ever = true;
          break;
        }
      }
      if (all_down_ever) break;
    }
    if (all_down_ever) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(samples);
}

}  // namespace d2::sim
