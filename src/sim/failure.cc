#include "sim/failure.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.h"

namespace d2::sim {

namespace {
SimTime hours_to_sim(double h) {
  return static_cast<SimTime>(h * 3600.0 * 1e6);
}
}  // namespace

FailureTrace FailureTrace::generate(const FailureParams& params, Rng& rng) {
  D2_REQUIRE(params.node_count > 0);
  D2_REQUIRE(params.duration > 0);
  FailureTrace trace;
  trace.node_count_ = params.node_count;
  trace.duration_ = params.duration;

  // Raw intervals accumulate in one flat buffer; finalize() sorts them
  // per node and packs them into the arena.
  std::vector<DownInterval> raw;

  // Independent per-node exponential up/down alternation.
  for (int n = 0; n < params.node_count; ++n) {
    SimTime t = 0;
    // Random phase: start somewhere inside an up period.
    t += static_cast<SimTime>(rng.exponential(params.mttf_hours) * 3600e6 *
                              rng.next_double());
    while (t < params.duration) {
      const SimTime up = hours_to_sim(rng.exponential(params.mttf_hours));
      t += up;
      if (t >= params.duration) break;
      const SimTime down = hours_to_sim(rng.exponential(params.mttr_hours));
      raw.push_back(DownInterval{n, t, std::min(t + down, params.duration)});
      t += down;
    }
  }

  // Correlated mass-failure events (Poisson arrivals).
  const double events_per_us = params.correlated_events_per_day / (24.0 * 3600e6);
  if (events_per_us > 0) {
    SimTime t = static_cast<SimTime>(rng.exponential(1.0 / events_per_us));
    while (t < params.duration) {
      const SimTime outage =
          hours_to_sim(rng.exponential(params.correlated_outage_hours));
      for (int n = 0; n < params.node_count; ++n) {
        if (rng.bernoulli(params.correlated_fraction)) {
          raw.push_back(DownInterval{n, t, std::min(t + outage, params.duration)});
        }
      }
      t += static_cast<SimTime>(rng.exponential(1.0 / events_per_us));
    }
  }

  trace.finalize(raw);
  return trace;
}

FailureTrace FailureTrace::all_up(int node_count, SimTime duration) {
  D2_REQUIRE(node_count > 0);
  FailureTrace trace;
  trace.node_count_ = node_count;
  trace.duration_ = duration;
  trace.down_.resize(static_cast<std::size_t>(node_count));
  return trace;
}

FailureTrace FailureTrace::from_intervals(
    int node_count, SimTime duration, const std::vector<DownInterval>& downs) {
  FailureTrace trace = all_up(node_count, duration);
  std::vector<DownInterval> raw;
  raw.reserve(downs.size());
  for (const DownInterval& d : downs) {
    D2_REQUIRE(d.node >= 0 && d.node < node_count);
    D2_REQUIRE(d.start < d.end);
    // Clamp to the trace window. An interval starting at/after `duration`
    // lies entirely outside the trace: skip it rather than keeping an
    // inverted [start, min(end, duration)) pair, which would corrupt
    // interval merging, the is_up binary search and finalize().
    if (d.start >= duration) continue;
    raw.push_back(DownInterval{d.node, d.start, std::min(d.end, duration)});
  }
  trace.finalize(raw);
  return trace;
}

FailureTrace FailureTrace::read(std::istream& is) {
  std::string line;
  int node_count = 0;
  SimTime duration = 0;
  bool have_header = false;
  std::vector<DownInterval> downs;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      std::istringstream hs(line.substr(first + 1));
      std::string tag, version;
      if (hs >> tag >> version >> node_count >> duration &&
          tag == "d2-failures") {
        have_header = true;
      }
      continue;
    }
    std::istringstream ls(line);
    DownInterval d{};
    D2_REQUIRE_MSG(static_cast<bool>(ls >> d.node >> d.start >> d.end),
                   "malformed failure line " + std::to_string(line_no));
    downs.push_back(d);
  }
  D2_REQUIRE_MSG(have_header, "missing '# d2-failures v1 <nodes> <duration>'");
  D2_REQUIRE_MSG(node_count > 0, "failure trace header: node_count must be > 0");
  D2_REQUIRE_MSG(duration > 0, "failure trace header: duration must be > 0");
  return from_intervals(node_count, duration, downs);
}

void FailureTrace::write(std::ostream& os) const {
  os << "# d2-failures v1 " << node_count_ << ' ' << duration_ << '\n';
  for (int n = 0; n < node_count_; ++n) {
    for (const auto& [start, end] : down_[static_cast<std::size_t>(n)]) {
      os << n << ' ' << start << ' ' << end << '\n';
    }
  }
}

void FailureTrace::finalize(std::vector<DownInterval>& raw) {
  // Group per node and merge overlaps: sorting by (node, start, end)
  // makes each node's run contiguous and start-ordered, so one linear
  // pass merges in place exactly like the old per-node vectors did.
  std::sort(raw.begin(), raw.end(),
            [](const DownInterval& a, const DownInterval& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::size_t merged = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (merged > 0 && raw[merged - 1].node == raw[i].node &&
        raw[i].start <= raw[merged - 1].end) {
      raw[merged - 1].end = std::max(raw[merged - 1].end, raw[i].end);
    } else {
      raw[merged++] = raw[i];
    }
  }
  raw.resize(merged);

  // Pack every interval into one arena block; down_[n] views its run.
  auto* flat = arena_.alloc_array<std::pair<SimTime, SimTime>>(raw.size());
  down_.assign(static_cast<std::size_t>(node_count_), {});
  std::size_t i = 0;
  while (i < raw.size()) {
    const int n = raw[i].node;
    const std::size_t first = i;
    for (; i < raw.size() && raw[i].node == n; ++i) {
      flat[i] = {raw[i].start, raw[i].end};
    }
    down_[static_cast<std::size_t>(n)] = {flat + first, i - first};
  }

  transitions_.clear();
  transitions_.reserve(2 * raw.size());
  for (int n = 0; n < node_count_; ++n) {
    for (const auto& [start, end] : down_[static_cast<std::size_t>(n)]) {
      transitions_.push_back(Transition{start, n, false});
      // Nodes still down when the trace ends come back at the boundary,
      // so consumers see a well-defined all-up state after the trace.
      transitions_.push_back(Transition{std::min(end, duration_), n, true});
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
}

bool FailureTrace::is_up(int node, SimTime t) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  const auto& iv = down_[static_cast<std::size_t>(node)];
  // First interval with start > t; the preceding one may cover t.
  auto it = std::upper_bound(
      iv.begin(), iv.end(), t,
      [](SimTime v, const std::pair<SimTime, SimTime>& p) { return v < p.first; });
  if (it == iv.begin()) return true;
  --it;
  return t >= it->second;
}

std::span<const std::pair<SimTime, SimTime>> FailureTrace::down_intervals(
    int node) const {
  D2_REQUIRE(node >= 0 && node < node_count_);
  return down_[static_cast<std::size_t>(node)];
}

double FailureTrace::fraction_up(SimTime t) const {
  int up = 0;
  for (int n = 0; n < node_count_; ++n) {
    if (is_up(n, t)) ++up;
  }
  return static_cast<double>(up) / static_cast<double>(node_count_);
}

double FailureTrace::group_failure_probability(int group_size, int samples,
                                               Rng& rng) const {
  D2_REQUIRE(group_size > 0 && group_size <= node_count_);
  D2_REQUIRE(samples > 0);
  int failures = 0;
  for (int s = 0; s < samples; ++s) {
    // Sample group_size distinct nodes.
    std::vector<int> group;
    while (static_cast<int>(group.size()) < group_size) {
      int n = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(node_count_)));
      if (std::find(group.begin(), group.end(), n) == group.end()) {
        group.push_back(n);
      }
    }
    // The group is "ever all down" iff at the start of some member's down
    // interval, all other members are also down.
    bool all_down_ever = false;
    for (int member : group) {
      for (const auto& [start, end] : down_intervals(member)) {
        (void)end;
        bool all_down = true;
        for (int other : group) {
          if (other == member) continue;
          if (is_up(other, start)) {
            all_down = false;
            break;
          }
        }
        if (all_down) {
          all_down_ever = true;
          break;
        }
      }
      if (all_down_ever) break;
    }
    if (all_down_ever) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(samples);
}

}  // namespace d2::sim
