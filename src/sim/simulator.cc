#include "sim/simulator.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::sim {

thread_local constinit Simulator::LaneCtx Simulator::tl_lane_;

namespace {
std::vector<EventQueue> make_queues(const ArcConfig& cfg) {
  std::vector<EventQueue> queues;
  queues.reserve(static_cast<std::size_t>(cfg.arcs) + 1);
  for (int i = 0; i <= cfg.arcs; ++i) queues.emplace_back(cfg.scheduler);
  return queues;
}
}  // namespace

Simulator::Simulator(const ArcConfig& cfg)
    : arcs_(cfg.arcs),
      lookahead_(cfg.lookahead),
      queues_(make_queues(cfg)),
      pool_(cfg.workers),
      lane_pushes_(static_cast<std::size_t>(cfg.arcs), 0),
      lane_events_(static_cast<std::size_t>(cfg.arcs), 0),
      lane_last_time_(static_cast<std::size_t>(cfg.arcs), 0) {
  D2_REQUIRE_MSG(cfg.arcs >= 1, "simulator needs at least one arc");
  D2_REQUIRE_MSG(cfg.workers >= 1, "simulator needs at least one worker");
  D2_REQUIRE(cfg.lookahead >= 0);
  mailbox_.reset(cfg.arcs);
}

int Simulator::min_queue() const {
  int best = -1;
  SimTime best_time = 0;
  std::uint64_t best_order = 0;
  for (int qi = 0; qi <= arcs_; ++qi) {
    const EventQueue& q = queues_[static_cast<std::size_t>(qi)];
    if (q.empty()) continue;
    const SimTime t = q.next_time();
    const std::uint64_t o = q.next_order();
    if (best == -1 || t < best_time || (t == best_time && o < best_order)) {
      best = qi;
      best_time = t;
      best_order = o;
    }
  }
  return best;
}

void Simulator::step_queue(int qi) {
  EventQueue::Event ev = queues_[static_cast<std::size_t>(qi)].pop();
  D2_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ++events_processed_;
  if (events_counter_ != nullptr) events_counter_->add(1);
  ev.fn();
}

void Simulator::run() {
  for (int qi = min_queue(); qi != -1; qi = min_queue()) {
    step_queue(qi);
  }
}

bool Simulator::step() {
  const int qi = min_queue();
  if (qi == -1) return false;
  step_queue(qi);
  return true;
}

void Simulator::run_until(SimTime t) {
  D2_REQUIRE(t >= now_);
  const bool parallel = pool_.workers() > 1 && arcs_ > 1;
  while (true) {
    const int qi = min_queue();
    if (qi == -1) break;
    const EventQueue& q = queues_[static_cast<std::size_t>(qi)];
    const SimTime head = q.next_time();
    if (head > t) break;
    if (!parallel || qi == arcs_) {
      // Global events (and the whole serial engine) run on the
      // coordinator in merged (time, order) sequence.
      step_queue(qi);
      continue;
    }
    // The earliest event is arc-local: open a parallel window over every
    // arc event strictly before the next global event (ties with a
    // global event stay serial so the merged tie-break by order key
    // decides, exactly as with one worker), capped by the run bound and
    // the conservative lookahead.
    SimTime window_end = t == std::numeric_limits<SimTime>::max()
                             ? t
                             : t + 1;  // half-open: include events at t
    const EventQueue& global = queues_[static_cast<std::size_t>(arcs_)];
    if (!global.empty()) window_end = std::min(window_end, global.next_time());
    if (lookahead_ > 0) window_end = std::min(window_end, head + lookahead_);
    if (window_end <= head) {
      // Lookahead too tight to cover even the head event; run it
      // serially to guarantee progress.
      step_queue(qi);
      continue;
    }
    run_window(window_end);
  }
  now_ = t;
}

void Simulator::run_window(SimTime window_end) {
  D2_REQUIRE_MSG(window_end_ == 0 && !in_lane(), "nested parallel window");
  window_base_ = order_counter_;
  window_end_ = window_end;
  std::fill(lane_pushes_.begin(), lane_pushes_.end(), 0);
  std::fill(lane_events_.begin(), lane_events_.end(), 0);
  pool_.run_arcs(arcs_, [this, window_end](int arc) {
    const auto arc_i = static_cast<std::size_t>(arc);
    EventQueue& q = queues_[arc_i];
    LaneGuard guard(this, arc, now_);
    std::uint64_t n = 0;
    SimTime last = now_;
    while (!q.empty() && q.next_time() < window_end) {
      EventQueue::Event ev = q.pop();
      D2_ASSERT(ev.time >= last);
      last = ev.time;
      tl_lane_.now = ev.time;
      ++n;
      ev.fn();
    }
    lane_events_[arc_i] = n;
    lane_last_time_[arc_i] = last;
  });
  std::uint64_t total = 0;
  SimTime last = now_;
  for (int arc = 0; arc < arcs_; ++arc) {
    const auto arc_i = static_cast<std::size_t>(arc);
    total += lane_events_[arc_i];
    if (lane_events_[arc_i] > 0) {
      last = std::max(last, lane_last_time_[arc_i]);
    }
  }
  events_processed_ += total;
  if (events_counter_ != nullptr && total > 0) {
    events_counter_->add(static_cast<std::int64_t>(total));
  }
  now_ = last;
  window_end_ = 0;
  // Jump the merge-key counter past every lane stripe so later pushes
  // order after everything pushed inside the window.
  order_counter_ =
      window_base_ + static_cast<std::uint64_t>(arcs_) * kLaneOrderStride;
  deliver_mailbox();
}

// d2-lint: allow(std-function) — one type-erased call per phase barrier
void Simulator::run_arc_phase(const std::function<void(int)>& fn) {
  D2_REQUIRE_MSG(window_end_ == 0 && !in_lane(),
                 "run_arc_phase inside a window or lane");
  pool_.run_arcs(arcs_, [this, &fn](int arc) {
    LaneGuard guard(this, arc, now_);
    fn(arc);
  });
  deliver_mailbox();
}

void Simulator::deliver_mailbox() {
  mailbox_.deliver([this](SimTime t, int /*src*/, std::uint32_t /*seq*/,
                          int dst, const EventFn& fn) {
    D2_ASSERT_MSG(t >= now_, "mailboxed event scheduled into the past");
    queues_[static_cast<std::size_t>(dst)].push_ordered(t, order_counter_++,
                                                        fn);
  });
}

SimTime Simulator::next_event_time() const {
  const int qi = min_queue();
  if (qi == -1) return std::numeric_limits<SimTime>::max();
  return queues_[static_cast<std::size_t>(qi)].next_time();
}

std::size_t Simulator::events_pending() const {
  std::size_t n = 0;
  for (const EventQueue& q : queues_) n += q.pending();
  return n;
}

void Simulator::bind_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    events_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter("sim.events_processed");
  // Contribute (not overwrite) any events processed before binding, so
  // several simulators — parallel trials — sharing one registry sum
  // instead of clobbering each other.
  if (events_processed_ > 0) {
    events_counter_->add(static_cast<std::int64_t>(events_processed_));
  }
}

void Simulator::export_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("sim.events_pending")
      .set(static_cast<double>(events_pending()));
  metrics_->gauge("sim.clock_seconds").set(to_seconds(now_));
}

}  // namespace d2::sim
