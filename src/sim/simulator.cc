#include "sim/simulator.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::sim {

thread_local constinit Simulator::LaneCtx Simulator::tl_lane_;

namespace {
std::vector<EventQueue> make_queues(const ArcConfig& cfg) {
  std::vector<EventQueue> queues;
  queues.reserve(static_cast<std::size_t>(cfg.arcs) + 1);
  for (int i = 0; i <= cfg.arcs; ++i) queues.emplace_back(cfg.scheduler);
  return queues;
}
}  // namespace

Simulator::Simulator(const ArcConfig& cfg)
    : arcs_(cfg.arcs),
      lookahead_(cfg.lookahead),
      queues_(make_queues(cfg)),
      pool_(cfg.workers),
      lane_pushes_(static_cast<std::size_t>(cfg.arcs), 0),
      lane_events_(static_cast<std::size_t>(cfg.arcs), 0),
      lane_last_time_(static_cast<std::size_t>(cfg.arcs), 0),
      lane_time_sum_(static_cast<std::size_t>(cfg.arcs), 0) {
  D2_REQUIRE_MSG(cfg.arcs >= 1, "simulator needs at least one arc");
  D2_REQUIRE_MSG(cfg.workers >= 1, "simulator needs at least one worker");
  D2_REQUIRE(cfg.lookahead >= 0);
  mailbox_.reset(cfg.arcs);
}

int Simulator::min_queue() const {
  int best = -1;
  SimTime best_time = 0;
  std::uint64_t best_order = 0;
  for (int qi = 0; qi <= arcs_; ++qi) {
    const EventQueue& q = queues_[static_cast<std::size_t>(qi)];
    if (q.empty()) continue;
    const SimTime t = q.next_time();
    const std::uint64_t o = q.next_order();
    if (best == -1 || t < best_time || (t == best_time && o < best_order)) {
      best = qi;
      best_time = t;
      best_order = o;
    }
  }
  return best;
}

void Simulator::step_queue(int qi) {
  EventQueue::Event ev = queues_[static_cast<std::size_t>(qi)].pop();
  D2_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ++events_processed_;
  time_checksum_ += static_cast<std::uint64_t>(ev.time);
  if (events_counter_ != nullptr) events_counter_->add(1);
  ev.fn();
}

// Coordinator-internal commit point; an empty hook is a no-op by design.
// d2-lint: allow(unguarded-mutator) — the hook owns its own validation
bool Simulator::commit() {
  if (!commit_hook_) return false;
  const std::size_t before = events_pending();
  commit_hook_();
  return events_pending() != before;
}

void Simulator::run() {
  while (true) {
    const int qi = min_queue();
    if (qi == -1) {
      // Idle fixpoint: resolving commitments may schedule completions.
      if (commit()) continue;
      break;
    }
    // Commit point: cross-arc commitments resolve before any global event
    // observes shared state. Resolution may change the merged head.
    if (qi == arcs_ && commit()) continue;
    step_queue(qi);
  }
}

bool Simulator::step() {
  int qi = min_queue();
  if (qi == -1) {
    if (!commit()) return false;
    qi = min_queue();
    if (qi == -1) return false;
  } else if (qi == arcs_ && commit()) {
    qi = min_queue();
  }
  step_queue(qi);
  return true;
}

void Simulator::run_until(SimTime t) {
  D2_REQUIRE(t >= now_);
  const bool parallel = pool_.workers() > 1 && arcs_ > 1;
  while (true) {
    const int qi = min_queue();
    if (qi == -1 || queues_[static_cast<std::size_t>(qi)].next_time() > t) {
      // Nothing due: resolve outstanding commitments. Completions clamp
      // to >= now(), so they may land at or before t — loop to the
      // fixpoint where a commit adds nothing due.
      if (commit() && next_event_time() <= t) continue;
      break;
    }
    if (!parallel || qi == arcs_) {
      // Global events (and the whole serial engine) run on the
      // coordinator in merged (time, order) sequence, behind the commit
      // point when the head is global.
      if (qi == arcs_ && commit()) continue;  // head may have changed
      step_queue(qi);
      continue;
    }
    const SimTime head = queues_[static_cast<std::size_t>(qi)].next_time();
    // The earliest event is arc-local: open a parallel window over every
    // arc event strictly before the next global event (ties with a
    // global event stay serial so the merged tie-break by order key
    // decides, exactly as with one worker), capped by the run bound.
    SimTime window_end = t == std::numeric_limits<SimTime>::max()
                             ? t
                             : t + 1;  // half-open: include events at t
    const EventQueue& global = queues_[static_cast<std::size_t>(arcs_)];
    if (!global.empty()) window_end = std::min(window_end, global.next_time());
    // Adaptive sync horizon (DESIGN.md §12): every barrier fully drains
    // the mailbox, so at window-open no committed cross-arc send is
    // outstanding and the window runs all the way to the bound above. A
    // committed send (watermark) would cap it; the configured lookahead
    // stays available as an explicit conservative cap (windows shrink,
    // output is byte-identical — the window-trace differential tests).
    const SimTime wm = mailbox_.watermark();
    if (wm != Mailbox::kNoWatermark) {
      window_end = std::min(window_end, std::max(head + 1, wm));
    }
    if (lookahead_ > 0) window_end = std::min(window_end, head + lookahead_);
    if (window_end <= head) {
      // Horizon too tight to cover even the head event; run it serially
      // to guarantee progress.
      step_queue(qi);
      continue;
    }
    run_window(window_end);
  }
  now_ = t;
}

void Simulator::run_window(SimTime window_end) {
  D2_REQUIRE_MSG(window_end_ == 0 && !in_lane(), "nested parallel window");
  const SimTime window_start = now_;
  window_base_ = order_counter_;
  window_end_ = window_end;
  mailbox_.set_floor(window_end);
  std::fill(lane_pushes_.begin(), lane_pushes_.end(), 0);
  std::fill(lane_events_.begin(), lane_events_.end(), 0);
  std::fill(lane_time_sum_.begin(), lane_time_sum_.end(), 0);
  pool_.run_arcs(arcs_, [this, window_end](int arc) {
    const auto arc_i = static_cast<std::size_t>(arc);
    EventQueue& q = queues_[arc_i];
    LaneGuard guard(this, arc, now_);
    std::uint64_t n = 0;
    std::uint64_t sum = 0;
    SimTime last = now_;
    while (!q.empty() && q.next_time() < window_end) {
      EventQueue::Event ev = q.pop();
      D2_ASSERT(ev.time >= last);
      last = ev.time;
      tl_lane_.now = ev.time;
      ++n;
      sum += static_cast<std::uint64_t>(ev.time);
      ev.fn();
    }
    lane_events_[arc_i] = n;
    lane_time_sum_[arc_i] = sum;
    lane_last_time_[arc_i] = last;
  });
  const SimTime furthest = fold_lanes(window_start, window_end);
  now_ = furthest;
  window_end_ = 0;
  // Jump the merge-key counter past every lane stripe so later pushes
  // order after everything pushed inside the window.
  order_counter_ =
      window_base_ + static_cast<std::uint64_t>(arcs_) * kLaneOrderStride;
  deliver_mailbox();
}

void Simulator::run_op_window(
    SimTime window_end,
    // d2-lint: allow(std-function) — one type-erased call per window barrier
    const std::function<void(int)>& fn) {
  D2_REQUIRE_MSG(window_end_ == 0 && !in_lane(),
                 "run_op_window inside a window or lane");
  D2_REQUIRE_MSG(window_end > now_, "op window must extend past the clock");
  // Flush start is a commit point: commitments staged by events in
  // earlier windows must resolve before the ops observe shared state.
  commit();
  D2_REQUIRE_MSG(next_global_event_time() >= window_end,
                 "op window would span a pending global event");
  const SimTime window_start = now_;
  window_base_ = order_counter_;
  window_end_ = window_end;
  mailbox_.set_floor(window_end);
  std::fill(lane_pushes_.begin(), lane_pushes_.end(), 0);
  std::fill(lane_events_.begin(), lane_events_.end(), 0);
  std::fill(lane_time_sum_.begin(), lane_time_sum_.end(), 0);
  std::fill(lane_last_time_.begin(), lane_last_time_.end(), now_);
  pool_.run_arcs(arcs_, [this, &fn](int arc) {
    LaneGuard guard(this, arc, now_);
    fn(arc);
    // The lane clock ends at its last advance target (<= the last op this
    // lane applied); events past it stay queued for the next window.
    lane_last_time_[static_cast<std::size_t>(arc)] = tl_lane_.now;
  });
  const SimTime furthest = fold_lanes(window_start, window_end);
  window_end_ = 0;
  order_counter_ =
      window_base_ + static_cast<std::uint64_t>(arcs_) * kLaneOrderStride;
  deliver_mailbox();
  // Events left queued behind a lane's last advance must still be able to
  // pop (ev.time >= now_), so the clock advances to the furthest lane
  // time only when no earlier event is pending. Both quantities are
  // per-queue properties, so this clock is the same in serial and
  // parallel execution.
  now_ = std::max(now_, std::min(furthest, next_event_time()));
}

void Simulator::lane_advance(SimTime t) {
  // Direct tl_lane_ member reads, no reference — see now().
  D2_REQUIRE_MSG(tl_lane_.owner == this && window_end_ != 0,
                 "lane_advance outside an op-window lane");
  D2_REQUIRE_MSG(t >= tl_lane_.now, "lane clock may not go backwards");
  D2_REQUIRE_MSG(t < window_end_, "lane_advance past the op window end");
  const auto arc_i = static_cast<std::size_t>(tl_lane_.arc);
  EventQueue& q = queues_[arc_i];
  std::uint64_t n = 0;
  std::uint64_t sum = 0;
  SimTime last = tl_lane_.now;
  while (!q.empty() && q.next_time() <= t) {
    EventQueue::Event ev = q.pop();
    D2_ASSERT(ev.time >= last);
    last = ev.time;
    tl_lane_.now = ev.time;
    ++n;
    sum += static_cast<std::uint64_t>(ev.time);
    ev.fn();
  }
  lane_events_[arc_i] += n;
  lane_time_sum_[arc_i] += sum;
  tl_lane_.now = t;
}

SimTime Simulator::fold_lanes(SimTime window_start, SimTime window_end) {
  std::uint64_t total = 0;
  std::uint64_t lane_max = 0;
  SimTime furthest = window_start;
  for (int arc = 0; arc < arcs_; ++arc) {
    const auto arc_i = static_cast<std::size_t>(arc);
    total += lane_events_[arc_i];
    lane_max = std::max(lane_max, lane_events_[arc_i]);
    time_checksum_ += lane_time_sum_[arc_i];
    if (lane_events_[arc_i] > 0 || lane_last_time_[arc_i] > furthest) {
      furthest = std::max(furthest, lane_last_time_[arc_i]);
    }
  }
  events_processed_ += total;
  if (events_counter_ != nullptr && total > 0) {
    events_counter_->add(static_cast<std::int64_t>(total));
  }
  ++windows_;
  const SimTime span =
      window_end == std::numeric_limits<SimTime>::max()
          ? (furthest > window_start ? furthest - window_start : 0)
          : window_end - window_start;
  window_span_sum_ += span;
  window_span_max_ = std::max(window_span_max_, span);
  window_events_ += total;
  lane_busy_num_ += total;
  lane_busy_den_ += lane_max * static_cast<std::uint64_t>(arcs_);
  return furthest;
}

// d2-lint: allow(std-function) — one type-erased call per phase barrier
void Simulator::run_arc_phase(const std::function<void(int)>& fn) {
  D2_REQUIRE_MSG(window_end_ == 0 && !in_lane(),
                 "run_arc_phase inside a window or lane");
  commit();  // same commit point as an op-window flush
  mailbox_.set_floor(now_);
  pool_.run_arcs(arcs_, [this, &fn](int arc) {
    LaneGuard guard(this, arc, now_);
    fn(arc);
  });
  deliver_mailbox();
}

void Simulator::deliver_mailbox() {
  mailbox_.deliver([this](SimTime t, int /*src_arc*/, std::uint32_t /*seq*/,
                          int dst_arc, const EventFn& fn) {
    D2_ASSERT_MSG(t >= now_, "mailboxed event scheduled into the past");
    queues_[static_cast<std::size_t>(dst_arc)].push_ordered(
        t, order_counter_++, fn);
  });
}

SimTime Simulator::next_event_time() const {
  const int qi = min_queue();
  if (qi == -1) return std::numeric_limits<SimTime>::max();
  return queues_[static_cast<std::size_t>(qi)].next_time();
}

SimTime Simulator::next_global_event_time() const {
  const EventQueue& g = queues_[static_cast<std::size_t>(arcs_)];
  if (g.empty()) return std::numeric_limits<SimTime>::max();
  return g.next_time();
}

std::size_t Simulator::events_pending() const {
  std::size_t n = 0;
  for (const EventQueue& q : queues_) n += q.pending();
  return n;
}

void Simulator::bind_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    events_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter("sim.events_processed");
  // Contribute (not overwrite) any events processed before binding, so
  // several simulators — parallel trials — sharing one registry sum
  // instead of clobbering each other.
  if (events_processed_ > 0) {
    events_counter_->add(static_cast<std::int64_t>(events_processed_));
  }
}

void Simulator::export_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("sim.events_pending")
      .set(static_cast<double>(events_pending()));
  metrics_->gauge("sim.clock_seconds").set(to_seconds(now_));
  // Partition-coordinator window statistics (DESIGN.md §12): how wide
  // the parallel windows actually ran, how much work they carried, and
  // how evenly the lanes shared it (1.0 = perfectly balanced).
  metrics_->gauge("sim.window.count").set(static_cast<double>(windows_));
  metrics_->gauge("sim.window.span_mean_seconds")
      .set(windows_ > 0 ? to_seconds(window_span_sum_) /
                              static_cast<double>(windows_)
                        : 0.0);
  metrics_->gauge("sim.window.span_max_seconds")
      .set(to_seconds(window_span_max_));
  metrics_->gauge("sim.window.events_mean")
      .set(windows_ > 0 ? static_cast<double>(window_events_) /
                              static_cast<double>(windows_)
                        : 0.0);
  metrics_->gauge("sim.window.lane_busy_fraction")
      .set(lane_busy_den_ > 0 ? static_cast<double>(lane_busy_num_) /
                                    static_cast<double>(lane_busy_den_)
                              : 0.0);
}

}  // namespace d2::sim
