#include "sim/simulator.h"

#include "common/assert.h"

namespace d2::sim {

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  D2_REQUIRE(t >= now_);
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Event ev = queue_.pop();
  D2_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ++events_processed_;
  if (events_counter_ != nullptr) events_counter_->add(1);
  ev.fn();
  return true;
}

void Simulator::bind_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    events_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter("sim.events_processed");
  // Contribute (not overwrite) any events processed before binding, so
  // several simulators — parallel trials — sharing one registry sum
  // instead of clobbering each other.
  if (events_processed_ > 0) {
    events_counter_->add(static_cast<std::int64_t>(events_processed_));
  }
}

void Simulator::export_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("sim.events_pending")
      .set(static_cast<double>(queue_.pending()));
  metrics_->gauge("sim.clock_seconds").set(to_seconds(now_));
}

}  // namespace d2::sim
