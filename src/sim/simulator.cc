#include "sim/simulator.h"

#include "common/assert.h"

namespace d2::sim {

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  D2_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  D2_REQUIRE(delay >= 0);
  return queue_.push(now_ + delay, std::move(fn));
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  D2_REQUIRE(t >= now_);
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  now_ = t;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Event ev = queue_.pop();
  D2_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

}  // namespace d2::sim
