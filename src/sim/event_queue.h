// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) cancellation.
//
// Layout: a binary heap of lightweight {time, seq, slot} entries plus a
// slab of callback slots recycled through a free list. push/cancel/pop do
// no per-event heap allocation beyond the callback's own closure (the
// heap vector and the slab grow to the high-water mark and stay there).
// Cancellation frees the slot immediately and drops dead heap entries
// when they surface at the top, so `empty()`/`next_time()`/`pending()`
// are genuinely const O(1) reads (invariant: the heap top is live, or the
// heap is empty).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace d2::sim {

/// Opaque handle: slot index in the high 24 bits, a sequence tag in the
/// low 40 (distinguishes generations of a recycled slot).
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at time `t`. Events at equal times fire in insertion
  /// order. Returns an id usable with cancel().
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  SimTime next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Event pop();

  std::size_t pending() const { return live_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr int kSeqBits = 40;
  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;

  /// 16-byte heap entry: the seq tag (insertion order, for the FIFO
  /// tie-break) in the high 40 bits and the slab slot in the low 24, so
  /// comparing `tag` compares seq first and sift steps move one cache
  /// line's worth of entries.
  struct Entry {
    SimTime time;
    std::uint64_t tag;  // (seq & kSeqMask) << kSlotBits | slot
  };
  static std::uint64_t make_tag(std::uint32_t slot, std::uint64_t seq) {
    return ((seq & kSeqMask) << kSlotBits) | slot;
  }
  static std::uint32_t tag_slot(std::uint64_t tag) {
    return static_cast<std::uint32_t>(tag & kSlotMask);
  }
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.tag > b.tag;  // seq (high bits): insertion order for ties
    }
  };
  struct Slot {
    std::function<void()> fn;
    std::uint64_t seq = 0;           // seq of the current occupant
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  static EventId make_id(std::uint32_t slot, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(slot) << kSeqBits) | (seq & kSeqMask);
  }
  bool entry_live(const Entry& e) const {
    const Slot& s = slots_[tag_slot(e.tag)];
    return s.live && make_tag(tag_slot(e.tag), s.seq) == e.tag;
  }
  /// Restores the invariant after cancel/pop: discard heap entries whose
  /// slot was already freed until a live one (or nothing) is on top.
  void drop_dead_top();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace d2::sim
