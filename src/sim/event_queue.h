// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(1) cancellation.
//
// Layout: an ordering structure of lightweight per-slot entries over two
// parallel slot arrays — a hot 8-byte metadata word per slot (sequence
// tag, free-list link, liveness mark packed together, so a liveness
// check is one load and one compare) and a wide closure slab the
// ordering machinery never touches. Callbacks are InlineFunctions —
// closures live inside their slab slot, not behind a std::function heap
// cell — and push() constructs the closure directly in the slot (writing
// only the capture's footprint), so push/cancel/pop perform no heap
// allocation at all in steady state (all arrays grow to the high-water
// mark and stay there; tests/test_alloc_guard.cc enforces this).
//
// Two interchangeable scheduler backends order the slots
// (SchedulerKind, DESIGN.md §11):
//   - kWheel (default): a hierarchical timing wheel
//     (sim/timing_wheel.h) with O(1) amortized push/cancel/pop;
//     cancellation unlinks the slot from its intrusive bucket list.
//   - kHeap: the original binary heap of {time, seq} entries, retained
//     as the differential reference (`--scheduler heap`). Cancellation
//     flips the metadata word — it never touches the heap — and dead
//     entries are dropped when they surface at the top.
// Both produce the exact same (time, seq) pop order, so every seeded
// experiment output is byte-identical across `--scheduler heap|wheel`
// (tests/test_event_queue.cc proves it property-by-property).
// `empty()`/`next_time()`/`pending()` are genuinely const O(1) reads
// under either backend.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/inline_function.h"
#include "common/units.h"
#include "sim/timing_wheel.h"

namespace d2::sim {

struct EventQueueTestPeer;

/// Opaque handle: slot index in the high 28 bits, a sequence tag in the
/// low 36 (distinguishes generations of a recycled slot).
using EventId = std::uint64_t;

/// Inline capture budget for event callbacks. Audit of the schedule
/// sites (DESIGN.md §5c): the largest steady-state closures are System's
/// TTL-refresh timer capturing {this, Key, SimTime} and the fetch timers
/// capturing {this, Key, int} — 80 bytes with padding; a 512-bit Key
/// capture alone is 64, so most block-addressed events sit at 72-80.
/// Raising this widens every slot in the slab; shrink closures before
/// shrinking budgets.
inline constexpr std::size_t kEventCaptureBytes = 80;

/// A scheduled callback: non-allocating, captures stored inline.
using EventFn = common::InlineFunction<void(), kEventCaptureBytes>;

class EventQueue {
 public:
  EventQueue() : EventQueue(SchedulerKind::kWheel) {}
  explicit EventQueue(SchedulerKind kind) : kind_(kind) {}

  SchedulerKind scheduler() const { return kind_; }

  /// Schedules callable `f` at time `t`. Events at equal times fire in
  /// insertion order. Returns an id usable with cancel(). The closure is
  /// built in place in its slab slot (no intermediate EventFn copy); its
  /// captures must satisfy EventFn's budget and triviality static_asserts.
  template <class F>
  EventId push(SimTime t, F&& f) {
    return push_ordered(t, next_seq_, std::forward<F>(f));
  }

  /// Overload for a prebuilt EventFn (copied whole into the slot).
  EventId push(SimTime t, const EventFn& fn) {
    return push_ordered(t, next_seq_, fn);
  }

  /// push() with an explicit cross-queue merge key. The partitioned
  /// Simulator owns one queue per arc plus a global queue and merges them
  /// into a single deterministic total order (time, order); `order` is
  /// drawn from the simulator's global counter. Standalone queues use the
  /// plain push() overloads, where order == the queue-local seq, so the
  /// merge key is invisible. Pushes into one queue must carry
  /// non-decreasing orders so the intra-queue FIFO tie-break (by seq)
  /// agrees with the merge order.
  template <class F>
  EventId push_ordered(SimTime t, std::uint64_t order, F&& f) {
    const std::uint32_t slot = acquire_slot();
    fns_[slot].rebind(std::forward<F>(f));
    return commit(t, slot, order);
  }

  EventId push_ordered(SimTime t, std::uint64_t order, const EventFn& fn) {
    const std::uint32_t slot = acquire_slot();
    fns_[slot] = fn;  // trivially copyable: a straight memcpy
    return commit(t, slot, order);
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  SimTime next_time() const;
  /// Merge key of the earliest event. Requires !empty().
  std::uint64_t next_order() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Event {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Event pop();

  std::size_t pending() const { return live_; }

  /// Full-structure audit; throws InvariantError naming the violated
  /// invariant. Checks the heap property, the slab free list (no cycles,
  /// in-range links, no orphaned slots), live-mark consistency (live
  /// slot count == live_ == live heap entries) and the live-top
  /// invariant. O(n); wired into push/cancel/pop in paranoid builds and
  /// callable from tests in any build.
  void check_invariants() const;

 private:
  /// Corruption-injection hook for tests (tests/test_invariants.cc).
  friend struct EventQueueTestPeer;
  // 2^28 slots bound *live* events per queue: a 10k-node availability
  // trial keeps tens of millions of replica-fetch timers in flight at
  // once (the old 24-bit space overflowed there). 36 seq bits still
  // allow ~7e10 pushes per queue before generation tags could collide.
  static constexpr std::uint32_t kNoSlot = 0xfffffffu;    // free-list end
  static constexpr std::uint32_t kLiveMark = 0xffffffeu;  // occupied slot
  static constexpr int kSeqBits = 36;
  static constexpr int kSlotBits = 28;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;

  /// 16-byte heap entry: the seq tag (insertion order, for the FIFO
  /// tie-break) in the high 40 bits and the slab slot in the low 24, so
  /// comparing `tag` compares seq first and sift steps move one cache
  /// line's worth of entries.
  struct Entry {
    SimTime time;
    std::uint64_t tag;  // (seq & kSeqMask) << kSlotBits | slot
  };
  static std::uint64_t make_tag(std::uint32_t slot, std::uint64_t seq) {
    return ((seq & kSeqMask) << kSlotBits) | slot;
  }
  static std::uint32_t tag_slot(std::uint64_t tag) {
    return static_cast<std::uint32_t>(tag & kSlotMask);
  }
  /// Orders the priority queue: earliest time first, then insertion
  /// order (seq occupies the tag's high bits, so comparing tags compares
  /// seq first).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.tag > b.tag;
    }
  };

  /// Slot metadata word: current occupant's seq in the high 40 bits, and
  /// in the low 24 either kLiveMark (occupied) or the free-list link.
  /// A heap entry is live iff its slot's word is exactly
  /// `seq << kSlotBits | kLiveMark` — seq and tag share the same shift,
  /// so the whole check is one load and one 64-bit compare against a
  /// value derived from the entry's tag by masking.
  static std::uint64_t live_meta(std::uint64_t tag) {
    return (tag & ~kSlotMask) | kLiveMark;
  }

  static EventId make_id(std::uint32_t slot, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(slot) << kSeqBits) | (seq & kSeqMask);
  }
  bool entry_live(const Entry& e) const {
    return meta_[tag_slot(e.tag)] == live_meta(e.tag);
  }

  /// Pops a free-list slot (or grows the arrays); the caller fills its fn.
  std::uint32_t acquire_slot();
  /// Marks `slot` live at time `t`, inserts its heap entry, returns the id.
  EventId commit(SimTime t, std::uint32_t slot, std::uint64_t order);
  /// Returns `slot` (whose current meta word is `meta`) to the free list.
  void release_slot(std::uint32_t slot, std::uint64_t meta);

  /// Restores the invariant after cancel/pop (heap backend only):
  /// discard heap entries whose slot was already freed until a live one
  /// (or nothing) is on top.
  void drop_dead_top();

  SchedulerKind kind_;
  TimingWheel wheel_;  // ordering structure for kWheel (empty for kHeap)
  // Ordering structure for kHeap (empty for kWheel).
  // d2-lint: allow(priority-queue) — this IS the reference scheduler
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventFn> fns_;          // wide slab: only push/pop touch it
  std::vector<std::uint64_t> meta_;   // hot: seq | live-or-free-link
  std::vector<std::uint64_t> order_;  // cross-queue merge key per slot
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  ParanoidGate audit_gate_;  // paces paranoid-build audits
};

}  // namespace d2::sim
