// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace d2::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at time `t`. Events at equal times fire in insertion
  /// order. Returns an id usable with cancel().
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (returns false).
  bool cancel(EventId id);

  bool empty() const;
  SimTime next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Event pop();

  std::size_t pending() const;

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // insertion order for ties
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace d2::sim
