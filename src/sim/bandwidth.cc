#include "sim/bandwidth.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::sim {

BandwidthLink::BandwidthLink(BitRate rate) : rate_(rate) {
  D2_REQUIRE(rate > 0);
}

void BandwidthLink::bind_metrics(obs::Registry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    bytes_counter_ = nullptr;
    transfers_counter_ = nullptr;
    return;
  }
  bytes_counter_ = &registry->counter(prefix + ".queued_bytes");
  transfers_counter_ = &registry->counter(prefix + ".transfers");
}

SimTime BandwidthLink::enqueue(SimTime now, Bytes bytes) {
  D2_REQUIRE(bytes >= 0);
  const SimTime start = std::max(now, busy_until_);
  const SimTime tx = transmission_time(bytes, rate_);
  busy_until_ = start + tx;
  busy_time_ += tx;
  total_bytes_ += bytes;
  if (bytes_counter_ != nullptr) bytes_counter_->add(bytes);
  if (transfers_counter_ != nullptr) transfers_counter_->add(1);
  return busy_until_;
}

SimTime BandwidthLink::peek_completion(SimTime now, Bytes bytes) const {
  const SimTime start = std::max(now, busy_until_);
  return start + transmission_time(bytes, rate_);
}

SimTime BandwidthLink::backlog(SimTime now) const {
  return std::max<SimTime>(0, busy_until_ - now);
}

}  // namespace d2::sim
