#include "sim/bandwidth.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::sim {

BandwidthLink::BandwidthLink(BitRate rate) : rate_(rate) {
  D2_REQUIRE(rate > 0);
}

SimTime BandwidthLink::enqueue(SimTime now, Bytes bytes) {
  D2_REQUIRE(bytes >= 0);
  const SimTime start = std::max(now, busy_until_);
  busy_until_ = start + transmission_time(bytes, rate_);
  total_bytes_ += bytes;
  return busy_until_;
}

SimTime BandwidthLink::peek_completion(SimTime now, Bytes bytes) const {
  const SimTime start = std::max(now, busy_until_);
  return start + transmission_time(bytes, rate_);
}

SimTime BandwidthLink::backlog(SimTime now) const {
  return std::max<SimTime>(0, busy_until_ - now);
}

}  // namespace d2::sim
