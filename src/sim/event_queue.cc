#include "sim/event_queue.h"

#include "common/assert.h"

namespace d2::sim {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);  // heap entry removed lazily
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  D2_REQUIRE(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Event EventQueue::pop() {
  drop_cancelled();
  D2_REQUIRE(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  D2_ASSERT(it != callbacks_.end());
  Event ev{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return ev;
}

std::size_t EventQueue::pending() const { return callbacks_.size(); }

}  // namespace d2::sim
