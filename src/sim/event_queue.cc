#include "sim/event_queue.h"

#include "common/assert.h"

namespace d2::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = static_cast<std::uint32_t>(meta_[slot] & kSlotMask);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(fns_.size());
  D2_REQUIRE_MSG(slot < kLiveMark, "event queue slot space exhausted");
  fns_.emplace_back();
  meta_.push_back(0);
  return slot;
}

EventId EventQueue::commit(SimTime t, std::uint32_t slot) {
  const std::uint64_t seq = next_seq_++;
  meta_[slot] = live_meta(make_tag(slot, seq));
  heap_.push(Entry{t, make_tag(slot, seq)});
  ++live_;
  return make_id(slot, seq);
}

void EventQueue::release_slot(std::uint32_t slot, std::uint64_t meta) {
  // Keep the seq bits, swap the live mark for the free-list link: any
  // heap entry still pointing here no longer matches live_meta. The
  // closure slab is left as-is (captures are trivially destructible).
  meta_[slot] = (meta & ~kSlotMask) | free_head_;
  free_head_ = slot;
  --live_;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> kSeqBits);
  if (slot >= meta_.size()) return false;
  const std::uint64_t meta = meta_[slot];
  if (meta != live_meta(make_tag(slot, id & kSeqMask))) return false;
  release_slot(slot, meta);
  drop_dead_top();
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
}

SimTime EventQueue::next_time() const {
  D2_REQUIRE(live_ != 0);
  return heap_.top().time;  // invariant: top is live when live_ > 0
}

EventQueue::Event EventQueue::pop() {
  D2_REQUIRE(live_ != 0);
  const Entry top = heap_.top();
  D2_ASSERT(entry_live(top));
  heap_.pop();
  const std::uint32_t slot = tag_slot(top.tag);
  const std::uint64_t seq = top.tag >> kSlotBits;
  Event ev{top.time, make_id(slot, seq), fns_[slot]};
  release_slot(slot, meta_[slot]);
  drop_dead_top();
  return ev;
}

}  // namespace d2::sim
