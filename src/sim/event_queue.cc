#include "sim/event_queue.h"

#include "common/assert.h"

namespace d2::sim {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    D2_REQUIRE_MSG(slot < (1u << 24), "event queue slot space exhausted");
    slots_.emplace_back();
  }
  const std::uint64_t seq = next_seq_++;
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = seq;
  s.live = true;
  heap_.push(Entry{t, make_tag(slot, seq)});
  ++live_;
  return make_id(slot, seq);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> kSeqBits);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || (s.seq & kSeqMask) != (id & kSeqMask)) return false;
  s.fn = nullptr;  // release the closure now; the heap entry dies lazily
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  drop_dead_top();
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
}

SimTime EventQueue::next_time() const {
  D2_REQUIRE(live_ != 0);
  return heap_.top().time;  // invariant: top is live when live_ > 0
}

EventQueue::Event EventQueue::pop() {
  D2_REQUIRE(live_ != 0);
  const Entry top = heap_.top();
  D2_ASSERT(entry_live(top));
  heap_.pop();
  const std::uint32_t slot = tag_slot(top.tag);
  Slot& s = slots_[slot];
  Event ev{top.time, make_id(slot, s.seq), std::move(s.fn)};
  s.fn = nullptr;
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  drop_dead_top();
  return ev;
}

}  // namespace d2::sim
