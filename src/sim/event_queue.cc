#include "sim/event_queue.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = static_cast<std::uint32_t>(meta_[slot] & kSlotMask);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(fns_.size());
  D2_REQUIRE_MSG(slot < kLiveMark, "event queue slot space exhausted");
  fns_.emplace_back();
  meta_.push_back(0);
  order_.push_back(0);
  if (kind_ == SchedulerKind::kWheel) wheel_.ensure_capacity(fns_.size());
  return slot;
}

EventId EventQueue::commit(SimTime t, std::uint32_t slot,
                           std::uint64_t order) {
  const std::uint64_t seq = next_seq_++;
  order_[slot] = order;
  meta_[slot] = live_meta(make_tag(slot, seq));
  if (kind_ == SchedulerKind::kWheel) {
    wheel_.insert(slot, t);
  } else {
    heap_.push(Entry{t, make_tag(slot, seq)});
  }
  ++live_;
  D2_PARANOID_AUDIT(if (audit_gate_.due(meta_.size())) check_invariants());
  return make_id(slot, seq);
}

void EventQueue::release_slot(std::uint32_t slot, std::uint64_t meta) {
  // Keep the seq bits, swap the live mark for the free-list link: any
  // heap entry still pointing here no longer matches live_meta. The
  // closure slab is left as-is (captures are trivially destructible).
  meta_[slot] = (meta & ~kSlotMask) | free_head_;
  free_head_ = slot;
  --live_;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> kSeqBits);
  if (slot >= meta_.size()) return false;
  const std::uint64_t meta = meta_[slot];
  if (meta != live_meta(make_tag(slot, id & kSeqMask))) return false;
  release_slot(slot, meta);
  if (kind_ == SchedulerKind::kWheel) {
    wheel_.remove(slot);
  } else {
    drop_dead_top();
  }
  D2_PARANOID_AUDIT(if (audit_gate_.due(meta_.size())) check_invariants());
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
}

SimTime EventQueue::next_time() const {
  D2_REQUIRE(live_ != 0);
  if (kind_ == SchedulerKind::kWheel) return wheel_.min_time();
  return heap_.top().time;  // invariant: top is live when live_ > 0
}

std::uint64_t EventQueue::next_order() const {
  D2_REQUIRE(live_ != 0);
  if (kind_ == SchedulerKind::kWheel) return order_[wheel_.min_slot()];
  return order_[tag_slot(heap_.top().tag)];
}

EventQueue::Event EventQueue::pop() {
  D2_REQUIRE(live_ != 0);
  if (kind_ == SchedulerKind::kWheel) {
    const std::uint32_t slot = wheel_.pop_min();
    const std::uint64_t seq = meta_[slot] >> kSlotBits;
    Event ev{wheel_.slot_time(slot), make_id(slot, seq), fns_[slot]};
    release_slot(slot, meta_[slot]);
    D2_PARANOID_AUDIT(if (audit_gate_.due(meta_.size())) check_invariants());
    return ev;
  }
  const Entry top = heap_.top();
  D2_ASSERT(entry_live(top));
  heap_.pop();
  const std::uint32_t slot = tag_slot(top.tag);
  const std::uint64_t seq = top.tag >> kSlotBits;
  Event ev{top.time, make_id(slot, seq), fns_[slot]};
  release_slot(slot, meta_[slot]);
  drop_dead_top();
  D2_PARANOID_AUDIT(if (audit_gate_.due(meta_.size())) check_invariants());
  return ev;
}

void EventQueue::check_invariants() const {
  const std::size_t slots = meta_.size();
  D2_ASSERT_MSG(fns_.size() == slots && order_.size() == slots,
                "event queue: slab arrays out of sync");

  // Free list: in-range links, no cycles.
  std::vector<char> on_free(slots, 0);
  std::size_t free_count = 0;
  for (std::uint32_t s = free_head_; s != kNoSlot;
       s = static_cast<std::uint32_t>(meta_[s] & kSlotMask)) {
    D2_ASSERT_MSG(s < slots, "event queue: free-list link out of range");
    D2_ASSERT_MSG(on_free[s] == 0, "event queue: free-list cycle");
    on_free[s] = 1;
    ++free_count;
  }

  // Live marks: every slot is either live or on the free list, and the
  // live-mark population matches the live counter.
  std::size_t live_count = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint64_t low = meta_[s] & kSlotMask;
    if (low == kLiveMark) {
      D2_ASSERT_MSG(on_free[s] == 0, "event queue: slot both live and free");
      ++live_count;
    } else {
      D2_ASSERT_MSG(on_free[s] == 1,
                    "event queue: orphaned slot (neither live nor free)");
    }
  }
  D2_ASSERT_MSG(live_count == live_,
                "event queue: live-mark count disagrees with live_");
  D2_ASSERT_MSG(free_count + live_count == slots,
                "event queue: slot accounting does not cover the slab");

  if (kind_ == SchedulerKind::kWheel) {
    // Wheel: every live slot resident in exactly the bucket its time
    // places it in, link symmetry, occupancy bitmaps, head == minimum.
    D2_ASSERT_MSG(heap_.empty(), "event queue: heap populated in wheel mode");
    wheel_.check_invariants(live_, [this](std::uint32_t s) {
      D2_ASSERT_MSG((meta_[s] & kSlotMask) == kLiveMark,
                    "event queue: wheel-resident slot not live");
      return meta_[s] >> kSlotBits;
    });
    return;
  }

  // Heap: ordering property holds, exactly the live slots have a live
  // entry, and a dead entry never sits on top.
  // d2-lint: allow(priority-queue) — auditing the reference scheduler
  using RefHeap = std::priority_queue<Entry, std::vector<Entry>, Later>;
  struct HeapAccess : RefHeap {
    static const std::vector<Entry>& container(const RefHeap& q) {
      return q.*(&HeapAccess::c);
    }
  };
  const std::vector<Entry>& entries = HeapAccess::container(heap_);
  D2_ASSERT_MSG(std::is_heap(entries.begin(), entries.end(), Later{}),
                "event queue: heap property violated");
  std::size_t live_entries = 0;
  for (const Entry& e : entries) {
    D2_ASSERT_MSG(tag_slot(e.tag) < slots,
                  "event queue: heap entry slot out of range");
    if (entry_live(e)) ++live_entries;
  }
  D2_ASSERT_MSG(live_entries == live_,
                "event queue: live heap entries disagree with live_");
  if (live_ != 0) {
    D2_ASSERT_MSG(entry_live(heap_.top()),
                  "event queue: dead entry on heap top");
  }
}

}  // namespace d2::sim
