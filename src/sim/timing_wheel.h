// Hierarchical timing wheel: the O(1)-amortized scheduler core behind
// sim::EventQueue (DESIGN.md §11).
//
// Eight levels of 64 buckets each cover 6 bits of the event time apiece
// (48 bits total ≈ 8.9 simulated years in microseconds). The wheel keeps
// a clock `cur_` equal to the last popped time, and places a pending
// event with time t by the *highest base-64 digit where t differs from
// cur_*: the differing digit picks the level, the digit's value picks
// the bucket. Placement is a pure function of (t, cur_), so a bucket
// never needs to store which events it holds beyond the intrusive list
// itself, and a slot's bucket can always be recomputed from its time.
//
// Buckets are intrusive doubly-linked lists threaded through per-slot
// next/prev arrays indexed by the owner's slab slot ids — the wheel
// allocates nothing in steady state. Two out-of-band lists complete the
// domain: an *overflow* list for times differing from cur_ above bit 47
// (e.g. kSimTimeNever sentinels) and an *overdue* list for pushes below
// cur_ (legal for a standalone queue; the simulator never produces them
// because cur_ only advances to popped event times, which trail the
// simulation clock).
//
// FIFO tie order (equal times pop in push order) falls out of list
// order: pushes append in increasing seq; a cascade moves a bucket's
// remainder, in order, into buckets that are provably empty (any event
// already below the cascading level would have been earlier than the
// minimum being popped); and later pushes into those buckets carry later
// seqs. So within a bucket, list order == seq order, and the head of a
// level-0 bucket (one absolute time per bucket) is the exact (time, seq)
// minimum. See DESIGN.md §11 for the proof sketch.
//
// The minimum slot is cached (`head_`) so min_slot()/min_time() are
// const O(1) — the partitioned Simulator polls every queue's head per
// pop. pop_min() advances cur_ to the popped time and cascades only the
// bucket the head came from; remove() never advances cur_ (cascading on
// cancel could push cur_ past the simulation clock and outlaw still-legal
// pushes), it just recomputes the head cache with a non-mutating scan.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace d2::sim {

struct EventQueueTestPeer;

/// Which scheduler backs an EventQueue: the timing wheel (production) or
/// the binary heap kept as the differential reference (`--scheduler heap`).
enum class SchedulerKind { kWheel, kHeap };

class TimingWheel {
 public:
  /// Null link / empty-bucket marker.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Slot id of the (time, insertion-order) minimum; kNil when empty.
  std::uint32_t min_slot() const { return head_; }
  /// Time of the minimum. Requires !empty().
  SimTime min_time() const {
    D2_ASSERT(head_ != kNil);
    return time_[head_];
  }
  /// Time recorded for a resident slot.
  SimTime slot_time(std::uint32_t slot) const { return time_[slot]; }
  /// The wheel cursor: the last popped time (never decreases).
  SimTime cursor() const { return cur_; }

  /// Grows the per-slot arrays to cover slot ids < `slots`. Called by the
  /// owner when its slab grows; insert()/remove() never allocate.
  void ensure_capacity(std::size_t slots);

  /// Links `slot` (< capacity, not currently resident) at time `t`.
  /// Successive inserts must carry increasing insertion order (the
  /// owner's seq); equal-time ties pop in insert order.
  void insert(std::uint32_t slot, SimTime t);

  /// Unlinks a resident slot without advancing the clock.
  void remove(std::uint32_t slot);

  /// Unlinks and returns the minimum slot, advancing the clock to its
  /// time and redistributing its bucket. Requires !empty().
  std::uint32_t pop_min();

  /// Structural audit (bucket membership vs place(), link symmetry,
  /// occupancy bitmaps, head cache, resident count); throws
  /// InvariantError on violation. `seq_of(slot)` supplies the owner's
  /// insertion order for the head-is-minimum check.
  template <class SeqOf>
  void check_invariants(std::size_t expect_live, SeqOf&& seq_of) const;

 private:
  friend struct EventQueueTestPeer;

  static constexpr int kBitsPerLevel = 6;
  static constexpr int kWheelSlots = 1 << kBitsPerLevel;  // 64
  static constexpr int kLevels = 8;
  static constexpr int kNumWheelBuckets = kLevels * kWheelSlots;  // 512
  static constexpr int kOverflowBucket = kNumWheelBuckets;        // 512
  static constexpr int kOverdueBucket = kNumWheelBuckets + 1;     // 513
  static constexpr int kNumBuckets = kNumWheelBuckets + 2;

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// Bucket index for time `t` under the current clock: overdue below
  /// cur_, overflow when the top 16 bits differ, otherwise the level of
  /// the highest differing base-64 digit and that digit's value in t.
  int place(SimTime t) const {
    if (t < cur_) return kOverdueBucket;
    const std::uint64_t diff =
        static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cur_);
    if ((diff >> (kLevels * kBitsPerLevel)) != 0) return kOverflowBucket;
    const int level =
        diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kBitsPerLevel;
    return level * kWheelSlots +
           static_cast<int>((static_cast<std::uint64_t>(t) >>
                             (level * kBitsPerLevel)) &
                            (kWheelSlots - 1));
  }

  void link(int bucket, std::uint32_t slot);
  void unlink(int bucket, std::uint32_t slot);
  /// Re-places every element of `bucket` under the (just-advanced)
  /// clock, preserving list order. Only level >= 1 and overflow buckets
  /// ever need this.
  void cascade(int bucket);
  /// Recomputes the head cache by non-mutating search: overdue first
  /// (all below cur_), then the lowest occupied bucket of the lowest
  /// non-empty level, then overflow.
  void refresh_head();
  /// First slot in `bucket`'s list with the minimum time (== minimum
  /// insertion order among minimum times, since list order == seq order).
  std::uint32_t scan_min(int bucket) const;

  std::array<Bucket, kNumBuckets> buckets_{};
  std::array<std::uint64_t, kLevels> occupied_{};  // bit = bucket non-empty
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::vector<SimTime> time_;
  SimTime cur_ = 0;
  std::uint32_t head_ = kNil;
  std::size_t live_ = 0;
};

template <class SeqOf>
void TimingWheel::check_invariants(std::size_t expect_live,
                                   SeqOf&& seq_of) const {
  D2_ASSERT_MSG(live_ == expect_live,
                "timing wheel: resident count disagrees with owner");
  std::vector<char> seen(next_.size(), 0);
  std::size_t walked = 0;
  std::uint32_t best = kNil;
  for (int b = 0; b < kNumBuckets; ++b) {
    std::uint32_t prev = kNil;
    for (std::uint32_t s = buckets_[b].head; s != kNil; s = next_[s]) {
      D2_ASSERT_MSG(s < next_.size(), "timing wheel: link out of range");
      D2_ASSERT_MSG(seen[s] == 0, "timing wheel: slot linked twice");
      seen[s] = 1;
      D2_ASSERT_MSG(prev_[s] == prev, "timing wheel: prev link broken");
      D2_ASSERT_MSG(place(time_[s]) == b,
                    "timing wheel: slot in wrong bucket for its time");
      if (b == kOverdueBucket) {
        D2_ASSERT_MSG(time_[s] < cur_, "timing wheel: future slot overdue");
      }
      if (best == kNil || time_[s] < time_[best] ||
          (time_[s] == time_[best] && seq_of(s) < seq_of(best))) {
        best = s;
      }
      prev = s;
      ++walked;
    }
    D2_ASSERT_MSG(buckets_[b].tail == prev, "timing wheel: tail link broken");
    if (b < kNumWheelBuckets) {
      const bool bit = (occupied_[static_cast<std::size_t>(b) / kWheelSlots] >>
                        (static_cast<std::size_t>(b) % kWheelSlots)) &
                       1;
      D2_ASSERT_MSG(bit == (buckets_[b].head != kNil),
                    "timing wheel: occupancy bit disagrees with bucket");
    }
  }
  D2_ASSERT_MSG(walked == live_,
                "timing wheel: linked slots disagree with resident count");
  D2_ASSERT_MSG(head_ == best,
                "timing wheel: head cache is not the (time, seq) minimum");
}

}  // namespace d2::sim
