#include "sim/partition.h"

#include <utility>

namespace d2::sim {

WorkerPool::WorkerPool(int workers) : workers_(workers) {
  D2_REQUIRE_MSG(workers >= 1, "worker pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 0; i < workers - 1; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

// d2-lint: allow(std-function) — invoked once per barrier, not per event
void WorkerPool::run_arcs(int arcs, const std::function<void(int)>& fn) {
  D2_REQUIRE_MSG(arcs >= 1, "run_arcs needs at least one arc");
  if (workers_ == 1 || arcs == 1) {
    // Serial fast path: same lane code, no handoff. Exceptions propagate
    // straight to the caller.
    for (int a = 0; a < arcs; ++a) fn(a);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  D2_REQUIRE_MSG(job_ == nullptr, "run_arcs is not reentrant");
  job_ = &fn;
  arcs_total_ = arcs;
  next_arc_ = 0;
  done_arcs_ = 0;
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  work(lk, fn);  // the caller is one of the workers
  done_cv_.wait(lk, [&] { return done_arcs_ == arcs_total_; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    start_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    // A slow waker can arrive after the coordinator drained every arc
    // and already cleared job_ — nothing left to do for this generation.
    if (job_ == nullptr) continue;
    const std::function<void(int)>& fn = *job_;  // d2-lint: allow(std-function)
    work(lk, fn);
  }
}

void WorkerPool::work(
    std::unique_lock<std::mutex>& lk,
    const std::function<void(int)>& fn) {  // d2-lint: allow(std-function)
  while (next_arc_ < arcs_total_) {
    const int arc = next_arc_++;
    lk.unlock();
    try {
      fn(arc);
    } catch (...) {
      lk.lock();
      if (!first_error_) first_error_ = std::current_exception();
      if (++done_arcs_ == arcs_total_) done_cv_.notify_all();
      continue;
    }
    lk.lock();
    if (++done_arcs_ == arcs_total_) done_cv_.notify_all();
  }
}

}  // namespace d2::sim
