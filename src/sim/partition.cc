#include "sim/partition.h"

#include <utility>

namespace d2::sim {

WorkerPool::WorkerPool(int workers) : workers_(workers) {
  D2_REQUIRE_MSG(workers >= 1, "worker pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 0; i < workers - 1; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lk(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

// d2-lint: allow(std-function) — invoked once per barrier, not per event
void WorkerPool::run_arcs(int arcs, const std::function<void(int)>& fn) {
  D2_REQUIRE_MSG(arcs >= 1, "run_arcs needs at least one arc");
  if (workers_ == 1 || arcs == 1) {
    // Serial fast path: same lane code, no handoff. Exceptions propagate
    // straight to the caller.
    for (int a = 0; a < arcs; ++a) fn(a);
    return;
  }
  mu_.lock();
  if (job_ != nullptr) {
    // Unlock before throwing (fail_require is [[noreturn]], keeping the
    // thread-safety analysis's lock state consistent at the merge).
    mu_.unlock();
    ::d2::detail::fail_require("job_ == nullptr", __FILE__, __LINE__,
                               "run_arcs is not reentrant");
  }
  job_ = &fn;
  arcs_total_ = arcs;
  next_arc_ = 0;
  done_arcs_ = 0;
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  work(fn);  // the caller is one of the workers
  done_cv_.wait(mu_, [&]() D2_REQUIRES(mu_) {
    return done_arcs_ == arcs_total_;
  });
  job_ = nullptr;
  std::exception_ptr err = std::exchange(first_error_, nullptr);
  mu_.unlock();
  if (err) std::rethrow_exception(err);
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  mu_.lock();
  while (true) {
    start_cv_.wait(mu_, [&]() D2_REQUIRES(mu_) {
      return shutdown_ || generation_ != seen;
    });
    if (shutdown_) {
      mu_.unlock();
      return;
    }
    seen = generation_;
    // A slow waker can arrive after the coordinator drained every arc
    // and already cleared job_ — nothing left to do for this generation.
    if (job_ == nullptr) continue;
    const std::function<void(int)>& fn = *job_;  // d2-lint: allow(std-function) -- one deref per wake, not per event
    work(fn);
  }
}

void WorkerPool::work(
    const std::function<void(int)>& fn) {  // d2-lint: allow(std-function) -- one call per barrier, not per event
  while (next_arc_ < arcs_total_) {
    const int arc = next_arc_++;
    mu_.unlock();
    try {
      fn(arc);
    } catch (...) {
      mu_.lock();
      if (!first_error_) first_error_ = std::current_exception();
      if (++done_arcs_ == arcs_total_) done_cv_.notify_all();
      continue;
    }
    mu_.lock();
    if (++done_arcs_ == arcs_total_) done_cv_.notify_all();
  }
}

}  // namespace d2::sim
