// Node failure model.
//
// Substitutes for the PlanetLab failure trace (247 nodes, Feb 22-28 2003)
// used in the paper's availability evaluation (§8.1). Each node alternates
// exponential up/down periods (MTTF/MTTR), and Poisson-arriving correlated
// mass-failure events take down a random fraction of nodes simultaneously
// — the paper stresses that correlated failures are "the most likely factor
// to reduce availability in practice". Defaults are calibrated so that the
// probability a random 3-node replica group is ever fully down during the
// week is ~0.02 without regeneration (§8.2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/units.h"

namespace d2::sim {

struct FailureParams {
  int node_count = 247;
  SimTime duration = days(7);
  /// Mean time between failures per node (hours of up time).
  double mttf_hours = 120.0;
  /// Mean repair time per node (hours of down time).
  double mttr_hours = 4.0;
  /// Rate of correlated mass-failure events (per day).
  double correlated_events_per_day = 0.6;
  /// Fraction of nodes taken down by a correlated event.
  double correlated_fraction = 0.15;
  /// Mean duration of a correlated outage (hours).
  double correlated_outage_hours = 2.0;
};

/// An immutable week (or any duration) of node up/down history.
class FailureTrace {
 public:
  struct Transition {
    SimTime time;
    int node;
    bool up;  // true: node came back; false: node went down
  };

  static FailureTrace generate(const FailureParams& params, Rng& rng);

  /// A trace where every node is up for the whole duration.
  static FailureTrace all_up(int node_count, SimTime duration);

  /// A trace with explicitly given down intervals [start, end) per node —
  /// for targeted tests and trace import.
  struct DownInterval {
    int node;
    SimTime start;
    SimTime end;
  };
  static FailureTrace from_intervals(int node_count, SimTime duration,
                                     const std::vector<DownInterval>& downs);

  /// Text import/export, so measured traces (e.g. PlanetLab uptime data)
  /// can drive the availability experiments. Format:
  ///   # d2-failures v1 <node_count> <duration_us>
  ///   <node> <down_start_us> <down_end_us>
  static FailureTrace read(std::istream& is);
  void write(std::ostream& os) const;

  int node_count() const { return node_count_; }
  SimTime duration() const { return duration_; }

  bool is_up(int node, SimTime t) const;

  /// Down intervals [start, end) for one node, sorted, non-overlapping.
  /// A view into the trace's arena; valid while the trace lives.
  std::span<const std::pair<SimTime, SimTime>> down_intervals(int node) const;

  /// All up/down transitions across nodes, sorted by time.
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Fraction of nodes up at time t.
  double fraction_up(SimTime t) const;

  /// Monte-Carlo estimate of the probability that a group of `group_size`
  /// distinct random nodes is ever simultaneously all-down during the
  /// trace. This is the paper's §8.2 calibration quantity (~0.02 for r=3).
  double group_failure_probability(int group_size, int samples, Rng& rng) const;

 private:
  int node_count_ = 0;
  SimTime duration_ = 0;
  // All intervals live in one arena block (generation at the 50k-node
  // scale would otherwise make one small heap vector per node); down_
  // holds per-node views into it. The arena makes the trace move-only.
  common::Arena arena_;
  std::vector<std::span<const std::pair<SimTime, SimTime>>> down_;
  std::vector<Transition> transitions_;

  /// Sorts and merges raw (possibly overlapping) down intervals, packs
  /// them into the arena, and derives the transition list.
  void finalize(std::vector<DownInterval>& raw);
};

}  // namespace d2::sim
