#include "sim/timing_wheel.h"

namespace d2::sim {

void TimingWheel::ensure_capacity(std::size_t slots) {
  if (slots <= next_.size()) return;
  next_.resize(slots, kNil);
  prev_.resize(slots, kNil);
  time_.resize(slots, 0);
}

void TimingWheel::link(int bucket, std::uint32_t slot) {
  Bucket& bk = buckets_[static_cast<std::size_t>(bucket)];
  prev_[slot] = bk.tail;
  next_[slot] = kNil;
  if (bk.tail == kNil) {
    bk.head = slot;
    if (bucket < kNumWheelBuckets) {
      occupied_[static_cast<std::size_t>(bucket) / kWheelSlots] |=
          std::uint64_t{1} << (static_cast<std::size_t>(bucket) % kWheelSlots);
    }
  } else {
    next_[bk.tail] = slot;
  }
  bk.tail = slot;
}

void TimingWheel::unlink(int bucket, std::uint32_t slot) {
  Bucket& bk = buckets_[static_cast<std::size_t>(bucket)];
  if (prev_[slot] != kNil) {
    next_[prev_[slot]] = next_[slot];
  } else {
    bk.head = next_[slot];
  }
  if (next_[slot] != kNil) {
    prev_[next_[slot]] = prev_[slot];
  } else {
    bk.tail = prev_[slot];
  }
  if (bk.head == kNil && bucket < kNumWheelBuckets) {
    occupied_[static_cast<std::size_t>(bucket) / kWheelSlots] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(bucket) % kWheelSlots));
  }
}

void TimingWheel::insert(std::uint32_t slot, SimTime t) {
  D2_REQUIRE_MSG(slot < next_.size(),
                 "timing wheel: insert past capacity (ensure_capacity first)");
  time_[slot] = t;
  link(place(t), slot);
  ++live_;
  // Strict <: an equal-time incumbent was inserted earlier (smaller seq)
  // and keeps the head.
  if (head_ == kNil || t < time_[head_]) head_ = slot;
}

void TimingWheel::remove(std::uint32_t slot) {
  D2_REQUIRE_MSG(slot < next_.size() && live_ > 0,
                 "timing wheel: remove of a non-resident slot");
  unlink(place(time_[slot]), slot);
  --live_;
  if (slot == head_) refresh_head();
}

std::uint32_t TimingWheel::pop_min() {
  D2_ASSERT(head_ != kNil);
  const std::uint32_t slot = head_;
  const SimTime t = time_[slot];
  const int bucket = place(t);
  unlink(bucket, slot);
  --live_;
  if (t > cur_) {
    cur_ = t;
    // Only the popped minimum's own bucket can hold events whose
    // placement changed: anything that would now land on a lower level
    // was already earlier than the minimum — impossible. Level-0 buckets
    // pin one absolute time each, so they never redistribute.
    if (bucket >= kWheelSlots) cascade(bucket);
  }
  refresh_head();
  return slot;
}

void TimingWheel::cascade(int bucket) {
  Bucket& bk = buckets_[static_cast<std::size_t>(bucket)];
  std::uint32_t s = bk.head;
  bk.head = bk.tail = kNil;
  if (bucket < kNumWheelBuckets) {
    occupied_[static_cast<std::size_t>(bucket) / kWheelSlots] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(bucket) % kWheelSlots));
  }
  // Re-linking in list order preserves seq order: every target bucket at
  // a lower level is empty (see pop_min), and overflow re-appends keep
  // their relative order.
  while (s != kNil) {
    const std::uint32_t nxt = next_[s];
    link(place(time_[s]), s);
    s = nxt;
  }
}

void TimingWheel::refresh_head() {
  if (live_ == 0) {
    head_ = kNil;
    return;
  }
  // Overdue times sit below cur_ <= every wheel/overflow time.
  if (buckets_[kOverdueBucket].head != kNil) {
    head_ = scan_min(kOverdueBucket);
    return;
  }
  // The lowest non-empty level holds the minimum: a level-l resident
  // agrees with cur_ on all digits above l and exceeds it at digit l, so
  // lower levels are strictly earlier. Within a level the lowest
  // occupied bucket is earliest for the same reason, one digit down.
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t occ = occupied_[static_cast<std::size_t>(level)];
    if (occ == 0) continue;
    const int bucket = level * kWheelSlots + std::countr_zero(occ);
    // Level 0: one absolute time per bucket, list head == minimum seq.
    head_ = level == 0 ? buckets_[static_cast<std::size_t>(bucket)].head
                       : scan_min(bucket);
    return;
  }
  head_ = scan_min(kOverflowBucket);
}

std::uint32_t TimingWheel::scan_min(int bucket) const {
  std::uint32_t best = buckets_[static_cast<std::size_t>(bucket)].head;
  SimTime best_time = time_[best];
  // First occurrence of the minimum time wins: list order == seq order.
  for (std::uint32_t s = next_[best]; s != kNil; s = next_[s]) {
    if (time_[s] < best_time) {
      best = s;
      best_time = time_[s];
    }
  }
  return best;
}

}  // namespace d2::sim
