// Bandwidth-limited FIFO link model.
//
// The availability/load-balance simulator models a 750 kbps per-node cap on
// load-balancing (migration) traffic and 1500 kbps per-user write rate
// (paper §8.1). A BandwidthLink serializes transfers: a new transfer starts
// when the link drains, so completion time is max(now, busy_until) +
// bytes/rate. Byte counters feed the Table 4 overhead accounting.
#pragma once

#include <string>

#include "common/units.h"
#include "obs/metrics.h"

namespace d2::sim {

class BandwidthLink {
 public:
  explicit BandwidthLink(BitRate rate);

  /// Aggregates this link's traffic into shared registry counters
  /// `<prefix>.queued_bytes` and `<prefix>.transfers` — many links (one
  /// per node) bound with the same prefix sum into one system-wide
  /// figure. Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry, const std::string& prefix);

  /// Enqueues a transfer of `bytes` starting no earlier than `now`;
  /// returns its completion time.
  SimTime enqueue(SimTime now, Bytes bytes);

  /// Completion time if a transfer of `bytes` were enqueued at `now`
  /// (no state change).
  SimTime peek_completion(SimTime now, Bytes bytes) const;

  /// Time at which the link becomes idle.
  SimTime busy_until() const { return busy_until_; }

  /// Queueing delay a new transfer would currently experience.
  SimTime backlog(SimTime now) const;

  Bytes total_bytes() const { return total_bytes_; }
  BitRate rate() const { return rate_; }

  /// Cumulative transmission time of everything enqueued so far; with
  /// the current simulated time this yields link utilization:
  /// min(1, busy_time / elapsed).
  SimTime busy_time() const { return busy_time_; }

  void reset_counters() {
    total_bytes_ = 0;
    busy_time_ = 0;
  }

 private:
  BitRate rate_;
  SimTime busy_until_ = 0;
  Bytes total_bytes_ = 0;
  SimTime busy_time_ = 0;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* transfers_counter_ = nullptr;
};

}  // namespace d2::sim
