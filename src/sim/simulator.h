// Discrete-event simulator: virtual clock plus event scheduling.
//
// All d2 experiments (availability §8, performance §9, load balance §10)
// run inside one Simulator. Nothing in the library reads wall-clock time;
// the clock only advances by draining scheduled events.
#pragma once

#include <utility>

#include "common/assert.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace d2::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Mirrors simulator accounting into `registry` under `sim.*`:
  /// `sim.events_processed` is kept live from here on (any events already
  /// processed are added in, so simulators sharing a registry sum),
  /// `sim.events_pending` / `sim.clock_seconds` gauges are refreshed by
  /// export_metrics(). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Snapshots the point-in-time quantities (pending events, clock) into
  /// the bound registry; call before dumping. No-op when unbound.
  void export_metrics();

  /// Schedules `f` at absolute simulated time `t` (>= now). The callback
  /// becomes an EventFn built in place in its queue slot: its captures
  /// must fit the inline budget (kEventCaptureBytes) and be trivially
  /// copyable — scheduling never heap-allocates.
  template <class F>
  EventId schedule_at(SimTime t, F&& f) {
    D2_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
    return queue_.push(t, std::forward<F>(f));
  }

  /// Schedules `f` `delay` microseconds from now (delay >= 0).
  template <class F>
  EventId schedule_after(SimTime delay, F&& f) {
    D2_REQUIRE(delay >= 0);
    return queue_.push(now_ + delay, std::forward<F>(f));
  }

  /// Cancels a pending event; no-op if already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= t, then sets now to t.
  void run_until(SimTime t);

  /// Runs a single event if one is pending; returns false if queue empty.
  bool step();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t events_pending() const { return queue_.pending(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  obs::Registry* metrics_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
};

}  // namespace d2::sim
