// Discrete-event simulator: virtual clock plus event scheduling, with
// optional arc-partitioned execution.
//
// All d2 experiments (availability §8, performance §9, load balance §10)
// run inside one Simulator. Nothing in the library reads wall-clock time;
// the clock only advances by draining scheduled events.
//
// ## Arc partitioning (DESIGN.md §9)
//
// The simulator owns `arcs + 1` event queues: one per keyspace arc
// (common/arc_plan.h) plus a global queue for events that touch
// cross-arc state (ring membership, probes, migration). Every push
// carries a merge key drawn from one global counter, and the serial
// engine always pops the minimum (time, order) across all queues — so
// with one arc, or with many arcs executed serially, the schedule is
// *the same total order* the single-queue engine produced, bit for bit.
//
// With `workers > 1`, runs of arc-local events strictly before the next
// global event are executed as a parallel *window*: each arc's lane
// drains its own queue on a worker thread, confined to arc-owned state.
// Lane rules (enforced with D2_REQUIRE):
//   - a lane may schedule only onto its own arc;
//   - pushes that land inside the current window go directly onto the
//     lane's queue with a lane-striped merge key (the lane owns it);
//   - anything at or past the window end is staged in the cross-arc
//     Mailbox and released at the barrier in (time, src_arc, seq) order
//     with fresh merge keys.
// Only same-time events in *different* arcs can observe a different
// relative order than the serial engine, and those are state-disjoint by
// the lane rules — which is why `--arc-workers N` output is byte-equal
// to `--arc-workers 1` (tests/test_partition.cc, golden arc variants).
#pragma once

#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/lane.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/partition.h"

namespace d2::sim {

class Simulator {
 public:
  /// Arc index for the global (cross-arc) queue in schedule_arc_at.
  static constexpr int kGlobalArc = -1;
  /// Returned for mailboxed schedules, which are not cancellable (queue
  /// seqs start at 1, so no real event ever has id 0).
  static constexpr EventId kNoEvent = 0;

  Simulator() : Simulator(ArcConfig{}) {}
  explicit Simulator(const ArcConfig& cfg);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  int arcs() const { return arcs_; }
  int workers() const { return pool_.workers(); }

  /// Current simulated time: the lane-local event time inside an arc
  /// lane, the coordinator clock otherwise.
  SimTime now() const {
    // Members read directly, never through a `const LaneCtx&`: GCC 12's
    // UBSan emits a false "reference binding to null pointer" on
    // references bound to a thread_local behind its TLS wrapper at -O2.
    return tl_lane_.owner == this ? tl_lane_.now : now_;
  }

  /// True while the calling thread is executing an arc lane (a parallel
  /// window or run_arc_phase) of *this* simulator. Arc-owned code uses
  /// this to pick per-arc scratch and skip global-state work.
  bool in_lane() const { return tl_lane_.owner == this; }

  /// The arc the calling lane owns. Requires in_lane().
  int lane_arc() const {
    D2_REQUIRE_MSG(in_lane(), "lane_arc() outside an arc lane");
    return tl_lane_.arc;
  }

  /// Mirrors simulator accounting into `registry` under `sim.*`:
  /// `sim.events_processed` is kept live from here on (any events already
  /// processed are added in, so simulators sharing a registry sum),
  /// `sim.events_pending` / `sim.clock_seconds` gauges are refreshed by
  /// export_metrics(). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Snapshots the point-in-time quantities (pending events, clock) into
  /// the bound registry; call before dumping. No-op when unbound.
  void export_metrics();

  /// Schedules `f` at absolute simulated time `t` (>= now) on the global
  /// queue. The callback becomes an EventFn built in place in its queue
  /// slot: its captures must fit the inline budget (kEventCaptureBytes)
  /// and be trivially copyable — scheduling never heap-allocates. Must
  /// not be called from an arc lane (global events are coordinator-only).
  template <class F>
  EventId schedule_at(SimTime t, F&& f) {
    return schedule_arc_at(kGlobalArc, t, std::forward<F>(f));
  }

  /// Schedules `f` `delay` microseconds from now (delay >= 0).
  template <class F>
  EventId schedule_after(SimTime delay, F&& f) {
    D2_REQUIRE(delay >= 0);
    return schedule_arc_at(kGlobalArc, now() + delay, std::forward<F>(f));
  }

  /// Schedules `f` at time `t` on arc `arc`'s queue (kGlobalArc for the
  /// global queue). From an arc lane, `arc` must be the lane's own arc;
  /// the push is direct when `t` falls inside the current window and
  /// staged in the mailbox otherwise (returning kNoEvent).
  template <class F>
  EventId schedule_arc_at(int arc, SimTime t, F&& f) {
    D2_REQUIRE_MSG(arc >= kGlobalArc && arc < arcs_, "arc index out of range");
    // Direct tl_lane_ member reads, no reference — see now().
    if (tl_lane_.owner == this) {
      D2_REQUIRE_MSG(
          arc == tl_lane_.arc,
          "arc lanes may only schedule onto their own arc; cross-arc and "
          "global effects must run from the coordinator");
      D2_REQUIRE_MSG(t >= tl_lane_.now, "cannot schedule into the past");
      if (t < window_end_) {
        // Fires inside the window this lane is currently draining: push
        // straight onto the lane's own queue (single-writer) with a
        // lane-striped merge key above every pre-window key.
        const std::uint64_t idx = ++lane_pushes_[static_cast<std::size_t>(arc)];
        D2_REQUIRE_MSG(idx < kLaneOrderStride,
                       "lane push budget exhausted within one window");
        return queues_[static_cast<std::size_t>(arc)].push_ordered(
            t,
            window_base_ +
                static_cast<std::uint64_t>(arc) * kLaneOrderStride + idx,
            std::forward<F>(f));
      }
      mailbox_.post(arc, t, arc, EventFn(std::forward<F>(f)));
      return kNoEvent;
    }
    D2_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
    return queues_[queue_index(arc)].push_ordered(t, order_counter_++,
                                                  std::forward<F>(f));
  }

  template <class F>
  EventId schedule_arc_after(int arc, SimTime delay, F&& f) {
    D2_REQUIRE(delay >= 0);
    return schedule_arc_at(arc, now() + delay, std::forward<F>(f));
  }

  /// Cancels a pending *global-queue* event; no-op if already fired.
  /// Ids returned for arc-queue events are not cancellable (arc events
  /// use deadline-check patterns instead — see System's TTL refresh).
  bool cancel(EventId id) {
    return queues_[static_cast<std::size_t>(arcs_)].cancel(id);
  }

  /// Runs until every queue is empty (serial merged order).
  void run();

  /// Runs all events with time <= t in deterministic merged order, then
  /// sets now to t. With workers > 1, stretches of arc-local events
  /// between global events execute as parallel windows.
  void run_until(SimTime t);

  /// Runs a single event if one is pending (serial merged order);
  /// returns false if all queues are empty.
  bool step();

  /// Runs fn(arc) for every arc as confined lanes at the current time —
  /// the bulk-application hook for batched workload ops (core/op_batch.h).
  /// Everything the lanes schedule is mailboxed and delivered at the
  /// closing barrier; with workers() == 1 the lanes run inline, in arc
  /// order, on the caller.
  // d2-lint: allow(std-function) — one type-erased call per phase barrier
  void run_arc_phase(const std::function<void(int)>& fn);

  /// Runs fn(arc) for every arc as lanes with an *open push window* ending
  /// at `window_end` (exclusive): unlike run_arc_phase, lanes may advance
  /// their own clock and interleave their arc's pending events with bulk
  /// work via lane_advance(). The caller guarantees every lane_advance
  /// target lies strictly before `window_end`, which must not span a
  /// pending global event. Used by core/op_batch.h to merge replayed
  /// workload ops with arc-local timer events in one barrier (DESIGN.md
  /// §12). Events left in a lane's queue past its last advance stay
  /// pending; the coordinator clock afterwards is the furthest lane time,
  /// capped back to the earliest still-pending event.
  // d2-lint: allow(std-function) — one type-erased call per window barrier
  void run_op_window(SimTime window_end, const std::function<void(int)>& fn);

  /// From inside a run_op_window lane: pops and executes this lane's
  /// events with time <= t (events tied with an op run first, matching
  /// the serial run_until-then-apply schedule), then sets the lane clock
  /// to t. Requires t < the window end and t >= the lane clock.
  void lane_advance(SimTime t);

  /// Registers a hook the simulator invokes at every *commit point*: just
  /// before a global-queue event is popped, at the idle fixpoint of run /
  /// run_until, and at the start of an arc phase or op window. Commit
  /// points are mode-independent — they fall at the same simulated times
  /// with the same coordinator clock for any arcs/workers setting — so
  /// cross-arc commitments staged by arc lanes (e.g. core::System's
  /// bandwidth-link reservations) resolve identically in serial and
  /// parallel execution. The hook may schedule events (clamped >= now())
  /// but must not pop any; it is called once per global event / barrier,
  /// not per event.
  // d2-lint: allow(std-function) — invoked per commit point, not per event
  void set_commit_hook(std::function<void()> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Earliest pending event time across all queues, or
  /// std::numeric_limits<SimTime>::max() when idle.
  SimTime next_event_time() const;

  /// Earliest pending *global-queue* event, or max() when none. This is
  /// the op-batch fence: arc-local events merge into op windows, so only
  /// a global event forces a flush (core/op_batch.h).
  SimTime next_global_event_time() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t events_pending() const;

  /// Order-insensitive digest of everything executed: the wrapping sum of
  /// all executed event times. Within one engine mode the execution order
  /// is deterministic, but window *boundaries* differ between adaptive
  /// and conservative horizons — this digest is equal whenever the same
  /// multiset of events ran, which is what the window-trace differential
  /// tests assert (tests/test_partition.cc).
  std::uint64_t event_time_checksum() const { return time_checksum_; }

  /// Parallel windows executed so far (event windows + op windows).
  std::uint64_t windows_executed() const { return windows_; }

 private:
  /// Per-thread lane binding. Keyed by owner so nested simulators
  /// (parallel trials each running their own) never cross-talk.
  struct LaneCtx {
    const Simulator* owner = nullptr;
    int arc = -1;
    SimTime now = 0;
  };
  /// RAII lane binding for the duration of one lane execution. Also
  /// mirrors the binding into the process-wide lane::tl_binding so
  /// store/core shard mutators can run their D2_ASSERT_OWNER_LANE
  /// cross-check without depending on the simulator (common/lane.h).
  struct LaneGuard {
    LaneGuard(const Simulator* owner, int arc, SimTime now) {
      tl_lane_ = LaneCtx{owner, arc, now};
      lane::bind(owner, arc);
    }
    ~LaneGuard() {
      lane::unbind();
      tl_lane_ = LaneCtx{};
    }
  };

  /// Merge-key stride reserved per lane per window; bounds how many
  /// events one lane may push inside a single window.
  static constexpr std::uint64_t kLaneOrderStride = std::uint64_t{1} << 20;

  std::size_t queue_index(int arc) const {
    return static_cast<std::size_t>(arc == kGlobalArc ? arcs_ : arc);
  }

  /// Index of the queue holding the globally earliest (time, order)
  /// event; -1 when all queues are empty.
  int min_queue() const;
  /// Pops and executes the head of queue `qi` on the coordinator.
  void step_queue(int qi);
  /// Executes one parallel window: all arc events with time < window_end.
  void run_window(SimTime window_end);
  /// Releases mailboxed messages into their queues with fresh merge keys.
  void deliver_mailbox();
  /// Runs the commit hook (if any); true when it scheduled new events,
  /// meaning the merged head must be re-evaluated before popping.
  bool commit();
  /// Folds per-lane counters/digests into the totals after a barrier and
  /// updates the window metrics; returns the furthest lane time.
  SimTime fold_lanes(SimTime window_start, SimTime window_end);

  // constinit: no dynamic-init TLS wrapper. Besides being faster, the
  // wrapper trips a GCC 12 UBSan false positive ("member access within
  // null pointer") on every access from another TU at -O2.
  static thread_local constinit LaneCtx tl_lane_;

  int arcs_;
  SimTime lookahead_;
  // [0, arcs_) arc-local; [arcs_] global — hence the `queue` domain.
  std::vector<EventQueue> queues_ D2_SHARDED_BY_ARC(queue);
  std::uint64_t order_counter_ = 1;
  Mailbox mailbox_;
  WorkerPool pool_;

  // Window state (coordinator-written; lanes read window_end_/base_ and
  // each lane writes only its own lane_* slot).
  SimTime window_end_ = 0;  // exclusive; 0 = no window open
  std::uint64_t window_base_ = 0;
  std::vector<std::uint64_t> lane_pushes_ D2_SHARDED_BY_ARC(arc);
  // Per-lane events processed / last event time / checksum partials.
  std::vector<std::uint64_t> lane_events_ D2_SHARDED_BY_ARC(arc);
  std::vector<SimTime> lane_last_time_ D2_SHARDED_BY_ARC(arc);
  std::vector<std::uint64_t> lane_time_sum_ D2_SHARDED_BY_ARC(arc);

  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t time_checksum_ = 0;
  // d2-lint: allow(std-function) — invoked per commit point, not per event
  std::function<void()> commit_hook_;

  // Partition-coordinator observability (exported as sim.window.*): how
  // many windows ran, how wide they were, how much work they carried and
  // how evenly the lanes shared it.
  std::uint64_t windows_ = 0;
  SimTime window_span_sum_ = 0;
  SimTime window_span_max_ = 0;
  std::uint64_t window_events_ = 0;
  std::uint64_t lane_busy_num_ = 0;  // sum over windows of total lane events
  std::uint64_t lane_busy_den_ = 0;  // sum over windows of arcs * max lane

  obs::Registry* metrics_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
};

}  // namespace d2::sim
