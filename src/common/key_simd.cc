#include "common/key_simd.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define D2_KEY_SIMD_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <immintrin.h>
#endif
#endif

namespace d2 {
namespace {

/// True when SIMD kernels must not be selected: the D2_FORCE_SCALAR
/// compile definition, or the environment variable set to anything but
/// "" / "0". Read once at dispatch resolution — a fixed per-process
/// input, like the CPU feature set, so determinism is unaffected.
[[maybe_unused]] bool force_scalar() {
#if defined(D2_FORCE_SCALAR)
  return true;
#else
  // getenv is only racy against setenv, which this process never
  // calls. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("D2_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
#endif
}

std::size_t lower_scalar(const Key* keys, std::size_t n, const Key& needle) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (keys[mid] < needle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t upper_scalar(const Key* keys, std::size_t n, const Key& needle) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (!(needle < keys[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

#if defined(D2_KEY_SIMD_X86) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(D2_FORCE_SCALAR)
#define D2_KEY_SIMD_AVX2 1

/// a < b via two 32-byte equality probes. Keys are 8 native-endian
/// uint64 limbs in big-endian word order, so the lowest differing *byte*
/// offset identifies the most significant differing *limb* (bytes of
/// more significant limbs come first and are all equal), and one word
/// compare on that limb decides the order.
__attribute__((target("avx2"))) inline bool key_less_avx2(const Key& a,
                                                          const Key& b) {
  const auto* pa = reinterpret_cast<const __m256i*>(&a);
  const auto* pb = reinterpret_cast<const __m256i*>(&b);
  const auto eq0 = static_cast<std::uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(_mm256_loadu_si256(pa), _mm256_loadu_si256(pb))));
  if (eq0 != 0xffffffffu) {
    const unsigned limb = static_cast<unsigned>(__builtin_ctz(~eq0)) >> 3;
    return a.limb(limb) < b.limb(limb);
  }
  const auto eq1 = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_loadu_si256(pa + 1),
                                             _mm256_loadu_si256(pb + 1))));
  if (eq1 != 0xffffffffu) {
    const unsigned limb = 4 + (static_cast<unsigned>(__builtin_ctz(~eq1)) >> 3);
    return a.limb(limb) < b.limb(limb);
  }
  return false;  // equal
}

__attribute__((target("avx2"))) std::size_t lower_avx2(const Key* keys,
                                                       std::size_t n,
                                                       const Key& needle) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    // Pull both possible next probes while this compare resolves.
    D2_PREFETCH(keys + (lo + mid) / 2);
    D2_PREFETCH(keys + (mid + 1 + hi) / 2);
    if (key_less_avx2(keys[mid], needle)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

__attribute__((target("avx2"))) std::size_t upper_avx2(const Key* keys,
                                                       std::size_t n,
                                                       const Key& needle) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    D2_PREFETCH(keys + (lo + mid) / 2);
    D2_PREFETCH(keys + (mid + 1 + hi) / 2);
    if (!key_less_avx2(needle, keys[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
#endif  // D2_KEY_SIMD_AVX2

using BoundFn = std::size_t (*)(const Key*, std::size_t, const Key&);

struct Kernels {
  BoundFn lower;
  BoundFn upper;
  const char* name;
};

Kernels resolve() {
#if defined(D2_KEY_SIMD_AVX2)
  if (!force_scalar() && __builtin_cpu_supports("avx2")) {
    return Kernels{lower_avx2, upper_avx2, "avx2"};
  }
#endif
  return Kernels{lower_scalar, upper_scalar, "scalar"};
}

const Kernels& kernels() {
  static const Kernels k = resolve();
  return k;
}

}  // namespace

std::size_t key_lower_bound(const Key* keys, std::size_t n,
                            const Key& needle) {
  return kernels().lower(keys, n, needle);
}

std::size_t key_upper_bound(const Key* keys, std::size_t n,
                            const Key& needle) {
  return kernels().upper(keys, n, needle);
}

std::size_t key_lower_bound_scalar(const Key* keys, std::size_t n,
                                   const Key& needle) {
  return lower_scalar(keys, n, needle);
}

std::size_t key_upper_bound_scalar(const Key* keys, std::size_t n,
                                   const Key& needle) {
  return upper_scalar(keys, n, needle);
}

const char* key_search_kernel() { return kernels().name; }

}  // namespace d2
