#include "common/hash.h"

#include <cstring>

#include "common/assert.h"

namespace d2 {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1::Sha1()
    : h_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1::update(const void* data, std::size_t len) {
  D2_REQUIRE_MSG(!finalized_, "Sha1 reused after digest()");
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  while (len > 0) {
    std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

Sha1Digest Sha1::digest() {
  D2_REQUIRE_MSG(!finalized_, "Sha1 reused after digest()");
  finalized_ = true;
  const std::uint64_t bit_len = total_len_ * 8;
  // Append 0x80, zero-pad to 56 mod 64, then the 64-bit big-endian length.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    while (buffer_len_ < 64) buffer_[buffer_len_++] = 0;
    process_block(buffer_.data());
    buffer_len_ = 0;
  }
  while (buffer_len_ < 56) buffer_[buffer_len_++] = 0;
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  process_block(buffer_.data());

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::hash(std::string_view s) {
  Sha1 h;
  h.update(s);
  return h.digest();
}

std::string to_hex(const Sha1Digest& d) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(d.size() * 2);
  for (std::uint8_t b : d) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) { return fnv1a64(s.data(), s.size()); }

std::uint16_t hash16(std::string_view s) {
  std::uint64_t h = fnv1a64(s);
  return static_cast<std::uint16_t>(h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48));
}

}  // namespace d2
