// 512-bit DHT keys and ring arithmetic.
//
// D2 keys are 64 bytes (paper §4.2, Fig 4). Keys form a circular ID space
// of size 2^512; the node responsible for a key is the successor of the key
// on the ring. This class provides the lexicographic ordering that makes
// the locality-preserving encoding work (byte-wise big-endian comparison)
// plus the modular arithmetic the load balancer needs (distance, midpoint).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>

namespace d2 {

class Rng;

class Key {
 public:
  static constexpr std::size_t kBytes = 64;
  static constexpr std::size_t kBits = kBytes * 8;

  /// Zero key.
  constexpr Key() : bytes_{} {}

  /// Key from raw big-endian bytes (64 of them).
  static Key from_bytes(const std::array<std::uint8_t, kBytes>& b);

  /// Key whose low 8 bytes are `v` (useful in tests).
  static Key from_uint64(std::uint64_t v);

  /// Uniformly random key.
  static Key random(Rng& rng);

  /// Smallest / largest keys.
  static Key min();
  static Key max();

  const std::array<std::uint8_t, kBytes>& bytes() const { return bytes_; }
  std::array<std::uint8_t, kBytes>& mutable_bytes() { return bytes_; }

  std::uint8_t byte(std::size_t i) const { return bytes_[i]; }
  void set_byte(std::size_t i, std::uint8_t v) { bytes_[i] = v; }

  /// Low 8 bytes as an integer (inverse of from_uint64 for small keys).
  std::uint64_t low64() const;

  /// Big-endian lexicographic comparison == numeric comparison.
  std::strong_ordering operator<=>(const Key& o) const {
    int c = std::memcmp(bytes_.data(), o.bytes_.data(), kBytes);
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  bool operator==(const Key& o) const { return bytes_ == o.bytes_; }

  /// this + o (mod 2^512).
  Key operator+(const Key& o) const;
  /// this - o (mod 2^512).
  Key operator-(const Key& o) const;
  /// this >> 1.
  Key half() const;
  /// this + 1 (mod 2^512).
  Key next() const;

  /// Clockwise distance from `from` to `to` on the ring: (to - from) mod 2^512.
  static Key distance(const Key& from, const Key& to) { return to - from; }

  /// Point halfway along the clockwise arc from `from` to `to`.
  static Key midpoint(const Key& from, const Key& to);

  /// True iff `k` lies in the clockwise half-open arc (from, to].
  /// This is the "key k is owned by the successor node" test: node with ID
  /// `to` owns (predecessor_id, to]. When from == to, the arc is the whole
  /// ring (a single node owns everything).
  static bool in_arc(const Key& k, const Key& from, const Key& to);

  /// Hex string (128 chars). `short_form` gives the first 8 chars.
  std::string hex() const;
  std::string short_hex() const;

  /// Fraction of the ring in [0, 1) this key sits at (top 64 bits).
  double ring_position() const;

 private:
  // Big-endian: bytes_[0] is the most significant byte.
  std::array<std::uint8_t, kBytes> bytes_;
};

std::ostream& operator<<(std::ostream& os, const Key& k);

struct KeyHash {
  std::size_t operator()(const Key& k) const;
};

}  // namespace d2
