// 512-bit DHT keys and ring arithmetic.
//
// D2 keys are 64 bytes (paper §4.2, Fig 4). Keys form a circular ID space
// of size 2^512; the node responsible for a key is the successor of the key
// on the ring. This class provides the lexicographic ordering that makes
// the locality-preserving encoding work (byte-wise big-endian comparison)
// plus the modular arithmetic the load balancer needs (distance, midpoint).
//
// Storage is eight native-endian uint64 limbs in big-endian *word order*
// (limbs_[0] is the most significant 64 bits), so comparison is at most 8
// word compares and +/-/half are carry-propagating word loops — the
// byte-oriented view of the Fig-4 encoding is preserved exactly through
// the bytes()/from_bytes() conversion shims. The hot operations are
// defined inline here because every ring lookup, replica placement and
// load-balance scan bottoms out in them.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>

namespace d2 {

class Rng;

class Key {
 public:
  static constexpr std::size_t kBytes = 64;
  static constexpr std::size_t kBits = kBytes * 8;
  static constexpr std::size_t kLimbs = 8;  // 64-bit words, big-endian order

  /// Zero key.
  constexpr Key() : limbs_{} {}

  /// Key from raw big-endian bytes (64 of them).
  static Key from_bytes(const std::array<std::uint8_t, kBytes>& b) {
    Key k;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      k.limbs_[i] = load_be64(b.data() + 8 * i);
    }
    return k;
  }

  /// Key whose low 8 bytes are `v` (useful in tests).
  static Key from_uint64(std::uint64_t v) {
    Key k;
    k.limbs_[kLimbs - 1] = v;
    return k;
  }

  /// Key whose high 8 bytes are `v`, remaining limbs zero. Arc partition
  /// bounds (common/arc_plan.h) live entirely in the top limb, so this is
  /// the inverse of limb(0) for such keys.
  static Key from_high64(std::uint64_t v) {
    Key k;
    k.limbs_[0] = v;
    return k;
  }

  /// Uniformly random key.
  static Key random(Rng& rng);

  /// Smallest / largest keys.
  static Key min() { return Key{}; }
  static Key max() {
    Key k;
    k.limbs_.fill(~std::uint64_t{0});
    return k;
  }

  /// Big-endian byte view (conversion shim for the Fig-4 codec and trace
  /// I/O; returns by value — bind it to a local before taking iterators).
  std::array<std::uint8_t, kBytes> bytes() const {
    std::array<std::uint8_t, kBytes> b;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      store_be64(b.data() + 8 * i, limbs_[i]);
    }
    return b;
  }

  /// The i-th most significant byte.
  std::uint8_t byte(std::size_t i) const {
    return static_cast<std::uint8_t>(limbs_[i >> 3] >> (8 * (7 - (i & 7))));
  }

  /// The i-th most significant 64-bit limb.
  std::uint64_t limb(std::size_t i) const { return limbs_[i]; }

  /// Low 8 bytes as an integer (inverse of from_uint64 for small keys).
  std::uint64_t low64() const { return limbs_[kLimbs - 1]; }

  /// Big-endian lexicographic comparison == numeric comparison. The
  /// relational operators are spelled out (rather than synthesized from
  /// <=>) so the hot `a < b` compiles to a bare limb-compare loop with no
  /// intermediate ordering value.
  std::strong_ordering operator<=>(const Key& o) const {
    for (std::size_t i = 0; i < kLimbs; ++i) {
      if (limbs_[i] != o.limbs_[i]) {
        return limbs_[i] < o.limbs_[i] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }
  bool operator<(const Key& o) const {
    for (std::size_t i = 0; i < kLimbs; ++i) {
      if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i];
    }
    return false;
  }
  bool operator>(const Key& o) const { return o < *this; }
  bool operator<=(const Key& o) const { return !(o < *this); }
  bool operator>=(const Key& o) const { return !(*this < o); }
  bool operator==(const Key& o) const { return limbs_ == o.limbs_; }

  /// this + o (mod 2^512).
  Key operator+(const Key& o) const {
    Key r;
#if defined(__SIZEOF_INT128__)
    unsigned __int128 acc = 0;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      acc += limbs_[i];
      acc += o.limbs_[i];
      r.limbs_[i] = static_cast<std::uint64_t>(acc);
      acc >>= 64;
    }
#else
    std::uint64_t carry = 0;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      const std::uint64_t s = limbs_[i] + o.limbs_[i];
      const std::uint64_t c1 = static_cast<std::uint64_t>(s < limbs_[i]);
      r.limbs_[i] = s + carry;
      carry = c1 | static_cast<std::uint64_t>(r.limbs_[i] < s);
    }
#endif
    return r;
  }

  /// this - o (mod 2^512).
  Key operator-(const Key& o) const {
    Key r;
#if defined(__SIZEOF_INT128__)
    std::uint64_t borrow = 0;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      const unsigned __int128 d = static_cast<unsigned __int128>(limbs_[i]) -
                                  o.limbs_[i] - borrow;
      r.limbs_[i] = static_cast<std::uint64_t>(d);
      borrow = static_cast<std::uint64_t>(d >> 64) & 1;
    }
#else
    std::uint64_t borrow = 0;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      const std::uint64_t d = limbs_[i] - o.limbs_[i];
      const std::uint64_t b1 = static_cast<std::uint64_t>(limbs_[i] < o.limbs_[i]);
      r.limbs_[i] = d - borrow;
      borrow = b1 | static_cast<std::uint64_t>(d < borrow);
    }
#endif
    return r;
  }

  /// this >> 1.
  Key half() const {
    Key r;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      r.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
      carry = limbs_[i] & 1;
    }
    return r;
  }

  /// this + 1 (mod 2^512).
  Key next() const {
    Key r = *this;
    for (int i = static_cast<int>(kLimbs) - 1; i >= 0; --i) {
      if (++r.limbs_[i] != 0) break;  // no carry out of this limb
    }
    return r;
  }

  /// Clockwise distance from `from` to `to` on the ring: (to - from) mod 2^512.
  static Key distance(const Key& from, const Key& to) { return to - from; }

  /// Point halfway along the clockwise arc from `from` to `to`.
  static Key midpoint(const Key& from, const Key& to) {
    return from + distance(from, to).half();
  }

  /// True iff `k` lies in the clockwise half-open arc (from, to].
  /// This is the "key k is owned by the successor node" test: node with ID
  /// `to` owns (predecessor_id, to]. When from == to, the arc is the whole
  /// ring (a single node owns everything).
  static bool in_arc(const Key& k, const Key& from, const Key& to) {
    if (from == to) return true;  // whole ring
    if (from < to) return from < k && k <= to;
    // Arc wraps through zero.
    return k > from || k <= to;
  }

  /// Hex string (128 chars). `short_form` gives the first 8 chars.
  std::string hex() const;
  std::string short_hex() const;

  /// Fraction of the ring in [0, 1) this key sits at (top 64 bits).
  double ring_position() const;

 private:
  static std::uint64_t load_be64(const std::uint8_t* p) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = byteswap64(w);
    }
    return w;
  }
  static void store_be64(std::uint8_t* p, std::uint64_t w) {
    if constexpr (std::endian::native == std::endian::little) {
      w = byteswap64(w);
    }
    std::memcpy(p, &w, 8);
  }
  static std::uint64_t byteswap64(std::uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(w);
#else
    w = ((w & 0x00ff00ff00ff00ffull) << 8) | ((w >> 8) & 0x00ff00ff00ff00ffull);
    w = ((w & 0x0000ffff0000ffffull) << 16) |
        ((w >> 16) & 0x0000ffff0000ffffull);
    return (w << 32) | (w >> 32);
#endif
  }

  // limbs_[0] holds bytes [0, 8) of the big-endian byte view (the most
  // significant word), limbs_[7] holds bytes [56, 64).
  std::array<std::uint64_t, kLimbs> limbs_;
};

std::ostream& operator<<(std::ostream& os, const Key& k);

struct KeyHash {
  std::size_t operator()(const Key& k) const;
};

}  // namespace d2
