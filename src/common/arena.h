// Bump-pointer arena for trace generation (ROADMAP item 5).
//
// Workload generators and sim::FailureTrace build tens of millions of
// small immutable objects (file paths, URLs, down-interval arrays) whose
// lifetime is exactly the lifetime of their producer. Allocating each one
// through the general-purpose heap dominates the setup phase of
// million-user runs; an arena turns that into a pointer bump plus one
// chunk allocation per few thousand objects, and frees everything at once
// when the producer dies.
//
// The arena hands out raw storage (`alloc`), interned string views
// (`intern`), and arrays of trivially-destructible objects
// (`alloc_array`). Nothing is ever freed individually and no destructors
// run, so only trivially-destructible payloads are allowed. Chunks are
// heap blocks owned via unique_ptr, so moving the Arena (or an object
// holding one) never invalidates handed-out pointers. Copying is
// disabled: a copy could not share ownership of the storage behind
// previously returned views.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/assert.h"

namespace d2::common {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    D2_REQUIRE(chunk_bytes > 0);
  }

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` bytes at `align` (power of two).
  /// Oversized requests get a dedicated chunk; the current bump chunk
  /// stays active so its tail is not wasted.
  char* alloc(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    D2_REQUIRE(align > 0 && (align & (align - 1)) == 0);
    std::size_t head = (used_ + align - 1) & ~(align - 1);
    if (head + n > cap_) {
      if (n + align > chunk_bytes_) return new_chunk(n + align, align);
      grow();
      head = (used_ + align - 1) & ~(align - 1);
    }
    char* p = base_ + head;
    used_ = head + n;
    return p;
  }

  /// Copies `s` into the arena and returns a view of the copy. Each call
  /// stores a fresh copy — producers intern a path once at creation and
  /// share the view across every record that mentions it.
  std::string_view intern(std::string_view s) {
    if (s.empty()) return {};
    char* p = alloc(s.size(), 1);
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Value-initialized array of `n` objects. No destructors ever run.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is freed without running destructors");
    if (n == 0) return nullptr;
    char* p = alloc(n * sizeof(T), alignof(T));
    return new (p) T[n]();
  }

  /// Bytes handed out (excluding alignment padding and chunk slack).
  std::size_t bytes_used() const { return total_used_; }
  /// Bytes reserved from the heap across all chunks.
  std::size_t bytes_reserved() const { return total_reserved_; }

 private:
  void grow() {
    total_used_ += used_;
    chunks_.push_back(std::make_unique<char[]>(chunk_bytes_));
    base_ = chunks_.back().get();
    cap_ = chunk_bytes_;
    used_ = 0;
    total_reserved_ += chunk_bytes_;
  }

  // Dedicated chunk for an oversized request; `n` already includes
  // `align` bytes of slack so the aligned pointer plus the request fits.
  char* new_chunk(std::size_t n, std::size_t align) {
    auto block = std::make_unique<char[]>(n);
    char* raw = block.get();
    chunks_.push_back(std::move(block));
    total_reserved_ += n;
    total_used_ += n;
    const auto addr = reinterpret_cast<std::uintptr_t>(raw);
    return raw + ((align - (addr & (align - 1))) & (align - 1));
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* base_ = nullptr;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::size_t total_used_ = 0;
  std::size_t total_reserved_ = 0;
};

}  // namespace d2::common
