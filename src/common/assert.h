// Precondition / invariant checking for the d2 libraries.
//
// D2_REQUIRE is for preconditions on public APIs: violations throw
// d2::PreconditionError so callers (and tests) can observe them.
// D2_ASSERT is for internal invariants: violations also throw, carrying
// file/line, so simulation bugs surface immediately instead of corrupting
// long experiment runs.
// D2_DCHECK is the paranoid tier: checks too hot for release builds
// (per-element loop assertions, full-structure audits). They compile to
// nothing unless D2_PARANOID is defined (cmake -DD2_PARANOID=ON), in
// which case they behave exactly like D2_ASSERT. The condition is never
// evaluated in non-paranoid builds, but stays parsed so it cannot rot.
#pragma once

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace d2 {

class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_assert(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw InvariantError(os.str());
}
}  // namespace detail

/// True in paranoid builds (-DD2_PARANOID=ON): D2_DCHECK fires and the
/// containers audit themselves on their mutation paths.
#ifdef D2_PARANOID
inline constexpr bool kParanoid = true;
#else
inline constexpr bool kParanoid = false;
#endif

/// Amortizes full-structure audits on hot mutation paths: an O(n) audit
/// runs roughly every n/16 mutations (every mutation while the structure
/// is small), capping paranoid overhead at a constant factor instead of
/// turning every push into an O(n) pass. Purely counter-based, so audit
/// points are deterministic.
class ParanoidGate {
 public:
  /// True when an audit is due for a structure currently holding `size`
  /// elements. Call once per mutation.
  bool due(std::size_t size) {
    if (++ticks_ < size / 16) return false;
    ticks_ = 0;
    return true;
  }

 private:
  std::size_t ticks_ = 0;
};

}  // namespace d2

#define D2_REQUIRE(expr)                                              \
  do {                                                                \
    if (!(expr)) ::d2::detail::fail_require(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define D2_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) ::d2::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define D2_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::d2::detail::fail_assert(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define D2_ASSERT_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::d2::detail::fail_assert(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef D2_PARANOID
#define D2_DCHECK(expr) D2_ASSERT(expr)
#define D2_DCHECK_MSG(expr, msg) D2_ASSERT_MSG(expr, msg)
// Runs `stmt` (typically `check_invariants()` behind a ParanoidGate) on a
// mutation path in paranoid builds; vanishes entirely otherwise.
#define D2_PARANOID_AUDIT(stmt) \
  do {                          \
    stmt;                       \
  } while (0)
#else
// `(void)sizeof(...)` keeps the condition parsed and its names odr-quiet
// without evaluating anything at runtime.
#define D2_DCHECK(expr)     \
  do {                      \
    (void)sizeof((expr));   \
  } while (0)
#define D2_DCHECK_MSG(expr, msg) \
  do {                           \
    (void)sizeof((expr));        \
    (void)sizeof((msg));         \
  } while (0)
#define D2_PARANOID_AUDIT(stmt) \
  do {                          \
  } while (0)
#endif
