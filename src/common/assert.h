// Precondition / invariant checking for the d2 libraries.
//
// D2_REQUIRE is for preconditions on public APIs: violations throw
// d2::PreconditionError so callers (and tests) can observe them.
// D2_ASSERT is for internal invariants: violations also throw, carrying
// file/line, so simulation bugs surface immediately instead of corrupting
// long experiment runs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace d2 {

class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_assert(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace d2

#define D2_REQUIRE(expr)                                              \
  do {                                                                \
    if (!(expr)) ::d2::detail::fail_require(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define D2_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) ::d2::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define D2_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::d2::detail::fail_assert(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define D2_ASSERT_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::d2::detail::fail_assert(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
