// Batched key-search kernels with runtime CPU dispatch (DESIGN.md §11).
//
// SortedKeyIndex bottoms out in binary searches over contiguous runs of
// 64-byte Keys (chunk directory, in-chunk probes). Locality-preserving
// keys share long prefixes, so the scalar limb-compare loop usually
// walks 6-8 limbs with a branch per limb; the AVX2 kernel instead finds
// the first differing limb with two 32-byte equality probes and resolves
// the order with a single word compare.
//
// Dispatch is resolved once per process: AVX2 when the CPU has it,
// otherwise the scalar path (always built). `D2_FORCE_SCALAR` — the
// compile definition or a non-empty, non-"0" environment variable —
// pins the scalar path for differential testing and non-SIMD CI.
#pragma once

#include <cstddef>

#include "common/key.h"

// Best-effort cache-line prefetch (no-op off GCC/Clang).
#if defined(__GNUC__) || defined(__clang__)
#define D2_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define D2_PREFETCH(addr) ((void)0)
#endif

namespace d2 {

/// Index of the first key in the sorted run keys[0, n) that is >= needle
/// (n when all are smaller). Same contract as std::lower_bound.
std::size_t key_lower_bound(const Key* keys, std::size_t n, const Key& needle);

/// Index of the first key in the sorted run keys[0, n) that is > needle.
std::size_t key_upper_bound(const Key* keys, std::size_t n, const Key& needle);

/// Always-built scalar references (differential tests, benches).
std::size_t key_lower_bound_scalar(const Key* keys, std::size_t n,
                                   const Key& needle);
std::size_t key_upper_bound_scalar(const Key* keys, std::size_t n,
                                   const Key& needle);

/// Name of the kernel the dispatched entry points use: "avx2" | "scalar".
const char* key_search_kernel();

}  // namespace d2
