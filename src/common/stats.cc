#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace d2 {

double Stats::sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double Stats::mean() const {
  D2_REQUIRE(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Stats::min() const {
  D2_REQUIRE(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  D2_REQUIRE(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  D2_REQUIRE(!samples_.empty());
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Stats::normalized_stddev() const {
  const double m = mean();
  D2_REQUIRE(m != 0);
  return stddev() / m;
}

double Stats::geometric_mean() const { return d2::geometric_mean(samples_); }

double Stats::percentile(double p) const {
  D2_REQUIRE(!samples_.empty());
  D2_REQUIRE(p >= 0 && p <= 100);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double geometric_mean(const std::vector<double>& v) {
  D2_REQUIRE(!v.empty());
  double log_sum = 0;
  for (double x : v) {
    D2_REQUIRE_MSG(x > 0, "geometric mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

std::vector<double> ranked_descending(std::vector<double> v) {
  std::sort(v.begin(), v.end(), std::greater<double>());
  return v;
}

}  // namespace d2
