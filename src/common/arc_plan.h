// Contiguous keyspace partitioning for the arc-partitioned simulator.
//
// The 512-bit ring is split into `arcs` equal contiguous arcs by the top
// 64-bit limb alone: arc a owns keys k with
//
//     lower_bound(a) <= k < lower_bound(a + 1)
//
// where lower_bound(a) has top limb ceil(a * 2^64 / arcs) and zero
// elsewhere. arc_of() inverts that with one 64x64 -> 128-bit multiply:
// floor(limb0 * arcs / 2^64). The pair is an exact bijection — for any
// limb0 and 1 <= arcs <= 2^32, floor(limb0 * arcs / 2^64) == a iff
// ceil(a * 2^64 / arcs) <= limb0 < ceil((a+1) * 2^64 / arcs) — which the
// partition-ownership invariant (store::BlockMap::check_invariants) and
// tests/test_partition.cc re-verify at the boundary keys of every arc.
//
// This header sits in common/ (not sim/) because both the store layer
// (BlockMap slices) and the sim layer (per-arc event queues) route by it,
// and store must not depend on sim.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/key.h"

namespace d2 {

class ArcPlan {
 public:
  /// Routing cost is independent of the arc count, but every arc carries
  /// a queue + state shard; this cap keeps configuration typos from
  /// allocating absurd fleets of near-empty shards.
  static constexpr int kMaxArcs = 1024;

  explicit ArcPlan(int arcs = 1) : arcs_(arcs) {
    D2_REQUIRE_MSG(arcs >= 1 && arcs <= kMaxArcs,
                   "arc count must be in [1, kMaxArcs]");
  }

  int arcs() const { return arcs_; }

  /// Which arc owns key `k`.
  int arc_of(const Key& k) const {
    if (arcs_ == 1) return 0;
    return static_cast<int>(mul_high(k.limb(0), static_cast<std::uint32_t>(arcs_)));
  }

  /// First key owned by arc `a` (arc 0 starts at Key::min()). Arc `a`
  /// owns [lower_bound(a), lower_bound(a+1)), with the last arc also
  /// owning Key::max(): lower_bound(arcs()) saturates to Key::max().
  Key lower_bound(int a) const {
    D2_REQUIRE_MSG(a >= 0 && a <= arcs_, "arc index out of range");
    if (a == 0) return Key::min();
    if (a == arcs_) return Key::max();  // saturating upper sentinel
    return Key::from_high64(ceil_div_pow64(static_cast<std::uint32_t>(a),
                                           static_cast<std::uint32_t>(arcs_)));
  }

 private:
  /// floor(limb0 * arcs / 2^64).
  static std::uint64_t mul_high(std::uint64_t limb0, std::uint32_t arcs) {
#if defined(__SIZEOF_INT128__)
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(limb0) * arcs) >> 64);
#else
    // Portable 64x32 -> high-64: split limb0 into 32-bit halves.
    const std::uint64_t lo = (limb0 & 0xffffffffull) * arcs;
    const std::uint64_t hi = (limb0 >> 32) * arcs + (lo >> 32);
    return hi >> 32;
#endif
  }

  /// ceil(a * 2^64 / arcs) for 0 < a < arcs (quotient fits in 64 bits).
  static std::uint64_t ceil_div_pow64(std::uint32_t a, std::uint32_t arcs) {
#if defined(__SIZEOF_INT128__)
    const unsigned __int128 num =
        (static_cast<unsigned __int128>(a) << 64) + arcs - 1;
    return static_cast<std::uint64_t>(num / arcs);
#else
    // Long division of a * 2^64 by arcs, 32 bits at a time, then round up
    // when a remainder is left.
    const std::uint64_t top = (static_cast<std::uint64_t>(a) << 32);
    const std::uint64_t q1 = top / arcs;
    const std::uint64_t r1 = top % arcs;
    const std::uint64_t q0 = (r1 << 32) / arcs;
    const std::uint64_t r0 = (r1 << 32) % arcs;
    return (q1 << 32) + q0 + (r0 != 0 ? 1 : 0);
#endif
  }

  int arcs_;
};

}  // namespace d2
