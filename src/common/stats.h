// Statistics helpers used by the experiment harnesses.
//
// The paper reports results as means, geometric means (speedups, §9.3),
// normalized standard deviation (load imbalance, §10) and ranked per-user
// series (Figs 8, 12). These helpers implement exactly those reductions.
#pragma once

#include <cstddef>
#include <vector>

namespace d2 {

/// Accumulates samples; all reductions are over the retained samples.
class Stats {
 public:
  void add(double v) { samples_.push_back(v); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// stddev / mean — the paper's load-imbalance metric (§10).
  double normalized_stddev() const;
  /// Geometric mean; requires all samples > 0.
  double geometric_mean() const;
  /// p in [0, 100]; nearest-rank percentile.
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Geometric mean of a vector (paper's speedup averaging).
double geometric_mean(const std::vector<double>& v);

/// Sorted copy, descending — for "ranked by decreasing X" figures.
std::vector<double> ranked_descending(std::vector<double> v);

}  // namespace d2
