// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes,
// so code locking them is invisible to -Wthread-safety. d2::Mutex wraps
// std::mutex as a D2_CAPABILITY and d2::MutexLock replaces
// std::lock_guard as a D2_SCOPED_CAPABILITY; with members declared
// D2_GUARDED_BY(mu_), Clang then proves every access is covered by a
// lock (see common/thread_annotations.h and DESIGN.md §13).
//
// d2::CondVar pairs a std::condition_variable with a d2::Mutex: wait()
// takes the Mutex directly (annotated D2_REQUIRES, since waiting
// releases and reacquires the same capability) and bridges to the
// std::unique_lock interface internally without an extra lock
// acquisition. Zero overhead over the unwrapped types — everything
// inlines to the identical std calls.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace d2 {

/// std::mutex with the `capability` attribute. Prefer MutexLock over
/// calling lock()/unlock() directly; the explicit calls exist for the
/// rare control flow RAII cannot express (and keep the analysis informed
/// through their acquire/release annotations).
class D2_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() D2_ACQUIRE() { mu_.lock(); }
  void unlock() D2_RELEASE() { mu_.unlock(); }
  bool try_lock() D2_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for CondVar's unique_lock bridge only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard equivalent) the analysis understands.
class D2_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) D2_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() D2_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over a d2::Mutex. Callers hold the Mutex itself
/// (no separate lock object), matching how the analysis tracks the
/// capability across the wait: wait() releases and reacquires `mu`, so
/// to Clang the capability is simply held throughout — exactly the
/// guarantee the caller observes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits until `pred()` holds, reacquires.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) D2_REQUIRES(mu) {
    // Adopt the already-held mutex into a unique_lock for the wait, then
    // release() so unique_lock's destructor does not unlock a mutex the
    // caller still owns.
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk, pred);
    lk.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace d2
