// Clang Thread Safety Analysis attribute macros (DESIGN.md §13).
//
// The d2 concurrency model has exactly two kinds of shared state:
//   - mutex-guarded structures (obs instruments, the worker pools), and
//   - arc-sharded containers confined to their owner lane (sim/core/store).
// The first kind is machine-checked at compile time by Clang's
// -Wthread-safety analysis through these macros: members carry
// D2_GUARDED_BY(mu_), private _locked() helpers carry D2_REQUIRES(mu_),
// and the d2::Mutex/d2::MutexLock wrappers (common/mutex.h) give the
// analysis the capability model std::mutex lacks. The second kind is
// checked by tools/d2_arc_check.py via the D2_SHARDED_BY_ARC marker
// below, plus the D2_ASSERT_OWNER_LANE runtime cross-check
// (common/lane.h) in paranoid builds.
//
// Under GCC (the container toolchain) every macro expands to nothing, so
// tier-1 builds are unaffected; the thread-safety CI job builds with
// Clang and -Werror=thread-safety to make the annotations load-bearing.
#pragma once

#if defined(__clang__)
#define D2_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define D2_THREAD_ANNOTATION(x)  // GCC warns on unknown attributes; elide.
#endif

/// Declares a type to be a capability (lockable): d2::Mutex.
#define D2_CAPABILITY(x) D2_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability:
/// d2::MutexLock.
#define D2_SCOPED_CAPABILITY D2_THREAD_ANNOTATION(scoped_lockable)

/// Data members readable/writable only while holding `x`.
#define D2_GUARDED_BY(x) D2_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members whose *pointee* is guarded by `x`.
#define D2_PT_GUARDED_BY(x) D2_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions callable only while holding the listed capabilities — the
/// `_locked()` helper convention.
#define D2_REQUIRES(...) D2_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions that acquire (and do not release) the listed capabilities.
#define D2_ACQUIRE(...) D2_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Functions that release previously held capabilities.
#define D2_RELEASE(...) D2_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Functions that acquire the capability iff they return `val`.
#define D2_TRY_ACQUIRE(val, ...) \
  D2_THREAD_ANNOTATION(try_acquire_capability(val, __VA_ARGS__))

/// Functions that must NOT be entered holding the listed capabilities
/// (deadlock prevention for self-locking public APIs).
#define D2_EXCLUDES(...) D2_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions returning a reference to a capability.
#define D2_RETURN_CAPABILITY(x) D2_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use must carry a comment justifying why the
/// analysis cannot see the invariant (the thread-safety CI job greps for
/// bare uses); prefer restructuring over opting out.
#define D2_NO_THREAD_SAFETY_ANALYSIS \
  D2_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a container as sharded by an index domain for the arc-ownership
/// checker (tools/d2_arc_check.py). Placed after the member name:
///
///   std::vector<Slice> slices_ D2_SHARDED_BY_ARC(arc);
///
/// Domains (DESIGN.md §13): `arc` — indexed by an expression derived
/// from arc_of()/lane_arc() or an owning arc loop variable; `slot` —
/// additionally admits shard_slot() (lane slot or the coordinator's
/// extra slot); `queue` — additionally admits queue_index()/min_queue()
/// (per-arc queues plus the global queue). The equivalent comment form
/// `// d2-arc: sharded(<domain>)` on the declaration line works where a
/// macro cannot (e.g. local typedefs). Expands to a Clang `annotate`
/// attribute so the marker also survives into the AST for the libclang
/// engine; GCC sees nothing.
#if defined(__clang__)
#define D2_SHARDED_BY_ARC(domain) \
  __attribute__((annotate("d2-arc:sharded:" #domain)))
#else
#define D2_SHARDED_BY_ARC(domain)
#endif
