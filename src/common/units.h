// Simulation time and data-size units used throughout d2.
//
// SimTime is a count of simulated microseconds since simulation start.
// All latencies, TTLs and intervals in the paper (30 s write-back cache,
// 1.25 h lookup-cache TTL, 10 min probe interval, 1 h pointer stabilization)
// are expressed through these helpers so call sites read like the paper.
#pragma once

#include <cstdint>

namespace d2 {

/// Simulated time in microseconds.
using SimTime = std::int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime microseconds(std::int64_t us) { return us; }
constexpr SimTime milliseconds(std::int64_t ms) { return ms * 1000; }
constexpr SimTime seconds(std::int64_t s) { return s * 1000 * 1000; }
constexpr SimTime minutes(std::int64_t m) { return seconds(m * 60); }
constexpr SimTime hours(std::int64_t h) { return minutes(h * 60); }
constexpr SimTime days(std::int64_t d) { return hours(d * 24); }

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_hours(SimTime t) { return to_seconds(t) / 3600.0; }

/// Data sizes in bytes.
using Bytes = std::int64_t;

constexpr Bytes kB(std::int64_t n) { return n * 1024; }
constexpr Bytes mB(std::int64_t n) { return n * 1024 * 1024; }
constexpr Bytes gB(std::int64_t n) { return n * 1024 * 1024 * 1024; }

/// Maximum block size in D2-FS / D2-Store (paper: "All blocks are at most
/// 8 KB in size").
constexpr Bytes kBlockSize = kB(8);

/// Link rates in bits per second.
using BitRate = std::int64_t;

constexpr BitRate kbps(std::int64_t n) { return n * 1000; }

/// Time to push `bytes` through a link of rate `rate` (no queueing).
constexpr SimTime transmission_time(Bytes bytes, BitRate rate) {
  // bytes*8 / (rate bits/s) seconds -> microseconds.
  return static_cast<SimTime>((static_cast<double>(bytes) * 8.0 * 1e6) /
                              static_cast<double>(rate));
}

}  // namespace d2
