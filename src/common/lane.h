// Thread-local lane ownership, and the paranoid runtime cross-check for
// the arc-confinement model (DESIGN.md §9/§13).
//
// The parallel-window engine binds each worker thread to one arc while
// it drains that arc's window (sim::Simulator's LaneGuard calls
// lane::bind/unbind). Arc-sharded containers in store/ and core/ may
// then assert, at their mutating entry points, that the executing
// thread actually owns the shard it is touching:
//
//   D2_ASSERT_OWNER_LANE(plan_.arc_of(k));
//
// Rules: an *unbound* thread (the coordinator between windows, test
// code, experiment setup) passes every check — cross-arc mutation from
// the coordinator is legal by design (readjustment, recovery sweeps).
// A *bound* thread must name its own arc; anything else throws
// d2::InvariantError. The check compiles out entirely unless
// D2_PARANOID is on, making it the runtime mirror of the static model
// enforced by tools/d2_arc_check.py: the AST checker proves index
// expressions are derived from the owning arc, this assert proves the
// thread executing them is the arc's lane.
//
// Lives in common/ (not sim/) so store:: and core:: can consult the
// binding without depending on the simulator.
#pragma once

#include <string>

#include "common/assert.h"

namespace d2::lane {

/// Which lane, if any, the current thread is bound to. `owner`
/// discriminates independent pools (e.g. two Simulators in one test
/// process on the same thread would rebind, last-wins — fine, binding
/// is scoped to a window).
struct Binding {
  const void* owner = nullptr;  ///< nullptr = unbound (coordinator).
  int arc = -1;
};

// constinit forces static initialization so GCC 12's UBSan does not
// instrument a TLS init-on-first-use wrapper (same rationale as
// Simulator::tl_lane_ in sim/simulator.h).
inline thread_local constinit Binding tl_binding{};

inline void bind(const void* owner, int arc) { tl_binding = {owner, arc}; }
inline void unbind() { tl_binding = {}; }

/// True when the current thread is bound to some lane.
inline bool bound() { return tl_binding.owner != nullptr; }

/// The bound arc, or -1 when unbound.
inline int current_arc() { return tl_binding.owner == nullptr ? -1 : tl_binding.arc; }

namespace detail {
[[noreturn]] inline void fail_owner_lane(int arc, const char* file, int line) {
  ::d2::detail::fail_assert(
      "lane owns shard", file, line,
      "thread bound to lane arc " + std::to_string(tl_binding.arc) +
          " touched arc " + std::to_string(arc) + "'s shard");
}

inline void check_owner_lane(int arc, const char* file, int line) {
  const Binding b = tl_binding;
  if (b.owner != nullptr && b.arc != arc) fail_owner_lane(arc, file, line);
}
}  // namespace detail

}  // namespace d2::lane

#ifdef D2_PARANOID
/// Asserts the current thread may mutate arc `arc`'s shard (see file
/// comment for the rules). Paranoid builds only.
#define D2_ASSERT_OWNER_LANE(arc) \
  ::d2::lane::detail::check_owner_lane((arc), __FILE__, __LINE__)
#else
// Parsed but never evaluated, mirroring D2_DCHECK.
#define D2_ASSERT_OWNER_LANE(arc) \
  do {                            \
    (void)sizeof((arc));          \
  } while (0)
#endif
