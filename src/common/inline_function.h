// Non-allocating small-buffer callable for hot scheduling paths.
//
// std::function type-erases through a heap allocation whenever the
// capture outgrows its tiny SSO buffer (16 bytes on libstdc++) — which is
// every real schedule site here, since a single 512-bit Key capture is
// already 64 bytes. InlineFunction fixes the capture budget at compile
// time instead: the closure is stored inline in the object, a
// static_assert rejects captures that don't fit, and the only per-call
// indirection is one function pointer.
//
// Captures must be trivially copyable and trivially destructible (raw
// pointers, Keys, integers, SimTimes — everything the simulator's event
// closures actually hold). That restriction is what makes InlineFunction
// itself trivially copyable, so containers of slots (the event queue's
// slab) move entries with memcpy and recycle them with no destructor
// bookkeeping. A closure that owns a resource (std::string, std::vector,
// std::function...) fails the static_assert by design: owning captures
// are exactly the allocations this type exists to forbid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace d2::common {

template <class Signature, std::size_t Capacity>
class InlineFunction;  // undefined; only the R(Args...) partial below

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  /// Empty (non-callable) function; `*this` is false until assigned.
  InlineFunction() = default;

  /// Wraps any callable whose capture state fits the inline budget.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    rebind(std::forward<F>(f));
  }

  /// Replaces the wrapped callable in place. Writes only the capture's
  /// actual footprint (sizeof the closure, not the whole Capacity), which
  /// is what keeps slab-resident instances — event queue slots — cheap to
  /// refill: a push with a pointer-sized capture touches 16 bytes, not
  /// the full budget.
  template <class F, class D = std::decay_t<F>>
  void rebind(F&& f) {
    static_assert(!std::is_same_v<D, InlineFunction>,
                  "rebind takes a raw callable, not another InlineFunction");
    static_assert(sizeof(D) <= Capacity,
                  "closure captures exceed the InlineFunction budget; "
                  "capture less or raise the capacity at the use site");
    static_assert(alignof(D) <= kAlign,
                  "closure alignment exceeds the InlineFunction buffer");
    static_assert(std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>,
                  "InlineFunction captures must be trivially copyable and "
                  "destructible (no owning captures on the hot path)");
    static_assert(std::is_invocable_r_v<R, const D&, Args...>,
                  "mutable closures are not supported by InlineFunction");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    invoke_ = [](const void* buf, Args... args) -> R {
      // The closure object was placement-new'd into buf_ as a D; calling
      // through a launder'd pointer is the defined way back to it.
      return (*std::launder(static_cast<const D*>(buf)))(
          std::forward<Args>(args)...);
    };
  }

  /// Calls the wrapped callable. Undefined when empty (the event queue
  /// guarantees only live slots are invoked).
  R operator()(Args... args) const {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Back to the empty state (releases nothing: captures are trivial).
  void reset() { invoke_ = nullptr; }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  // 8-byte alignment, not max_align_t: event captures are pointers, Keys
  // (uint64 limbs), and SimTimes, so 16-byte alignment would only pad
  // every slab slot by 8 bytes. A capture needing more (long double,
  // explicit alignas) fails the alignment static_assert.
  static constexpr std::size_t kAlign = alignof(std::uint64_t);

  // Mutable closures are intentionally unsupported (operator() is const
  // and invokes through a const D&): an event callback that mutates its
  // own capture would make replaying a popped slot order-sensitive.
  alignas(kAlign) unsigned char buf_[Capacity];
  R (*invoke_)(const void*, Args...) = nullptr;
};

}  // namespace d2::common
