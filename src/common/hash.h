// Hash functions used by d2.
//
// SHA-1 (implemented from scratch; no external deps) provides content
// hashes for block integrity chaining and the 20-byte volume IDs of the
// Fig 4 key encoding, matching the paper's use of content hashes in CFS.
// FNV-1a provides cheap 64-bit hashes for the "hash of path remainder"
// field and consistent-hashing of names in the traditional baselines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace d2 {

/// 20-byte SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1.
class Sha1 {
 public:
  Sha1();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must not be reused after.
  Sha1Digest digest();

  /// One-shot convenience.
  static Sha1Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

std::string to_hex(const Sha1Digest& d);

/// 64-bit FNV-1a.
std::uint64_t fnv1a64(std::string_view s);
std::uint64_t fnv1a64(const void* data, std::size_t len);

/// 16-bit hash derived from FNV-1a, used for the "2-byte hash of each
/// directory name" fallback encoding (paper §4.2, footnote 2).
std::uint16_t hash16(std::string_view s);

}  // namespace d2
