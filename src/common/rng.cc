#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace d2 {

namespace {
// SplitMix64, used to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  D2_REQUIRE(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  D2_REQUIRE(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  D2_REQUIRE(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  D2_REQUIRE(xm > 0 && alpha > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::int64_t Rng::geometric(double p) {
  D2_REQUIRE(p > 0 && p <= 1);
  if (p == 1.0) return 0;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::fork() { return Rng(next_u64()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  D2_REQUIRE(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace d2
