#include "common/key.h"

#include <ostream>

#include "common/rng.h"

namespace d2 {

Key Key::random(Rng& rng) {
  // One rng word per limb; identical key values to the historical
  // byte-filling implementation (which wrote each word big-endian).
  Key k;
  for (std::size_t i = 0; i < kLimbs; ++i) k.limbs_[i] = rng.next_u64();
  return k;
}

std::string Key::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(kBytes * 2);
  for (std::size_t i = 0; i < kBytes; ++i) {
    const std::uint8_t b = byte(i);
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

std::string Key::short_hex() const { return hex().substr(0, 8); }

double Key::ring_position() const {
  return static_cast<double>(limbs_[0]) / 18446744073709551616.0;  // 2^64
}

std::ostream& operator<<(std::ostream& os, const Key& k) {
  return os << k.short_hex();
}

std::size_t KeyHash::operator()(const Key& k) const {
  // FNV-1a over the big-endian bytes (same values as the historical
  // byte-array implementation), processed a limb at a time.
  std::size_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < Key::kLimbs; ++i) {
    const std::uint64_t w = k.limb(i);
    for (std::size_t j = 0; j < 8; ++j) {
      h ^= static_cast<std::size_t>((w >> (8 * (7 - j))) & 0xff);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace d2
