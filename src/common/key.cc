#include "common/key.h"

#include <ostream>

#include "common/assert.h"
#include "common/rng.h"

namespace d2 {

Key Key::from_bytes(const std::array<std::uint8_t, kBytes>& b) {
  Key k;
  k.bytes_ = b;
  return k;
}

Key Key::from_uint64(std::uint64_t v) {
  Key k;
  for (int i = 0; i < 8; ++i) {
    k.bytes_[kBytes - 1 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return k;
}

Key Key::random(Rng& rng) {
  Key k;
  for (std::size_t i = 0; i < kBytes; i += 8) {
    std::uint64_t w = rng.next_u64();
    for (int j = 0; j < 8; ++j) {
      k.bytes_[i + j] = static_cast<std::uint8_t>(w >> (8 * (7 - j)));
    }
  }
  return k;
}

Key Key::min() { return Key{}; }

Key Key::max() {
  Key k;
  k.bytes_.fill(0xff);
  return k;
}

std::uint64_t Key::low64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | bytes_[kBytes - 8 + i];
  }
  return v;
}

Key Key::operator+(const Key& o) const {
  Key r;
  unsigned carry = 0;
  for (int i = static_cast<int>(kBytes) - 1; i >= 0; --i) {
    unsigned s = static_cast<unsigned>(bytes_[i]) + o.bytes_[i] + carry;
    r.bytes_[i] = static_cast<std::uint8_t>(s & 0xff);
    carry = s >> 8;
  }
  return r;
}

Key Key::operator-(const Key& o) const {
  Key r;
  int borrow = 0;
  for (int i = static_cast<int>(kBytes) - 1; i >= 0; --i) {
    int d = static_cast<int>(bytes_[i]) - static_cast<int>(o.bytes_[i]) - borrow;
    if (d < 0) {
      d += 256;
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.bytes_[i] = static_cast<std::uint8_t>(d);
  }
  return r;
}

Key Key::half() const {
  Key r;
  unsigned carry = 0;
  for (std::size_t i = 0; i < kBytes; ++i) {
    unsigned cur = bytes_[i];
    r.bytes_[i] = static_cast<std::uint8_t>((cur >> 1) | (carry << 7));
    carry = cur & 1;
  }
  return r;
}

Key Key::next() const { return *this + Key::from_uint64(1); }

Key Key::midpoint(const Key& from, const Key& to) {
  return from + distance(from, to).half();
}

bool Key::in_arc(const Key& k, const Key& from, const Key& to) {
  if (from == to) return true;  // whole ring
  if (from < to) return from < k && k <= to;
  // Arc wraps through zero.
  return k > from || k <= to;
}

std::string Key::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(kBytes * 2);
  for (std::uint8_t b : bytes_) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

std::string Key::short_hex() const { return hex().substr(0, 8); }

double Key::ring_position() const {
  std::uint64_t top = 0;
  for (int i = 0; i < 8; ++i) top = (top << 8) | bytes_[i];
  return static_cast<double>(top) / 18446744073709551616.0;  // 2^64
}

std::ostream& operator<<(std::ostream& os, const Key& k) {
  return os << k.short_hex();
}

std::size_t KeyHash::operator()(const Key& k) const {
  // FNV-1a over the bytes; good enough for hash-map bucketing.
  std::size_t h = 1469598103934665603ull;
  for (std::uint8_t b : k.bytes()) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace d2
