// Deterministic random number generation for simulations and workload
// synthesis.
//
// Every source of randomness in d2 flows through an explicitly seeded Rng
// (xoshiro256**), so experiments are reproducible bit-for-bit and trials
// differ only by seed. Includes the distributions the synthetic traces
// need: Zipf (web popularity), lognormal (file sizes), exponential
// (failure inter-arrivals, session gaps), Pareto (heavy-tailed bursts).
#pragma once

#include <cstdint>
#include <vector>

namespace d2 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Geometric: number of failures before first success, success prob p.
  std::int64_t geometric(double p);

  /// Derive an independent stream (for per-node / per-user RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Zipf distribution over ranks {0, .., n-1} with exponent `s`.
/// Sampling is O(log n) via binary search over precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace d2
