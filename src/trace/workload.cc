#include "trace/workload.h"

#include <algorithm>
#include <unordered_set>

namespace d2::trace {

WorkloadSummary summarize(const std::vector<TraceRecord>& records,
                          const std::vector<FileSpec>& initial_files) {
  WorkloadSummary s;
  s.records = records.size();
  // Insert + size() only (distinct-user count); never iterated.
  std::unordered_set<int> users;  // d2-lint: allow(unordered-container)
  for (const TraceRecord& r : records) {
    users.insert(r.user);
    s.duration = std::max(s.duration, r.time);
    switch (r.op) {
      case TraceRecord::Op::kRead:
        ++s.accesses;
        s.bytes_read += r.length;
        break;
      case TraceRecord::Op::kWrite:
      case TraceRecord::Op::kCreate:
        ++s.accesses;
        s.bytes_written += r.length;
        break;
      default:
        break;
    }
  }
  s.users = static_cast<int>(users.size());
  s.initial_files = initial_files.size();
  for (const FileSpec& f : initial_files) s.active_data += f.size;
  return s;
}

bool is_sorted_by_time(const std::vector<TraceRecord>& records) {
  return std::is_sorted(
      records.begin(), records.end(),
      [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
}

}  // namespace d2::trace
