// Task and access-group segmentation of traces.
//
// Tasks (§8.1): the Harvard trace carries no explicit task boundaries, so
// the paper approximates a task as a maximal sequence of accesses by the
// same user in which consecutive accesses are separated by less than an
// inter-arrival threshold `inter`, with task duration capped at 5 minutes.
//
// Access groups (§9.1): any gap larger than 1 second is "think time"; the
// accesses between two think times form an access group, the unit whose
// completion time a user perceives. The seq/para extremes of §9 both
// operate on these groups.
#pragma once

#include <vector>

#include "common/units.h"
#include "trace/workload.h"

namespace d2::trace {

struct Task {
  int user = 0;
  SimTime start = 0;
  SimTime end = 0;
  std::vector<std::size_t> record_indices;  // into the source trace
};

/// Segments `records` (time-sorted) into per-user tasks. Only read/write/
/// create records participate (namespace-only ops don't constitute
/// task work).
std::vector<Task> segment_tasks(const std::vector<TraceRecord>& records,
                                SimTime inter,
                                SimTime max_duration = minutes(5));

struct AccessGroup {
  int user = 0;
  SimTime start = 0;
  std::vector<std::size_t> record_indices;
};

/// Segments `records` into per-user access groups using 1 s think time.
std::vector<AccessGroup> segment_access_groups(
    const std::vector<TraceRecord>& records, SimTime think_time = seconds(1));

}  // namespace d2::trace
