// Trace records shared by all workload generators (Table 1 substitutes).
//
// A record is one timestamped file-system (or web) access by one user.
// Generators return records sorted by time; experiment drivers replay
// them through a fs::Volume (or the Webcache adapter) to obtain store
// operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace d2::trace {

struct TraceRecord {
  enum class Op { kRead, kWrite, kCreate, kRemove, kRename, kMkdir };

  SimTime time = 0;
  int user = 0;
  Op op = Op::kRead;
  std::string path;
  std::string path2;  // rename target
  Bytes offset = 0;
  Bytes length = 0;
};

/// A file present before the trace starts (the paper initializes each
/// simulation by inserting all files that exist at the trace beginning).
struct FileSpec {
  std::string path;
  Bytes size = 0;
};

struct WorkloadSummary {
  SimTime duration = 0;
  std::uint64_t accesses = 0;   // read + write records
  std::uint64_t records = 0;    // all records
  Bytes active_data = 0;        // bytes in the initial file set
  std::uint64_t initial_files = 0;
  int users = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
};

WorkloadSummary summarize(const std::vector<TraceRecord>& records,
                          const std::vector<FileSpec>& initial_files);

/// Checks that records are sorted by time (generators guarantee this).
bool is_sorted_by_time(const std::vector<TraceRecord>& records);

}  // namespace d2::trace
