// Trace records shared by all workload generators (Table 1 substitutes).
//
// A record is one timestamped file-system (or web) access by one user.
// Generators return records sorted by time; experiment drivers replay
// them through a fs::Volume (or the Webcache adapter) to obtain store
// operations.
//
// Paths are std::string_view, NOT owned by the record: they point into
// storage held by whatever produced the record — a generator's
// common::Arena (each path interned once at file creation and shared by
// every record that mentions it) or the Arena passed to read_trace.
// Keep the producer alive for as long as its records are in use. This is
// what makes million-user generation cheap: a record is a flat 56-byte
// value, no per-record heap traffic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace d2::trace {

struct TraceRecord {
  enum class Op { kRead, kWrite, kCreate, kRemove, kRename, kMkdir };

  SimTime time = 0;
  int user = 0;
  Op op = Op::kRead;
  std::string_view path;
  std::string_view path2;  // rename target
  Bytes offset = 0;
  Bytes length = 0;
};

/// A file present before the trace starts (the paper initializes each
/// simulation by inserting all files that exist at the trace beginning).
/// `path` is arena-backed like TraceRecord::path.
struct FileSpec {
  std::string_view path;
  Bytes size = 0;
};

struct WorkloadSummary {
  SimTime duration = 0;
  std::uint64_t accesses = 0;   // read + write records
  std::uint64_t records = 0;    // all records
  Bytes active_data = 0;        // bytes in the initial file set
  std::uint64_t initial_files = 0;
  int users = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
};

WorkloadSummary summarize(const std::vector<TraceRecord>& records,
                          const std::vector<FileSpec>& initial_files);

/// Checks that records are sorted by time (generators guarantee this).
bool is_sorted_by_time(const std::vector<TraceRecord>& records);

}  // namespace d2::trace
