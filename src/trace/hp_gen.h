// Synthetic HP-like block-level disk trace (Table 1: one week of accesses
// to a multi-disk research server, identified by application pid).
//
// The paper uses HP only for the Fig 3 locality analysis: block "names"
// are disk block numbers, and because local file systems cluster blocks
// created together, numerically-close blocks tend to belong to the same
// file or directory. The generator lays "extents" (contiguous block runs,
// standing in for files) on a virtual disk, assigns each application a
// working set of extents, and emits mostly-sequential scans over them.
//
// Block paths are zero-padded decimal numbers so that alphabetical order
// equals numeric (disk) order, exactly the "ordered" scenario of §4.1.
#pragma once

#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "trace/workload.h"

namespace d2::trace {

struct HpParams {
  int apps = 40;                    // pids
  int days = 7;
  std::int64_t disk_blocks = 1 << 20;  // 8 GB of 8 KB blocks
  int extents_per_app = 30;
  double mean_extent_blocks = 64;   // ~512 KB extents
  double accesses_per_app_day = 2000;
  std::uint64_t seed = 7;
};

class HpGenerator {
 public:
  explicit HpGenerator(const HpParams& params);

  const std::vector<TraceRecord>& records() const { return records_; }
  const HpParams& params() const { return params_; }
  WorkloadSummary summary() const { return summarize(records_, {}); }

  static std::string block_name(std::int64_t block_number);

 private:
  HpParams params_;
  common::Arena arena_;
  std::vector<TraceRecord> records_;
};

}  // namespace d2::trace
