#include "trace/web_gen.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/hash.h"

namespace d2::trace {

WebGenerator::WebGenerator(const WebParams& params) : params_(params) {
  D2_REQUIRE(params.clients > 0 && params.days > 0 && params.sites > 0);
  Rng rng(params.seed);

  sites_.resize(static_cast<std::size_t>(params.sites));
  const double size_mu =
      std::log(static_cast<double>(params.mean_object_size)) -
      params.object_size_sigma * params.object_size_sigma / 2.0;
  for (int s = 0; s < params.sites; ++s) {
    Site& site = sites_[static_cast<std::size_t>(s)];
    site.domain = "www.site" + std::to_string(s) + ".com";
    const int ndirs = 1 + static_cast<int>(rng.next_below(8));
    const int nobjects = std::max<int>(
        3, static_cast<int>(rng.exponential(params.mean_objects_per_site)));
    for (int o = 0; o < nobjects; ++o) {
      const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ndirs)));
      std::string path = "/d" + std::to_string(d) + "/obj" + std::to_string(o) +
                         (o % 5 == 0 ? ".html" : ".gif");
      site.object_urls.push_back(arena_.intern(site.domain + path));
      site.object_paths.push_back(std::move(path));
      site.object_sizes.push_back(std::clamp<Bytes>(
          static_cast<Bytes>(rng.lognormal(size_mu, params.object_size_sigma)),
          256, params.max_object_size));
    }
  }

  ZipfDistribution site_zipf(sites_.size(), params.site_zipf);

  for (int c = 0; c < params.clients; ++c) {
    Rng crng = rng.fork();
    for (int day = 0; day < params.days; ++day) {
      const bool flash = day == params.flash_crowd_day;
      SimTime t = days(day) +
                  static_cast<SimTime>(crng.next_double() * hours(24));
      auto remaining = static_cast<std::int64_t>(
          params.requests_per_client_day * (0.5 + crng.next_double()) *
          (flash ? params.flash_multiplier : 1.0));
      // During a flash crowd most requests chase fresh day-stamped news
      // URLs; stories are Zipf-popular so some re-hit while the long tail
      // is fetched once and evicted the next day.
      ZipfDistribution story_zipf(4000, 0.7);
      // Day-stamped story URLs recur across the burst; intern each once.
      std::vector<std::string_view> story_urls(4000);
      while (remaining > 0) {
        if (flash && crng.bernoulli(params.flash_new_content_fraction)) {
          // A news-reading burst: several stories in one sitting, so the
          // flash content dominates the day's request mix.
          const auto burst = static_cast<std::int64_t>(4 + crng.next_below(12));
          for (std::int64_t b = 0; b < burst && remaining > 0; ++b) {
            const std::size_t story = story_zipf.sample(crng);
            if (story_urls[story].empty()) {
              story_urls[story] = arena_.intern(
                  "www.newswire.com/day" + std::to_string(day) + "/story" +
                  std::to_string(story) + ".html");
            }
            const std::string_view url = story_urls[story];
            // Deterministic per-URL size so repeated fetches agree.
            const Bytes size =
                256 + static_cast<Bytes>(fnv1a64(url) %
                                         static_cast<std::uint64_t>(kB(48)));
            records_.push_back(
                TraceRecord{t, c, TraceRecord::Op::kRead, url, "", 0, size});
            --remaining;
            t += static_cast<SimTime>(crng.exponential(8.0) * 1e6);
          }
          t += static_cast<SimTime>(crng.exponential(60.0) * 1e6);
          continue;
        }
        // Browse one site for a while (URL name-space locality).
        const std::size_t si = site_zipf.sample(crng);
        const Site& site = sites_[si];
        ZipfDistribution obj_zipf(site.object_paths.size(), 0.8);
        const int pages = 1 + static_cast<int>(crng.next_below(12));
        for (int p = 0; p < pages && remaining > 0; ++p) {
          const std::size_t oi = obj_zipf.sample(crng);
          records_.push_back(TraceRecord{t, c, TraceRecord::Op::kRead,
                                         site.object_urls[oi], "", 0,
                                         site.object_sizes[oi]});
          --remaining;
          // Embedded objects: quick follow-ups from the same site.
          const int embedded = static_cast<int>(crng.next_below(4));
          for (int e = 0; e < embedded && remaining > 0; ++e) {
            t += 50'000 + static_cast<SimTime>(crng.exponential(0.1) * 1e6);
            const std::size_t ei = obj_zipf.sample(crng);
            records_.push_back(TraceRecord{t, c, TraceRecord::Op::kRead,
                                           site.object_urls[ei], "", 0,
                                           site.object_sizes[ei]});
            --remaining;
          }
          t += static_cast<SimTime>(crng.exponential(15.0) * 1e6);  // dwell
        }
        t += static_cast<SimTime>(crng.exponential(120.0) * 1e6);  // site switch
      }
    }
  }

  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& x, const TraceRecord& y) {
                     return x.time < y.time;
                   });
}

Bytes WebGenerator::object_size(std::string_view url) const {
  for (const Site& site : sites_) {
    if (url.substr(0, site.domain.size()) == site.domain) {
      const std::string_view rel = url.substr(site.domain.size());
      for (std::size_t i = 0; i < site.object_paths.size(); ++i) {
        if (site.object_paths[i] == rel) return site.object_sizes[i];
      }
    }
  }
  return 0;
}

}  // namespace d2::trace
