#include "trace/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace d2::trace {

std::string op_name(TraceRecord::Op op) {
  switch (op) {
    case TraceRecord::Op::kRead:
      return "read";
    case TraceRecord::Op::kWrite:
      return "write";
    case TraceRecord::Op::kCreate:
      return "create";
    case TraceRecord::Op::kRemove:
      return "remove";
    case TraceRecord::Op::kRename:
      return "rename";
    case TraceRecord::Op::kMkdir:
      return "mkdir";
  }
  return "?";
}

TraceRecord::Op parse_op(const std::string& name) {
  if (name == "read") return TraceRecord::Op::kRead;
  if (name == "write") return TraceRecord::Op::kWrite;
  if (name == "create") return TraceRecord::Op::kCreate;
  if (name == "remove") return TraceRecord::Op::kRemove;
  if (name == "rename") return TraceRecord::Op::kRename;
  if (name == "mkdir") return TraceRecord::Op::kMkdir;
  D2_REQUIRE_MSG(false, "unknown trace op: " + name);
  return TraceRecord::Op::kRead;
}

void write_trace(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "# d2-trace v1\n";
  for (const TraceRecord& r : records) {
    os << r.time << ' ' << r.user << ' ' << op_name(r.op) << ' ' << r.path;
    switch (r.op) {
      case TraceRecord::Op::kRead:
      case TraceRecord::Op::kWrite:
      case TraceRecord::Op::kCreate:
        os << ' ' << r.offset << ' ' << r.length;
        break;
      case TraceRecord::Op::kRename:
        os << " -> " << r.path2;
        break;
      default:
        break;
    }
    os << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream os(path);
  D2_REQUIRE_MSG(os.good(), "cannot open for writing: " + path);
  write_trace(os, records);
}

std::vector<TraceRecord> read_trace(std::istream& is, common::Arena& arena) {
  std::vector<TraceRecord> out;
  std::string line;
  std::string path;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    std::string op;
    if (!(ls >> r.time >> r.user >> op >> path)) {
      D2_REQUIRE_MSG(false, "malformed trace line " + std::to_string(line_no) +
                                ": " + line);
    }
    r.op = parse_op(op);
    r.path = arena.intern(path);
    switch (r.op) {
      case TraceRecord::Op::kRead:
      case TraceRecord::Op::kWrite:
      case TraceRecord::Op::kCreate: {
        if (!(ls >> r.offset >> r.length)) {
          // Offset/length optional: default to whole-file-unknown (0, 0).
          r.offset = 0;
          r.length = 0;
        }
        break;
      }
      case TraceRecord::Op::kRename: {
        std::string arrow;
        if (!(ls >> arrow >> path) || arrow != "->") {
          D2_REQUIRE_MSG(false, "malformed rename on line " +
                                    std::to_string(line_no) + ": " + line);
        }
        r.path2 = arena.intern(path);
        break;
      }
      default:
        break;
    }
    D2_REQUIRE_MSG(r.time >= 0,
                   "negative timestamp on line " + std::to_string(line_no));
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::vector<TraceRecord> read_trace_file(const std::string& path,
                                         common::Arena& arena) {
  std::ifstream is(path);
  D2_REQUIRE_MSG(is.good(), "cannot open trace file: " + path);
  return read_trace(is, arena);
}

}  // namespace d2::trace
