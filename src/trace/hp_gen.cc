#include "trace/hp_gen.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::trace {

std::string HpGenerator::block_name(std::int64_t block_number) {
  std::string digits = std::to_string(block_number);
  std::string out = "b";
  for (std::size_t i = digits.size(); i < 12; ++i) out.push_back('0');
  out += digits;
  return out;
}

HpGenerator::HpGenerator(const HpParams& params) : params_(params) {
  D2_REQUIRE(params.apps > 0 && params.days > 0 && params.disk_blocks > 0);
  Rng rng(params.seed);

  struct Extent {
    std::int64_t start;
    std::int64_t len;
  };

  // Lay extents on the disk with an allocation cursor plus occasional
  // seeks, mimicking a local FS allocator that clusters related data.
  std::vector<std::vector<Extent>> app_extents(
      static_cast<std::size_t>(params.apps));
  std::int64_t cursor = 0;
  for (int a = 0; a < params.apps; ++a) {
    for (int e = 0; e < params.extents_per_app; ++e) {
      if (rng.bernoulli(0.1)) {
        cursor = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(params.disk_blocks)));
      }
      const auto len = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(rng.exponential(params.mean_extent_blocks)));
      if (cursor + len >= params.disk_blocks) cursor = 0;
      app_extents[static_cast<std::size_t>(a)].push_back(Extent{cursor, len});
      cursor += len + static_cast<std::int64_t>(rng.next_below(16));
    }
  }

  for (int a = 0; a < params.apps; ++a) {
    Rng app_rng = rng.fork();
    const auto& extents = app_extents[static_cast<std::size_t>(a)];
    for (int day = 0; day < params.days; ++day) {
      SimTime t = days(day) + hours(1) +
                  static_cast<SimTime>(app_rng.next_double() * hours(20));
      auto remaining =
          static_cast<std::int64_t>(params.accesses_per_app_day *
                                    (0.5 + app_rng.next_double()));
      while (remaining > 0) {
        // Scan a run within a random owned extent.
        const Extent& ext = extents[app_rng.next_below(extents.size())];
        const auto run = std::min<std::int64_t>(
            remaining,
            1 + static_cast<std::int64_t>(app_rng.exponential(24.0)));
        std::int64_t pos =
            ext.start + (ext.len > 1
                             ? static_cast<std::int64_t>(app_rng.next_below(
                                   static_cast<std::uint64_t>(ext.len)))
                             : 0);
        for (std::int64_t i = 0; i < run; ++i) {
          if (pos >= ext.start + ext.len) break;
          records_.push_back(TraceRecord{t, a, TraceRecord::Op::kRead,
                                         arena_.intern(block_name(pos)), "", 0,
                                         kBlockSize});
          pos += 1;
          t += 1000 + static_cast<SimTime>(app_rng.exponential(0.02) * 1e6);
          --remaining;
        }
        t += static_cast<SimTime>(app_rng.exponential(5.0) * 1e6);
      }
    }
  }

  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& x, const TraceRecord& y) {
                     return x.time < y.time;
                   });
}

}  // namespace d2::trace
