#include "trace/harvard_gen.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace d2::trace {

namespace {
constexpr SimTime kWorkdayStart = hours(9);
constexpr SimTime kWorkdayEnd = hours(18);
}  // namespace

struct HarvardGenerator::UserState {
  int user = 0;
  std::string home;
  std::vector<std::string> dirs;        // dir paths, dirs[0] == home
  std::vector<int> dir_depth;           // path depth of each dir
  std::vector<GenFile> files;
  std::vector<std::vector<int>> dir_files;  // per-dir indices into files
  Bytes resident_bytes = 0;
  int next_file_id = 0;
};

std::string HarvardGenerator::user_home(int user) {
  return "home/u" + std::to_string(user);
}

std::string_view HarvardGenerator::make_path(std::string_view dir,
                                             std::string_view stem, int id,
                                             std::string_view suffix) {
  scratch_.clear();
  scratch_.append(dir);
  scratch_.append(stem);
  scratch_.append(std::to_string(id));
  scratch_.append(suffix);
  return arena_.intern(scratch_);
}

HarvardGenerator::HarvardGenerator(const HarvardParams& params)
    : params_(params) {
  D2_REQUIRE(params.users > 0);
  D2_REQUIRE(params.days > 0);
  D2_REQUIRE(params.target_active_bytes > 0);
  Rng rng(params.seed);

  build_shared_volume(rng);

  std::vector<UserState> users(static_cast<std::size_t>(params.users));
  for (int u = 0; u < params.users; ++u) {
    UserState& st = users[static_cast<std::size_t>(u)];
    st.user = u;
    st.home = user_home(u);
    Rng user_rng = rng.fork();
    build_user_tree(st, user_rng);
  }
  for (UserState& st : users) {
    Rng user_rng = rng.fork();
    generate_user_activity(st, user_rng);
  }

  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
}

Bytes HarvardGenerator::sample_file_size(Rng& rng) const {
  const double sigma = params_.file_size_sigma;
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) == mean_file_size.
  const double mu =
      std::log(static_cast<double>(params_.mean_file_size)) - sigma * sigma / 2.0;
  const double v = rng.lognormal(mu, sigma);
  return std::clamp<Bytes>(static_cast<Bytes>(v), 128, params_.max_file_size);
}

void HarvardGenerator::build_shared_volume(Rng& rng) {
  const Bytes budget = static_cast<Bytes>(
      params_.shared_fraction * static_cast<double>(params_.target_active_bytes));
  Bytes used = 0;
  int dir_id = 0;
  while (used < budget) {
    const std::string dir = "shared/pkg" + std::to_string(dir_id++);
    const int nfiles = static_cast<int>(1 + rng.next_below(24));
    for (int f = 0; f < nfiles && used < budget; ++f) {
      GenFile gf;
      gf.path = make_path(dir, "/lib", f, ".so");
      gf.size = sample_file_size(rng);
      gf.dir_index = -1;
      gf.shared = true;
      used += gf.size;
      initial_files_.push_back(FileSpec{gf.path, gf.size});
      shared_files_.push_back(std::move(gf));
    }
  }
}

void HarvardGenerator::build_user_tree(UserState& u, Rng& rng) {
  const Bytes budget = static_cast<Bytes>(
      (1.0 - params_.shared_fraction) *
      static_cast<double>(params_.target_active_bytes) / params_.users);

  // Random recursive directory tree under the home (depth stays modest,
  // matching the paper's observation that < 1% of paths exceed 12 levels).
  u.dirs.push_back(u.home);
  u.dir_depth.push_back(2);  // "home" + "uN"
  const int ndirs = static_cast<int>(12 + rng.next_below(48));
  for (int d = 0; d < ndirs; ++d) {
    // Bias towards shallow parents to get realistic fanout.
    std::size_t parent = rng.next_below(u.dirs.size());
    if (u.dir_depth[parent] >= 9) parent = 0;
    u.dirs.push_back(u.dirs[parent] + "/d" + std::to_string(d));
    u.dir_depth.push_back(u.dir_depth[parent] + 1);
  }

  // Mailbox: one growing file, ~10% of the budget (email workload).
  {
    GenFile mbox;
    mbox.path = arena_.intern(u.home + "/mail/inbox.mbox");
    mbox.size = std::max<Bytes>(kB(64), budget / 10);
    mbox.dir_index = 0;
    u.resident_bytes += mbox.size;
    initial_files_.push_back(FileSpec{mbox.path, mbox.size});
    u.dir_files.resize(u.dirs.size());
    u.dir_files[0].push_back(static_cast<int>(u.files.size()));
    u.files.push_back(std::move(mbox));
  }

  // Fill directories with files until the budget is consumed. A Zipf
  // choice over directories makes some dirs dense (project dirs) and
  // others sparse.
  ZipfDistribution dir_zipf(u.dirs.size(), 0.9);
  while (u.resident_bytes < budget) {
    const std::size_t d = dir_zipf.sample(rng);
    GenFile gf;
    gf.path = make_path(u.dirs[d], "/f", u.next_file_id++);
    gf.size = sample_file_size(rng);
    gf.dir_index = static_cast<int>(d);
    u.resident_bytes += gf.size;
    initial_files_.push_back(FileSpec{gf.path, gf.size});
    u.dir_files[d].push_back(static_cast<int>(u.files.size()));
    u.files.push_back(std::move(gf));
  }
}

void HarvardGenerator::generate_user_activity(UserState& u, Rng& rng) {
  ZipfDistribution dir_zipf(u.dirs.size(), 0.9);

  auto pick_alive_in_dir = [&](std::size_t d) -> int {
    const auto& idxs = u.dir_files[d];
    if (idxs.empty()) return -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int i = idxs[rng.next_below(idxs.size())];
      if (u.files[static_cast<std::size_t>(i)].alive) return i;
    }
    return -1;
  };
  auto pick_alive_any = [&]() -> int {
    if (u.files.empty()) return -1;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int i = static_cast<int>(rng.next_below(u.files.size()));
      if (u.files[static_cast<std::size_t>(i)].alive) return i;
    }
    return -1;
  };

  const double mean_read_len = 48.0 * 1024;
  const double read_mu = std::log(mean_read_len) - 0.5;  // sigma = 1

  for (int day = 0; day < params_.days; ++day) {
    const SimTime day_start = days(day);
    // Per-day churn budgets (Table 3 calibration).
    Bytes create_budget = static_cast<Bytes>(params_.daily_create_fraction *
                                             static_cast<double>(u.resident_bytes));
    Bytes overwrite_budget =
        static_cast<Bytes>(params_.daily_overwrite_fraction *
                           static_cast<double>(u.resident_bytes));
    Bytes remove_budget = static_cast<Bytes>(params_.daily_remove_fraction *
                                             static_cast<double>(u.resident_bytes));

    const int sessions = 2 + static_cast<int>(rng.next_below(7));
    const double ops_per_session =
        params_.accesses_per_user_day / std::max(1, sessions);

    std::vector<int> created_today;

    for (int s = 0; s < sessions; ++s) {
      SimTime t = day_start + kWorkdayStart +
                  static_cast<SimTime>(rng.next_double() *
                                       static_cast<double>(kWorkdayEnd - kWorkdayStart));
      const SimTime session_end =
          t + static_cast<SimTime>(rng.exponential(to_seconds(minutes(20))) * 1e6);

      // Session working set: 1-3 directories (name-space locality).
      std::vector<std::size_t> working;
      const int nwork = 1 + static_cast<int>(rng.next_below(3));
      for (int w = 0; w < nwork; ++w) working.push_back(dir_zipf.sample(rng));

      const auto target_ops = static_cast<int>(
          ops_per_session * (0.5 + rng.next_double()));
      for (int op = 0; op < target_ops && t < session_end; ++op) {
        const double roll = rng.next_double();

        if (roll < params_.rename_fraction) {
          const int fi = pick_alive_any();
          if (fi >= 0) {
            GenFile& gf = u.files[static_cast<std::size_t>(fi)];
            const std::size_t d = working[rng.next_below(working.size())];
            const std::string_view to =
                make_path(u.dirs[d], "/mv", u.next_file_id++);
            records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kRename,
                                           gf.path, to, 0, 0});
            // Track the move in the mirror namespace (the old dir's index
            // list keeps a stale entry; it still resolves to this file).
            gf.path = to;
            gf.dir_index = static_cast<int>(d);
            u.dir_files[d].push_back(fi);
          }
        } else if (roll < 0.04 && create_budget > 0) {
          // Create a new file in a working directory.
          const std::size_t d = working[rng.next_below(working.size())];
          GenFile gf;
          gf.path = make_path(u.dirs[d], "/n", u.next_file_id++);
          gf.size = std::min(sample_file_size(rng), create_budget);
          gf.dir_index = static_cast<int>(d);
          create_budget -= gf.size;
          u.resident_bytes += gf.size;
          records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kCreate,
                                         gf.path, "", 0, gf.size});
          const int idx = static_cast<int>(u.files.size());
          u.dir_files[d].push_back(idx);
          created_today.push_back(idx);
          u.files.push_back(std::move(gf));
        } else if (roll < 0.065 && remove_budget > 0) {
          // Remove: prefer files created today (temporaries), else any.
          int fi = -1;
          if (!created_today.empty() && rng.bernoulli(0.5)) {
            fi = created_today[rng.next_below(created_today.size())];
            if (!u.files[static_cast<std::size_t>(fi)].alive) fi = -1;
          }
          if (fi < 0) fi = pick_alive_any();
          if (fi >= 0 && !u.files[static_cast<std::size_t>(fi)].path.ends_with(".mbox")) {
            GenFile& gf = u.files[static_cast<std::size_t>(fi)];
            gf.alive = false;
            remove_budget -= std::min(remove_budget, gf.size);
            u.resident_bytes -= gf.size;
            records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kRemove,
                                           gf.path, "", 0, 0});
          }
        } else if (roll < 0.20 && overwrite_budget > 0) {
          // Overwrite part of a working-set file, or append to the mbox.
          if (rng.bernoulli(0.25)) {
            GenFile& mbox = u.files[0];  // the mailbox: append
            const Bytes len = std::min<Bytes>(overwrite_budget,
                                              512 + static_cast<Bytes>(rng.next_below(kB(32))));
            records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kWrite,
                                           mbox.path, "", mbox.size, len});
            mbox.size += len;
            u.resident_bytes += len;
            overwrite_budget -= len;
          } else {
            int fi = pick_alive_in_dir(working[rng.next_below(working.size())]);
            if (fi < 0) fi = pick_alive_any();
            if (fi >= 0) {
              GenFile& gf = u.files[static_cast<std::size_t>(fi)];
              const Bytes len = std::min(
                  {gf.size, overwrite_budget,
                   static_cast<Bytes>(rng.lognormal(read_mu, 1.0))});
              if (len > 0) {
                const Bytes max_off = gf.size - len;
                const Bytes off = max_off > 0
                                      ? static_cast<Bytes>(rng.next_below(
                                            static_cast<std::uint64_t>(max_off)))
                                      : 0;
                records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kWrite,
                                               gf.path, "", off, len});
                overwrite_budget -= len;
              }
            }
          }
        } else {
          // Read: working dir (80%), anywhere in home (15%), shared (5%).
          const double where = rng.next_double();
          const GenFile* gf = nullptr;
          int fi = -1;
          if (where < 0.05 && !shared_files_.empty()) {
            gf = &shared_files_[rng.next_below(shared_files_.size())];
          } else if (where < 0.20) {
            fi = pick_alive_any();
          } else {
            // Sticky working set: mostly the session's primary directory.
            const std::size_t wd =
                working[rng.bernoulli(0.6) ? 0 : rng.next_below(working.size())];
            fi = pick_alive_in_dir(wd);
            if (fi < 0) fi = pick_alive_any();
          }
          if (fi >= 0) gf = &u.files[static_cast<std::size_t>(fi)];
          if (gf != nullptr && gf->size > 0) {
            const Bytes len = std::min<Bytes>(
                gf->size,
                std::max<Bytes>(512, static_cast<Bytes>(rng.lognormal(read_mu, 1.0))));
            const Bytes max_off = gf->size - len;
            // Mostly sequential-from-start reads; sometimes an interior seek.
            const Bytes off =
                (max_off > 0 && rng.bernoulli(0.3))
                    ? static_cast<Bytes>(rng.next_below(
                          static_cast<std::uint64_t>(max_off)))
                    : 0;
            records_.push_back(TraceRecord{t, u.user, TraceRecord::Op::kRead,
                                           gf->path, "", off, len});
          }
        }

        // Burst structure: mostly sub-second gaps, with think times that
        // delimit tasks (§8) and access groups (§9).
        const double g = rng.next_double();
        SimTime gap;
        if (g < 0.75) {
          gap = static_cast<SimTime>(rng.exponential(0.3) * 1e6);
        } else if (g < 0.95) {
          gap = static_cast<SimTime>(rng.exponential(45.0) * 1e6);
        } else {
          gap = static_cast<SimTime>(rng.exponential(300.0) * 1e6);
        }
        t += std::max<SimTime>(gap, 1000);
      }
    }
  }
}

}  // namespace d2::trace
