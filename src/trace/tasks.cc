#include "trace/tasks.h"

#include <map>

#include "common/assert.h"

namespace d2::trace {

namespace {
bool is_access(const TraceRecord& r) {
  return r.op == TraceRecord::Op::kRead || r.op == TraceRecord::Op::kWrite ||
         r.op == TraceRecord::Op::kCreate;
}
}  // namespace

std::vector<Task> segment_tasks(const std::vector<TraceRecord>& records,
                                SimTime inter, SimTime max_duration) {
  D2_REQUIRE(inter > 0);
  D2_REQUIRE(max_duration > 0);
  std::vector<Task> tasks;
  std::map<int, std::size_t> open;  // user -> index into tasks

  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (!is_access(r)) continue;
    auto it = open.find(r.user);
    bool start_new = true;
    if (it != open.end()) {
      Task& t = tasks[it->second];
      if (r.time - t.end < inter && r.time - t.start <= max_duration) {
        t.record_indices.push_back(i);
        t.end = r.time;
        start_new = false;
      }
    }
    if (start_new) {
      Task t;
      t.user = r.user;
      t.start = r.time;
      t.end = r.time;
      t.record_indices.push_back(i);
      tasks.push_back(std::move(t));
      open[r.user] = tasks.size() - 1;
    }
  }
  return tasks;
}

std::vector<AccessGroup> segment_access_groups(
    const std::vector<TraceRecord>& records, SimTime think_time) {
  D2_REQUIRE(think_time > 0);
  std::vector<AccessGroup> groups;
  std::map<int, std::pair<std::size_t, SimTime>> open;  // user -> (group, last)

  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (!is_access(r)) continue;
    auto it = open.find(r.user);
    if (it != open.end() && r.time - it->second.second <= think_time) {
      groups[it->second.first].record_indices.push_back(i);
      it->second.second = r.time;
      continue;
    }
    AccessGroup g;
    g.user = r.user;
    g.start = r.time;
    g.record_indices.push_back(i);
    groups.push_back(std::move(g));
    open[r.user] = {groups.size() - 1, r.time};
  }
  return groups;
}

}  // namespace d2::trace
