// Synthetic Harvard-like NFS workload (research + email), the substitute
// for the paper's main evaluation trace (Table 1: 60M accesses, 83 GB
// active data, 1 week; EECS workload from Ellard et al., FAST'03).
//
// What the D2 results actually depend on — and what this generator
// reproduces by construction:
//   * name-space locality: users work in sessions concentrated on a few
//     working directories of their home subtree (plus a small shared
//     volume), so consecutive accesses hit neighbouring paths;
//   * task structure: accesses arrive in sub-second bursts separated by
//     think times, giving the inter-arrival segmentation of §8 and the
//     access groups of §9 realistic shapes;
//   * heavy-tailed file sizes (lognormal; the paper notes a > 4
//     orders-of-magnitude max/mean spread, which drives the
//     traditional-file DHT's poor balance in Fig 16);
//   * daily churn calibrated to Table 3 row 1: writes and removes each
//     ~10-20% of resident data per day;
//   * single-writer volumes: each user writes only their own home
//     subtree (paper §3 usage assumptions), everyone can read "shared".
//
// Scale defaults are laptop-sized; raise target_active_bytes /
// accesses_per_user_day to approach paper scale.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "trace/workload.h"

namespace d2::trace {

struct HarvardParams {
  int users = 83;
  int days = 7;
  /// Total initial (resident) data across all users + shared.
  Bytes target_active_bytes = mB(512);
  /// Mean file-access records per user per active day.
  double accesses_per_user_day = 600;
  /// Daily churn as a fraction of a user's resident data (Table 3).
  double daily_create_fraction = 0.08;
  double daily_overwrite_fraction = 0.07;
  double daily_remove_fraction = 0.08;
  /// Fraction of data (and of read traffic) in the shared volume.
  double shared_fraction = 0.05;
  /// Fraction of operations that are renames (paper: 0.05%).
  double rename_fraction = 0.0005;
  /// Lognormal file sizes: sigma controls the tail.
  double file_size_sigma = 2.0;
  Bytes mean_file_size = kB(40);
  Bytes max_file_size = mB(64);
  std::uint64_t seed = 42;
};

class HarvardGenerator {
 public:
  explicit HarvardGenerator(const HarvardParams& params);

  const std::vector<FileSpec>& initial_files() const { return initial_files_; }
  const std::vector<TraceRecord>& records() const { return records_; }
  const HarvardParams& params() const { return params_; }

  WorkloadSummary summary() const { return summarize(records_, initial_files_); }

  static std::string user_home(int user);

 private:
  // Paths live in arena_: interned once when the file is created (or
  // renamed) and shared by value across every record touching the file.
  struct GenFile {
    std::string_view path;
    Bytes size;
    int dir_index;
    bool alive = true;
    bool shared = false;
  };
  struct UserState;

  void build_shared_volume(Rng& rng);
  void build_user_tree(UserState& u, Rng& rng);
  void generate_user_activity(UserState& u, Rng& rng);
  Bytes sample_file_size(Rng& rng) const;
  std::string_view make_path(std::string_view dir, std::string_view stem,
                             int id, std::string_view suffix = {});

  HarvardParams params_;
  common::Arena arena_;
  std::string scratch_;  // reused path-assembly buffer
  std::vector<FileSpec> initial_files_;
  std::vector<TraceRecord> records_;
  std::vector<GenFile> shared_files_;
};

}  // namespace d2::trace
