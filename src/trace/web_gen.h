// Synthetic NLANR-like web trace (Table 1: one week of accesses seen by
// IRCache web caches), used for the Fig 3 web locality analysis and as
// the Squirrel-style Webcache workload of §10.
//
// Structure the results depend on:
//   * URL name-space locality: a client browses one site for a while, so
//     consecutive requests share a (reversed) domain prefix; pages pull in
//     embedded objects from the same directory in sub-second bursts;
//   * Zipf site and object popularity (classic web measurement results);
//   * small, lognormal object sizes;
//   * extreme effective churn when used as a cache: the DHT starts empty,
//     misses insert, and content not refreshed within a day is evicted —
//     giving the Table 3 row 2 profile where daily writes can exceed
//     resident data by an order of magnitude.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "trace/workload.h"

namespace d2::trace {

struct WebParams {
  int clients = 120;
  int days = 7;
  int sites = 400;
  double site_zipf = 0.85;
  int mean_objects_per_site = 60;
  Bytes mean_object_size = kB(12);
  double object_size_sigma = 1.6;
  Bytes max_object_size = mB(8);
  double requests_per_client_day = 400;
  /// Flash crowd: on this day (0-based; -1 disables) traffic multiplies
  /// and most of it targets fresh, day-stamped URLs (breaking news). This
  /// reproduces the Table 3 day-3 spike where daily writes into the cache
  /// dwarf the resident data.
  int flash_crowd_day = 2;
  double flash_multiplier = 4.0;
  double flash_new_content_fraction = 0.75;
  std::uint64_t seed = 11;
};

class WebGenerator {
 public:
  explicit WebGenerator(const WebParams& params);

  /// Records: op == kRead, path == full URL ("www.siteN.com/dir/obj"),
  /// length == object size.
  const std::vector<TraceRecord>& records() const { return records_; }
  const WebParams& params() const { return params_; }
  WorkloadSummary summary() const { return summarize(records_, {}); }

  /// Size of the object at `url` (stable across the trace).
  Bytes object_size(std::string_view url) const;

 private:
  struct Site {
    std::string domain;
    std::vector<std::string> object_paths;  // relative, e.g. "/d0/p3.html"
    std::vector<std::string_view> object_urls;  // arena-interned full URLs
    std::vector<Bytes> object_sizes;
  };

  WebParams params_;
  common::Arena arena_;
  std::vector<Site> sites_;
  std::vector<TraceRecord> records_;
};

}  // namespace d2::trace
