// Text serialization of traces, so real (or externally generated)
// workloads can be replayed through the experiment engines.
//
// Format (one record per line, '#' comments and blank lines ignored):
//
//   # d2-trace v1
//   <time_us> <user> <op> <path> [<offset> <length>] [-> <path2>]
//
// where <op> is one of: read write create remove rename mkdir.
// Paths must not contain whitespace (escape with %20 if needed).
//
// Example:
//   0        3 create home/u3/proj/a.cc 0 8192
//   1500000  3 read   home/u3/proj/a.cc 0 8192
//   2000000  3 rename home/u3/proj/a.cc -> home/u3/proj/b.cc
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/arena.h"
#include "trace/workload.h"

namespace d2::trace {

/// Writes records in the v1 text format.
void write_trace(std::ostream& os, const std::vector<TraceRecord>& records);
void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records);

/// Parses the v1 text format. Throws d2::PreconditionError with the line
/// number on malformed input. Records are returned sorted by time. Parsed
/// paths are interned into `arena`, which must outlive the records.
std::vector<TraceRecord> read_trace(std::istream& is, common::Arena& arena);
std::vector<TraceRecord> read_trace_file(const std::string& path,
                                         common::Arena& arena);

/// Round-trip helpers for ops.
std::string op_name(TraceRecord::Op op);
TraceRecord::Op parse_op(const std::string& name);

}  // namespace d2::trace
