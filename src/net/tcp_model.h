// Analytic per-flow TCP behaviour model.
//
// Section 9.3 of the paper attributes much of D2's parallel-case advantage
// to TCP dynamics: a connection idle for more than one RTO collapses its
// window and re-enters slow start, so in a traditional DHT — where
// consecutive requests hit different nodes — "the average block download
// will *always* require the TCP connection to enter slow start". This
// model tracks a congestion window per (client, server) connection:
//   - transfers clock out ceil(bytes/mss) packets, doubling the window
//     each RTT from initial_cwnd (2 packets, as in the paper's Linux 2.4
//     footnote: an 8 KB block needs at least 2 RTTs from a cold window);
//   - a connection left idle longer than `rto` resets to initial_cwnd;
//   - connections are assumed pre-established (the paper pre-opens TCP
//     between all pairs), so there is no handshake RTT.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/units.h"

namespace d2::net {

struct TcpConfig {
  Bytes mss = 1460;
  int initial_cwnd_pkts = 2;
  int max_cwnd_pkts = 64;
  /// Idle time after which the window resets (RTO).
  SimTime rto = seconds(1);
};

class TcpModel {
 public:
  explicit TcpModel(TcpConfig config = {});

  /// Number of RTTs needed to clock `bytes` through the (client, server)
  /// connection starting at `now`, growing the connection's window as a
  /// side effect. Does NOT account for bandwidth limits; callers combine
  /// this latency component with a BandwidthLink occupancy component.
  int transfer_rtts(int client, int server, SimTime now, Bytes bytes);

  /// Records that the flow finished at `finish` (sets idle-start).
  void touch(int client, int server, SimTime finish);

  /// Window a new transfer would see (for tests / introspection).
  int current_cwnd(int client, int server, SimTime now) const;

  /// Counts how many transfers started from a cold (slow-start) window.
  std::uint64_t cold_starts() const { return cold_starts_; }
  std::uint64_t transfers() const { return transfers_; }
  void reset_counters();

  const TcpConfig& config() const { return config_; }

 private:
  struct Conn {
    int cwnd_pkts;
    SimTime last_use;
  };

  static std::uint64_t conn_key(int client, int server) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(client)) << 32) |
           static_cast<std::uint32_t>(server);
  }

  TcpConfig config_;
  /// Keyed find/emplace only; never iterated.
  std::unordered_map<std::uint64_t, Conn> conns_;  // d2-lint: allow(unordered-container)
  std::uint64_t cold_starts_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace d2::net
