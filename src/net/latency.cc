#include "net/latency.h"

#include <cmath>

#include "common/assert.h"

namespace d2::net {

LatencyModel::LatencyModel(int node_count, Rng& rng, double mean_rtt_ms) {
  D2_REQUIRE(node_count > 0);
  D2_REQUIRE(mean_rtt_ms > 0);
  x_.resize(static_cast<std::size_t>(node_count));
  y_.resize(static_cast<std::size_t>(node_count));
  jitter_ms_.resize(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    x_[static_cast<std::size_t>(i)] = rng.next_double();
    y_[static_cast<std::size_t>(i)] = rng.next_double();
    // Heavy-tailed access-link component: most nodes are near the core,
    // a few are far away (produces the several-100-ms pairs the paper
    // mentions).
    jitter_ms_[static_cast<std::size_t>(i)] =
        std::min(400.0, rng.pareto(2.0, 1.15));
  }
  // Mean pairwise distance of uniform points in the unit square ~ 0.5214.
  // Mean jitter contribution = 2 * E[jitter]. Solve for scale so the
  // expected rtt matches the target.
  double mean_jitter = 0;
  for (double j : jitter_ms_) mean_jitter += j;
  mean_jitter /= static_cast<double>(node_count);
  const double target_dist_ms = mean_rtt_ms - base_ms_ - 2.0 * mean_jitter;
  scale_ms_ = std::max(1.0, target_dist_ms / 0.5214);
}

SimTime LatencyModel::rtt(int a, int b) const {
  D2_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count());
  if (a == b) return milliseconds(1);
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  const double dx = x_[ia] - x_[ib];
  const double dy = y_[ia] - y_[ib];
  const double dist = std::sqrt(dx * dx + dy * dy);
  const double ms = base_ms_ + scale_ms_ * dist + jitter_ms_[ia] + jitter_ms_[ib];
  return static_cast<SimTime>(ms * 1000.0);
}

SimTime LatencyModel::min_one_way_bound() const {
  // rtt(a, b) = base + scale * dist + jitter_a + jitter_b with dist >= 0,
  // so base plus twice the smallest per-node jitter bounds every pair
  // from below — O(N), no pairwise scan.
  double min_jitter = jitter_ms_.empty() ? 0.0 : jitter_ms_.front();
  for (double j : jitter_ms_) min_jitter = std::min(min_jitter, j);
  const double rtt_ms = base_ms_ + 2.0 * min_jitter;
  return static_cast<SimTime>(rtt_ms * 1000.0) / 2;
}

double LatencyModel::measured_mean_rtt_ms(Rng& rng, int samples) const {
  D2_REQUIRE(samples > 0);
  const int n = node_count();
  if (n < 2) return 1.0;
  double sum = 0;
  for (int s = 0; s < samples; ++s) {
    int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int b;
    do {
      b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    } while (b == a);
    sum += static_cast<double>(rtt(a, b)) / 1000.0;
  }
  return sum / samples;
}

}  // namespace d2::net
