#include "net/tcp_model.h"

#include <algorithm>

#include "common/assert.h"

namespace d2::net {

TcpModel::TcpModel(TcpConfig config) : config_(config) {
  D2_REQUIRE(config_.mss > 0);
  D2_REQUIRE(config_.initial_cwnd_pkts > 0);
  D2_REQUIRE(config_.max_cwnd_pkts >= config_.initial_cwnd_pkts);
}

int TcpModel::transfer_rtts(int client, int server, SimTime now, Bytes bytes) {
  D2_REQUIRE(bytes > 0);
  ++transfers_;
  const std::uint64_t key = conn_key(client, server);
  auto [it, inserted] = conns_.try_emplace(
      key, Conn{config_.initial_cwnd_pkts, now});
  Conn& conn = it->second;
  if (!inserted && now - conn.last_use > config_.rto) {
    conn.cwnd_pkts = config_.initial_cwnd_pkts;  // idle reset
  }
  if (conn.cwnd_pkts == config_.initial_cwnd_pkts) ++cold_starts_;

  std::int64_t packets = (bytes + config_.mss - 1) / config_.mss;
  int rtts = 0;
  std::int64_t w = conn.cwnd_pkts;
  while (packets > 0) {
    // Slow start grows the window by one packet per ACK, so a full window
    // doubles it — but the final RTT only clocks out (and therefore only
    // acknowledges) the packets that were left, not a whole window.
    const std::int64_t sent = std::min(packets, w);
    packets -= sent;
    ++rtts;
    w = std::min<std::int64_t>(w + sent, config_.max_cwnd_pkts);
  }
  conn.cwnd_pkts = static_cast<int>(w);
  conn.last_use = now;
  return rtts;
}

void TcpModel::touch(int client, int server, SimTime finish) {
  auto it = conns_.find(conn_key(client, server));
  if (it != conns_.end()) {
    it->second.last_use = std::max(it->second.last_use, finish);
  }
}

int TcpModel::current_cwnd(int client, int server, SimTime now) const {
  auto it = conns_.find(conn_key(client, server));
  if (it == conns_.end()) return config_.initial_cwnd_pkts;
  if (now - it->second.last_use > config_.rto) return config_.initial_cwnd_pkts;
  return it->second.cwnd_pkts;
}

void TcpModel::reset_counters() {
  cold_starts_ = 0;
  transfers_ = 0;
}

}  // namespace d2::net
