// Pairwise wide-area latency model.
//
// Substitutes for the measured King-dataset latencies the paper uses on
// Emulab (§9.1): nodes get coordinates in a 2-D Euclidean embedding plus a
// deterministic per-pair jitter, scaled so the mean RTT matches a target
// (90 ms, the mean the paper reports) with several-100-ms spread. The
// matrix is symmetric and deterministic given the seed.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace d2::net {

class LatencyModel {
 public:
  /// Builds a model for `node_count` endpoints. `mean_rtt_ms` sets the
  /// average pairwise round-trip time.
  LatencyModel(int node_count, Rng& rng, double mean_rtt_ms = 90.0);

  int node_count() const { return static_cast<int>(x_.size()); }

  /// Round-trip time between two distinct nodes; rtt(a, a) is a small
  /// loopback constant.
  SimTime rtt(int a, int b) const;

  /// One-way latency = rtt / 2.
  SimTime one_way(int a, int b) const { return rtt(a, b) / 2; }

  /// Conservative lower bound on one_way(a, b) over all distinct pairs:
  /// no effect can propagate between two nodes in less simulated time.
  /// The partitioned simulator uses this as its cross-arc lookahead —
  /// the sync horizon bounding a parallel window (DESIGN.md §9).
  SimTime min_one_way_bound() const;

  /// Empirical mean RTT in milliseconds over all distinct pairs (sampled).
  double measured_mean_rtt_ms(Rng& rng, int samples = 20000) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> jitter_ms_;  // per-node access-link delay component
  double scale_ms_ = 1.0;
  double base_ms_ = 4.0;
};

}  // namespace d2::net
