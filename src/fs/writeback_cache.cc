#include "fs/writeback_cache.h"

#include "common/assert.h"

namespace d2::fs {

WritebackCache::WritebackCache(SimTime ttl) : ttl_(ttl) { D2_REQUIRE(ttl > 0); }

void WritebackCache::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    staged_counter_ = nullptr;
    coalesced_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    flushed_counter_ = nullptr;
    return;
  }
  staged_counter_ = &registry->counter("fs.writeback_cache.staged_puts");
  coalesced_counter_ = &registry->counter("fs.writeback_cache.coalesced_puts");
  cancelled_counter_ = &registry->counter("fs.writeback_cache.cancelled_puts");
  flushed_counter_ = &registry->counter("fs.writeback_cache.flushed_puts");
}

void WritebackCache::stage_put(const Key& key, Bytes size, SimTime now,
                               std::optional<Key> remove_on_flush) {
  D2_REQUIRE_MSG(dirty_.count(key) == 0, "put already staged; use touch_put");
  dirty_.emplace(key, Pending{size, now, remove_on_flush});
  heap_.push(HeapEntry{now + ttl_, key, true});
  if (staged_counter_ != nullptr) staged_counter_->add(1);
}

void WritebackCache::touch_put(const Key& key, Bytes size, SimTime now) {
  auto it = dirty_.find(key);
  D2_REQUIRE_MSG(it != dirty_.end(), "touch_put without staged put");
  it->second.size = size;
  it->second.since = now;
  heap_.push(HeapEntry{now + ttl_, key, true});
  if (coalesced_counter_ != nullptr) coalesced_counter_->add(1);
}

std::optional<Key> WritebackCache::cancel_put(const Key& key) {
  auto it = dirty_.find(key);
  D2_REQUIRE_MSG(it != dirty_.end(), "cancel_put without staged put");
  std::optional<Key> remove_old = it->second.remove_on_flush;
  dirty_.erase(it);  // heap entry removed lazily
  if (cancelled_counter_ != nullptr) cancelled_counter_->add(1);
  return remove_old;
}

bool WritebackCache::is_fresh(const Key& key, SimTime now) const {
  if (dirty_.count(key) > 0) return true;  // dirty data is in memory
  auto it = clean_.find(key);
  return it != clean_.end() && now - it->second < ttl_;
}

void WritebackCache::mark_clean(const Key& key, SimTime now) {
  // Dirty data is in memory and fresh by definition; the read path only
  // reaches here after is_fresh() returned false, which rules dirty out.
  D2_DCHECK_MSG(dirty_.count(key) == 0, "marking a dirty key clean");
  clean_[key] = now;
  heap_.push(HeapEntry{now + ttl_, key, false});
}

void WritebackCache::flush_entry(const Key& key, const Pending& p,
                                 std::vector<StoreOp>& out) {
  out.push_back(StoreOp{StoreOp::Kind::kPut, key, p.size});
  if (p.remove_on_flush) {
    out.push_back(StoreOp{StoreOp::Kind::kRemove, *p.remove_on_flush, 0});
  }
  if (flushed_counter_ != nullptr) flushed_counter_->add(1);
}

void WritebackCache::collect_expired(SimTime now, std::vector<StoreOp>& out) {
  while (!heap_.empty() && heap_.top().expires <= now) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    if (top.dirty_heap) {
      auto it = dirty_.find(top.key);
      if (it == dirty_.end()) continue;  // cancelled or already flushed
      const SimTime real_expiry = it->second.since + ttl_;
      if (real_expiry > now) continue;  // touched since; a newer heap entry exists
      flush_entry(top.key, it->second, out);
      // Flushed blocks stay readable from the moment they actually
      // committed (staged time + TTL), not from this (possibly much
      // later) lazy collection point.
      const SimTime committed_at = real_expiry;
      clean_[top.key] = committed_at;
      heap_.push(HeapEntry{committed_at + ttl_, top.key, false});
      dirty_.erase(it);
    } else {
      auto it = clean_.find(top.key);
      if (it == clean_.end()) continue;
      if (it->second + ttl_ > now) continue;  // refreshed since
      clean_.erase(it);
    }
  }
}

void WritebackCache::flush_all(SimTime now, std::vector<StoreOp>& out) {
  for (const auto& [key, pending] : dirty_) {
    flush_entry(key, pending, out);
    clean_[key] = now;
    heap_.push(HeapEntry{now + ttl_, key, false});
  }
  dirty_.clear();
}

}  // namespace d2::fs
