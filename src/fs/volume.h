// D2-FS volume: a CFS-like block-structured file system over a DHT store
// (paper §3, Figure 2), parameterized by key scheme so the same code base
// drives D2 and both baselines (as in the paper's §7 prototype).
//
// Block organization:
//   - a root block (updated in place; all other blocks are immutable
//     versions),
//   - a metadata block per directory,
//   - an inode block per file (small files inline their data here),
//   - 8 KB data blocks.
// Every write creates new versions of the touched data blocks and of all
// metadata blocks on the path to the root; the 30-second write-back cache
// coalesces these and absorbs temporary files entirely. Old versions are
// removed when the new version commits (the store applies its own
// 30-second removal delay on top, §3).
//
// Key schemes:
//   kD2              — Fig 4 locality-preserving keys; renames keep the
//                      original keys (the new parent just points at them).
//   kTraditionalBlock — every block key is a uniform hash (CFS-style).
//   kTraditionalFile  — a whole file is one object with one hashed key
//                      (PAST-style); directories are separate objects.
//                      Partial reads are allowed, so all schemes read the
//                      same byte volume.
//
// A volume has a single writer (paper §3 usage assumptions); the embedded
// write-back/buffer cache is that writer-reader's client cache.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/key.h"
#include "common/units.h"
#include "fs/key_encoding.h"
#include "fs/writeback_cache.h"

namespace d2::fs {

enum class KeyScheme { kD2, kTraditionalBlock, kTraditionalFile };

std::string to_string(KeyScheme scheme);

struct VolumeConfig {
  KeyScheme scheme = KeyScheme::kD2;
  SimTime writeback_ttl = seconds(30);
  /// Files at most this large live inline in their inode block.
  Bytes inline_threshold = kB(4);
};

class Volume {
 public:
  Volume(std::string name, VolumeConfig config = {});
  ~Volume();

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  /// Binds the embedded write-back cache to `registry` (see
  /// WritebackCache::bind_metrics). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry) { cache_.bind_metrics(registry); }

  /// Writes [offset, offset+len) to `path`, creating the file (and any
  /// missing parent directories) if needed. Store operations — including
  /// any write-back flushes that came due — are appended to `out`.
  void write(std::string_view path, Bytes offset, Bytes len, SimTime now,
             std::vector<StoreOp>& out);

  /// Reads [offset, offset+len) from `path` (must exist). Emits get ops
  /// for blocks not covered by the buffer cache, including the metadata
  /// chain from the root.
  void read(std::string_view path, Bytes offset, Bytes len, SimTime now,
            std::vector<StoreOp>& out);

  /// Removes a file, or a directory and everything beneath it.
  void remove(std::string_view path, SimTime now, std::vector<StoreOp>& out);

  /// Moves `from` to `to` (creating target parents). Block keys do not
  /// change — D2-FS keeps original keys for renamed files (§4.2); only
  /// the affected directory metadata is rewritten.
  void rename(std::string_view from, std::string_view to, SimTime now,
              std::vector<StoreOp>& out);

  /// Creates a directory (and parents).
  void mkdir(std::string_view path, SimTime now, std::vector<StoreOp>& out);

  /// Flushes every dirty block regardless of age.
  void flush(SimTime now, std::vector<StoreOp>& out);

  bool exists(std::string_view path) const;
  bool is_directory(std::string_view path) const;
  Bytes file_size(std::string_view path) const;

  std::uint64_t file_count() const { return files_; }
  std::uint64_t dir_count() const { return dirs_; }

  const std::string& name() const { return name_; }
  const VolumeId& volume_id() const { return volume_id_; }
  KeyScheme scheme() const { return config_.scheme; }
  const VolumeConfig& config() const { return config_; }

  /// The (constant) key of the mutable root block.
  Key root_key() const;

  /// Keys a full sequential read of `path` would touch right now,
  /// ignoring the buffer cache (metadata chain + all data blocks).
  /// Useful to experiments that reason about placement.
  std::vector<StoreOp> uncached_read_ops(std::string_view path) const;

  /// Integrity chain digest (paper §3): because D2 keys are not content
  /// hashes, every metadata block stores the content hash of each block
  /// it points to; the publisher signs only the root block, which
  /// transitively authenticates the whole volume. This returns that root
  /// digest for the current committed state — any change to any block's
  /// identity (content version, size, name, structure) changes it.
  Sha1Digest integrity_digest() const;

 private:
  struct Node;

  Node* resolve(std::string_view path) const;
  Node* resolve_parent(std::string_view path, std::string* leaf) const;
  Node* ensure_directory(const std::vector<std::string>& components,
                         std::size_t count, SimTime now,
                         std::vector<StoreOp>& out);
  Node* create_file(Node* parent, const std::string& name, SimTime now,
                    std::vector<StoreOp>& out);
  Node* create_child_dir(Node* parent, const std::string& name, SimTime now,
                         std::vector<StoreOp>& out);

  Key meta_key(const Node& n, std::uint32_t version) const;
  Key data_key(const Node& n, std::uint64_t block_index,
               std::uint32_t version) const;
  Bytes meta_block_size(const Node& n) const;
  Bytes data_block_size(const Node& n, std::uint64_t block_index) const;
  std::uint16_t allocate_slot(Node* parent);

  void dirty_meta(Node* n, SimTime now);
  void dirty_meta_chain(Node* n, SimTime now);
  void dirty_data_block(Node* n, std::uint64_t block_index, SimTime now);
  void emit_remove_of_block(const Key& current_key, bool has_version,
                            std::vector<StoreOp>& out);
  void remove_node_blocks(Node* n, SimTime now, std::vector<StoreOp>& out);
  void read_meta_chain(Node* leaf, SimTime now, std::vector<StoreOp>& out);
  Sha1Digest node_digest(const Node& n) const;

  std::string name_;
  VolumeConfig config_;
  VolumeId volume_id_;
  std::unique_ptr<Node> root_;
  mutable WritebackCache cache_;
  std::uint64_t files_ = 0;
  std::uint64_t dirs_ = 0;
};

}  // namespace d2::fs
