// Locality-preserving key encoding (paper §4.2, Figure 4).
//
// A D2-FS block key is 64 bytes:
//
//   bytes [0, 20)  : volume id (SHA-1 of the volume name)
//   bytes [20, 44) : 12 x 2-byte path slots — each directory assigns every
//                    child an unused 2-byte value, so keys sort in
//                    name-space (preorder-traversal) order and blocks of
//                    files in the same directory have contiguous keys
//   bytes [44, 52) : 8-byte hash of the path remainder, for paths deeper
//                    than 12 levels (such files lose locality; < 1% of
//                    files in the paper's workloads)
//   bytes [52, 60) : 8-byte block field: 1 type byte (directory < inode <
//                    data) then a 7-byte block number, so a file's inode
//                    immediately precedes its data blocks
//   bytes [60, 64) : 4-byte version hash distinguishing versions of an
//                    overwritten block (least significant, so versions of
//                    a block stay adjacent)
//
// Slot value 0 is reserved for "the directory itself", so a directory's
// own metadata block sorts immediately before its children.
//
// Web objects (the Squirrel-style Webcache workload, §10) are encoded from
// their URL with the domain tuples reversed (www.yahoo.com/index.html ->
// com.yahoo.www/index.html); since a web cache has no directory blocks to
// allocate slots from, each component uses a 2-byte hash of its name
// instead (footnote 2), losing a little locality to collisions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/key.h"

namespace d2::fs {

/// Block types, in the order they sort within one path prefix.
enum class BlockType : std::uint8_t {
  kDirectory = 0,
  kInode = 1,
  kData = 2,
};

/// The path portion of a key: up to 12 two-byte slots plus the overflow
/// hash for deeper paths.
struct EncodedPath {
  static constexpr int kMaxLevels = 12;

  std::array<std::uint16_t, kMaxLevels> slots{};  // 0 = unused / self
  std::uint64_t remainder_hash = 0;               // 0 unless path overflows
  int depth = 0;                                  // number of used slots

  bool operator==(const EncodedPath& o) const = default;
};

/// 20-byte volume identifier.
using VolumeId = Sha1Digest;

VolumeId make_volume_id(std::string_view volume_name);

/// Assembles a full 64-byte block key from its Fig 4 fields.
Key encode_block_key(const VolumeId& volume, const EncodedPath& path,
                     BlockType type, std::uint64_t block_number,
                     std::uint32_t version);

/// Appends one level to an encoded path. `slot` must be non-zero. Levels
/// beyond kMaxLevels fold the component name into remainder_hash instead.
EncodedPath extend_path(const EncodedPath& parent, std::uint16_t slot,
                        std::string_view component_name);

/// Splits "a/b/c" into components; ignores empty components and leading
/// slashes.
std::vector<std::string> split_path(std::string_view path);

/// Reverses the domain tuples of a URL: "www.yahoo.com/a/b.html" ->
/// "com.yahoo.www/a/b.html".
std::string reverse_domain_url(std::string_view url);

/// Encodes a URL path (after domain reversal) using 2-byte name hashes
/// per component — the slot-less variant of footnote 2.
EncodedPath encode_url_path(std::string_view reversed_url);

/// Decomposition of a key back into coarse fields, for tests/debugging.
struct DecodedKey {
  std::array<std::uint8_t, 20> volume;
  EncodedPath path;
  BlockType type;
  std::uint64_t block_number;
  std::uint32_t version;
};
DecodedKey decode_block_key(const Key& k);

}  // namespace d2::fs
