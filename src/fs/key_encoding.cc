#include "fs/key_encoding.h"

#include "common/assert.h"

namespace d2::fs {

VolumeId make_volume_id(std::string_view volume_name) {
  return Sha1::hash(volume_name);
}

Key encode_block_key(const VolumeId& volume, const EncodedPath& path,
                     BlockType type, std::uint64_t block_number,
                     std::uint32_t version) {
  D2_REQUIRE_MSG(block_number < (1ull << 56), "block number exceeds 7 bytes");
  std::array<std::uint8_t, Key::kBytes> b{};
  // [0, 20): volume id.
  std::copy(volume.begin(), volume.end(), b.begin());
  // [20, 44): path slots, big-endian per slot.
  for (int i = 0; i < EncodedPath::kMaxLevels; ++i) {
    b[20 + 2 * static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(path.slots[static_cast<std::size_t>(i)] >> 8);
    b[21 + 2 * static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(path.slots[static_cast<std::size_t>(i)] & 0xff);
  }
  // [44, 52): remainder hash.
  for (int i = 0; i < 8; ++i) {
    b[44 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(path.remainder_hash >> (8 * (7 - i)));
  }
  // [52, 60): block field: type byte then 7-byte number.
  b[52] = static_cast<std::uint8_t>(type);
  for (int i = 0; i < 7; ++i) {
    b[53 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(block_number >> (8 * (6 - i)));
  }
  // [60, 64): version hash.
  for (int i = 0; i < 4; ++i) {
    b[60 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(version >> (8 * (3 - i)));
  }
  return Key::from_bytes(b);
}

EncodedPath extend_path(const EncodedPath& parent, std::uint16_t slot,
                        std::string_view component_name) {
  EncodedPath p = parent;
  if (p.depth < EncodedPath::kMaxLevels) {
    D2_REQUIRE_MSG(slot != 0, "slot 0 is reserved for the directory itself");
    p.slots[static_cast<std::size_t>(p.depth)] = slot;
    ++p.depth;
  } else {
    // Path overflow: fold the component into the remainder hash. Chaining
    // keeps distinct deep paths distinct (with high probability).
    std::string chained = std::to_string(p.remainder_hash);
    chained.push_back('/');
    chained.append(component_name);
    p.remainder_hash = fnv1a64(chained);
    ++p.depth;
  }
  return p;
}

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

std::string reverse_domain_url(std::string_view url) {
  // Strip scheme if present.
  if (auto pos = url.find("://"); pos != std::string_view::npos) {
    url = url.substr(pos + 3);
  }
  const std::size_t slash = url.find('/');
  const std::string_view domain =
      slash == std::string_view::npos ? url : url.substr(0, slash);
  const std::string_view rest =
      slash == std::string_view::npos ? std::string_view{} : url.substr(slash);

  // Reverse the dot-separated tuples.
  std::vector<std::string_view> tuples;
  std::size_t i = 0;
  while (i <= domain.size()) {
    std::size_t j = domain.find('.', i);
    if (j == std::string_view::npos) j = domain.size();
    tuples.push_back(domain.substr(i, j - i));
    i = j + 1;
    if (j == domain.size()) break;
  }
  std::string out;
  for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
    if (!out.empty()) out.push_back('.');
    out.append(*it);
  }
  out.append(rest);
  return out;
}

EncodedPath encode_url_path(std::string_view reversed_url) {
  // Treat the reversed domain as the first component and each path
  // segment as a further component, all slot-hashed (footnote 2).
  EncodedPath p;
  for (const std::string& comp : split_path(reversed_url)) {
    std::uint16_t h = hash16(comp);
    if (h == 0) h = 1;  // slot 0 is reserved
    p = extend_path(p, h, comp);
  }
  return p;
}

DecodedKey decode_block_key(const Key& k) {
  DecodedKey d{};
  const auto& b = k.bytes();
  std::copy(b.begin(), b.begin() + 20, d.volume.begin());
  int depth = 0;
  for (int i = 0; i < EncodedPath::kMaxLevels; ++i) {
    const std::uint16_t slot = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(b[20 + 2 * static_cast<std::size_t>(i)]) << 8) |
        b[21 + 2 * static_cast<std::size_t>(i)]);
    d.path.slots[static_cast<std::size_t>(i)] = slot;
    if (slot != 0) depth = i + 1;
  }
  d.path.depth = depth;
  for (int i = 0; i < 8; ++i) {
    d.path.remainder_hash =
        (d.path.remainder_hash << 8) | b[44 + static_cast<std::size_t>(i)];
  }
  d.type = static_cast<BlockType>(b[52]);
  d.block_number = 0;
  for (int i = 0; i < 7; ++i) {
    d.block_number = (d.block_number << 8) | b[53 + static_cast<std::size_t>(i)];
  }
  d.version = 0;
  for (int i = 0; i < 4; ++i) {
    d.version = (d.version << 8) | b[60 + static_cast<std::size_t>(i)];
  }
  return d;
}

}  // namespace d2::fs
