// 30-second write-back / buffer cache (paper §3, D2-FS).
//
// Writes are buffered for 30 seconds before being pushed to the DHT, so
// temporary files that are created and deleted quickly never touch the
// store, and a burst of writes to the same block (or to the metadata
// blocks on the path to the root) coalesces into one put. The same cache
// doubles as a read buffer: a block fetched within the window is not
// fetched again. Users may therefore see data up to 30 s stale, but never
// partial writes.
//
// The cache tracks *pending puts* (dirty blocks, with the previous
// version's key to remove once the new version commits) and *clean
// entries* (recently-read blocks). Expiry uses a lazy min-heap so
// operations stay O(log n).
#pragma once

#include <map>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/key.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace d2::fs {

/// One operation the file system asks the store to perform.
struct StoreOp {
  enum class Kind { kPut, kGet, kRemove };
  Kind kind;
  Key key;
  Bytes size = 0;

  bool operator==(const StoreOp& o) const = default;
};

class WritebackCache {
 public:
  explicit WritebackCache(SimTime ttl = seconds(30));

  /// Aggregates write-back activity into shared registry counters
  /// `fs.writeback_cache.{staged_puts,coalesced_puts,cancelled_puts,
  /// flushed_puts}` (per-volume caches bound to one registry sum
  /// together). Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Stages a put of `key`. `remove_on_flush` is the previous committed
  /// version's key, removed when (and only when) the new version commits.
  void stage_put(const Key& key, Bytes size, SimTime now,
                 std::optional<Key> remove_on_flush);

  /// True iff a put of `key` is staged (dirty, not yet flushed).
  bool has_pending(const Key& key) const { return dirty_.count(key) > 0; }

  /// Refreshes a staged put (another write to the same uncommitted
  /// version); updates its size and resets its age.
  void touch_put(const Key& key, Bytes size, SimTime now);

  /// Cancels a staged put (the block was deleted before ever committing).
  /// Returns the remove_on_flush key, which the *caller* must still emit
  /// as a remove (the previous version is committed in the store).
  std::optional<Key> cancel_put(const Key& key);

  /// Buffer-cache read check: true if `key` was read or written within
  /// the window (no store get needed).
  bool is_fresh(const Key& key, SimTime now) const;

  /// Records that `key` was just fetched (becomes fresh).
  void mark_clean(const Key& key, SimTime now);

  /// Flushes staged puts older than the TTL; appends the resulting
  /// put/remove ops. Call with the current time before handling each FS
  /// operation (the experiment drivers also call flush_all at trace end).
  void collect_expired(SimTime now, std::vector<StoreOp>& out);

  /// Flushes everything regardless of age.
  void flush_all(SimTime now, std::vector<StoreOp>& out);

  std::size_t pending_puts() const { return dirty_.size(); }

  SimTime ttl() const { return ttl_; }

 private:
  struct Pending {
    Bytes size;
    SimTime since;
    std::optional<Key> remove_on_flush;
  };

  void flush_entry(const Key& key, const Pending& p, std::vector<StoreOp>& out);

  SimTime ttl_;
  std::map<Key, Pending> dirty_;
  /// Keyed find/insert/erase only; never iterated.
  std::unordered_map<Key, SimTime, KeyHash> clean_;  // d2-lint: allow(unordered-container)

  struct HeapEntry {
    SimTime expires;
    Key key;
    bool dirty_heap;  // which structure this entry tracks
    bool operator>(const HeapEntry& o) const { return expires > o.expires; }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;

  obs::Counter* staged_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Counter* flushed_counter_ = nullptr;
};

}  // namespace d2::fs
