#include "fs/volume.h"

#include <algorithm>

#include "common/assert.h"
#include "dht/consistent_hash.h"

namespace d2::fs {

std::string to_string(KeyScheme scheme) {
  switch (scheme) {
    case KeyScheme::kD2:
      return "d2";
    case KeyScheme::kTraditionalBlock:
      return "traditional";
    case KeyScheme::kTraditionalFile:
      return "traditional-file";
  }
  return "?";
}

struct Volume::Node {
  Node* parent = nullptr;
  std::string name;
  bool is_dir = false;
  EncodedPath epath;
  /// Path at creation time; key material is frozen across renames (§4.2).
  std::string frozen_path;
  /// Latest version of this node's metadata block (0 = none yet). For
  /// kTraditionalFile file nodes this is the whole-file object version.
  std::uint32_t meta_version = 0;
  // Directory state.
  std::map<std::string, std::unique_ptr<Node>> children;
  std::uint16_t next_slot = 1;
  // File state.
  Bytes size = 0;
  std::vector<std::uint32_t> data_versions;  // per 8 KB block; 0 = hole

  bool is_root() const { return parent == nullptr; }
};

Volume::Volume(std::string name, VolumeConfig config)
    : name_(std::move(name)),
      config_(config),
      volume_id_(make_volume_id(name_)),
      root_(std::make_unique<Node>()),
      cache_(config.writeback_ttl) {
  D2_REQUIRE(config_.inline_threshold >= 0 &&
             config_.inline_threshold <= kBlockSize);
  root_->is_dir = true;
  dirs_ = 1;
  dirty_meta(root_.get(), 0);
}

Volume::~Volume() = default;

// ---------------------------------------------------------------- keys --

Key Volume::meta_key(const Node& n, std::uint32_t version) const {
  switch (config_.scheme) {
    case KeyScheme::kD2:
      return encode_block_key(volume_id_, n.epath,
                              n.is_dir ? BlockType::kDirectory : BlockType::kInode,
                              0, version);
    case KeyScheme::kTraditionalBlock:
      return dht::hashed_key(name_ + "|" + n.frozen_path + "|m|" +
                             std::to_string(version));
    case KeyScheme::kTraditionalFile:
      return dht::hashed_key(name_ + "|" + n.frozen_path +
                             (n.is_dir ? "|d|" : "|f|") + std::to_string(version));
  }
  D2_ASSERT(false);
  return Key{};
}

Key Volume::data_key(const Node& n, std::uint64_t block_index,
                     std::uint32_t version) const {
  switch (config_.scheme) {
    case KeyScheme::kD2:
      return encode_block_key(volume_id_, n.epath, BlockType::kData, block_index,
                              version);
    case KeyScheme::kTraditionalBlock:
      return dht::hashed_key(name_ + "|" + n.frozen_path + "|b|" +
                             std::to_string(block_index) + "|" +
                             std::to_string(version));
    case KeyScheme::kTraditionalFile:
      break;
  }
  D2_ASSERT_MSG(false, "traditional-file has no per-block keys");
  return Key{};
}

Bytes Volume::meta_block_size(const Node& n) const {
  if (n.is_dir) {
    return std::min<Bytes>(kBlockSize,
                           64 + 32 * static_cast<Bytes>(n.children.size()));
  }
  if (config_.scheme == KeyScheme::kTraditionalFile) {
    return 64 + n.size;  // the whole-file object
  }
  if (n.data_versions.empty()) {
    return 64 + n.size;  // inline file data lives in the inode
  }
  return 256;  // inode with block pointers + content hashes
}

Bytes Volume::data_block_size(const Node& n, std::uint64_t block_index) const {
  const auto start = static_cast<Bytes>(block_index) * kBlockSize;
  D2_ASSERT(start < n.size);
  return std::min<Bytes>(kBlockSize, n.size - start);
}

Key Volume::root_key() const { return meta_key(*root_, 1); }

// ------------------------------------------------------------- resolve --

Volume::Node* Volume::resolve(std::string_view path) const {
  Node* cur = root_.get();
  for (const std::string& c : split_path(path)) {
    if (!cur->is_dir) return nullptr;
    auto it = cur->children.find(c);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

Volume::Node* Volume::resolve_parent(std::string_view path,
                                     std::string* leaf) const {
  std::vector<std::string> parts = split_path(path);
  if (parts.empty()) return nullptr;
  *leaf = parts.back();
  Node* cur = root_.get();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!cur->is_dir) return nullptr;
    auto it = cur->children.find(parts[i]);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur->is_dir ? cur : nullptr;
}

bool Volume::exists(std::string_view path) const {
  return resolve(path) != nullptr;
}

bool Volume::is_directory(std::string_view path) const {
  const Node* n = resolve(path);
  return n != nullptr && n->is_dir;
}

Bytes Volume::file_size(std::string_view path) const {
  const Node* n = resolve(path);
  D2_REQUIRE_MSG(n != nullptr && !n->is_dir, "not a file: " + std::string(path));
  return n->size;
}

// ------------------------------------------------------------ dirtying --

std::uint16_t Volume::allocate_slot(Node* parent) {
  D2_REQUIRE_MSG(parent->next_slot != 0, "directory slot space exhausted");
  return parent->next_slot++;
}

void Volume::dirty_meta(Node* n, SimTime now) {
  const Bytes msize = meta_block_size(*n);
  if (n->is_root()) {
    // The root block is updated in place: constant key, no old version.
    n->meta_version = 1;
    const Key k = meta_key(*n, 1);
    if (cache_.has_pending(k)) {
      cache_.touch_put(k, msize, now);
    } else {
      cache_.stage_put(k, msize, now, std::nullopt);
    }
    return;
  }
  if (n->meta_version == 0) {
    n->meta_version = 1;
    cache_.stage_put(meta_key(*n, 1), msize, now, std::nullopt);
    return;
  }
  const Key cur = meta_key(*n, n->meta_version);
  if (cache_.has_pending(cur)) {
    cache_.touch_put(cur, msize, now);
  } else {
    const std::uint32_t old = n->meta_version++;
    cache_.stage_put(meta_key(*n, n->meta_version), msize, now,
                     meta_key(*n, old));
  }
}

void Volume::dirty_meta_chain(Node* n, SimTime now) {
  for (Node* cur = n; cur != nullptr; cur = cur->parent) {
    dirty_meta(cur, now);
  }
}

void Volume::dirty_data_block(Node* n, std::uint64_t block_index, SimTime now) {
  if (n->data_versions.size() <= block_index) {
    n->data_versions.resize(block_index + 1, 0);
  }
  std::uint32_t& ver = n->data_versions[block_index];
  const Bytes bsize = data_block_size(*n, block_index);
  if (ver == 0) {
    ver = 1;
    cache_.stage_put(data_key(*n, block_index, 1), bsize, now, std::nullopt);
    return;
  }
  const Key cur = data_key(*n, block_index, ver);
  if (cache_.has_pending(cur)) {
    cache_.touch_put(cur, bsize, now);
  } else {
    const std::uint32_t old = ver++;
    cache_.stage_put(data_key(*n, block_index, ver), bsize, now,
                     data_key(*n, block_index, old));
  }
}

void Volume::emit_remove_of_block(const Key& current_key, bool has_version,
                                  std::vector<StoreOp>& out) {
  if (!has_version) return;
  if (cache_.has_pending(current_key)) {
    // The latest version never committed; only its predecessor (if any)
    // lives in the store.
    std::optional<Key> old = cache_.cancel_put(current_key);
    if (old) out.push_back(StoreOp{StoreOp::Kind::kRemove, *old, 0});
  } else {
    out.push_back(StoreOp{StoreOp::Kind::kRemove, current_key, 0});
  }
}

// ------------------------------------------------------------ creation --

Volume::Node* Volume::create_child_dir(Node* parent, const std::string& name,
                                       SimTime now, std::vector<StoreOp>& out) {
  (void)out;
  auto node = std::make_unique<Node>();
  node->parent = parent;
  node->name = name;
  node->is_dir = true;
  const std::uint16_t slot = allocate_slot(parent);
  node->epath = extend_path(parent->epath, slot, name);
  node->frozen_path = parent->frozen_path + "/" + name;
  Node* raw = node.get();
  parent->children.emplace(name, std::move(node));
  ++dirs_;
  dirty_meta(raw, now);
  dirty_meta(parent, now);
  return raw;
}

Volume::Node* Volume::create_file(Node* parent, const std::string& name,
                                  SimTime now, std::vector<StoreOp>& out) {
  (void)out;
  auto node = std::make_unique<Node>();
  node->parent = parent;
  node->name = name;
  node->is_dir = false;
  const std::uint16_t slot = allocate_slot(parent);
  node->epath = extend_path(parent->epath, slot, name);
  node->frozen_path = parent->frozen_path + "/" + name;
  Node* raw = node.get();
  parent->children.emplace(name, std::move(node));
  ++files_;
  dirty_meta(raw, now);
  dirty_meta(parent, now);
  return raw;
}

Volume::Node* Volume::ensure_directory(const std::vector<std::string>& components,
                                       std::size_t count, SimTime now,
                                       std::vector<StoreOp>& out) {
  Node* cur = root_.get();
  for (std::size_t i = 0; i < count; ++i) {
    D2_REQUIRE_MSG(cur->is_dir, "path component is a file: " + components[i]);
    auto it = cur->children.find(components[i]);
    if (it == cur->children.end()) {
      cur = create_child_dir(cur, components[i], now, out);
    } else {
      cur = it->second.get();
    }
  }
  D2_REQUIRE_MSG(cur->is_dir, "not a directory");
  return cur;
}

// ------------------------------------------------------------- actions --

void Volume::write(std::string_view path, Bytes offset, Bytes len, SimTime now,
                   std::vector<StoreOp>& out) {
  D2_REQUIRE(offset >= 0 && len >= 0);
  cache_.collect_expired(now, out);
  std::vector<std::string> parts = split_path(path);
  D2_REQUIRE_MSG(!parts.empty(), "empty path");
  Node* parent = ensure_directory(parts, parts.size() - 1, now, out);
  Node* file;
  auto it = parent->children.find(parts.back());
  if (it == parent->children.end()) {
    file = create_file(parent, parts.back(), now, out);
  } else {
    file = it->second.get();
    D2_REQUIRE_MSG(!file->is_dir, "write to a directory: " + std::string(path));
  }

  const Bytes old_size = file->size;
  const Bytes new_size = std::max(old_size, offset + len);
  file->size = new_size;

  if (config_.scheme == KeyScheme::kTraditionalFile) {
    dirty_meta(file, now);  // the whole-file object
  } else {
    const bool was_inline = file->data_versions.empty();
    const bool fits_inline = new_size <= config_.inline_threshold;
    if (was_inline && fits_inline) {
      // Data lives in the inode; dirtying the inode below covers it.
    } else if (was_inline) {
      // Spill out of the inode: materialize every data block.
      const auto nblocks =
          static_cast<std::uint64_t>((new_size + kBlockSize - 1) / kBlockSize);
      for (std::uint64_t i = 0; i < nblocks; ++i) {
        dirty_data_block(file, i, now);
      }
    } else {
      if (len > 0) {
        const auto first = static_cast<std::uint64_t>(offset / kBlockSize);
        const auto last =
            static_cast<std::uint64_t>((offset + len - 1) / kBlockSize);
        for (std::uint64_t i = first; i <= last; ++i) {
          dirty_data_block(file, i, now);
        }
      }
      if (new_size > old_size && old_size > 0) {
        // The old tail block's size changed, and any blocks appended
        // beyond the written range (holes) materialize as well.
        const auto first = static_cast<std::uint64_t>((old_size - 1) / kBlockSize);
        const auto last = static_cast<std::uint64_t>((new_size - 1) / kBlockSize);
        for (std::uint64_t i = first; i <= last; ++i) {
          dirty_data_block(file, i, now);
        }
      }
    }
    dirty_meta(file, now);  // inode: size / block pointers / inline data
  }
  dirty_meta_chain(file->parent, now);
}

void Volume::read_meta_chain(Node* leaf, SimTime now, std::vector<StoreOp>& out) {
  // Collect root -> leaf.
  std::vector<Node*> chain;
  for (Node* n = leaf; n != nullptr; n = n->parent) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  for (Node* n : chain) {
    if (config_.scheme == KeyScheme::kTraditionalFile && !n->is_dir) {
      continue;  // the file object get carries the requested byte count
    }
    D2_ASSERT(n->meta_version > 0);
    const Key k = meta_key(*n, n->meta_version);
    if (!cache_.is_fresh(k, now)) {
      out.push_back(StoreOp{StoreOp::Kind::kGet, k, meta_block_size(*n)});
      cache_.mark_clean(k, now);
    }
  }
}

void Volume::read(std::string_view path, Bytes offset, Bytes len, SimTime now,
                  std::vector<StoreOp>& out) {
  D2_REQUIRE(offset >= 0 && len >= 0);
  cache_.collect_expired(now, out);
  Node* file = resolve(path);
  D2_REQUIRE_MSG(file != nullptr, "read of missing path: " + std::string(path));
  D2_REQUIRE_MSG(!file->is_dir, "read of a directory: " + std::string(path));

  read_meta_chain(file, now, out);

  if (offset >= file->size || len == 0) return;
  const Bytes end = std::min(file->size, offset + len);

  if (config_.scheme == KeyScheme::kTraditionalFile) {
    D2_ASSERT(file->meta_version > 0);
    const Key k = meta_key(*file, file->meta_version);
    if (!cache_.is_fresh(k, now)) {
      out.push_back(StoreOp{StoreOp::Kind::kGet, k, end - offset});
      cache_.mark_clean(k, now);
    }
    return;
  }

  if (file->data_versions.empty()) return;  // inline: the inode get covered it

  const auto first = static_cast<std::uint64_t>(offset / kBlockSize);
  const auto last = static_cast<std::uint64_t>((end - 1) / kBlockSize);
  for (std::uint64_t i = first; i <= last; ++i) {
    if (i >= file->data_versions.size() || file->data_versions[i] == 0) {
      continue;  // hole
    }
    const Key k = data_key(*file, i, file->data_versions[i]);
    if (!cache_.is_fresh(k, now)) {
      out.push_back(StoreOp{StoreOp::Kind::kGet, k, data_block_size(*file, i)});
      cache_.mark_clean(k, now);
    }
  }
}

void Volume::remove_node_blocks(Node* n, SimTime now, std::vector<StoreOp>& out) {
  D2_REQUIRE_MSG(n != nullptr, "removing a null tree node");
  if (n->is_dir) {
    for (auto& [name, child] : n->children) {
      remove_node_blocks(child.get(), now, out);
    }
    n->children.clear();
    --dirs_;
  } else {
    --files_;
    if (config_.scheme != KeyScheme::kTraditionalFile) {
      for (std::uint64_t i = 0; i < n->data_versions.size(); ++i) {
        if (n->data_versions[i] == 0) continue;
        emit_remove_of_block(data_key(*n, i, n->data_versions[i]), true, out);
      }
    }
  }
  if (!n->is_root()) {
    emit_remove_of_block(meta_key(*n, std::max<std::uint32_t>(1, n->meta_version)),
                         n->meta_version > 0, out);
  }
}

void Volume::remove(std::string_view path, SimTime now,
                    std::vector<StoreOp>& out) {
  cache_.collect_expired(now, out);
  std::string leaf;
  Node* parent = resolve_parent(path, &leaf);
  D2_REQUIRE_MSG(parent != nullptr, "remove of missing path: " + std::string(path));
  auto it = parent->children.find(leaf);
  D2_REQUIRE_MSG(it != parent->children.end(), "remove of missing path: " + std::string(path));
  remove_node_blocks(it->second.get(), now, out);
  parent->children.erase(it);
  dirty_meta_chain(parent, now);
}

void Volume::rename(std::string_view from, std::string_view to, SimTime now,
                    std::vector<StoreOp>& out) {
  cache_.collect_expired(now, out);
  std::string from_leaf;
  Node* from_parent = resolve_parent(from, &from_leaf);
  D2_REQUIRE_MSG(from_parent != nullptr, "rename of missing path: " + std::string(from));
  auto it = from_parent->children.find(from_leaf);
  D2_REQUIRE_MSG(it != from_parent->children.end(),
                 "rename of missing path: " + std::string(from));

  std::vector<std::string> to_parts = split_path(to);
  D2_REQUIRE_MSG(!to_parts.empty(), "empty rename target");
  Node* to_parent = ensure_directory(to_parts, to_parts.size() - 1, now, out);
  D2_REQUIRE_MSG(to_parent->children.count(to_parts.back()) == 0,
                 "rename target exists: " + std::string(to));

  std::unique_ptr<Node> node = std::move(it->second);
  from_parent->children.erase(it);
  node->parent = to_parent;
  node->name = to_parts.back();
  // Keys (epath / frozen_path) intentionally unchanged: the new parent
  // points at the file's original location (§4.2).
  to_parent->children.emplace(to_parts.back(), std::move(node));

  dirty_meta_chain(from_parent, now);
  dirty_meta_chain(to_parent, now);
}

void Volume::mkdir(std::string_view path, SimTime now,
                   std::vector<StoreOp>& out) {
  cache_.collect_expired(now, out);
  std::vector<std::string> parts = split_path(path);
  Node* dir = ensure_directory(parts, parts.size(), now, out);
  dirty_meta_chain(dir, now);
}

void Volume::flush(SimTime now, std::vector<StoreOp>& out) {
  cache_.collect_expired(now, out);
  cache_.flush_all(now, out);
}

Sha1Digest Volume::node_digest(const Node& n) const {
  // The "content hash" of a block in this simulation is a digest of its
  // identity (key material + version + size); a real implementation would
  // hash the bytes. Parents fold in their children's digests, giving the
  // CFS-style chain where the root digest authenticates everything.
  Sha1 h;
  h.update(n.frozen_path);
  h.update("|v");
  h.update(std::to_string(n.meta_version));
  if (n.is_dir) {
    for (const auto& [name, child] : n.children) {
      h.update("|child:");
      h.update(name);
      const Sha1Digest d = node_digest(*child);
      h.update(d.data(), d.size());
    }
  } else {
    h.update("|size:");
    h.update(std::to_string(n.size));
    for (std::uint32_t ver : n.data_versions) {
      h.update("|b");
      h.update(std::to_string(ver));
    }
  }
  return h.digest();
}

Sha1Digest Volume::integrity_digest() const { return node_digest(*root_); }

std::vector<StoreOp> Volume::uncached_read_ops(std::string_view path) const {
  Node* file = resolve(path);
  D2_REQUIRE_MSG(file != nullptr && !file->is_dir, "not a file: " + std::string(path));
  std::vector<StoreOp> out;
  std::vector<Node*> chain;
  for (Node* n = file; n != nullptr; n = n->parent) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  for (Node* n : chain) {
    if (config_.scheme == KeyScheme::kTraditionalFile && !n->is_dir) continue;
    if (n->meta_version == 0) continue;
    out.push_back(StoreOp{StoreOp::Kind::kGet, meta_key(*n, n->meta_version),
                          meta_block_size(*n)});
  }
  if (config_.scheme == KeyScheme::kTraditionalFile) {
    if (file->meta_version > 0 && file->size > 0) {
      out.push_back(StoreOp{StoreOp::Kind::kGet,
                            meta_key(*file, file->meta_version), file->size});
    }
    return out;
  }
  for (std::uint64_t i = 0; i < file->data_versions.size(); ++i) {
    if (file->data_versions[i] == 0) continue;
    out.push_back(StoreOp{StoreOp::Kind::kGet,
                          data_key(*file, i, file->data_versions[i]),
                          data_block_size(*file, i)});
  }
  return out;
}

}  // namespace d2::fs
