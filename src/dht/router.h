// Small-world DHT routing with measured hop counts.
//
// D2 uses the Mercury DHT, which keeps O(log n)-hop routes under an
// arbitrary (non-uniform) key distribution by sampling long links by node
// *rank* rather than key distance (§6). We implement that directly: each
// node keeps its successor plus k = ceil(log2 n) long links whose rank
// offsets are drawn from the harmonic distribution (Symphony/Mercury
// style), and lookups route greedily clockwise. Hop counts in experiments
// are measured from this structure, not assumed.
//
// Routing is recursive (as in Mercury, §7): each hop is one message, plus
// one message to return the result to the requester.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "dht/ring.h"
#include "obs/metrics.h"

namespace d2::dht {

class Router {
 public:
  /// Builds routing tables for the current ring membership.
  /// `links_per_node` <= 0 means use ceil(log2(n)).
  Router(const Ring& ring, Rng& rng, int links_per_node = 0);

  /// Re-samples all routing tables (e.g., after load balancing moved IDs).
  void rebuild(Rng& rng);

  struct LookupResult {
    int owner = -1;   // node responsible for the key
    int hops = 0;     // forwarding hops taken (0 if src is the owner)
    int messages = 0; // hops + 1 reply message (0 if src is the owner)
    std::vector<int> path;  // nodes visited, starting with src
  };

  /// Routes a lookup for `k` starting at `src`.
  LookupResult lookup(int src, const Key& k) const;

  /// Reports every lookup into `registry`: `dht.router.lookups` /
  /// `dht.router.messages` counters and the `dht.router.hops` histogram.
  /// Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

  /// Links of one node (for tests): clockwise neighbours by node index.
  const std::vector<int>& links_of(int node) const;

  int links_per_node() const { return links_per_node_; }

 private:
  void build_tables(Rng& rng);

  const Ring& ring_;
  int links_per_node_;
  /// Keyed find/emplace only; never iterated (routing tables are built in
  /// ring order and read per-node).
  std::unordered_map<int, std::vector<int>> links_;  // d2-lint: allow(unordered-container)
  // Instrument pointers, not const: lookup() is logically const but
  // still reports traffic.
  obs::Counter* lookups_counter_ = nullptr;
  obs::Counter* messages_counter_ = nullptr;
  obs::Histogram* hops_histogram_ = nullptr;
};

}  // namespace d2::dht
