#include "dht/consistent_hash.h"

#include <string>

#include "common/hash.h"

namespace d2::dht {

Key hashed_key(std::string_view name) {
  // Expand SHA-1 (20 bytes) to 64 bytes via counter-mode rehashing.
  std::array<std::uint8_t, Key::kBytes> bytes{};
  std::size_t off = 0;
  int counter = 0;
  while (off < bytes.size()) {
    Sha1 h;
    h.update(name);
    const char c = static_cast<char>('0' + counter);
    h.update(&c, 1);
    const Sha1Digest d = h.digest();
    const std::size_t take = std::min(d.size(), bytes.size() - off);
    std::copy(d.begin(), d.begin() + static_cast<long>(take), bytes.begin() + static_cast<long>(off));
    off += take;
    ++counter;
  }
  return Key::from_bytes(bytes);
}

Key random_node_id(Rng& rng) { return Key::random(rng); }

}  // namespace d2::dht
