// Karger-Ruhl / Mercury active load-balancing policy (paper §6).
//
// Every probe interval, node B contacts a random node A. If A's (primary)
// load exceeds t times B's load, B leaves the ring and rejoins as A's
// predecessor, taking the lighter half of A's key range. With t >= 4 all
// node loads converge to within a constant factor of the average in
// O(log n) steps w.h.p. (Karger & Ruhl, SPAA'04); the paper uses t = 4.
//
// This class is pure policy: it decides *whether* a probe should trigger a
// move and *where* the light node's new ID should be. Executing the move —
// the ID change plus the replica adjustments / block pointers — is the
// store layer's job, keeping the DHT component independent of storage.
#pragma once

#include <optional>

#include "common/key.h"
#include "obs/metrics.h"

namespace d2::dht {

struct LoadBalanceConfig {
  /// Imbalance threshold: act when heavy >= t * light (t >= 2 for the
  /// halving step to make sense; the paper uses 4).
  double threshold = 4.0;
  /// Don't split nodes with fewer primary blocks than this (splitting a
  /// nearly empty node is pure churn).
  std::int64_t min_split_load = 4;
};

struct MoveDecision {
  int light_node;  // node that changes its ID
  int heavy_node;  // node whose range is split
  Key new_id;      // light node's new ID (heavy's range median)
};

class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalanceConfig config = {});

  /// Evaluates one probe between nodes `a` and `b` with primary loads
  /// `load_a`, `load_b`. `median_key_of(int heavy)` must return the key
  /// splitting the given node's primary blocks in half (the light node's
  /// new ID), or nullopt if the node cannot be split. Either node may
  /// turn out to be the heavy one. Returns nullopt when balanced.
  ///
  /// Templated on the callback so the caller's median lambda (which walks
  /// the block index) is invoked directly instead of through an
  /// std::function box; it is only called on the imbalanced path.
  template <class MedianKeyOf>
  std::optional<MoveDecision> evaluate_probe(int a, std::int64_t load_a, int b,
                                             std::int64_t load_b,
                                             MedianKeyOf&& median_key_of) const {
    if (probes_counter_ != nullptr) probes_counter_->add(1);
    if (a == b) return std::nullopt;
    int heavy, light;
    std::int64_t heavy_load, light_load;
    if (load_a >= load_b) {
      heavy = a;
      heavy_load = load_a;
      light = b;
      light_load = load_b;
    } else {
      heavy = b;
      heavy_load = load_b;
      light = a;
      light_load = load_a;
    }
    if (heavy_load < config_.min_split_load) return std::nullopt;
    // Act when heavy > t * light. (light_load may be 0: always imbalanced.)
    if (static_cast<double>(heavy_load) <=
        config_.threshold * static_cast<double>(light_load)) {
      return std::nullopt;
    }
    std::optional<Key> split = median_key_of(heavy);
    if (!split) return std::nullopt;
    if (decisions_counter_ != nullptr) decisions_counter_->add(1);
    return MoveDecision{light, heavy, *split};
  }

  /// The caller decided to apply a MoveDecision (the ring actually
  /// changed). Keeps `dht.load_balancer.moves_triggered` equal to real
  /// ring changes: evaluate_probe() only counts *decisions*, because the
  /// caller may still discard one (e.g. the light node went down between
  /// the probe and the move).
  void count_applied_move();

  const LoadBalanceConfig& config() const { return config_; }

  /// Reports probe evaluations (`dht.load_balancer.probes`), positive
  /// probe outcomes (`dht.load_balancer.decisions`) and applied moves
  /// (`dht.load_balancer.moves_triggered`, via count_applied_move) into
  /// `registry`. Pass nullptr to unbind.
  void bind_metrics(obs::Registry* registry);

 private:
  LoadBalanceConfig config_;
  obs::Counter* probes_counter_ = nullptr;
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* moves_counter_ = nullptr;
};

}  // namespace d2::dht
