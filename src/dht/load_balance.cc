#include "dht/load_balance.h"

#include "common/assert.h"

namespace d2::dht {

LoadBalancer::LoadBalancer(LoadBalanceConfig config) : config_(config) {
  D2_REQUIRE_MSG(config_.threshold >= 2.0, "threshold must be >= 2");
  D2_REQUIRE(config_.min_split_load >= 2);
}

void LoadBalancer::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    probes_counter_ = nullptr;
    decisions_counter_ = nullptr;
    moves_counter_ = nullptr;
    return;
  }
  probes_counter_ = &registry->counter("dht.load_balancer.probes");
  decisions_counter_ = &registry->counter("dht.load_balancer.decisions");
  moves_counter_ = &registry->counter("dht.load_balancer.moves_triggered");
}

void LoadBalancer::count_applied_move() {
  if (moves_counter_ != nullptr) moves_counter_->add(1);
}

std::optional<MoveDecision> LoadBalancer::evaluate_probe(
    int a, std::int64_t load_a, int b, std::int64_t load_b,
    const std::function<std::optional<Key>(int heavy)>& median_key_of) const {
  if (probes_counter_ != nullptr) probes_counter_->add(1);
  if (a == b) return std::nullopt;
  int heavy, light;
  std::int64_t heavy_load, light_load;
  if (load_a >= load_b) {
    heavy = a;
    heavy_load = load_a;
    light = b;
    light_load = load_b;
  } else {
    heavy = b;
    heavy_load = load_b;
    light = a;
    light_load = load_a;
  }
  if (heavy_load < config_.min_split_load) return std::nullopt;
  // Act when heavy > t * light. (light_load may be 0: always imbalanced.)
  if (static_cast<double>(heavy_load) <=
      config_.threshold * static_cast<double>(light_load)) {
    return std::nullopt;
  }
  std::optional<Key> split = median_key_of(heavy);
  if (!split) return std::nullopt;
  if (decisions_counter_ != nullptr) decisions_counter_->add(1);
  return MoveDecision{light, heavy, *split};
}

}  // namespace d2::dht
