#include "dht/load_balance.h"

#include "common/assert.h"

namespace d2::dht {

LoadBalancer::LoadBalancer(LoadBalanceConfig config) : config_(config) {
  D2_REQUIRE_MSG(config_.threshold >= 2.0, "threshold must be >= 2");
  D2_REQUIRE(config_.min_split_load >= 2);
}

void LoadBalancer::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    probes_counter_ = nullptr;
    decisions_counter_ = nullptr;
    moves_counter_ = nullptr;
    return;
  }
  probes_counter_ = &registry->counter("dht.load_balancer.probes");
  decisions_counter_ = &registry->counter("dht.load_balancer.decisions");
  moves_counter_ = &registry->counter("dht.load_balancer.moves_triggered");
}

void LoadBalancer::count_applied_move() {
  if (moves_counter_ != nullptr) moves_counter_->add(1);
}

}  // namespace d2::dht
