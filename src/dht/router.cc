#include "dht/router.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace d2::dht {

Router::Router(const Ring& ring, Rng& rng, int links_per_node)
    : ring_(ring), links_per_node_(links_per_node) {
  build_tables(rng);
}

void Router::rebuild(Rng& rng) { build_tables(rng); }

void Router::bind_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    lookups_counter_ = nullptr;
    messages_counter_ = nullptr;
    hops_histogram_ = nullptr;
    return;
  }
  lookups_counter_ = &registry->counter("dht.router.lookups");
  messages_counter_ = &registry->counter("dht.router.messages");
  hops_histogram_ = &registry->histogram("dht.router.hops");
}

void Router::build_tables(Rng& rng) {
  links_.clear();
  const std::size_t n = ring_.size();
  D2_REQUIRE(n > 0);
  int k = links_per_node_;
  if (k <= 0) {
    k = std::max(1, static_cast<int>(std::ceil(std::log2(static_cast<double>(
                        std::max<std::size_t>(2, n))))));
  }
  const double log_n = std::log(static_cast<double>(std::max<std::size_t>(2, n)));
  for (int node : ring_.nodes_in_order()) {
    std::vector<int> links;
    links.push_back(ring_.successor(node));  // always keep the successor
    for (int i = 0; i < k; ++i) {
      // Harmonic rank offset in [1, n-1]: d = floor(e^{u * ln n}). The
      // draw is always consumed (keeps tables identical for a given rng
      // stream), but a link already present — the successor on small
      // rings, or a re-picked offset — is not stored twice: duplicates
      // would be rescanned on every hop of every lookup for no benefit.
      const double u = rng.next_double();
      auto d = static_cast<std::size_t>(std::floor(std::exp(u * log_n)));
      d = std::max<std::size_t>(1, std::min(d, n - 1));
      const int target = ring_.nth_clockwise(node, d);
      if (std::find(links.begin(), links.end(), target) == links.end()) {
        links.push_back(target);
      }
    }
    links_.emplace(node, std::move(links));
  }
}

const std::vector<int>& Router::links_of(int node) const {
  auto it = links_.find(node);
  D2_REQUIRE_MSG(it != links_.end(), "node has no routing table");
  return it->second;
}

Router::LookupResult Router::lookup(int src, const Key& k) const {
  D2_REQUIRE(ring_.contains(src));
  LookupResult res;
  res.path.push_back(src);
  int current = src;
  // Greedy clockwise: forward to the link making the most clockwise
  // progress without passing the key's owner arc. If no link strictly
  // progresses, the successor is the owner.
  const std::size_t n = ring_.size();
  std::size_t safety = 0;
  while (!ring_.owns(current, k)) {
    const Key& cur_id = ring_.id_of(current);
    int best = -1;
    Key best_dist = Key::max();
    bool have_best = false;
    for (int link : links_of(current)) {
      const Key& lid = ring_.id_of(link);
      // Candidate must lie in the clockwise arc (cur_id, k): it must make
      // progress but not pass the key (a node with id in [k, ...) would be
      // the owner side; landing exactly on the owner is also fine).
      if (!Key::in_arc(lid, cur_id, k)) continue;
      const Key remaining = Key::distance(lid, k);
      if (!have_best || remaining < best_dist) {
        best = link;
        best_dist = remaining;
        have_best = true;
      }
    }
    if (!have_best) best = ring_.successor(current);
    current = best;
    res.path.push_back(current);
    ++res.hops;
    ++safety;
    D2_ASSERT_MSG(safety <= 2 * n + 4, "routing loop");
  }
  res.owner = current;
  res.messages = res.hops == 0 ? 0 : res.hops + 1;  // + result return
  if (lookups_counter_ != nullptr) lookups_counter_->add(1);
  if (messages_counter_ != nullptr) messages_counter_->add(res.messages);
  if (hops_histogram_ != nullptr) {
    hops_histogram_->record(static_cast<double>(res.hops));
  }
  return res;
}

}  // namespace d2::dht
